// Package ode is an active object-oriented database with composite
// trigger events — a from-scratch Go implementation of the event
// specification model of Gehani, Jagadish & Shmueli, "Event
// Specification in an Active Object-Oriented Database" (SIGMOD 1992).
//
// The package provides:
//
//   - a persistent object store with object identity, schema'd classes,
//     member functions and transactions with object-level locking;
//   - the paper's full event language: basic events (object lifecycle,
//     method execution, time, transaction lifecycle), logical events
//     with masks, and composite events built from |, &, !, relative,
//     relative+, prior, sequence/;, choose, every, fa and faAbs;
//   - compilation of every trigger event into a minimized finite
//     automaton (one transition per posted event, one integer of
//     per-object state per active trigger — the §5 implementation);
//   - the Event-Action model of §7: all E-C-A coupling modes expressed
//     as event expressions (see the Coupling combinators);
//   - both §6 history views: committed-only (automaton state stored
//     with the object, rolled back on abort) and whole-history.
//
// # Quick start
//
//	db, _ := ode.Open(ode.Options{})
//	cls := db.NewClass("account").
//	    Field("balance", ode.KindInt, ode.Int(0)).
//	    Update("withdraw", ode.P("amount", ode.KindInt),
//	        func(ctx *ode.MethodCtx) (ode.Value, error) {
//	            b, _ := ctx.Get("balance")
//	            return ode.Null(), ctx.Set("balance", ode.Int(b.AsInt()-ctx.Arg("amount").AsInt()))
//	        }).
//	    Trigger("Large(): perpetual after withdraw(a) && a > 100 ==> report()",
//	        func(ctx *ode.ActionCtx) error { fmt.Println("large!"); return nil })
//	if err := cls.Register(); err != nil { ... }
//
//	var acct ode.OID
//	db.Transact(func(tx *ode.Tx) error {
//	    acct, _ = tx.NewObject("account", nil)
//	    return tx.Activate(acct, "Large")
//	})
package ode

import (
	"fmt"
	"net/http"
	"time"

	"ode/internal/clock"
	"ode/internal/egress"
	"ode/internal/engine"
	"ode/internal/evlang"
	"ode/internal/history"
	"ode/internal/obs"
	"ode/internal/part"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/txn"
	"ode/internal/value"
)

// Core type aliases: the public API is a thin veneer over the engine.
type (
	// Value is a dynamically typed database value.
	Value = value.Value
	// Kind discriminates Value payloads.
	Kind = value.Kind
	// OID is a persistent object identity.
	OID = store.OID
	// Tx is a transaction handle.
	Tx = engine.Tx
	// MethodCtx is passed to member-function implementations.
	MethodCtx = engine.MethodCtx
	// ActionCtx is passed to trigger actions.
	ActionCtx = engine.ActionCtx
	// MethodImpl implements a member function.
	MethodImpl = engine.MethodImpl
	// ActionFunc implements a trigger action.
	ActionFunc = engine.ActionFunc
	// MaskFunc is a side-effect-free function callable from masks.
	MaskFunc = engine.MaskFunc
	// HistoryView selects the §6 history semantics of a trigger.
	HistoryView = schema.HistoryView
	// HistoryLog is a recorded per-object happening log.
	HistoryLog = history.Log
	// Clock is the engine's manually advanced virtual clock.
	Clock = clock.Virtual
	// TraceEvent is one structured record of a detection-pipeline stage
	// (happening posted, mask evaluated, automaton step, firing, ...).
	TraceEvent = obs.Event
	// TraceStage identifies which pipeline stage a TraceEvent records.
	TraceStage = obs.Stage
	// MetricsSnapshot is a point-in-time copy of the per-trigger and
	// per-class metrics (firing counts, mask evaluations, action-latency
	// histograms). It marshals to JSON.
	MetricsSnapshot = obs.Snapshot
	// Explanation is a trigger instance's firing provenance: the
	// recorded happening chain that drove its automaton to the current
	// state (see Database.Explain).
	Explanation = engine.Explanation
	// ProvStep is one recorded provenance step (happening kind, mask
	// bits, automaton from→to transition).
	ProvStep = obs.ProvStep
	// FlightEvent is one entry of the always-on flight recorder.
	FlightEvent = obs.FlightEvent
	// FiringRecord is one entry of the durable firing-egress feed.
	FiringRecord = store.FiringRecord
)

// Value kinds.
const (
	KindNull   = value.KindNull
	KindInt    = value.KindInt
	KindFloat  = value.KindFloat
	KindBool   = value.KindBool
	KindString = value.KindString
	KindTime   = value.KindTime
	KindID     = value.KindID
)

// Trace pipeline stages (the §5 detection pipeline plus transaction
// and timer lifecycle).
const (
	StageHappening = obs.StageHappening
	StageMask      = obs.StageMask
	StageStep      = obs.StageStep
	StageFire      = obs.StageFire
	StageTimer     = obs.StageTimer
	StageTxBegin   = obs.StageTxBegin
	StageTxCommit  = obs.StageTxCommit
	StageTxAbort   = obs.StageTxAbort
	StageTcomplete = obs.StageTcomplete
)

// History views (§6).
const (
	// CommittedView sees only committed transactions' events; trigger
	// state is stored with the object and restored on abort.
	CommittedView = schema.CommittedView
	// WholeView sees every event including aborted transactions'.
	WholeView = schema.WholeView
)

// Value constructors.
var (
	// Int returns an integer value.
	Int = value.Int
	// Float returns a floating-point value.
	Float = value.Float
	// Bool returns a boolean value.
	Bool = value.Bool
	// Str returns a string value.
	Str = value.Str
	// Null returns the null value.
	Null = value.Null
	// TimeVal returns a time value.
	TimeVal = value.Time
)

// Ref returns an object-reference value.
func Ref(oid OID) Value { return value.ID(uint64(oid)) }

// Errors re-exported from the runtime.
var (
	// ErrTabort reports that a trigger action aborted the transaction.
	ErrTabort = engine.ErrTabort
	// ErrTcompleteDiverged reports a non-quiescing commit fixpoint.
	ErrTcompleteDiverged = engine.ErrTcompleteDiverged
	// ErrDeadlock reports a lock-wait cycle; the transaction aborted.
	ErrDeadlock = txn.ErrDeadlock
)

// Options configures a Database.
type Options struct {
	// Dir is the persistence directory ("" = in-memory only).
	Dir string
	// Start is the initial virtual time (zero = 2000-01-01 UTC).
	Start time.Time
	// RecordHistories > 0 retains each object's last N happenings for
	// inspection; < 0 retains everything; 0 disables recording.
	RecordHistories int
	// ShadowOracle cross-checks every automaton transition against the
	// paper's §4 denotational semantics at runtime (slow; for tests).
	ShadowOracle bool
	// CombinedAutomata monitors eligible classes (all triggers
	// perpetual, committed-view, parameterless, no 'after'-timers) with
	// one footnote-5 product automaton: one transition and one word of
	// per-object state in total per posted event.
	CombinedAutomata bool
	// TraceBuffer > 0 enables pipeline tracing from startup with a ring
	// buffer retaining that many events; < 0 uses the default capacity.
	// Tracing can also be toggled later with EnableTracing.
	TraceBuffer int
	// DebugAddr, when non-empty, starts the live introspection HTTP
	// endpoint on that address ("auto" binds a free localhost port;
	// see Database.ServeDebug).
	DebugAddr string
	// DisableGroupCommit turns off WAL group commit: every durable
	// commit performs its own write and sync instead of coalescing
	// with concurrent committers.
	DisableGroupCommit bool
	// InterpretedMasks evaluates trigger masks with the AST
	// interpreter instead of the programs compiled at class
	// registration — the baseline the compiled hot path is benchmarked
	// and cross-checked against. Intended for tests and benchmarks.
	InterpretedMasks bool
	// FlightBuffer sizes the always-on flight recorder (rounded up to a
	// power of two; 0 = the default capacity). The recorder cannot be
	// disabled — it is the post-incident record of recent pipeline
	// events and costs a handful of atomic stores per happening.
	FlightBuffer int
	// ProvenanceDepth sets how many automaton transitions are retained
	// per (object, trigger) instance for Explain (0 = the default
	// depth); a negative value disables provenance capture.
	ProvenanceDepth int
	// Partitions splits the database into that many single-writer
	// partitions, each an event-loop goroutine owning a disjoint OID
	// residue class with its own store, WAL and committed view; a
	// sequenced bus forwards cross-partition events (see internal/part).
	// Values <= 1 (the default) keep today's single-engine semantics —
	// one engine, shared by all callers under object locking. With
	// Partitions >= 2, transactions are partition-local: use TransactOn
	// to place work, Advance (not Clock().Advance) to move time, and
	// RelayCall to forward events across partitions. Begin is not
	// available in partitioned mode.
	Partitions int
}

// Database is an active object database.
type Database struct {
	eng   *engine.Engine
	parts *part.DB // non-nil iff Options.Partitions >= 2
}

// Open creates or reopens a database.
func Open(opts Options) (*Database, error) {
	eopts := engine.Options{
		Dir:                opts.Dir,
		Start:              opts.Start,
		RecordHistories:    opts.RecordHistories,
		ShadowOracle:       opts.ShadowOracle,
		CombinedAutomata:   opts.CombinedAutomata,
		TraceBuffer:        opts.TraceBuffer,
		DebugAddr:          opts.DebugAddr,
		DisableGroupCommit: opts.DisableGroupCommit,
		InterpretedMasks:   opts.InterpretedMasks,
		FlightBuffer:       opts.FlightBuffer,
		ProvenanceDepth:    opts.ProvenanceDepth,
	}
	if opts.Partitions >= 2 {
		parts, err := part.Open(part.Options{N: opts.Partitions, Dir: opts.Dir, Engine: eopts})
		if err != nil {
			return nil, err
		}
		return &Database{eng: parts.Partition(0).Engine(), parts: parts}, nil
	}
	eng, err := engine.New(eopts)
	if err != nil {
		return nil, err
	}
	return &Database{eng: eng}, nil
}

// Close releases the database.
func (db *Database) Close() error {
	if db.parts != nil {
		return db.parts.Close()
	}
	return db.eng.Close()
}

// Partitions returns the partition count (1 for an unpartitioned
// database).
func (db *Database) Partitions() int {
	if db.parts == nil {
		return 1
	}
	return db.parts.N()
}

// PartitionOf returns the partition owning oid (always 0 when
// unpartitioned). Routing is arithmetic over the OID — (oid-1) mod N —
// so it is stable across restarts.
func (db *Database) PartitionOf(oid OID) int {
	if db.parts == nil {
		return 0
	}
	return db.parts.PartitionOf(oid)
}

// Parts exposes the partitioned runtime (nil when unpartitioned) for
// advanced integration — per-partition engines, the bus, aggregate
// debug endpoints.
func (db *Database) Parts() *part.DB { return db.parts }

// Begin starts a transaction; the caller must Commit or Abort it.
// Not available in partitioned mode (transactions must run inside
// their partition's loop): use Transact or TransactOn instead.
func (db *Database) Begin() *Tx {
	if db.parts != nil {
		panic("ode: Begin is not available with Partitions >= 2; use TransactOn")
	}
	return db.eng.Begin()
}

// Transact runs fn in a transaction, committing on nil and aborting on
// error. In partitioned mode the transaction runs inside partition 0's
// loop and sees only partition 0's objects; use TransactOn to place
// work on other partitions.
func (db *Database) Transact(fn func(*Tx) error) error {
	if db.parts != nil {
		return db.parts.Transact(0, fn)
	}
	return db.eng.Transact(fn)
}

// TransactOn runs fn in a transaction inside partition p's event loop.
// The transaction is partition-local: it sees exactly the objects
// partition p owns, and objects it creates are owned by p. On an
// unpartitioned database p must be 0.
func (db *Database) TransactOn(p int, fn func(*Tx) error) error {
	if db.parts != nil {
		return db.parts.Transact(p, fn)
	}
	if p != 0 {
		return fmt.Errorf("ode: partition %d does not exist (database is unpartitioned)", p)
	}
	return db.eng.Transact(fn)
}

// RelayCall forwards a method call to oid's owning partition across
// the sequenced cross-partition bus: it is posted there in its own
// transaction, after the partition's current work, in deterministic
// (source, sequence) order. src is the sending partition's id (what
// TransactOn ran on), or a negative value for external senders. On an
// unpartitioned database the call executes synchronously in its own
// transaction. Call Drain to wait for relayed work.
func (db *Database) RelayCall(src int, oid OID, method string, args ...Value) {
	if db.parts != nil {
		db.parts.RelayCall(src, oid, method, args...)
		return
	}
	db.eng.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, method, args...)
		return err
	})
}

// Drain blocks until every submitted transaction and every in-flight
// bus message has executed (no-op when unpartitioned). The barrier is
// only meaningful once concurrent submitters have stopped.
func (db *Database) Drain() {
	if db.parts != nil {
		db.parts.Drain()
	}
}

// Clock returns the database's virtual clock; advancing it fires due
// time events. Advance it outside of transactions. In partitioned mode
// this is partition 0's clock and is read-only for callers — use
// Database.Advance, which moves every partition's clock inside its own
// loop.
func (db *Database) Clock() *Clock { return db.eng.Clock() }

// Advance moves virtual time forward by d and delivers due time
// events. In partitioned mode every partition's clock advances inside
// its own event loop, so `every`/`at` triggers fire in the loop that
// owns their object; unpartitioned databases advance the single clock
// directly.
func (db *Database) Advance(d time.Duration) error {
	if db.parts != nil {
		return db.parts.Advance(d)
	}
	db.eng.Clock().Advance(d)
	return nil
}

// Batch is a columnar buffer of method calls against objects of one
// class, posted with Tx.PostBatch or Database.PostBatch. Posting a
// batch is semantically identical to issuing tx.Call for each entry in
// order (results discarded, stopping at the first error) but amortizes
// per-call costs — method resolution, argument binding, metric updates
// — across the whole run. Reset and refill a Batch to reuse its cached
// posting plan.
type Batch = engine.Batch

// NewBatch returns an empty batch for objects of the named class with
// room for capacity entries.
func NewBatch(class string, capacity int) *Batch { return engine.NewBatch(class, capacity) }

// PostBatch executes the batch's method calls in one transaction,
// committing on success and aborting on the first error. In
// partitioned mode the batch's columns are split by owning partition
// and each piece posts inside its partition's loop — entry order is
// preserved within each partition and atomicity is per partition.
func (db *Database) PostBatch(b *Batch) error {
	if db.parts != nil {
		return db.parts.PostBatch(b)
	}
	return db.eng.Transact(func(tx *Tx) error { return tx.PostBatch(b) })
}

// RegisterFunc installs a global mask function (e.g. user()) on every
// partition.
func (db *Database) RegisterFunc(name string, fn MaskFunc) {
	if db.parts != nil {
		db.parts.Register(func(_ int, e *engine.Engine) error {
			e.RegisterFunc(name, fn)
			return nil
		})
		return
	}
	db.eng.RegisterFunc(name, fn)
}

// Checkpoint snapshots the store and truncates the write-ahead log
// (every partition's, in partition order, when partitioned).
func (db *Database) Checkpoint() error {
	if db.parts != nil {
		return db.parts.Checkpoint()
	}
	return db.eng.Checkpoint()
}

// RearmTimers reschedules time events for active triggers after
// reopening a persistent database. In partitioned mode each
// partition's timers rearm inside its own loop, so rearmed timers
// fire — like all timers — in the loop owning their object.
func (db *Database) RearmTimers() error {
	if db.parts != nil {
		return db.parts.RearmTimers()
	}
	return db.eng.RearmTimers()
}

// TriggerState reports a trigger instance's automaton state and
// activation flag — the paper's "one word per active trigger per
// object" is directly inspectable. Routed through the owning
// partition's loop when partitioned.
func (db *Database) TriggerState(oid OID, trigger string) (state int, active bool, err error) {
	if db.parts != nil {
		return db.parts.TriggerState(oid, trigger)
	}
	return db.eng.TriggerState(oid, trigger)
}

// History returns the recorded happening log of an object (nil unless
// Options.RecordHistories enabled recording).
func (db *Database) History(oid OID) *HistoryLog { return db.eng.History(oid) }

// QueryHistory evaluates a mask-free event expression over an object's
// recorded history and returns the sequence numbers of the points at
// which the event occurred — offline "history expressions" (the
// paper's §9 future-work direction). Requires Options.RecordHistories
// with a limit the history has not outgrown.
func (db *Database) QueryHistory(oid OID, eventSrc string) ([]uint64, error) {
	return db.eng.QueryHistory(oid, eventSrc)
}

// Engine exposes the underlying runtime for advanced integration.
func (db *Database) Engine() *engine.Engine { return db.eng }

// Stats is the engine's cumulative counter snapshot.
type Stats = engine.Stats

// Stats returns cumulative engine counters (transactions, happenings,
// automaton steps, mask evaluations, firings, timer deliveries). In
// partitioned mode the snapshot is the field-wise sum over every
// partition (compile-cache counters, which are process-wide, are taken
// once); use Parts().PartitionStats for the per-partition breakdown.
func (db *Database) Stats() Stats {
	if db.parts != nil {
		return db.parts.Stats()
	}
	return db.eng.Stats()
}

// StatsDelta returns cur - prev field-wise: the activity between two
// Stats snapshots.
func StatsDelta(cur, prev Stats) Stats { return engine.StatsDelta(cur, prev) }

// EnableTracing turns on pipeline tracing into a fresh ring buffer
// retaining the last capacity events (<= 0 uses the default) and
// returns the buffer. Safe to call at any time, including while other
// goroutines post events.
func (db *Database) EnableTracing(capacity int) *obs.Ring { return db.eng.EnableTracing(capacity) }

// DisableTracing turns pipeline tracing off. The disabled hot path
// costs one atomic load and adds no allocation.
func (db *Database) DisableTracing() { db.eng.DisableTracing() }

// TracingEnabled reports whether a tracer is installed.
func (db *Database) TracingEnabled() bool { return db.eng.TracingEnabled() }

// TraceEvents returns the last trace events in chronological order
// (last <= 0 means all retained), or nil when tracing is disabled.
func (db *Database) TraceEvents(last int) []TraceEvent { return db.eng.TraceEvents(last) }

// Metrics returns a snapshot of the per-trigger and per-class metrics.
// Metrics are always collected; they do not require tracing. In
// partitioned mode the snapshot merges every partition's registry
// (counters summed, latency histograms merged bucket-wise).
func (db *Database) Metrics() MetricsSnapshot {
	if db.parts != nil {
		return db.parts.Metrics()
	}
	return db.eng.Metrics().Snapshot()
}

// Explain returns the firing provenance of a trigger instance: the
// recorded chain of happenings (with mask bits and automaton from→to
// transitions) that drove it to its current state, ending at its most
// recent firing if it has fired. It answers "why did this trigger
// fire?" from the live system, no tracing required. Routed through the
// owning partition when partitioned.
func (db *Database) Explain(trigger string, oid OID) (*Explanation, error) {
	if db.parts != nil {
		return db.parts.Explain(trigger, oid)
	}
	return db.eng.Explain(trigger, oid)
}

// FlightEvents returns the most recent events from the always-on
// flight recorder in chronological order (last <= 0 means all
// retained). In partitioned mode every partition's window is merged by
// virtual timestamp, and each event's Part field reports the partition
// whose recorder captured it.
func (db *Database) FlightEvents(last int) []FlightEvent {
	if db.parts != nil {
		return db.parts.FlightEvents(last)
	}
	return db.eng.FlightEvents(last)
}

// Firings returns feed records with position > after from the durable
// firing-egress feed (max <= 0 means no limit) plus the current feed
// head. Positions are per-partition sequence numbers when
// unpartitioned, 1-based merged-feed indexes when partitioned (see
// FeedSource for the stability contract of each).
func (db *Database) Firings(after uint64, max int) ([]FiringRecord, uint64) {
	if db.parts != nil {
		return db.parts.FiringsAfter(after, max)
	}
	return db.eng.Firings(after, max)
}

// FeedSource returns the database's firing feed as an egress.Source —
// the handle Subscribe and NewDeliverer consume. Unpartitioned, it is
// the engine's own durable log (positions are firing sequence
// numbers); partitioned, the merged total-order feed.
func (db *Database) FeedSource() egress.Source {
	if db.parts != nil {
		return db.parts
	}
	return db.eng
}

// DebugHandler returns the live introspection HTTP handler serving
// /debug/stats, /debug/triggers, /debug/trace?last=N, /debug/why,
// /debug/metrics, /debug/flight, /debug/feed, /debug/vars and
// /debug/pprof/. A
// partitioned database serves aggregate /debug/stats, /debug/metrics
// and /debug/flight, with each partition's full handler mounted under
// /debug/partition/<p>/.
func (db *Database) DebugHandler() http.Handler {
	if db.parts != nil {
		return db.parts.DebugHandler()
	}
	return db.eng.DebugHandler()
}

// ServeDebug starts an HTTP listener serving DebugHandler on addr
// ("auto" binds a free localhost port) and returns the bound address.
// The listener runs until Close.
func (db *Database) ServeDebug(addr string) (string, error) {
	if db.parts != nil {
		return db.parts.ServeDebug(addr)
	}
	return db.eng.ServeDebug(addr)
}

// P declares a parameter for Method/Update/Read/TriggerP builders.
func P(name string, kind Kind) schema.Param { return schema.Param{Name: name, Kind: kind} }

// Param is a method or trigger parameter declaration.
type Param = schema.Param

// Defines is a reusable set of #define-style event abbreviations.
type Defines struct{ ps *evlang.Parser }

// NewDefines creates an empty abbreviation set.
func NewDefines() *Defines { return &Defines{ps: evlang.NewParser()} }

// Add parses and registers an abbreviation; it panics on a syntax
// error (definitions are compile-time artifacts).
func (d *Defines) Add(name, src string) *Defines {
	if err := d.ps.Define(name, src); err != nil {
		panic(err)
	}
	return d
}
