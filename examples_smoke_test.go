package ode_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end and checks
// for its signature output lines. Skipped with -short (each run pays a
// go-build).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples need subprocess builds")
	}
	cases := []struct {
		pkg  string
		want []string
	}{
		{"./examples/quickstart", []string{
			"[trigger Watch] withdrawal after a large one",
			"trigger state is the single integer",
		}},
		{"./examples/stockroom", []string{
			"[T8] deposit immediately followed by withdrawal",
			"T1 blocked mallory's withdrawal",
			"[T2] stock of \"gears\" below reorder level",
			"[T4] busy day",
			"[T5] five more operations",
			"[T6] large withdrawal recorded",
			"[summary]",
			"day 2 closes",
		}},
		{"./examples/processctl", []string{
			"[trigger T] valve cycled after a pressure drop — check pressure (now 2.5)",
			"check pressure (now 1.5)",
		}},
		{"./examples/banking", []string{
			"[immediate-immediate]",
			"[immediate-deferred]",
			"[immediate-dependent]",
			"[deferred-immediate]",
			"[whole-history] a transaction touching this account aborted",
			"[state-event] balance fell below 500",
			"final balance: 400",
		}},
		{"./examples/fraudwatch", []string{
			"[card-testing]",
			"[geo-jump]",
			"[velocity] fifth purchase since midnight",
			"DECLINED",
			"total spent on card: 1517.50",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.pkg, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.pkg, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", tc.pkg, want, out)
				}
			}
		})
	}
}
