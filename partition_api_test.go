package ode_test

import (
	"strings"
	"testing"
	"time"

	"ode"
)

// openPartitioned opens a Partitions=n database with the account class
// registered on every partition.
func openPartitioned(t *testing.T, n int, f *fires) *ode.Database {
	t.Helper()
	db, err := ode.Open(ode.Options{
		Partitions: n,
		Start:      time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	err = balanceMethods(db.NewClass("account")).
		Trigger("Large(): perpetual after withdraw(a) && a > 100 ==> report", f.action("Large")).
		Trigger("AnyDep(): perpetual after deposit ==> note", f.action("AnyDep")).
		Trigger("Tick(): perpetual every time(M=10) ==> tick", f.action("Tick")).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestPartitionedFacade drives the whole partitioned surface through
// the public API: TransactOn routing, trigger firing on every
// partition, aggregate stats, provenance, flight events with partition
// ids, and batch posting across partitions.
func TestPartitionedFacade(t *testing.T) {
	f := newFires()
	db := openPartitioned(t, 4, f)
	if got := db.Partitions(); got != 4 {
		t.Fatalf("Partitions() = %d", got)
	}

	// One activated account per partition, created on its own partition.
	oids := make([]ode.OID, 4)
	for p := range oids {
		err := db.TransactOn(p, func(tx *ode.Tx) error {
			oid, err := tx.NewObject("account", map[string]ode.Value{"balance": ode.Int(500)})
			if err != nil {
				return err
			}
			oids[p] = oid
			for _, name := range []string{"Large", "AnyDep"} {
				if err := tx.Activate(oid, name); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := db.PartitionOf(oids[p]); got != p {
			t.Fatalf("object created on partition %d routes to %d", p, got)
		}
	}

	// A batch spanning all partitions splits and posts per partition.
	b := ode.NewBatch("account", 8)
	for _, oid := range oids {
		b.Call(oid, "deposit", ode.Int(50))
		b.Call(oid, "withdraw", ode.Int(200))
	}
	if err := db.PostBatch(b); err != nil {
		t.Fatal(err)
	}
	db.Drain()
	if f.count("Large") != 4 || f.count("AnyDep") != 4 {
		t.Fatalf("Large fired %d, AnyDep fired %d; want 4 and 4", f.count("Large"), f.count("AnyDep"))
	}

	st := db.Stats()
	if st.Firings != 8 {
		t.Fatalf("aggregate Firings = %d, want 8", st.Firings)
	}

	// Provenance crosses the facade to the owning partition.
	for _, oid := range oids {
		ex, err := db.Explain("Large", oid)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Fired {
			t.Fatalf("Explain(Large, %d): not fired: %+v", oid, ex)
		}
	}

	// Flight events from all partitions, stamped with their owner.
	parts := map[int]bool{}
	for _, ev := range db.FlightEvents(0) {
		parts[ev.Part] = true
	}
	for p := 0; p < 4; p++ {
		if !parts[p] {
			t.Fatalf("no flight events from partition %d (saw %v)", p, parts)
		}
	}

	// TriggerState routes through the owner.
	for _, oid := range oids {
		if _, active, err := db.TriggerState(oid, "Large"); err != nil || !active {
			t.Fatalf("TriggerState(%d): %v %v", oid, active, err)
		}
	}
}

// TestPartitionedTimersThroughFacade: Advance moves every partition's
// clock and `every` triggers on objects in different partitions fire.
func TestPartitionedTimersThroughFacade(t *testing.T) {
	f := newFires()
	db := openPartitioned(t, 2, f)
	for p := 0; p < 2; p++ {
		err := db.TransactOn(p, func(tx *ode.Tx) error {
			oid, err := tx.NewObject("account", nil)
			if err != nil {
				return err
			}
			return tx.Activate(oid, "Tick")
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Advance(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := f.count("Tick"); got != 6 { // 3 ticks × 2 objects
		t.Fatalf("Tick fired %d times, want 6", got)
	}
}

// TestPartitionedRelayThroughFacade: RelayCall forwards a call to the
// owning partition; Drain is the quiescence barrier.
func TestPartitionedRelayThroughFacade(t *testing.T) {
	f := newFires()
	db := openPartitioned(t, 2, f)
	var oid ode.OID
	err := db.TransactOn(1, func(tx *ode.Tx) error {
		var err error
		oid, err = tx.NewObject("account", nil)
		if err != nil {
			return err
		}
		return tx.Activate(oid, "AnyDep")
	})
	if err != nil {
		t.Fatal(err)
	}
	db.RelayCall(0, oid, "deposit", ode.Int(25))
	db.Drain()
	if f.count("AnyDep") != 1 {
		t.Fatalf("relayed deposit did not fire AnyDep (count %d)", f.count("AnyDep"))
	}
	var bal int64
	err = db.TransactOn(1, func(tx *ode.Tx) error {
		v, err := tx.Call(oid, "getBalance")
		bal = v.AsInt()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if bal != 25 {
		t.Fatalf("balance = %d after relayed deposit, want 25", bal)
	}
}

// TestPartitionedGuards pins the facade's partitioned error contract:
// Begin panics (no single ambient partition to pin a transaction to)
// and TransactOn rejects nonzero partitions on unpartitioned
// databases.
func TestPartitionedGuards(t *testing.T) {
	f := newFires()
	db := openPartitioned(t, 2, f)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Begin did not panic in partitioned mode")
			}
			if !strings.Contains(r.(string), "TransactOn") {
				t.Fatalf("panic message does not point at TransactOn: %v", r)
			}
		}()
		db.Begin()
	}()

	plain := openDB(t)
	if err := plain.TransactOn(1, func(*ode.Tx) error { return nil }); err == nil {
		t.Fatal("TransactOn(1) succeeded on an unpartitioned database")
	}
	if err := plain.TransactOn(0, func(*ode.Tx) error { return nil }); err != nil {
		t.Fatalf("TransactOn(0) must work unpartitioned: %v", err)
	}
}
