package clock

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

func TestNowAndAdvance(t *testing.T) {
	c := NewVirtual(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("initial now")
	}
	c.Advance(90 * time.Minute)
	if !c.Now().Equal(t0.Add(90 * time.Minute)) {
		t.Fatalf("now = %v", c.Now())
	}
	c.Advance(0)
	if !c.Now().Equal(t0.Add(90 * time.Minute)) {
		t.Fatal("zero advance moved the clock")
	}
}

func TestOneShotTimers(t *testing.T) {
	c := NewVirtual(t0)
	var fired []string
	c.After(2*time.Hour, func(at time.Time) {
		fired = append(fired, "after@"+at.Format("15:04"))
	})
	c.At(t0.Add(1*time.Hour), func(at time.Time) {
		fired = append(fired, "at@"+at.Format("15:04"))
	})
	c.Advance(30 * time.Minute)
	if len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	c.Advance(2 * time.Hour)
	if len(fired) != 2 || fired[0] != "at@09:00" || fired[1] != "after@10:00" {
		t.Fatalf("fired = %v", fired)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d", c.Pending())
	}
	// One-shots do not refire.
	c.Advance(24 * time.Hour)
	if len(fired) != 2 {
		t.Fatalf("one-shot refired: %v", fired)
	}
}

func TestPeriodicTimer(t *testing.T) {
	c := NewVirtual(t0)
	var count int
	id := c.Every(10*time.Minute, func(time.Time) { count++ })
	c.Advance(35 * time.Minute) // fires at +10, +20, +30
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	c.Cancel(id)
	c.Advance(time.Hour)
	if count != 3 {
		t.Fatalf("fired after cancel: %d", count)
	}
}

func TestTimerOrderAndCallbackTime(t *testing.T) {
	c := NewVirtual(t0)
	var order []int
	c.At(t0.Add(2*time.Minute), func(time.Time) { order = append(order, 2) })
	c.At(t0.Add(1*time.Minute), func(time.Time) { order = append(order, 1) })
	c.At(t0.Add(1*time.Minute), func(time.Time) { order = append(order, 11) }) // tie → registration order
	c.Advance(5 * time.Minute)
	if len(order) != 3 || order[0] != 1 || order[1] != 11 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestCallbackSchedulesTimer(t *testing.T) {
	c := NewVirtual(t0)
	var fired []time.Duration
	c.After(time.Minute, func(at time.Time) {
		fired = append(fired, at.Sub(t0))
		// A timer scheduled inside a callback, still within the window,
		// must fire during the same Advance.
		c.After(time.Minute, func(at2 time.Time) {
			fired = append(fired, at2.Sub(t0))
		})
	})
	c.Advance(5 * time.Minute)
	if len(fired) != 2 || fired[0] != time.Minute || fired[1] != 2*time.Minute {
		t.Fatalf("fired = %v", fired)
	}
}

func TestCancelUnknownIsNoop(t *testing.T) {
	c := NewVirtual(t0)
	c.Cancel(999)
	id := c.After(time.Minute, func(time.Time) {})
	c.Advance(2 * time.Minute)
	c.Cancel(id) // already fired
}

func TestPastAtFiresOnNextAdvance(t *testing.T) {
	c := NewVirtual(t0)
	var fired bool
	c.At(t0.Add(-time.Hour), func(time.Time) { fired = true })
	c.Advance(time.Millisecond)
	if !fired {
		t.Fatal("past timer never fired")
	}
}

func TestAdvanceTo(t *testing.T) {
	c := NewVirtual(t0)
	target := t0.Add(3 * time.Hour)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatal("AdvanceTo")
	}
	c.AdvanceTo(t0) // past → no-op
	if !c.Now().Equal(target) {
		t.Fatal("AdvanceTo moved backwards")
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	c := NewVirtual(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Every(0, func(time.Time) {})
}

func TestNegativeAdvancePanics(t *testing.T) {
	c := NewVirtual(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestTimeSpecPeriod(t *testing.T) {
	ts := EmptyTimeSpec()
	ts.Hour = 2
	ts.Min = 30
	if ts.Period() != 2*time.Hour+30*time.Minute {
		t.Fatalf("period = %v", ts.Period())
	}
	if !EmptyTimeSpec().IsZeroPeriod() {
		t.Fatal("empty spec should be zero period")
	}
	full := EmptyTimeSpec()
	full.Year, full.Month, full.Day = 1, 2, 3
	want := 365*24*time.Hour + 2*30*24*time.Hour + 3*24*time.Hour
	if full.Period() != want {
		t.Fatalf("period = %v want %v", full.Period(), want)
	}
}

func TestNextMatchDaily(t *testing.T) {
	// The paper's dayEnd: at time(HR=17), from 08:00 → today 17:00.
	ts := EmptyTimeSpec()
	ts.Hour = 17
	got, ok := ts.NextMatch(t0)
	want := time.Date(2026, 7, 4, 17, 0, 0, 0, time.UTC)
	if !ok || !got.Equal(want) {
		t.Fatalf("NextMatch = %v, %v; want %v", got, ok, want)
	}
	// From 17:30 → tomorrow 17:00 (daily recurrence).
	got2, ok := ts.NextMatch(want.Add(30 * time.Minute))
	want2 := time.Date(2026, 7, 5, 17, 0, 0, 0, time.UTC)
	if !ok || !got2.Equal(want2) {
		t.Fatalf("NextMatch = %v; want %v", got2, want2)
	}
	// From exactly 17:00 → strictly after: tomorrow.
	got3, ok := ts.NextMatch(want)
	if !ok || !got3.Equal(want2) {
		t.Fatalf("NextMatch at boundary = %v; want %v", got3, want2)
	}
}

func TestNextMatchSpecificDate(t *testing.T) {
	ts := EmptyTimeSpec()
	ts.Year, ts.Month, ts.Day, ts.Hour, ts.Min = 2026, 12, 25, 9, 30
	got, ok := ts.NextMatch(t0)
	want := time.Date(2026, 12, 25, 9, 30, 0, 0, time.UTC)
	if !ok || !got.Equal(want) {
		t.Fatalf("NextMatch = %v, %v", got, ok)
	}
	// Once past, a fully-dated spec never matches again.
	if _, ok := ts.NextMatch(want); ok {
		t.Fatal("past dated spec matched again")
	}
}

func TestNextMatchMonthlyAndSeconds(t *testing.T) {
	ts := EmptyTimeSpec()
	ts.Day = 1
	got, ok := ts.NextMatch(t0) // July 4 → Aug 1 00:00
	want := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	if !ok || !got.Equal(want) {
		t.Fatalf("monthly = %v", got)
	}

	sec := EmptyTimeSpec()
	sec.Sec = 30
	got2, ok := sec.NextMatch(t0) // every minute at :30
	if !ok || got2.Second() != 30 || got2.Sub(t0) != 30*time.Second {
		t.Fatalf("seconds = %v", got2)
	}

	ms := EmptyTimeSpec()
	ms.Ms = 250
	got3, ok := ms.NextMatch(t0)
	if !ok || got3.Sub(t0) != 250*time.Millisecond {
		t.Fatalf("ms = %v", got3)
	}
}

func TestNextMatchImpossible(t *testing.T) {
	// Feb 30 never exists.
	ts := EmptyTimeSpec()
	ts.Month, ts.Day = 2, 30
	if _, ok := ts.NextMatch(t0); ok {
		t.Fatal("Feb 30 matched")
	}
	// A year in the past never matches.
	past := EmptyTimeSpec()
	past.Year = 1999
	if _, ok := past.NextMatch(t0); ok {
		t.Fatal("past year matched")
	}
}

func TestNextMatchLeapDay(t *testing.T) {
	ts := EmptyTimeSpec()
	ts.Month, ts.Day = 2, 29
	got, ok := ts.NextMatch(t0) // next Feb 29 after 2026-07-04 is 2028
	want := time.Date(2028, 2, 29, 0, 0, 0, 0, time.UTC)
	if !ok || !got.Equal(want) {
		t.Fatalf("leap = %v, %v", got, ok)
	}
}

func TestTimeSpecString(t *testing.T) {
	ts := EmptyTimeSpec()
	ts.Hour, ts.Min = 9, 5
	if got := ts.String(); got != "time(HR=9, M=5)" {
		t.Fatalf("String = %q", got)
	}
}
