// Package clock provides the time substrate for Ode time events
// (paper §3.1 item 3):
//
//	at    time-specification
//	every time-period
//	after time-period
//
// A virtual clock makes time-event behaviour deterministic: tests and
// examples advance it explicitly, and every due timer fires in
// timestamp order during the advance. The paper's footnote 1
// observation — that timed triggers are subsumed by composite events —
// is exercised by posting timer firings as ordinary logical events.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the engine's view of time.
type Clock interface {
	Now() time.Time
}

// TimerID identifies a scheduled timer.
type TimerID uint64

// Virtual is a manually advanced clock with a timer queue.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	nextID TimerID
	timers timerHeap
	index  map[TimerID]*timer
}

type timer struct {
	id     TimerID
	at     time.Time
	period time.Duration // 0 → one-shot
	fn     func(time.Time)
	heapIx int
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start, index: map[TimerID]*timer{}}
}

// Now returns the current virtual time.
func (c *Virtual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// At schedules fn once at the absolute time at. A time in the past
// fires on the next Advance.
func (c *Virtual) At(at time.Time, fn func(time.Time)) TimerID {
	return c.schedule(at, 0, fn)
}

// After schedules fn once, d from now.
func (c *Virtual) After(d time.Duration, fn func(time.Time)) TimerID {
	c.mu.Lock()
	at := c.now.Add(d)
	c.mu.Unlock()
	return c.schedule(at, 0, fn)
}

// Every schedules fn every period, first firing one period from now.
// The period must be positive.
func (c *Virtual) Every(period time.Duration, fn func(time.Time)) TimerID {
	if period <= 0 {
		panic("clock: non-positive period")
	}
	c.mu.Lock()
	at := c.now.Add(period)
	c.mu.Unlock()
	return c.schedule(at, period, fn)
}

func (c *Virtual) schedule(at time.Time, period time.Duration, fn func(time.Time)) TimerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	t := &timer{id: c.nextID, at: at, period: period, fn: fn}
	heap.Push(&c.timers, t)
	c.index[t.id] = t
	return t.id
}

// Cancel removes a pending timer; cancelling an unknown or already-
// fired one-shot timer is a no-op.
func (c *Virtual) Cancel(id TimerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.index[id]; ok {
		heap.Remove(&c.timers, t.heapIx)
		delete(c.index, id)
	}
}

// Pending returns the number of scheduled timers.
func (c *Virtual) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// NextDue returns the due time of the earliest pending timer, or
// (zero, false) when none is scheduled. Deterministic drivers (the
// simulation harness) use it to advance exactly to the next firing
// instead of guessing a step size.
func (c *Virtual) NextDue() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.timers) == 0 {
		return time.Time{}, false
	}
	return c.timers[0].at, true
}

// Advance moves the clock forward by d, firing every timer that
// becomes due, in timestamp order (ties in registration order).
// Periodic timers fire once per elapsed period. Callbacks run without
// the clock lock held, so they may schedule or cancel timers; timers
// they schedule within the advanced window also fire.
func (c *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative advance")
	}
	c.mu.Lock()
	deadline := c.now.Add(d)
	for {
		if len(c.timers) == 0 || c.timers[0].at.After(deadline) {
			break
		}
		t := heap.Pop(&c.timers).(*timer)
		if t.at.After(c.now) {
			c.now = t.at
		}
		fireAt := c.now
		if t.period > 0 {
			t.at = t.at.Add(t.period)
			heap.Push(&c.timers, t)
		} else {
			delete(c.index, t.id)
		}
		c.mu.Unlock()
		t.fn(fireAt)
		c.mu.Lock()
	}
	if deadline.After(c.now) {
		c.now = deadline
	}
	c.mu.Unlock()
}

// AdvanceTo moves the clock to the absolute time t (a no-op when t is
// not in the future).
func (c *Virtual) AdvanceTo(t time.Time) {
	c.mu.Lock()
	now := c.now
	c.mu.Unlock()
	if t.After(now) {
		c.Advance(t.Sub(now))
	}
}

// timerHeap orders by due time, then registration order.
type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].id < h[j].id
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIx = i
	h[j].heapIx = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*timer)
	t.heapIx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
