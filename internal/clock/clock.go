// Package clock provides the time substrate for Ode time events
// (paper §3.1 item 3):
//
//	at    time-specification
//	every time-period
//	after time-period
//
// A virtual clock makes time-event behaviour deterministic: tests and
// examples advance it explicitly, and every due timer fires in
// timestamp order during the advance. The paper's footnote 1
// observation — that timed triggers are subsumed by composite events —
// is exercised by posting timer firings as ordinary logical events.
//
// The timer queue is a hierarchical timing wheel (hashed wheels with
// cascading, à la Varghese & Lauck): arm and cancel are O(1), and an
// Advance jumps directly between occupied ticks instead of walking the
// calendar, so a 100k-timer heartbeat storm costs one slot visit per
// tick rather than 100k heap rebalances.
package clock

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Clock is the engine's view of time.
type Clock interface {
	Now() time.Time
}

// TimerID identifies a scheduled timer.
type TimerID uint64

const (
	// tickDur is the wheel granularity. Timers keep their full
	// nanosecond-precision due time; the wheel only buckets them, and
	// same-tick timers are ordered by (at, id) when they come due.
	tickDur   = time.Millisecond
	wheelBits = 6
	wheelSize = 1 << wheelBits // 64 slots per level
	wheelMask = wheelSize - 1
	// numLevels levels of 64 slots cover deltas up to 64^7 ticks
	// (~139 years of milliseconds); anything further sits in the
	// overflow list until the cursor gets near.
	numLevels = 7
)

type timer struct {
	id     TimerID
	at     time.Time
	tick   int64         // tickOf(at), cached
	period time.Duration // 0 → one-shot
	fn     func(time.Time)
	dead   bool // lazily cancelled; purged on slot visit
}

// wheelLevel is one ring of the hierarchy. occupied is a bitmap of
// non-empty slots; minTick[s] is a lower bound on the earliest tick in
// slot s (exact on insert, possibly stale-low after a lazy cancel —
// staleness only costs a spurious slot visit, never a missed or
// reordered firing).
type wheelLevel struct {
	occupied uint64
	slots    [wheelSize][]*timer
	minTick  [wheelSize]int64
}

// Virtual is a manually advanced clock with a hierarchical
// timing-wheel timer queue.
type Virtual struct {
	mu      sync.Mutex
	start   time.Time
	now     time.Time
	curTick int64 // wheel cursor; all wheel entries have tick > curTick
	nextID  TimerID
	live    int // scheduled, non-cancelled timers

	levels      [numLevels]wheelLevel
	overflow    []*timer // delta beyond the wheel horizon
	overflowMin int64

	// due holds timers whose tick is at or behind the cursor — armed
	// in the past, or moved here by a slot visit. Sorted by (at, id)
	// from dueHead; popped from the front.
	due     []*timer
	dueHead int

	index map[TimerID]*timer
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{start: start, now: start, index: map[TimerID]*timer{}}
}

// Now returns the current virtual time.
func (c *Virtual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// tickOf maps an absolute time to a wheel tick (floor division, so a
// time inside tick T has T ≤ tickOf < T+1 and tick order implies time
// order across distinct ticks).
func (c *Virtual) tickOf(t time.Time) int64 {
	d := t.Sub(c.start)
	tk := int64(d / tickDur)
	if d%tickDur < 0 {
		tk--
	}
	return tk
}

func timerLess(a, b *timer) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.id < b.id
}

// At schedules fn once at the absolute time at. A time in the past
// fires on the next Advance.
func (c *Virtual) At(at time.Time, fn func(time.Time)) TimerID {
	return c.schedule(at, 0, fn)
}

// After schedules fn once, d from now.
func (c *Virtual) After(d time.Duration, fn func(time.Time)) TimerID {
	c.mu.Lock()
	at := c.now.Add(d)
	c.mu.Unlock()
	return c.schedule(at, 0, fn)
}

// Every schedules fn every period, first firing one period from now.
// The period must be positive.
func (c *Virtual) Every(period time.Duration, fn func(time.Time)) TimerID {
	if period <= 0 {
		panic("clock: non-positive period")
	}
	c.mu.Lock()
	at := c.now.Add(period)
	c.mu.Unlock()
	return c.schedule(at, period, fn)
}

func (c *Virtual) schedule(at time.Time, period time.Duration, fn func(time.Time)) TimerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	t := &timer{id: c.nextID, at: at, tick: c.tickOf(at), period: period, fn: fn}
	c.index[t.id] = t
	c.live++
	if t.tick <= c.curTick {
		c.dueInsertLocked(t)
	} else {
		c.insertLocked(t)
	}
	return t.id
}

// insertLocked places a future timer (tick > curTick) into the wheel
// level matching its delta, or the overflow list beyond the horizon.
func (c *Virtual) insertLocked(t *timer) {
	delta := t.tick - c.curTick
	lvl := (bits.Len64(uint64(delta)) - 1) / wheelBits
	if lvl >= numLevels {
		if len(c.overflow) == 0 || t.tick < c.overflowMin {
			c.overflowMin = t.tick
		}
		c.overflow = append(c.overflow, t)
		return
	}
	slot := int(t.tick>>(wheelBits*lvl)) & wheelMask
	l := &c.levels[lvl]
	if l.occupied&(1<<slot) == 0 || t.tick < l.minTick[slot] {
		l.minTick[slot] = t.tick
	}
	l.occupied |= 1 << slot
	l.slots[slot] = append(l.slots[slot], t)
}

// dueInsertLocked inserts one timer into the sorted due queue.
func (c *Virtual) dueInsertLocked(t *timer) {
	q := c.due[c.dueHead:]
	i := sort.Search(len(q), func(i int) bool { return timerLess(t, q[i]) })
	c.due = append(c.due, nil)
	copy(c.due[c.dueHead+i+1:], c.due[c.dueHead+i:])
	c.due[c.dueHead+i] = t
}

// minWheelLocked finds the slot with the smallest (possibly stale-low)
// minTick across all levels and the overflow list. lvl == -1 denotes
// the overflow pseudo-slot.
func (c *Virtual) minWheelLocked() (wt int64, lvl, slot int, ok bool) {
	for li := range c.levels {
		l := &c.levels[li]
		occ := l.occupied
		for occ != 0 {
			s := bits.TrailingZeros64(occ)
			occ &= occ - 1
			if !ok || l.minTick[s] < wt {
				wt, lvl, slot, ok = l.minTick[s], li, s, true
			}
		}
	}
	if len(c.overflow) > 0 && (!ok || c.overflowMin < wt) {
		wt, lvl, slot, ok = c.overflowMin, -1, 0, true
	}
	return
}

// visitLocked cascades one slot: dead timers are purged, timers at or
// behind the cursor move to the due queue, the rest redistribute into
// lower levels. Called with curTick already advanced to the slot's
// minTick, which guarantees progress: the slot's minimum entry always
// leaves the wheel.
func (c *Virtual) visitLocked(lvl, slot int) {
	var list []*timer
	if lvl < 0 {
		list = c.overflow
		c.overflow = nil
	} else {
		l := &c.levels[lvl]
		list = l.slots[slot]
		l.slots[slot] = nil
		l.occupied &^= 1 << slot
	}
	moved := false
	for _, t := range list {
		if t.dead {
			continue
		}
		if t.tick <= c.curTick {
			c.due = append(c.due, t)
			moved = true
		} else {
			c.insertLocked(t)
		}
	}
	if moved {
		q := c.due[c.dueHead:]
		sort.Slice(q, func(i, j int) bool { return timerLess(q[i], q[j]) })
	}
}

// popDueLocked removes and returns the earliest (at, id) timer with
// at ≤ deadline, cascading wheel slots as the cursor reaches them, or
// nil when nothing else is due. Due-queue entries always order before
// wheel entries at strictly larger ticks, so the head comparison is a
// tick comparison; ties on the same tick drain the wheel slot into the
// due queue first so sub-tick (at, id) order is decided by the sort.
func (c *Virtual) popDueLocked(deadline time.Time, deadlineTick int64) *timer {
	for {
		for c.dueHead < len(c.due) && c.due[c.dueHead].dead {
			c.due[c.dueHead] = nil
			c.dueHead++
		}
		var dt *timer
		if c.dueHead < len(c.due) {
			dt = c.due[c.dueHead]
		}
		wt, lvl, slot, wok := c.minWheelLocked()
		if dt != nil && (!wok || dt.tick < wt) {
			if dt.at.After(deadline) {
				return nil
			}
			c.due[c.dueHead] = nil
			c.dueHead++
			if c.dueHead == len(c.due) {
				c.due = c.due[:0]
				c.dueHead = 0
			}
			return dt
		}
		if !wok || wt > deadlineTick {
			return nil
		}
		c.curTick = wt
		c.visitLocked(lvl, slot)
	}
}

// Cancel removes a pending timer; cancelling an unknown or already-
// fired one-shot timer is a no-op. The entry is marked dead and purged
// lazily when its slot is next visited, keeping Cancel O(1).
func (c *Virtual) Cancel(id TimerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.index[id]; ok {
		t.dead = true
		t.fn = nil
		c.live--
		delete(c.index, id)
	}
}

// Pending returns the number of scheduled timers.
func (c *Virtual) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// NextDue returns the due time of the earliest pending timer, or
// (zero, false) when none is scheduled. Deterministic drivers (the
// simulation harness) use it to advance exactly to the next firing
// instead of guessing a step size. This scans live entries so lazily
// cancelled timers never skew the answer.
func (c *Virtual) NextDue() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *timer
	for i := c.dueHead; i < len(c.due); i++ {
		if !c.due[i].dead {
			best = c.due[i] // due queue is sorted; first live is minimal
			break
		}
	}
	scan := func(list []*timer) {
		for _, t := range list {
			if !t.dead && (best == nil || timerLess(t, best)) {
				best = t
			}
		}
	}
	for li := range c.levels {
		l := &c.levels[li]
		occ := l.occupied
		for occ != 0 {
			s := bits.TrailingZeros64(occ)
			occ &= occ - 1
			scan(l.slots[s])
		}
	}
	scan(c.overflow)
	if best == nil {
		return time.Time{}, false
	}
	return best.at, true
}

// Advance moves the clock forward by d, firing every timer that
// becomes due, in timestamp order (ties in registration order).
// Periodic timers fire once per elapsed period. Callbacks run without
// the clock lock held, so they may schedule or cancel timers; timers
// they schedule within the advanced window also fire.
func (c *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative advance")
	}
	c.mu.Lock()
	deadline := c.now.Add(d)
	deadlineTick := c.tickOf(deadline)
	for {
		t := c.popDueLocked(deadline, deadlineTick)
		if t == nil {
			break
		}
		if t.at.After(c.now) {
			c.now = t.at
		}
		if tk := c.tickOf(c.now); tk > c.curTick {
			c.curTick = tk
		}
		fireAt := c.now
		if t.period > 0 {
			t.at = t.at.Add(t.period)
			t.tick = c.tickOf(t.at)
			if t.tick <= c.curTick {
				c.dueInsertLocked(t)
			} else {
				c.insertLocked(t)
			}
		} else {
			delete(c.index, t.id)
			c.live--
		}
		c.mu.Unlock()
		t.fn(fireAt)
		c.mu.Lock()
	}
	if deadline.After(c.now) {
		c.now = deadline
	}
	if deadlineTick > c.curTick {
		c.curTick = deadlineTick
	}
	c.mu.Unlock()
}

// AdvanceTo moves the clock to the absolute time t (a no-op when t is
// not in the future).
func (c *Virtual) AdvanceTo(t time.Time) {
	c.mu.Lock()
	now := c.now
	c.mu.Unlock()
	if t.After(now) {
		c.Advance(t.Sub(now))
	}
}
