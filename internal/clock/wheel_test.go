package clock

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestWheelCascade arms timers across every wheel level and checks a
// single large Advance fires them all in timestamp order: each one
// must cascade down through lower levels as the cursor approaches.
func TestWheelCascade(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtual(start)
	// One timer per level: deltas 1, 64, 64^2, ... ticks (ms).
	deltas := []time.Duration{
		1 * time.Millisecond,
		64 * time.Millisecond,
		4096 * time.Millisecond,
		64 * 4096 * time.Millisecond,
		time.Duration(64*64*4096) * time.Millisecond,
	}
	var got []time.Duration
	for _, d := range deltas {
		d := d
		c.After(d, func(at time.Time) {
			got = append(got, at.Sub(start))
		})
	}
	c.Advance(deltas[len(deltas)-1] + time.Second)
	if len(got) != len(deltas) {
		t.Fatalf("fired %d of %d timers", len(got), len(deltas))
	}
	for i, d := range deltas {
		if got[i] != d {
			t.Fatalf("firing %d at %v, want %v", i, got[i], d)
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("pending %d after all fired", c.Pending())
	}
}

// TestWheelOverflow arms a timer beyond the wheel horizon (64^7 ms ≈
// 139 years) and checks it still fires at the right time.
func TestWheelOverflow(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtual(start)
	far := time.Duration(200*365*24) * time.Hour
	fired := time.Time{}
	c.After(far, func(at time.Time) { fired = at })
	if due, ok := c.NextDue(); !ok || !due.Equal(start.Add(far)) {
		t.Fatalf("NextDue = %v, %v; want %v", due, ok, start.Add(far))
	}
	c.Advance(far - time.Hour)
	if !fired.IsZero() {
		t.Fatal("fired before due")
	}
	c.Advance(2 * time.Hour)
	if !fired.Equal(start.Add(far)) {
		t.Fatalf("fired at %v, want %v", fired, start.Add(far))
	}
}

// TestWheelLazyCancel cancels timers that share a slot with a live one
// and checks the live timer still fires exactly once at its due time,
// Pending reflects the cancels immediately, and NextDue never reports
// a cancelled timer.
func TestWheelLazyCancel(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtual(start)
	var ids []TimerID
	fires := 0
	// Ten timers in the same far slot; cancel all but the last.
	for i := 0; i < 10; i++ {
		d := 5*time.Second + time.Duration(i)*time.Millisecond
		ids = append(ids, c.After(d, func(time.Time) { fires++ }))
	}
	for _, id := range ids[:9] {
		c.Cancel(id)
	}
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	wantDue := start.Add(5*time.Second + 9*time.Millisecond)
	if due, ok := c.NextDue(); !ok || !due.Equal(wantDue) {
		t.Fatalf("NextDue = %v, %v; want %v", due, ok, wantDue)
	}
	c.Advance(10 * time.Second)
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
}

// TestWheelSubTickOrder schedules timers inside the same millisecond
// tick at different nanosecond offsets and checks they fire in (at,
// id) order with the clock reading each exact due time, and that a
// deadline falling inside a tick does not fire the later part of it.
func TestWheelSubTickOrder(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtual(start)
	var got []time.Duration
	rec := func(at time.Time) { got = append(got, at.Sub(start)) }
	c.At(start.Add(10*time.Millisecond+800*time.Microsecond), rec)
	c.At(start.Add(10*time.Millisecond+200*time.Microsecond), rec)
	c.At(start.Add(10*time.Millisecond+500*time.Microsecond), rec)
	// Deadline lands mid-tick: only the first two may fire.
	c.Advance(10*time.Millisecond + 600*time.Microsecond)
	want := []time.Duration{
		10*time.Millisecond + 200*time.Microsecond,
		10*time.Millisecond + 500*time.Microsecond,
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	c.Advance(time.Millisecond)
	if len(got) != 3 || got[2] != 10*time.Millisecond+800*time.Microsecond {
		t.Fatalf("after second advance got %v", got)
	}
}

// TestWheelStorm is the cohort shape at per-object scale: many
// periodic timers with one shared period, fired over several windows.
// It guards the bulk due-queue path (sorted drain, no quadratic
// insert).
func TestWheelStorm(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtual(start)
	const n = 20000
	fires := 0
	for i := 0; i < n; i++ {
		c.Every(time.Second, func(time.Time) { fires++ })
	}
	for w := 0; w < 3; w++ {
		c.Advance(time.Second)
	}
	if fires != 3*n {
		t.Fatalf("fires = %d, want %d", fires, 3*n)
	}
	if c.Pending() != n {
		t.Fatalf("Pending = %d, want %d", c.Pending(), n)
	}
}

// TestWheelRandomVsReference drives the wheel and a simple sorted-list
// reference with the same random schedule of arms, cancels, and
// advances, comparing firing sequences exactly.
func TestWheelRandomVsReference(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(42))
	c := NewVirtual(start)

	type refTimer struct {
		seq    int
		at     time.Time
		period time.Duration
		dead   bool
	}
	var (
		ref     []*refTimer
		refNow  = start
		gotLog  []string
		wantLog []string
		ids     []TimerID
		refs    []*refTimer
	)
	refFire := func(deadline time.Time) {
		for {
			var best *refTimer
			for _, rt := range ref {
				if rt.dead || rt.at.After(deadline) {
					continue
				}
				if best == nil || rt.at.Before(best.at) || (rt.at.Equal(best.at) && rt.seq < best.seq) {
					best = rt
				}
			}
			if best == nil {
				break
			}
			if best.at.After(refNow) {
				refNow = best.at
			}
			wantLog = append(wantLog, fmt.Sprintf("%d@%v", best.seq, refNow.Sub(start)))
			if best.period > 0 {
				best.at = best.at.Add(best.period)
			} else {
				best.dead = true
			}
		}
		if deadline.After(refNow) {
			refNow = deadline
		}
	}

	seq := 0
	for op := 0; op < 2000; op++ {
		switch rng.Intn(4) {
		case 0: // one-shot, sometimes in the past
			d := time.Duration(rng.Intn(20000)-1000) * time.Millisecond
			d += time.Duration(rng.Intn(1000)) * time.Microsecond
			s := seq
			seq++
			ids = append(ids, c.After(d, func(at time.Time) {
				gotLog = append(gotLog, fmt.Sprintf("%d@%v", s, at.Sub(start)))
			}))
			refs = append(refs, &refTimer{seq: s, at: refNow.Add(d)})
			ref = append(ref, refs[len(refs)-1])
		case 1: // periodic
			p := time.Duration(1+rng.Intn(5000)) * time.Millisecond
			s := seq
			seq++
			ids = append(ids, c.Every(p, func(at time.Time) {
				gotLog = append(gotLog, fmt.Sprintf("%d@%v", s, at.Sub(start)))
			}))
			refs = append(refs, &refTimer{seq: s, at: refNow.Add(p), period: p})
			ref = append(ref, refs[len(refs)-1])
		case 2: // cancel a random prior timer
			if len(ids) > 0 {
				i := rng.Intn(len(ids))
				c.Cancel(ids[i])
				refs[i].dead = true
			}
		case 3: // advance
			d := time.Duration(rng.Intn(8000)) * time.Millisecond
			c.Advance(d)
			refFire(refNow.Add(d))
			if !c.Now().Equal(refNow) {
				t.Fatalf("op %d: now %v, ref %v", op, c.Now(), refNow)
			}
		}
	}
	c.Advance(100 * time.Second)
	refFire(refNow.Add(100 * time.Second))

	if len(gotLog) != len(wantLog) {
		t.Fatalf("fired %d, reference %d", len(gotLog), len(wantLog))
	}
	for i := range gotLog {
		if gotLog[i] != wantLog[i] {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("divergence at %d: got %v, want %v", i, gotLog[lo:i+1], wantLog[lo:i+1])
		}
	}
	// Pending must agree with the reference's live periodic count.
	livePeriodic := 0
	for _, rt := range ref {
		if !rt.dead && rt.period > 0 {
			livePeriodic++
		}
	}
	liveOneShot := 0
	for _, rt := range ref {
		if !rt.dead && rt.period == 0 {
			liveOneShot++
		}
	}
	if c.Pending() != livePeriodic+liveOneShot {
		t.Fatalf("Pending = %d, reference %d", c.Pending(), livePeriodic+liveOneShot)
	}
}

// TestWheelNextDueAcrossLevels checks NextDue stays exact as timers
// spread across levels and earlier ones are cancelled.
func TestWheelNextDueAcrossLevels(t *testing.T) {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewVirtual(start)
	var ids []TimerID
	ds := []time.Duration{
		30 * time.Millisecond,
		700 * time.Millisecond,
		90 * time.Second,
		3 * time.Hour,
	}
	for _, d := range ds {
		ids = append(ids, c.After(d, func(time.Time) {}))
	}
	for i := range ds {
		due, ok := c.NextDue()
		if !ok || !due.Equal(start.Add(ds[i])) {
			t.Fatalf("after %d cancels: NextDue = %v, %v; want %v", i, due, ok, start.Add(ds[i]))
		}
		c.Cancel(ids[i])
	}
	if _, ok := c.NextDue(); ok {
		t.Fatal("NextDue reported a timer after all cancelled")
	}
}

// BenchmarkWheelStorm measures one Advance window over n same-period
// timers — the shape the cohort layer reduces to a handful of entries,
// and the per-object baseline leaves at full width.
func BenchmarkWheelStorm(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
			c := NewVirtual(start)
			for i := 0; i < n; i++ {
				c.Every(time.Second, func(time.Time) {})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Advance(time.Second)
			}
		})
	}
}
