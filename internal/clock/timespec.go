package clock

import (
	"fmt"
	"strings"
	"time"
)

// TimeSpec is the paper's time format (§3.1):
//
//	time(YR=year, MO=month, DAY=day, HR=hour, M=minute, SEC=seconds, MS=milliseconds)
//
// "with any of these items possibly being omitted". Omitted fields are
// -1. Used as an `at` specification, omitted high-order fields make
// the event recur (time(HR=17) fires daily at 17:00); used as a
// period, the fields add up to a duration.
type TimeSpec struct {
	Year, Month, Day, Hour, Min, Sec, Ms int
}

// EmptyTimeSpec returns a TimeSpec with every field unspecified.
func EmptyTimeSpec() TimeSpec {
	return TimeSpec{Year: -1, Month: -1, Day: -1, Hour: -1, Min: -1, Sec: -1, Ms: -1}
}

// IsZeroPeriod reports whether the spec, read as a period, is zero.
func (ts TimeSpec) IsZeroPeriod() bool { return ts.Period() == 0 }

// Period reads the spec as a time period for `every` and `after`
// (paper §3.1). Months count as 30 days and years as 365 days; the
// approximation is documented behaviour, matching the spec's use for
// relative delays.
func (ts TimeSpec) Period() time.Duration {
	var d time.Duration
	f := func(v int, unit time.Duration) {
		if v > 0 {
			d += time.Duration(v) * unit
		}
	}
	f(ts.Year, 365*24*time.Hour)
	f(ts.Month, 30*24*time.Hour)
	f(ts.Day, 24*time.Hour)
	f(ts.Hour, time.Hour)
	f(ts.Min, time.Minute)
	f(ts.Sec, time.Second)
	f(ts.Ms, time.Millisecond)
	return d
}

// NextMatch returns the earliest instant strictly after t whose
// calendar fields match every specified field, in t's location. ok is
// false when no such instant exists within a ten-year search horizon
// (e.g. YR of the past, or an impossible DAY for the specified MO).
func (ts TimeSpec) NextMatch(t time.Time) (next time.Time, ok bool) {
	// Fields finer than the finest specified one are pinned to their
	// floor (0, or 1 for day/month): time(HR=17) means 17:00:00.000
	// daily, not any instant within hour 17. Coarser unspecified
	// fields remain wildcards — that is what makes the spec recur.
	ts = ts.normalized()
	loc := t.Location()
	cur := t.Add(time.Millisecond).Truncate(time.Millisecond)
	horizon := t.Year() + 10

	for guard := 0; guard < 100000; guard++ {
		if cur.Year() > horizon {
			return time.Time{}, false
		}
		if ts.Year >= 0 {
			switch {
			case cur.Year() < ts.Year:
				cur = time.Date(ts.Year, 1, 1, 0, 0, 0, 0, loc)
			case cur.Year() > ts.Year:
				return time.Time{}, false
			}
		}
		if ts.Month >= 1 && int(cur.Month()) != ts.Month {
			y := cur.Year()
			if int(cur.Month()) > ts.Month {
				y++
			}
			cur = time.Date(y, time.Month(ts.Month), 1, 0, 0, 0, 0, loc)
			continue // re-verify year
		}
		if ts.Day >= 1 && cur.Day() != ts.Day {
			if cur.Day() > ts.Day {
				// First of next month.
				cur = time.Date(cur.Year(), cur.Month()+1, 1, 0, 0, 0, 0, loc)
			} else {
				cand := time.Date(cur.Year(), cur.Month(), ts.Day, 0, 0, 0, 0, loc)
				if cand.Day() != ts.Day {
					// Day overflows this month (e.g. Feb 30): skip the month.
					cur = time.Date(cur.Year(), cur.Month()+1, 1, 0, 0, 0, 0, loc)
				} else {
					cur = cand
				}
			}
			continue // re-verify month/year
		}
		if ts.Hour >= 0 && cur.Hour() != ts.Hour {
			if cur.Hour() > ts.Hour {
				cur = time.Date(cur.Year(), cur.Month(), cur.Day()+1, 0, 0, 0, 0, loc)
			} else {
				cur = time.Date(cur.Year(), cur.Month(), cur.Day(), ts.Hour, 0, 0, 0, loc)
			}
			continue
		}
		if ts.Min >= 0 && cur.Minute() != ts.Min {
			if cur.Minute() > ts.Min {
				cur = cur.Truncate(time.Hour).Add(time.Hour)
			} else {
				cur = cur.Truncate(time.Hour).Add(time.Duration(ts.Min) * time.Minute)
			}
			continue
		}
		if ts.Sec >= 0 && cur.Second() != ts.Sec {
			if cur.Second() > ts.Sec {
				cur = cur.Truncate(time.Minute).Add(time.Minute)
			} else {
				cur = cur.Truncate(time.Minute).Add(time.Duration(ts.Sec) * time.Second)
			}
			continue
		}
		if ts.Ms >= 0 {
			ms := cur.Nanosecond() / int(time.Millisecond)
			if ms != ts.Ms {
				if ms > ts.Ms {
					cur = cur.Truncate(time.Second).Add(time.Second)
				} else {
					cur = cur.Truncate(time.Second).Add(time.Duration(ts.Ms) * time.Millisecond)
				}
				continue
			}
		}
		return cur, true
	}
	return time.Time{}, false
}

// normalized pins unspecified fields finer than the finest specified
// field to their floor value.
func (ts TimeSpec) normalized() TimeSpec {
	fields := []*int{&ts.Year, &ts.Month, &ts.Day, &ts.Hour, &ts.Min, &ts.Sec, &ts.Ms}
	floors := []int{0, 1, 1, 0, 0, 0, 0}
	finest := -1
	for i, f := range fields {
		if *f >= 0 {
			finest = i
		}
	}
	for i := finest + 1; i < len(fields); i++ {
		if *fields[i] < 0 {
			*fields[i] = floors[i]
		}
	}
	return ts
}

// String renders the spec in the paper's syntax.
func (ts TimeSpec) String() string {
	var parts []string
	add := func(name string, v int) {
		if v >= 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("YR", ts.Year)
	add("MO", ts.Month)
	add("DAY", ts.Day)
	add("HR", ts.Hour)
	add("M", ts.Min)
	add("SEC", ts.Sec)
	add("MS", ts.Ms)
	return "time(" + strings.Join(parts, ", ") + ")"
}
