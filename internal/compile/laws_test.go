package compile

import (
	"math/rand"
	"testing"

	"ode/internal/algebra"
	"ode/internal/fa"
)

// The event algebra satisfies a body of laws the paper states or
// implies; each is checked as DFA language equivalence over randomized
// sub-expressions. A failure prints a distinguishing history.

const lawSymbols = 3

func lawExpr(rng *rand.Rand) *algebra.Expr {
	return randomExpr(rng, lawSymbols, 2)
}

func mustEquiv(t *testing.T, name string, x, y *algebra.Expr) {
	t.Helper()
	dx := Compile(x, lawSymbols)
	dy := Compile(y, lawSymbols)
	if !fa.Equivalent(dx, dy) {
		t.Fatalf("%s violated:\n  lhs %s\n  rhs %s\n  distinguishing history %v",
			name, x, y, fa.Distinguish(dx, dy))
	}
}

func mustSubset(t *testing.T, name string, x, y *algebra.Expr) {
	t.Helper()
	dx := Compile(x, lawSymbols)
	dy := Compile(y, lawSymbols)
	if w, ok := fa.Difference(dx, dy).ShortestAccepted(); ok {
		t.Fatalf("%s violated: %s ⊄ %s, witness %v", name, x, y, w)
	}
}

func TestLawRelativeAssociative(t *testing.T) {
	// relative is concatenation, so the currying order is immaterial:
	// relative(relative(a,b),c) ≡ relative(a,relative(b,c)).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		a, b, c := lawExpr(rng), lawExpr(rng), lawExpr(rng)
		mustEquiv(t, "relative associativity",
			algebra.Relative(algebra.Relative(a, b), c),
			algebra.Relative(a, algebra.Relative(b, c)))
	}
}

func TestLawBooleanStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		a, b := lawExpr(rng), lawExpr(rng)
		mustEquiv(t, "| commutativity", algebra.Or(a, b), algebra.Or(b, a))
		mustEquiv(t, "& commutativity", algebra.And(a, b), algebra.And(b, a))
		// De Morgan within the point lattice: !(A | B) = !A & !B.
		mustEquiv(t, "De Morgan",
			algebra.Not(algebra.Or(a, b)),
			algebra.And(algebra.Not(a), algebra.Not(b)))
		// Double negation restores the event.
		mustEquiv(t, "double negation", algebra.Not(algebra.Not(a)), a)
	}
}

func TestLawPlusIdempotentFixpoint(t *testing.T) {
	// relative+(relative+(E)) ≡ relative+(E): chains of chains are
	// chains.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		a := lawExpr(rng)
		mustEquiv(t, "relative+ idempotence",
			algebra.Plus(algebra.Plus(a)), algebra.Plus(a))
		// E ⊆ relative+(E) and relative(E,E) ⊆ relative+(E).
		mustSubset(t, "E ⊆ relative+(E)", a, algebra.Plus(a))
		mustSubset(t, "relative(E,E) ⊆ relative+(E)",
			algebra.Relative(a, a), algebra.Plus(a))
	}
}

func TestLawCurriedIdentity(t *testing.T) {
	// The paper defines prior(E) = relative(E) = sequence(E) = E, and
	// relative 1 (E) = E.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		a := lawExpr(rng)
		mustEquiv(t, "relative 1 (E) = E", algebra.RelativeN(a, 1), a)
		mustEquiv(t, "prior 1 (E) = E", algebra.PriorN(a, 1), a)
		mustEquiv(t, "sequence 1 (E) = E", algebra.SequenceN(a, 1), a)
		mustEquiv(t, "every 1 (E) = E", algebra.Every(a, 1), a)
	}
}

func TestLawPriorPlusCollapses(t *testing.T) {
	// §3.4: "The events prior+(E) and sequence+(E) are both equivalent
	// to the event E" — the additional disjuncts prior(E,E),
	// prior(E,E,E), ... are specializations of E. Checked for the
	// first few disjuncts: E | prior(E,E) | prior(E,E,E) ≡ E.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		a := lawExpr(rng)
		union := algebra.OrList(a, algebra.PriorN(a, 2), algebra.PriorN(a, 3))
		mustEquiv(t, "prior+(E) = E", union, a)
		unionSeq := algebra.OrList(a, algebra.SequenceN(a, 2), algebra.SequenceN(a, 3))
		// sequence n (E) for composite E is not generally ⊆ E (the nth
		// copy must occur at a single point), but for the paper's
		// claim the union with E still collapses when E is a union of
		// logical events — check that restricted form.
		_ = unionSeq
	}
	// The logical-event form of the sequence claim.
	for sym := 0; sym < lawSymbols; sym++ {
		a := algebra.Atom(sym)
		union := algebra.OrList(a, algebra.SequenceN(a, 2), algebra.SequenceN(a, 3))
		mustEquiv(t, "sequence+(E) = E for logical events", union, a)
	}
}

func TestLawChooseInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		a := lawExpr(rng)
		n := 1 + rng.Intn(4)
		// choose n (E) ⊆ E and every n (E) ⊆ E.
		mustSubset(t, "choose ⊆ E", algebra.Choose(a, n), a)
		mustSubset(t, "every ⊆ E", algebra.Every(a, n), a)
	}
	// choose n (E) ⊆ relative n (E) holds for logical events (the nth
	// occurrence completes an n-chain) …
	for sym := 0; sym < lawSymbols; sym++ {
		a := algebra.Atom(sym)
		for n := 1; n <= 4; n++ {
			mustSubset(t, "choose n ⊆ relative n (atoms)",
				algebra.Choose(a, n), algebra.RelativeN(a, n))
		}
	}
	// … but NOT for truncation-sensitive composite events — the same
	// phenomenon as the paper's footnote 4. E = prior(a, !c) occurs at
	// points of the full history that have an earlier a, yet in a
	// truncated history the "earlier a" may be gone, so an occurrence
	// chain cannot be re-established: choose 2 (E) can fire where
	// relative(E, E) cannot.
	e := algebra.Prior(algebra.Atom(0), algebra.Not(algebra.Atom(2)))
	ch := Compile(algebra.Choose(e, 2), lawSymbols)
	rel := Compile(algebra.RelativeN(e, 2), lawSymbols)
	if _, ok := fa.Difference(ch, rel).ShortestAccepted(); !ok {
		t.Fatal("expected footnote-4 style counterexample: choose 2 ⊆ relative 2 for non-monotone E")
	}
	if !ch.Accepts([]int{0, 0, 0}) || rel.Accepts([]int{0, 0, 0}) {
		t.Fatal("the canonical witness [a a a] should separate choose from relative")
	}
}

func TestLawFaWithoutGuard(t *testing.T) {
	// fa(E, F, empty) is the first F strictly after each E — it is
	// contained in relative(E, F), and equals relative(E, F) minus
	// later repetitions.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		e, f := lawExpr(rng), lawExpr(rng)
		mustSubset(t, "fa(E,F,∅) ⊆ relative(E,F)",
			algebra.Fa(e, f, algebra.Empty()),
			algebra.Relative(e, f))
	}
}

func TestLawFaAbsEqualsFaWhenGuardAtomic(t *testing.T) {
	// For a guard that is a single logical event, suffix-context and
	// whole-history-context evaluation coincide (an atom occurs at a
	// point regardless of truncation), so fa ≡ faAbs.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		e, f := lawExpr(rng), lawExpr(rng)
		g := algebra.Atom(rng.Intn(lawSymbols))
		mustEquiv(t, "fa = faAbs for atomic guards",
			algebra.Fa(e, f, g), algebra.FaAbs(e, f, g))
	}
}

func TestLawSequenceViaRelativeAndNot(t *testing.T) {
	// For logical events a, b: sequence(a, b) = points where b occurs
	// immediately after a. Equivalent formulation via the core
	// language: relative(a, b & !relative(anything, anything)) — b at
	// the first point of the truncated history, i.e. b with no point
	// of the suffix before it. "first point of a history" is
	// !prior(any, any) where any = union of all symbols.
	var anyAtoms []*algebra.Expr
	for s := 0; s < lawSymbols; s++ {
		anyAtoms = append(anyAtoms, algebra.Atom(s))
	}
	any := algebra.OrList(anyAtoms...)
	first := algebra.Not(algebra.Prior(any, any)) // points with nothing before them
	for i := 0; i < lawSymbols; i++ {
		for j := 0; j < lawSymbols; j++ {
			a, b := algebra.Atom(i), algebra.Atom(j)
			mustEquiv(t, "sequence via core operators",
				algebra.Sequence(a, b),
				algebra.Relative(a, algebra.And(b, first)))
		}
	}
}
