package compile

import (
	"math/rand"
	"os"
	"testing"

	"ode/internal/algebra"
	"ode/internal/fa"
)

// TestMain enables fa output validation for the whole package: every
// automaton built while compiling (Determinize, Minimize, Compress)
// gets structurally checked.
func TestMain(m *testing.M) {
	fa.SetOutputValidation(true)
	os.Exit(m.Run())
}

// TestCompileSharedOracleRandom is the PR's central property, checked
// on well over 1000 randomized expression/word pairs:
//
//  1. stepping the hash-consed compact form through the class-symbol
//     remap visits state-for-state the same trajectory as its expanded
//     fat oracle, and
//  2. the accept decision at every history point matches the directly
//     compiled per-class automaton (the §5 baseline), i.e. alphabet
//     normalization did not change the recognized language.
func TestCompileSharedOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1992))
	pairs := 0
	for i := 0; i < 400; i++ {
		k := 2 + rng.Intn(4)
		e := randomExpr(rng, k, 3)
		shared := CompileShared(e, k)
		oracle := shared.Expand() // same numbering as the compact form
		baseline := Compile(e, k) // independent per-class compilation
		if !fa.Equivalent(oracle, baseline) {
			t.Fatalf("iter %d: shared automaton language differs from baseline; witness %v",
				i, fa.Distinguish(oracle, baseline))
		}
		for w := 0; w < 3; w++ {
			pairs++
			word := make([]int, rng.Intn(24))
			for j := range word {
				word[j] = rng.Intn(k)
			}
			cs, os_, bs := shared.Start(), oracle.Start, baseline.Start
			for step, a := range word {
				cs = shared.Next(cs, a)
				os_ = oracle.Next(os_, a)
				bs = baseline.Next(bs, a)
				if cs != os_ {
					t.Fatalf("iter %d word %d step %d: compact state %d, oracle state %d",
						i, w, step, cs, os_)
				}
				if shared.Accept(cs) != baseline.Accept[bs] {
					t.Fatalf("iter %d word %d step %d: accept disagrees with baseline", i, w, step)
				}
			}
		}
	}
	if pairs < 1000 {
		t.Fatalf("property exercised only %d expression/word pairs, want ≥1000", pairs)
	}
}

// TestHashConsSharesTables pins the cache's point: structurally
// equivalent expressions over different class alphabets — even with
// different symbol numbers — share one resident table.
func TestHashConsSharesTables(t *testing.T) {
	ResetAutomatonCache()
	a := CompileShared(algebra.Atom(2), 5)
	b := CompileShared(algebra.Atom(0), 3)
	if a.Tab != b.Tab {
		t.Fatal("alphabet-normalized equivalent expressions did not share a table")
	}
	// The remaps must still distinguish the mentioned symbol.
	if a.SymMap[2] == a.SymMap[0] {
		t.Fatal("mentioned and unmentioned symbols mapped to the same column")
	}
	if a.SymMap[2] != b.SymMap[0] {
		t.Fatal("the mentioned atom should map to the same normalized column")
	}

	// Composite shape: sequence(X, Y) with shifted symbols.
	c := CompileShared(algebra.Sequence(algebra.Atom(1), algebra.Atom(3)), 6)
	d := CompileShared(algebra.Sequence(algebra.Atom(0), algebra.Atom(5)), 8)
	if c.Tab != d.Tab {
		t.Fatal("isomorphic sequences did not share a table")
	}
	// sequence(b,a) is isomorphic to sequence(a,b) up to alphabet
	// renaming — first-occurrence normalization shares the table and the
	// symbol maps carry the difference.
	swapped := CompileShared(algebra.Sequence(algebra.Atom(3), algebra.Atom(1)), 6)
	if swapped.Tab != c.Tab {
		t.Fatal("swapped sequence should share the normalized table")
	}
	if swapped.SymMap[3] != c.SymMap[1] || swapped.SymMap[1] != c.SymMap[3] {
		t.Fatal("swapped sequence should swap the symbol map")
	}
	// A genuinely different structure must not share.
	e := CompileShared(algebra.Sequence(algebra.Atom(1), algebra.Atom(1)), 6)
	if e.Tab == c.Tab {
		t.Fatal("sequence over one atom aliased to the two-atom table")
	}

	st := AutomatonCacheStats()
	if st.Misses != 3 || st.Hits != 3 {
		t.Fatalf("cache stats = %d misses / %d hits, want 3/3", st.Misses, st.Hits)
	}
	if st.Entries != 3 {
		t.Fatalf("cache holds %d entries, want 3", st.Entries)
	}
	if st.TableBytes == 0 {
		t.Fatal("resident table bytes not accounted")
	}
}

// TestSharedRepeatRegistration: compiling the same expression for the
// same alphabet twice returns the identical table and counts a hit.
func TestSharedRepeatRegistration(t *testing.T) {
	ResetAutomatonCache()
	e := algebra.Relative(algebra.Atom(0), algebra.Atom(1))
	a := CompileShared(e, 4)
	b := CompileShared(e, 4)
	if a.Tab != b.Tab {
		t.Fatal("repeat compilation did not hit the cache")
	}
	st := AutomatonCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestCompileSharedPanicsOutOfAlphabet mirrors Compile's contract.
func TestCompileSharedPanicsOutOfAlphabet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-alphabet symbol")
		}
	}()
	CompileShared(algebra.Atom(7), 3)
}

// TestCombinedCompactBacking checks the footnote-5 product automaton
// still behaves identically now that its rows live in compact form.
func TestCombinedCompactBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 50; i++ {
		k := 2 + rng.Intn(3)
		n := 1 + rng.Intn(4)
		dfas := make([]*fa.DFA, n)
		for j := range dfas {
			dfas[j] = Compile(randomExpr(rng, k, 2), k)
		}
		comb := Combine(dfas)
		if comb.Bytes() == 0 {
			t.Fatal("combined monitor reports zero footprint")
		}
		states := make([]int, n)
		for j, d := range dfas {
			states[j] = d.Start
		}
		cur := comb.Start
		for step := 0; step < 40; step++ {
			sym := rng.Intn(k)
			var want uint64
			for j, d := range dfas {
				states[j] = d.Next(states[j], sym)
				if d.Accept[states[j]] {
					want |= 1 << uint(j)
				}
			}
			var fired uint64
			cur, fired = comb.Post(cur, sym)
			if fired != want {
				t.Fatalf("iter %d step %d: fire mask %b, want %b", i, step, fired, want)
			}
		}
	}
}
