package compile

import (
	"testing"

	"ode/internal/algebra"
)

// TestCounterEdgeCases pins choose n / every n / prior n at their
// boundary counts — n=1 (the degenerate form), n exactly the number of
// occurrences, and n greater than any history can supply — with
// hand-computed firing points. Each case is checked three ways: the
// denotational oracle must match the expectation, and the compiled
// automaton must match the oracle point for point, so a bug in either
// side (or in both, agreeing) cannot slip through.
//
// Histories are over the alphabet {0, 1}: symbol 0 is the counted atom,
// symbol 1 is noise that advances the history without occurring.
func TestCounterEdgeCases(t *testing.T) {
	a := algebra.Atom(0)
	cases := []struct {
		name string
		expr *algebra.Expr
		h    []int
		want []bool
	}{
		{"choose 1 is the first occurrence only", algebra.Choose(a, 1),
			[]int{1, 0, 0, 1, 0}, []bool{false, true, false, false, false}},
		{"choose 1 with no occurrence", algebra.Choose(a, 1),
			[]int{1, 1, 1}, []bool{false, false, false}},
		{"choose n lands on the history's last point", algebra.Choose(a, 3),
			[]int{0, 0, 0}, []bool{false, false, true}},
		{"choose n exceeding the occurrence count never fires", algebra.Choose(a, 4),
			[]int{0, 1, 0, 1, 0}, []bool{false, false, false, false, false}},
		{"choose n exceeding the history length never fires", algebra.Choose(a, 9),
			[]int{0, 0, 0, 0}, []bool{false, false, false, false}},
		{"every 1 is the event itself", algebra.Every(a, 1),
			[]int{0, 1, 0, 0}, []bool{true, false, true, true}},
		{"every 2 fires at each even occurrence", algebra.Every(a, 2),
			[]int{0, 0, 1, 0, 0}, []bool{false, true, false, false, true}},
		{"every n exceeding the history length never fires", algebra.Every(a, 9),
			[]int{0, 0, 0, 0}, []bool{false, false, false, false}},
		{"prior 1 is the event itself", algebra.PriorN(a, 1),
			[]int{1, 0, 1, 0}, []bool{false, true, false, true}},
		{"prior 2 is every occurrence after the first", algebra.PriorN(a, 2),
			[]int{0, 1, 0, 0}, []bool{false, false, true, true}},
		{"prior n exceeding the occurrence count never fires", algebra.PriorN(a, 5),
			[]int{0, 0, 0, 0}, []bool{false, false, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := algebra.FiringPoints(tc.expr, tc.h)
			for p := range tc.h {
				if got[p] != tc.want[p] {
					t.Fatalf("oracle: %s over %v, point %d: got %v want %v",
						tc.expr, tc.h, p, got[p], tc.want[p])
				}
			}
			checkAgainstOracle(t, tc.expr, 2, tc.h)
		})
	}
}

// TestCounterEdgeExhaustive sweeps every {0,1}-history up to length 6
// for the boundary counts, comparing automaton against oracle. The
// n=7 automata must behave exactly like Empty() on every history this
// short — a counter that saturates early or wraps would show up here.
func TestCounterEdgeExhaustive(t *testing.T) {
	a := algebra.Atom(0)
	exprs := []*algebra.Expr{
		algebra.Choose(a, 1), algebra.Choose(a, 7),
		algebra.Every(a, 1), algebra.Every(a, 7),
		algebra.PriorN(a, 1), algebra.PriorN(a, 7),
	}
	allHistories(2, 6, func(h []int) {
		for _, e := range exprs {
			checkAgainstOracle(t, e, 2, h)
		}
	})
}

// TestCounterZeroRejected pins the constructor contract: a zero
// occurrence count is a specification error rejected at construction,
// never silently treated as "empty" or "always". (The surface parser
// rejects it earlier still — see evlang's TestParseErrors.)
func TestCounterZeroRejected(t *testing.T) {
	a := algebra.Atom(0)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: n=0 accepted, want panic", name)
			}
		}()
		fn()
	}
	mustPanic("choose", func() { algebra.Choose(a, 0) })
	mustPanic("every", func() { algebra.Every(a, 0) })
	mustPanic("prior", func() { algebra.PriorN(a, 0) })
}
