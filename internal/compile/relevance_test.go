package compile

import (
	"math/rand"
	"testing"

	"ode/internal/algebra"
)

// TestInertSymbolAfterDeposit pins the motivating case: for the
// language Σ*a ("the event just happened"), every other symbol is
// inert — even though the minimized DFA has no universal self-loop on
// it (the accept state exits on the don't-care symbol).
func TestInertSymbolAfterDeposit(t *testing.T) {
	d := Compile(algebra.Atom(0), 2)
	for _, perpetual := range []bool{false, true} {
		if !InertSymbol(d, 1, perpetual) {
			t.Errorf("perpetual=%v: symbol 1 should be inert for Σ*0", perpetual)
		}
		if InertSymbol(d, 0, perpetual) {
			t.Errorf("perpetual=%v: symbol 0 must not be inert for Σ*0", perpetual)
		}
	}
}

// TestInertSymbolSequenceStrict: sequence(0,1) requires 1 immediately
// after 0, so even the "unused" symbol 2 is load-bearing — it breaks
// the adjacency — and nothing is inert. For the disjunction 0|1 the
// unused symbol really is inert.
func TestInertSymbolSequenceStrict(t *testing.T) {
	seq := Compile(algebra.Sequence(algebra.Atom(0), algebra.Atom(1)), 3)
	for sym := 0; sym < 3; sym++ {
		if InertSymbol(seq, sym, true) {
			t.Errorf("symbol %d must not be inert for sequence(0,1): it breaks adjacency", sym)
		}
	}
	or := Compile(algebra.Or(algebra.Atom(0), algebra.Atom(1)), 3)
	if !InertSymbol(or, 2, true) {
		t.Error("unused symbol 2 should be inert for 0|1")
	}
	if InertSymbol(or, 0, true) || InertSymbol(or, 1, true) {
		t.Error("constituents of 0|1 must not be inert")
	}
}

// TestInertSymbolSkipEquivalenceRandom is the safety property behind
// kind-relevance skipping: for random expressions, whenever InertSymbol
// judges a symbol inert, a run that skips that symbol entirely fires at
// exactly the same points as the full run — under both the perpetual
// lifecycle (state never resets) and the ordinary one (accept
// deactivates; modeled as an immediate reset to Start, the engine's
// re-activation worst case).
func TestInertSymbolSkipEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(418))
	const k = 3
	iters := 300
	if testing.Short() {
		iters = 60
	}
	inertSeen := 0
	for i := 0; i < iters; i++ {
		e := randomExpr(rng, k, 3)
		d := Compile(e, k)
		for sym := 0; sym < k; sym++ {
			for _, perpetual := range []bool{false, true} {
				if !InertSymbol(d, sym, perpetual) {
					continue
				}
				inertSeen++
				for h := 0; h < 20; h++ {
					n := 1 + rng.Intn(12)
					hist := make([]int, n)
					for j := range hist {
						hist[j] = rng.Intn(k)
					}
					full, skip := d.Start, d.Start
					for _, a := range hist {
						fNext := d.Next(full, a)
						fFire := d.Accept[fNext]
						var sFire bool
						if a == sym {
							sFire = false // skipped: no transition, no fire
						} else {
							sNext := d.Next(skip, a)
							sFire = d.Accept[sNext]
							skip = sNext
						}
						full = fNext
						if fFire != sFire {
							t.Fatalf("expr %v sym %d perpetual=%v hist %v: full fires=%v, skipping run fires=%v",
								e, sym, perpetual, hist, fFire, sFire)
						}
						if fFire && !perpetual {
							full, skip = d.Start, d.Start
						}
						if sFire && !perpetual {
							full, skip = d.Start, d.Start
						}
					}
				}
			}
		}
	}
	if inertSeen == 0 {
		t.Fatal("generator never produced an inert symbol; property untested")
	}
	t.Logf("checked %d inert (dfa, symbol) pairs", inertSeen)
}
