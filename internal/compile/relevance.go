package compile

import "ode/internal/fa"

// InertSymbol reports whether symbol sym can never affect detection by
// d: an engine that skips feeding sym to the automaton entirely fires
// at exactly the same history points as one that does not.
//
// The naive sufficient condition — sym self-loops on every state — is
// almost never true of minimized automata: accepting states exit on
// don't-care symbols (Σ*a accepts only when a was the LAST symbol, so
// anything else must leave the accept state). The useful condition is
// behavioral: sym is inert iff from every relevant state s, reading
// sym lands in a state t with
//
//  1. !Accept[t] — skipping never suppresses a firing, and
//  2. t == s, or s and t have identical transition rows
//     (∀a: Next(s,a) == Next(t,a)) — after the next symbol the two
//     runs coincide, so skipping never changes any later verdict.
//
// Condition 2 tolerates states that a minimized DFA keeps distinct
// only because they differ in acceptance "now": e.g. for "after
// deposit", reading withdraw from the accept state moves to the
// non-accepting start state, but both rows are identical, so withdraw
// is inert.
//
// The relevant states depend on the trigger's lifecycle. A perpetual
// trigger keeps stepping forever, so every reachable state counts. An
// ordinary (non-perpetual) trigger is deactivated the moment it fires
// and re-activation resets the automaton to Start, so no symbol is
// ever read FROM an accepting state, and states only reachable by
// stepping past an accepting state are never visited: reachability is
// bounded at accepting states and the accepting states themselves are
// exempt from the check.
func InertSymbol(d *fa.DFA, sym int, perpetual bool) bool {
	reach := reachable(d, perpetual)
	for s := 0; s < d.NumStates; s++ {
		if !reach[s] {
			continue
		}
		if !perpetual && d.Accept[s] {
			continue // deactivated on firing; never steps from here
		}
		t := d.Next(s, sym)
		if d.Accept[t] {
			return false
		}
		if t == s {
			continue
		}
		if !sameRow(d, s, t) {
			return false
		}
	}
	return true
}

// reachable returns the states reachable from Start; with perpetual ==
// false the walk does not step out of accepting states (the trigger is
// deactivated there and re-activation resets to Start).
func reachable(d *fa.DFA, perpetual bool) []bool {
	seen := make([]bool, d.NumStates)
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !perpetual && d.Accept[s] {
			continue
		}
		for a := 0; a < d.NumSymbols; a++ {
			t := d.Next(s, a)
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// sameRow reports whether states s and t have identical transition
// rows.
func sameRow(d *fa.DFA, s, t int) bool {
	for a := 0; a < d.NumSymbols; a++ {
		if d.Next(s, a) != d.Next(t, a) {
			return false
		}
	}
	return true
}
