package compile

import (
	"math/rand"
	"testing"

	"ode/internal/fa"
)

// TestAblationNoIntermediateMinEquivalent checks the ablation entry
// point preserves the language exactly and never yields a smaller
// final automaton (both end minimized, so they must be identical in
// size).
func TestAblationNoIntermediateMinEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		e := randomExpr(rng, 3, 3)
		withMin := Compile(e, 3)
		without := CompileNoIntermediateMin(e, 3)
		if !fa.Equivalent(withMin, without) {
			t.Fatalf("ablation changed the language of %s; witness %v",
				e, fa.Distinguish(withMin, without))
		}
		if withMin.NumStates != without.NumStates {
			t.Fatalf("final sizes differ for %s: %d vs %d",
				e, withMin.NumStates, without.NumStates)
		}
	}
}

func BenchmarkCompileAblation(b *testing.B) {
	b.Run("with-intermediate-min", func(b *testing.B) {
		r := rand.New(rand.NewSource(23))
		for n := 0; n < b.N; n++ {
			Compile(randomExpr(r, 3, 3), 3)
		}
	})
	b.Run("without-intermediate-min", func(b *testing.B) {
		r := rand.New(rand.NewSource(23))
		for n := 0; n < b.N; n++ {
			CompileNoIntermediateMin(randomExpr(r, 3, 3), 3)
		}
	})
}
