package compile

import "ode/internal/fa"

// PairConstruction implements the §6 Claim of the paper: given an
// automaton A for an event expression stated over the operations of
// committed transactions only, it builds A' which reads the whole
// history — including the operations of transactions that later abort
// — and is at every point in the state A would be in over the
// committed projection of that history.
//
// Each A' state is a pair (a, b): a is the state A is "really" in, and
// b is a checkpoint of A's state taken at the last commit. On
// tcommitSym, A' moves to (r, r) with r = δ_A(a, tcommit); on
// tabortSym it rolls back to (b, b), discarding everything the aborted
// transaction posted (including its tbegin); on every other symbol it
// moves to (δ_A(a, sym), b).
//
// The construction assumes object-level locking (paper §6): the
// transactions touching one object are serialized, so the checkpoint
// taken at a commit is also A's state just before the next tbegin.
// The committed-view expression never mentions tabort, so δ_A on
// tabortSym is irrelevant and ignored.
//
// The result has at most |A|² reachable states; it is minimized before
// being returned. Acceptance follows the first component: a trigger
// firing inside a transaction that later aborts is itself undone by
// that abort, which is exactly the "automaton state as part of the
// object" semantics of §6.
func PairConstruction(a *fa.DFA, tcommitSym, tabortSym int) *fa.DFA {
	if tcommitSym < 0 || tcommitSym >= a.NumSymbols ||
		tabortSym < 0 || tabortSym >= a.NumSymbols || tcommitSym == tabortSym {
		panic("compile: bad transaction symbols")
	}
	k := a.NumSymbols

	type pair struct{ cur, ckpt int }
	start := pair{a.Start, a.Start}
	index := map[pair]int{start: 0}
	order := []pair{start}

	d := &fa.DFA{NumSymbols: k, Start: 0}
	var trans [][]int
	trans = append(trans, make([]int, k))

	get := func(p pair) int {
		if id, ok := index[p]; ok {
			return id
		}
		id := len(order)
		index[p] = id
		order = append(order, p)
		trans = append(trans, make([]int, k))
		return id
	}

	for done := 0; done < len(order); done++ {
		p := order[done]
		for sym := 0; sym < k; sym++ {
			var q pair
			switch sym {
			case tcommitSym:
				r := a.Next(p.cur, sym)
				q = pair{r, r}
			case tabortSym:
				q = pair{p.ckpt, p.ckpt}
			default:
				q = pair{a.Next(p.cur, sym), p.ckpt}
			}
			trans[done][sym] = get(q)
		}
	}

	d.NumStates = len(order)
	d.Trans = make([]int, len(order)*k)
	d.Accept = make([]bool, len(order))
	for i, p := range order {
		d.Accept[i] = a.Accept[p.cur]
		copy(d.Trans[i*k:(i+1)*k], trans[i])
	}
	return fa.Minimize(d)
}
