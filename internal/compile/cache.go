package compile

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"ode/internal/algebra"
	"ode/internal/fa"
)

// Hash-consed shared automata.
//
// The paper's §5 technique compiles one transition table per (class,
// trigger). At scale most of those tables are duplicates: a fleet of
// classes declaring "after deposit(n) && n > 1000 ==> ..." differs
// only in which dense symbol the class alphabet happens to assign to
// the masked deposit kind. CompileShared therefore normalizes the
// expression's alphabet away — atoms are renumbered in first-occurrence
// order and every unmentioned symbol collapses onto a single
// "anything else" column, which is sound because the §4 semantics
// inspects history symbols only through equality with the atoms the
// expression mentions, so unmentioned symbols are interchangeable —
// and the canonical encoding of the normalized expression keys a
// process-wide cache of compact tables. Equivalent triggers across
// classes, and repeated RegisterClass calls, then share one
// row-deduplicated fa.Compact instead of each re-running subset
// construction and Hopcroft minimization over a private fat table.

// Table is one hash-consed compact automaton over its normalized
// alphabet. Tables are immutable and shared process-wide; pointer
// equality is identity.
type Table struct {
	// Compact is the shared row-deduplicated transition table over the
	// normalized alphabet (mentioned atoms renumbered 0..m-1, plus one
	// trailing "other" column for every unmentioned class symbol).
	Compact *fa.Compact
	// Hash is the FNV-1a digest of the canonical structural encoding,
	// for display and debug listings (the cache itself is keyed by the
	// full encoding, so hash collisions cannot alias tables).
	Hash uint64
}

// Shared binds a hash-consed Table to one class alphabet: the symbol
// map translates class symbols to normalized columns. A Shared is the
// per-trigger stepping automaton; its state numbering is the Table's.
type Shared struct {
	Tab *Table
	// SymMap[classSym] is the normalized column the class symbol steps.
	SymMap []uint16
}

// Start returns the start state.
func (s *Shared) Start() int { return s.Tab.Compact.Start() }

// Next advances one state on a class-alphabet symbol: one remap load
// plus the compact table step, allocation-free.
func (s *Shared) Next(state, classSym int) int {
	return s.Tab.Compact.Next(state, int(s.SymMap[classSym]))
}

// Accept reports whether state is accepting.
func (s *Shared) Accept(state int) bool { return s.Tab.Compact.Accept(state) }

// Expand materializes the fat class-alphabet DFA with state numbering
// identical to the compact form — the shadow/test oracle and the input
// to registration-time analyses (InertSymbol, the footnote-5 product).
func (s *Shared) Expand() *fa.DFA {
	c := s.Tab.Compact
	k := len(s.SymMap)
	d := fa.NewDFA(c.NumStates(), k, c.Start())
	for st := 0; st < c.NumStates(); st++ {
		d.Accept[st] = c.Accept(st)
		for a := 0; a < k; a++ {
			d.SetNext(st, a, c.Next(st, int(s.SymMap[a])))
		}
	}
	return d
}

// cacheEntry is one slot of the process-wide table cache. The once
// gate lets concurrent registrations of the same expression run subset
// construction exactly once without holding the global lock during
// compilation.
type cacheEntry struct {
	once sync.Once
	tab  *Table
}

var autoCache = struct {
	sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}{entries: map[string]*cacheEntry{}}

// CompileShared compiles e for a class alphabet of numSymbols symbols
// through the process-wide hash-cons cache. It panics if e mentions a
// symbol outside the alphabet, exactly as Compile does.
func CompileShared(e *algebra.Expr, numSymbols int) *Shared {
	if m := e.MaxSymbol(); m >= numSymbols {
		panic(fmt.Sprintf("compile: expression uses symbol %d, alphabet has %d", m, numSymbols))
	}
	simplified := algebra.Simplify(e)

	// Alphabet normalization: atoms renumber to first-occurrence order;
	// column m is "every symbol the expression does not mention".
	var order []int
	index := map[int]int{}
	simplified.Walk(func(x *algebra.Expr) {
		if x.Op == algebra.OpAtom {
			if _, ok := index[x.Sym]; !ok {
				index[x.Sym] = len(order)
				order = append(order, x.Sym)
			}
		}
	})
	m := len(order)
	norm := renumber(simplified, index)
	key := encodeCanonical(norm)

	autoCache.Lock()
	ent, ok := autoCache.entries[key]
	if !ok {
		ent = &cacheEntry{}
		autoCache.entries[key] = ent
	}
	autoCache.Unlock()
	if ok {
		autoCache.hits.Add(1)
	} else {
		autoCache.misses.Add(1)
	}
	ent.once.Do(func() {
		h := fnv.New64a()
		h.Write([]byte(key))
		ent.tab = &Table{
			Compact: fa.Compress(Compile(norm, m+1)),
			Hash:    h.Sum64(),
		}
	})

	symMap := make([]uint16, numSymbols)
	for sym := 0; sym < numSymbols; sym++ {
		if ix, ok := index[sym]; ok {
			symMap[sym] = uint16(ix)
		} else {
			symMap[sym] = uint16(m)
		}
	}
	return &Shared{Tab: ent.tab, SymMap: symMap}
}

// renumber rebuilds the expression with atom symbols mapped through
// index. Non-atom nodes are copied structurally.
func renumber(e *algebra.Expr, index map[int]int) *algebra.Expr {
	if e.Op == algebra.OpAtom {
		return algebra.Atom(index[e.Sym])
	}
	if len(e.Args) == 0 {
		return e
	}
	args := make([]*algebra.Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = renumber(a, index)
	}
	return &algebra.Expr{Op: e.Op, Sym: e.Sym, N: e.N, Args: args}
}

// encodeCanonical serializes the normalized expression into the cache
// key. Arity is fixed per Op, so a preorder stream of (op, payload)
// records is unambiguous.
func encodeCanonical(e *algebra.Expr) string {
	var buf []byte
	var walk func(*algebra.Expr)
	walk = func(x *algebra.Expr) {
		buf = append(buf, byte(x.Op))
		switch x.Op {
		case algebra.OpAtom:
			buf = binary.AppendUvarint(buf, uint64(x.Sym))
		case algebra.OpChoose, algebra.OpEvery:
			buf = binary.AppendUvarint(buf, uint64(x.N))
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	return string(buf)
}

// CacheStats is a snapshot of the process-wide automaton cache.
type CacheStats struct {
	// Hits and Misses count CompileShared calls that found (or created)
	// a table. Hits/(Hits+Misses) is the sharing rate.
	Hits, Misses uint64
	// Entries is the number of distinct compact tables resident.
	Entries uint64
	// TableBytes is their total transition-machinery footprint.
	TableBytes uint64
}

// AutomatonCacheStats snapshots the cache counters and resident sizes.
func AutomatonCacheStats() CacheStats {
	st := CacheStats{
		Hits:   autoCache.hits.Load(),
		Misses: autoCache.misses.Load(),
	}
	autoCache.Lock()
	for _, ent := range autoCache.entries {
		if ent.tab == nil {
			continue // still compiling
		}
		st.Entries++
		st.TableBytes += uint64(ent.tab.Compact.Bytes())
	}
	autoCache.Unlock()
	return st
}

// ResetAutomatonCache empties the cache and zeroes its counters. It
// exists for tests and benchmark harnesses that need deterministic
// hit/miss accounting; production engines never call it (stale tables
// remain valid — they are immutable — so resetting is only an
// accounting matter).
func ResetAutomatonCache() {
	autoCache.Lock()
	autoCache.entries = map[string]*cacheEntry{}
	autoCache.Unlock()
	autoCache.hits.Store(0)
	autoCache.misses.Store(0)
}
