package compile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ode/internal/algebra"
	"ode/internal/fa"
)

// checkAgainstOracle verifies that the compiled automaton labels every
// point of h exactly as the denotational semantics does.
func checkAgainstOracle(t *testing.T, e *algebra.Expr, k int, h []int) {
	t.Helper()
	d := Compile(e, k)
	want := algebra.Eval(e, h)
	det := NewDetector(d)
	for p, sym := range h {
		got := det.Post(sym)
		if got != want[p] {
			t.Fatalf("expr %s, history %v, point %d: automaton=%v oracle=%v",
				e, h, p, got, want[p])
		}
	}
}

func allHistories(k, maxLen int, fn func([]int)) {
	var rec func(prefix []int)
	rec = func(prefix []int) {
		if len(prefix) > 0 {
			fn(prefix)
		}
		if len(prefix) == maxLen {
			return
		}
		for a := 0; a < k; a++ {
			rec(append(append([]int{}, prefix...), a))
		}
	}
	rec(nil)
}

func TestCompileAtoms(t *testing.T) {
	allHistories(2, 5, func(h []int) {
		checkAgainstOracle(t, algebra.Atom(0), 2, h)
		checkAgainstOracle(t, algebra.Empty(), 2, h)
	})
}

func TestCompileBoolean(t *testing.T) {
	a, b := algebra.Atom(0), algebra.Atom(1)
	exprs := []*algebra.Expr{
		algebra.Or(a, b),
		algebra.And(a, algebra.Not(b)),
		algebra.Not(algebra.Not(a)),
		algebra.Not(algebra.Or(a, b)),
	}
	allHistories(3, 4, func(h []int) {
		for _, e := range exprs {
			checkAgainstOracle(t, e, 3, h)
		}
	})
}

func TestCompileSequencingOperators(t *testing.T) {
	a, b, c := algebra.Atom(0), algebra.Atom(1), algebra.Atom(2)
	exprs := []*algebra.Expr{
		algebra.Relative(a, b),
		algebra.Relative(algebra.Relative(a, b), c),
		algebra.Plus(algebra.Relative(a, b)),
		algebra.RelativeN(a, 3),
		algebra.Prior(a, b),
		algebra.Prior(algebra.Relative(a, b), algebra.Relative(c, b)),
		algebra.Sequence(a, b),
		algebra.SequenceList(a, b, c),
		algebra.Sequence(a, algebra.Relative(b, c)), // unsatisfiable second arm
	}
	allHistories(3, 5, func(h []int) {
		for _, e := range exprs {
			checkAgainstOracle(t, e, 3, h)
		}
	})
}

func TestCompileCounters(t *testing.T) {
	a := algebra.Atom(0)
	exprs := []*algebra.Expr{
		algebra.Choose(a, 2),
		algebra.Choose(algebra.Relative(a, algebra.Atom(1)), 2),
		algebra.Every(a, 2),
		algebra.Every(algebra.Or(a, algebra.Atom(1)), 3),
	}
	allHistories(2, 6, func(h []int) {
		for _, e := range exprs {
			checkAgainstOracle(t, e, 2, h)
		}
	})
}

func TestCompileFaOperators(t *testing.T) {
	a, b, c := algebra.Atom(0), algebra.Atom(1), algebra.Atom(2)
	exprs := []*algebra.Expr{
		algebra.Fa(a, b, c),
		algebra.Fa(a, b, algebra.Empty()),
		algebra.Fa(a, algebra.Relative(b, c), b),
		algebra.FaAbs(a, b, c),
		algebra.FaAbs(a, b, algebra.Relative(c, c)),
		algebra.FaAbs(a, algebra.Relative(b, c), algebra.Relative(c, b)),
	}
	allHistories(3, 5, func(h []int) {
		for _, e := range exprs {
			checkAgainstOracle(t, e, 3, h)
		}
	})
}

// TestCompileFaVsFaAbsDiffer pins the semantic difference between the
// two operators on the paper-style example from the algebra tests.
func TestCompileFaVsFaAbsDiffer(t *testing.T) {
	G := algebra.Relative(algebra.Atom(2), algebra.Atom(3))
	faE := Compile(algebra.Fa(algebra.Atom(0), algebra.Atom(1), G), 4)
	faAbsE := Compile(algebra.FaAbs(algebra.Atom(0), algebra.Atom(1), G), 4)
	h := []int{2, 0, 3, 1}
	if !faE.Accepts(h) {
		t.Fatal("fa should accept g1 E g2 F")
	}
	if faAbsE.Accepts(h) {
		t.Fatal("faAbs should reject g1 E g2 F")
	}
	if fa.Equivalent(faE, faAbsE) {
		t.Fatal("fa and faAbs compiled to the same language")
	}
}

// randomExpr mirrors the generator in the algebra tests.
func randomExpr(rng *rand.Rand, k, depth int) *algebra.Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(10) == 0 {
			return algebra.Empty()
		}
		return algebra.Atom(rng.Intn(k))
	}
	sub := func() *algebra.Expr { return randomExpr(rng, k, depth-1) }
	switch rng.Intn(12) {
	case 0:
		return algebra.Or(sub(), sub())
	case 1:
		return algebra.And(sub(), sub())
	case 2:
		return algebra.Not(sub())
	case 3:
		return algebra.Relative(sub(), sub())
	case 4:
		return algebra.Plus(sub())
	case 5:
		return algebra.Prior(sub(), sub())
	case 6:
		return algebra.Sequence(sub(), sub())
	case 7:
		return algebra.Choose(sub(), 1+rng.Intn(3))
	case 8:
		return algebra.Every(sub(), 1+rng.Intn(3))
	case 9:
		return algebra.Fa(sub(), sub(), sub())
	case 10:
		return algebra.FaAbs(sub(), sub(), sub())
	default:
		return algebra.SequenceN(sub(), 1+rng.Intn(3))
	}
}

// TestCompileMatchesOracleRandom is the E3 experiment's core property:
// for random expressions and random histories, the minimized DFA and
// the §4 denotational semantics agree at every history point.
func TestCompileMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	const k = 3
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for i := 0; i < iters; i++ {
		e := randomExpr(rng, k, 3)
		n := 1 + rng.Intn(10)
		h := make([]int, n)
		for j := range h {
			h[j] = rng.Intn(k)
		}
		checkAgainstOracle(t, e, k, h)
	}
}

// TestCompileMatchesOracleQuick drives the same property through
// testing/quick's shrink-free generator, as an independent harness.
func TestCompileMatchesOracleQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const k = 3
	prop := func(seed int64, raw []byte) bool {
		exprRng := rand.New(rand.NewSource(seed))
		e := randomExpr(exprRng, k, 3)
		if len(raw) > 12 {
			raw = raw[:12]
		}
		h := make([]int, len(raw))
		for i, b := range raw {
			h[i] = int(b) % k
		}
		d := Compile(e, k)
		want := algebra.Eval(e, h)
		det := NewDetector(d)
		for p, sym := range h {
			if det.Post(sym) != want[p] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCompileIdempotentMinimal checks the compiler always returns a
// minimal automaton (re-minimizing does not shrink it).
func TestCompileIdempotentMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		e := randomExpr(rng, 3, 3)
		d := Compile(e, 3)
		m := fa.Minimize(d)
		if m.NumStates != d.NumStates {
			t.Fatalf("compiled automaton for %s not minimal: %d vs %d", e, d.NumStates, m.NumStates)
		}
	}
}

func TestCompilePanicsOnSmallAlphabet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-alphabet symbol")
		}
	}()
	Compile(algebra.Atom(5), 2)
}

func TestDetectorReset(t *testing.T) {
	d := Compile(algebra.Relative(algebra.Atom(0), algebra.Atom(1)), 2)
	det := NewDetector(d)
	det.Post(0)
	if !det.Post(1) {
		t.Fatal("expected occurrence")
	}
	det.Reset()
	if det.Post(1) {
		t.Fatal("occurrence after reset with no prefix")
	}
}

func TestMeasure(t *testing.T) {
	_, s := Measure(algebra.Relative(algebra.Atom(0), algebra.Atom(1)), 2)
	if s.States < 2 || s.Symbols != 2 || s.Bytes != s.States*s.Symbols*8 {
		t.Fatalf("unexpected stats %+v", s)
	}
}
