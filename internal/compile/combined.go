package compile

import "ode/internal/fa"

// Combined is a single product automaton that tracks every trigger of
// a class at once — the optimization sketched in the paper's footnote
// 5 ("In many cases such automata may be combined into one, resulting
// in a more efficient monitoring"). One transition per posted event
// advances all triggers; Fire reports, per state, the set of triggers
// whose event has just occurred. Transitions are stored in the compact
// row-deduplicated form (product states inherit their constituents'
// row sharing), with the fire masks dense per state.
type Combined struct {
	NumStates  int
	NumSymbols int
	Start      int
	Fire       []uint64 // bitmask of accepting triggers per state
	Triggers   int
	tab        *fa.Compact
}

// Combine builds the product of up to 64 trigger DFAs over a shared
// alphabet. Only states reachable from the joint start are
// materialized.
func Combine(dfas []*fa.DFA) *Combined {
	if len(dfas) == 0 || len(dfas) > 64 {
		panic("compile: Combine requires 1..64 automata")
	}
	k := dfas[0].NumSymbols
	for _, d := range dfas[1:] {
		if d.NumSymbols != k {
			panic("compile: alphabet mismatch")
		}
	}

	type tuple string // states packed as bytes of a string key
	pack := func(states []int) tuple {
		b := make([]byte, 4*len(states))
		for i, s := range states {
			b[4*i] = byte(s)
			b[4*i+1] = byte(s >> 8)
			b[4*i+2] = byte(s >> 16)
			b[4*i+3] = byte(s >> 24)
		}
		return tuple(b)
	}

	start := make([]int, len(dfas))
	for i, d := range dfas {
		start[i] = d.Start
	}

	index := map[tuple]int{pack(start): 0}
	order := [][]int{start}
	var trans [][]int
	trans = append(trans, make([]int, k))

	for done := 0; done < len(order); done++ {
		cur := order[done]
		for sym := 0; sym < k; sym++ {
			next := make([]int, len(dfas))
			for i, d := range dfas {
				next[i] = d.Next(cur[i], sym)
			}
			key := pack(next)
			id, ok := index[key]
			if !ok {
				id = len(order)
				index[key] = id
				order = append(order, next)
				trans = append(trans, make([]int, k))
			}
			trans[done][sym] = id
		}
	}

	c := &Combined{
		NumStates:  len(order),
		NumSymbols: k,
		Start:      0,
		Fire:       make([]uint64, len(order)),
		Triggers:   len(dfas),
	}
	for i, states := range order {
		var mask uint64
		for j, d := range dfas {
			if d.Accept[states[j]] {
				mask |= 1 << j
			}
		}
		c.Fire[i] = mask
	}
	c.tab = fa.NewCompact(len(order), k, 0,
		func(s, a int) int { return trans[s][a] },
		func(s int) bool { return c.Fire[s] != 0 })
	return c
}

// Next returns the successor of state s on symbol a.
func (c *Combined) Next(s, a int) int { return c.tab.Next(s, a) }

// Bytes returns the resident footprint of the monitor's transition
// machinery and fire masks.
func (c *Combined) Bytes() int { return c.tab.Bytes() + len(c.Fire)*8 }

// Post advances the combined state on sym and returns the new state
// together with the bitmask of triggers that fire at this point.
func (c *Combined) Post(state, sym int) (int, uint64) {
	t := c.Next(state, sym)
	return t, c.Fire[t]
}

// Detector runs one compiled automaton incrementally: the §5 runtime.
// The entire per-object state is the single integer State — the
// paper's "one word per active trigger per object".
type Detector struct {
	DFA   *fa.DFA
	State int
}

// NewDetector returns a detector positioned at the automaton's start
// state (the beginning of the history).
func NewDetector(d *fa.DFA) *Detector { return &Detector{DFA: d, State: d.Start} }

// Post consumes one history symbol and reports whether the event
// occurs at this point.
func (r *Detector) Post(sym int) bool {
	r.State = r.DFA.Next(r.State, sym)
	return r.DFA.Accept[r.State]
}

// Reset rewinds the detector to the beginning of the history.
func (r *Detector) Reset() { r.State = r.DFA.Start }
