// Package compile translates composite-event expressions
// (internal/algebra) into minimized deterministic finite automata
// (internal/fa), implementing §5 of Gehani, Jagadish & Shmueli
// (SIGMOD 1992): "composite events can alternatively be expressed as
// regular expressions, [so] their occurrence can be detected using
// finite automata".
//
// The compiled automaton reads the object's event history one symbol
// at a time and is in an accepting state exactly at the history points
// where the event occurs. Detection is therefore O(1) per posted
// event, with one integer of state per object per active trigger.
//
// The package also provides the paper's §6 pair construction, which
// converts an automaton for a committed-transactions-only event
// expression into one that can run over the whole history (including
// the operations of aborted transactions), and the footnote-5
// optimization that combines all of a class's trigger automata into a
// single product automaton.
package compile

import (
	"fmt"

	"ode/internal/algebra"
	"ode/internal/fa"
)

// Compile translates e into a minimized complete DFA over an alphabet
// of numSymbols symbols. It panics if e mentions a symbol outside the
// alphabet; use e.MaxSymbol() to size the alphabet.
//
// Every operator is compiled bottom-up and the intermediate automaton
// is minimized at each node, which keeps the subset constructions
// small in practice.
func Compile(e *algebra.Expr, numSymbols int) *fa.DFA {
	if m := e.MaxSymbol(); m >= numSymbols {
		panic(fmt.Sprintf("compile: expression uses symbol %d, alphabet has %d", m, numSymbols))
	}
	// Mechanical lowering produces dead branches (empty selectors,
	// x|x unions over symbol blocks); pruning them first keeps the
	// constructions small.
	return fa.Minimize(compile(algebra.Simplify(e), numSymbols))
}

// CompileNoIntermediateMin is the ablation of the per-node
// minimization design choice: operators are composed without
// minimizing intermediate automata, and only the final result is
// minimized. The language is identical (the experiment harness checks
// equivalence); the point is to measure how much the intermediate
// minimization buys during construction.
func CompileNoIntermediateMin(e *algebra.Expr, numSymbols int) *fa.DFA {
	if m := e.MaxSymbol(); m >= numSymbols {
		panic(fmt.Sprintf("compile: expression uses symbol %d, alphabet has %d", m, numSymbols))
	}
	saved := minimizeIntermediates
	minimizeIntermediates = false
	defer func() { minimizeIntermediates = saved }()
	return fa.Minimize(compile(e, numSymbols))
}

// minimizeIntermediates gates min(); it is toggled only by the
// single-threaded ablation entry point above.
var minimizeIntermediates = true

func compile(e *algebra.Expr, k int) *fa.DFA {
	switch e.Op {
	case algebra.OpEmpty:
		return fa.EmptyDFA(k)

	case algebra.OpAtom:
		// An atomic logical event occurs at exactly the points labeled
		// with its symbol: L = Σ*a.
		return fa.LastSymbolDFA(k, e.Sym)

	case algebra.OpOr:
		return min(fa.Union(compile(e.Args[0], k), compile(e.Args[1], k)))

	case algebra.OpAnd:
		return min(fa.Intersect(compile(e.Args[0], k), compile(e.Args[1], k)))

	case algebra.OpNot:
		// Complement with respect to the points of the history: Σ⁺∖L.
		return min(fa.NegateEvent(compile(e.Args[0], k)))

	case algebra.OpRelative:
		// relative is concatenation: F's occurrence is detected in the
		// suffix strictly after an E-point, and event languages are
		// ε-free, so L(relative(E,F)) = L(E)·L(F).
		a := fa.FromDFA(compile(e.Args[0], k))
		b := fa.FromDFA(compile(e.Args[1], k))
		return min(fa.Determinize(fa.ConcatNFA(a, b)))

	case algebra.OpPlus:
		a := fa.FromDFA(compile(e.Args[0], k))
		return min(fa.Determinize(fa.PlusNFA(a)))

	case algebra.OpPrior:
		// prior(E, F): an F-point strictly after some E-point, with the
		// other constituents free to interleave: (L(E)·Σ⁺) ∩ L(F).
		a := fa.FromDFA(compile(e.Args[0], k))
		anyPlus := fa.FromDFA(fa.NonEmptyUniversalDFA(k))
		reach := fa.Determinize(fa.ConcatNFA(a, anyPlus))
		return min(fa.Intersect(reach, compile(e.Args[1], k)))

	case algebra.OpSequence:
		// sequence(E, F): F occurs at the point immediately after an
		// E-point, so only the single-symbol words of L(F) matter:
		// L(E)·(L(F) ∩ Σ).
		a := fa.FromDFA(compile(e.Args[0], k))
		f := compile(e.Args[1], k)
		singles := fa.NewNFA(k)
		acc := singles.AddState(true)
		for sym := 0; sym < k; sym++ {
			if f.Accepts([]int{sym}) {
				singles.AddEdge(singles.Start, sym, acc)
			}
		}
		return min(fa.Determinize(fa.ConcatNFA(a, singles)))

	case algebra.OpChoose:
		return fa.ChooseN(compile(e.Args[0], k), e.N)

	case algebra.OpEvery:
		return fa.EveryN(compile(e.Args[0], k), e.N)

	case algebra.OpFa:
		// fa(E, F, G): first F after an E-point with no intervening G,
		// F and G both judged in the truncated history:
		// L(E) · (min(L(F) ∪ L(G)) ∩ L(F)).
		cE := fa.FromDFA(compile(e.Args[0], k))
		cF := compile(e.Args[1], k)
		cG := compile(e.Args[2], k)
		window := fa.Intersect(fa.FirstMatch(min(fa.Union(cF, cG))), cF)
		return min(fa.Determinize(fa.ConcatNFA(cE, fa.FromDFA(window))))

	case algebra.OpFaAbs:
		return min(compileFaAbs(
			compile(e.Args[0], k),
			compile(e.Args[1], k),
			compile(e.Args[2], k),
		))

	default:
		panic("compile: unknown op")
	}
}

func min(d *fa.DFA) *fa.DFA {
	if !minimizeIntermediates {
		return d
	}
	return fa.Minimize(d)
}

// compileFaAbs builds the automaton for faAbs(E, F, G), where G is
// judged against the whole history rather than the truncated one. The
// construction is a two-phase NFA:
//
//   - phase 1 runs DFA_E and DFA_G jointly from the beginning of the
//     history; whenever E accepts, an ε-branch opens a phase-2 window
//     that inherits the live DFA_G state (this is what makes G
//     "absolute");
//   - phase 2 runs DFA_F (from its start state) and the inherited
//     DFA_G jointly. On each symbol, if F accepts the branch moves to
//     the accepting sink — this is the event point, and only the first
//     F counts, so the sink has no successors. Otherwise, if G accepts
//     the branch dies: a G-occurrence strictly between the E-point and
//     the F-point blocks the window.
//
// Phase-1 branches keep running past E-accepts, so every E-point opens
// its own window, matching the oracle's union over E-points.
func compileFaAbs(dE, dF, dG *fa.DFA) *fa.DFA {
	k := dE.NumSymbols
	n := fa.NewNFA(k)

	type key struct {
		phase, x, y int
	}
	id := map[key]int{}
	var addState func(kk key) int
	sink := n.AddState(true)

	var queue []key
	addState = func(kk key) int {
		if s, ok := id[kk]; ok {
			return s
		}
		s := n.AddState(false)
		id[kk] = s
		queue = append(queue, kk)
		if kk.phase == 1 && dE.Accept[kk.x] {
			// This phase-1 state marks an E-point: open a detection
			// window that starts just after it and inherits the live
			// DFA_G state. (An E-accept at the very start cannot happen
			// for ε-free event languages, but the construction stays
			// correct if it does.)
			n.AddEps(s, addState(key{2, dF.Start, kk.y}))
		}
		return s
	}

	n.AddEps(n.Start, addState(key{1, dE.Start, dG.Start}))

	for len(queue) > 0 {
		kk := queue[0]
		queue = queue[1:]
		s := id[kk]
		switch kk.phase {
		case 1:
			for a := 0; a < k; a++ {
				e2 := dE.Next(kk.x, a)
				g2 := dG.Next(kk.y, a)
				n.AddEdge(s, a, addState(key{1, e2, g2}))
			}
		case 2:
			for a := 0; a < k; a++ {
				f2 := dF.Next(kk.x, a)
				g2 := dG.Next(kk.y, a)
				switch {
				case dF.Accept[f2]:
					// First F in the window: the event occurs here. A
					// simultaneous G does not block (G must be strictly
					// prior to the F-point).
					n.AddEdge(s, a, sink)
				case dG.Accept[g2]:
					// G intervened before any F: the branch dies.
				default:
					n.AddEdge(s, a, addState(key{2, f2, g2}))
				}
			}
		}
	}
	return fa.Determinize(n)
}

// Stats describes a compiled automaton's size, for the experiment
// harness (E3) and cmd/eventc.
type Stats struct {
	States  int // minimized DFA states
	Symbols int // alphabet size
	Bytes   int // transition table footprint: States*Symbols ints
}

// Measure compiles e and reports size statistics together with the
// automaton.
func Measure(e *algebra.Expr, numSymbols int) (*fa.DFA, Stats) {
	d := Compile(e, numSymbols)
	return d, Stats{
		States:  d.NumStates,
		Symbols: d.NumSymbols,
		Bytes:   d.NumStates * d.NumSymbols * 8,
	}
}
