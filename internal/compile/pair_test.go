package compile

import (
	"math/rand"
	"testing"

	"ode/internal/algebra"
	"ode/internal/fa"
)

// The pair-construction tests model an object's whole history as a
// sequence of serialized transactions (object-level locking, §6), each
// contributing: tbegin, some operation symbols, then tcommit or
// tabort. The committed projection keeps only the symbols of
// transactions that commit (tabort symbols of aborted transactions and
// everything they posted disappear).

const (
	symTbegin  = 0
	symTcommit = 1
	symTabort  = 2
	symUpdate  = 3
	symRead    = 4
	numTxSyms  = 5
)

type txRecord struct {
	ops    []int // operation symbols between tbegin and the outcome
	commit bool
}

// flatten renders the schedule as the whole history (including aborted
// transactions' operations).
func flatten(txs []txRecord) []int {
	var h []int
	for _, tx := range txs {
		h = append(h, symTbegin)
		h = append(h, tx.ops...)
		if tx.commit {
			h = append(h, symTcommit)
		} else {
			h = append(h, symTabort)
		}
	}
	return h
}

// committedProjection renders only the committed transactions'
// symbols, including their tbegin and tcommit events.
func committedProjection(txs []txRecord) []int {
	var h []int
	for _, tx := range txs {
		if !tx.commit {
			continue
		}
		h = append(h, symTbegin)
		h = append(h, tx.ops...)
		h = append(h, symTcommit)
	}
	return h
}

func randomSchedule(rng *rand.Rand, maxTx int) []txRecord {
	n := 1 + rng.Intn(maxTx)
	txs := make([]txRecord, n)
	for i := range txs {
		ops := make([]int, rng.Intn(4))
		for j := range ops {
			ops[j] = symUpdate + rng.Intn(2)
		}
		txs[i] = txRecord{ops: ops, commit: rng.Intn(3) > 0}
	}
	return txs
}

// TestPairConstructionClaim verifies the paper's §6 Claim: A' run over
// the whole history finishes in the same acceptance condition as A run
// over the committed projection — for every prefix of the history that
// ends at a transaction boundary.
func TestPairConstructionClaim(t *testing.T) {
	// Committed-view expressions (no tabort — §6 committed view never
	// sees aborts).
	exprs := []*algebra.Expr{
		// Commit of a transaction that updated the object.
		algebra.Fa(
			algebra.Atom(symTbegin),
			algebra.Prior(algebra.Atom(symUpdate), algebra.Atom(symTcommit)),
			algebra.Atom(symTcommit),
		),
		// The 3rd committed transaction.
		algebra.Choose(algebra.Atom(symTcommit), 3),
		// Every 2nd committed update.
		algebra.Every(algebra.Atom(symUpdate), 2),
		// A read with a prior update (committed view).
		algebra.Prior(algebra.Atom(symUpdate), algebra.Atom(symRead)),
		// Update immediately followed by read within committed history.
		algebra.Sequence(algebra.Atom(symUpdate), algebra.Atom(symRead)),
	}

	rng := rand.New(rand.NewSource(13))
	for _, e := range exprs {
		a := Compile(e, numTxSyms)
		ap := PairConstruction(a, symTcommit, symTabort)
		for iter := 0; iter < 200; iter++ {
			txs := randomSchedule(rng, 6)
			whole := flatten(txs)
			// Walk transaction by transaction, comparing at boundaries.
			apState := ap.Start
			var committedSoFar []txRecord
			for _, tx := range txs {
				seg := []int{symTbegin}
				seg = append(seg, tx.ops...)
				if tx.commit {
					seg = append(seg, symTcommit)
				} else {
					seg = append(seg, symTabort)
				}
				apState = ap.Run(apState, seg)
				if tx.commit {
					committedSoFar = append(committedSoFar, tx)
				}
				wantState := a.Run(a.Start, committedProjection(committedSoFar))
				if ap.Accept[apState] != a.Accept[wantState] {
					t.Fatalf("expr %s schedule %v: at boundary A' accept=%v, A over committed=%v",
						e, whole, ap.Accept[apState], a.Accept[wantState])
				}
			}
		}
	}
}

// TestPairConstructionMidTransaction verifies that within a
// transaction, A' tracks A over (committed prefix + current
// transaction's own events): the trigger may fire mid-transaction, and
// an abort undoes it along with the rest of the transaction.
func TestPairConstructionMidTransaction(t *testing.T) {
	e := algebra.Prior(algebra.Atom(symUpdate), algebra.Atom(symRead))
	a := Compile(e, numTxSyms)
	ap := PairConstruction(a, symTcommit, symTabort)

	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 300; iter++ {
		txs := randomSchedule(rng, 5)
		apState := ap.Start
		var committed []int
		for _, tx := range txs {
			segment := append([]int{symTbegin}, tx.ops...)
			// Step through the transaction symbol by symbol.
			inFlight := []int{}
			for _, sym := range segment {
				inFlight = append(inFlight, sym)
				apState = ap.Next(apState, sym)
				view := append(append([]int{}, committed...), inFlight...)
				want := a.Accept[a.Run(a.Start, view)]
				if ap.Accept[apState] != want {
					t.Fatalf("iter %d: mid-tx divergence on view %v", iter, view)
				}
			}
			if tx.commit {
				apState = ap.Next(apState, symTcommit)
				committed = append(committed, segment...)
				committed = append(committed, symTcommit)
			} else {
				apState = ap.Next(apState, symTabort)
			}
			want := a.Accept[a.Run(a.Start, committed)]
			if ap.Accept[apState] != want {
				t.Fatalf("iter %d: boundary divergence", iter)
			}
		}
	}
}

// TestPairConstructionStateBound checks the Claim's cost: |A'| is at
// most |A|² (plus nothing — minimization can only shrink it).
func TestPairConstructionStateBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		e := randomExpr(rng, numTxSyms, 2)
		a := Compile(e, numTxSyms)
		ap := PairConstruction(a, symTcommit, symTabort)
		if ap.NumStates > a.NumStates*a.NumStates+1 {
			t.Fatalf("pair construction exceeded the squaring bound: %d from %d states",
				ap.NumStates, a.NumStates)
		}
	}
}

func TestPairConstructionBadSymbols(t *testing.T) {
	a := Compile(algebra.Atom(0), 3)
	for _, bad := range [][2]int{{-1, 1}, {0, 0}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for symbols %v", bad)
				}
			}()
			PairConstruction(a, bad[0], bad[1])
		}()
	}
}

func TestCombineMatchesIndividuals(t *testing.T) {
	const k = 3
	exprs := []*algebra.Expr{
		algebra.Relative(algebra.Atom(0), algebra.Atom(1)),
		algebra.Sequence(algebra.Atom(1), algebra.Atom(2)),
		algebra.Every(algebra.Atom(0), 2),
		algebra.Not(algebra.Atom(2)),
	}
	dfas := make([]*fa.DFA, len(exprs))
	for i, e := range exprs {
		dfas[i] = Compile(e, k)
	}
	c := Combine(dfas)

	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(12)
		state := c.Start
		dets := make([]*Detector, len(dfas))
		for i, d := range dfas {
			dets[i] = NewDetector(d)
		}
		for j := 0; j < n; j++ {
			sym := rng.Intn(k)
			var fires uint64
			state, fires = c.Post(state, sym)
			for i, det := range dets {
				want := det.Post(sym)
				if (fires>>i)&1 == 1 != want {
					t.Fatalf("iter %d: trigger %d disagreement at step %d", iter, i, j)
				}
			}
		}
	}
}

func TestCombineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Combine accepted an empty slice")
		}
	}()
	Combine(nil)
}
