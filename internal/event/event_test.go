package event

import (
	"testing"
	"time"

	"ode/internal/value"
)

func TestPhaseAndClassStrings(t *testing.T) {
	if Before.String() != "before" || After.String() != "after" {
		t.Fatal("phase strings")
	}
	want := map[Class]string{
		KMethod: "method", KCreate: "create", KDelete: "delete",
		KTbegin: "tbegin", KTcomplete: "tcomplete", KTcommit: "tcommit",
		KTabort: "tabort", KTimer: "timer",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Class(%d) = %q want %q", c, c.String(), s)
		}
	}
	if Class(99).String() != "class(99)" {
		t.Fatal("unknown class string")
	}
}

func TestKindIdentityAndStrings(t *testing.T) {
	a := MethodKind(After, "withdraw")
	b := MethodKind(After, "withdraw")
	if a != b {
		t.Fatal("method kinds must be comparable equal")
	}
	if a == MethodKind(Before, "withdraw") || a == MethodKind(After, "deposit") {
		t.Fatal("distinct kinds compared equal")
	}
	if a.String() != "after withdraw" {
		t.Fatalf("kind string %q", a)
	}
	tk := TimerKind("at time(HR=9)")
	if tk.String() != "timer at time(HR=9)" {
		t.Fatalf("timer string %q", tk)
	}
	lc := Kind{Phase: After, Class: KTcommit}
	if lc.String() != "after tcommit" {
		t.Fatalf("lifecycle string %q", lc)
	}
	// Kinds work as map keys across categories.
	m := map[Kind]int{a: 1, tk: 2, lc: 3}
	if len(m) != 3 {
		t.Fatal("kind map collision")
	}
}

func TestHappeningCarriesPayload(t *testing.T) {
	h := Happening{
		Kind:   MethodKind(Before, "deposit"),
		Params: map[string]value.Value{"q": value.Int(7)},
		TxID:   42,
		At:     time.Unix(100, 0),
	}
	if h.Params["q"].AsInt() != 7 || h.TxID != 42 {
		t.Fatalf("happening %+v", h)
	}
}
