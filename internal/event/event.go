// Package event defines the happening model shared by the event DSL
// resolver (internal/evlang) and the trigger runtime
// (internal/trigger): what concretely occurs at an object, and the
// finite kind space those happenings are drawn from.
//
// A "happening" is one posting to one object — one point of the
// object's event history. Basic-event patterns of the paper's §3.1
// (object state events, method execution events, time events,
// transaction events) classify happenings: "after access" selects
// every after-method happening, "after withdraw" selects only
// withdraw's. The §5 disjointness rewrite assigns each (kind, mask
// valuation) its own alphabet symbol, so patterns become unions of
// symbols.
package event

import (
	"fmt"
	"time"

	"ode/internal/value"
)

// Phase says whether the happening is posted immediately before or
// immediately after the thing it describes.
type Phase int

const (
	// Before the operation takes effect.
	Before Phase = iota
	// After the operation took effect.
	After
)

func (p Phase) String() string {
	if p == Before {
		return "before"
	}
	return "after"
}

// Class is the coarse classification of a happening.
type Class int

const (
	// KMethod is the execution of a public member function.
	KMethod Class = iota
	// KCreate is object creation (posted with phase After).
	KCreate
	// KDelete is object deletion (posted with phase Before).
	KDelete
	// KTbegin is transaction begin, posted to an object immediately
	// before the transaction first accesses it (phase After).
	KTbegin
	// KTcomplete is "transaction code complete, about to try to
	// commit" (phase Before). It may be posted repeatedly: the commit
	// fixpoint re-posts it until no trigger fires.
	KTcomplete
	// KTcommit is transaction commit (phase After, posted by a system
	// transaction).
	KTcommit
	// KTabort is transaction abort (phase Before within the aborting
	// transaction, phase After from a system transaction).
	KTabort
	// KTimer is the firing of a time event (at / every / after a
	// TimeSpec). Timer kinds are distinguished by the canonical
	// rendering of their specification.
	KTimer
)

func (c Class) String() string {
	switch c {
	case KMethod:
		return "method"
	case KCreate:
		return "create"
	case KDelete:
		return "delete"
	case KTbegin:
		return "tbegin"
	case KTcomplete:
		return "tcomplete"
	case KTcommit:
		return "tcommit"
	case KTabort:
		return "tabort"
	case KTimer:
		return "timer"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Kind identifies one atomic happening kind. It is comparable and
// usable as a map key. Method is set only for KMethod; Timer is the
// canonical time-spec key, set only for KTimer.
type Kind struct {
	Phase  Phase
	Class  Class
	Method string
	Timer  string
}

// MethodKind returns the kind of a method-execution happening.
func MethodKind(phase Phase, method string) Kind {
	return Kind{Phase: phase, Class: KMethod, Method: method}
}

// TimerKind returns the kind of a time-event happening. Timer events
// have no before/after qualifier; they use phase After by convention.
func TimerKind(key string) Kind {
	return Kind{Phase: After, Class: KTimer, Timer: key}
}

func (k Kind) String() string {
	switch k.Class {
	case KMethod:
		return fmt.Sprintf("%s %s", k.Phase, k.Method)
	case KTimer:
		return fmt.Sprintf("timer %s", k.Timer)
	default:
		return fmt.Sprintf("%s %s", k.Phase, k.Class)
	}
}

// Happening is one concrete posting to one object: a point of the
// object's event history.
type Happening struct {
	Kind   Kind
	Params map[string]value.Value // method parameters, bound by name
	// Dense carries the same parameters in the method's declared
	// order, for compiled mask programs that resolve names to indexes
	// at class-registration time. Posters that set Params should set
	// Dense too; consumers must tolerate a nil Dense (recovered or
	// hand-built happenings) by falling back to Params.
	Dense []value.Value
	TxID  uint64    // posting transaction (0 for timers)
	At    time.Time // database time of the posting
}
