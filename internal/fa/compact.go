package fa

import "fmt"

// Compact is a read-only DFA representation sized for the detection
// hot path. Where DFA spends 8 bytes per transition cell and one bool
// per state, Compact narrows cells to uint16 (uint32 when the state
// count demands it), deduplicates identical transition rows behind a
// per-state row index — states of minimized event automata
// overwhelmingly share rows, because most symbols are inert almost
// everywhere — and packs acceptance into a bitset. The representation
// is immutable after construction and safe to share between engines,
// classes and goroutines.
//
// State numbering, the start state and the accept set are exactly
// those of the automaton it was built from: Compress preserves
// trajectories state-for-state, which is what lets the fat DFA remain
// the structural oracle in tests.
type Compact struct {
	numStates  int
	numSymbols int
	start      int
	rowIndex   []uint32 // state → deduplicated row id
	rows16     []uint16 // row cells, narrow form (nil when wide)
	rows32     []uint32 // row cells, wide form (nil when narrow)
	accept     []uint64 // acceptance bitset, one bit per state
}

// Compress converts a complete DFA into its compact form, preserving
// state numbering, the start state and acceptance exactly.
func Compress(d *DFA) *Compact {
	d.validate()
	return NewCompact(d.NumStates, d.NumSymbols, d.Start, d.Next,
		func(s int) bool { return d.Accept[s] })
}

// NewCompact builds a Compact directly from a dense transition
// function over [0,numStates) × [0,numSymbols). It is the construction
// hook for table shapes that are not plain DFAs (the footnote-5
// combined monitor, whose per-state payload is a fire mask rather than
// a single accept bit).
func NewCompact(numStates, numSymbols, start int, next func(s, a int) int, accept func(s int) bool) *Compact {
	if numStates <= 0 {
		panic("fa: Compact must have at least one state")
	}
	if numSymbols < 0 {
		panic("fa: negative alphabet size")
	}
	if start < 0 || start >= numStates {
		panic("fa: start state out of range")
	}
	c := &Compact{
		numStates:  numStates,
		numSymbols: numSymbols,
		start:      start,
		rowIndex:   make([]uint32, numStates),
		accept:     make([]uint64, (numStates+63)/64),
	}
	wide := numStates > 1<<16 // state values must fit the cell type
	// Deduplicate rows via their byte image; row ids are assigned in
	// order of first appearance, so construction is deterministic.
	seen := make(map[string]uint32, numStates)
	rowBytes := make([]byte, 4*numSymbols)
	row32 := make([]uint32, numSymbols)
	for s := 0; s < numStates; s++ {
		for a := 0; a < numSymbols; a++ {
			t := next(s, a)
			if t < 0 || t >= numStates {
				panic(fmt.Sprintf("fa: transition (%d,%d) targets out-of-range state %d", s, a, t))
			}
			row32[a] = uint32(t)
			rowBytes[4*a] = byte(t)
			rowBytes[4*a+1] = byte(t >> 8)
			rowBytes[4*a+2] = byte(t >> 16)
			rowBytes[4*a+3] = byte(t >> 24)
		}
		id, ok := seen[string(rowBytes)]
		if !ok {
			if wide {
				id = uint32(len(c.rows32) / rowWidth(numSymbols))
				c.rows32 = append(c.rows32, row32...)
			} else {
				id = uint32(len(c.rows16) / rowWidth(numSymbols))
				for _, t := range row32 {
					c.rows16 = append(c.rows16, uint16(t))
				}
			}
			seen[string(rowBytes)] = id
		}
		c.rowIndex[s] = id
		if accept(s) {
			c.accept[s>>6] |= 1 << (s & 63)
		}
	}
	if wide && c.rows32 == nil {
		// A wide automaton over an empty alphabet still needs the wide
		// marker; keep rows32 non-nil so Next dispatches consistently.
		c.rows32 = []uint32{}
	}
	if outputValidation.Load() {
		c.validate()
	}
	return c
}

// NumStates returns the number of states.
func (c *Compact) NumStates() int { return c.numStates }

// NumSymbols returns the alphabet size.
func (c *Compact) NumSymbols() int { return c.numSymbols }

// Start returns the start state.
func (c *Compact) Start() int { return c.start }

// NumRows returns the number of distinct transition rows retained
// after deduplication (≤ NumStates).
func (c *Compact) NumRows() int {
	if c.rows32 != nil {
		return len(c.rows32) / rowWidth(c.numSymbols)
	}
	return len(c.rows16) / rowWidth(c.numSymbols)
}

// Wide reports whether cells are stored as uint32 (more than 2^16
// states) rather than uint16.
func (c *Compact) Wide() bool { return c.rows32 != nil }

// Next returns the successor of state s on symbol a. It is the §5
// per-event step: one row-index load, one cell load, no allocation.
func (c *Compact) Next(s, a int) int {
	i := int(c.rowIndex[s])*c.numSymbols + a
	if c.rows32 == nil {
		return int(c.rows16[i])
	}
	return int(c.rows32[i])
}

// Accept reports whether state s is accepting.
func (c *Compact) Accept(s int) bool {
	return c.accept[s>>6]&(1<<(s&63)) != 0
}

// Run consumes word starting from state s and returns the final state.
func (c *Compact) Run(s int, word []int) int {
	for _, a := range word {
		s = c.Next(s, a)
	}
	return s
}

// Accepts reports whether the automaton accepts the input word.
func (c *Compact) Accepts(word []int) bool {
	return c.Accept(c.Run(c.start, word))
}

// Bytes returns the resident footprint of the transition machinery:
// row index, deduplicated rows and accept bitset. This is the number
// the E13 experiment compares against the fat representation's
// NumStates×NumSymbols×8.
func (c *Compact) Bytes() int {
	return len(c.rowIndex)*4 + len(c.rows16)*2 + len(c.rows32)*4 + len(c.accept)*8
}

// rowWidth is the divisor for row-count arithmetic (guarding the
// degenerate zero-symbol alphabet).
func rowWidth(numSymbols int) int {
	if numSymbols < 1 {
		return 1
	}
	return numSymbols
}

// Expand rebuilds the fat DFA form with identical state numbering —
// the inverse of Compress, used by introspection and by oracle
// comparisons.
func (c *Compact) Expand() *DFA {
	d := NewDFA(c.numStates, c.numSymbols, c.start)
	for s := 0; s < c.numStates; s++ {
		d.Accept[s] = c.Accept(s)
		for a := 0; a < c.numSymbols; a++ {
			d.SetNext(s, a, c.Next(s, a))
		}
	}
	return d
}

// validate panics if the compact structure is internally inconsistent.
// It runs under the output-validation test hook.
func (c *Compact) validate() {
	rows := c.NumRows()
	if len(c.rowIndex) != c.numStates {
		panic(fmt.Sprintf("fa: compact row index has %d entries, want %d", len(c.rowIndex), c.numStates))
	}
	for s, r := range c.rowIndex {
		if int(r) >= rows {
			panic(fmt.Sprintf("fa: compact state %d references out-of-range row %d", s, r))
		}
	}
	cells := rows * c.numSymbols
	for i := 0; i < cells; i++ {
		var t int
		if c.rows32 == nil {
			t = int(c.rows16[i])
		} else {
			t = int(c.rows32[i])
		}
		if t < 0 || t >= c.numStates {
			panic(fmt.Sprintf("fa: compact cell %d targets out-of-range state %d", i, t))
		}
	}
}
