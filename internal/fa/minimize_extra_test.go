package fa

import (
	"math/rand"
	"testing"
)

// nerodeClasses computes the number of Myhill-Nerode equivalence
// classes among the reachable states of d by the table-filling
// algorithm — an independent implementation against which Hopcroft's
// result is checked.
func nerodeClasses(d *DFA) int {
	reach := d.Reachable()
	var states []int
	for s, ok := range reach {
		if ok {
			states = append(states, s)
		}
	}
	n := len(states)
	idx := map[int]int{}
	for i, s := range states {
		idx[s] = i
	}
	// distinct[i][j]: states[i] and states[j] are distinguishable.
	distinct := make([][]bool, n)
	for i := range distinct {
		distinct[i] = make([]bool, n)
		for j := range distinct[i] {
			distinct[i][j] = d.Accept[states[i]] != d.Accept[states[j]]
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if distinct[i][j] {
					continue
				}
				for a := 0; a < d.NumSymbols; a++ {
					ti := idx[d.Next(states[i], a)]
					tj := idx[d.Next(states[j], a)]
					if distinct[ti][tj] {
						distinct[i][j] = true
						distinct[j][i] = true
						changed = true
						break
					}
				}
			}
		}
	}
	// Count classes greedily.
	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	classes := 0
	for i := 0; i < n; i++ {
		if assigned[i] >= 0 {
			continue
		}
		assigned[i] = classes
		for j := i + 1; j < n; j++ {
			if assigned[j] < 0 && !distinct[i][j] {
				assigned[j] = classes
			}
		}
		classes++
	}
	return classes
}

// TestMinimizeMatchesTableFilling cross-checks Hopcroft minimization
// against the independent Myhill-Nerode table-filling count on random
// DFAs.
func TestMinimizeMatchesTableFilling(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for i := 0; i < 300; i++ {
		d := randomDFA(rng, 12, 1+rng.Intn(3))
		m := Minimize(d)
		want := nerodeClasses(d)
		if m.NumStates != want {
			t.Fatalf("iter %d: Hopcroft gives %d states, table-filling %d\n%s",
				i, m.NumStates, want, d.Table(nil))
		}
	}
}

// TestMinimizeDeterministicOutput pins that minimizing the same DFA
// twice yields identical state numbering (BFS discovery order), which
// the engine relies on for persistent automaton states across process
// restarts.
func TestMinimizeDeterministicOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		d := randomDFA(rng, 10, 2)
		a := Minimize(d)
		b := Minimize(d.Clone())
		if a.NumStates != b.NumStates || a.Start != b.Start {
			t.Fatalf("iter %d: nondeterministic minimization shape", i)
		}
		for s := range a.Trans {
			if a.Trans[s] != b.Trans[s] {
				t.Fatalf("iter %d: transition tables differ at %d", i, s)
			}
		}
		for s := range a.Accept {
			if a.Accept[s] != b.Accept[s] {
				t.Fatalf("iter %d: acceptance differs at %d", i, s)
			}
		}
	}
}
