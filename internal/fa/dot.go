package fa

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the DFA in Graphviz DOT format. symbolName maps alphabet
// symbols to labels; when nil, symbols print as integers. Parallel
// edges between the same pair of states are merged into one edge with a
// comma-separated label to keep diagrams readable.
func (d *DFA) Dot(name string, symbolName func(int) string) string {
	if symbolName == nil {
		symbolName = func(a int) string { return fmt.Sprintf("%d", a) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> %d;\n", d.Start)
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] {
			fmt.Fprintf(&b, "  %d [shape=doublecircle];\n", s)
		}
	}
	for s := 0; s < d.NumStates; s++ {
		byTarget := map[int][]string{}
		for a := 0; a < d.NumSymbols; a++ {
			t := d.Next(s, a)
			byTarget[t] = append(byTarget[t], symbolName(a))
		}
		targets := make([]int, 0, len(byTarget))
		for t := range byTarget {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			fmt.Fprintf(&b, "  %d -> %d [label=%q];\n", s, t, strings.Join(byTarget[t], ","))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Table renders the DFA transition table as human-readable text, one
// row per state. Accepting states are marked with '*' and the start
// state with '>'.
func (d *DFA) Table(symbolName func(int) string) string {
	if symbolName == nil {
		symbolName = func(a int) string { return fmt.Sprintf("s%d", a) }
	}
	var b strings.Builder
	b.WriteString("state")
	for a := 0; a < d.NumSymbols; a++ {
		fmt.Fprintf(&b, "\t%s", symbolName(a))
	}
	b.WriteByte('\n')
	for s := 0; s < d.NumStates; s++ {
		mark := " "
		if s == d.Start {
			mark = ">"
		}
		acc := " "
		if d.Accept[s] {
			acc = "*"
		}
		fmt.Fprintf(&b, "%s%s%d", mark, acc, s)
		for a := 0; a < d.NumSymbols; a++ {
			fmt.Fprintf(&b, "\t%d", d.Next(s, a))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
