package fa

import "sync/atomic"

// outputValidation gates structural validation of the automata
// produced by Determinize, Minimize and NewCompact. The checks are
// O(states × symbols) per construction — cheap next to subset
// construction, but pure overhead in production — so they run only
// when a test package turns them on. With the hook enabled, a
// corrupted table panics at construction instead of silently
// misdetecting events later.
var outputValidation atomic.Bool

// SetOutputValidation toggles construction-time validation and returns
// the previous setting. Test packages enable it in TestMain:
//
//	func TestMain(m *testing.M) {
//		fa.SetOutputValidation(true)
//		os.Exit(m.Run())
//	}
func SetOutputValidation(on bool) (prev bool) {
	return outputValidation.Swap(on)
}

// OutputValidationEnabled reports whether the hook is on.
func OutputValidationEnabled() bool { return outputValidation.Load() }

// checked applies the output-validation hook to a freshly constructed
// DFA and returns it.
func checked(d *DFA) *DFA {
	if outputValidation.Load() {
		d.validate()
	}
	return d
}
