package fa

// Determinize converts an NFA into an equivalent complete DFA by the
// subset construction. State sets are represented as bitsets keyed by
// their byte image, so the construction is linear in the number of
// distinct reachable subsets times the alphabet size.
func Determinize(n *NFA) *DFA {
	words := (n.NumStates() + 63) / 64

	key := func(set []uint64) string {
		b := make([]byte, 8*len(set))
		for i, w := range set {
			for j := 0; j < 8; j++ {
				b[i*8+j] = byte(w >> (8 * j))
			}
		}
		return string(b)
	}

	closure := func(set []uint64) {
		var stack []int
		for i := 0; i < n.NumStates(); i++ {
			if set[i/64]&(1<<(i%64)) != 0 {
				stack = append(stack, i)
			}
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range n.states[s].eps {
				if set[t/64]&(1<<(t%64)) == 0 {
					set[t/64] |= 1 << (t % 64)
					stack = append(stack, t)
				}
			}
		}
	}

	accepts := func(set []uint64) bool {
		for i := 0; i < n.NumStates(); i++ {
			if set[i/64]&(1<<(i%64)) != 0 && n.states[i].accept {
				return true
			}
		}
		return false
	}

	start := make([]uint64, words)
	start[n.Start/64] |= 1 << (n.Start % 64)
	closure(start)

	index := map[string]int{key(start): 0}
	sets := [][]uint64{start}
	acc := []bool{accepts(start)}
	var trans [][]int // trans[state][symbol]
	trans = append(trans, make([]int, n.NumSymbols))

	for done := 0; done < len(sets); done++ {
		cur := sets[done]
		for a := 0; a < n.NumSymbols; a++ {
			next := make([]uint64, words)
			for i := 0; i < n.NumStates(); i++ {
				if cur[i/64]&(1<<(i%64)) == 0 {
					continue
				}
				for _, t := range n.states[i].on[a] {
					next[t/64] |= 1 << (t % 64)
				}
			}
			closure(next)
			k := key(next)
			id, ok := index[k]
			if !ok {
				id = len(sets)
				index[k] = id
				sets = append(sets, next)
				acc = append(acc, accepts(next))
				trans = append(trans, make([]int, n.NumSymbols))
			}
			trans[done][a] = id
		}
	}

	d := NewDFA(len(sets), n.NumSymbols, 0)
	copy(d.Accept, acc)
	for s := range sets {
		for a := 0; a < n.NumSymbols; a++ {
			d.SetNext(s, a, trans[s][a])
		}
	}
	return checked(d)
}
