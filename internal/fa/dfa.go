// Package fa implements a finite-automata toolkit over dense integer
// alphabets: ε-NFAs with the standard regular operations, subset
// construction, Hopcroft minimization, boolean combinations by product
// construction, occurrence counters, and language equivalence testing.
//
// The package is the compilation backend for the Ode composite-event
// algebra (Gehani, Jagadish & Shmueli, SIGMOD 1992, §5): every event
// expression denotes a regular language over the alphabet of disjoint
// logical events, and detection runs the minimized DFA one transition
// per posted event.
//
// Symbols are integers in [0, NumSymbols). All DFAs in this package are
// complete: every state has a transition on every symbol. A DFA that
// rejects everything still has at least one (dead) state.
package fa

import "fmt"

// DFA is a complete deterministic finite automaton. States are numbered
// [0, NumStates); Trans[s*NumSymbols+a] is the successor of state s on
// symbol a. Accept[s] reports whether state s is accepting.
type DFA struct {
	NumStates  int
	NumSymbols int
	Start      int
	Trans      []int
	Accept     []bool
}

// NewDFA returns a DFA with the given geometry and all transitions
// pointing at state 0. The caller fills in Trans and Accept.
func NewDFA(numStates, numSymbols, start int) *DFA {
	if numStates <= 0 {
		panic("fa: DFA must have at least one state")
	}
	if numSymbols < 0 {
		panic("fa: negative alphabet size")
	}
	if start < 0 || start >= numStates {
		panic("fa: start state out of range")
	}
	return &DFA{
		NumStates:  numStates,
		NumSymbols: numSymbols,
		Start:      start,
		Trans:      make([]int, numStates*numSymbols),
		Accept:     make([]bool, numStates),
	}
}

// Next returns the successor of state s on symbol a.
func (d *DFA) Next(s, a int) int { return d.Trans[s*d.NumSymbols+a] }

// SetNext sets the successor of state s on symbol a.
func (d *DFA) SetNext(s, a, t int) { d.Trans[s*d.NumSymbols+a] = t }

// Accepts reports whether the DFA accepts the input word.
func (d *DFA) Accepts(word []int) bool {
	s := d.Start
	for _, a := range word {
		s = d.Next(s, a)
	}
	return d.Accept[s]
}

// Run consumes word starting from state s and returns the final state.
func (d *DFA) Run(s int, word []int) int {
	for _, a := range word {
		s = d.Next(s, a)
	}
	return s
}

// Clone returns a deep copy of the DFA.
func (d *DFA) Clone() *DFA {
	c := &DFA{
		NumStates:  d.NumStates,
		NumSymbols: d.NumSymbols,
		Start:      d.Start,
		Trans:      append([]int(nil), d.Trans...),
		Accept:     append([]bool(nil), d.Accept...),
	}
	return c
}

// validate panics if the DFA is structurally inconsistent. It is used
// by operations that assume completeness.
func (d *DFA) validate() {
	if len(d.Trans) != d.NumStates*d.NumSymbols {
		panic(fmt.Sprintf("fa: transition table has %d entries, want %d",
			len(d.Trans), d.NumStates*d.NumSymbols))
	}
	if len(d.Accept) != d.NumStates {
		panic(fmt.Sprintf("fa: accept vector has %d entries, want %d",
			len(d.Accept), d.NumStates))
	}
	for i, t := range d.Trans {
		if t < 0 || t >= d.NumStates {
			panic(fmt.Sprintf("fa: transition %d targets out-of-range state %d", i, t))
		}
	}
}

// EmptyDFA returns a DFA over numSymbols symbols that rejects every word.
func EmptyDFA(numSymbols int) *DFA {
	d := NewDFA(1, numSymbols, 0)
	return d // all transitions self-loop on state 0, never accepting
}

// UniversalDFA returns a DFA accepting every word, including the empty word.
func UniversalDFA(numSymbols int) *DFA {
	d := NewDFA(1, numSymbols, 0)
	d.Accept[0] = true
	return d
}

// NonEmptyUniversalDFA returns a DFA accepting Σ⁺ (every non-empty word).
// Event languages are ε-free — an event needs at least one history point
// — so this, not UniversalDFA, is the usual "anything" building block.
func NonEmptyUniversalDFA(numSymbols int) *DFA {
	d := NewDFA(2, numSymbols, 0)
	for a := 0; a < numSymbols; a++ {
		d.SetNext(0, a, 1)
		d.SetNext(1, a, 1)
	}
	d.Accept[1] = true
	return d
}

// LastSymbolDFA returns a DFA for Σ*a — words whose final symbol is a.
// This is the denotation of an atomic logical event: the event occurs
// at exactly the history points labeled a.
func LastSymbolDFA(numSymbols, a int) *DFA {
	if a < 0 || a >= numSymbols {
		panic("fa: symbol out of range")
	}
	d := NewDFA(2, numSymbols, 0)
	for b := 0; b < numSymbols; b++ {
		t := 0
		if b == a {
			t = 1
		}
		d.SetNext(0, b, t)
		d.SetNext(1, b, t)
	}
	d.Accept[1] = true
	return d
}

// Reachable returns the set of states reachable from the start state.
func (d *DFA) Reachable() []bool {
	seen := make([]bool, d.NumStates)
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for a := 0; a < d.NumSymbols; a++ {
			t := d.Next(s, a)
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// IsEmpty reports whether the DFA's language is empty.
func (d *DFA) IsEmpty() bool {
	seen := d.Reachable()
	for s, ok := range seen {
		if ok && d.Accept[s] {
			return false
		}
	}
	return true
}

// AcceptsEpsilon reports whether the start state is accepting.
func (d *DFA) AcceptsEpsilon() bool { return d.Accept[d.Start] }

// ShortestAccepted returns a shortest accepted word and true, or nil and
// false when the language is empty. It is used by tests and by the
// equivalence checker to produce counterexamples.
func (d *DFA) ShortestAccepted() ([]int, bool) {
	type pred struct {
		state, sym int
	}
	prev := make([]pred, d.NumStates)
	for i := range prev {
		prev[i] = pred{-1, -1}
	}
	seen := make([]bool, d.NumStates)
	queue := []int{d.Start}
	seen[d.Start] = true
	goal := -1
	if d.Accept[d.Start] {
		return []int{}, true
	}
	for len(queue) > 0 && goal < 0 {
		s := queue[0]
		queue = queue[1:]
		for a := 0; a < d.NumSymbols; a++ {
			t := d.Next(s, a)
			if seen[t] {
				continue
			}
			seen[t] = true
			prev[t] = pred{s, a}
			if d.Accept[t] {
				goal = t
				break
			}
			queue = append(queue, t)
		}
	}
	if goal < 0 {
		return nil, false
	}
	var rev []int
	for s := goal; prev[s].state >= 0; s = prev[s].state {
		rev = append(rev, prev[s].sym)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}
