package fa

import (
	"math/rand"
	"os"
	"testing"
)

// TestMain turns on output validation for the whole package: every
// Determinize/Minimize result and every Compact built during these
// tests is structurally checked.
func TestMain(m *testing.M) {
	SetOutputValidation(true)
	os.Exit(m.Run())
}

// TestCompressTrajectoryOracle is the core compact property: for random
// DFAs and random words, the compact form visits exactly the same state
// sequence as the fat oracle and agrees on acceptance at every step.
func TestCompressTrajectoryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		k := 1 + rng.Intn(5)
		d := randomDFA(rng, 40, k)
		c := Compress(d)
		if c.NumStates() != d.NumStates || c.NumSymbols() != d.NumSymbols || c.Start() != d.Start {
			t.Fatalf("iter %d: shape mismatch", i)
		}
		s, cs := d.Start, c.Start()
		for step := 0; step < 64; step++ {
			if c.Accept(cs) != d.Accept[s] {
				t.Fatalf("iter %d step %d: accept mismatch at state %d", i, step, s)
			}
			a := rng.Intn(k)
			s, cs = d.Next(s, a), c.Next(cs, a)
			if s != cs {
				t.Fatalf("iter %d step %d: trajectory diverged (%d vs %d)", i, step, s, cs)
			}
		}
	}
}

func TestCompressExpandRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		d := randomDFA(rng, 25, 1+rng.Intn(4))
		e := Compress(d).Expand()
		if e.NumStates != d.NumStates || e.Start != d.Start {
			t.Fatalf("iter %d: shape changed across round trip", i)
		}
		for s := 0; s < d.NumStates; s++ {
			if e.Accept[s] != d.Accept[s] {
				t.Fatalf("iter %d: accept[%d] changed", i, s)
			}
			for a := 0; a < d.NumSymbols; a++ {
				if e.Next(s, a) != d.Next(s, a) {
					t.Fatalf("iter %d: next(%d,%d) changed", i, s, a)
				}
			}
		}
	}
}

// TestCompactRowDedup pins the size win: a DFA in which many states
// share transition rows must store each distinct row once.
func TestCompactRowDedup(t *testing.T) {
	// 100 states, all rows identical: everything maps to state 0.
	d := NewDFA(100, 4, 0)
	c := Compress(d)
	if c.NumRows() != 1 {
		t.Fatalf("identical rows not deduplicated: %d rows", c.NumRows())
	}
	if c.Wide() {
		t.Fatal("small automaton should use narrow cells")
	}
	// rowIndex (100×4) + one row (4×2) + accept (2×8).
	if got, want := c.Bytes(), 100*4+4*2+2*8; got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
	fat := d.NumStates * d.NumSymbols * 8
	if c.Bytes()*4 > fat {
		t.Fatalf("compact %dB not ≥4x smaller than fat %dB", c.Bytes(), fat)
	}
}

// TestCompactWide exercises the uint32 cell path with a synthetic
// automaton too large for uint16 cells.
func TestCompactWide(t *testing.T) {
	if testing.Short() {
		t.Skip("wide automaton construction in -short mode")
	}
	n := 1<<16 + 3
	// next(s,0) = s+1 mod n, next(s,1) = s: every state has a distinct
	// row, and targets exceed 2^16.
	c := NewCompact(n, 2, 0,
		func(s, a int) int {
			if a == 0 {
				return (s + 1) % n
			}
			return s
		},
		func(s int) bool { return s == n-1 })
	if !c.Wide() {
		t.Fatal("automaton with >2^16 states should be wide")
	}
	if c.NumRows() != n {
		t.Fatalf("distinct rows collapsed: %d of %d", c.NumRows(), n)
	}
	s := c.Start()
	for i := 0; i < n; i++ {
		if c.Accept(s) != (s == n-1) {
			t.Fatalf("accept mismatch at %d", s)
		}
		s = c.Next(s, 0)
	}
	if s != 0 {
		t.Fatalf("cycle did not close: at %d", s)
	}
}

func TestCompactAcceptsMatchesDFA(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		k := 1 + rng.Intn(3)
		d := randomDFA(rng, 12, k)
		c := Compress(d)
		word := make([]int, rng.Intn(20))
		for j := range word {
			word[j] = rng.Intn(k)
		}
		if c.Accepts(word) != d.Accepts(word) {
			t.Fatalf("iter %d: acceptance mismatch on %v", i, word)
		}
	}
}

func TestSetOutputValidationToggle(t *testing.T) {
	if !OutputValidationEnabled() {
		t.Fatal("TestMain should have enabled output validation")
	}
	prev := SetOutputValidation(false)
	if !prev {
		t.Fatal("previous value should have been true")
	}
	SetOutputValidation(true)
}
