package fa

// NFA is a nondeterministic finite automaton with ε-transitions.
// It is the intermediate representation for the regular operations
// (union, concatenation, plus) whose direct DFA constructions would be
// awkward; every NFA is determinized before use at detection time.
type NFA struct {
	NumSymbols int
	Start      int
	states     []nfaState
}

type nfaState struct {
	accept bool
	eps    []int
	on     map[int][]int // symbol → successor states
}

// NewNFA returns an empty NFA over the given alphabet with a single
// non-accepting start state (state 0).
func NewNFA(numSymbols int) *NFA {
	n := &NFA{NumSymbols: numSymbols}
	n.Start = n.AddState(false)
	return n
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.states) }

// AddState adds a state and returns its index.
func (n *NFA) AddState(accept bool) int {
	n.states = append(n.states, nfaState{accept: accept})
	return len(n.states) - 1
}

// SetAccept marks state s accepting or not.
func (n *NFA) SetAccept(s int, accept bool) { n.states[s].accept = accept }

// IsAccept reports whether state s is accepting.
func (n *NFA) IsAccept(s int) bool { return n.states[s].accept }

// AddEdge adds a transition from s to t on symbol a.
func (n *NFA) AddEdge(s, a, t int) {
	if a < 0 || a >= n.NumSymbols {
		panic("fa: symbol out of range")
	}
	st := &n.states[s]
	if st.on == nil {
		st.on = make(map[int][]int)
	}
	st.on[a] = append(st.on[a], t)
}

// AddEps adds an ε-transition from s to t.
func (n *NFA) AddEps(s, t int) {
	n.states[s].eps = append(n.states[s].eps, t)
}

// acceptingStates returns the indices of all accepting states.
func (n *NFA) acceptingStates() []int {
	var acc []int
	for i := range n.states {
		if n.states[i].accept {
			acc = append(acc, i)
		}
	}
	return acc
}

// FromDFA converts a DFA into an equivalent NFA (a fresh copy; the DFA
// is not modified).
func FromDFA(d *DFA) *NFA {
	d.validate()
	n := &NFA{NumSymbols: d.NumSymbols}
	for s := 0; s < d.NumStates; s++ {
		n.AddState(d.Accept[s])
	}
	n.Start = d.Start
	for s := 0; s < d.NumStates; s++ {
		for a := 0; a < d.NumSymbols; a++ {
			n.AddEdge(s, a, d.Next(s, a))
		}
	}
	return n
}

// embed copies all states of m into n, returning the index offset.
// Edge and acceptance structure is preserved; m is not modified.
func (n *NFA) embed(m *NFA) int {
	if m.NumSymbols != n.NumSymbols {
		panic("fa: alphabet mismatch")
	}
	off := len(n.states)
	for i := range m.states {
		src := &m.states[i]
		st := nfaState{accept: src.accept}
		for _, t := range src.eps {
			st.eps = append(st.eps, t+off)
		}
		if src.on != nil {
			st.on = make(map[int][]int, len(src.on))
			for a, ts := range src.on {
				tt := make([]int, len(ts))
				for j, t := range ts {
					tt[j] = t + off
				}
				st.on[a] = tt
			}
		}
		n.states = append(n.states, st)
	}
	return off
}

// UnionNFA returns an NFA for L(a) ∪ L(b).
func UnionNFA(a, b *NFA) *NFA {
	n := NewNFA(a.NumSymbols)
	offA := n.embed(a)
	offB := n.embed(b)
	n.AddEps(n.Start, a.Start+offA)
	n.AddEps(n.Start, b.Start+offB)
	return n
}

// ConcatNFA returns an NFA for L(a)·L(b): ε-edges from every accepting
// state of a to the start of b, with a's acceptance cleared.
//
// In the event algebra this is exactly the relative(a, b) operator:
// b's occurrence is detected in the history suffix strictly after a
// point where a occurred (both languages are ε-free, so the suffix is
// non-empty by construction).
func ConcatNFA(a, b *NFA) *NFA {
	n := NewNFA(a.NumSymbols)
	offA := n.embed(a)
	offB := n.embed(b)
	n.AddEps(n.Start, a.Start+offA)
	for _, s := range a.acceptingStates() {
		n.SetAccept(s+offA, false)
		n.AddEps(s+offA, b.Start+offB)
	}
	return n
}

// PlusNFA returns an NFA for L(a)⁺ — one or more concatenations. This is
// the relative+ operator of the event algebra.
func PlusNFA(a *NFA) *NFA {
	n := NewNFA(a.NumSymbols)
	off := n.embed(a)
	n.AddEps(n.Start, a.Start+off)
	for _, s := range a.acceptingStates() {
		n.AddEps(s+off, a.Start+off)
	}
	return n
}

// PowerNFA returns an NFA for L(a)ⁿ, n ≥ 1 — the relative n (E) operator
// ("the nth and any subsequent occurrence", paper §3.4).
func PowerNFA(a *NFA, n int) *NFA {
	if n < 1 {
		panic("fa: power must be at least 1")
	}
	out := a
	for i := 1; i < n; i++ {
		out = ConcatNFA(out, a)
	}
	return out
}
