package fa

import (
	"math/rand"
	"testing"
)

func benchDFA(states, symbols int, seed int64) *DFA {
	return randomDFA(rand.New(rand.NewSource(seed)), states, symbols)
}

func BenchmarkDeterminize(b *testing.B) {
	a := FromDFA(benchDFA(12, 4, 1))
	c := FromDFA(benchDFA(12, 4, 2))
	n := ConcatNFA(a, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Determinize(n)
	}
}

func BenchmarkMinimizeHopcroft(b *testing.B) {
	d := Determinize(ConcatNFA(FromDFA(benchDFA(12, 4, 3)), FromDFA(benchDFA(12, 4, 4))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimize(d)
	}
}

func BenchmarkProductIntersect(b *testing.B) {
	x := benchDFA(24, 4, 5)
	y := benchDFA(24, 4, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersect(x, y)
	}
}

func BenchmarkEquivalent(b *testing.B) {
	x := benchDFA(24, 4, 7)
	y := Minimize(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equivalent(x, y) {
			b.Fatal("must be equivalent")
		}
	}
}

func BenchmarkDFAStep(b *testing.B) {
	d := benchDFA(32, 8, 8)
	h := make([]int, 4096)
	rng := rand.New(rand.NewSource(9))
	for i := range h {
		h[i] = rng.Intn(8)
	}
	s := d.Start
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = d.Next(s, h[i%len(h)])
	}
	_ = s
}
