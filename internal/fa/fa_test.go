package fa

import (
	"math/rand"
	"testing"
)

// enumerate calls fn with every word over [0,k) of length ≤ maxLen,
// in length-lexicographic order.
func enumerate(k, maxLen int, fn func(word []int)) {
	var rec func(prefix []int)
	rec = func(prefix []int) {
		fn(prefix)
		if len(prefix) == maxLen {
			return
		}
		for a := 0; a < k; a++ {
			rec(append(prefix, a))
		}
	}
	rec(nil)
}

// langEqual checks that two DFAs agree on all words up to maxLen and
// via the product-construction equivalence check.
func langEqual(t *testing.T, a, b *DFA, maxLen int) {
	t.Helper()
	enumerate(a.NumSymbols, maxLen, func(w []int) {
		if a.Accepts(w) != b.Accepts(w) {
			t.Fatalf("disagree on %v: a=%v b=%v", w, a.Accepts(w), b.Accepts(w))
		}
	})
	if !Equivalent(a, b) {
		t.Fatalf("Equivalent=false but no short counterexample; distinguishing word %v", Distinguish(a, b))
	}
}

func TestEmptyDFA(t *testing.T) {
	d := EmptyDFA(2)
	enumerate(2, 4, func(w []int) {
		if d.Accepts(w) {
			t.Fatalf("empty DFA accepted %v", w)
		}
	})
	if !d.IsEmpty() {
		t.Fatal("IsEmpty=false for empty DFA")
	}
}

func TestUniversalDFA(t *testing.T) {
	d := UniversalDFA(3)
	enumerate(3, 3, func(w []int) {
		if !d.Accepts(w) {
			t.Fatalf("universal DFA rejected %v", w)
		}
	})
}

func TestNonEmptyUniversalDFA(t *testing.T) {
	d := NonEmptyUniversalDFA(2)
	if d.Accepts(nil) {
		t.Fatal("Σ⁺ DFA accepted ε")
	}
	enumerate(2, 4, func(w []int) {
		if len(w) > 0 && !d.Accepts(w) {
			t.Fatalf("Σ⁺ DFA rejected %v", w)
		}
	})
}

func TestLastSymbolDFA(t *testing.T) {
	d := LastSymbolDFA(3, 1)
	enumerate(3, 4, func(w []int) {
		want := len(w) > 0 && w[len(w)-1] == 1
		if d.Accepts(w) != want {
			t.Fatalf("Σ*1 on %v: got %v want %v", w, d.Accepts(w), want)
		}
	})
}

func TestShortestAccepted(t *testing.T) {
	d := LastSymbolDFA(2, 1)
	w, ok := d.ShortestAccepted()
	if !ok || len(w) != 1 || w[0] != 1 {
		t.Fatalf("shortest accepted = %v, %v; want [1], true", w, ok)
	}
	if _, ok := EmptyDFA(2).ShortestAccepted(); ok {
		t.Fatal("empty DFA returned an accepted word")
	}
	u := UniversalDFA(2)
	w, ok = u.ShortestAccepted()
	if !ok || len(w) != 0 {
		t.Fatalf("universal shortest = %v, %v; want ε", w, ok)
	}
}

func TestConcatNFA(t *testing.T) {
	// L = Σ*a · Σ*b over {a=0, b=1}: words ending in b containing an
	// earlier a.
	a := FromDFA(LastSymbolDFA(2, 0))
	b := FromDFA(LastSymbolDFA(2, 1))
	d := Determinize(ConcatNFA(a, b))
	enumerate(2, 6, func(w []int) {
		want := false
		if len(w) >= 2 && w[len(w)-1] == 1 {
			for _, s := range w[:len(w)-1] {
				if s == 0 {
					want = true
				}
			}
		}
		if d.Accepts(w) != want {
			t.Fatalf("concat on %v: got %v want %v", w, d.Accepts(w), want)
		}
	})
}

func TestUnionNFA(t *testing.T) {
	a := FromDFA(LastSymbolDFA(2, 0))
	b := FromDFA(LastSymbolDFA(2, 1))
	d := Determinize(UnionNFA(a, b))
	// Σ*a ∪ Σ*b = Σ⁺ over a two-symbol alphabet.
	langEqual(t, d, NonEmptyUniversalDFA(2), 5)
}

func TestPlusNFA(t *testing.T) {
	// (Σ*a)⁺ = Σ*a: chaining "ends in a" any number of times still just
	// means the word ends in a.
	a := LastSymbolDFA(2, 0)
	d := Determinize(PlusNFA(FromDFA(a)))
	langEqual(t, d, a, 6)
}

func TestPowerNFA(t *testing.T) {
	// (Σ*a)³ = words ending in a with at least 3 a's — "the third and
	// any subsequent occurrence" (paper §3.4).
	a := FromDFA(LastSymbolDFA(2, 0))
	d := Determinize(PowerNFA(a, 3))
	enumerate(2, 7, func(w []int) {
		count := 0
		for _, s := range w {
			if s == 0 {
				count++
			}
		}
		want := len(w) > 0 && w[len(w)-1] == 0 && count >= 3
		if d.Accepts(w) != want {
			t.Fatalf("power on %v: got %v want %v", w, d.Accepts(w), want)
		}
	})
}

func TestIntersectUnionDifference(t *testing.T) {
	a := LastSymbolDFA(2, 0)
	plus := NonEmptyUniversalDFA(2)
	// Σ*a ∩ Σ⁺ = Σ*a
	langEqual(t, Intersect(a, plus), a, 5)
	// Σ*a ∪ Σ⁺ = Σ⁺
	langEqual(t, Union(a, plus), plus, 5)
	// Σ⁺ ∖ Σ*a = Σ*b
	langEqual(t, Difference(plus, a), LastSymbolDFA(2, 1), 5)
}

func TestNegateEvent(t *testing.T) {
	a := LastSymbolDFA(2, 0)
	n := NegateEvent(a)
	if n.Accepts(nil) {
		t.Fatal("!E accepted the empty history")
	}
	langEqual(t, n, LastSymbolDFA(2, 1), 5)
	// Double negation restores the language (on Σ⁺).
	langEqual(t, NegateEvent(n), a, 5)
}

func TestMinimizeIdempotentAndMinimal(t *testing.T) {
	// Build a bloated DFA for Σ*a via NFA ops and check minimization
	// collapses it to 2 states.
	a := FromDFA(LastSymbolDFA(2, 0))
	big := Determinize(UnionNFA(a, a))
	m := Minimize(big)
	if m.NumStates != 2 {
		t.Fatalf("minimal Σ*a has %d states, want 2", m.NumStates)
	}
	langEqual(t, m, LastSymbolDFA(2, 0), 5)
	m2 := Minimize(m)
	if m2.NumStates != m.NumStates {
		t.Fatalf("Minimize not idempotent: %d -> %d states", m.NumStates, m2.NumStates)
	}
}

func TestMinimizeEmptyAndUniversal(t *testing.T) {
	if m := Minimize(EmptyDFA(3)); m.NumStates != 1 || !m.IsEmpty() {
		t.Fatalf("minimal empty DFA: %d states, empty=%v", m.NumStates, m.IsEmpty())
	}
	if m := Minimize(UniversalDFA(3)); m.NumStates != 1 || !m.Accepts([]int{0, 1, 2}) {
		t.Fatalf("minimal universal DFA wrong")
	}
}

func TestChooseN(t *testing.T) {
	a := LastSymbolDFA(2, 0)
	c := ChooseN(a, 3)
	enumerate(2, 7, func(w []int) {
		count := 0
		for _, s := range w {
			if s == 0 {
				count++
			}
		}
		want := len(w) > 0 && w[len(w)-1] == 0 && count == 3
		if c.Accepts(w) != want {
			t.Fatalf("choose 3 on %v: got %v want %v", w, c.Accepts(w), want)
		}
	})
}

func TestEveryN(t *testing.T) {
	a := LastSymbolDFA(2, 0)
	e := EveryN(a, 2)
	enumerate(2, 7, func(w []int) {
		count := 0
		for _, s := range w {
			if s == 0 {
				count++
			}
		}
		want := len(w) > 0 && w[len(w)-1] == 0 && count%2 == 0
		if e.Accepts(w) != want {
			t.Fatalf("every 2 on %v: got %v want %v", w, e.Accepts(w), want)
		}
	})
}

func TestFirstMatch(t *testing.T) {
	a := LastSymbolDFA(2, 0)
	f := FirstMatch(a)
	enumerate(2, 6, func(w []int) {
		count := 0
		for _, s := range w {
			if s == 0 {
				count++
			}
		}
		// min(Σ*a): exactly one a, at the end.
		want := len(w) > 0 && w[len(w)-1] == 0 && count == 1
		if f.Accepts(w) != want {
			t.Fatalf("first-match on %v: got %v want %v", w, f.Accepts(w), want)
		}
	})
}

func TestEquivalentAndDistinguish(t *testing.T) {
	a := LastSymbolDFA(2, 0)
	b := LastSymbolDFA(2, 1)
	if Equivalent(a, b) {
		t.Fatal("Σ*a reported equivalent to Σ*b")
	}
	w := Distinguish(a, b)
	if w == nil {
		t.Fatal("no distinguishing word returned")
	}
	if a.Accepts(w) == b.Accepts(w) {
		t.Fatalf("distinguishing word %v does not distinguish", w)
	}
	if Distinguish(a, a.Clone()) != nil {
		t.Fatal("clone distinguished from original")
	}
}

// randomDFA builds a random complete DFA for property testing.
func randomDFA(rng *rand.Rand, maxStates, numSymbols int) *DFA {
	n := 1 + rng.Intn(maxStates)
	d := NewDFA(n, numSymbols, rng.Intn(n))
	for s := 0; s < n; s++ {
		d.Accept[s] = rng.Intn(2) == 0
		for a := 0; a < numSymbols; a++ {
			d.SetNext(s, a, rng.Intn(n))
		}
	}
	return d
}

func TestMinimizePreservesLanguageRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		d := randomDFA(rng, 8, 2)
		m := Minimize(d)
		if !Equivalent(d, m) {
			t.Fatalf("iter %d: minimized DFA differs; witness %v", i, Distinguish(d, m))
		}
		if m.NumStates > d.NumStates {
			t.Fatalf("iter %d: minimization grew the DFA %d -> %d", i, d.NumStates, m.NumStates)
		}
		mm := Minimize(m)
		if mm.NumStates != m.NumStates {
			t.Fatalf("iter %d: Minimize not idempotent (%d -> %d)", i, m.NumStates, mm.NumStates)
		}
	}
}

func TestDeterminizePreservesLanguageRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a := randomDFA(rng, 5, 2)
		b := randomDFA(rng, 5, 2)
		got := Determinize(ConcatNFA(FromDFA(a), FromDFA(b)))
		// Brute-force check of concatenation semantics on short words.
		enumerate(2, 6, func(w []int) {
			want := false
			for cut := 0; cut <= len(w) && !want; cut++ {
				if a.Accepts(w[:cut]) && b.Accepts(w[cut:]) {
					want = true
				}
			}
			if got.Accepts(w) != want {
				t.Fatalf("iter %d: concat on %v: got %v want %v", i, w, got.Accepts(w), want)
			}
		})
	}
}

func TestProductLawsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		a := randomDFA(rng, 6, 2)
		b := randomDFA(rng, 6, 2)
		// De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B
		lhs := Complement(Union(a, b))
		rhs := Intersect(Complement(a), Complement(b))
		if !Equivalent(lhs, rhs) {
			t.Fatalf("iter %d: De Morgan violated; witness %v", i, Distinguish(lhs, rhs))
		}
		// A ∖ B = A ∩ ¬B
		if !Equivalent(Difference(a, b), Intersect(a, Complement(b))) {
			t.Fatalf("iter %d: difference law violated", i)
		}
	}
}

func TestDotAndTableSmoke(t *testing.T) {
	d := LastSymbolDFA(2, 0)
	dot := d.Dot("sigma_star_a", func(a int) string { return string(rune('a' + a)) })
	if len(dot) == 0 || dot[0] != 'd' {
		t.Fatalf("dot output malformed: %q", dot)
	}
	tab := d.Table(nil)
	if len(tab) == 0 {
		t.Fatal("empty table output")
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("validate did not panic on corrupt DFA")
		}
	}()
	d := LastSymbolDFA(2, 0)
	d.Trans[0] = 99
	d.validate()
}
