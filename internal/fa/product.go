package fa

// product builds the reachable product of two complete DFAs, accepting
// according to combine. Both automata must share an alphabet.
func product(a, b *DFA, combine func(x, y bool) bool) *DFA {
	if a.NumSymbols != b.NumSymbols {
		panic("fa: alphabet mismatch")
	}
	a.validate()
	b.validate()
	k := a.NumSymbols

	type pair struct{ x, y int }
	index := map[pair]int{{a.Start, b.Start}: 0}
	order := []pair{{a.Start, b.Start}}
	var trans [][]int
	trans = append(trans, make([]int, k))

	for done := 0; done < len(order); done++ {
		p := order[done]
		for s := 0; s < k; s++ {
			q := pair{a.Next(p.x, s), b.Next(p.y, s)}
			id, ok := index[q]
			if !ok {
				id = len(order)
				index[q] = id
				order = append(order, q)
				trans = append(trans, make([]int, k))
			}
			trans[done][s] = id
		}
	}

	d := NewDFA(len(order), k, 0)
	for i, p := range order {
		d.Accept[i] = combine(a.Accept[p.x], b.Accept[p.y])
		copy(d.Trans[i*k:(i+1)*k], trans[i])
	}
	return d
}

// Intersect returns a DFA for L(a) ∩ L(b). In the event algebra this is
// the & operator: both events occur at the same history point.
func Intersect(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x && y })
}

// Union returns a DFA for L(a) ∪ L(b) — the | operator.
func Union(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x || y })
}

// Difference returns a DFA for L(a) ∖ L(b).
func Difference(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x && !y })
}

// SymmetricDifference returns a DFA for L(a) △ L(b); its emptiness is
// language equivalence.
func SymmetricDifference(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x != y })
}

// Complement returns a DFA for the full complement Σ* ∖ L(d).
func Complement(d *DFA) *DFA {
	d.validate()
	c := d.Clone()
	for i := range c.Accept {
		c.Accept[i] = !c.Accept[i]
	}
	return c
}

// NegateEvent returns a DFA for Σ⁺ ∖ L(d) — the event algebra's !
// operator. The empty word is excluded because negation complements
// with respect to the points of the history, and the empty history has
// no points to label (paper §4, item 5).
func NegateEvent(d *DFA) *DFA {
	return Intersect(Complement(d), NonEmptyUniversalDFA(d.NumSymbols))
}
