package fa

// The counter constructions implement the event algebra's occurrence
// selectors. An "occurrence" of event E along a word w is a non-empty
// prefix of w in L(E); by prefix-stability of event languages these are
// exactly the history points at which E occurs.

// ChooseN returns a DFA accepting the words w such that w ∈ L(d) and w
// has exactly n prefixes (counting w itself) in L(d) — the choose n (E)
// operator: only the nth occurrence of E is selected (paper §3.4:
// "choose 5 (after tcommit) is posted by the commit of the fifth
// transaction").
//
// The construction is a product of d with a saturating counter in
// [0, n+1]: the counter increments whenever d's component enters an
// accepting state, and the product accepts when the component accepts
// with the counter exactly at n.
func ChooseN(d *DFA, n int) *DFA {
	if n < 1 {
		panic("fa: choose requires n >= 1")
	}
	d.validate()
	k := d.NumSymbols
	// State encoding: q*(n+2) + c, counter c ∈ [0, n+1] saturating.
	cells := n + 2
	startC := 0
	if d.Accept[d.Start] {
		startC = 1 // event languages are ε-free; defensive anyway
	}
	out := NewDFA(d.NumStates*cells, k, d.Start*cells+startC)
	for q := 0; q < d.NumStates; q++ {
		for c := 0; c < cells; c++ {
			s := q*cells + c
			out.Accept[s] = d.Accept[q] && c == n
			for a := 0; a < k; a++ {
				q2 := d.Next(q, a)
				c2 := c
				if d.Accept[q2] && c2 <= n {
					c2++
				}
				out.SetNext(s, a, q2*cells+c2)
			}
		}
	}
	return Minimize(out)
}

// EveryN returns a DFA accepting the words whose occurrence count of
// L(d) is a positive multiple of n, at an occurrence — the every n (E)
// operator: the nth, 2nth, 3nth, … occurrences (paper §3.4).
func EveryN(d *DFA, n int) *DFA {
	if n < 1 {
		panic("fa: every requires n >= 1")
	}
	d.validate()
	k := d.NumSymbols
	// State encoding: q*n + c, counter c ∈ [0, n) counting occurrences
	// modulo n.
	startC := 0
	if d.Accept[d.Start] {
		startC = 1 % n
	}
	out := NewDFA(d.NumStates*n, k, d.Start*n+startC)
	for q := 0; q < d.NumStates; q++ {
		for c := 0; c < n; c++ {
			s := q*n + c
			out.Accept[s] = d.Accept[q] && c == 0
			for a := 0; a < k; a++ {
				q2 := d.Next(q, a)
				c2 := c
				if d.Accept[q2] {
					c2 = (c + 1) % n
				}
				out.SetNext(s, a, q2*n+c2)
			}
		}
	}
	return Minimize(out)
}

// FirstMatch returns a DFA for min(L(d)): the words of L(d) having no
// proper non-empty prefix in L(d). Operationally: the first occurrence
// only. All transitions out of accepting states are redirected to a
// dead state. This is the building block for the fa(E, F, G) operator
// (first F after E with no intervening G).
func FirstMatch(d *DFA) *DFA {
	d.validate()
	k := d.NumSymbols
	out := NewDFA(d.NumStates+1, k, d.Start)
	dead := d.NumStates
	copy(out.Accept, d.Accept)
	for q := 0; q < d.NumStates; q++ {
		for a := 0; a < k; a++ {
			if d.Accept[q] {
				out.SetNext(q, a, dead)
			} else {
				out.SetNext(q, a, d.Next(q, a))
			}
		}
	}
	for a := 0; a < k; a++ {
		out.SetNext(dead, a, dead)
	}
	return Minimize(out)
}
