package fa

// Minimize returns the minimal complete DFA for d's language, using
// Hopcroft's partition-refinement algorithm over the states reachable
// from the start state. The result's states are renumbered arbitrarily
// but deterministically (blocks are discovered in a fixed order).
func Minimize(d *DFA) *DFA {
	d.validate()

	// Restrict to reachable states first; unreachable states must not
	// influence the partition.
	reach := d.Reachable()
	var live []int
	oldToLive := make([]int, d.NumStates)
	for i := range oldToLive {
		oldToLive[i] = -1
	}
	for s := 0; s < d.NumStates; s++ {
		if reach[s] {
			oldToLive[s] = len(live)
			live = append(live, s)
		}
	}
	n := len(live)
	k := d.NumSymbols

	// Inverse transition lists over live states.
	inv := make([][]int, n*k) // inv[t*k+a] = states s with δ(s,a)=t
	for i, s := range live {
		for a := 0; a < k; a++ {
			t := oldToLive[d.Next(s, a)]
			inv[t*k+a] = append(inv[t*k+a], i)
		}
	}

	// Partition data structures (Hopcroft with block splitting).
	block := make([]int, n) // state → block id
	var blocks [][]int      // block id → member states
	var accSet, rejSet []int
	for i, s := range live {
		if d.Accept[s] {
			accSet = append(accSet, i)
		} else {
			rejSet = append(rejSet, i)
		}
	}
	addBlock := func(members []int) int {
		id := len(blocks)
		blocks = append(blocks, members)
		for _, s := range members {
			block[s] = id
		}
		return id
	}
	var worklist [][2]int // (block id, symbol)
	pushAll := func(b int) {
		for a := 0; a < k; a++ {
			worklist = append(worklist, [2]int{b, a})
		}
	}
	if len(accSet) > 0 {
		pushAll(addBlock(accSet))
	}
	if len(rejSet) > 0 {
		pushAll(addBlock(rejSet))
	}

	inSplit := make([]bool, n)
	for len(worklist) > 0 {
		wb, wa := worklist[len(worklist)-1][0], worklist[len(worklist)-1][1]
		worklist = worklist[:len(worklist)-1]

		// X = states with a transition on wa into block wb.
		var x []int
		for _, t := range blocks[wb] {
			x = append(x, inv[t*k+wa]...)
		}
		if len(x) == 0 {
			continue
		}
		for _, s := range x {
			inSplit[s] = true
		}
		// Group X members by current block and split blocks that are
		// partially covered.
		touched := map[int]bool{}
		for _, s := range x {
			touched[block[s]] = true
		}
		for b := range touched {
			members := blocks[b]
			var in, out []int
			for _, s := range members {
				if inSplit[s] {
					in = append(in, s)
				} else {
					out = append(out, s)
				}
			}
			if len(in) == 0 || len(out) == 0 {
				continue
			}
			// Keep the larger half in place; the smaller becomes a new
			// block, and (new block, every symbol) joins the worklist.
			small, large := in, out
			if len(small) > len(large) {
				small, large = large, small
			}
			blocks[b] = large
			for _, s := range large {
				block[s] = b
			}
			pushAll(addBlock(small))
		}
		for _, s := range x {
			inSplit[s] = false
		}
	}

	// Renumber blocks in order of first discovery during a BFS from the
	// start block so the output is deterministic.
	startBlock := block[oldToLive[d.Start]]
	order := make([]int, 0, len(blocks))
	newID := make([]int, len(blocks))
	for i := range newID {
		newID[i] = -1
	}
	queue := []int{startBlock}
	newID[startBlock] = 0
	order = append(order, startBlock)
	for head := 0; head < len(queue); head++ {
		b := queue[head]
		rep := blocks[b][0]
		for a := 0; a < k; a++ {
			tb := block[oldToLive[d.Next(live[rep], a)]]
			if newID[tb] < 0 {
				newID[tb] = len(order)
				order = append(order, tb)
				queue = append(queue, tb)
			}
		}
	}

	out := NewDFA(len(order), k, 0)
	for idx, b := range order {
		rep := blocks[b][0]
		out.Accept[idx] = d.Accept[live[rep]]
		for a := 0; a < k; a++ {
			tb := block[oldToLive[d.Next(live[rep], a)]]
			out.SetNext(idx, a, newID[tb])
		}
	}
	return checked(out)
}
