package fa

// Equivalent reports whether two complete DFAs over the same alphabet
// accept the same language.
func Equivalent(a, b *DFA) bool {
	return SymmetricDifference(a, b).IsEmpty()
}

// Distinguish returns a word accepted by exactly one of the two DFAs,
// or nil when the automata are equivalent. Tests use it to print
// counterexamples.
func Distinguish(a, b *DFA) []int {
	w, ok := SymmetricDifference(a, b).ShortestAccepted()
	if !ok {
		return nil
	}
	return w
}
