package algebra

// Simplify rewrites an expression into an equivalent, usually smaller
// one by applying algebraic identities bottom-up:
//
//	E | empty = E            E & empty = empty
//	E | E = E                E & E = E
//	!!E = E
//	relative(empty, F) = relative(E, empty) = empty
//	relative+(empty) = empty
//	relative+(relative+(E)) = relative+(E)
//	prior(empty, F) = prior(E, empty) = empty
//	sequence(empty, F) = sequence(E, empty) = empty
//	choose n (empty) = every n (empty) = empty
//	fa(E, F, G): empty E or F = empty; empty G = fa unchanged
//
// Language preservation is property-tested against the compiler
// (TestSimplifyPreservesLanguage). The compiler runs Simplify before
// construction; the identities mostly arise from mechanical lowering
// (e.g. an "after update" selector over a class with no update
// methods lowers to empty).
func Simplify(e *Expr) *Expr {
	switch e.Op {
	case OpEmpty, OpAtom:
		return e
	}
	args := make([]*Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = Simplify(a)
		if args[i] != a {
			changed = true
		}
	}
	n := e
	if changed {
		n = &Expr{Op: e.Op, Sym: e.Sym, N: e.N, Args: args}
	}

	isEmpty := func(x *Expr) bool { return x.Op == OpEmpty }
	switch n.Op {
	case OpOr:
		switch {
		case isEmpty(args[0]):
			return args[1]
		case isEmpty(args[1]):
			return args[0]
		case equal(args[0], args[1]):
			return args[0]
		}
	case OpAnd:
		switch {
		case isEmpty(args[0]) || isEmpty(args[1]):
			return Empty()
		case equal(args[0], args[1]):
			return args[0]
		}
	case OpNot:
		if args[0].Op == OpNot {
			return args[0].Args[0]
		}
	case OpRelative, OpSequence:
		if isEmpty(args[0]) || isEmpty(args[1]) {
			return Empty()
		}
	case OpPrior:
		if isEmpty(args[0]) || isEmpty(args[1]) {
			return Empty()
		}
	case OpPlus:
		if isEmpty(args[0]) {
			return Empty()
		}
		if args[0].Op == OpPlus {
			return args[0]
		}
	case OpChoose, OpEvery:
		if isEmpty(args[0]) {
			return Empty()
		}
	case OpFa, OpFaAbs:
		// An unreachable window or an F that never occurs: never fires.
		// G = empty is fine — it only removes the guard.
		if isEmpty(args[0]) || isEmpty(args[1]) {
			return Empty()
		}
	}
	return n
}

// equal reports structural equality of two expressions.
func equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a.Op != b.Op || a.Sym != b.Sym || a.N != b.N || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !equal(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}
