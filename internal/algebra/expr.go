// Package algebra defines the Ode composite-event algebra (Gehani,
// Jagadish & Shmueli, SIGMOD 1992, §3.3–§4) over an abstract alphabet
// of disjoint logical events, together with a direct implementation of
// the paper's denotational semantics.
//
// An event history is a sequence of symbols (one per posted logical
// event); an expression denotes, for a given history, the set of
// history points at which the event occurs. Eval computes that set
// exactly as defined in the paper's §4 model; it is the ground-truth
// oracle against which the automaton compiler (internal/compile) is
// verified, and the "re-evaluate on every event" baseline in the
// experiment harness.
//
// Symbols are small non-negative integers. The mapping from real
// database happenings (method executions, transaction lifecycle,
// timers) and their masks to symbols is the concern of higher layers
// (internal/evlang, internal/trigger); this package is purely the
// algebra.
package algebra

import (
	"fmt"
	"strings"
)

// Op identifies an expression node kind.
type Op int

// Expression node kinds. The comments give the paper's surface syntax.
const (
	OpEmpty    Op = iota // the empty event (∅, core language item 1)
	OpAtom               // a logical event a
	OpOr                 // E | F
	OpAnd                // E & F
	OpNot                // !E
	OpRelative           // relative(E, F)
	OpPlus               // relative+(E)
	OpPrior              // prior(E, F)
	OpSequence           // sequence(E, F), also written E; F
	OpChoose             // choose n (E)
	OpEvery              // every n (E)
	OpFa                 // fa(E, F, G)
	OpFaAbs              // faAbs(E, F, G)
)

// Expr is a composite-event expression. Expressions are immutable
// after construction; the same node may be shared between expressions.
type Expr struct {
	Op   Op
	Sym  int     // OpAtom: the symbol
	N    int     // OpChoose, OpEvery: the occurrence selector
	Args []*Expr // operands, arity fixed per Op
}

// Constructors. Each validates arity so that malformed trees are
// impossible to build.

// Empty returns the empty event: it occurs at no point of any history.
func Empty() *Expr { return &Expr{Op: OpEmpty} }

// Atom returns the logical event with the given symbol.
func Atom(sym int) *Expr {
	if sym < 0 {
		panic("algebra: negative symbol")
	}
	return &Expr{Op: OpAtom, Sym: sym}
}

// Or returns the union event E | F: occurs at points where either
// occurs.
func Or(e, f *Expr) *Expr { return &Expr{Op: OpOr, Args: []*Expr{e, f}} }

// OrList folds Or over one or more expressions.
func OrList(es ...*Expr) *Expr { return foldBinary(OpOr, es) }

// And returns the intersection event E & F: occurs at points where
// both occur.
func And(e, f *Expr) *Expr { return &Expr{Op: OpAnd, Args: []*Expr{e, f}} }

// AndList folds And over one or more expressions.
func AndList(es ...*Expr) *Expr { return foldBinary(OpAnd, es) }

// Not returns the negation !E: occurs at exactly the points where E
// does not occur (complement with respect to the points of the
// history).
func Not(e *Expr) *Expr { return &Expr{Op: OpNot, Args: []*Expr{e}} }

// Relative returns relative(E, F): F occurring in the history suffix
// strictly after a point at which E occurred.
func Relative(e, f *Expr) *Expr { return &Expr{Op: OpRelative, Args: []*Expr{e, f}} }

// RelativeList applies the paper's currying: relative(E1, ..., En) is
// relative(relative(E1, E2), E3)... ; relative(E) is E.
func RelativeList(es ...*Expr) *Expr { return curry(Relative, es) }

// Plus returns relative+(E): one or more chained relative occurrences
// of E (the infinite disjunction relative(E) | relative(E,E) | ...).
func Plus(e *Expr) *Expr { return &Expr{Op: OpPlus, Args: []*Expr{e}} }

// RelativeN returns relative n (E): n-fold curried self-application,
// i.e. the nth and any subsequent occurrence in a relative chain
// (paper §3.4: "relative 5 (after deposit) specifies the composite
// event that consists of the fifth and any subsequent after deposit
// events").
func RelativeN(e *Expr, n int) *Expr { return selfCurry(Relative, e, n) }

// Prior returns prior(E, F): occurs at an F-point with an earlier
// E-point; the constituents may interleave arbitrarily.
func Prior(e, f *Expr) *Expr { return &Expr{Op: OpPrior, Args: []*Expr{e, f}} }

// PriorList applies currying to prior, as RelativeList does to
// relative.
func PriorList(es ...*Expr) *Expr { return curry(Prior, es) }

// PriorN returns prior n (E): n-fold curried self-application.
func PriorN(e *Expr, n int) *Expr { return selfCurry(Prior, e, n) }

// Sequence returns sequence(E, F) (also written E; F): F occurs at the
// point immediately following a point at which E occurred.
func Sequence(e, f *Expr) *Expr { return &Expr{Op: OpSequence, Args: []*Expr{e, f}} }

// SequenceList applies currying to sequence.
func SequenceList(es ...*Expr) *Expr { return curry(Sequence, es) }

// SequenceN returns sequence n (E): n-fold curried self-application
// (n consecutive occurrences of E).
func SequenceN(e *Expr, n int) *Expr { return selfCurry(Sequence, e, n) }

// Choose returns choose n (E): exactly the nth occurrence of E.
func Choose(e *Expr, n int) *Expr {
	if n < 1 {
		panic("algebra: choose requires n >= 1")
	}
	return &Expr{Op: OpChoose, N: n, Args: []*Expr{e}}
}

// Every returns every n (E): the nth, 2nth, 3nth, ... occurrences of E.
func Every(e *Expr, n int) *Expr {
	if n < 1 {
		panic("algebra: every requires n >= 1")
	}
	return &Expr{Op: OpEvery, N: n, Args: []*Expr{e}}
}

// Fa returns fa(E, F, G): the first occurrence of F relative to an
// occurrence of E, with no intervening G — F and G both judged in the
// truncated history that starts just after E.
func Fa(e, f, g *Expr) *Expr { return &Expr{Op: OpFa, Args: []*Expr{e, f, g}} }

// FaAbs returns faAbs(E, F, G): as Fa, but G is judged against the
// whole history — only G-occurrences of the un-truncated history that
// fall strictly between E's point and F's point block the event.
func FaAbs(e, f, g *Expr) *Expr { return &Expr{Op: OpFaAbs, Args: []*Expr{e, f, g}} }

func foldBinary(op Op, es []*Expr) *Expr {
	if len(es) == 0 {
		panic("algebra: empty operand list")
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &Expr{Op: op, Args: []*Expr{out, e}}
	}
	return out
}

func curry(mk func(a, b *Expr) *Expr, es []*Expr) *Expr {
	if len(es) == 0 {
		panic("algebra: empty operand list")
	}
	out := es[0]
	for _, e := range es[1:] {
		out = mk(out, e)
	}
	return out
}

func selfCurry(mk func(a, b *Expr) *Expr, e *Expr, n int) *Expr {
	if n < 1 {
		panic("algebra: repetition count must be >= 1")
	}
	out := e
	for i := 1; i < n; i++ {
		out = mk(out, e)
	}
	return out
}

// MaxSymbol returns the largest atom symbol in the expression, or -1
// when the expression contains no atoms. The alphabet size needed to
// evaluate or compile e is at least MaxSymbol(e)+1.
func (e *Expr) MaxSymbol() int {
	max := -1
	e.Walk(func(x *Expr) {
		if x.Op == OpAtom && x.Sym > max {
			max = x.Sym
		}
	})
	return max
}

// Walk visits every node of the expression tree in preorder.
func (e *Expr) Walk(fn func(*Expr)) {
	fn(e)
	for _, a := range e.Args {
		a.Walk(fn)
	}
}

// Size returns the number of nodes in the expression tree.
func (e *Expr) Size() int {
	n := 0
	e.Walk(func(*Expr) { n++ })
	return n
}

// String renders the expression in the paper's surface syntax with
// symbols printed as e<k>.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Expr) format(b *strings.Builder) {
	switch e.Op {
	case OpEmpty:
		b.WriteString("empty")
	case OpAtom:
		fmt.Fprintf(b, "e%d", e.Sym)
	case OpOr:
		b.WriteByte('(')
		e.Args[0].format(b)
		b.WriteString(" | ")
		e.Args[1].format(b)
		b.WriteByte(')')
	case OpAnd:
		b.WriteByte('(')
		e.Args[0].format(b)
		b.WriteString(" & ")
		e.Args[1].format(b)
		b.WriteByte(')')
	case OpNot:
		b.WriteByte('!')
		e.Args[0].format(b)
	case OpRelative:
		formatCall(b, "relative", e.Args)
	case OpPlus:
		formatCall(b, "relative+", e.Args)
	case OpPrior:
		formatCall(b, "prior", e.Args)
	case OpSequence:
		formatCall(b, "sequence", e.Args)
	case OpChoose:
		fmt.Fprintf(b, "choose %d ", e.N)
		formatCall(b, "", e.Args)
	case OpEvery:
		fmt.Fprintf(b, "every %d ", e.N)
		formatCall(b, "", e.Args)
	case OpFa:
		formatCall(b, "fa", e.Args)
	case OpFaAbs:
		formatCall(b, "faAbs", e.Args)
	default:
		panic(fmt.Sprintf("algebra: unknown op %d", e.Op))
	}
}

func formatCall(b *strings.Builder, name string, args []*Expr) {
	b.WriteString(name)
	b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.format(b)
	}
	b.WriteByte(')')
}
