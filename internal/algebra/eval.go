package algebra

// Eval computes the denotation E[H]: labels[p] reports whether the
// event occurs at history point p (0-based). This is a direct
// transcription of the paper's §4 semantics, kept deliberately naive:
// it re-derives everything from the history on each call and serves as
// the correctness oracle for the automaton compiler and as the
// "no automaton" baseline in the experiment harness.
//
// The cost is polynomial in len(h) but superlinear for nested suffix
// operators — which is exactly the overhead the paper's automaton
// compilation eliminates.
func Eval(e *Expr, h []int) []bool {
	labels := make([]bool, len(h))
	switch e.Op {
	case OpEmpty:
		// no points

	case OpAtom:
		for p, s := range h {
			labels[p] = s == e.Sym
		}

	case OpOr:
		a := Eval(e.Args[0], h)
		b := Eval(e.Args[1], h)
		for p := range labels {
			labels[p] = a[p] || b[p]
		}

	case OpAnd:
		a := Eval(e.Args[0], h)
		b := Eval(e.Args[1], h)
		for p := range labels {
			labels[p] = a[p] && b[p]
		}

	case OpNot:
		a := Eval(e.Args[0], h)
		for p := range labels {
			labels[p] = !a[p]
		}

	case OpRelative:
		// Delete an E-point and everything before it; F is evaluated in
		// each such truncated history and the results are unioned.
		a := Eval(e.Args[0], h)
		for q, ok := range a {
			if !ok {
				continue
			}
			sub := Eval(e.Args[1], h[q+1:])
			for p, ok2 := range sub {
				if ok2 {
					labels[q+1+p] = true
				}
			}
		}

	case OpPlus:
		// relative+(E): chains h1 < h2 < ... < hk with h1 an E-point of
		// H and each h(i+1) an E-point of the history truncated after
		// h(i). Dynamic program over chain ends.
		f := e.Args[0]
		base := Eval(f, h)
		for p, ok := range base {
			if ok {
				labels[p] = true
			}
		}
		for q := 0; q < len(h); q++ {
			if !labels[q] {
				continue
			}
			sub := Eval(f, h[q+1:])
			for p, ok := range sub {
				if ok {
					labels[q+1+p] = true
				}
			}
		}

	case OpPrior:
		// prior(E, F): an F-point strictly after the earliest E-point.
		a := Eval(e.Args[0], h)
		b := Eval(e.Args[1], h)
		first := -1
		for q, ok := range a {
			if ok {
				first = q
				break
			}
		}
		if first >= 0 {
			for p := first + 1; p < len(h); p++ {
				labels[p] = b[p]
			}
		}

	case OpSequence:
		// sequence(E, F): F occurs at the single point immediately
		// after an E-point — i.e. F must occur at a one-point history.
		a := Eval(e.Args[0], h)
		for q, ok := range a {
			if !ok || q+1 >= len(h) {
				continue
			}
			one := Eval(e.Args[1], h[q+1:q+2])
			if one[0] {
				labels[q+1] = true
			}
		}

	case OpChoose:
		a := Eval(e.Args[0], h)
		count := 0
		for p, ok := range a {
			if !ok {
				continue
			}
			count++
			if count == e.N {
				labels[p] = true
				break
			}
		}

	case OpEvery:
		a := Eval(e.Args[0], h)
		count := 0
		for p, ok := range a {
			if !ok {
				continue
			}
			count++
			if count%e.N == 0 {
				labels[p] = true
			}
		}

	case OpFa:
		// fa(E, F, G): for each E-point q, in the truncated history
		// after q find the first F-point; it fires unless some G-point
		// (also judged in the truncated history) strictly precedes it.
		eE, eF, eG := e.Args[0], e.Args[1], e.Args[2]
		a := Eval(eE, h)
		for q, ok := range a {
			if !ok {
				continue
			}
			suffix := h[q+1:]
			fl := Eval(eF, suffix)
			gl := Eval(eG, suffix)
			for p, fok := range fl {
				if gl[p] && !fok {
					break // G intervened strictly before the first F
				}
				if fok {
					labels[q+1+p] = true
					break // only the first F counts
				}
			}
		}

	case OpFaAbs:
		// faAbs(E, F, G): as fa, but G is judged against the whole
		// history; G-points strictly between q and the first F block.
		eE, eF, eG := e.Args[0], e.Args[1], e.Args[2]
		a := Eval(eE, h)
		gFull := Eval(eG, h)
		for q, ok := range a {
			if !ok {
				continue
			}
			suffix := h[q+1:]
			fl := Eval(eF, suffix)
			for p, fok := range fl {
				if gFull[q+1+p] && !fok {
					break
				}
				if fok {
					labels[q+1+p] = true
					break
				}
			}
		}

	default:
		panic("algebra: unknown op")
	}
	return labels
}

// FiringPoints returns, for each point p of h, whether the event has
// just occurred at p — i.e. Occurs(e, h[:p+1]) for every prefix, in a
// single Eval pass. The two coincide because the §4 semantics are
// causal: every operator labels point p from h[0..p] alone (suffix
// operators like relative and fa only ever truncate prefixes away),
// so evaluating the full history labels each point exactly as
// evaluating the prefix ending there would. TestPrefixStability pins
// the property; replay oracles (internal/sim, Engine.VerifyOracle)
// rely on it to check a whole recorded history in one pass instead of
// re-evaluating every prefix.
func FiringPoints(e *Expr, h []int) []bool { return Eval(e, h) }

// Occurs reports whether the event has just occurred at the end of the
// history — the rightmost history point is labeled (paper §4: "if the
// rightmost history symbol is labeled then the specified event has
// just occurred").
func Occurs(e *Expr, h []int) bool {
	if len(h) == 0 {
		return false
	}
	return Eval(e, h)[len(h)-1]
}

// NaiveDetector re-evaluates an expression from scratch as each event
// arrives — the baseline the paper's finite-automaton compilation is
// measured against. It has no state besides the accumulated history.
type NaiveDetector struct {
	expr *Expr
	hist []int
}

// NewNaiveDetector returns a detector for e with an empty history.
func NewNaiveDetector(e *Expr) *NaiveDetector {
	return &NaiveDetector{expr: e}
}

// Post appends a symbol to the history and reports whether the event
// occurs at this new point.
func (d *NaiveDetector) Post(sym int) bool {
	d.hist = append(d.hist, sym)
	return Occurs(d.expr, d.hist)
}

// HistoryLen returns the number of posted events.
func (d *NaiveDetector) HistoryLen() int { return len(d.hist) }

// Reset clears the accumulated history.
func (d *NaiveDetector) Reset() { d.hist = d.hist[:0] }
