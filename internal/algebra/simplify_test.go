package algebra

import (
	"math/rand"
	"testing"
)

// randomExprWithEmpty biases the generator towards Empty leaves so
// the identities actually trigger.
func randomExprWithEmpty(rng *rand.Rand, k, depth int) *Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(3) == 0 {
			return Empty()
		}
		return Atom(rng.Intn(k))
	}
	sub := func() *Expr { return randomExprWithEmpty(rng, k, depth-1) }
	switch rng.Intn(12) {
	case 0:
		return Or(sub(), sub())
	case 1:
		return And(sub(), sub())
	case 2:
		return Not(sub())
	case 3:
		return Relative(sub(), sub())
	case 4:
		return Plus(sub())
	case 5:
		return Prior(sub(), sub())
	case 6:
		return Sequence(sub(), sub())
	case 7:
		return Choose(sub(), 1+rng.Intn(3))
	case 8:
		return Every(sub(), 1+rng.Intn(3))
	case 9:
		return Fa(sub(), sub(), sub())
	case 10:
		return FaAbs(sub(), sub(), sub())
	default:
		return Not(Not(sub()))
	}
}

// TestSimplifyPreservesDenotation compares Eval of the original and
// simplified expressions on random histories — the denotational twin
// of the compiler-level equivalence check in internal/compile.
func TestSimplifyPreservesDenotation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const k = 3
	for iter := 0; iter < 500; iter++ {
		e := randomExprWithEmpty(rng, k, 3)
		s := Simplify(e)
		if s.Size() > e.Size() {
			t.Fatalf("Simplify grew %s (%d) to %s (%d)", e, e.Size(), s, s.Size())
		}
		n := 1 + rng.Intn(8)
		h := make([]int, n)
		for i := range h {
			h[i] = rng.Intn(k)
		}
		want := Eval(e, h)
		got := Eval(s, h)
		for p := range want {
			if want[p] != got[p] {
				t.Fatalf("simplification changed semantics of %s → %s at point %d of %v",
					e, s, p, h)
			}
		}
	}
}

func TestSimplifyIdentities(t *testing.T) {
	a, b := Atom(0), Atom(1)
	cases := []struct {
		in   *Expr
		want string
	}{
		{Or(a, Empty()), "e0"},
		{Or(Empty(), b), "e1"},
		{And(a, Empty()), "empty"},
		{And(a, a), "e0"},
		{Or(a, a), "e0"},
		{Not(Not(a)), "e0"},
		{Relative(Empty(), b), "empty"},
		{Relative(a, Empty()), "empty"},
		{Sequence(Empty(), b), "empty"},
		{Prior(a, Empty()), "empty"},
		{Plus(Empty()), "empty"},
		{Plus(Plus(a)), "relative+(e0)"},
		{Choose(Empty(), 3), "empty"},
		{Every(Empty(), 2), "empty"},
		{Fa(Empty(), a, b), "empty"},
		{Fa(a, Empty(), b), "empty"},
		{Fa(a, b, Empty()), "fa(e0, e1, empty)"},
		// Nested: inner simplification enables the outer rule.
		{Or(And(a, Empty()), b), "e1"},
		{Not(Not(Or(a, Empty()))), "e0"},
	}
	for _, tc := range cases {
		if got := Simplify(tc.in).String(); got != tc.want {
			t.Errorf("Simplify(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 200; i++ {
		e := randomExprWithEmpty(rng, 3, 3)
		s := Simplify(e)
		ss := Simplify(s)
		if !equal(s, ss) {
			t.Fatalf("Simplify not idempotent: %s → %s → %s", e, s, ss)
		}
	}
}

func TestSimplifyLeavesAtomsAlone(t *testing.T) {
	a := Atom(2)
	if Simplify(a) != a {
		t.Fatal("atom rewritten")
	}
	if Simplify(Empty()).Op != OpEmpty {
		t.Fatal("empty rewritten")
	}
}

func TestStructuralEqual(t *testing.T) {
	a := Relative(Atom(0), Choose(Atom(1), 2))
	b := Relative(Atom(0), Choose(Atom(1), 2))
	if !equal(a, b) {
		t.Fatal("structurally equal trees reported different")
	}
	if equal(a, Relative(Atom(0), Choose(Atom(1), 3))) {
		t.Fatal("different N reported equal")
	}
	if equal(a, Atom(0)) {
		t.Fatal("different shapes reported equal")
	}
}
