package algebra

import (
	"math/rand"
	"testing"
)

// points converts a label vector into the list of labeled positions,
// for readable assertions.
func points(labels []bool) []int {
	var out []int
	for p, ok := range labels {
		if ok {
			out = append(out, p)
		}
	}
	return out
}

func eqPoints(a []int, b ...int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAtomAndBoolean(t *testing.T) {
	h := []int{0, 1, 0, 2, 1}
	if got := points(Eval(Atom(1), h)); !eqPoints(got, 1, 4) {
		t.Fatalf("atom: %v", got)
	}
	if got := points(Eval(Or(Atom(0), Atom(2)), h)); !eqPoints(got, 0, 2, 3) {
		t.Fatalf("or: %v", got)
	}
	if got := points(Eval(And(Atom(1), Atom(1)), h)); !eqPoints(got, 1, 4) {
		t.Fatalf("and: %v", got)
	}
	if got := points(Eval(Not(Atom(1)), h)); !eqPoints(got, 0, 2, 3) {
		t.Fatalf("not: %v", got)
	}
	if got := points(Eval(Empty(), h)); len(got) != 0 {
		t.Fatalf("empty: %v", got)
	}
}

// TestRelativeVsPriorPaperExample reproduces the paper's §3.4 example:
// with E = relative(E1, E2) and F = relative(F1, F2) over the history
// F1 E1 E2 F2, prior(E, F) occurs at F2 but relative(E, F) does not.
func TestRelativeVsPriorPaperExample(t *testing.T) {
	const (
		e1 = 0
		e2 = 1
		f1 = 2
		f2 = 3
	)
	E := Relative(Atom(e1), Atom(e2))
	F := Relative(Atom(f1), Atom(f2))
	h := []int{f1, e1, e2, f2}

	if !Occurs(Prior(E, F), h) {
		t.Fatal("prior(E,F) should occur at F2 for history F1 E1 E2 F2")
	}
	if Occurs(Relative(E, F), h) {
		t.Fatal("relative(E,F) should NOT occur at F2 for history F1 E1 E2 F2")
	}
	// For the in-order history E1 E2 F1 F2 both occur.
	h2 := []int{e1, e2, f1, f2}
	if !Occurs(Prior(E, F), h2) || !Occurs(Relative(E, F), h2) {
		t.Fatal("both operators should accept the in-order history")
	}
}

func TestRelativeTruncation(t *testing.T) {
	// relative(a, b): a b-point strictly after an a-point.
	e := Relative(Atom(0), Atom(1))
	if got := points(Eval(e, []int{1, 0, 1, 1})); !eqPoints(got, 2, 3) {
		t.Fatalf("relative: %v", got)
	}
	// No a: never occurs.
	if got := points(Eval(e, []int{1, 1, 1})); len(got) != 0 {
		t.Fatalf("relative without a: %v", got)
	}
	// b before a only: never occurs.
	if got := points(Eval(e, []int{1, 0})); len(got) != 0 {
		t.Fatalf("relative b-then-a: %v", got)
	}
}

func TestRelativeNFifthDeposit(t *testing.T) {
	// Paper §3.4: relative 5 (after deposit) = the 5th and any
	// subsequent deposit. Alphabet: 0 = after deposit, 1 = other.
	e := RelativeN(Atom(0), 5)
	h := []int{0, 1, 0, 0, 1, 0, 0, 1, 0}
	// Deposits at positions 0,2,3,5,6,8; the 5th is position 6.
	if got := points(Eval(e, h)); !eqPoints(got, 6, 8) {
		t.Fatalf("relative 5: %v", got)
	}
}

func TestPlusChains(t *testing.T) {
	// relative+(sequence-free): for an atom, relative+(a) = a.
	a := Atom(0)
	h := []int{1, 0, 1, 0, 0}
	if got, want := points(Eval(Plus(a), h)), points(Eval(a, h)); !eqPoints(got, want...) {
		t.Fatalf("relative+(atom): %v want %v", got, want)
	}
	// relative+(relative(a,b)) occurs at b-points completing chains
	// a b [a b]...: with h = a b a b, occurrences at 1 and 3.
	ab := Relative(Atom(0), Atom(1))
	h2 := []int{0, 1, 0, 1}
	if got := points(Eval(Plus(ab), h2)); !eqPoints(got, 1, 3) {
		t.Fatalf("relative+(ab): %v", got)
	}
}

func TestSequenceImmediate(t *testing.T) {
	// sequence(a, b): b immediately after a.
	e := Sequence(Atom(0), Atom(1))
	if got := points(Eval(e, []int{0, 1, 2, 0, 1})); !eqPoints(got, 1, 4) {
		t.Fatalf("sequence: %v", got)
	}
	if got := points(Eval(e, []int{0, 2, 1})); len(got) != 0 {
		t.Fatalf("sequence with gap: %v", got)
	}
	// The paper's T8: after deposit; before withdraw; after withdraw.
	t8 := SequenceList(Atom(0), Atom(1), Atom(2))
	if got := points(Eval(t8, []int{0, 1, 2})); !eqPoints(got, 2) {
		t.Fatalf("T8 in order: %v", got)
	}
	if got := points(Eval(t8, []int{0, 3, 1, 2})); len(got) != 0 {
		t.Fatalf("T8 with interloper: %v", got)
	}
	// A composite second operand that needs >=2 points can never occur
	// "at the next logical event": the sequence is unsatisfiable.
	unsat := Sequence(Atom(0), Relative(Atom(1), Atom(2)))
	if got := points(Eval(unsat, []int{0, 1, 2, 1, 2})); len(got) != 0 {
		t.Fatalf("unsatisfiable sequence occurred: %v", got)
	}
}

func TestChooseAndEvery(t *testing.T) {
	h := []int{0, 1, 0, 0, 1, 0, 0}
	// a-points: 0, 2, 3, 5, 6.
	if got := points(Eval(Choose(Atom(0), 3), h)); !eqPoints(got, 3) {
		t.Fatalf("choose 3: %v", got)
	}
	if got := points(Eval(Choose(Atom(0), 9), h)); len(got) != 0 {
		t.Fatalf("choose 9 of 5: %v", got)
	}
	if got := points(Eval(Every(Atom(0), 2), h)); !eqPoints(got, 2, 5) {
		t.Fatalf("every 2: %v", got)
	}
	if got := points(Eval(Every(Atom(0), 1), h)); !eqPoints(got, 0, 2, 3, 5, 6) {
		t.Fatalf("every 1: %v", got)
	}
}

func TestPriorFirstOccurrence(t *testing.T) {
	// prior(a, b): b-points after the first a.
	e := Prior(Atom(0), Atom(1))
	if got := points(Eval(e, []int{1, 0, 1, 1})); !eqPoints(got, 2, 3) {
		t.Fatalf("prior: %v", got)
	}
	// prior N (a) = nth and subsequent a's.
	e5 := PriorN(Atom(0), 3)
	if got := points(Eval(e5, []int{0, 0, 0, 1, 0})); !eqPoints(got, 2, 4) {
		t.Fatalf("prior 3: %v", got)
	}
}

func TestFa(t *testing.T) {
	const (
		tbegin  = 0
		update  = 1
		tcommit = 2
		tabort  = 3
		other   = 4
	)
	// The paper's example: fa(after tbegin,
	//   prior(after update, after tcommit),
	//   after tcommit | after tabort)
	// = the commit of a transaction that updated the object.
	e := Fa(
		Atom(tbegin),
		Prior(Atom(update), Atom(tcommit)),
		Or(Atom(tcommit), Atom(tabort)),
	)
	// Updating transaction commits: fires at the commit.
	if got := points(Eval(e, []int{tbegin, update, other, tcommit})); !eqPoints(got, 3) {
		t.Fatalf("fa commit-after-update: %v", got)
	}
	// Transaction aborts: the abort is an intervening G, no fire.
	if got := points(Eval(e, []int{tbegin, update, tabort, tcommit})); len(got) != 0 {
		t.Fatalf("fa after abort: %v", got)
	}
	// Transaction commits without updating: F never occurs before G
	// kills the window.
	if got := points(Eval(e, []int{tbegin, other, tcommit})); len(got) != 0 {
		t.Fatalf("fa commit-without-update: %v", got)
	}
}

func TestFaFirstOnly(t *testing.T) {
	// fa(a, b, empty): only the FIRST b after each a fires; but
	// distinct a's open distinct windows.
	e := Fa(Atom(0), Atom(1), Empty())
	if got := points(Eval(e, []int{0, 1, 1})); !eqPoints(got, 1) {
		t.Fatalf("fa first-only: %v", got)
	}
	// A second a reopens: a b a b → fires at 1 and 3.
	if got := points(Eval(e, []int{0, 1, 0, 1})); !eqPoints(got, 1, 3) {
		t.Fatalf("fa reopen: %v", got)
	}
}

func TestFaVsFaAbs(t *testing.T) {
	// G = relative(g1, g2). With history g1 E g2 F:
	//  - fa(E, F, G): in the truncated history (g2 F), G never occurs,
	//    so F fires.
	//  - faAbs(E, F, G): G occurs at g2 in the whole history, strictly
	//    between E and F, so F is blocked.
	const (
		eSym = 0
		fSym = 1
		g1   = 2
		g2   = 3
	)
	G := Relative(Atom(g1), Atom(g2))
	h := []int{g1, eSym, g2, fSym}
	fa := Fa(Atom(eSym), Atom(fSym), G)
	faAbs := FaAbs(Atom(eSym), Atom(fSym), G)
	if !Occurs(fa, h) {
		t.Fatal("fa should fire: G does not occur relative to E")
	}
	if Occurs(faAbs, h) {
		t.Fatal("faAbs should be blocked: G occurs in the whole history between E and F")
	}
}

// TestFootnote4 reproduces the paper's footnote 4: with
// E = F & !prior(F, F), over the history F F, E occurs at the first F
// but not the second, while relative(E, E) occurs at the second but
// not the first.
func TestFootnote4(t *testing.T) {
	F := Atom(0)
	E := And(F, Not(Prior(F, F)))
	h := []int{0, 0}
	if got := points(Eval(E, h)); !eqPoints(got, 0) {
		t.Fatalf("E: %v, want [0]", got)
	}
	if got := points(Eval(Relative(E, E), h)); !eqPoints(got, 1) {
		t.Fatalf("relative(E,E): %v, want [1]", got)
	}
}

func TestOccursEmptyHistory(t *testing.T) {
	if Occurs(Atom(0), nil) {
		t.Fatal("event occurred on empty history")
	}
	if Occurs(Not(Atom(0)), nil) {
		t.Fatal("negated event occurred on empty history")
	}
}

func TestNaiveDetector(t *testing.T) {
	d := NewNaiveDetector(Relative(Atom(0), Atom(1)))
	fires := []bool{
		d.Post(1), // no a yet
		d.Post(0),
		d.Post(1), // fires
		d.Post(1), // fires
	}
	want := []bool{false, false, true, true}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("post %d: got %v want %v", i, fires[i], want[i])
		}
	}
	if d.HistoryLen() != 4 {
		t.Fatalf("history len %d", d.HistoryLen())
	}
	d.Reset()
	if d.HistoryLen() != 0 || d.Post(1) {
		t.Fatal("reset did not clear history")
	}
}

// randomExpr builds a random expression over k symbols for property
// tests; depth bounds recursion.
func randomExpr(rng *rand.Rand, k, depth int) *Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(8) == 0 {
			return Empty()
		}
		return Atom(rng.Intn(k))
	}
	sub := func() *Expr { return randomExpr(rng, k, depth-1) }
	switch rng.Intn(12) {
	case 0:
		return Or(sub(), sub())
	case 1:
		return And(sub(), sub())
	case 2:
		return Not(sub())
	case 3:
		return Relative(sub(), sub())
	case 4:
		return Plus(sub())
	case 5:
		return Prior(sub(), sub())
	case 6:
		return Sequence(sub(), sub())
	case 7:
		return Choose(sub(), 1+rng.Intn(3))
	case 8:
		return Every(sub(), 1+rng.Intn(3))
	case 9:
		return Fa(sub(), sub(), sub())
	case 10:
		return FaAbs(sub(), sub(), sub())
	default:
		return RelativeN(sub(), 1+rng.Intn(3))
	}
}

// TestPrefixStability checks the property that makes single-pass
// automaton detection sound: whether point p is labeled depends only
// on the history prefix up to p.
func TestPrefixStability(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const k = 3
	for iter := 0; iter < 300; iter++ {
		e := randomExpr(rng, k, 3)
		n := 1 + rng.Intn(8)
		h := make([]int, n)
		for i := range h {
			h[i] = rng.Intn(k)
		}
		full := Eval(e, h)
		for p := 0; p < n; p++ {
			pre := Eval(e, h[:p+1])
			if pre[p] != full[p] {
				t.Fatalf("iter %d: %s not prefix-stable at %d on %v: prefix=%v full=%v",
					iter, e, p, h, pre[p], full[p])
			}
		}
	}
}

// TestFiringPoints pins the replay-oracle contract: FiringPoints(e, h)
// equals Occurs(e, h[:p+1]) at every point p (a single pass over the
// history stands in for evaluating every prefix).
func TestFiringPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k = 3
	for iter := 0; iter < 200; iter++ {
		e := randomExpr(rng, k, 3)
		n := rng.Intn(9)
		h := make([]int, n)
		for i := range h {
			h[i] = rng.Intn(k)
		}
		got := FiringPoints(e, h)
		if len(got) != n {
			t.Fatalf("iter %d: FiringPoints length %d, want %d", iter, len(got), n)
		}
		for p := 0; p < n; p++ {
			if want := Occurs(e, h[:p+1]); got[p] != want {
				t.Fatalf("iter %d: %s at point %d of %v: FiringPoints=%v Occurs=%v",
					iter, e, p, h, got[p], want)
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := Fa(Atom(0), Prior(Atom(1), Atom(2)), Or(Atom(2), Not(Atom(3))))
	got := e.String()
	want := "fa(e0, prior(e1, e2), (e2 | !e3))"
	if got != want {
		t.Fatalf("String: %q want %q", got, want)
	}
	if e.Size() != 9 {
		t.Fatalf("Size: %d want 9", e.Size())
	}
	if e.MaxSymbol() != 3 {
		t.Fatalf("MaxSymbol: %d want 3", e.MaxSymbol())
	}
	if Empty().MaxSymbol() != -1 {
		t.Fatal("MaxSymbol of empty should be -1")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative atom": func() { Atom(-1) },
		"choose 0":      func() { Choose(Atom(0), 0) },
		"every 0":       func() { Every(Atom(0), 0) },
		"relativeN 0":   func() { RelativeN(Atom(0), 0) },
		"empty orlist":  func() { OrList() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
