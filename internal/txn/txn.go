package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ode/internal/fault"
	"ode/internal/store"
	"ode/internal/value"
)

// Transaction states.
type State int

const (
	// Active: the transaction is running.
	Active State = iota
	// Committed: effects are durable and visible.
	Committed
	// Aborted: all effects have been undone.
	Aborted
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	default:
		return "aborted"
	}
}

// Errors reported by transaction operations.
var (
	// ErrNotActive is returned by operations on a finished transaction.
	ErrNotActive = errors.New("txn: transaction is not active")
	// ErrDependencyAborted is returned by Commit when a transaction
	// this one is commit-dependent on has aborted; the transaction is
	// aborted as required by the dependency semantics.
	ErrDependencyAborted = errors.New("txn: commit dependency aborted")
)

// Manager creates and coordinates transactions over one store.
type Manager struct {
	store  *store.Store
	locks  *lockManager
	single bool // single-writer mode: bypass the lock manager entirely
	nextID atomic.Uint64

	mu   sync.Mutex
	cond *sync.Cond // broadcast on any commit/abort, for dependency waits
}

// NewManager returns a transaction manager over s.
func NewManager(s *store.Store) *Manager { return NewManagerWith(s, nil) }

// NewManagerWith is NewManager with a fault-injection registry the
// lock manager consults at lock-acquire time (internal/fault). A nil
// registry — the production default — costs one branch per acquire.
func NewManagerWith(s *store.Store, faults *fault.Registry) *Manager {
	m := &Manager{store: s, locks: newLockManager(faults)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Store returns the underlying object store.
func (m *Manager) Store() *store.Store { return m.store }

// SetSingleWriter switches the manager into single-writer mode: every
// lock acquisition becomes a no-op (Holds reports true, releaseAll
// does nothing), because exactly one goroutine — a partition's event
// loop — drives all transactions over this store, so mutual exclusion
// is structural rather than negotiated. Deadlocks cannot occur (there
// is never a second writer to wait for) and the LockAcquire fault
// point is not consulted (partitioned simulation injects WAL faults
// instead). Must be called before the manager is shared; it is not
// safe to toggle while transactions are in flight.
func (m *Manager) SetSingleWriter(on bool) { m.single = on }

// lock acquires oid for txID, or is a no-op in single-writer mode.
func (m *Manager) lock(txID uint64, oid store.OID) error {
	if m.single {
		return nil
	}
	return m.locks.lock(txID, oid)
}

func (m *Manager) releaseAll(txID uint64) {
	if m.single {
		return
	}
	m.locks.releaseAll(txID)
}

func (m *Manager) holds(txID uint64, oid store.OID) bool {
	if m.single {
		return true
	}
	return m.locks.holds(txID, oid)
}

// Begin starts a transaction. A Tx must be used from a single
// goroutine.
type Tx struct {
	id  uint64
	mgr *Manager

	mu       sync.Mutex // guards state for cross-goroutine State() reads
	state    State
	undo     []undoEntry
	accessed []store.OID        // first-access order
	seen     map[store.OID]bool // objects with a before-image
	created  map[store.OID]bool // objects created by this transaction
	deleted  map[store.OID]bool // objects deleted by this transaction
	deps     []*Tx              // commit dependencies (footnote 6)
	system   bool               // system transactions post tcommit/tabort events

	// Narrow-access state (AccessNarrow): narrowSeen holds the objects
	// whose before-image is currently narrow — captured activation
	// scalars in the actImgs arena instead of a deep record clone.
	// Promote moves an object out of narrowSeen by taking a full image
	// into promoUndo; rollback restores promoUndo images first, then
	// replays undo, so a promoted object ends at its full image with
	// the narrow scalars overlaid on top.
	narrowSeen map[store.OID]bool
	actImgs    []store.ActImage
	promoUndo  []undoEntry

	// firings are the trigger firings captured by the engine during
	// this transaction (AddFiring); Commit hands them to LogCommit so
	// they ride the transaction's own WAL batch. Rollback discards
	// them with everything else.
	firings []store.FiringRecord
}

type undoEntry struct {
	created bool
	narrow  bool
	oid     store.OID
	img     *store.Record // nil when created or narrow
	actOff  int           // narrow: range into Tx.actImgs
	actLen  int
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Tx {
	return &Tx{
		id:      m.nextID.Add(1),
		mgr:     m,
		state:   Active,
		seen:    map[store.OID]bool{},
		created: map[store.OID]bool{},
		deleted: map[store.OID]bool{},
	}
}

// BeginSystem starts a "system" transaction — the special transaction
// the paper uses to post "after tcommit" and "after tabort" events and
// run the actions they trigger (§5).
func (m *Manager) BeginSystem() *Tx {
	tx := m.Begin()
	tx.system = true
	return tx
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.id }

// System reports whether this is a system transaction.
func (tx *Tx) System() bool { return tx.system }

// State returns the transaction state.
func (tx *Tx) State() State {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.state
}

func (tx *Tx) setState(s State) {
	tx.mu.Lock()
	tx.state = s
	tx.mu.Unlock()
}

// Access locks oid for this transaction, takes a before-image on first
// access, and returns the live record. first reports whether this is
// the transaction's first access to the object — the engine posts the
// "after tbegin" event to the object exactly then (paper §3.1:
// "posted to an object only immediately before the object is first
// accessed by the transaction").
//
// The before-image is taken on first access rather than first write
// because even reads advance committed-view trigger state stored in
// the record.
func (tx *Tx) Access(oid store.OID) (rec *store.Record, first bool, err error) {
	if tx.State() != Active {
		return nil, false, ErrNotActive
	}
	if err := tx.mgr.lock(tx.id, oid); err != nil {
		return nil, false, err
	}
	rec, err = tx.mgr.store.Get(oid)
	if err != nil {
		return nil, false, err
	}
	first = !tx.seen[oid]
	if first {
		tx.seen[oid] = true
		tx.accessed = append(tx.accessed, oid)
		if !tx.created[oid] {
			img, err := tx.mgr.store.Snapshot(oid)
			if err != nil {
				return nil, false, err
			}
			tx.undo = append(tx.undo, undoEntry{oid: oid, img: img})
		}
	} else if tx.narrowSeen[oid] {
		// The object's image is narrow but the caller is taking the
		// general access path, which licenses arbitrary mutation:
		// promote to a full image first.
		if err := tx.Promote(oid); err != nil {
			return nil, false, err
		}
	}
	return rec, first, nil
}

// AccessNarrow is Access for callers that promise to mutate nothing
// but trigger-activation scalars (Active, State, Shadow appends) until
// the object is Promoted — the cohort timer delivery contract. The
// first-access before-image is a narrow capture of those scalars into
// the transaction's arena rather than a deep record clone; a later
// Access or Delete of the same object promotes it automatically, and
// the engine promotes before running trigger actions. Commit publishes
// narrow objects to the epoch view by structure sharing
// (PublishCommittedNarrow).
func (tx *Tx) AccessNarrow(oid store.OID) (rec *store.Record, first bool, err error) {
	if tx.State() != Active {
		return nil, false, ErrNotActive
	}
	if err := tx.mgr.lock(tx.id, oid); err != nil {
		return nil, false, err
	}
	rec, err = tx.mgr.store.Get(oid)
	if err != nil {
		return nil, false, err
	}
	first = !tx.seen[oid]
	if first {
		tx.seen[oid] = true
		tx.accessed = append(tx.accessed, oid)
		if !tx.created[oid] {
			if tx.narrowSeen == nil {
				tx.narrowSeen = map[store.OID]bool{}
			}
			tx.narrowSeen[oid] = true
			off := len(tx.actImgs)
			tx.actImgs = rec.CaptureActs(tx.actImgs)
			tx.undo = append(tx.undo, undoEntry{
				narrow: true, oid: oid, actOff: off, actLen: len(tx.actImgs) - off,
			})
		}
	}
	return rec, first, nil
}

// Promote upgrades a narrow-imaged object to a full before-image taken
// now. Sound because the narrow contract holds up to this call: the
// record differs from its pre-transaction state only in activation
// scalars, so rollback — this full image restored first, the narrow
// scalar overlay applied on top — reproduces the pre-transaction state
// exactly. A no-op for objects without a narrow image.
func (tx *Tx) Promote(oid store.OID) error {
	if tx.State() != Active {
		return ErrNotActive
	}
	if !tx.narrowSeen[oid] {
		return nil
	}
	img, err := tx.mgr.store.Snapshot(oid)
	if err != nil {
		return err
	}
	delete(tx.narrowSeen, oid)
	tx.promoUndo = append(tx.promoUndo, undoEntry{oid: oid, img: img})
	return nil
}

// Create allocates a new object owned by this transaction. The object
// is locked by the transaction and removed again if it aborts.
func (tx *Tx) Create(class string, fields map[string]value.Value) (*store.Record, error) {
	if tx.State() != Active {
		return nil, ErrNotActive
	}
	rec := tx.mgr.store.Create(class, fields)
	if err := tx.mgr.lock(tx.id, rec.OID); err != nil {
		// Freshly created: the lock cannot contend, but stay defensive.
		tx.mgr.store.Remove(rec.OID)
		return nil, err
	}
	tx.created[rec.OID] = true
	tx.seen[rec.OID] = true
	tx.accessed = append(tx.accessed, rec.OID)
	tx.undo = append(tx.undo, undoEntry{created: true, oid: rec.OID})
	return rec, nil
}

// Delete removes oid within the transaction; an abort resurrects it.
func (tx *Tx) Delete(oid store.OID) error {
	if tx.State() != Active {
		return ErrNotActive
	}
	if _, _, err := tx.Access(oid); err != nil {
		return err
	}
	// Access promoted any narrow image, so rollback can resurrect the
	// object from a full record clone.
	if err := tx.mgr.store.Delete(oid); err != nil {
		return err
	}
	tx.deleted[oid] = true
	return nil
}

// DependOn makes this transaction commit-dependent on other: Commit
// waits until other finishes, succeeds only if other committed, and
// aborts this transaction if other aborted.
func (tx *Tx) DependOn(other *Tx) {
	if other == nil || other == tx {
		return
	}
	tx.deps = append(tx.deps, other)
}

// Accessed returns the objects the transaction has touched, in first-
// access order — "the set of objects accessed by the transaction" that
// transaction events are posted to (paper §3.1).
func (tx *Tx) Accessed() []store.OID {
	out := make([]store.OID, len(tx.accessed))
	copy(out, tx.accessed)
	return out
}

// Created reports whether the transaction created oid.
func (tx *Tx) Created(oid store.OID) bool { return tx.created[oid] }

// AddFiring records one trigger firing for the durable egress feed.
// The record's Seq and TxID are stamped by the store at commit time;
// if the transaction aborts the record is dropped, so the feed only
// ever carries firings of committed transactions.
func (tx *Tx) AddFiring(fr store.FiringRecord) {
	tx.firings = append(tx.firings, fr)
}

// Firings returns the firings captured so far (engine introspection).
func (tx *Tx) Firings() []store.FiringRecord { return tx.firings }

// Commit makes the transaction's effects durable and releases its
// locks. If a commit dependency aborted, the transaction aborts
// instead and ErrDependencyAborted is returned.
func (tx *Tx) Commit() error {
	if tx.State() != Active {
		return ErrNotActive
	}
	if err := tx.waitForDeps(); err != nil {
		tx.rollback()
		return err
	}
	var dirty, deleted []store.OID
	for _, oid := range tx.accessed {
		if tx.deleted[oid] {
			deleted = append(deleted, oid)
		} else {
			dirty = append(dirty, oid)
		}
	}
	if err := tx.mgr.store.LogCommit(tx.id, dirty, deleted, tx.firings); err != nil {
		tx.rollback()
		return fmt.Errorf("txn: commit logging failed: %w", err)
	}
	// Publish the committed versions to the store's lock-free epoch
	// view while this transaction still holds its object locks — the
	// records cannot change under the clone, and a reader that sees the
	// new epoch sees exactly the state the WAL just made durable.
	// Objects still narrow at commit changed only activation scalars
	// and publish by structure sharing instead of a deep clone.
	if len(tx.narrowSeen) == 0 {
		tx.mgr.store.PublishCommitted(dirty, deleted)
	} else {
		var fullD, narrowD []store.OID
		for _, oid := range dirty {
			if tx.narrowSeen[oid] {
				narrowD = append(narrowD, oid)
			} else {
				fullD = append(fullD, oid)
			}
		}
		tx.mgr.store.PublishCommitted(fullD, deleted)
		tx.mgr.store.PublishCommittedNarrow(narrowD)
	}
	tx.setState(Committed)
	tx.mgr.releaseAll(tx.id)
	tx.mgr.broadcast()
	return nil
}

// Abort undoes every effect of the transaction and releases its locks.
// Aborting a finished transaction is an error.
func (tx *Tx) Abort() error {
	if tx.State() != Active {
		return ErrNotActive
	}
	tx.rollback()
	return nil
}

func (tx *Tx) rollback() {
	// Promotion images first: a promoted object's full image captures
	// its mid-transaction state (pre-action fields, post-step scalars);
	// the narrow overlay replayed below then rewinds the scalars to
	// their pre-transaction values.
	for i := len(tx.promoUndo) - 1; i >= 0; i-- {
		tx.mgr.store.Restore(tx.promoUndo[i].img)
	}
	// Restore before-images in reverse order of first access.
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		switch {
		case u.created:
			tx.mgr.store.Remove(u.oid)
		case u.narrow:
			if r, err := tx.mgr.store.Get(u.oid); err == nil {
				r.RestoreActs(tx.actImgs[u.actOff : u.actOff+u.actLen])
			}
		default:
			tx.mgr.store.Restore(u.img)
		}
	}
	tx.setState(Aborted)
	tx.mgr.releaseAll(tx.id)
	tx.mgr.broadcast()
}

func (tx *Tx) waitForDeps() error {
	for _, dep := range tx.deps {
		tx.mgr.mu.Lock()
		for dep.State() == Active {
			tx.mgr.cond.Wait()
		}
		tx.mgr.mu.Unlock()
		if dep.State() == Aborted {
			return ErrDependencyAborted
		}
	}
	return nil
}

func (m *Manager) broadcast() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Holds reports whether the transaction currently holds oid's lock.
func (tx *Tx) Holds(oid store.OID) bool { return tx.mgr.holds(tx.id, oid) }

// Peek locks oid and returns its live record without counting the
// access: no before-image, no entry in Accessed(), so no transaction
// events are posted to the object on its behalf. Mask evaluation uses
// it to read "the state of any object in the database" (paper §3.2)
// with isolation but without perturbing event histories. The caller
// must not mutate the record.
func (tx *Tx) Peek(oid store.OID) (*store.Record, error) {
	if tx.State() != Active {
		return nil, ErrNotActive
	}
	if err := tx.mgr.lock(tx.id, oid); err != nil {
		return nil, err
	}
	return tx.mgr.store.Get(oid)
}
