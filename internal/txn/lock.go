// Package txn implements the transaction substrate the paper assumes:
// atomic transactions over objects with object-level locking (§6),
// undo on abort, and commit dependencies (§7 footnote 6: "if
// transaction t2 is commit dependent on t1, then t2 is not allowed to
// commit until t1 has; if t1 eventually aborts, so must t2").
//
// Locking is exclusive and object-granular. Exclusive (rather than
// shared/exclusive) locks are a deliberate choice: posting any event
// to an object — including a read — advances the stored automaton
// state of the object's committed-view triggers, so even "read-only"
// accesses write the record. Deadlocks are detected by following the
// waits-for chain at block time; the requester that would close a
// cycle receives ErrDeadlock and is expected to abort.
//
// # Concurrency scheme
//
// The lock table is sharded by OID across numLockShards shards, each
// with its own mutex, so transactions touching different objects never
// contend on lock-manager state. Blocked requests sleep on a
// per-object FIFO of wake channels; a release wakes exactly one waiter
// of that object (no global broadcast, no thundering herd). A woken
// waiter re-checks under the shard mutex — a barging third transaction
// may have taken the lock in between, in which case the waiter
// re-queues.
//
// Deadlock detection uses a small dedicated waits-for structure
// (waitGraph) with its own mutex. It records tx→OID waiting edges and,
// only for contended objects, a mirror of the object's current holder.
// Both are updated while holding the owning shard's mutex, and the
// lock order is always shard mutex → graph mutex (the graph mutex is a
// leaf), so the cycle walk sees a consistent graph without touching
// any shard. Uncontended acquisitions and releases never touch the
// graph at all. Publishing the waiting edge and checking for a cycle
// happen atomically under the graph mutex, so of two transactions
// closing a cycle, the later one always sees the earlier one's edge —
// a real deadlock is always detected, and a stale edge can only cause
// a conservative (spurious) victim, never a missed cycle.
//
// Each transaction's held locks are tracked in a per-tx set (sharded
// by transaction id), making releaseAll O(locks held) instead of
// O(all locks in the system).
package txn

import (
	"errors"
	"fmt"
	"sync"

	"ode/internal/fault"
	"ode/internal/store"
)

// ErrDeadlock is returned by a lock request that would create a
// waits-for cycle. The requesting transaction must abort.
var ErrDeadlock = errors.New("txn: deadlock detected")

// numLockShards is the number of lock-table shards (power of two).
const numLockShards = 64

// lockShard holds the lock table for one slice of the OID space.
type lockShard struct {
	mu     sync.Mutex
	holder map[store.OID]uint64          // object → holding transaction
	waitq  map[store.OID][]chan struct{} // FIFO of blocked requesters
	// mirrored marks objects whose holder is mirrored into the wait
	// graph because they have (or recently had) waiters.
	mirrored map[store.OID]bool
}

// txShard tracks the held-lock sets for one slice of the tx-id space.
type txShard struct {
	mu   sync.Mutex
	held map[uint64]map[store.OID]struct{}
}

// waitGraph is the dedicated cross-shard waits-for structure. waiting
// has one edge per blocked transaction; holderOf mirrors the holder of
// contended objects only. Guarded by its own mutex, which is only ever
// acquired while holding at most one shard mutex (shard → graph
// order).
type waitGraph struct {
	mu       sync.Mutex
	waiting  map[uint64]store.OID
	holderOf map[store.OID]uint64
}

// wouldCycle reports whether firstHolder (transitively) waits for
// txID. Called with g.mu held. Each transaction waits on at most one
// object, so the graph is a set of chains; walk ours.
func (g *waitGraph) wouldCycle(txID, firstHolder uint64) bool {
	cur := firstHolder
	for steps := 0; steps <= len(g.waiting)+1; steps++ {
		if cur == txID {
			return true
		}
		oid, waits := g.waiting[cur]
		if !waits {
			return false
		}
		next, held := g.holderOf[oid]
		if !held {
			return false
		}
		cur = next
	}
	return true // defensive: treat an over-long walk as a cycle
}

// lockManager grants exclusive, reentrant object locks.
type lockManager struct {
	shards [numLockShards]lockShard
	txs    [numLockShards]txShard
	graph  waitGraph
	faults *fault.Registry // nil outside the simulation harness
}

func newLockManager(faults *fault.Registry) *lockManager {
	lm := &lockManager{faults: faults}
	for i := range lm.shards {
		lm.shards[i].holder = make(map[store.OID]uint64)
		lm.shards[i].waitq = make(map[store.OID][]chan struct{})
		lm.shards[i].mirrored = make(map[store.OID]bool)
	}
	for i := range lm.txs {
		lm.txs[i].held = make(map[uint64]map[store.OID]struct{})
	}
	lm.graph.waiting = make(map[uint64]store.OID)
	lm.graph.holderOf = make(map[store.OID]uint64)
	return lm
}

func (lm *lockManager) shardOf(oid store.OID) *lockShard {
	return &lm.shards[uint64(oid)%numLockShards]
}

func (lm *lockManager) txShardOf(txID uint64) *txShard {
	return &lm.txs[txID%numLockShards]
}

// lock blocks until txID holds oid exclusively. Reentrant acquisition
// returns immediately. A request that would close a waits-for cycle
// fails with ErrDeadlock instead of blocking.
func (lm *lockManager) lock(txID uint64, oid store.OID) error {
	if lm.faults != nil {
		// Simulated lock-acquire timeout: surfaces to the requester
		// exactly like a deadlock victim — it must abort.
		if err := lm.faults.Check(fault.LockAcquire); err != nil {
			return fmt.Errorf("txn: lock %d: %w", uint64(oid), err)
		}
	}
	sh := lm.shardOf(oid)
	sh.mu.Lock()
	for {
		h, held := sh.holder[oid]
		if !held {
			sh.holder[oid] = txID
			if sh.mirrored[oid] {
				lm.graph.mu.Lock()
				if len(sh.waitq[oid]) > 0 {
					lm.graph.holderOf[oid] = txID
				} else {
					delete(lm.graph.holderOf, oid)
					delete(sh.mirrored, oid)
				}
				lm.graph.mu.Unlock()
			}
			sh.mu.Unlock()
			lm.noteHeld(txID, oid)
			return nil
		}
		if h == txID {
			sh.mu.Unlock()
			return nil // reentrant
		}
		// Contended: publish our waiting edge (and the holder mirror)
		// and check for a cycle in one graph critical section.
		lm.graph.mu.Lock()
		if lm.graph.wouldCycle(txID, h) {
			lm.graph.mu.Unlock()
			sh.mu.Unlock()
			return ErrDeadlock
		}
		lm.graph.waiting[txID] = oid
		lm.graph.holderOf[oid] = h
		lm.graph.mu.Unlock()
		sh.mirrored[oid] = true
		ch := make(chan struct{})
		sh.waitq[oid] = append(sh.waitq[oid], ch)
		sh.mu.Unlock()
		<-ch
		sh.mu.Lock()
		lm.graph.mu.Lock()
		delete(lm.graph.waiting, txID)
		lm.graph.mu.Unlock()
	}
}

// noteHeld records a freshly granted lock in txID's held set. Called
// without any shard mutex held; safe because a transaction acquires
// and releases its locks from a single goroutine.
func (lm *lockManager) noteHeld(txID uint64, oid store.OID) {
	ts := lm.txShardOf(txID)
	ts.mu.Lock()
	set, ok := ts.held[txID]
	if !ok {
		set = make(map[store.OID]struct{}, 4)
		ts.held[txID] = set
	}
	set[oid] = struct{}{}
	ts.mu.Unlock()
}

// releaseAll drops every lock txID holds and wakes one waiter per
// freed object. O(locks held by txID).
func (lm *lockManager) releaseAll(txID uint64) {
	ts := lm.txShardOf(txID)
	ts.mu.Lock()
	held := ts.held[txID]
	delete(ts.held, txID)
	ts.mu.Unlock()

	// Defensive: a victim that saw ErrDeadlock has already removed its
	// waiting edge, but clear any leftover.
	lm.graph.mu.Lock()
	delete(lm.graph.waiting, txID)
	lm.graph.mu.Unlock()

	for oid := range held {
		sh := lm.shardOf(oid)
		sh.mu.Lock()
		if sh.holder[oid] != txID {
			sh.mu.Unlock()
			continue
		}
		delete(sh.holder, oid)
		if sh.mirrored[oid] {
			lm.graph.mu.Lock()
			delete(lm.graph.holderOf, oid)
			lm.graph.mu.Unlock()
		}
		if q := sh.waitq[oid]; len(q) > 0 {
			ch := q[0]
			if len(q) == 1 {
				delete(sh.waitq, oid)
			} else {
				sh.waitq[oid] = q[1:]
			}
			close(ch)
		} else if sh.mirrored[oid] {
			delete(sh.mirrored, oid)
		}
		sh.mu.Unlock()
	}
}

// holds reports whether txID currently holds oid (for tests and
// assertions).
func (lm *lockManager) holds(txID uint64, oid store.OID) bool {
	sh := lm.shardOf(oid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.holder[oid] == txID
}

// counts reports the total number of held locks and queued waiters
// across all shards — the quiescence check used by stress tests.
func (lm *lockManager) counts() (held, waiting int) {
	for i := range lm.shards {
		sh := &lm.shards[i]
		sh.mu.Lock()
		held += len(sh.holder)
		for _, q := range sh.waitq {
			waiting += len(q)
		}
		sh.mu.Unlock()
	}
	return held, waiting
}

// graphSizes reports the waits-for graph population (edges, mirrored
// holders) — zero at quiescence.
func (lm *lockManager) graphSizes() (edges, mirrors int) {
	lm.graph.mu.Lock()
	defer lm.graph.mu.Unlock()
	return len(lm.graph.waiting), len(lm.graph.holderOf)
}

// heldSets reports the number of transactions with a non-empty held
// set — zero at quiescence.
func (lm *lockManager) heldSets() int {
	n := 0
	for i := range lm.txs {
		ts := &lm.txs[i]
		ts.mu.Lock()
		n += len(ts.held)
		ts.mu.Unlock()
	}
	return n
}

func (lm *lockManager) String() string {
	held, waiting := lm.counts()
	return fmt.Sprintf("lockManager{held=%d, waiting=%d}", held, waiting)
}
