// Package txn implements the transaction substrate the paper assumes:
// atomic transactions over objects with object-level locking (§6),
// undo on abort, and commit dependencies (§7 footnote 6: "if
// transaction t2 is commit dependent on t1, then t2 is not allowed to
// commit until t1 has; if t1 eventually aborts, so must t2").
//
// Locking is exclusive and object-granular. Exclusive (rather than
// shared/exclusive) locks are a deliberate choice: posting any event
// to an object — including a read — advances the stored automaton
// state of the object's committed-view triggers, so even "read-only"
// accesses write the record. Deadlocks are detected by following the
// waits-for chain at block time; the requester that would close a
// cycle receives ErrDeadlock and is expected to abort.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"ode/internal/store"
)

// ErrDeadlock is returned by a lock request that would create a
// waits-for cycle. The requesting transaction must abort.
var ErrDeadlock = errors.New("txn: deadlock detected")

// lockManager grants exclusive, reentrant object locks.
type lockManager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	holder  map[store.OID]uint64 // object → holding transaction
	waiting map[uint64]store.OID // transaction → object it is blocked on
}

func newLockManager() *lockManager {
	lm := &lockManager{
		holder:  make(map[store.OID]uint64),
		waiting: make(map[uint64]store.OID),
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// lock blocks until txID holds oid exclusively. Reentrant acquisition
// returns immediately. A request that would close a waits-for cycle
// fails with ErrDeadlock instead of blocking.
func (lm *lockManager) lock(txID uint64, oid store.OID) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for {
		h, held := lm.holder[oid]
		if !held {
			lm.holder[oid] = txID
			return nil
		}
		if h == txID {
			return nil // reentrant
		}
		// Would waiting on h's lock close a cycle back to us? Each
		// transaction waits on at most one object, so the waits-for
		// graph is a set of chains; walk ours.
		if lm.wouldCycle(txID, h) {
			return ErrDeadlock
		}
		lm.waiting[txID] = oid
		lm.cond.Wait()
		delete(lm.waiting, txID)
	}
}

// wouldCycle reports whether holder (transitively) waits for txID.
// Called with lm.mu held.
func (lm *lockManager) wouldCycle(txID, holder uint64) bool {
	cur := holder
	for steps := 0; steps <= len(lm.waiting)+1; steps++ {
		if cur == txID {
			return true
		}
		oid, waits := lm.waiting[cur]
		if !waits {
			return false
		}
		next, held := lm.holder[oid]
		if !held {
			return false
		}
		cur = next
	}
	return true // defensive: treat an over-long walk as a cycle
}

// releaseAll drops every lock txID holds and wakes waiters.
func (lm *lockManager) releaseAll(txID uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for oid, h := range lm.holder {
		if h == txID {
			delete(lm.holder, oid)
		}
	}
	delete(lm.waiting, txID)
	lm.cond.Broadcast()
}

// holds reports whether txID currently holds oid (for tests and
// assertions).
func (lm *lockManager) holds(txID uint64, oid store.OID) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.holder[oid] == txID
}

func (lm *lockManager) String() string {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return fmt.Sprintf("lockManager{held=%d, waiting=%d}", len(lm.holder), len(lm.waiting))
}
