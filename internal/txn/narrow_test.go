package txn

import (
	"testing"

	"ode/internal/store"
	"ode/internal/value"
)

// narrowSetup commits one object with a field and an activation, then
// returns the manager and OID.
func narrowSetup(t *testing.T) (*Manager, store.OID) {
	t.Helper()
	m := newManager(t)
	setup := m.Begin()
	rec, err := setup.Create("acct", map[string]value.Value{"balance": value.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	a := rec.Trigger("Watch")
	a.Active, a.State = true, 1
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	return m, rec.OID
}

func TestNarrowAbortRestoresActivationScalars(t *testing.T) {
	m, oid := narrowSetup(t)
	tx := m.Begin()
	rec, first, err := tx.AccessNarrow(oid)
	if err != nil || !first {
		t.Fatalf("AccessNarrow: first=%v err=%v", first, err)
	}
	a := rec.Trigger("Watch")
	a.State = 7
	a.Active = false
	a.Shadow = append(a.Shadow, 3)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Store().Get(oid)
	ga := got.Trigger("Watch")
	if !ga.Active || ga.State != 1 || len(ga.Shadow) != 0 {
		t.Fatalf("rollback left Active=%v State=%d Shadow=%v", ga.Active, ga.State, ga.Shadow)
	}
}

func TestNarrowCommitPublishesSharedImage(t *testing.T) {
	m, oid := narrowSetup(t)
	before, _ := m.Store().GetCommitted(oid)
	tx := m.Begin()
	rec, _, err := tx.AccessNarrow(oid)
	if err != nil {
		t.Fatal(err)
	}
	rec.Trigger("Watch").State = 9
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after, ok := m.Store().GetCommitted(oid)
	if !ok || after == before {
		t.Fatalf("narrow commit did not publish a fresh image")
	}
	if after.Trigger("Watch").State != 9 {
		t.Fatalf("published State = %d, want 9", after.Trigger("Watch").State)
	}
	if !after.Fields["balance"].Equal(value.Int(100)) {
		t.Fatalf("published balance %v", after.Fields["balance"])
	}
}

// TestNarrowPromoteOnAccessCoversFieldWrites pins the automatic
// upgrade: a general Access after a narrow one takes a full image, so
// rollback restores field mutations made through the general path.
func TestNarrowPromoteOnAccessCoversFieldWrites(t *testing.T) {
	m, oid := narrowSetup(t)
	tx := m.Begin()
	rec, _, err := tx.AccessNarrow(oid)
	if err != nil {
		t.Fatal(err)
	}
	rec.Trigger("Watch").State = 4 // scalar step under the narrow image
	rec2, _, err := tx.Access(oid) // general access licenses any mutation
	if err != nil {
		t.Fatal(err)
	}
	rec2.Fields["balance"] = value.Int(0)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Store().Get(oid)
	if !got.Fields["balance"].Equal(value.Int(100)) || got.Trigger("Watch").State != 1 {
		t.Fatalf("rollback left balance=%v State=%d", got.Fields["balance"], got.Trigger("Watch").State)
	}
}

func TestNarrowDeleteResurrectsOnAbort(t *testing.T) {
	m, oid := narrowSetup(t)
	tx := m.Begin()
	rec, _, err := tx.AccessNarrow(oid)
	if err != nil {
		t.Fatal(err)
	}
	rec.Trigger("Watch").State = 3
	if err := tx.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err := m.Store().Get(oid)
	if err != nil {
		t.Fatalf("object not resurrected: %v", err)
	}
	if got.Trigger("Watch").State != 1 || !got.Fields["balance"].Equal(value.Int(100)) {
		t.Fatalf("resurrected State=%d balance=%v", got.Trigger("Watch").State, got.Fields["balance"])
	}
}
