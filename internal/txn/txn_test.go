package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ode/internal/store"
	"ode/internal/value"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	s, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(s)
}

func TestCommitKeepsEffects(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	rec, err := tx.Create("acct", map[string]value.Value{"balance": value.Int(10)})
	if err != nil {
		t.Fatal(err)
	}
	rec.Fields["balance"] = value.Int(20)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Fatalf("state %v", tx.State())
	}
	got, _ := m.Store().Get(rec.OID)
	if !got.Fields["balance"].Equal(value.Int(20)) {
		t.Fatalf("balance %v", got.Fields["balance"])
	}
	// Locks released: another transaction can access it.
	tx2 := m.Begin()
	if _, _, err := tx2.Access(rec.OID); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
}

func TestAbortUndoesUpdatesCreatesDeletes(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	a, _ := setup.Create("acct", map[string]value.Value{"balance": value.Int(100)})
	b, _ := setup.Create("acct", map[string]value.Value{"balance": value.Int(200)})
	setup.Commit()

	tx := m.Begin()
	ra, _, _ := tx.Access(a.OID)
	ra.Fields["balance"] = value.Int(0)
	ra.Trigger("t").State = 5
	if err := tx.Delete(b.OID); err != nil {
		t.Fatal(err)
	}
	c, _ := tx.Create("acct", nil)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Aborted {
		t.Fatalf("state %v", tx.State())
	}

	ga, _ := m.Store().Get(a.OID)
	if !ga.Fields["balance"].Equal(value.Int(100)) || len(ga.Triggers) != 0 {
		t.Fatalf("update not undone: %+v", ga)
	}
	if !m.Store().Exists(b.OID) {
		t.Fatal("delete not undone")
	}
	if m.Store().Exists(c.OID) {
		t.Fatal("create not undone")
	}
}

func TestFinishedTransactionRejectsOperations(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	a, _ := tx.Create("x", nil)
	tx.Commit()
	if _, _, err := tx.Access(a.OID); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Access after commit: %v", err)
	}
	if _, err := tx.Create("x", nil); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Create after commit: %v", err)
	}
	if err := tx.Delete(a.OID); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Delete after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestFirstAccessReported(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	a, _ := setup.Create("x", nil)
	setup.Commit()

	tx := m.Begin()
	_, first, _ := tx.Access(a.OID)
	if !first {
		t.Fatal("first access not reported")
	}
	_, again, _ := tx.Access(a.OID)
	if again {
		t.Fatal("second access reported as first")
	}
	got := tx.Accessed()
	if len(got) != 1 || got[0] != a.OID {
		t.Fatalf("Accessed = %v", got)
	}
	tx.Commit()
}

func TestLockBlocksConflictingTransaction(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	a, _ := setup.Create("x", map[string]value.Value{"v": value.Int(1)})
	setup.Commit()

	tx1 := m.Begin()
	tx1.Access(a.OID)
	if !tx1.Holds(a.OID) {
		t.Fatal("tx1 should hold the lock")
	}

	acquired := make(chan struct{})
	go func() {
		tx2 := m.Begin()
		tx2.Access(a.OID) // blocks until tx1 finishes
		close(acquired)
		tx2.Commit()
	}()

	select {
	case <-acquired:
		t.Fatal("tx2 acquired a held lock")
	case <-time.After(30 * time.Millisecond):
	}
	tx1.Commit()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("tx2 never acquired the lock after release")
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	a, _ := setup.Create("x", nil)
	b, _ := setup.Create("x", nil)
	setup.Commit()

	tx1 := m.Begin()
	tx2 := m.Begin()
	if _, _, err := tx1.Access(a.OID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx2.Access(b.OID); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	errs := make(chan error, 2)
	go func() {
		defer wg.Done()
		_, _, err := tx1.Access(b.OID) // blocks on tx2
		errs <- err
		if err != nil {
			tx1.Abort()
		} else {
			tx1.Commit()
		}
	}()
	time.Sleep(20 * time.Millisecond) // let tx1 block
	_, _, err := tx2.Access(a.OID)    // would close the cycle
	errs <- err
	if err != nil {
		tx2.Abort()
	} else {
		tx2.Commit()
	}
	wg.Wait()

	var deadlocks, oks int
	for i := 0; i < 2; i++ {
		switch e := <-errs; {
		case errors.Is(e, ErrDeadlock):
			deadlocks++
		case e == nil:
			oks++
		default:
			t.Fatalf("unexpected error %v", e)
		}
	}
	if deadlocks != 1 || oks != 1 {
		t.Fatalf("deadlocks=%d oks=%d, want exactly one of each", deadlocks, oks)
	}
}

func TestReentrantLock(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	a, _ := tx.Create("x", nil)
	for i := 0; i < 3; i++ {
		if _, _, err := tx.Access(a.OID); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
}

func TestCommitDependencyCommitted(t *testing.T) {
	m := newManager(t)
	t1 := m.Begin()
	a, _ := t1.Create("x", nil)
	t2 := m.Begin()
	t2.DependOn(t1)

	done := make(chan error, 1)
	go func() { done <- t2.Commit() }()
	select {
	case <-done:
		t.Fatal("dependent committed before dependency")
	case <-time.After(30 * time.Millisecond):
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dependent commit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dependent never committed")
	}
	_ = a
}

func TestCommitDependencyAborted(t *testing.T) {
	m := newManager(t)
	t1 := m.Begin()
	t2 := m.Begin()
	rec, _ := t2.Create("x", nil)
	t2.DependOn(t1)

	done := make(chan error, 1)
	go func() { done <- t2.Commit() }()
	time.Sleep(20 * time.Millisecond)
	t1.Abort()

	select {
	case err := <-done:
		if !errors.Is(err, ErrDependencyAborted) {
			t.Fatalf("dependent commit error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dependent never finished")
	}
	if t2.State() != Aborted {
		t.Fatalf("dependent state %v, want aborted", t2.State())
	}
	if m.Store().Exists(rec.OID) {
		t.Fatal("aborted dependent's create survived")
	}
}

func TestDependOnSelfAndNilIgnored(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	tx.DependOn(nil)
	tx.DependOn(tx)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemTransactionFlag(t *testing.T) {
	m := newManager(t)
	if m.Begin().System() {
		t.Fatal("ordinary transaction flagged system")
	}
	st := m.BeginSystem()
	if !st.System() {
		t.Fatal("system transaction not flagged")
	}
	st.Commit()
}

func TestConcurrentTransfersSerialize(t *testing.T) {
	// Classic bank transfer stress: concurrent debits/credits between
	// two accounts; locking must keep the total invariant.
	m := newManager(t)
	setup := m.Begin()
	a, _ := setup.Create("acct", map[string]value.Value{"balance": value.Int(1000)})
	b, _ := setup.Create("acct", map[string]value.Value{"balance": value.Int(1000)})
	setup.Commit()

	const workers = 8
	const transfers = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				for {
					tx := m.Begin()
					// Alternate lock order to exercise deadlock
					// handling; retry on deadlock.
					first, second := a.OID, b.OID
					if (w+i)%2 == 1 {
						first, second = second, first
					}
					r1, _, err := tx.Access(first)
					if err != nil {
						tx.Abort()
						continue
					}
					r2, _, err := tx.Access(second)
					if err != nil {
						tx.Abort()
						continue
					}
					r1.Fields["balance"] = value.Int(r1.Fields["balance"].AsInt() - 1)
					r2.Fields["balance"] = value.Int(r2.Fields["balance"].AsInt() + 1)
					if err := tx.Commit(); err == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	ra, _ := m.Store().Get(a.OID)
	rb, _ := m.Store().Get(b.OID)
	total := ra.Fields["balance"].AsInt() + rb.Fields["balance"].AsInt()
	if total != 2000 {
		t.Fatalf("total %d, want 2000 (lost update)", total)
	}
}

func TestStateStrings(t *testing.T) {
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Fatal("state strings")
	}
}
