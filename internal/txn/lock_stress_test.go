package txn

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ode/internal/store"
	"ode/internal/value"
)

// TestLockStressRandomizedOrder hammers the sharded lock manager: N
// goroutines repeatedly lock a random handful of M objects in
// randomized order — a deadlock factory. Every ErrDeadlock victim must
// roll back cleanly (no locks retained), every other transaction must
// commit, and afterwards the lock manager must be fully quiescent: no
// leaked holders, no queued waiters, an empty waits-for graph, and no
// leftover held-lock sets.
func TestLockStressRandomizedOrder(t *testing.T) {
	s, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(s)

	const objects = 24
	oids := make([]store.OID, objects)
	for i := range oids {
		oids[i] = s.Create("obj", map[string]value.Value{"n": value.Int(0)}).OID
	}

	const workers = 16
	const rounds = 200
	var deadlocks, commits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for r := 0; r < rounds; r++ {
				tx := m.Begin()
				// Lock 3 random objects in a random order.
				var locked []store.OID
				aborted := false
				for i := 0; i < 3; i++ {
					oid := oids[rng.Intn(objects)]
					rec, _, err := tx.Access(oid)
					if err == ErrDeadlock {
						deadlocks.Add(1)
						if aerr := tx.Abort(); aerr != nil {
							t.Errorf("victim abort failed: %v", aerr)
						}
						// A rolled-back victim must hold nothing.
						for _, l := range locked {
							if tx.Holds(l) {
								t.Errorf("victim still holds lock on %d after abort", l)
							}
						}
						aborted = true
						break
					}
					if err != nil {
						t.Errorf("access: %v", err)
						aborted = true
						tx.Abort()
						break
					}
					rec.Fields["n"] = value.Int(rec.Fields["n"].AsInt() + 1)
					locked = append(locked, oid)
				}
				if aborted {
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					continue
				}
				commits.Add(1)
				for _, l := range locked {
					if tx.Holds(l) {
						t.Errorf("committed tx still holds lock on %d", l)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if commits.Load() == 0 {
		t.Fatal("no transaction ever committed")
	}
	t.Logf("commits=%d deadlock victims=%d", commits.Load(), deadlocks.Load())

	// Quiescence: nothing held, nobody waiting, graph drained.
	held, waiting := m.locks.counts()
	if held != 0 || waiting != 0 {
		t.Fatalf("lock manager not quiescent: held=%d waiting=%d", held, waiting)
	}
	edges, mirrors := m.locks.graphSizes()
	if edges != 0 || mirrors != 0 {
		t.Fatalf("waits-for graph not drained: edges=%d mirrors=%d", edges, mirrors)
	}
	if n := m.locks.heldSets(); n != 0 {
		t.Fatalf("leaked held-lock sets for %d transactions", n)
	}
}

// TestLockManagerTargetedWakeup checks the FIFO hand-off: with one
// holder and several waiters on the same object, a release admits the
// waiters one at a time (each new holder is one of the waiters), and
// the object ends free with empty queues.
func TestLockManagerTargetedWakeup(t *testing.T) {
	s, _ := store.Open("")
	m := NewManager(s)
	rec := s.Create("obj", nil)
	oid := rec.OID

	first := m.Begin()
	if _, _, err := first.Access(oid); err != nil {
		t.Fatal(err)
	}

	const waiters = 8
	var wg sync.WaitGroup
	var order []uint64
	var mu sync.Mutex
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := m.Begin()
			if _, _, err := tx.Access(oid); err != nil {
				t.Errorf("waiter access: %v", err)
				return
			}
			mu.Lock()
			order = append(order, tx.ID())
			mu.Unlock()
			if err := tx.Commit(); err != nil {
				t.Errorf("waiter commit: %v", err)
			}
		}()
	}
	// Let the waiters pile up, then release the lock chain.
	for {
		_, w := m.locks.counts()
		if w == waiters {
			break
		}
	}
	if err := first.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(order) != waiters {
		t.Fatalf("only %d of %d waiters ran", len(order), waiters)
	}
	held, waiting := m.locks.counts()
	if held != 0 || waiting != 0 {
		t.Fatalf("not quiescent after hand-off: held=%d waiting=%d", held, waiting)
	}
}
