package txn

import (
	"errors"
	"testing"
	"time"

	"ode/internal/value"
)

func TestPeekLocksWithoutAccessAccounting(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	a, _ := setup.Create("x", map[string]value.Value{"v": value.Int(1)})
	setup.Commit()

	tx := m.Begin()
	rec, err := tx.Peek(a.OID)
	if err != nil || !rec.Fields["v"].Equal(value.Int(1)) {
		t.Fatalf("Peek: %+v, %v", rec, err)
	}
	// Peek locks...
	if !tx.Holds(a.OID) {
		t.Fatal("peek did not lock")
	}
	// ...but does not count as an access.
	if len(tx.Accessed()) != 0 {
		t.Fatalf("peeked object in accessed set: %v", tx.Accessed())
	}
	// A later real access is still "first".
	_, first, err := tx.Access(a.OID)
	if err != nil || !first {
		t.Fatalf("access after peek: first=%v err=%v", first, err)
	}
	tx.Commit()
}

func TestPeekBlocksBehindWriter(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	a, _ := setup.Create("x", map[string]value.Value{"v": value.Int(1)})
	setup.Commit()

	writer := m.Begin()
	rec, _, _ := writer.Access(a.OID)
	rec.Fields["v"] = value.Int(2)

	got := make(chan int64, 1)
	go func() {
		reader := m.Begin()
		r, err := reader.Peek(a.OID)
		if err != nil {
			got <- -1
			return
		}
		got <- r.Fields["v"].AsInt()
		reader.Abort()
	}()
	select {
	case <-got:
		t.Fatal("peek read through a held write lock")
	case <-time.After(30 * time.Millisecond):
	}
	writer.Commit()
	select {
	case v := <-got:
		if v != 2 {
			t.Fatalf("peek saw %d, want the committed 2", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peek never unblocked")
	}
}

func TestPeekOnFinishedTx(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	a, _ := tx.Create("x", nil)
	tx.Commit()
	if _, err := tx.Peek(a.OID); !errors.Is(err, ErrNotActive) {
		t.Fatalf("peek on finished tx: %v", err)
	}
}

func TestPeekMissingObject(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	defer tx.Abort()
	if _, err := tx.Peek(999); err == nil {
		t.Fatal("peek of missing object succeeded")
	}
}
