// Package obs is the engine's observability layer: structured tracing
// of the §5 detection pipeline and per-trigger / per-class metrics.
//
// The paper's implementation model is a pipeline — a happening is
// posted to an object, each active trigger's logical-event masks are
// evaluated, the trigger's automaton takes one transition, and
// accepting automata fire their actions. Each pipeline stage emits one
// trace Event when tracing is enabled; when disabled the engine's emit
// helpers cost one atomic load and a branch (no allocation, no lock),
// so production posting pays nothing for the capability.
package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Stage identifies which pipeline stage a trace Event instruments.
type Stage uint8

const (
	// StageHappening: a happening was posted to an object — the entry
	// point of the §5 pipeline ("whenever a basic event ... is posted
	// to an object").
	StageHappening Stage = iota + 1
	// StageMask: a trigger's logical-event masks were evaluated for a
	// happening; From holds the requested bit set, To the bits that
	// evaluated true ("we check the active triggers to determine
	// whether or not any logical events have occurred").
	StageMask
	// StageStep: a trigger automaton took one transition; From → To
	// are the old and new states, OK reports acceptance ("we move the
	// automaton to the next state").
	StageStep
	// StageFire: a trigger's action executed; DurNs is the action's
	// wall-clock latency, Err its error if any ("then we fire the
	// triggers").
	StageFire
	// StageTimer: a time event was delivered to an object by the
	// timer table (§3.1 item 3).
	StageTimer
	// StageTxBegin: a transaction began (Kind is "user" or "system").
	StageTxBegin
	// StageTxCommit: a transaction committed.
	StageTxCommit
	// StageTxAbort: a transaction aborted (rollback done).
	StageTxAbort
	// StageTcomplete: one round of the §6 before-tcomplete commit
	// fixpoint ran; From is the round number, OK whether any trigger
	// fired (another round follows while OK).
	StageTcomplete
	// StageBatch: a PostBatch run of happenings of one kind; From holds
	// the happening count. The batch path records one such summary per
	// (method, phase) instead of a flight event per happening — the
	// recorder is a lossy diagnostic ring, and per-event stamping is the
	// dominant cost of an otherwise tight loop. Firings within the batch
	// still record individual StageFire events.
	StageBatch
	// StageEgress: a batch of firing records became visible on the
	// durable egress feed; From holds the first sequence number of the
	// batch, To the last.
	StageEgress
)

var stageNames = [...]string{
	StageHappening: "happening",
	StageMask:      "mask",
	StageStep:      "step",
	StageFire:      "fire",
	StageTimer:     "timer",
	StageTxBegin:   "tx-begin",
	StageTxCommit:  "tx-commit",
	StageTxAbort:   "tx-abort",
	StageTcomplete: "tcomplete",
	StageBatch:     "batch",
	StageEgress:    "egress",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// MarshalJSON renders the stage as its name, so /debug/trace output is
// self-describing.
func (s Stage) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a stage name back (clients of /debug/trace).
func (s *Stage) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown stage %q", name)
}

// Event is one structured trace record. Field meaning varies slightly
// per stage (see the Stage constants); unused fields are zero.
type Event struct {
	// Seq is the tracer-assigned sequence number (monotone per tracer).
	Seq uint64 `json:"seq"`
	// At is the database's virtual time at emission.
	At time.Time `json:"at"`
	// Stage is the pipeline stage.
	Stage Stage `json:"stage"`
	// TxID is the posting transaction (0 for timer deliveries).
	TxID uint64 `json:"tx,omitempty"`
	// OID is the object involved, when any.
	OID uint64 `json:"oid,omitempty"`
	// Class and Trigger name the class / trigger involved, when any.
	Class   string `json:"class,omitempty"`
	Trigger string `json:"trigger,omitempty"`
	// Kind is the happening kind (StageHappening, StageTimer), or the
	// transaction flavor ("user"/"system") for tx stages.
	Kind string `json:"kind,omitempty"`
	// From and To are stage-specific integers: automaton states for
	// StageStep, mask bit sets for StageMask, the round number for
	// StageTcomplete.
	From int `json:"from"`
	To   int `json:"to"`
	// OK is the stage verdict: automaton acceptance, any-mask-true,
	// any-trigger-fired.
	OK bool `json:"ok"`
	// DurNs is the action latency in nanoseconds (StageFire).
	DurNs int64 `json:"dur_ns,omitempty"`
	// Err carries the action error text (StageFire), if any.
	Err string `json:"err,omitempty"`
}

// Tracer consumes trace events. Implementations must be safe for
// concurrent use: the engine traces from every posting goroutine.
type Tracer interface {
	// Trace records one event. It must be cheap — it sits on the
	// engine's posting hot path whenever tracing is enabled.
	Trace(Event)
	// Events returns up to last recorded events in chronological
	// order (last <= 0 means all retained).
	Events(last int) []Event
}

// Ring is the standard Tracer: a fixed-capacity ring buffer that
// overwrites the oldest events. All methods are safe for concurrent
// use; Trace performs no allocation.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	seq uint64 // events ever traced; next event's sequence number
}

// DefaultRingCapacity is used when NewRing is given a non-positive
// capacity.
const DefaultRingCapacity = 4096

// NewRing returns a ring tracer retaining the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Trace records ev, assigning its sequence number.
func (r *Ring) Trace(ev Event) {
	r.mu.Lock()
	ev.Seq = r.seq
	r.buf[int(r.seq%uint64(len(r.buf)))] = ev
	r.seq++
	r.mu.Unlock()
}

// Events returns the last events in chronological order.
func (r *Ring) Events(last int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.seq < n {
		n = r.seq
	}
	if last > 0 && uint64(last) < n {
		n = uint64(last)
	}
	out := make([]Event, 0, n)
	for i := r.seq - n; i < r.seq; i++ {
		out = append(out, r.buf[int(i%uint64(len(r.buf)))])
	}
	return out
}

// Len reports how many events are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Total reports how many events were ever traced (including ones the
// ring has since overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
