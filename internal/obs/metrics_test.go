package obs

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)                // bucket 1 (le 1ns)
	h.Observe(100)              // bucket 7 (le 127ns)
	h.Observe(time.Microsecond) // 1000ns → bucket 10 (le 1023ns)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.SumNs != 1101 {
		t.Fatalf("SumNs = %d", s.SumNs)
	}
	if s.MaxNs != 1000 {
		t.Fatalf("MaxNs = %d", s.MaxNs)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d", total)
	}
	// The 100ns observation lands in the le-127ns bucket.
	found := false
	for _, b := range s.Buckets {
		if b.UpperNs == 127 && b.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no le-127ns bucket: %+v", s.Buckets)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamped to 0
	h.Observe(1 << 62)      // clamped into the last bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Buckets[0].UpperNs != 0 || s.Buckets[0].Count != 1 {
		t.Fatalf("negative observation not clamped to zero bucket: %+v", s.Buckets)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.UpperNs != 1<<(NumLatencyBuckets-1)-1 || last.Count != 1 {
		t.Fatalf("huge observation not clamped to last bucket: %+v", last)
	}
}

func TestTriggerMetricsNilSafe(t *testing.T) {
	var m *TriggerMetrics
	m.Step()
	m.MaskEval(true)
	m.Fire(time.Millisecond, nil)
	if m.Firings() != 0 {
		t.Fatal("nil metrics returned nonzero firings")
	}
	var c *ClassMetrics
	c.Happening()
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	a := r.Trigger("account", "Large")
	b := r.Trigger("account", "Small")
	if r.Trigger("account", "Large") != a {
		t.Fatal("Trigger not idempotent")
	}
	cm := r.Class("account")
	if r.Class("account") != cm {
		t.Fatal("Class not idempotent")
	}

	cm.Happening()
	cm.Happening()
	a.Step()
	a.MaskEval(true)
	a.MaskEval(false)
	a.Fire(time.Microsecond, nil)
	a.Fire(time.Millisecond, errors.New("boom"))
	b.Step()
	b.Step()

	s := r.Snapshot()
	if len(s.Triggers) != 2 || len(s.Classes) != 1 {
		t.Fatalf("snapshot shape: %d triggers %d classes", len(s.Triggers), len(s.Classes))
	}
	ts := s.Triggers[0]
	if ts.Trigger != "Large" || ts.Firings != 2 || ts.Steps != 1 ||
		ts.MaskEvals != 2 || ts.MaskFalse != 1 || ts.ActionErrors != 1 {
		t.Fatalf("Large snapshot = %+v", ts)
	}
	if ts.Latency.Count != 2 {
		t.Fatalf("latency count = %d", ts.Latency.Count)
	}
	cs := s.Classes[0]
	if cs.Happenings != 2 || cs.Firings != 2 || cs.Steps != 3 || cs.MaskEvals != 2 {
		t.Fatalf("class rollup = %+v", cs)
	}

	// The snapshot is JSON-ready.
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Triggers[0].Firings != 2 {
		t.Fatalf("round trip lost firings: %s", out)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := r.Trigger("cls", "T")
			for i := 0; i < 1000; i++ {
				m.Step()
				m.MaskEval(i%2 == 0)
				if i%10 == 0 {
					m.Fire(time.Duration(i)*time.Nanosecond, nil)
				}
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Triggers[0].Steps != 8000 || s.Triggers[0].Firings != 800 {
		t.Fatalf("lost updates: %+v", s.Triggers[0])
	}
	if s.Triggers[0].Latency.Count != 800 {
		t.Fatalf("latency count = %d", s.Triggers[0].Latency.Count)
	}
}

func TestMetricsUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	m := r.Trigger("cls", "T")
	c := r.Class("cls")
	if allocs := testing.AllocsPerRun(200, func() {
		c.Happening()
		m.Step()
		m.MaskEval(true)
	}); allocs != 0 {
		t.Fatalf("metric updates allocate %.1f per call", allocs)
	}
}
