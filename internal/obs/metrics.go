package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// NumLatencyBuckets is the fixed bucket count of Histogram: bucket i
// counts observations whose nanosecond value has bit-length i, i.e.
// durations in [2^(i-1), 2^i) ns — HDR-style exponential buckets with
// no configuration and no allocation on the observe path.
const NumLatencyBuckets = 40

// Histogram is a fixed-bucket latency histogram safe for concurrent
// use. The zero value is ready.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
	buckets [NumLatencyBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d.Nanoseconds())
	}
	ix := bits.Len64(ns)
	if ix >= NumLatencyBuckets {
		ix = NumLatencyBuckets - 1
	}
	h.buckets[ix].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Bucket is one non-empty histogram bucket: Count observations at most
// UpperNs nanoseconds (and above the previous bucket's bound).
type Bucket struct {
	UpperNs uint64 `json:"le_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time JSON-ready histogram view.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   uint64   `json:"sum_ns"`
	MaxNs   uint64   `json:"max_ns"`
	MeanNs  float64  `json:"mean_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Counters are read one by one, so a
// snapshot taken while observations are in flight may be off by the
// in-flight observations; it is exact when quiescent. Observe updates
// the bucket before the total, so a racing read can see more bucketed
// observations than Count — Snapshot reconciles by clamping Count up
// to the bucket sum, keeping the invariant bucketSum <= Count that
// the exposition format (and Quantile) relies on.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sumNs.Load(),
		MaxNs: h.maxNs.Load(),
	}
	var bucketSum uint64
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperNs: 1<<uint(i) - 1, Count: n})
			bucketSum += n
		}
	}
	if bucketSum > s.Count {
		s.Count = bucketSum
	}
	if s.Count > 0 {
		s.MeanNs = float64(s.SumNs) / float64(s.Count)
	}
	return s
}

// Quantile estimates the q-th quantile observation in nanoseconds.
// The bucket holding the rank is located by cumulative count; within
// it the estimate interpolates linearly across the bucket's value
// range [2^(i-1), 2^i), assuming observations are spread uniformly
// inside the bucket. Returning the raw bucket upper bound instead —
// the previous behavior — collapses every quantile that lands in a
// populated bucket onto the same power-of-two boundary (1048575,
// 2097151, ...), which made E15's p50 and p90 indistinguishable
// whenever they shared a bucket. The estimate is clamped to the
// observed maximum; q outside (0, 1] is clamped; an empty snapshot
// reports 0.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum < rank {
			continue
		}
		if b.UpperNs == 0 {
			// Bucket 0 holds only zero-duration observations.
			return 0
		}
		lo := (b.UpperNs + 1) / 2 // the bucket's lower bound, 2^(i-1)
		hi := b.UpperNs
		if s.MaxNs > 0 && hi > s.MaxNs {
			hi = s.MaxNs
		}
		if hi <= lo {
			return hi
		}
		// 1-based position of the rank among this bucket's Count
		// observations: position Count maps to hi, position 0 to lo.
		pos := rank - (cum - b.Count)
		return lo + uint64(float64(hi-lo)*float64(pos)/float64(b.Count))
	}
	return s.MaxNs
}

// TriggerMetrics are the per-(class, trigger) counters. All update
// methods are atomic, allocation-free, and nil-safe (a nil receiver is
// a no-op), so call sites need no guards.
type TriggerMetrics struct {
	Class   string
	Trigger string

	firings    atomic.Uint64
	steps      atomic.Uint64
	maskEvals  atomic.Uint64
	maskFalse  atomic.Uint64
	actionErrs atomic.Uint64
	latency    Histogram
}

// Step counts one automaton transition.
func (m *TriggerMetrics) Step() {
	if m != nil {
		m.steps.Add(1)
	}
}

// StepN counts n automaton transitions at once. Batch posting
// accumulates per-trigger counts locally and flushes them here, one
// atomic add per batch instead of one per happening.
func (m *TriggerMetrics) StepN(n uint64) {
	if m != nil && n > 0 {
		m.steps.Add(n)
	}
}

// MaskEval counts one mask evaluation and its verdict.
func (m *TriggerMetrics) MaskEval(ok bool) {
	if m == nil {
		return
	}
	m.maskEvals.Add(1)
	if !ok {
		m.maskFalse.Add(1)
	}
}

// MaskEvalN counts evals mask evaluations of which falses were false.
// The batch-posting flush counterpart of MaskEval.
func (m *TriggerMetrics) MaskEvalN(evals, falses uint64) {
	if m == nil || evals == 0 {
		return
	}
	m.maskEvals.Add(evals)
	if falses > 0 {
		m.maskFalse.Add(falses)
	}
}

// Fire counts one firing with its action latency and error outcome.
func (m *TriggerMetrics) Fire(d time.Duration, err error) {
	if m == nil {
		return
	}
	m.firings.Add(1)
	if err != nil {
		m.actionErrs.Add(1)
	}
	m.latency.Observe(d)
}

// Firings returns the firing count.
func (m *TriggerMetrics) Firings() uint64 {
	if m == nil {
		return 0
	}
	return m.firings.Load()
}

// ClassMetrics are the per-class counters.
type ClassMetrics struct {
	Class string

	happenings atomic.Uint64
}

// Happening counts one happening posted to an object of the class.
func (m *ClassMetrics) Happening() {
	if m != nil {
		m.happenings.Add(1)
	}
}

// HappeningN counts n happenings at once (the batch-posting flush).
func (m *ClassMetrics) HappeningN(n uint64) {
	if m != nil && n > 0 {
		m.happenings.Add(n)
	}
}

// TriggerSnapshot is a JSON-ready per-trigger metrics view.
type TriggerSnapshot struct {
	Class        string            `json:"class"`
	Trigger      string            `json:"trigger"`
	Firings      uint64            `json:"firings"`
	Steps        uint64            `json:"steps"`
	MaskEvals    uint64            `json:"mask_evals"`
	MaskFalse    uint64            `json:"mask_false"`
	ActionErrors uint64            `json:"action_errors"`
	Latency      HistogramSnapshot `json:"latency"`
}

// ClassSnapshot is a JSON-ready per-class metrics view; the trigger
// counters are sums over the class's triggers.
type ClassSnapshot struct {
	Class      string `json:"class"`
	Happenings uint64 `json:"happenings"`
	Firings    uint64 `json:"firings"`
	Steps      uint64 `json:"steps"`
	MaskEvals  uint64 `json:"mask_evals"`
}

// Snapshot is the full registry view.
type Snapshot struct {
	Triggers []TriggerSnapshot `json:"triggers"`
	Classes  []ClassSnapshot   `json:"classes"`
}

// Canonical returns a copy of the snapshot with every wall-clock-
// dependent field (the action-latency histograms) zeroed, leaving
// only counters that are a pure function of the executed schedule.
// Deterministic replays (internal/sim) compare Canonical snapshots
// across runs: two executions of the same seed must agree on every
// remaining field even though their action latencies differ.
func (s Snapshot) Canonical() Snapshot {
	out := Snapshot{
		Triggers: append([]TriggerSnapshot(nil), s.Triggers...),
		Classes:  append([]ClassSnapshot(nil), s.Classes...),
	}
	for i := range out.Triggers {
		out.Triggers[i].Latency = HistogramSnapshot{}
	}
	return out
}

// Registry holds the metrics of every registered class and trigger.
// Lookup is paid once at class-registration time: the engine caches
// the returned pointers, so hot-path updates are plain atomic adds.
type Registry struct {
	mu       sync.Mutex
	triggers map[[2]string]*TriggerMetrics
	classes  map[string]*ClassMetrics
	torder   [][2]string
	corder   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		triggers: map[[2]string]*TriggerMetrics{},
		classes:  map[string]*ClassMetrics{},
	}
}

// Trigger returns (creating if needed) the metrics of class.trigger.
func (r *Registry) Trigger(class, trigger string) *TriggerMetrics {
	key := [2]string{class, trigger}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.triggers[key]
	if !ok {
		m = &TriggerMetrics{Class: class, Trigger: trigger}
		r.triggers[key] = m
		r.torder = append(r.torder, key)
	}
	return m
}

// Class returns (creating if needed) the metrics of a class.
func (r *Registry) Class(class string) *ClassMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.classes[class]
	if !ok {
		m = &ClassMetrics{Class: class}
		r.classes[class] = m
		r.corder = append(r.corder, class)
	}
	return m
}

// Snapshot captures every counter in registration order. Counters are
// read individually (not under a global pause), so concurrent updates
// may make cross-counter arithmetic off by the in-flight operations;
// sums are exact when the engine is quiescent.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	torder := append([][2]string(nil), r.torder...)
	corder := append([]string(nil), r.corder...)
	triggers := make([]*TriggerMetrics, len(torder))
	classes := make([]*ClassMetrics, len(corder))
	for i, k := range torder {
		triggers[i] = r.triggers[k]
	}
	for i, k := range corder {
		classes[i] = r.classes[k]
	}
	r.mu.Unlock()

	snap := Snapshot{}
	perClass := map[string]*ClassSnapshot{}
	for i, c := range corder {
		snap.Classes = append(snap.Classes, ClassSnapshot{
			Class:      c,
			Happenings: classes[i].happenings.Load(),
		})
		perClass[c] = &snap.Classes[len(snap.Classes)-1]
	}
	for _, m := range triggers {
		ts := TriggerSnapshot{
			Class:        m.Class,
			Trigger:      m.Trigger,
			Firings:      m.firings.Load(),
			Steps:        m.steps.Load(),
			MaskEvals:    m.maskEvals.Load(),
			MaskFalse:    m.maskFalse.Load(),
			ActionErrors: m.actionErrs.Load(),
			Latency:      m.latency.Snapshot(),
		}
		snap.Triggers = append(snap.Triggers, ts)
		if cs := perClass[m.Class]; cs != nil {
			cs.Firings += ts.Firings
			cs.Steps += ts.Steps
			cs.MaskEvals += ts.MaskEvals
		}
	}
	return snap
}
