package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseProm is a strict miniature parser for the Prometheus text
// exposition format: every line must be a comment (# HELP / # TYPE) or
// a sample `name{labels} value`, HELP/TYPE must precede their family's
// samples, and label values must be properly quoted. It returns the
// samples keyed by full series (name + sorted raw label string).
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: bad metric type %q", ln+1, parts[3])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, series)
			}
			name = series[:i]
			for _, lbl := range splitLabels(series[i+1 : len(series)-1]) {
				eq := strings.IndexByte(lbl, '=')
				if eq < 0 || len(lbl) < eq+3 || lbl[eq+1] != '"' || lbl[len(lbl)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, lbl)
				}
			}
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && typed[f] == "histogram" {
				family = f
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = val
	}
	return samples
}

// splitLabels splits a raw label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestWritePromExposition(t *testing.T) {
	reg := NewRegistry()
	tm := reg.Trigger("account", "Big")
	cm := reg.Class("account")
	cm.Happening()
	cm.Happening()
	tm.Step()
	tm.MaskEval(true)
	tm.MaskEval(false)
	tm.Fire(3*time.Millisecond, nil)
	tm.Fire(40*time.Microsecond, fmt.Errorf("boom"))

	var buf bytes.Buffer
	WriteProm(&buf, reg.Snapshot(), []PromMetric{
		{Name: "ode_engine_tx_begun_total", Help: "Transactions begun.", Value: 5},
		{Name: "ode_engine_active_triggers", Help: "Active instances.", Type: "gauge", Value: 2},
	})
	text := buf.String()
	samples := parseProm(t, text)

	labels := `{class="account",trigger="Big"}`
	checks := map[string]float64{
		"ode_trigger_firings_total" + labels:                                                 2,
		"ode_trigger_steps_total" + labels:                                                   1,
		"ode_trigger_mask_evals_total" + labels:                                              2,
		"ode_trigger_mask_false_total" + labels:                                              1,
		"ode_trigger_action_errors_total" + labels:                                           1,
		`ode_class_happenings_total{class="account"}`:                                        2,
		`ode_trigger_action_latency_seconds_count` + labels:                                  2,
		`ode_trigger_action_latency_seconds_bucket{class="account",trigger="Big",le="+Inf"}`: 2,
		"ode_engine_tx_begun_total":                                                          5,
		"ode_engine_active_triggers":                                                         2,
	}
	for series, want := range checks {
		got, ok := samples[series]
		if !ok {
			t.Fatalf("missing series %s in:\n%s", series, text)
		}
		if got != want {
			t.Fatalf("%s = %g, want %g", series, got, want)
		}
	}

	// Histogram buckets must be cumulative (monotone non-decreasing in
	// le order) and end at the +Inf count.
	var prev float64
	var seen int
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "ode_trigger_action_latency_seconds_bucket") {
			continue
		}
		seen++
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
	if seen == 0 {
		t.Fatal("no histogram bucket lines emitted")
	}
	if prev != 2 {
		t.Fatalf("final (+Inf) bucket = %g, want 2", prev)
	}
}

func TestPromEscape(t *testing.T) {
	reg := NewRegistry()
	reg.Trigger(`we"ird`, "line\nbreak\\x").Step()
	var buf bytes.Buffer
	WriteProm(&buf, reg.Snapshot(), nil)
	text := buf.String()
	if !strings.Contains(text, `class="we\"ird"`) {
		t.Fatalf("quote not escaped:\n%s", text)
	}
	if !strings.Contains(text, `trigger="line\nbreak\\x"`) {
		t.Fatalf("newline/backslash not escaped:\n%s", text)
	}
	parseProm(t, text)
}
