package obs

import "sort"

// MergeSnapshots combines per-partition metric snapshots into one
// aggregate view: trigger rows with the same (class, trigger) key and
// class rows with the same class sum their counters, and latency
// histograms merge bucket-wise. Rows are ordered by name (class, then
// trigger) — registration order is per-partition and has no global
// meaning. The result carries the same consistency caveat as any
// individual snapshot: exact when every source engine is quiescent.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	if len(snaps) == 1 {
		return snaps[0]
	}
	trig := map[[2]string]*TriggerSnapshot{}
	cls := map[string]*ClassSnapshot{}
	for _, s := range snaps {
		for _, t := range s.Triggers {
			key := [2]string{t.Class, t.Trigger}
			acc, ok := trig[key]
			if !ok {
				c := t
				trig[key] = &c
				continue
			}
			acc.Firings += t.Firings
			acc.Steps += t.Steps
			acc.MaskEvals += t.MaskEvals
			acc.MaskFalse += t.MaskFalse
			acc.ActionErrors += t.ActionErrors
			acc.Latency = mergeHistograms(acc.Latency, t.Latency)
		}
		for _, c := range s.Classes {
			acc, ok := cls[c.Class]
			if !ok {
				cc := c
				cls[c.Class] = &cc
				continue
			}
			acc.Happenings += c.Happenings
			acc.Firings += c.Firings
			acc.Steps += c.Steps
			acc.MaskEvals += c.MaskEvals
		}
	}
	var out Snapshot
	for _, t := range trig {
		out.Triggers = append(out.Triggers, *t)
	}
	for _, c := range cls {
		out.Classes = append(out.Classes, *c)
	}
	sort.Slice(out.Triggers, func(i, j int) bool {
		a, b := out.Triggers[i], out.Triggers[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Trigger < b.Trigger
	})
	sort.Slice(out.Classes, func(i, j int) bool {
		return out.Classes[i].Class < out.Classes[j].Class
	})
	return out
}

// mergeHistograms sums two histogram snapshots bucket-wise.
func mergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: a.Count + b.Count,
		SumNs: a.SumNs + b.SumNs,
		MaxNs: a.MaxNs,
	}
	if b.MaxNs > out.MaxNs {
		out.MaxNs = b.MaxNs
	}
	byUpper := map[uint64]uint64{}
	for _, bk := range a.Buckets {
		byUpper[bk.UpperNs] += bk.Count
	}
	for _, bk := range b.Buckets {
		byUpper[bk.UpperNs] += bk.Count
	}
	for up, n := range byUpper {
		out.Buckets = append(out.Buckets, Bucket{UpperNs: up, Count: n})
	}
	sort.Slice(out.Buckets, func(i, j int) bool {
		return out.Buckets[i].UpperNs < out.Buckets[j].UpperNs
	})
	if out.Count > 0 {
		out.MeanNs = float64(out.SumNs) / float64(out.Count)
	}
	return out
}
