package obs

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramSnapshotReconciliation hammers Observe from several
// goroutines while snapshotting: every snapshot must satisfy
// bucketSum <= Count (the clamp repairs the bucket-before-count update
// order), and the final quiescent snapshot must be exact.
func TestHistogramSnapshotReconciliation(t *testing.T) {
	var h Histogram
	const (
		workers = 4
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(1+(w*perW+i)%1000) * time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := h.Snapshot()
		var bucketSum uint64
		for _, b := range s.Buckets {
			bucketSum += b.Count
		}
		if bucketSum > s.Count {
			t.Fatalf("snapshot torn: bucket sum %d > count %d", bucketSum, s.Count)
		}
		select {
		case <-done:
			final := h.Snapshot()
			var sum uint64
			for _, b := range final.Buckets {
				sum += b.Count
			}
			if final.Count != workers*perW || sum != final.Count {
				t.Fatalf("quiescent snapshot inexact: count=%d bucketSum=%d want %d",
					final.Count, sum, workers*perW)
			}
			return
		default:
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 90 observations near 1µs, 10 near 1ms: p50 lands in the µs
	// bucket, p99 in the ms bucket.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	p99 := s.Quantile(0.99)
	if p50 >= p99 {
		t.Fatalf("p50 %dns >= p99 %dns", p50, p99)
	}
	if p50 < 512 || p50 >= 1<<12 {
		t.Fatalf("p50 = %dns, want in the ~1µs bucket range", p50)
	}
	if p99 < 1<<19 {
		t.Fatalf("p99 = %dns, want in the ~1ms bucket range", p99)
	}
	// Quantiles clamp to the observed maximum, and out-of-range q is
	// tolerated.
	if got := s.Quantile(1); got > s.MaxNs {
		t.Fatalf("p100 = %d exceeds max %d", got, s.MaxNs)
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Fatalf("q>1 not clamped: %d vs %d", got, s.Quantile(1))
	}
	if got := s.Quantile(-1); got == 0 {
		t.Fatalf("q<=0 should clamp to the smallest rank, got 0")
	}
}

// TestHistogramQuantileInterpolation pins the linear interpolation
// within a bucket against exact percentiles. Observing every value in
// [512, 1023] exactly once fills one bucket uniformly, which is the
// distribution the interpolation assumes — so the estimate must match
// the true percentile to within one interpolation step.
func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	for ns := 512; ns <= 1023; ns++ {
		h.Observe(time.Duration(ns) * time.Nanosecond)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("expected one bucket, got %d", len(s.Buckets))
	}
	exact := func(q float64) uint64 {
		// The sorted observations are 512, 513, ..., 1023; the q-th
		// percentile is the value at 1-based rank ceil(q*512).
		rank := int(q*512 + 0.9999999)
		return uint64(512 + rank - 1)
	}
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0} {
		got := s.Quantile(q)
		want := exact(q)
		diff := int64(got) - int64(want)
		if diff < -1 || diff > 1 {
			t.Errorf("Quantile(%.2f) = %d, exact percentile %d (off by %d)", q, got, want, diff)
		}
	}
	// Distinct quantiles inside one bucket must no longer collapse to
	// the shared bucket bound, and estimates must be monotone in q.
	if p50, p90 := s.Quantile(0.5), s.Quantile(0.9); p50 >= p90 {
		t.Fatalf("p50 %d >= p90 %d: interpolation collapsed within a bucket", p50, p90)
	}
	prev := uint64(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := s.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotone: q=%.2f gives %d < %d", q, cur, prev)
		}
		prev = cur
	}
	// The top of the bucket clamps to the observed maximum.
	if got := s.Quantile(1); got != s.MaxNs {
		t.Fatalf("Quantile(1) = %d, want max %d", got, s.MaxNs)
	}
}
