package obs

import (
	"sync"
	"sync/atomic"
)

// Flight is the always-on flight recorder: a fixed-size ring of recent
// pipeline events kept even when tracing is disabled, so a crash or a
// debugging session can always reconstruct "what was the engine doing
// just now". It is lock-free on the record path — one atomic cursor
// add plus a handful of atomic word stores per event, no allocation,
// no mutex — which is what lets the engine leave it on permanently
// without breaking the zero-alloc posting budget.
//
// Strings (class, trigger, kind names) never enter the ring: recorders
// pass uint16 IDs from an Interner and the names are resolved only at
// dump time. Every slot field is an atomic word, so concurrent
// recording and dumping is race-detector clean; a slot overwritten
// mid-read is detected by its sequence stamp and skipped rather than
// returned torn. If two writers lap the ring onto the same slot their
// field stores may interleave — the published event can then mix the
// two — which is the accepted imprecision of a best-effort recorder
// (it cannot happen unless one writer stalls for a full ring's worth
// of traffic).
type Flight struct {
	cursor atomic.Uint64
	mask   uint64
	slots  []flightSlot
	names  *Interner
}

// flightSlot is one ring entry, fully atomic. seq is 0 while a write
// is in progress and the 1-based event sequence once published.
type flightSlot struct {
	seq    atomic.Uint64
	packed atomic.Uint64 // stage | ok | class/trigger/kind IDs
	tx     atomic.Uint64
	oid    atomic.Uint64
	fromTo atomic.Uint64 // from (low 32) | to (high 32)
	at     atomic.Int64  // virtual-clock unix nanoseconds
	dur    atomic.Int64  // action latency ns (StageFire)
}

// packed layout: bits 0-15 kindID, 16-31 trigID, 32-47 classID,
// 48-55 stage, 56 ok.
func packFlight(stage Stage, ok bool, classID, trigID, kindID uint16) uint64 {
	p := uint64(kindID) | uint64(trigID)<<16 | uint64(classID)<<32 | uint64(stage)<<48
	if ok {
		p |= 1 << 56
	}
	return p
}

// DefaultFlightCapacity is used when NewFlight is given a non-positive
// capacity.
const DefaultFlightCapacity = 4096

// NewFlight returns a recorder retaining the last capacity events
// (rounded up to a power of two; <= 0 picks the default). names
// resolves interned IDs at dump time and must be the same table the
// recording call sites intern into.
func NewFlight(capacity int, names *Interner) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Flight{mask: uint64(n - 1), slots: make([]flightSlot, n), names: names}
}

// Record stores one event. It is safe for concurrent use, performs no
// allocation and takes no lock: callers pass interned IDs, never
// strings.
func (f *Flight) Record(stage Stage, atNs int64, txid, oid uint64,
	classID, trigID, kindID uint16, from, to int, ok bool, durNs int64) {
	seq := f.cursor.Add(1)
	s := &f.slots[(seq-1)&f.mask]
	s.seq.Store(0) // mark in progress; readers skip
	s.packed.Store(packFlight(stage, ok, classID, trigID, kindID))
	s.tx.Store(txid)
	s.oid.Store(oid)
	s.fromTo.Store(uint64(uint32(from)) | uint64(uint32(to))<<32)
	s.at.Store(atNs)
	s.dur.Store(durNs)
	s.seq.Store(seq) // publish
}

// Total reports how many events were ever recorded (including ones
// the ring has overwritten).
func (f *Flight) Total() uint64 { return f.cursor.Load() }

// Names exposes the recorder's intern table.
func (f *Flight) Names() *Interner { return f.names }

// FlightEvent is one dumped recorder entry, JSON-ready. Part is the
// id of the partition whose engine recorded the event — stamped at
// dump time by the owner (each partition has its own recorder), so
// the record path stays a handful of atomic stores.
type FlightEvent struct {
	Seq     uint64 `json:"seq"`
	Part    int    `json:"part"`
	AtNs    int64  `json:"at_ns"`
	Stage   Stage  `json:"stage"`
	TxID    uint64 `json:"tx,omitempty"`
	OID     uint64 `json:"oid,omitempty"`
	Class   string `json:"class,omitempty"`
	Trigger string `json:"trigger,omitempty"`
	Kind    string `json:"kind,omitempty"`
	From    int    `json:"from"`
	To      int    `json:"to"`
	OK      bool   `json:"ok"`
	DurNs   int64  `json:"dur_ns,omitempty"`
}

// Events returns up to last recent events in chronological order
// (last <= 0 means the full retained window). Slots being overwritten
// during the scan are detected by their sequence stamps and skipped.
func (f *Flight) Events(last int) []FlightEvent {
	cur := f.cursor.Load()
	n := uint64(len(f.slots))
	if cur < n {
		n = cur
	}
	if last > 0 && uint64(last) < n {
		n = uint64(last)
	}
	out := make([]FlightEvent, 0, n)
	for seq := cur - n + 1; seq <= cur; seq++ {
		s := &f.slots[(seq-1)&f.mask]
		got := s.seq.Load()
		if got != seq {
			continue // overwritten or still being written
		}
		packed := s.packed.Load()
		ev := FlightEvent{
			Seq:   got,
			AtNs:  s.at.Load(),
			TxID:  s.tx.Load(),
			OID:   s.oid.Load(),
			DurNs: s.dur.Load(),
		}
		ft := s.fromTo.Load()
		if s.seq.Load() != seq {
			continue // torn: a writer lapped us mid-read
		}
		ev.Stage = Stage(packed >> 48 & 0xff)
		ev.OK = packed>>56&1 == 1
		ev.Class = f.names.Name(uint16(packed >> 32))
		ev.Trigger = f.names.Name(uint16(packed >> 16))
		ev.Kind = f.names.Name(uint16(packed))
		ev.From = int(int32(uint32(ft)))
		ev.To = int(int32(uint32(ft >> 32)))
		out = append(out, ev)
	}
	return out
}

// Interner maps strings to dense uint16 IDs so hot paths can record
// names without carrying string headers (and without allocating). ID 0
// is reserved for the empty string. The table is append-only and caps
// at 65535 distinct names; later strings all map to 0 — acceptable for
// its use (class/trigger/kind/timer names, a bounded registry).
type Interner struct {
	mu    sync.Mutex
	ids   map[string]uint16
	names []string
}

// NewInterner returns an empty table.
func NewInterner() *Interner {
	return &Interner{ids: map[string]uint16{"": 0}, names: []string{""}}
}

// Intern returns the ID of s, assigning one on first sight.
func (in *Interner) Intern(s string) uint16 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	if len(in.names) > 0xffff {
		return 0
	}
	id := uint16(len(in.names))
	in.ids[s] = id
	in.names = append(in.names, s)
	return id
}

// Name resolves an ID back to its string ("" for unknown IDs).
func (in *Interner) Name(id uint16) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if int(id) < len(in.names) {
		return in.names[id]
	}
	return ""
}
