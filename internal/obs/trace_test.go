package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Trace(Event{Stage: StageStep, From: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Events(0)
	if len(evs) != 4 {
		t.Fatalf("Events(0) returned %d events", len(evs))
	}
	for i, ev := range evs {
		if want := 6 + i; ev.From != want || ev.Seq != uint64(want) {
			t.Fatalf("event %d: From=%d Seq=%d, want %d", i, ev.From, ev.Seq, want)
		}
	}
	if got := r.Events(2); len(got) != 2 || got[0].From != 8 || got[1].From != 9 {
		t.Fatalf("Events(2) = %+v", got)
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(8)
	r.Trace(Event{Stage: StageFire})
	r.Trace(Event{Stage: StageStep})
	evs := r.Events(100)
	if len(evs) != 2 || evs[0].Stage != StageFire || evs[1].Stage != StageStep {
		t.Fatalf("Events = %+v", evs)
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	if len(r.buf) != DefaultRingCapacity {
		t.Fatalf("capacity = %d", len(r.buf))
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Trace(Event{Stage: StageHappening, From: i})
				if i%50 == 0 {
					r.Events(16)
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", r.Total())
	}
	// Sequence numbers of retained events must be the last 64, in order.
	evs := r.Events(0)
	for i, ev := range evs {
		if ev.Seq != uint64(4000-64+i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestStageJSON(t *testing.T) {
	b, err := json.Marshal(Event{Stage: StageTcomplete, At: time.Unix(0, 0).UTC()})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["stage"] != "tcomplete" {
		t.Fatalf("stage marshaled as %v", m["stage"])
	}
	seen := map[string]bool{}
	for s := StageHappening; s <= StageTcomplete; s++ {
		name := s.String()
		if name == "" || seen[name] {
			t.Fatalf("stage %d has bad or duplicate name %q", s, name)
		}
		seen[name] = true
	}
	if Stage(99).String() != "stage(99)" {
		t.Fatalf("unknown stage name = %q", Stage(99).String())
	}
}

func TestTraceDoesNotAllocate(t *testing.T) {
	r := NewRing(128)
	ev := Event{Stage: StageStep, Class: "account", Trigger: "T", From: 1, To: 2}
	if allocs := testing.AllocsPerRun(200, func() { r.Trace(ev) }); allocs != 0 {
		t.Fatalf("Ring.Trace allocates %.1f per call", allocs)
	}
}
