package obs

import (
	"sync"
	"testing"
	"time"
)

func TestFlightRecordAndDump(t *testing.T) {
	in := NewInterner()
	f := NewFlight(8, in)
	acct := in.Intern("account")
	big := in.Intern("Big")
	dep := in.Intern("after deposit")

	f.Record(StageHappening, 100, 7, 3, acct, 0, dep, 0, 0, true, 0)
	f.Record(StageFire, 200, 7, 3, acct, big, dep, 1, 2, true, 50)

	if got := f.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
	evs := f.Events(0)
	if len(evs) != 2 {
		t.Fatalf("Events = %d entries, want 2", len(evs))
	}
	if evs[0].Stage != StageHappening || evs[0].Class != "account" || evs[0].Kind != "after deposit" {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Stage != StageFire || evs[1].Trigger != "Big" || evs[1].From != 1 || evs[1].To != 2 || evs[1].DurNs != 50 {
		t.Fatalf("second event = %+v", evs[1])
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatalf("events out of order: %d then %d", evs[0].Seq, evs[1].Seq)
	}
}

func TestFlightWrapKeepsMostRecent(t *testing.T) {
	in := NewInterner()
	f := NewFlight(4, in)
	for i := 1; i <= 10; i++ {
		f.Record(StageHappening, int64(i), 0, 0, 0, 0, 0, 0, 0, true, 0)
	}
	evs := f.Events(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.AtNs != want {
			t.Fatalf("event %d at %d, want %d", i, ev.AtNs, want)
		}
	}
	if got := f.Events(2); len(got) != 2 || got[1].AtNs != 10 {
		t.Fatalf("Events(2) = %+v", got)
	}
}

func TestFlightCapacityRounding(t *testing.T) {
	f := NewFlight(3, NewInterner())
	if len(f.slots) != 4 {
		t.Fatalf("capacity 3 rounded to %d slots, want 4", len(f.slots))
	}
	f = NewFlight(0, NewInterner())
	if len(f.slots) != DefaultFlightCapacity {
		t.Fatalf("default capacity = %d, want %d", len(f.slots), DefaultFlightCapacity)
	}
}

func TestFlightConcurrentRecordDump(t *testing.T) {
	in := NewInterner()
	f := NewFlight(64, in)
	id := in.Intern("x")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Record(StageStep, int64(i), uint64(w), uint64(i), id, id, id, i, i+1, i%2 == 0, 0)
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, ev := range f.Events(0) {
			// Published slots must be internally consistent: the packed
			// word always carries StageStep and the interned name.
			if ev.Stage != StageStep || ev.Kind != "x" {
				t.Errorf("torn event leaked: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestFlightRecordDoesNotAllocate(t *testing.T) {
	in := NewInterner()
	f := NewFlight(16, in)
	id := in.Intern("account")
	allocs := testing.AllocsPerRun(200, func() {
		f.Record(StageHappening, 1, 2, 3, id, id, id, 0, 1, true, 0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	if got := in.Intern(""); got != 0 {
		t.Fatalf("Intern(\"\") = %d, want 0", got)
	}
	a := in.Intern("a")
	b := in.Intern("b")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("ids not distinct: a=%d b=%d", a, b)
	}
	if in.Intern("a") != a {
		t.Fatal("re-interning changed the ID")
	}
	if in.Name(a) != "a" || in.Name(b) != "b" || in.Name(0) != "" {
		t.Fatal("Name round-trip failed")
	}
	if in.Name(9999) != "" {
		t.Fatal("unknown ID should resolve to empty string")
	}
}
