package obs

import (
	"fmt"
	"io"
	"strings"
)

// This file renders the registry's metrics in the Prometheus text
// exposition format (version 0.0.4, the OpenMetrics-compatible subset
// every scraper accepts), hand-rolled so the engine's /debug/metrics
// endpoint needs no dependency. One metric family per counter, with
// per-trigger series labelled {class, trigger} and the action-latency
// histograms exposed as cumulative le-bucketed series in seconds.

// PromMetric is one extra single-valued series appended after the
// registry families — the engine uses it for its global Stats
// counters and gauges.
type PromMetric struct {
	Name  string
	Help  string
	Type  string // "counter" or "gauge"
	Value float64
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func promHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// WriteProm renders the snapshot plus any extra metrics to w in
// Prometheus text exposition format.
func WriteProm(w io.Writer, snap Snapshot, extra []PromMetric) {
	trigLabels := func(t TriggerSnapshot) string {
		return fmt.Sprintf(`class="%s",trigger="%s"`, promEscape(t.Class), promEscape(t.Trigger))
	}

	type trigCounter struct {
		name, help string
		value      func(TriggerSnapshot) uint64
	}
	families := []trigCounter{
		{"ode_trigger_firings_total", "Trigger actions executed.",
			func(t TriggerSnapshot) uint64 { return t.Firings }},
		{"ode_trigger_steps_total", "Trigger-automaton transitions taken.",
			func(t TriggerSnapshot) uint64 { return t.Steps }},
		{"ode_trigger_mask_evals_total", "Logical-event mask evaluations.",
			func(t TriggerSnapshot) uint64 { return t.MaskEvals }},
		{"ode_trigger_mask_false_total", "Mask evaluations that came out false.",
			func(t TriggerSnapshot) uint64 { return t.MaskFalse }},
		{"ode_trigger_action_errors_total", "Trigger actions that returned an error.",
			func(t TriggerSnapshot) uint64 { return t.ActionErrors }},
	}
	for _, f := range families {
		promHeader(w, f.name, f.help, "counter")
		for _, t := range snap.Triggers {
			fmt.Fprintf(w, "%s{%s} %d\n", f.name, trigLabels(t), f.value(t))
		}
	}

	promHeader(w, "ode_class_happenings_total", "Happenings posted to objects of the class.", "counter")
	for _, c := range snap.Classes {
		fmt.Fprintf(w, "ode_class_happenings_total{class=\"%s\"} %d\n", promEscape(c.Class), c.Happenings)
	}

	const hist = "ode_trigger_action_latency_seconds"
	promHeader(w, hist, "Trigger action wall-clock latency.", "histogram")
	for _, t := range snap.Triggers {
		labels := trigLabels(t)
		var cum uint64
		for _, b := range t.Latency.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n",
				hist, labels, float64(b.UpperNs)/1e9, cum)
		}
		// Snapshot clamps Count to at least the bucket sum, so +Inf is
		// never below the last cumulative bucket.
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", hist, labels, t.Latency.Count)
		fmt.Fprintf(w, "%s_sum{%s} %g\n", hist, labels, float64(t.Latency.SumNs)/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", hist, labels, t.Latency.Count)
	}

	for _, m := range extra {
		typ := m.Type
		if typ == "" {
			typ = "counter"
		}
		promHeader(w, m.Name, m.Help, typ)
		fmt.Fprintf(w, "%s %g\n", m.Name, m.Value)
	}
}
