package obs

import "testing"

func TestProvRingAppendStepsReset(t *testing.T) {
	r := NewProvRing(4)
	for i := 1; i <= 3; i++ {
		r.Append(ProvStep{From: i - 1, To: i, Sym: i})
	}
	steps := r.Steps()
	if len(steps) != 3 {
		t.Fatalf("Steps = %d entries, want 3", len(steps))
	}
	for i, s := range steps {
		if s.Seq != uint64(i+1) || s.To != i+1 {
			t.Fatalf("step %d = %+v", i, s)
		}
	}
	if r.Total() != 3 {
		t.Fatalf("Total = %d, want 3", r.Total())
	}

	r.Reset()
	if r.Total() != 0 || len(r.Steps()) != 0 {
		t.Fatalf("ring not empty after Reset: total=%d steps=%v", r.Total(), r.Steps())
	}
	r.Append(ProvStep{To: 9})
	if s := r.Steps(); len(s) != 1 || s[0].Seq != 1 || s[0].To != 9 {
		t.Fatalf("post-reset steps = %+v", s)
	}
}

func TestProvRingWrapKeepsMostRecent(t *testing.T) {
	r := NewProvRing(4)
	for i := 1; i <= 10; i++ {
		r.Append(ProvStep{Sym: i})
	}
	steps := r.Steps()
	if len(steps) != 4 {
		t.Fatalf("retained %d steps, want 4", len(steps))
	}
	for i, s := range steps {
		if want := 7 + i; s.Sym != want || s.Seq != uint64(want) {
			t.Fatalf("step %d = %+v, want sym/seq %d", i, s, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
}

func TestProvRingDefaultDepth(t *testing.T) {
	r := NewProvRing(0)
	if len(r.buf) != DefaultProvDepth {
		t.Fatalf("default depth = %d, want %d", len(r.buf), DefaultProvDepth)
	}
}

func TestProvRingAppendDoesNotAllocate(t *testing.T) {
	r := NewProvRing(8)
	step := ProvStep{TxID: 1, KindID: 2, Bits: 3, Sym: 4, From: 0, To: 1}
	allocs := testing.AllocsPerRun(200, func() { r.Append(step) })
	if allocs != 0 {
		t.Fatalf("Append allocates %.1f per call, want 0", allocs)
	}
}
