package obs

import "sync"

// ProvStep is one recorded automaton transition of one trigger
// instance: the happening (by interned kind ID and transaction), the
// §5 mask valuation it produced, the alphabet symbol, and the from→to
// state move. A chain of ProvSteps whose states link up is a firing's
// provenance — the exact happening sequence that drove the automaton
// from its start state to acceptance.
type ProvStep struct {
	// Seq is the ring-assigned step number (monotone per instance,
	// survives overwrites).
	Seq  uint64 `json:"seq"`
	TxID uint64 `json:"tx,omitempty"`
	AtNs int64  `json:"at_ns"`
	// KindID is the interned happening-kind name; Kind is resolved
	// from it at query time (Append never touches strings).
	KindID uint16 `json:"-"`
	Kind   string `json:"kind,omitempty"`
	// Bits is the §5 mask valuation, Sym the resulting class-alphabet
	// symbol.
	Bits uint32 `json:"mask_bits"`
	Sym  int    `json:"symbol"`
	// From and To are the automaton states around the transition;
	// Accepted reports whether To accepts (the trigger fired).
	From     int  `json:"from"`
	To       int  `json:"to"`
	Accepted bool `json:"accepted"`
}

// DefaultProvDepth is the per-(object, trigger) ring depth used when
// NewProvRing is given a non-positive capacity. Provenance records
// only state-changing (or accepting) transitions, so a small ring
// spans a long happening history.
const DefaultProvDepth = 32

// ProvRing is a fixed-capacity ring of the most recent ProvSteps of
// one trigger instance. Append is allocation-free (the buffer is laid
// down once); all methods are safe for concurrent use.
type ProvRing struct {
	mu  sync.Mutex
	buf []ProvStep
	seq uint64 // steps ever appended; next step's 1-based number
}

// NewProvRing returns a ring retaining the last capacity steps
// (<= 0 picks DefaultProvDepth).
func NewProvRing(capacity int) *ProvRing {
	if capacity <= 0 {
		capacity = DefaultProvDepth
	}
	return &ProvRing{buf: make([]ProvStep, capacity)}
}

// Append records one step, assigning its sequence number.
func (r *ProvRing) Append(s ProvStep) {
	r.mu.Lock()
	r.seq++
	s.Seq = r.seq
	r.buf[int((r.seq-1)%uint64(len(r.buf)))] = s
	r.mu.Unlock()
}

// Reset clears the ring — called when the instance's automaton
// restarts (trigger re-activation), since provenance of the previous
// incarnation no longer explains the current state.
func (r *ProvRing) Reset() {
	r.mu.Lock()
	for i := range r.buf {
		r.buf[i] = ProvStep{}
	}
	r.seq = 0
	r.mu.Unlock()
}

// Steps returns the retained steps in chronological order.
func (r *ProvRing) Steps() []ProvStep {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.seq < n {
		n = r.seq
	}
	out := make([]ProvStep, 0, n)
	for seq := r.seq - n + 1; seq <= r.seq; seq++ {
		out = append(out, r.buf[int((seq-1)%uint64(len(r.buf)))])
	}
	return out
}

// Total reports how many steps were ever appended (including ones the
// ring has overwritten).
func (r *ProvRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
