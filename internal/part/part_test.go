package part

import (
	"fmt"
	"sync"
	"testing"

	"ode/internal/engine"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// fireLog collects firings as "trigger/oid" strings; shared across
// partitions (actions append under one mutex).
type fireLog struct {
	mu    sync.Mutex
	fires []string
}

func (l *fireLog) add(s string) {
	l.mu.Lock()
	l.fires = append(l.fires, s)
	l.mu.Unlock()
}

func (l *fireLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.fires...)
}

func (l *fireLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.fires)
}

// bankClass is the test class: two updates, a masked trigger, a
// composite, and an unmasked perpetual.
func bankClass(log *fireLog, extra ...schema.Trigger) (*schema.Class, engine.ClassImpl) {
	cls := &schema.Class{
		Name:   "account",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(1000)}},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"},
			{Name: "Pair", Perpetual: true, Event: "prior(after deposit, after withdraw)"},
			{Name: "AnyDep", Perpetual: true, Event: "after deposit"},
		},
	}
	cls.Triggers = append(cls.Triggers, extra...)
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"deposit": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()+ctx.Arg("a").AsInt()))
			},
			"withdraw": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()-ctx.Arg("a").AsInt()))
			},
		},
		Actions: map[string]engine.ActionFunc{},
	}
	names := []string{"Large", "Pair", "AnyDep"}
	for _, tr := range extra {
		names = append(names, tr.Name)
	}
	for _, name := range names {
		n := name
		impl.Actions[n] = func(ctx *engine.ActionCtx) error {
			if log != nil {
				log.add(fmt.Sprintf("%s/%d", n, ctx.Self))
			}
			return nil
		}
	}
	return cls, impl
}

// openBank opens an N-partition DB with the bank class registered on
// every partition.
func openBank(t *testing.T, n int, dir string, log *fireLog, opts engine.Options, extra ...schema.Trigger) *DB {
	t.Helper()
	db, err := Open(Options{N: n, Dir: dir, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	cls, impl := bankClass(log, extra...)
	if err := db.Register(func(_ int, e *engine.Engine) error {
		_, rerr := e.RegisterClass(cls, impl, nil)
		return rerr
	}); err != nil {
		db.Close()
		t.Fatal(err)
	}
	return db
}

// newAccounts creates one activated account per partition and returns
// the OIDs in partition order.
func newAccounts(t *testing.T, db *DB) []store.OID {
	t.Helper()
	oids := make([]store.OID, db.N())
	for p := range oids {
		err := db.Transact(p, func(tx *engine.Tx) error {
			oid, err := tx.NewObject("account", nil)
			if err != nil {
				return err
			}
			oids[p] = oid
			for _, name := range []string{"Large", "Pair", "AnyDep"} {
				if err := tx.Activate(oid, name); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return oids
}

// TestPartitionedPostingBasics drives calls to objects on every
// partition and checks trigger state, firings and stats aggregate.
func TestPartitionedPostingBasics(t *testing.T) {
	log := &fireLog{}
	db := openBank(t, 4, "", log, engine.Options{})
	defer db.Close()
	oids := newAccounts(t, db)

	for _, oid := range oids {
		if _, err := db.Call(oid, "deposit", value.Int(50)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Call(oid, "withdraw", value.Int(200)); err != nil {
			t.Fatal(err)
		}
	}
	db.Drain()

	// Each account: AnyDep on the deposit, Large + Pair on the withdraw.
	if got := log.count(); got != 3*len(oids) {
		t.Fatalf("firings = %d, want %d (%v)", got, 3*len(oids), log.list())
	}
	for _, oid := range oids {
		st, active, err := db.TriggerState(oid, "AnyDep")
		if err != nil || !active {
			t.Fatalf("TriggerState(%d): state=%d active=%v err=%v", oid, st, active, err)
		}
	}
	agg := db.Stats()
	if agg.Firings != uint64(3*len(oids)) {
		t.Fatalf("aggregate Firings = %d, want %d", agg.Firings, 3*len(oids))
	}
	var sum uint64
	for _, s := range db.PartitionStats() {
		sum += s.Firings
	}
	if sum != agg.Firings {
		t.Fatalf("per-partition firing sum %d != aggregate %d", sum, agg.Firings)
	}
	if err := db.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedRecoveryIndependent crashes a persistent partitioned
// DB and reopens it: each partition recovers from its own WAL, OIDs
// keep routing to their original partitions, and allocation resumes
// without collisions.
func TestPartitionedRecoveryIndependent(t *testing.T) {
	dir := t.TempDir()
	log := &fireLog{}
	db := openBank(t, 3, dir, log, engine.Options{})
	oids := newAccounts(t, db)
	for _, oid := range oids {
		if _, err := db.Call(oid, "deposit", value.Int(7)); err != nil {
			t.Fatal(err)
		}
	}
	db.Drain()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openBank(t, 3, dir, log, engine.Options{})
	defer db2.Close()
	if err := db2.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
	for p, oid := range oids {
		if got := db2.PartitionOf(oid); got != p {
			t.Fatalf("object %d routed to %d after reopen, want %d", oid, got, p)
		}
		var bal int64
		err := db2.Transact(p, func(tx *engine.Tx) error {
			v, err := tx.Get(oid, "balance")
			bal = v.AsInt()
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if bal != 1007 {
			t.Fatalf("object %d balance = %d after recovery, want 1007", oid, bal)
		}
	}
	// New allocations stay in each partition's residue class and do not
	// collide with recovered objects.
	fresh := newAccounts(t, db2)
	for p, oid := range fresh {
		if oid == oids[p] {
			t.Fatalf("partition %d reallocated OID %d", p, oid)
		}
		if got := db2.PartitionOf(oid); got != p {
			t.Fatalf("fresh object %d routed to %d, want %d", oid, got, p)
		}
	}
	if err := db2.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
}

// TestTransactIsPartitionLocal pins the partition-local transaction
// contract: accessing an OID owned by another partition fails (the
// object does not exist in this partition's store) instead of
// silently touching foreign state.
func TestTransactIsPartitionLocal(t *testing.T) {
	db := openBank(t, 2, "", nil, engine.Options{})
	defer db.Close()
	oids := newAccounts(t, db)

	err := db.Transact(0, func(tx *engine.Tx) error {
		_, err := tx.Call(oids[1], "deposit", value.Int(1))
		return err
	})
	if err == nil {
		t.Fatal("cross-partition access inside a transaction succeeded")
	}
}

// TestDoFromLoopWouldDeadlockUseRelay documents the supported
// cross-partition path from actions: Relay, not Do. An action on
// partition 0 relays a call to partition 1; after Drain the forwarded
// call has executed there.
func TestRelayFromAction(t *testing.T) {
	log := &fireLog{}
	db := openBank(t, 2, "", log, engine.Options{})
	defer db.Close()
	oids := newAccounts(t, db)

	// Rebind Large's action on partition 0 to relay a deposit to the
	// partner account on partition 1. Registration already happened, so
	// install a fresh class under a new name instead.
	cls, impl := bankClass(nil)
	cls.Name = "relayacct"
	impl.Actions["Large"] = func(ctx *engine.ActionCtx) error {
		db.RelayCall(0, oids[1], "deposit", value.Int(500))
		return nil
	}
	if err := db.Register(func(_ int, e *engine.Engine) error {
		_, err := e.RegisterClass(cls, impl, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var src store.OID
	err := db.Transact(0, func(tx *engine.Tx) error {
		oid, err := tx.NewObject("relayacct", nil)
		if err != nil {
			return err
		}
		src = oid
		return tx.Activate(oid, "Large")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Call(src, "withdraw", value.Int(999)); err != nil {
		t.Fatal(err)
	}
	db.Drain()
	if errs := db.RelayErrors(); len(errs) != 0 {
		t.Fatalf("relay errors: %v", errs)
	}
	var bal int64
	err = db.Transact(1, func(tx *engine.Tx) error {
		v, err := tx.Get(oids[1], "balance")
		bal = v.AsInt()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1500 {
		t.Fatalf("relayed deposit not applied: balance = %d, want 1500", bal)
	}
	// The forwarded deposit drove partition 1's automata: AnyDep fired
	// on the partner account.
	found := false
	for _, f := range log.list() {
		if f == fmt.Sprintf("AnyDep/%d", oids[1]) {
			found = true
		}
	}
	if !found {
		t.Fatalf("AnyDep did not fire on the relayed deposit: %v", log.list())
	}
}
