package part

import (
	"sort"

	"ode/internal/engine"
	"ode/internal/store"
	"ode/internal/value"
)

// The sequenced cross-partition bus. Composite events whose automata
// reference events on objects in different partitions (`prior`,
// `relative`, `sequence` spanning partitions) are fed by forwarding
// the primitive occurrence to the referencing object's partition as a
// bus message. Each message carries a (source partition, sequence)
// stamp; the receiving loop collects its pending inbox between jobs
// and executes the messages in ascending (seq, source) order, each in
// its own transaction.
//
// Determinism argument: within one source, stamps are assigned in send
// order, so messages from the same source never reorder. Across
// sources, the (seq, source) sort is a fixed total order over whatever
// set of messages is pending at a drain point — so for a fixed
// schedule (the sim harness submits jobs synchronously and inserts
// Drain barriers), the pending set at every drain point, and therefore
// the merged order, is a pure function of the schedule. The §4 shadow
// oracle replays per (object, trigger) instance and sees exactly the
// per-instance subsequence this order induces, so VerifyOracle passes
// on multi-partition runs unchanged.

// ExternalSource is the Relay source id for senders that are not a
// partition (tests, ingest adapters). Its messages sort after any
// partition's at equal sequence numbers.
const ExternalSource = 1 << 30

// busMsg is one forwarded occurrence on the bus.
type busMsg struct {
	src int
	seq uint64
	fn  func(*engine.Engine) error
}

// Relay forwards work to oid's owning partition, stamped with src's
// next bus sequence number. fn runs inside the owning loop (its own
// transaction boundary is up to fn); errors are recorded on the
// receiving partition (RelayErrors). Relay never blocks on the target
// loop, so a trigger action may relay to any partition — including its
// own, where the message is deferred until after the current job (and
// its transaction) finishes. src is the sending partition's id, or
// ExternalSource for non-partition senders.
func (db *DB) Relay(src int, oid store.OID, fn func(*engine.Engine) error) {
	if db.closed.Load() {
		return
	}
	var seqSrc *Partition
	if src >= 0 && src < len(db.parts) {
		seqSrc = db.parts[src]
	} else {
		src = ExternalSource
		seqSrc = db.parts[0] // external senders share partition 0's counter
	}
	tgt := db.parts[db.PartitionOf(oid)]
	m := busMsg{src: src, seq: seqSrc.seqOut.Add(1), fn: fn}
	db.pending.Add(1)
	tgt.busMu.Lock()
	tgt.inbox = append(tgt.inbox, m)
	tgt.busMu.Unlock()
	// Nudge the loop in case it is idle; a full wake channel means a
	// nudge is already pending.
	select {
	case tgt.wake <- struct{}{}:
	default:
	}
}

// RelayCall forwards a primitive occurrence — a method call on oid —
// to oid's owning partition, where it posts in its own transaction.
// This is the bus's canonical payload: the forwarded call's happenings
// drive the cross-partition composite automata on the target object.
func (db *DB) RelayCall(src int, oid store.OID, method string, args ...value.Value) {
	db.Relay(src, oid, func(e *engine.Engine) error {
		return e.Transact(func(tx *engine.Tx) error {
			_, err := tx.Call(oid, method, args...)
			return err
		})
	})
}

// drainBus executes every pending bus message, merging in (seq,
// source) order; it loops because executing a message can enqueue more
// (including to this partition). Runs on the loop goroutine only.
func (p *Partition) drainBus() {
	for {
		p.busMu.Lock()
		msgs := p.inbox
		p.inbox = nil
		p.busMu.Unlock()
		if len(msgs) == 0 {
			return
		}
		// Bus messages run their own transactions; commit any open
		// ingest window first (see ingest.go).
		if err := p.flushIngest(); err != nil {
			p.recordRelayErr(err)
		}
		sort.Slice(msgs, func(i, j int) bool {
			if msgs[i].seq != msgs[j].seq {
				return msgs[i].seq < msgs[j].seq
			}
			return msgs[i].src < msgs[j].src
		})
		for _, m := range msgs {
			if err := m.fn(p.eng); err != nil {
				p.recordRelayErr(err)
			}
			p.db.pending.Add(-1)
		}
	}
}

func (p *Partition) recordRelayErr(err error) {
	p.relayMu.Lock()
	p.relayErrs = append(p.relayErrs, err)
	p.relayMu.Unlock()
}

// RelayErrors returns the errors bus messages delivered to this
// partition have produced (empty in healthy runs).
func (p *Partition) RelayErrors() []error {
	p.relayMu.Lock()
	defer p.relayMu.Unlock()
	out := make([]error, len(p.relayErrs))
	copy(out, p.relayErrs)
	return out
}

// RelayErrors returns the relay errors of every partition, in
// partition order.
func (db *DB) RelayErrors() []error {
	var out []error
	for _, pt := range db.parts {
		out = append(out, pt.RelayErrors()...)
	}
	return out
}
