// Package part is the partitioned scale-out layer over the engine: N
// single-writer partitions, each a blocking-FIFO event loop that owns
// a disjoint OID residue class with its own store stripe set, its own
// WAL (recovery runs per-partition) and its own lock-free committed
// epoch view. Because exactly one goroutine — the partition's loop —
// drives every transaction over a partition's engine, the in-partition
// hot path drops per-object lock acquisition entirely (the engine runs
// with txn single-writer mode on) and the compiled batch posting path
// executes lock-free inside the loop.
//
// The paper keeps all per-trigger state as one integer per (object,
// trigger) (§4), which is what makes object-range partitioning cheap:
// a partition boundary never splits trigger state. Ownership is
// arithmetic, not a table: partition p of N allocates OIDs from the
// residue class p+1, p+1+N, p+1+2N, … (store.Options.OIDBase/OIDStride),
// so PartitionOf(oid) = (oid-1) mod N recomputes the owner from the
// OID alone and routing is stable across restarts by construction.
//
// Events that span partitions ride an explicitly sequenced bus (see
// bus.go): primitive occurrences are forwarded with a (source
// partition, sequence) stamp and each loop merges its pending inbox in
// (seq, source) order between jobs, so for a fixed schedule the order
// in which forwarded events reach a partition's automata is a pure
// function of the schedule — shadow-oracle replay passes unchanged on
// multi-partition runs.
package part

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/engine"
	"ode/internal/store"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("part: database is closed")

// Options configures a partitioned database.
type Options struct {
	// N is the partition count (values < 1 mean 1).
	N int
	// Dir is the persistence root; partition p persists under
	// Dir/p<p>. Empty means every partition is volatile.
	Dir string
	// Engine is the per-partition engine template. Dir, OIDBase,
	// OIDStride, SingleWriter, Partition and DebugAddr are overridden
	// per partition; everything else (ShadowOracle, Faults, flight and
	// provenance sizing, …) applies to each partition alike.
	Engine engine.Options
	// PerPartition, when set, customizes partition p's engine options
	// after the standard overrides — e.g. the sim harness installs a
	// distinct fault registry per partition so WAL faults can target
	// one partition's log.
	PerPartition func(p int, eo *engine.Options)
	// IngestWindow is how many PostBatchIngest pieces a partition
	// coalesces into one transaction before committing (values < 1 mean
	// 16). Larger windows amortize copy-on-write record cloning and
	// commit fan-out across more happenings at the price of a longer
	// window of uncommitted ingest state.
	IngestWindow int
}

// job is one unit of work executed inside a partition's loop. ingest
// marks batch posts that may join the partition's open ingest
// transaction; any other job first flushes it, so at most one
// transaction is ever open on the lock-free engine (ingest.go).
type job struct {
	fn     func(*engine.Engine) error
	done   chan error // nil → fire-and-forget
	ingest bool
}

// Partition is one single-writer slice of the database: an engine
// whose transactions are all driven by the partition's loop goroutine.
type Partition struct {
	id  int
	db  *DB
	eng *engine.Engine

	in      chan job      // blocking FIFO of submitted work
	wake    chan struct{} // capacity 1; nudges an idle loop to drain the bus
	stopped chan struct{} // closed when the loop exits

	// Sequenced cross-partition bus endpoint (bus.go): inbox holds
	// messages other partitions forwarded here; seqOut stamps messages
	// this partition (or an external caller on its behalf) sends.
	busMu  sync.Mutex
	inbox  []busMsg
	seqOut atomic.Uint64

	relayMu   sync.Mutex
	relayErrs []error

	// Ingest coalescing state (ingest.go): owned exclusively by the
	// loop goroutine, like every transaction over the engine.
	ingest      *engine.Tx
	ingestPosts int
}

// DB is a partitioned database: a router over N partitions plus the
// cross-partition bus.
type DB struct {
	opts    Options
	parts   []*Partition
	pending atomic.Int64 // submitted-but-unfinished jobs and bus messages
	closed  atomic.Bool

	debugMu   sync.Mutex
	debugSrvs []*http.Server

	// Merged total-order firing feed (egress.go): every partition's
	// durable egress batches appended in commit order, with a
	// (Part, Seq) → position index for cursor resume.
	feedMu  sync.Mutex
	feed    []store.FiringRecord
	feedPos map[feedKey]uint64
}

// Open starts a partitioned database: each partition opens (and, when
// persistent, recovers) its own engine, then starts its loop.
func Open(opts Options) (*DB, error) {
	n := opts.N
	if n < 1 {
		n = 1
	}
	opts.N = n
	db := &DB{opts: opts}
	for p := 0; p < n; p++ {
		eo := opts.Engine
		eo.Dir = ""
		if opts.Dir != "" {
			eo.Dir = filepath.Join(opts.Dir, fmt.Sprintf("p%d", p))
			if err := os.MkdirAll(eo.Dir, 0o755); err != nil {
				db.closePartial()
				return nil, fmt.Errorf("part: partition %d dir: %w", p, err)
			}
		}
		eo.OIDBase = uint64(p + 1)
		eo.OIDStride = uint64(n)
		eo.SingleWriter = true
		eo.Partition = p
		eo.DebugAddr = "" // the DB serves an aggregate debug endpoint
		if opts.PerPartition != nil {
			opts.PerPartition(p, &eo)
		}
		eng, err := engine.New(eo)
		if err != nil {
			db.closePartial()
			return nil, fmt.Errorf("part: partition %d: %w", p, err)
		}
		pt := &Partition{
			id:      p,
			db:      db,
			eng:     eng,
			in:      make(chan job),
			wake:    make(chan struct{}, 1),
			stopped: make(chan struct{}),
		}
		db.parts = append(db.parts, pt)
	}
	// Merge the recovered per-partition egress logs into the global
	// feed and hook live batches in, before any loop can commit.
	db.seedFeed()
	for _, pt := range db.parts {
		pt.eng.SetFiringSink(db.appendFeed)
	}
	for _, pt := range db.parts {
		go pt.loop()
	}
	return db, nil
}

// closePartial tears down the engines of a failed Open (loops have not
// started yet).
func (db *DB) closePartial() {
	for _, pt := range db.parts {
		pt.eng.Close()
	}
}

// N returns the partition count.
func (db *DB) N() int { return len(db.parts) }

// Partition returns partition p.
func (db *DB) Partition(p int) *Partition { return db.parts[p] }

// ID returns the partition's id.
func (p *Partition) ID() int { return p.id }

// Engine returns the partition's engine. Mutating calls (transactions,
// clock advances) must go through Do/Transact so they run inside the
// loop; reads of always-consistent state (Stats, flight recorder,
// metrics) are safe directly.
func (p *Partition) Engine() *engine.Engine { return p.eng }

// Close drains outstanding work, stops every loop and closes every
// partition engine.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	db.drainPending()
	db.debugMu.Lock()
	srvs := db.debugSrvs
	db.debugSrvs = nil
	db.debugMu.Unlock()
	for _, s := range srvs {
		s.Close()
	}
	var first error
	for _, pt := range db.parts {
		close(pt.in)
	}
	for _, pt := range db.parts {
		<-pt.stopped
		if err := pt.eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// loop is the partition's single writer: it executes submitted jobs in
// FIFO order and merges the bus inbox (deterministically, see bus.go)
// between jobs and whenever woken while idle. All transactions over
// the partition's engine happen on this goroutine — that is what makes
// single-writer (lock-free) mode sound.
func (p *Partition) loop() {
	for {
		select {
		case j, ok := <-p.in:
			if !ok {
				p.drainBus()
				// A still-open ingest transaction is committed on
				// shutdown — PostBatchIngest promises its posts become
				// durable at the latest when the database closes.
				if err := p.flushIngest(); err != nil {
					p.recordRelayErr(fmt.Errorf("part: ingest flush on close: %w", err))
				}
				close(p.stopped)
				return
			}
			if !j.ingest {
				// Non-ingest work must not overlap the open ingest
				// transaction on a lock-free engine: commit it first.
				if err := p.flushIngest(); err != nil {
					p.recordRelayErr(fmt.Errorf("part: ingest flush before job: %w", err))
				}
			}
			err := j.fn(p.eng)
			if j.done != nil {
				j.done <- err
			}
			p.db.pending.Add(-1)
			p.drainBus()
		case <-p.wake:
			p.drainBus()
		}
	}
}

// Do runs fn inside partition p's loop and waits for it. fn receives
// the partition's engine and may run transactions on it. Calling Do
// from inside a job on the same partition would deadlock — from a
// trigger action, forward work with Relay instead.
func (db *DB) Do(p int, fn func(*engine.Engine) error) error {
	if db.closed.Load() {
		return ErrClosed
	}
	done := make(chan error, 1)
	db.pending.Add(1)
	db.parts[p].in <- job{fn: fn, done: done}
	return <-done
}

// DoAsync submits fn to partition p's loop without waiting. done, when
// non-nil, receives fn's result (it must have capacity ≥ 1; callers
// reuse one channel across submissions to keep steady-state submission
// allocation-free).
func (db *DB) DoAsync(p int, fn func(*engine.Engine) error, done chan error) {
	if db.closed.Load() {
		if done != nil {
			done <- ErrClosed
		}
		return
	}
	db.pending.Add(1)
	db.parts[p].in <- job{fn: fn, done: done}
}

// Transact runs fn in a transaction inside partition p's loop,
// committing on nil and aborting on error. The transaction sees only
// partition p's objects.
func (db *DB) Transact(p int, fn func(*engine.Tx) error) error {
	return db.Do(p, func(e *engine.Engine) error { return e.Transact(fn) })
}

// Drain blocks until the database is quiescent: every submitted job
// and every in-flight bus message has executed and no new ones were
// produced. The caller must ensure no concurrent submitters are
// active; Drain is the barrier the sim harness and benchmarks use
// before asserting on cross-partition state.
func (db *DB) Drain() { db.drainPending() }

func (db *DB) drainPending() {
	for db.pending.Load() != 0 {
		runtime.Gosched()
	}
}

// Advance moves every partition's virtual clock forward by d, inside
// each partition's loop in partition order, so due timers post their
// time events from the owning loop — never from the caller's
// goroutine. This is what makes timer delivery partition-aware: an
// `every`/`at` trigger on an object in partition p fires inside p's
// single-writer loop, exactly like any other happening on p.
func (db *DB) Advance(d time.Duration) error {
	var first error
	for p := range db.parts {
		err := db.Do(p, func(e *engine.Engine) error {
			e.Clock().Advance(d)
			return nil
		})
		if err != nil && first == nil {
			first = err
		}
	}
	db.Drain() // timers may have relayed cross-partition work
	return first
}

// AdvanceConcurrent moves every partition's virtual clock forward by d
// with all loops advancing — and delivering their due timers — in
// parallel, then drains relayed work. Per-partition semantics match
// Advance exactly (due timers post from the owning loop); only the
// cross-partition interleaving is relaxed from Advance's partition
// order, which no single partition can observe anyway. This is the
// path a timer storm needs at P>1: with Advance, one slow partition's
// delivery serializes everyone behind it.
func (db *DB) AdvanceConcurrent(d time.Duration) error {
	done := make(chan error, len(db.parts))
	for p := range db.parts {
		db.DoAsync(p, func(e *engine.Engine) error {
			e.Clock().Advance(d)
			return nil
		}, done)
	}
	var first error
	for range db.parts {
		if err := <-done; err != nil && first == nil {
			first = err
		}
	}
	db.Drain() // timers may have relayed cross-partition work
	return first
}

// Now returns partition 0's virtual time (Advance keeps all partition
// clocks in lockstep).
func (db *DB) Now() time.Time { return db.parts[0].eng.Clock().Now() }

// RearmTimers re-creates the volatile timer schedule of every
// partition after reopening a persistent database, inside each owning
// loop.
func (db *DB) RearmTimers() error {
	for p := range db.parts {
		if err := db.Do(p, (*engine.Engine).RearmTimers); err != nil {
			return fmt.Errorf("part: partition %d: %w", p, err)
		}
	}
	return nil
}

// Checkpoint snapshots every partition's store and truncates its WAL.
func (db *DB) Checkpoint() error {
	for p := range db.parts {
		if err := db.Do(p, (*engine.Engine).Checkpoint); err != nil {
			return fmt.Errorf("part: partition %d: %w", p, err)
		}
	}
	return nil
}

// Register applies a registration function to every partition's engine
// in partition order — class and mask-function registration must reach
// all partitions (an object of any class may live in any of them). The
// callback receives the partition id so actions it binds can capture
// their partition (e.g. to Relay). Registration does not go through
// the loops: engine registration takes the engine's own locks and is
// safe concurrently with posting.
func (db *DB) Register(fn func(p int, e *engine.Engine) error) error {
	for _, pt := range db.parts {
		if err := fn(pt.id, pt.eng); err != nil {
			return fmt.Errorf("part: partition %d: %w", pt.id, err)
		}
	}
	return nil
}

// TriggerState reports a trigger instance's automaton state from its
// owning partition (routed through the loop: the live record may be
// mid-transaction otherwise).
func (db *DB) TriggerState(oid store.OID, trigger string) (state int, active bool, err error) {
	p := db.PartitionOf(oid)
	err = db.Do(p, func(e *engine.Engine) error {
		var ierr error
		state, active, ierr = e.TriggerState(oid, trigger)
		return ierr
	})
	return state, active, err
}

// Explain returns the firing provenance of a trigger instance from its
// owning partition.
func (db *DB) Explain(trigger string, oid store.OID) (*engine.Explanation, error) {
	var ex *engine.Explanation
	err := db.Do(db.PartitionOf(oid), func(e *engine.Engine) error {
		var ierr error
		ex, ierr = e.Explain(trigger, oid)
		return ierr
	})
	return ex, err
}

// VerifyOracle replays every partition's shadow-oracle histories (§4)
// inside the owning loops; any divergence is returned. Requires the DB
// to have been opened with Engine.ShadowOracle.
func (db *DB) VerifyOracle() error {
	for p := range db.parts {
		if err := db.Do(p, (*engine.Engine).VerifyOracle); err != nil {
			return fmt.Errorf("part: partition %d: %w", p, err)
		}
	}
	return nil
}
