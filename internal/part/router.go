package part

import (
	"fmt"

	"ode/internal/engine"
	"ode/internal/store"
	"ode/internal/value"
)

// PartitionOf returns the partition that owns oid. Ownership is pure
// arithmetic over the OID — partition p allocates the residue class
// p+1 (mod N) — so the answer never changes across restarts and needs
// no directory. OID 0 (never allocated) maps to partition 0.
func (db *DB) PartitionOf(oid store.OID) int {
	if oid == 0 {
		return 0
	}
	return int((uint64(oid) - 1) % uint64(len(db.parts)))
}

// PartitionOf is the routing function as a free function: the owner of
// oid among n partitions.
func PartitionOf(oid store.OID, n int) int {
	if oid == 0 || n <= 1 {
		return 0
	}
	return int((uint64(oid) - 1) % uint64(n))
}

// NewObject creates an object of the named class on partition p (in
// its own transaction) and returns its OID — which, by construction,
// routes back to p.
func (db *DB) NewObject(p int, class string, fields map[string]value.Value) (store.OID, error) {
	var oid store.OID
	err := db.Transact(p, func(tx *engine.Tx) error {
		var ierr error
		oid, ierr = tx.NewObject(class, fields)
		return ierr
	})
	return oid, err
}

// Call invokes a method on oid in its own transaction inside the
// owning partition's loop and returns the result.
func (db *DB) Call(oid store.OID, method string, args ...value.Value) (value.Value, error) {
	var out value.Value
	err := db.Transact(db.PartitionOf(oid), func(tx *engine.Tx) error {
		var ierr error
		out, ierr = tx.Call(oid, method, args...)
		return ierr
	})
	return out, err
}

// Activate activates a trigger on oid inside the owning partition.
func (db *DB) Activate(oid store.OID, trigger string, params ...value.Value) error {
	return db.Transact(db.PartitionOf(oid), func(tx *engine.Tx) error {
		return tx.Activate(oid, trigger, params...)
	})
}

// SplitBatch routes the entries of one logical batch to per-partition
// batches: entry order within each partition is the logical order (the
// split is stable), and every entry lands in exactly the partition
// PartitionOf assigns its OID — the same route a single post of that
// entry would take. outs must have one (possibly nil) slot per
// partition; non-nil slots are reused via Reset, nil slots are
// allocated, and the filled slice is returned. Entries of different
// partitions commit in different transactions: the logical batch's
// atomicity becomes per-partition atomicity, which is the documented
// partitioned semantics.
func (db *DB) SplitBatch(b *engine.Batch, outs []*engine.Batch) ([]*engine.Batch, error) {
	n := len(db.parts)
	if len(outs) != n {
		outs = make([]*engine.Batch, n)
	}
	for p := 0; p < n; p++ {
		if outs[p] == nil {
			outs[p] = engine.NewBatch(b.Class(), b.Len()/n+1)
		} else {
			outs[p].Reset()
		}
	}
	for i := 0; i < b.Len(); i++ {
		oid, method, args := b.Entry(i)
		outs[db.PartitionOf(oid)].Call(oid, method, args...)
	}
	return outs, nil
}

// PostBatch splits the batch by owning partition and posts each piece
// inside its partition's loop (each piece in its own transaction),
// waiting for all. The first error is returned; pieces on other
// partitions may have committed — atomicity is per partition.
func (db *DB) PostBatch(b *engine.Batch) error {
	if db.closed.Load() {
		return ErrClosed
	}
	outs, err := db.SplitBatch(b, nil)
	if err != nil {
		return err
	}
	dones := make([]chan error, 0, len(outs))
	for p, piece := range outs {
		if piece.Len() == 0 {
			continue
		}
		pc := piece
		done := make(chan error, 1)
		db.DoAsync(p, func(e *engine.Engine) error {
			return e.Transact(func(tx *engine.Tx) error { return tx.PostBatch(pc) })
		}, done)
		dones = append(dones, done)
	}
	var first error
	for _, done := range dones {
		if err := <-done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CheckOwnership verifies that every live object sits in the partition
// the router assigns it — the invariant the OID allocation stride
// maintains. Tests call it after recovery.
func (db *DB) CheckOwnership() error {
	for p, pt := range db.parts {
		for _, oid := range pt.eng.Store().OIDs() {
			if got := db.PartitionOf(oid); got != p {
				return fmt.Errorf("part: object %d lives in partition %d but routes to %d", oid, p, got)
			}
		}
	}
	return nil
}
