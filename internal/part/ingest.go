package part

import (
	"ode/internal/engine"
)

// Ingest coalescing. A single-writer loop owns its partition
// exclusively, so it can safely hold one transaction open across
// consecutive batch posts and commit every IngestWindow posts —
// amortizing copy-on-write record cloning, transaction-boundary
// happenings and commit fan-out over the whole window. A shared
// lock-based engine cannot do this without stalling every other
// writer for the duration of the window, which is exactly where the
// E11 parallel-posting curve plateaued. Ingested state is uncommitted
// (invisible to committed-view triggers and not yet durable) until the
// window fills, FlushIngest runs, or the database closes.

// ingestWindow returns the partition's configured window size.
func (p *Partition) ingestWindow() int {
	if w := p.db.opts.IngestWindow; w >= 1 {
		return w
	}
	return 16
}

// postIngest appends b into the partition's open ingest transaction
// (beginning one if needed) and commits once the window fills. Runs on
// the loop goroutine only.
func (p *Partition) postIngest(e *engine.Engine, b *engine.Batch) error {
	if p.ingest == nil {
		p.ingest = e.Begin()
		p.ingestPosts = 0
	}
	if err := p.ingest.PostBatch(b); err != nil {
		// The window is poisoned: roll the whole transaction away so a
		// bad batch cannot leak earlier posts' effects ambiguously.
		p.ingest.Abort()
		p.ingest = nil
		return err
	}
	p.ingestPosts++
	if p.ingestPosts >= p.ingestWindow() {
		return p.flushIngest()
	}
	return nil
}

// flushIngest commits the open ingest transaction, if any. Runs on the
// loop goroutine only.
func (p *Partition) flushIngest() error {
	if p.ingest == nil {
		return nil
	}
	tx := p.ingest
	p.ingest = nil
	p.ingestPosts = 0
	return tx.Commit()
}

// PostBatchIngest routes b's entries by owning partition (the same
// split as PostBatch) and appends each piece to its partition's open
// ingest transaction, waiting for all pieces to be accepted. Unlike
// PostBatch, the pieces do not commit per post: each partition
// coalesces Options.IngestWindow pieces into one transaction. Call
// FlushIngest to force everything posted so far to commit; Close
// flushes implicitly. Mixing PostBatchIngest with same-partition work
// that must observe the ingested state requires a flush in between.
func (db *DB) PostBatchIngest(b *engine.Batch) error {
	if db.closed.Load() {
		return ErrClosed
	}
	outs, err := db.SplitBatch(b, nil)
	if err != nil {
		return err
	}
	dones := make([]chan error, 0, len(outs))
	for p, piece := range outs {
		if piece.Len() == 0 {
			continue
		}
		pt := db.parts[p]
		pc := piece
		done := make(chan error, 1)
		db.pending.Add(1)
		pt.in <- job{fn: func(e *engine.Engine) error { return pt.postIngest(e, pc) }, done: done, ingest: true}
		dones = append(dones, done)
	}
	var first error
	for _, done := range dones {
		if err := <-done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FlushIngest commits every partition's open ingest transaction. It is
// the barrier between bulk ingest and reads that must observe it.
// (Every non-ingest job submitted through Do/Transact flushes
// implicitly; this returns the commit error to the caller instead of
// the partition's relay-error log.)
func (db *DB) FlushIngest() error {
	if db.closed.Load() {
		return ErrClosed
	}
	var first error
	for _, pt := range db.parts {
		pt := pt
		done := make(chan error, 1)
		db.pending.Add(1)
		pt.in <- job{fn: func(*engine.Engine) error { return pt.flushIngest() }, done: done, ingest: true}
		if err := <-done; err != nil && first == nil {
			first = err
		}
	}
	return first
}
