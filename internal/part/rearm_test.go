package part

import (
	"fmt"
	"testing"
	"time"

	"ode/internal/engine"
	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/store"
)

var timerStart = time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)

// timerTriggers returns the extra timer triggers used by the
// partition-aware timer tests.
func timerTriggers() []schema.Trigger {
	return []schema.Trigger{
		{Name: "Tick", Perpetual: true, Event: "every time(M=10)"},
		{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"},
	}
}

// TestTimersFireInOwningPartition is the regression test for
// partition-aware timer delivery: `every` and `at` triggers on objects
// in different partitions fire under the shared virtual clock, each
// inside its owning partition's loop (the fire events land in the
// owning partition's flight recorder), with per-partition timer-post
// counters advancing.
func TestTimersFireInOwningPartition(t *testing.T) {
	log := &fireLog{}
	db := openBank(t, 3, "", log, engine.Options{Start: timerStart}, timerTriggers()...)
	defer db.Close()
	oids := newAccounts(t, db)
	for _, oid := range oids {
		if err := db.Activate(oid, "Tick"); err != nil {
			t.Fatal(err)
		}
		if err := db.Activate(oid, "Daily"); err != nil {
			t.Fatal(err)
		}
	}

	// 08:00 → 09:00: six 10-minute ticks per object, no Daily yet.
	if err := db.Advance(time.Hour); err != nil {
		t.Fatal(err)
	}
	for p, oid := range oids {
		want := fmt.Sprintf("Tick/%d", oid)
		got := 0
		for _, f := range log.list() {
			if f == want {
				got++
			}
		}
		if got != 6 {
			t.Fatalf("partition %d object %d: %d ticks after 1h, want 6 (%v)", p, oid, got, log.list())
		}
		for _, errs := range [][]error{db.Partition(p).Engine().TimerErrors()} {
			if len(errs) != 0 {
				t.Fatalf("partition %d timer errors: %v", p, errs)
			}
		}
	}

	// 09:00 → 18:00 crosses 17:00: Daily fires once per object.
	if err := db.Advance(9 * time.Hour); err != nil {
		t.Fatal(err)
	}
	for p, oid := range oids {
		want := fmt.Sprintf("Daily/%d", oid)
		got := 0
		for _, f := range log.list() {
			if f == want {
				got++
			}
		}
		if got != 1 {
			t.Fatalf("partition %d object %d: Daily fired %d times, want 1", p, oid, got)
		}
	}

	// The owning-loop property, observably: every fire event sits in the
	// flight recorder of the partition that owns the fired object.
	for _, ev := range db.FlightEvents(0) {
		if ev.Stage != obs.StageFire {
			continue
		}
		if own := db.PartitionOf(store.OID(ev.OID)); ev.Part != own {
			t.Fatalf("fire of %s on object %d recorded by partition %d, owner is %d",
				ev.Trigger, ev.OID, ev.Part, own)
		}
	}
	// Each partition posted its own timer happenings.
	for p, s := range db.PartitionStats() {
		if s.TimerPosts == 0 {
			t.Fatalf("partition %d posted no timer events", p)
		}
	}
}

// TestRearmTimersPartitionAware reopens a persistent multi-partition
// database and rearms: every partition re-creates its own volatile
// timer schedule inside its own loop, and a subsequent Advance fires
// the timers of objects on every partition again.
func TestRearmTimersPartitionAware(t *testing.T) {
	dir := t.TempDir()
	log := &fireLog{}
	db := openBank(t, 3, dir, log, engine.Options{Start: timerStart}, timerTriggers()...)
	oids := newAccounts(t, db)
	for _, oid := range oids {
		if err := db.Activate(oid, "Tick"); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Advance(30 * time.Minute); err != nil { // 3 ticks per object
		t.Fatal(err)
	}
	before := log.count()
	if before == 0 {
		t.Fatal("no ticks before crash")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: timers are volatile, so nothing fires until RearmTimers.
	log2 := &fireLog{}
	db2 := openBank(t, 3, dir, log2, engine.Options{Start: timerStart.Add(30 * time.Minute)}, timerTriggers()...)
	defer db2.Close()
	if err := db2.Advance(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := log2.count(); got != 0 {
		t.Fatalf("timers fired before rearm: %v", log2.list())
	}
	if err := db2.RearmTimers(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Advance(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for p, oid := range oids {
		want := fmt.Sprintf("Tick/%d", oid)
		got := 0
		for _, f := range log2.list() {
			if f == want {
				got++
			}
		}
		if got == 0 {
			t.Fatalf("partition %d object %d: no ticks after rearm (%v)", p, oid, log2.list())
		}
	}
	for p := 0; p < db2.N(); p++ {
		if errs := db2.Partition(p).Engine().TimerErrors(); len(errs) != 0 {
			t.Fatalf("partition %d timer errors after rearm: %v", p, errs)
		}
	}
}
