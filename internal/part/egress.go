package part

import (
	"net/http"
	"sort"
	"strconv"

	"ode/internal/store"
)

// The partitioned firing feed: each partition's engine produces its
// own durable, per-partition-sequenced egress log (riding that
// partition's WAL); the DB merges them into one total-order feed.
//
// Two kinds of stability are on offer and it matters which is which:
//
//   - Record identity — (Part, Seq) and the idempotency key derived
//     from (trigger, object, seq) — is durable and absolute: assigned
//     before the partition's WAL write, recovered verbatim, identical
//     across any crash/restart schedule.
//
//   - Global feed positions are process-lifetime stable: live batches
//     append in durable-commit arrival order, and at Open the
//     recovered per-partition logs are merged deterministically by
//     (AtNs, Part, Seq) — the same tie-break the flight-recorder
//     merge uses — so replaying from position 0 after a restart is
//     reproducible. Across a restart, positions of records that were
//     racing commits at crash time may renumber; durable delivery
//     cursors therefore store records (identity), not positions, and
//     re-derive the position at resume via FiringPos.
type feedKey struct {
	part int
	seq  uint64
}

// appendFeed adds one partition's newly durable batch to the merged
// feed (the engine sink calls it from the committing goroutine).
func (db *DB) appendFeed(recs []store.FiringRecord) {
	db.feedMu.Lock()
	for _, r := range recs {
		db.feed = append(db.feed, r)
		db.feedPos[feedKey{r.Part, r.Seq}] = uint64(len(db.feed))
	}
	db.feedMu.Unlock()
}

// seedFeed installs the recovered per-partition logs at Open, merged
// by (AtNs, Part, Seq). Runs before the partition loops start.
func (db *DB) seedFeed() {
	var all []store.FiringRecord
	for _, pt := range db.parts {
		recs, _ := pt.eng.Firings(0, 0)
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.AtNs != b.AtNs {
			return a.AtNs < b.AtNs
		}
		if a.Part != b.Part {
			return a.Part < b.Part
		}
		return a.Seq < b.Seq
	})
	db.feed = all
	db.feedPos = make(map[feedKey]uint64, len(all))
	for i, r := range all {
		db.feedPos[feedKey{r.Part, r.Seq}] = uint64(i + 1)
	}
}

// FiringsAfter implements egress.Source over the merged feed:
// positions are 1-based indexes into it. max <= 0 means no limit.
func (db *DB) FiringsAfter(after uint64, max int) ([]store.FiringRecord, uint64) {
	db.feedMu.Lock()
	defer db.feedMu.Unlock()
	head := uint64(len(db.feed))
	if after >= head {
		return nil, head
	}
	end := head
	if max > 0 && after+uint64(max) < end {
		end = after + uint64(max)
	}
	out := make([]store.FiringRecord, end-after)
	copy(out, db.feed[after:end])
	return out, head
}

// FiringHead implements egress.Source: the merged feed length.
func (db *DB) FiringHead() uint64 {
	db.feedMu.Lock()
	defer db.feedMu.Unlock()
	return uint64(len(db.feed))
}

// FiringPos implements egress.Source: the merged-feed position of the
// record with rec's (Part, Seq) identity, 0 if absent.
func (db *DB) FiringPos(rec store.FiringRecord) uint64 {
	db.feedMu.Lock()
	defer db.feedMu.Unlock()
	return db.feedPos[feedKey{rec.Part, rec.Seq}]
}

// handleDebugFeed serves the merged feed:
// /debug/feed?after=N&max=M (after defaults to 0, max to 1000).
func (db *DB) handleDebugFeed(w http.ResponseWriter, r *http.Request) {
	var after uint64
	if s := r.URL.Query().Get("after"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad after parameter", http.StatusBadRequest)
			return
		}
		after = n
	}
	max := 1000
	if s := r.URL.Query().Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad max parameter", http.StatusBadRequest)
			return
		}
		max = n
	}
	recs, head := db.FiringsAfter(after, max)
	if recs == nil {
		recs = []store.FiringRecord{}
	}
	writeJSON(w, struct {
		Partitions int                  `json:"partitions"`
		Head       uint64               `json:"head"`
		Records    []store.FiringRecord `json:"records"`
	}{len(db.parts), head, recs})
}
