package part

import (
	"math/rand"
	"testing"

	"ode/internal/engine"
	"ode/internal/store"
	"ode/internal/value"
)

// TestRoutingIsTotalAndStable is the router property test: every OID
// routes to exactly one partition (the function is total and in
// range), the routing is pure arithmetic (free function and method
// agree), and it is stable across restarts — the same OID maps to the
// same partition in a reopened database because no directory state is
// involved.
func TestRoutingIsTotalAndStable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		seen := make(map[store.OID]int)
		for i := 0; i < 2000; i++ {
			oid := store.OID(rng.Uint64()%1_000_000 + 1)
			p := PartitionOf(oid, n)
			if p < 0 || p >= n {
				t.Fatalf("n=%d: PartitionOf(%d) = %d out of range", n, oid, p)
			}
			if prev, ok := seen[oid]; ok && prev != p {
				t.Fatalf("n=%d: OID %d routed to both %d and %d", n, oid, prev, p)
			}
			seen[oid] = p
		}
		// Residue-class shape: consecutive OIDs cycle through partitions.
		for oid := store.OID(1); oid <= store.OID(3*n); oid++ {
			if got, want := PartitionOf(oid, n), int((uint64(oid)-1)%uint64(n)); got != want {
				t.Fatalf("n=%d: PartitionOf(%d) = %d, want %d", n, oid, got, want)
			}
		}
	}

	// Stability across restart: allocate in a persistent DB, reopen, and
	// verify both that the method agrees with the free function and that
	// every recovered object still routes to the partition holding it.
	dir := t.TempDir()
	db := openBank(t, 4, dir, nil, engine.Options{})
	oids := newAccounts(t, db)
	routes := make(map[store.OID]int)
	for _, oid := range oids {
		routes[oid] = db.PartitionOf(oid)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openBank(t, 4, dir, nil, engine.Options{})
	defer db2.Close()
	for oid, p := range routes {
		if got := db2.PartitionOf(oid); got != p {
			t.Fatalf("OID %d routed to %d before restart and %d after", oid, p, got)
		}
		if got := PartitionOf(oid, 4); got != p {
			t.Fatalf("method and free function disagree for OID %d: %d vs %d", oid, p, got)
		}
	}
	if err := db2.CheckOwnership(); err != nil {
		t.Fatal(err)
	}
}

// TestSplitBatchMatchesSingleCallRoute is the seeded property test
// pinning batch splitting to the single-post route: a random batch of
// deposits/withdrawals over objects on every partition, posted once
// via PostBatch (split per partition) and once as individual Call
// posts on an identically seeded second database, must produce the
// same balances, the same trigger states and the same per-class
// happening counts.
func TestSplitBatchMatchesSingleCallRoute(t *testing.T) {
	const parts, objsPer, entries = 4, 3, 200
	logA, logB := &fireLog{}, &fireLog{}
	dbA := openBank(t, parts, "", logA, engine.Options{})
	defer dbA.Close()
	dbB := openBank(t, parts, "", logB, engine.Options{})
	defer dbB.Close()

	// Both databases allocate identically (same creation order), so the
	// OID sets coincide.
	var oidsA, oidsB []store.OID
	for i := 0; i < parts*objsPer; i++ {
		p := i % parts
		for _, dst := range []struct {
			db   *DB
			oids *[]store.OID
		}{{dbA, &oidsA}, {dbB, &oidsB}} {
			err := dst.db.Transact(p, func(tx *engine.Tx) error {
				oid, err := tx.NewObject("account", nil)
				if err != nil {
					return err
				}
				*dst.oids = append(*dst.oids, oid)
				for _, name := range []string{"Large", "Pair", "AnyDep"} {
					if err := tx.Activate(oid, name); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range oidsA {
		if oidsA[i] != oidsB[i] {
			t.Fatalf("allocation diverged: %v vs %v", oidsA, oidsB)
		}
	}

	rng := rand.New(rand.NewSource(7))
	b := engine.NewBatch("account", entries)
	type entry struct {
		oid    store.OID
		method string
		amt    int64
	}
	var plan []entry
	for i := 0; i < entries; i++ {
		oid := oidsA[rng.Intn(len(oidsA))]
		method := "deposit"
		if rng.Intn(2) == 1 {
			method = "withdraw"
		}
		amt := int64(rng.Intn(300))
		plan = append(plan, entry{oid, method, amt})
		b.Call(oid, method, value.Int(amt))
	}

	// Route A: one logical batch through the splitter.
	if err := dbA.PostBatch(b); err != nil {
		t.Fatal(err)
	}
	dbA.Drain()
	// Route B: every entry posted singly through the router.
	for _, e := range plan {
		if _, err := dbB.Call(e.oid, e.method, value.Int(e.amt)); err != nil {
			t.Fatal(err)
		}
	}
	dbB.Drain()

	for _, oid := range oidsA {
		p := dbA.PartitionOf(oid)
		var balA, balB int64
		if err := dbA.Transact(p, func(tx *engine.Tx) error {
			v, err := tx.Get(oid, "balance")
			balA = v.AsInt()
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if err := dbB.Transact(p, func(tx *engine.Tx) error {
			v, err := tx.Get(oid, "balance")
			balB = v.AsInt()
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if balA != balB {
			t.Fatalf("OID %d: batch route balance %d != single route balance %d", oid, balA, balB)
		}
		for _, trig := range []string{"Large", "Pair", "AnyDep"} {
			stA, actA, errA := dbA.TriggerState(oid, trig)
			stB, actB, errB := dbB.TriggerState(oid, trig)
			if errA != nil || errB != nil {
				t.Fatalf("TriggerState(%d, %s): %v / %v", oid, trig, errA, errB)
			}
			if stA != stB || actA != actB {
				t.Fatalf("OID %d trigger %s: batch route (%d,%v) != single route (%d,%v)",
					oid, trig, stA, actA, stB, actB)
			}
		}
	}
	// Happenings are not compared: the single route runs one transaction
	// per entry and each transaction posts its own tbegin/tcommit
	// happenings. Firings are route-invariant.
	sa, sb := dbA.Stats(), dbB.Stats()
	if sa.Firings != sb.Firings {
		t.Fatalf("batch route fired %d, single route fired %d", sa.Firings, sb.Firings)
	}
	if logA.count() != logB.count() {
		t.Fatalf("batch route fired %d actions, single route %d", logA.count(), logB.count())
	}
}

// FuzzSplitBatchRoute fuzzes the splitter against the router: every
// entry of a batch built from fuzzed bytes must land in the partition
// that a single post of that entry would use, with per-partition entry
// order preserving logical order.
func FuzzSplitBatchRoute(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 3, 200, 9})
	f.Add(uint8(1), []byte{0})
	f.Add(uint8(8), []byte{255, 254, 17, 17, 17})
	f.Fuzz(func(t *testing.T, nRaw uint8, oidBytes []byte) {
		n := int(nRaw%8) + 1
		db := openBank(t, n, "", nil, engine.Options{})
		defer db.Close()

		b := engine.NewBatch("account", len(oidBytes))
		for _, raw := range oidBytes {
			oid := store.OID(uint64(raw) + 1)
			b.Call(oid, "deposit", value.Int(int64(raw)))
		}
		outs, err := db.SplitBatch(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		var prevIdx []int = make([]int, n) // logical cursor per partition
		for p, piece := range outs {
			total += piece.Len()
			for i := 0; i < piece.Len(); i++ {
				oid, method, args := piece.Entry(i)
				if got := db.PartitionOf(oid); got != p {
					t.Fatalf("entry for OID %d in partition %d's piece, routes to %d", oid, p, got)
				}
				if method != "deposit" || len(args) != 1 {
					t.Fatalf("entry mangled: %s %v", method, args)
				}
				// Order check: this piece's entries appear in the same order
				// as in the logical batch.
				found := -1
				for j := prevIdx[p]; j < b.Len(); j++ {
					loid, _, largs := b.Entry(j)
					if loid == oid && largs[0].AsInt() == args[0].AsInt() {
						found = j
						break
					}
				}
				if found < 0 {
					t.Fatalf("partition %d entry %d (%d, %v) out of logical order", p, i, oid, args)
				}
				prevIdx[p] = found + 1
			}
		}
		if total != b.Len() {
			t.Fatalf("split lost entries: %d in, %d out", b.Len(), total)
		}
	})
}
