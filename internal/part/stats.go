package part

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"

	"ode/internal/engine"
	"ode/internal/obs"
)

// Stats returns the aggregate counter snapshot: the field-wise sum of
// every partition's engine Stats — with one exception: the compile-
// cache counters are process-wide (every engine reads the same hash-
// cons cache), so the aggregate takes them once instead of multiplying
// them by the partition count. Exact when the DB is quiescent (after
// Drain), like any engine snapshot.
func (db *DB) Stats() engine.Stats {
	var agg engine.Stats
	for i, pt := range db.parts {
		s := pt.eng.Stats()
		if i == 0 {
			agg.CompileCacheHits = s.CompileCacheHits
			agg.CompileCacheMisses = s.CompileCacheMisses
		}
		s.CompileCacheHits, s.CompileCacheMisses = 0, 0
		agg = addStats(agg, s)
	}
	return agg
}

// PartitionStats returns each partition's own Stats, in partition
// order.
func (db *DB) PartitionStats() []engine.Stats {
	out := make([]engine.Stats, len(db.parts))
	for i, pt := range db.parts {
		out[i] = pt.eng.Stats()
	}
	return out
}

// addStats sums two snapshots field-wise (Delta's inverse).
func addStats(a, b engine.Stats) engine.Stats {
	return engine.Stats{
		TxBegun:          a.TxBegun + b.TxBegun,
		TxCommitted:      a.TxCommitted + b.TxCommitted,
		TxAborted:        a.TxAborted + b.TxAborted,
		SystemTx:         a.SystemTx + b.SystemTx,
		Happenings:       a.Happenings + b.Happenings,
		Steps:            a.Steps + b.Steps,
		MaskEvals:        a.MaskEvals + b.MaskEvals,
		Firings:          a.Firings + b.Firings,
		TimerPosts:       a.TimerPosts + b.TimerPosts,
		TimerErrsDropped: a.TimerErrsDropped + b.TimerErrsDropped,
		TimersPending:    a.TimersPending + b.TimersPending,
		TimerCohorts:     a.TimerCohorts + b.TimerCohorts,
		TcompleteRounds:  a.TcompleteRounds + b.TcompleteRounds,
		ShadowChecks:     a.ShadowChecks + b.ShadowChecks,
		FaultsInjected:   a.FaultsInjected + b.FaultsInjected,
		FlightEvents:     a.FlightEvents + b.FlightEvents,
		ProvenanceSteps:  a.ProvenanceSteps + b.ProvenanceSteps,
		EgressAppended:   a.EgressAppended + b.EgressAppended,
		EgressSeq:        a.EgressSeq + b.EgressSeq,

		AutomatonTriggers:   a.AutomatonTriggers + b.AutomatonTriggers,
		AutomatonTables:     a.AutomatonTables + b.AutomatonTables,
		AutomatonTableBytes: a.AutomatonTableBytes + b.AutomatonTableBytes,
		CompileCacheHits:    a.CompileCacheHits + b.CompileCacheHits,
		CompileCacheMisses:  a.CompileCacheMisses + b.CompileCacheMisses,
	}
}

// Metrics returns the aggregate per-trigger/per-class metrics view:
// every partition's registry snapshot merged by (class, trigger) key
// (counters summed, latency histograms merged bucket-wise).
func (db *DB) Metrics() obs.Snapshot {
	snaps := make([]obs.Snapshot, len(db.parts))
	for i, pt := range db.parts {
		snaps[i] = pt.eng.Metrics().Snapshot()
	}
	return obs.MergeSnapshots(snaps...)
}

// FlightEvents merges every partition's flight-recorder window into
// one chronological dump: each event carries its partition id (stamped
// at dump time by the owning engine), ordered by virtual timestamp
// with (partition, sequence) as the tie-break.
func (db *DB) FlightEvents(last int) []obs.FlightEvent {
	var out []obs.FlightEvent
	for _, pt := range db.parts {
		out = append(out, pt.eng.FlightEvents(last)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.AtNs != b.AtNs {
			return a.AtNs < b.AtNs
		}
		if a.Part != b.Part {
			return a.Part < b.Part
		}
		return a.Seq < b.Seq
	})
	if last > 0 && len(out) > last {
		out = out[len(out)-last:]
	}
	return out
}

// ExpvarNames publishes (if needed) and returns each partition
// engine's expvar key, in partition order — the consistency tests sum
// the published snapshots against the aggregate Stats.
func (db *DB) ExpvarNames() []string {
	out := make([]string, len(db.parts))
	for i, pt := range db.parts {
		out[i] = pt.eng.ExpvarName()
	}
	return out
}

// DebugHandler returns the partitioned introspection handler:
//
//	/debug/stats          aggregate Stats plus the per-partition array
//	/debug/metrics        aggregate OpenMetrics exposition (merged
//	                      registries + summed ode_engine_* series)
//	/debug/flight?last=N  merged flight dump with partition ids
//	/debug/feed?after=N&max=M  merged durable firing-egress feed
//	/debug/partition/<p>/debug/...  partition p's own engine handler
func (db *DB) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Partitions int            `json:"partitions"`
			Aggregate  engine.Stats   `json:"aggregate"`
			PerPart    []engine.Stats `json:"per_partition"`
		}{len(db.parts), db.Stats(), db.PartitionStats()})
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteProm(w, db.Metrics(), engine.PromExtras(db.Stats()))
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		last := 0
		if s := r.URL.Query().Get("last"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			last = n
		}
		events := db.FlightEvents(last)
		if events == nil {
			events = []obs.FlightEvent{}
		}
		writeJSON(w, struct {
			Partitions int               `json:"partitions"`
			Events     []obs.FlightEvent `json:"events"`
		}{len(db.parts), events})
	})
	mux.HandleFunc("/debug/feed", db.handleDebugFeed)
	for p, pt := range db.parts {
		prefix := fmt.Sprintf("/debug/partition/%d", p)
		mux.Handle(prefix+"/", http.StripPrefix(prefix, pt.eng.DebugHandler()))
	}
	return mux
}

// ServeDebug starts an HTTP listener serving DebugHandler on addr
// ("auto" binds a free localhost port) and returns the bound address.
// The listener runs until Close.
func (db *DB) ServeDebug(addr string) (string, error) {
	if addr == "auto" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("part: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: db.DebugHandler()}
	db.debugMu.Lock()
	db.debugSrvs = append(db.debugSrvs, srv)
	db.debugMu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
