package part

import (
	"testing"

	"ode/internal/engine"
	"ode/internal/schema"
	"ode/internal/value"
)

// TestHotPathAllocBudgetPartitioned extends the engine's hot-path
// budget to the partitioned path: posting a pre-split batch of masked
// non-firing happenings through a partition's loop — single-writer
// mode, so no lock-manager traffic — stays allocation-free per
// happening in steady state. The submission machinery (one reused
// closure, one reused done channel, the job passed by value) adds no
// per-batch garbage either.
func TestHotPathAllocBudgetPartitioned(t *testing.T) {
	db := openBank(t, 2, "", nil, engine.Options{},
		schema.Trigger{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 100"})
	defer db.Close()

	oid, err := db.NewObject(1, "account", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Activate(oid, "Big"); err != nil {
		t.Fatal(err)
	}

	const entries = 64
	b := engine.NewBatch("account", entries)
	for i := 0; i < entries; i++ {
		b.Call(oid, "deposit", value.Int(1)) // mask n > 100 never passes
	}
	// Pin one transaction inside the loop (all jobs run on the loop
	// goroutine, so the Tx never crosses goroutines), matching the
	// engine's own budget test: the measurement isolates the per-
	// happening posting path from per-transaction bookkeeping.
	done := make(chan error, 1)
	var tx *engine.Tx
	db.DoAsync(1, func(e *engine.Engine) error {
		tx = e.Begin()
		// Warm up: first access posts after-tbegin, first PostBatch
		// builds the plan.
		return tx.PostBatch(b)
	}, done)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	defer db.Do(1, func(*engine.Engine) error { tx.Abort(); return nil })

	post := func(*engine.Engine) error { return tx.PostBatch(b) }
	avg := testing.AllocsPerRun(100, func() {
		db.DoAsync(1, post, done)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("partitioned batch posting allocates %.2f objects/batch (%d entries); want 0",
			avg, entries)
	}
	st := db.Partition(1).Engine().Stats()
	if st.Firings != 0 {
		t.Fatalf("mask n > 100 must never pass, got %d firings", st.Firings)
	}
	if st.Happenings == 0 || st.MaskEvals == 0 {
		t.Fatalf("batch posting did not reach the automata: %+v", st)
	}
}
