package part

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ode/internal/engine"
	"ode/internal/store"
	"ode/internal/value"
)

// partLog records per-partition firing sequences: global interleaving
// across loops is scheduler-dependent, but within one partition the
// firing order must be a pure function of the schedule.
type partLog struct {
	mu   sync.Mutex
	seqs map[int][]string
}

func newPartLog() *partLog { return &partLog{seqs: map[int][]string{}} }

func (l *partLog) add(p int, s string) {
	l.mu.Lock()
	l.seqs[p] = append(l.seqs[p], s)
	l.mu.Unlock()
}

// runBusSchedule opens an n-partition DB with the shadow oracle on,
// wires the Large action to relay deposits to a deterministic set of
// partner accounts on other partitions, and drives a fixed seeded
// schedule of withdraw bursts with Drain barriers. It returns the
// per-partition firing sequences and each object's final balance.
func runBusSchedule(t *testing.T, n int, seed int64, steps int) (map[int][]string, map[store.OID]int64) {
	t.Helper()
	plog := newPartLog()
	db, err := Open(Options{N: n, Engine: engine.Options{ShadowOracle: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var oids []store.OID
	cls, impl := bankClass(nil)
	impl.Actions["AnyDep"] = func(ctx *engine.ActionCtx) error {
		plog.add(PartitionOf(ctx.Self, n), fmt.Sprintf("AnyDep/%d", ctx.Self))
		return nil
	}
	impl.Actions["Pair"] = func(ctx *engine.ActionCtx) error {
		plog.add(PartitionOf(ctx.Self, n), fmt.Sprintf("Pair/%d", ctx.Self))
		return nil
	}
	err = db.Register(func(p int, e *engine.Engine) error {
		im := impl
		im.Actions = map[string]engine.ActionFunc{
			"AnyDep": impl.Actions["AnyDep"],
			"Pair":   impl.Actions["Pair"],
			// Large on partition p relays a deposit to the account owned
			// by the next partition (a fixed fan-out: the schedule, not the
			// scheduler, decides who receives what).
			"Large": func(ctx *engine.ActionCtx) error {
				src := p
				plog.add(src, fmt.Sprintf("Large/%d", ctx.Self))
				target := oids[(src+1)%n]
				db.RelayCall(src, target, "deposit", value.Int(11))
				return nil
			},
		}
		_, rerr := e.RegisterClass(cls, im, nil)
		return rerr
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		err := db.Transact(p, func(tx *engine.Tx) error {
			oid, err := tx.NewObject("account", nil)
			if err != nil {
				return err
			}
			oids = append(oids, oid)
			for _, name := range []string{"Large", "Pair", "AnyDep"} {
				if err := tx.Activate(oid, name); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < steps; s++ {
		// A burst of withdraws across partitions, then a barrier: the
		// pending relay set at each barrier is schedule-determined.
		burst := rng.Intn(3) + 1
		for i := 0; i < burst; i++ {
			oid := oids[rng.Intn(len(oids))]
			if _, err := db.Call(oid, "withdraw", value.Int(int64(101+rng.Intn(100)))); err != nil {
				t.Fatal(err)
			}
		}
		db.Drain()
	}
	db.Drain()
	if errs := db.RelayErrors(); len(errs) != 0 {
		t.Fatalf("relay errors: %v", errs)
	}
	if err := db.VerifyOracle(); err != nil {
		t.Fatalf("shadow oracle diverged on multi-partition run: %v", err)
	}

	bals := map[store.OID]int64{}
	for _, oid := range oids {
		oid := oid
		err := db.Transact(db.PartitionOf(oid), func(tx *engine.Tx) error {
			v, err := tx.Get(oid, "balance")
			bals[oid] = v.AsInt()
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	plog.mu.Lock()
	defer plog.mu.Unlock()
	return plog.seqs, bals
}

// TestBusDeterministicReplay runs the same seeded cross-partition
// schedule twice on fresh databases: per-partition firing sequences,
// final balances and the shadow oracle must all agree — the bus's
// (seq, src) merge makes forwarded-event order a function of the
// schedule, not of goroutine timing.
func TestBusDeterministicReplay(t *testing.T) {
	seqs1, bals1 := runBusSchedule(t, 3, 99, 40)
	seqs2, bals2 := runBusSchedule(t, 3, 99, 40)
	if !reflect.DeepEqual(bals1, bals2) {
		t.Fatalf("balances diverged between identical runs:\n%v\n%v", bals1, bals2)
	}
	if !reflect.DeepEqual(seqs1, seqs2) {
		t.Fatalf("per-partition firing sequences diverged:\n%v\n%v", seqs1, seqs2)
	}
	// And a different seed actually produces a different execution (the
	// determinism above is not vacuous).
	_, bals3 := runBusSchedule(t, 3, 100, 40)
	if reflect.DeepEqual(bals1, bals3) {
		t.Log("different seed produced identical balances (possible but unlikely); schedule may be too small")
	}
}

// TestRelayOrderPerSource pins the merge order: messages relayed from
// one source to one target execute in send order, even when they pile
// up in the inbox before the target's loop drains them.
func TestRelayOrderPerSource(t *testing.T) {
	db := openBank(t, 2, "", nil, engine.Options{})
	defer db.Close()
	oids := newAccounts(t, db)

	var mu sync.Mutex
	var got []int64
	// Park partition 1's loop on a slow job so relays accumulate.
	block := make(chan struct{})
	done := make(chan error, 1)
	db.DoAsync(1, func(e *engine.Engine) error { <-block; return nil }, done)
	for i := int64(1); i <= 20; i++ {
		amt := i
		db.Relay(0, oids[1], func(e *engine.Engine) error {
			mu.Lock()
			got = append(got, amt)
			mu.Unlock()
			return e.Transact(func(tx *engine.Tx) error {
				_, err := tx.Call(oids[1], "deposit", value.Int(amt))
				return err
			})
		})
	}
	close(block)
	<-done
	db.Drain()
	if errs := db.RelayErrors(); len(errs) != 0 {
		t.Fatalf("relay errors: %v", errs)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 20 {
		t.Fatalf("executed %d relays, want 20", len(got))
	}
	for i, amt := range got {
		if amt != int64(i+1) {
			t.Fatalf("relay order broken at %d: %v", i, got)
		}
	}
}
