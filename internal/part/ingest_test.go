package part

import (
	"testing"

	"ode/internal/engine"
	"ode/internal/value"
)

// openIngestBank opens a 2-partition volatile DB with IngestWindow w
// and the bank class registered.
func openIngestBank(t *testing.T, w int, log *fireLog) *DB {
	t.Helper()
	db, err := Open(Options{N: 2, IngestWindow: w})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cls, impl := bankClass(log)
	if err := db.Register(func(_ int, e *engine.Engine) error {
		_, rerr := e.RegisterClass(cls, impl, nil)
		return rerr
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestIngestCoalescing pins the window semantics: pieces accumulate in
// one open transaction per partition, commit when the window fills,
// and FlushIngest commits the remainder. Trigger detection runs as the
// happenings post (the automata live inside the transaction), so
// firings do not wait for the flush — only committed visibility does.
func TestIngestCoalescing(t *testing.T) {
	log := &fireLog{}
	db := openIngestBank(t, 2, log)
	oids := newAccounts(t, db)

	bal := func(p int) int64 {
		var v int64
		err := db.Transact(p, func(tx *engine.Tx) error {
			got, err := tx.Get(oids[p], "balance")
			v = got.AsInt()
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	post := func(amount int64) {
		b := engine.NewBatch("account", 2)
		b.Call(oids[0], "deposit", value.Int(amount))
		b.Call(oids[1], "deposit", value.Int(amount))
		if err := db.PostBatchIngest(b); err != nil {
			t.Fatal(err)
		}
	}

	// One piece per partition: window (2) not full, nothing committed —
	// but note bal() itself is a non-ingest job, which flushes. So check
	// firings first (they happen inside the open transaction).
	post(5)
	db.Drain()
	if got := log.count(); got != 2 { // AnyDep on each account
		t.Fatalf("ingested deposits fired %d actions, want 2", got)
	}

	// Second piece fills the window: both partitions commit.
	post(7)
	db.Drain()
	for p := 0; p < 2; p++ {
		if got := bal(p); got != 1012 {
			t.Fatalf("partition %d balance = %d after window commit, want 1012", p, got)
		}
	}

	// A lone piece below the window commits on explicit flush.
	post(3)
	if err := db.FlushIngest(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if got := bal(p); got != 1015 {
			t.Fatalf("partition %d balance = %d after FlushIngest, want 1015", p, got)
		}
	}
	if errs := db.RelayErrors(); len(errs) != 0 {
		t.Fatalf("ingest produced relay errors: %v", errs)
	}
}

// TestIngestFlushedByOtherWork: a non-ingest job on the same partition
// implicitly commits the open ingest transaction first, so at most one
// transaction is ever open on the lock-free engine and ordinary
// routed work observes everything ingested before it.
func TestIngestFlushedByOtherWork(t *testing.T) {
	log := &fireLog{}
	db := openIngestBank(t, 1000, log) // window never fills on its own
	oids := newAccounts(t, db)

	b := engine.NewBatch("account", 1)
	b.Call(oids[0], "deposit", value.Int(40))
	if err := db.PostBatchIngest(b); err != nil {
		t.Fatal(err)
	}
	// The routed Call is a non-ingest job on partition 0: it must see
	// the ingested deposit already committed.
	var v int64
	err := db.Transact(0, func(tx *engine.Tx) error {
		got, err := tx.Get(oids[0], "balance")
		v = got.AsInt()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1040 {
		t.Fatalf("non-ingest job saw balance %d, want 1040 (implicit flush)", v)
	}
	if errs := db.RelayErrors(); len(errs) != 0 {
		t.Fatalf("implicit flush recorded errors: %v", errs)
	}
}

// TestIngestFlushedOnClose: Close commits open ingest windows, so a
// persistent reopen recovers the ingested state.
func TestIngestFlushedOnClose(t *testing.T) {
	dir := t.TempDir()
	db := openBankWindow(t, dir, 1000)
	oids := newAccounts(t, db)

	b := engine.NewBatch("account", 1)
	b.Call(oids[0], "deposit", value.Int(9))
	if err := db.PostBatchIngest(b); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := openBankWindow(t, dir, 1000)
	defer re.Close()
	var v int64
	err := re.Transact(re.PartitionOf(oids[0]), func(tx *engine.Tx) error {
		got, err := tx.Get(oids[0], "balance")
		v = got.AsInt()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1009 {
		t.Fatalf("balance = %d after close+reopen, want 1009 (close flushes ingest)", v)
	}
}

// openBankWindow opens a persistent 2-partition bank DB with the given
// ingest window.
func openBankWindow(t *testing.T, dir string, w int) *DB {
	t.Helper()
	db, err := Open(Options{N: 2, Dir: dir, IngestWindow: w})
	if err != nil {
		t.Fatal(err)
	}
	cls, impl := bankClass(nil)
	if err := db.Register(func(_ int, e *engine.Engine) error {
		_, rerr := e.RegisterClass(cls, impl, nil)
		return rerr
	}); err != nil {
		db.Close()
		t.Fatal(err)
	}
	return db
}
