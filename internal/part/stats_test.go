package part

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ode/internal/engine"
	"ode/internal/obs"
	"ode/internal/value"
)

// workedDB returns a 3-partition DB with activity on every partition.
func workedDB(t *testing.T) *DB {
	t.Helper()
	db := openBank(t, 3, "", &fireLog{}, engine.Options{})
	t.Cleanup(func() { db.Close() })
	oids := newAccounts(t, db)
	for i, oid := range oids {
		for j := 0; j <= i; j++ { // uneven load so per-partition stats differ
			if _, err := db.Call(oid, "deposit", value.Int(50)); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Call(oid, "withdraw", value.Int(200)); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.Drain()
	return db
}

// TestAggregateStatsSumPerPartition: DB.Stats is the field-wise sum of
// PartitionStats, except the process-wide compile-cache counters which
// are taken once.
func TestAggregateStatsSumPerPartition(t *testing.T) {
	db := workedDB(t)
	agg := db.Stats()
	per := db.PartitionStats()
	if len(per) != db.N() {
		t.Fatalf("PartitionStats returned %d entries for %d partitions", len(per), db.N())
	}
	var sum engine.Stats
	for i, s := range per {
		if i > 0 {
			s.CompileCacheHits, s.CompileCacheMisses = 0, 0
		}
		sum = addStats(sum, s)
	}
	if sum != agg {
		t.Fatalf("aggregate != per-partition sum:\nagg %+v\nsum %+v", agg, sum)
	}
	// The uneven load above must actually show up per partition —
	// otherwise the sum test is vacuous.
	if per[0].Firings == per[2].Firings {
		t.Fatalf("expected uneven per-partition load, got %d == %d", per[0].Firings, per[2].Firings)
	}
}

// TestPartitionedDebugConsistency extends the engine's expvar/metrics
// consistency test to the partitioned views: /debug/stats (aggregate +
// per-partition), /debug/metrics (merged exposition), the per-engine
// expvar snapshots and the per-partition sub-handlers must all present
// the same counters while quiescent.
func TestPartitionedDebugConsistency(t *testing.T) {
	db := workedDB(t)
	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()

	// 1. /debug/stats: aggregate equals the sum of the per_partition
	// array it itself reports.
	var statsDoc struct {
		Partitions int            `json:"partitions"`
		Aggregate  engine.Stats   `json:"aggregate"`
		PerPart    []engine.Stats `json:"per_partition"`
	}
	getJSON(t, srv, "/debug/stats", &statsDoc)
	if statsDoc.Partitions != db.N() || len(statsDoc.PerPart) != db.N() {
		t.Fatalf("stats doc shape: %+v", statsDoc)
	}
	var sum engine.Stats
	for i, s := range statsDoc.PerPart {
		if i > 0 {
			s.CompileCacheHits, s.CompileCacheMisses = 0, 0
		}
		sum = addStats(sum, s)
	}
	if sum != statsDoc.Aggregate {
		t.Fatalf("/debug/stats aggregate disagrees with its own per-partition array:\n%+v\n%+v",
			statsDoc.Aggregate, sum)
	}

	// 2. /debug/metrics: the ode_engine_* series carry the aggregate
	// counters, and the per-trigger firing series sum to the aggregate
	// firing total.
	resp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := map[string]float64{}
	var firingSeriesSum float64
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
		if strings.HasPrefix(line, "ode_trigger_firings_total{") {
			firingSeriesSum += v
		}
	}
	agg := statsDoc.Aggregate
	for name, want := range map[string]uint64{
		"ode_engine_tx_begun_total":     agg.TxBegun,
		"ode_engine_tx_committed_total": agg.TxCommitted,
		"ode_engine_happenings_total":   agg.Happenings,
		"ode_engine_steps_total":        agg.Steps,
		"ode_engine_mask_evals_total":   agg.MaskEvals,
		"ode_engine_firings_total":      agg.Firings,
	} {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		if uint64(got) != want {
			t.Fatalf("%s: /debug/metrics says %g, /debug/stats says %d", name, got, want)
		}
	}
	if uint64(firingSeriesSum) != agg.Firings {
		t.Fatalf("per-trigger firing series sum to %g, aggregate Firings is %d",
			firingSeriesSum, agg.Firings)
	}

	// 3. expvar: every partition engine publishes its Stats; the
	// published snapshots sum to the aggregate.
	names := db.ExpvarNames()
	var esum engine.Stats
	for i, name := range names {
		v := expvar.Get(name)
		if v == nil {
			t.Fatalf("expvar %q not published", name)
		}
		var s engine.Stats
		if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
			t.Fatalf("expvar %q: %v", name, err)
		}
		if i > 0 {
			s.CompileCacheHits, s.CompileCacheMisses = 0, 0
		}
		esum = addStats(esum, s)
	}
	if esum != agg {
		t.Fatalf("expvar sum disagrees with aggregate:\n%+v\n%+v", esum, agg)
	}

	// 4. Per-partition sub-handlers: partition p's own /debug/stats is
	// the same snapshot as slot p of the aggregate document.
	for p := 0; p < db.N(); p++ {
		var s engine.Stats
		getJSON(t, srv, "/debug/partition/"+strconv.Itoa(p)+"/debug/stats", &s)
		if s != statsDoc.PerPart[p] {
			t.Fatalf("partition %d sub-handler stats diverge:\n%+v\n%+v", p, s, statsDoc.PerPart[p])
		}
	}

	// 5. /debug/flight: merged events carry valid partition ids in
	// chronological order.
	var flightDoc struct {
		Partitions int               `json:"partitions"`
		Events     []obs.FlightEvent `json:"events"`
	}
	getJSON(t, srv, "/debug/flight", &flightDoc)
	if len(flightDoc.Events) == 0 {
		t.Fatal("merged flight dump is empty")
	}
	lastNs := int64(0)
	for _, ev := range flightDoc.Events {
		if ev.Part < 0 || ev.Part >= db.N() {
			t.Fatalf("flight event with partition id %d", ev.Part)
		}
		if ev.AtNs < lastNs {
			t.Fatalf("merged flight dump out of order: %d after %d", ev.AtNs, lastNs)
		}
		lastNs = ev.AtNs
	}
}

// TestMergeSnapshotsTotals: the merged metrics view preserves counter
// totals (MergeSnapshots neither loses nor double-counts).
func TestMergeSnapshotsTotals(t *testing.T) {
	db := workedDB(t)
	merged := db.Metrics()
	var mergedFirings, perFirings uint64
	for _, tr := range merged.Triggers {
		mergedFirings += tr.Firings
	}
	for _, pt := range db.PartitionStats() {
		perFirings += pt.Firings
	}
	if mergedFirings != perFirings {
		t.Fatalf("merged trigger firings %d != per-partition total %d", mergedFirings, perFirings)
	}
}

// TestPartitionedTimerGauges: the aggregate /debug/metrics exposition
// sums the per-partition timer gauges — every partition tracks its own
// cohorts over the objects it owns.
func TestPartitionedTimerGauges(t *testing.T) {
	db := openBank(t, 3, "", &fireLog{}, engine.Options{Start: timerStart}, timerTriggers()...)
	defer db.Close()
	for _, oid := range newAccounts(t, db) {
		if err := db.Activate(oid, "Tick"); err != nil {
			t.Fatal(err)
		}
		if err := db.Activate(oid, "Daily"); err != nil {
			t.Fatal(err)
		}
	}
	db.Drain()

	var wantPending, wantCohorts uint64
	for _, s := range db.PartitionStats() {
		if s.TimersPending == 0 || s.TimerCohorts == 0 {
			t.Fatalf("partition without timer state: %+v", s)
		}
		wantPending += s.TimersPending
		wantCohorts += s.TimerCohorts
	}

	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if sp := strings.LastIndex(line, " "); sp >= 0 {
			if v, err := strconv.ParseFloat(line[sp+1:], 64); err == nil {
				samples[line[:sp]] = v
			}
		}
	}
	for name, want := range map[string]uint64{
		"ode_engine_timers_pending":             wantPending,
		"ode_engine_timer_cohorts":              wantCohorts,
		"ode_engine_timer_errors_dropped_total": 0,
	} {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		if uint64(got) != want {
			t.Fatalf("%s = %g, want %d", name, got, want)
		}
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s => %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}
