package fault

import (
	"errors"
	"testing"
)

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	if err := r.Check(WALSync); err != nil {
		t.Fatalf("nil registry injected: %v", err)
	}
	if n, err := r.CheckTear(WALWrite, 42); n != 42 || err != nil {
		t.Fatalf("nil CheckTear = (%d, %v), want (42, nil)", n, err)
	}
	if r.Consults(WALSync) != 0 || r.Injected() != 0 || r.Armed() != 0 {
		t.Fatal("nil registry reports non-zero counters")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}
	r.Disarm() // must not panic
}

func TestArmAtFiresAtExactOrdinal(t *testing.T) {
	r := New()
	r.ArmAt(WALSync, 3)
	for i := 1; i <= 5; i++ {
		err := r.Check(WALSync)
		if (i == 3) != (err != nil) {
			t.Fatalf("consult %d: err=%v", i, err)
		}
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Point != WALSync || fe.Consult != 3 {
				t.Fatalf("bad typed error: %+v", fe)
			}
		}
	}
	if got := r.Consults(WALSync); got != 5 {
		t.Fatalf("consults = %d, want 5", got)
	}
	if got := r.Injected(); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
}

func TestArmTearClampsToBatch(t *testing.T) {
	r := New()
	r.ArmTear(WALWrite, 1, 1000)
	n, err := r.CheckTear(WALWrite, 64)
	if err == nil || n != 64 {
		t.Fatalf("CheckTear = (%d, %v), want (64, injected)", n, err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Tear != 64 {
		t.Fatalf("tear not clamped in error: %+v", fe)
	}
}

func TestPlainPlanTearMeansWriteNothing(t *testing.T) {
	r := New()
	r.ArmAt(WALWrite, 1)
	n, err := r.CheckTear(WALWrite, 64)
	if err == nil || n != -1 {
		t.Fatalf("CheckTear = (%d, %v), want (-1, injected)", n, err)
	}
}

func TestPlansAreOneShotAndIndependent(t *testing.T) {
	r := New()
	r.ArmAt(LockAcquire, 2)
	r.ArmAt(LockAcquire, 4)
	var fired []int
	for i := 1; i <= 6; i++ {
		if err := r.Check(LockAcquire); err != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("fired at %v, want [2 4]", fired)
	}
	if r.Armed() != 0 {
		t.Fatalf("armed = %d after both fired", r.Armed())
	}
}

func TestArmNextAndDisarm(t *testing.T) {
	r := New()
	r.Check(WALSync)
	r.Check(WALSync)
	r.ArmNext(WALSync) // arms at ordinal 3
	r.ArmNextTear(WALWrite, 10)
	if r.Armed() != 2 {
		t.Fatalf("armed = %d, want 2", r.Armed())
	}
	r.Disarm()
	if r.Armed() != 0 {
		t.Fatalf("armed after Disarm = %d", r.Armed())
	}
	if err := r.Check(WALSync); err != nil {
		t.Fatalf("disarmed plan fired: %v", err)
	}
}

func TestSnapshotShape(t *testing.T) {
	r := New()
	r.ArmAt(WALAfterSync, 1)
	r.Check(WALAfterSync)
	snap := r.Snapshot()
	if len(snap) != int(NumPoints) {
		t.Fatalf("snapshot has %d points, want %d", len(snap), NumPoints)
	}
	ps := snap[WALAfterSync]
	if ps.Point != "wal-after-sync" || ps.Consults != 1 || ps.Injected != 1 || ps.Armed != 0 {
		t.Fatalf("bad point stats: %+v", ps)
	}
}
