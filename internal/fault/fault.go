// Package fault is the seeded fault-injection registry consulted by
// the storage and locking substrates at a small set of named points.
// The simulation harness (internal/sim) arms faults deterministically
// — "fail the Nth WAL sync", "tear the Nth batch write after K bytes"
// — and the substrate reports the injected error exactly as a real
// media or scheduling failure would surface.
//
// Design constraints:
//
//   - Disabled must be free. Every consult site guards with a plain
//     nil check on a *Registry field, so production paths (including
//     the zero-alloc posting hot path) pay one predictable branch and
//     no allocation when no registry is installed.
//
//   - Armed must be deterministic. Faults trigger by consult ordinal:
//     each point keeps a count of how many times it has been
//     consulted, and a plan fires when the count reaches its arming
//     ordinal. Two runs that make the same sequence of consults see
//     the same failures at the same operations.
//
//   - Injected errors must be distinguishable from real ones. Every
//     injected error is a *fault.Error wrapping ErrInjected, so
//     callers (the harness, tests) detect them with errors.Is and
//     recover the point/ordinal with errors.As, while code under test
//     cannot tell them apart from genuine failures.
package fault

import (
	"errors"
	"fmt"
	"sync"
)

// Point names one instrumented location in the substrate.
type Point uint8

const (
	// WALWrite is consulted before the WAL appends a commit batch. An
	// armed plan with Tear >= 0 writes only the first Tear bytes of
	// the batch before failing — a torn batch write; Tear < 0 fails
	// before any byte reaches the file — a crash before commit.
	WALWrite Point = iota
	// WALSync is consulted after the batch bytes are written but
	// before the file is synced: the classic indeterminate commit —
	// the bytes may or may not survive a crash.
	WALSync
	// WALAfterSync is consulted after a successful sync: the commit
	// is durable, but the committer never learns it — a crash after
	// commit, before acknowledgment.
	WALAfterSync
	// LockAcquire is consulted at lock-manager entry and models a
	// lock-acquire timeout: the requesting transaction sees an error
	// and must abort, exactly like a deadlock victim.
	LockAcquire
	// EgressAppend is consulted in LogCommit before firing records are
	// stamped with sequence numbers: an armed plan fails the commit
	// cleanly, before any egress state changes — the committer must
	// abort and nothing reaches the feed.
	EgressAppend
	// EgressCursor is consulted when a delivery cursor persists its
	// position. Plain plans fail before any byte is written; ArmTear
	// plans write a torn prefix of the cursor frame, which the next
	// open must detect and discard.
	EgressCursor
	// EgressDeliver is consulted before the deliverer hands a firing
	// record to the sender, modeling a webhook endpoint failure: the
	// deliverer must retry with backoff and never advance its cursor
	// past the undelivered record.
	EgressDeliver

	// NumPoints bounds the Point space.
	NumPoints
)

var pointNames = [NumPoints]string{
	WALWrite:      "wal-write",
	WALSync:       "wal-sync",
	WALAfterSync:  "wal-after-sync",
	LockAcquire:   "lock-acquire",
	EgressAppend:  "egress-append",
	EgressCursor:  "egress-cursor",
	EgressDeliver: "egress-deliver",
}

func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("fault.Point(%d)", uint8(p))
}

// ErrInjected is the sentinel every injected failure wraps. Harness
// code uses errors.Is(err, fault.ErrInjected) to separate injected
// faults from genuine ones.
var ErrInjected = errors.New("injected fault")

// Error is the concrete injected failure: the point it fired at, the
// 1-based consult ordinal that triggered it, and the torn-write byte
// count (meaningful for WALWrite only, -1 otherwise).
type Error struct {
	Point   Point
	Consult uint64
	Tear    int
}

func (e *Error) Error() string {
	if e.Point == WALWrite && e.Tear >= 0 {
		return fmt.Sprintf("%s: %v at consult %d (torn after %d bytes)", e.Point, ErrInjected, e.Consult, e.Tear)
	}
	return fmt.Sprintf("%s: %v at consult %d", e.Point, ErrInjected, e.Consult)
}

// Is makes errors.Is(err, ErrInjected) true for every *Error.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// plan is one armed one-shot fault.
type plan struct {
	at   uint64 // fire at this 1-based consult ordinal
	tear int    // WALWrite: bytes to let through; -1 = none
}

// PointStats is the per-point slice of a Snapshot.
type PointStats struct {
	Point    string `json:"point"`
	Consults uint64 `json:"consults"`
	Injected uint64 `json:"injected"`
	Armed    int    `json:"armed"`
}

// Registry holds the armed plans and consult counters. The zero
// value is not used directly; call New. All methods are safe on a
// nil receiver (consults are free no-ops), so holders can keep an
// optional *Registry field and call through it unguarded — though
// hot paths still prefer an explicit nil check to skip the call.
type Registry struct {
	mu       sync.Mutex
	consults [NumPoints]uint64
	injected [NumPoints]uint64
	plans    [NumPoints][]plan
}

// New returns an empty registry with nothing armed.
func New() *Registry { return &Registry{} }

// ArmAt arms a one-shot failure at point p, firing when the point is
// consulted for the at-th time counting from the registry's creation
// (1-based; at <= Consults(p) can never fire). Multiple plans may be
// armed at one point; each fires once at its own ordinal.
func (r *Registry) ArmAt(p Point, at uint64) {
	r.arm(p, plan{at: at, tear: -1})
}

// ArmTear arms a torn batch write at point p (normally WALWrite): at
// the at-th consult, only the first tear bytes of the batch are
// written before the failure surfaces. tear is clamped to the batch
// size at fire time.
func (r *Registry) ArmTear(p Point, at uint64, tear int) {
	if tear < 0 {
		tear = 0
	}
	r.arm(p, plan{at: at, tear: tear})
}

// ArmNext arms a one-shot failure at the next consult of p.
func (r *Registry) ArmNext(p Point) {
	r.mu.Lock()
	r.plans[p] = append(r.plans[p], plan{at: r.consults[p] + 1, tear: -1})
	r.mu.Unlock()
}

// ArmNextTear arms a torn write at the next consult of p.
func (r *Registry) ArmNextTear(p Point, tear int) {
	if tear < 0 {
		tear = 0
	}
	r.mu.Lock()
	r.plans[p] = append(r.plans[p], plan{at: r.consults[p] + 1, tear: tear})
	r.mu.Unlock()
}

func (r *Registry) arm(p Point, pl plan) {
	r.mu.Lock()
	r.plans[p] = append(r.plans[p], pl)
	r.mu.Unlock()
}

// Check is the plain consult: it advances p's consult counter and
// returns an injected error if a plan fires at this ordinal, nil
// otherwise. Safe (and free) on a nil receiver.
func (r *Registry) Check(p Point) error {
	_, err := r.CheckTear(p, 0)
	return err
}

// CheckTear is the consult for sites with torn-write semantics: on a
// firing plan armed with ArmTear it returns (bytes-to-write, error)
// with 0 <= bytes <= size; on a plain plan it returns (-1, error)
// meaning write nothing. With no firing plan it returns (size, nil).
func (r *Registry) CheckTear(p Point, size int) (int, error) {
	if r == nil {
		return size, nil
	}
	r.mu.Lock()
	r.consults[p]++
	ord := r.consults[p]
	var fired *plan
	plans := r.plans[p]
	for i := range plans {
		if plans[i].at == ord {
			fired = &plans[i]
			// Remove the fired plan; order among the survivors is
			// irrelevant (they fire by ordinal, not position).
			plans[i] = plans[len(plans)-1]
			r.plans[p] = plans[:len(plans)-1]
			break
		}
	}
	if fired == nil {
		r.mu.Unlock()
		return size, nil
	}
	r.injected[p]++
	r.mu.Unlock()
	tear := fired.tear
	if tear > size {
		tear = size
	}
	return tear, &Error{Point: p, Consult: ord, Tear: tear}
}

// Consults returns how many times p has been consulted.
func (r *Registry) Consults(p Point) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.consults[p]
}

// Injected returns the total number of faults fired across all
// points.
func (r *Registry) Injected() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for _, v := range r.injected {
		n += v
	}
	return n
}

// Armed returns the number of plans still waiting to fire.
func (r *Registry) Armed() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ps := range r.plans {
		n += len(ps)
	}
	return n
}

// Snapshot returns per-point counters for introspection (the
// /debug/faults endpoint). Safe on a nil receiver (returns nil).
func (r *Registry) Snapshot() []PointStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PointStats, NumPoints)
	for p := Point(0); p < NumPoints; p++ {
		out[p] = PointStats{
			Point:    p.String(),
			Consults: r.consults[p],
			Injected: r.injected[p],
			Armed:    len(r.plans[p]),
		}
	}
	return out
}

// ArmedAt returns the consult ordinals of the plans still pending at
// point p, so a harness can preserve selected plans across a Disarm.
// Safe on a nil receiver (returns nil).
func (r *Registry) ArmedAt(p Point) []uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, 0, len(r.plans[p]))
	for _, pl := range r.plans[p] {
		out = append(out, pl.at)
	}
	return out
}

// Disarm removes every pending plan without touching the counters,
// so a harness can abandon scheduled faults after a crash cycle.
func (r *Registry) Disarm() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for p := range r.plans {
		r.plans[p] = nil
	}
	r.mu.Unlock()
}
