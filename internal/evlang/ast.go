package evlang

import (
	"fmt"
	"strings"

	"ode/internal/clock"
	"ode/internal/event"
	"ode/internal/mask"
)

// EvOp identifies a surface event node.
type EvOp int

// Surface event operators. EvMask wraps a composite event with a
// detection-time mask (the paper's logical-composite-event); logical
// event masks live on EvBasic/EvTime nodes directly.
const (
	EvBasic EvOp = iota
	EvTime
	EvOr
	EvAnd
	EvNot
	EvRelative // n-ary; N>0 means counted self-application was used
	EvRelPlus
	EvPrior
	EvSequence
	EvChoose
	EvEvery
	EvFa
	EvFaAbs
	EvMask
)

// Event is a surface event expression, before schema resolution.
type Event struct {
	Op    EvOp
	Basic *Basic     // EvBasic
	Time  *TimeEvent // EvTime
	Mask  *mask.Expr // EvBasic/EvTime: logical mask; EvMask: composite mask
	N     int        // EvChoose, EvEvery, counted relative/prior/sequence
	Args  []*Event
}

// Basic is a basic-event pattern (§3.1): a phase qualifier plus either
// a built-in keyword or a member-function name with optional formal
// parameter declarations.
type Basic struct {
	Phase   event.Phase
	Keyword string   // create delete update read access tbegin tcomplete tcommit tabort, or "" for a method
	Method  string   // method name when Keyword == ""
	Formals []string // declared formal parameter names (positional), methods only
}

// TimeMode distinguishes the three time-event forms.
type TimeMode int

const (
	// TimeAt fires at each calendar match of the spec.
	TimeAt TimeMode = iota
	// TimeEvery fires periodically with the spec read as a period.
	TimeEvery
	// TimeAfter fires once, one period after the trigger is armed.
	TimeAfter
)

func (m TimeMode) String() string {
	switch m {
	case TimeAt:
		return "at"
	case TimeEvery:
		return "every"
	default:
		return "after"
	}
}

// TimeEvent is a time-event pattern (§3.1 item 3).
type TimeEvent struct {
	Mode TimeMode
	Spec clock.TimeSpec
}

// Key is the canonical identity of the time event; happenings carry it
// as the timer kind.
func (te *TimeEvent) Key() string {
	return te.Mode.String() + " " + te.Spec.String()
}

// String renders the surface event in the paper's syntax.
func (e *Event) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Event) format(b *strings.Builder) {
	switch e.Op {
	case EvBasic:
		if e.Basic.Keyword != "" {
			fmt.Fprintf(b, "%s %s", e.Basic.Phase, e.Basic.Keyword)
		} else {
			fmt.Fprintf(b, "%s %s", e.Basic.Phase, e.Basic.Method)
			if len(e.Basic.Formals) > 0 {
				fmt.Fprintf(b, "(%s)", strings.Join(e.Basic.Formals, ", "))
			}
		}
		if e.Mask != nil {
			fmt.Fprintf(b, " && %s", e.Mask)
		}
	case EvTime:
		b.WriteString(e.Time.Key())
		if e.Mask != nil {
			fmt.Fprintf(b, " && %s", e.Mask)
		}
	case EvOr:
		e.formatNary(b, " | ")
	case EvAnd:
		e.formatNary(b, " & ")
	case EvNot:
		b.WriteByte('!')
		e.Args[0].format(b)
	case EvRelative:
		e.formatCall(b, "relative")
	case EvRelPlus:
		e.formatCall(b, "relative+")
	case EvPrior:
		e.formatCall(b, "prior")
	case EvSequence:
		e.formatCall(b, "sequence")
	case EvChoose:
		fmt.Fprintf(b, "choose %d ", e.N)
		e.formatCall(b, "")
	case EvEvery:
		fmt.Fprintf(b, "every %d ", e.N)
		e.formatCall(b, "")
	case EvFa:
		e.formatCall(b, "fa")
	case EvFaAbs:
		e.formatCall(b, "faAbs")
	case EvMask:
		b.WriteByte('(')
		e.Args[0].format(b)
		fmt.Fprintf(b, ") && %s", e.Mask)
	}
}

func (e *Event) formatNary(b *strings.Builder, sep string) {
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(sep)
		}
		a.format(b)
	}
	b.WriteByte(')')
}

func (e *Event) formatCall(b *strings.Builder, name string) {
	b.WriteString(name)
	if e.N > 0 && (e.Op == EvRelative || e.Op == EvPrior || e.Op == EvSequence) {
		fmt.Fprintf(b, " %d ", e.N)
	}
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.format(b)
	}
	b.WriteByte(')')
}

// Walk visits the event tree in preorder.
func (e *Event) Walk(fn func(*Event)) {
	fn(e)
	for _, a := range e.Args {
		a.Walk(fn)
	}
}

// TriggerDecl is a parsed trigger declaration (§2):
//
//	trigger-name(parameters): [perpetual] event ==> trigger-action
//
// Action is the raw action text after ==>; the engine binds it to a
// Go function, a member-function call ("log()"), or the built-in
// tabort statement.
type TriggerDecl struct {
	Name      string
	Params    []string // formal parameter names
	Perpetual bool
	Event     *Event
	Action    string
}
