package evlang

import (
	"math/rand"
	"testing"

	"ode/internal/clock"
	"ode/internal/event"
	"ode/internal/mask"
	"ode/internal/schema"
	"ode/internal/value"
)

// surfaceGen builds random surface events over the fuzz class.
type surfaceGen struct {
	rng *rand.Rand
}

var fuzzMethods = []string{"deposit", "withdraw", "audit"}

func fuzzClass() *schema.Class {
	return &schema.Class{
		Name: "fuzz",
		Fields: []schema.Field{
			{Name: "bal", Kind: value.KindInt, Default: value.Int(0)},
		},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "q", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "q", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "audit", Mode: schema.ModeRead},
		},
	}
}

func (g *surfaceGen) basic() *Event {
	b := &Basic{}
	if g.rng.Intn(2) == 0 {
		b.Phase = event.After
	} else {
		b.Phase = event.Before
	}
	switch g.rng.Intn(4) {
	case 0:
		// A keyword with a legal phase.
		legal := [][2]interface{}{
			{event.After, "create"}, {event.Before, "delete"},
			{event.After, "tbegin"}, {event.Before, "tcomplete"},
			{event.After, "tcommit"}, {event.Before, "tabort"},
			{event.After, "tabort"},
			{b.Phase, "update"}, {b.Phase, "read"}, {b.Phase, "access"},
		}
		pick := legal[g.rng.Intn(len(legal))]
		b.Phase = pick[0].(event.Phase)
		b.Keyword = pick[1].(string)
	default:
		b.Method = fuzzMethods[g.rng.Intn(len(fuzzMethods))]
	}
	e := &Event{Op: EvBasic, Basic: b}
	// Occasionally mask a parameterized method event.
	if b.Method != "" && b.Method != "audit" && g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			b.Formals = []string{"amt"}
			e.Mask = mask.Binary(">", mask.Var("amt"), mask.Lit(value.Int(int64(g.rng.Intn(100)))))
		} else {
			e.Mask = mask.Binary("<", mask.Var("q"), mask.Lit(value.Int(int64(g.rng.Intn(100)))))
		}
	}
	return e
}

func (g *surfaceGen) gen(depth int) *Event {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(8) == 0 {
			spec := clock.EmptyTimeSpec()
			spec.Hour = g.rng.Intn(24)
			return &Event{Op: EvTime, Time: &TimeEvent{
				Mode: TimeMode(g.rng.Intn(3)),
				Spec: spec,
			}}
		}
		return g.basic()
	}
	sub := func() *Event { return g.gen(depth - 1) }
	// The parser flattens |, & and ; chains into one n-ary node, so a
	// canonical AST never nests the same operator directly on the
	// left: splice such children.
	nary := func(op EvOp, parts ...*Event) *Event {
		var args []*Event
		for _, p := range parts {
			if p.Op == op && p.N == 0 {
				args = append(args, p.Args...)
			} else {
				args = append(args, p)
			}
		}
		return &Event{Op: op, Args: args}
	}
	switch g.rng.Intn(11) {
	case 0:
		return nary(EvOr, sub(), sub())
	case 1:
		return nary(EvAnd, sub(), sub())
	case 2:
		return &Event{Op: EvNot, Args: []*Event{sub()}}
	case 3:
		return &Event{Op: EvRelative, Args: []*Event{sub(), sub()}}
	case 4:
		return &Event{Op: EvRelPlus, Args: []*Event{sub()}}
	case 5:
		return &Event{Op: EvPrior, Args: []*Event{sub(), sub(), sub()}}
	case 6:
		return nary(EvSequence, sub(), sub())
	case 7:
		return &Event{Op: EvChoose, N: 1 + g.rng.Intn(5), Args: []*Event{sub()}}
	case 8:
		return &Event{Op: EvEvery, N: 1 + g.rng.Intn(5), Args: []*Event{sub()}}
	case 9:
		return &Event{Op: EvFa, Args: []*Event{sub(), sub(), sub()}}
	default:
		// A composite mask — only over genuinely composite operands:
		// the parser reads "(basic) && m" as a logical mask on the
		// basic event, so EvMask over a basic/time node is a
		// non-canonical AST it never produces.
		inner := sub()
		if inner.Op == EvBasic || inner.Op == EvTime {
			inner = &Event{Op: EvOr, Args: []*Event{inner, g.basic()}}
		}
		return &Event{Op: EvMask,
			Mask: mask.Binary(">", mask.Var("bal"), mask.Lit(value.Int(int64(g.rng.Intn(50))))),
			Args: []*Event{inner}}
	}
}

// TestSurfaceRoundTripFuzz renders random surface events and reparses
// them: the rendering must be stable (parse ∘ render = identity up to
// rendering) and the reparse must resolve to the same algebra
// expression over the same alphabet.
func TestSurfaceRoundTripFuzz(t *testing.T) {
	cls := fuzzClass()
	ps := ForClass(cls)
	rng := rand.New(rand.NewSource(2027))
	g := &surfaceGen{rng: rng}

	iters := 400
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		e := g.gen(3)
		src := e.String()
		back, err := ps.ParseEvent(src)
		if err != nil {
			t.Fatalf("iter %d: re-parse of %q failed: %v", i, src, err)
		}
		if back.String() != src {
			t.Fatalf("iter %d: rendering unstable:\n  first  %s\n  second %s", i, src, back.String())
		}

		// Resolution equality: both resolve to identical algebra
		// expressions (same class, same single trigger).
		mk := func(ev *Event) string {
			c := fuzzClass()
			c.Triggers = []schema.Trigger{{Name: "T", Event: ev.String()}}
			res, err := ResolveClass(c, ForClass(c))
			if err != nil {
				return "unresolvable: " + err.Error()
			}
			return res.Triggers[0].Expr.String()
		}
		a, b := mk(e), mk(back)
		if a != b {
			t.Fatalf("iter %d: resolution differs for %q:\n  %s\n  %s", i, src, a, b)
		}
	}
}
