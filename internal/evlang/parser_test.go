package evlang

import (
	"strings"
	"testing"

	"ode/internal/event"
)

func parseOK(t *testing.T, src string) *Event {
	t.Helper()
	e, err := NewParser().ParseEvent(src)
	if err != nil {
		t.Fatalf("ParseEvent(%q): %v", src, err)
	}
	return e
}

func TestParseBasicEvents(t *testing.T) {
	e := parseOK(t, "after withdraw")
	if e.Op != EvBasic || e.Basic.Method != "withdraw" || e.Basic.Phase != event.After {
		t.Fatalf("parsed %+v", e)
	}
	e = parseOK(t, "before tcomplete")
	if e.Op != EvBasic || e.Basic.Keyword != "tcomplete" || e.Basic.Phase != event.Before {
		t.Fatalf("parsed %+v", e)
	}
	e = parseOK(t, "after withdraw(i, q)")
	if len(e.Basic.Formals) != 2 || e.Basic.Formals[0] != "i" || e.Basic.Formals[1] != "q" {
		t.Fatalf("formals %v", e.Basic.Formals)
	}
	// Typed formals, as in the paper: withdraw(Item i, int q).
	e = parseOK(t, "after withdraw(Item i, int q)")
	if len(e.Basic.Formals) != 2 || e.Basic.Formals[0] != "i" || e.Basic.Formals[1] != "q" {
		t.Fatalf("typed formals %v", e.Basic.Formals)
	}
}

func TestParseLogicalMask(t *testing.T) {
	// The paper's §3.2 large-withdrawal example.
	e := parseOK(t, "after withdraw(i, q) && q > 1000")
	if e.Op != EvBasic || e.Mask == nil {
		t.Fatalf("parsed %+v", e)
	}
	if got := e.Mask.String(); got != "(q > 1000)" {
		t.Fatalf("mask %q", got)
	}
	// Chained && extends the mask, not the event.
	e = parseOK(t, "after withdraw && q > 100 && authorized(user())")
	if e.Op != EvBasic || !strings.Contains(e.Mask.String(), "authorized") {
		t.Fatalf("parsed %v", e)
	}
}

func TestParseCompositeMask(t *testing.T) {
	e := parseOK(t, "(after deposit | after withdraw) && n > 0")
	if e.Op != EvMask || e.Args[0].Op != EvOr {
		t.Fatalf("parsed %+v op=%d", e, e.Op)
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]EvOp{
		"relative(after a, after b)":       EvRelative,
		"relative 5 (after deposit)":       EvRelative,
		"relative+(after a)":               EvRelPlus,
		"prior(after a, after b, after c)": EvPrior,
		"sequence(after a, before b)":      EvSequence,
		"choose 5 (after tcommit)":         EvChoose,
		"every 5 (after access)":           EvEvery,
		"fa(after a, after b, after c)":    EvFa,
		"faAbs(after a, after b, after c)": EvFaAbs,
		"!after deposit":                   EvNot,
		"after a | before b":               EvOr,
		"after a & before b":               EvAnd,
		"after a; before b; after b":       EvSequence,
	}
	for src, op := range cases {
		e := parseOK(t, src)
		if e.Op != op {
			t.Errorf("%q: op %d, want %d", src, e.Op, op)
		}
	}
	// Counted relative keeps N.
	e := parseOK(t, "relative 5 (after deposit)")
	if e.N != 5 || len(e.Args) != 1 {
		t.Fatalf("relative 5: N=%d args=%d", e.N, len(e.Args))
	}
	// Semicolon chains flatten.
	e = parseOK(t, "after a; before b; after b")
	if len(e.Args) != 3 {
		t.Fatalf("seq args %d", len(e.Args))
	}
	// prior list keeps all three.
	e = parseOK(t, "prior(after a, after b, after c)")
	if len(e.Args) != 3 {
		t.Fatalf("prior args %d", len(e.Args))
	}
}

func TestParseTimeEvents(t *testing.T) {
	e := parseOK(t, "at time(HR=17)")
	if e.Op != EvTime || e.Time.Mode != TimeAt || e.Time.Spec.Hour != 17 {
		t.Fatalf("parsed %+v", e.Time)
	}
	e = parseOK(t, "every time(M=5)")
	if e.Time.Mode != TimeEvery || e.Time.Spec.Min != 5 {
		t.Fatalf("parsed %+v", e.Time)
	}
	// The paper's §3.1 delayed event.
	e = parseOK(t, "after time(HR=2, M=30)")
	if e.Time.Mode != TimeAfter || e.Time.Spec.Hour != 2 || e.Time.Spec.Min != 30 {
		t.Fatalf("parsed %+v", e.Time)
	}
	// every with an integer is the occurrence operator, not a timer.
	e = parseOK(t, "every 5 (after tcommit)")
	if e.Op != EvEvery || e.N != 5 {
		t.Fatalf("every-int parsed as %+v", e)
	}
}

func TestParseStateShorthand(t *testing.T) {
	// The paper's only pre-existing Ode event form: a boolean over
	// object state.
	e := parseOK(t, "balance < 500.00")
	if e.Op != EvMask {
		t.Fatalf("shorthand parsed as op %d", e.Op)
	}
	union := e.Args[0]
	if union.Op != EvOr || len(union.Args) != 2 ||
		union.Args[0].Basic.Keyword != "update" || union.Args[1].Basic.Keyword != "create" {
		t.Fatalf("shorthand expansion %v", union)
	}
	// Parenthesized form inside an event operator.
	e = parseOK(t, "relative((pressure < low_limit), after motorStop)")
	if e.Op != EvRelative || e.Args[0].Op != EvMask {
		t.Fatalf("nested shorthand %+v", e)
	}
}

func TestParseBareMethodShorthand(t *testing.T) {
	// !deposit ≡ !(before deposit | after deposit) (paper §3.3). The
	// shorthand needs the parser to know the class's method names.
	ps := NewParser()
	ps.Methods = map[string]bool{"deposit": true}
	e, err := ps.ParseEvent("!deposit")
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != EvNot || e.Args[0].Op != EvOr {
		t.Fatalf("parsed %+v", e)
	}
	or := e.Args[0]
	if or.Args[0].Basic.Method != "deposit" || or.Args[0].Basic.Phase != event.Before ||
		or.Args[1].Basic.Phase != event.After {
		t.Fatalf("expansion %+v", or)
	}
}

func TestParseDefines(t *testing.T) {
	ps := NewParser()
	if err := ps.Define("dayEnd", "at time(HR=17)"); err != nil {
		t.Fatal(err)
	}
	if err := ps.Define("pDrop", "pressure < low_limit"); err != nil {
		t.Fatal(err)
	}
	if err := ps.Define("valveOpen", "relative(after motorStart, after motorStop)"); err != nil {
		t.Fatal(err)
	}
	e, err := ps.ParseEvent("relative(pDrop, valveOpen)")
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != EvRelative || e.Args[0].Op != EvMask || e.Args[1].Op != EvRelative {
		t.Fatalf("defines substitution: %s", e)
	}
	// A bare define at top level is an event.
	e, err = ps.ParseEvent("dayEnd")
	if err != nil || e.Op != EvTime {
		t.Fatalf("bare define: %v, %v", e, err)
	}
}

func TestParseTriggerDecl(t *testing.T) {
	ps := NewParser()
	d, err := ps.ParseTrigger("T1(): perpetual before withdraw && !authorized(user()) ==> tabort")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "T1" || !d.Perpetual || d.Action != "tabort" || len(d.Params) != 0 {
		t.Fatalf("decl %+v", d)
	}
	if d.Event.Op != EvBasic || d.Event.Mask == nil {
		t.Fatalf("event %+v", d.Event)
	}

	d, err = ps.ParseTrigger("T2(lvl): after withdraw(i, q) && q > lvl ==> order(i)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Perpetual || len(d.Params) != 1 || d.Params[0] != "lvl" || d.Action != "order(i)" {
		t.Fatalf("decl %+v", d)
	}

	// Typed trigger parameters.
	d, err = ps.ParseTrigger("T9(int lvl, Item it): after deposit ==> log()")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Params) != 2 || d.Params[0] != "lvl" || d.Params[1] != "it" {
		t.Fatalf("typed params %v", d.Params)
	}

	// State-shorthand trigger event.
	d, err = ps.ParseTrigger("Low(): balance < 500.00 ==> warn()")
	if err != nil {
		t.Fatal(err)
	}
	if d.Event.Op != EvMask {
		t.Fatalf("shorthand trigger event %+v", d.Event)
	}
}

func TestParsePaperT8(t *testing.T) {
	// T8: after deposit; before withdraw; after withdraw ==> printLog()
	ps := NewParser()
	d, err := ps.ParseTrigger("T8(): perpetual after deposit; before withdraw; after withdraw ==> printLog()")
	if err != nil {
		t.Fatal(err)
	}
	if d.Event.Op != EvSequence || len(d.Event.Args) != 3 {
		t.Fatalf("T8 event %s", d.Event)
	}
}

func TestParsePaperT4(t *testing.T) {
	ps := NewParser()
	if err := ps.Define("dayBegin", "at time(HR=9)"); err != nil {
		t.Fatal(err)
	}
	src := `relative(dayBegin,
	          prior(choose 5 (after tcommit), after tcommit)
	          & !prior(dayBegin, after tcommit))`
	e, err := ps.ParseEvent(src)
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != EvRelative || e.Args[1].Op != EvAnd {
		t.Fatalf("T4 shape: %s", e)
	}
}

func TestParseErrors(t *testing.T) {
	ps := NewParser()
	for _, src := range []string{
		"",
		"relative(after a",
		"choose (after a)",
		"choose 0 (after a)",
		"every 0 (after a)",
		"prior 0 (after a, after b)",
		"fa(after a, after b)",
		"fa(after a, after b, after c, after d)",
		"after",
		"before time(HR=1)",
		"at time(BAD=1)",
		"at time(HR=)",
		"relative 2 (after a, after b)",
		"after a ==> foo",
		"after a | ",
	} {
		if _, err := ps.ParseEvent(src); err == nil {
			t.Errorf("ParseEvent(%q) succeeded", src)
		}
	}
	for _, src := range []string{
		"T1: after a ==> x",
		"T1() after a ==> x",
		"T1(): after a",
		"T1(): after a ==>",
		"(): after a ==> x",
	} {
		if _, err := ps.ParseTrigger(src); err == nil {
			t.Errorf("ParseTrigger(%q) succeeded", src)
		}
	}
}

func TestEventStringRoundTrip(t *testing.T) {
	ps := NewParser()
	srcs := []string{
		"after withdraw(i, q) && q > 1000",
		"relative(after motorStart, after motorStop)",
		"fa(after tbegin, prior(after update, after tcommit), after tcommit | after tabort)",
		"choose 5 (after tcommit)",
		"every 5 (after access)",
		"after deposit; before withdraw; after withdraw",
		"!(before deposit | after deposit)",
		"at time(HR=9)",
	}
	for _, src := range srcs {
		e, err := ps.ParseEvent(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		again, err := ps.ParseEvent(e.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", e.String(), src, err)
		}
		if e.String() != again.String() {
			t.Errorf("%q: unstable rendering %q vs %q", src, e.String(), again.String())
		}
	}
}
