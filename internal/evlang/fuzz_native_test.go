package evlang

import (
	"strings"
	"testing"
)

// FuzzParseEvent is the native `go test -fuzz` harness for the surface
// parser: arbitrary input must never panic, and whatever does parse
// must render stably (parse ∘ render is the identity on renderings).
// A short -fuzztime run is wired into `make verify` as a smoke test;
// longer campaigns run with
//
//	go test -fuzz FuzzParseEvent ./internal/evlang/
func FuzzParseEvent(f *testing.F) {
	seeds := []string{
		"after deposit",
		"after withdraw",
		"before tcomplete",
		"after withdraw(i, q) && q > 1000",
		"after withdraw && q > 100 && authorized(user())",
		"(after deposit | after withdraw) && n > 0",
		"after deposit; before withdraw; after withdraw",
		"relative(after deposit, after withdraw)",
		"prior(after deposit, after withdraw)",
		"choose 5 (after tcommit)",
		"every 5 (after access)",
		"!(before deposit | after deposit)",
		"after a & before b",
		"at time(HR=17)",
		"after time(HR=2, M=30)",
		"every time(M=5)",
		"balance < 500.00",
		"after withdraw(Item i, int q)",
		"fa(after deposit, after withdraw, relative(after audit, after audit))",
		"",
		"after",
		"after a | ",
		"choose (after a)",
		"at time(BAD=1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cls := fuzzClass()
	f.Fuzz(func(t *testing.T, src string) {
		// Pathological inputs get arbitrarily deep; bound the work, not
		// the grammar.
		if len(src) > 1<<10 {
			return
		}
		ps := ForClass(cls)
		ev, err := ps.ParseEvent(src)
		if err != nil || ev == nil {
			return // rejecting is fine; panicking is the bug
		}
		rendered := ev.String()
		back, err := ps.ParseEvent(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted input does not reparse:\n  input    %q\n  rendered %q\n  error    %v",
				src, rendered, err)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("rendering unstable:\n  input  %q\n  first  %q\n  second %q", src, rendered, again)
		}
		// Renders must stay printable single-line specs.
		if strings.ContainsAny(rendered, "\n\r") {
			t.Fatalf("rendering contains newlines: %q", rendered)
		}
	})
}
