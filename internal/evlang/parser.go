package evlang

import (
	"fmt"
	"strconv"

	"ode/internal/clock"
	"ode/internal/event"
	"ode/internal/mask"
	"ode/internal/schema"
)

// eventKeywords start (or appear inside) event syntax; their presence
// distinguishes an event expression from the bare object-state mask
// shorthand of §3.3 ("balance < 500.00").
var eventKeywords = map[string]bool{
	"before": true, "after": true, "at": true, "every": true,
	"relative": true, "relative+": true, "prior": true, "sequence": true,
	"choose": true, "fa": true, "faAbs": true,
}

// basicKeywords are the built-in basic-event names of §3.1.
var basicKeywords = map[string]bool{
	"create": true, "delete": true, "update": true, "read": true,
	"access": true, "tbegin": true, "tcomplete": true, "tcommit": true,
	"tabort": true,
}

// Parser parses event expressions and trigger declarations. Defines
// plays the role of the paper's #define abbreviations: identifiers in
// event position that name a define are replaced by the defined event.
// Methods holds the class's member-function names, needed to read the
// bare shorthand "f ≡ (before f | after f)" (§3.3) — without it a bare
// identifier can only be the start of an object-state mask.
type Parser struct {
	Defines map[string]*Event
	Methods map[string]bool
}

// NewParser returns a parser with no defines and no known methods.
func NewParser() *Parser { return &Parser{Defines: map[string]*Event{}} }

// Clone returns a parser sharing no mutable state with ps: the define
// and method maps are copied (the *Event values are immutable once
// parsed, so they are shared). Use it when one define-set parser seeds
// several classes — registering a class must not mutate the shared
// parser's method set out from under a concurrent registration.
func (ps *Parser) Clone() *Parser {
	c := &Parser{Defines: make(map[string]*Event, len(ps.Defines))}
	for k, v := range ps.Defines {
		c.Defines[k] = v
	}
	if ps.Methods != nil {
		c.Methods = make(map[string]bool, len(ps.Methods))
		for k, v := range ps.Methods {
			c.Methods[k] = v
		}
	}
	return c
}

// ForClass returns a parser that knows cls's method names.
func ForClass(cls *schema.Class) *Parser {
	ps := NewParser()
	ps.Methods = map[string]bool{}
	for _, m := range cls.Methods {
		ps.Methods[m.Name] = true
	}
	return ps
}

// Define registers a named event abbreviation, parsing its body.
func (ps *Parser) Define(name, src string) error {
	e, err := ps.ParseEvent(src)
	if err != nil {
		return fmt.Errorf("evlang: define %s: %w", name, err)
	}
	ps.Defines[name] = e
	return nil
}

// ParseEvent parses an event expression. A source with no event
// keywords, defines, or sequencing punctuation is the object-state
// shorthand and parses as
//
//	(after update | after create) && mask
func (ps *Parser) ParseEvent(src string) (*Event, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks, defines: ps.Defines, methods: ps.Methods}
	if !p.regionIsEvent(0, len(toks)-1) {
		return p.parseStateShorthand()
	}
	e, err := p.parseEvent()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return e, nil
}

// ParseTrigger parses a full trigger declaration:
//
//	name(params): [perpetual] event ==> action
func (ps *Parser) ParseTrigger(src string) (*TriggerDecl, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks, defines: ps.Defines, methods: ps.Methods}
	d := &TriggerDecl{}
	name := p.next()
	if name.kind != tIdent {
		return nil, p.errorf("expected trigger name, found %q", name.text)
	}
	d.Name = name.text
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		for {
			names, err := p.parseFormal()
			if err != nil {
				return nil, err
			}
			d.Params = append(d.Params, names)
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tIdent && t.text == "perpetual" {
		p.next()
		d.Perpetual = true
	}
	// The event runs until the ==> marker; find it to classify the
	// event region for the state shorthand.
	arrow := -1
	for i := p.pos; i < len(p.toks); i++ {
		if p.toks[i].kind == tPunct && p.toks[i].text == "==>" {
			arrow = i
			break
		}
	}
	if arrow < 0 {
		return nil, p.errorf("missing ==> in trigger declaration")
	}
	var ev *Event
	if p.regionIsEvent(p.pos, arrow) {
		ev, err = p.parseEvent()
		if err != nil {
			return nil, err
		}
	} else {
		sub := &parser{src: p.src, toks: append(append([]tok{}, p.toks[p.pos:arrow]...), tok{kind: tEOF}), defines: p.defines, methods: p.methods}
		ev, err = sub.parseStateShorthand()
		if err != nil {
			return nil, err
		}
		p.pos = arrow
	}
	d.Event = ev
	if err := p.expect("==>"); err != nil {
		return nil, err
	}
	// The action is the raw remainder of the source text.
	at := p.peek().pos
	if p.peek().kind == tEOF {
		return nil, p.errorf("missing action after ==>")
	}
	d.Action = trimSpace(src[at:])
	return d, nil
}

func trimSpace(s string) string {
	i, j := 0, len(s)
	for i < j && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
		i++
	}
	for j > i && (s[j-1] == ' ' || s[j-1] == '\t' || s[j-1] == '\n') {
		j--
	}
	return s[i:j]
}

type parser struct {
	src     string
	toks    []tok
	pos     int
	defines map[string]*Event
	methods map[string]bool
}

func (p *parser) peek() tok { return p.toks[p.pos] }
func (p *parser) peek2() tok {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return tok{kind: tEOF}
}

func (p *parser) next() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(punct string) bool {
	if t := p.peek(); t.kind == tPunct && t.text == punct {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(punct string) error {
	if !p.accept(punct) {
		return p.errorf("expected %q, found %q", punct, p.peek().text)
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("evlang: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

// regionIsEvent reports whether toks[from:to] contains event syntax:
// an event keyword, a define name, or the ';' sequencing punctuation.
func (p *parser) regionIsEvent(from, to int) bool {
	for i := from; i < to && i < len(p.toks); i++ {
		t := p.toks[i]
		if t.kind == tIdent && (eventKeywords[t.text] || p.defines[t.text] != nil || p.methods[t.text]) {
			return true
		}
		if t.kind == tPunct && t.text == ";" {
			return true
		}
	}
	return false
}

// matchParen returns the index of the ')' matching the '(' at open.
func (p *parser) matchParen(open int) int {
	depth := 0
	for i := open; i < len(p.toks); i++ {
		if p.toks[i].kind != tPunct {
			continue
		}
		switch p.toks[i].text {
		case "(":
			depth++
		case ")":
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// parseStateShorthand parses the whole remaining input as a mask and
// wraps it as the paper's object-state event shorthand.
func (p *parser) parseStateShorthand() (*Event, error) {
	m, err := p.parseMask()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return stateEvent(m), nil
}

// stateEvent builds (after update | after create) && m.
func stateEvent(m *mask.Expr) *Event {
	union := &Event{Op: EvOr, Args: []*Event{
		{Op: EvBasic, Basic: &Basic{Phase: event.After, Keyword: "update"}},
		{Op: EvBasic, Basic: &Basic{Phase: event.After, Keyword: "create"}},
	}}
	return &Event{Op: EvMask, Mask: m, Args: []*Event{union}}
}

// Event grammar:
//
//	event   = and { "|" and }
//	and     = seq { "&" seq }
//	seq     = unary { ";" unary }
//	unary   = "!" unary | postfix
//	postfix = primary [ "&&" mask ]
func (p *parser) parseEvent() (*Event, error) {
	e, err := p.parseAndEvent()
	if err != nil {
		return nil, err
	}
	for p.accept("|") {
		r, err := p.parseAndEvent()
		if err != nil {
			return nil, err
		}
		if e.Op == EvOr {
			e.Args = append(e.Args, r)
		} else {
			e = &Event{Op: EvOr, Args: []*Event{e, r}}
		}
	}
	return e, nil
}

func (p *parser) parseAndEvent() (*Event, error) {
	e, err := p.parseSeqEvent()
	if err != nil {
		return nil, err
	}
	for p.accept("&") {
		r, err := p.parseSeqEvent()
		if err != nil {
			return nil, err
		}
		if e.Op == EvAnd {
			e.Args = append(e.Args, r)
		} else {
			e = &Event{Op: EvAnd, Args: []*Event{e, r}}
		}
	}
	return e, nil
}

func (p *parser) parseSeqEvent() (*Event, error) {
	e, err := p.parseUnaryEvent()
	if err != nil {
		return nil, err
	}
	for p.accept(";") {
		r, err := p.parseUnaryEvent()
		if err != nil {
			return nil, err
		}
		if e.Op == EvSequence && e.N == 0 {
			e.Args = append(e.Args, r)
		} else {
			e = &Event{Op: EvSequence, Args: []*Event{e, r}}
		}
	}
	return e, nil
}

func (p *parser) parseUnaryEvent() (*Event, error) {
	if p.accept("!") {
		e, err := p.parseUnaryEvent()
		if err != nil {
			return nil, err
		}
		return &Event{Op: EvNot, Args: []*Event{e}}, nil
	}
	return p.parsePostfixEvent()
}

func (p *parser) parsePostfixEvent() (*Event, error) {
	e, err := p.parsePrimaryEvent()
	if err != nil {
		return nil, err
	}
	if p.accept("&&") {
		m, err := p.parseMask()
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case EvBasic, EvTime:
			if e.Mask != nil {
				e.Mask = mask.Binary("&&", e.Mask, m)
			} else {
				e.Mask = m
			}
		default:
			// Composite mask: evaluated against database state at the
			// detection point (§3.3).
			e = &Event{Op: EvMask, Mask: m, Args: []*Event{e}}
		}
	}
	return e, nil
}

func (p *parser) parsePrimaryEvent() (*Event, error) {
	t := p.peek()
	if t.kind == tPunct && t.text == "(" {
		// Parenthesized event or parenthesized bare mask: classify the
		// group's contents.
		close := p.matchParen(p.pos)
		if close < 0 {
			return nil, p.errorf("unbalanced parenthesis")
		}
		if !p.regionIsEvent(p.pos+1, close) {
			m, err := p.parseMask() // consumes the whole group
			if err != nil {
				return nil, err
			}
			return stateEvent(m), nil
		}
		p.next()
		e, err := p.parseEvent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	if t.kind != tIdent {
		return nil, p.errorf("expected event, found %q", t.text)
	}

	switch t.text {
	case "before", "after":
		return p.parseQualifiedBasic()
	case "at":
		p.next()
		spec, err := p.parseTimeSpec()
		if err != nil {
			return nil, err
		}
		return &Event{Op: EvTime, Time: &TimeEvent{Mode: TimeAt, Spec: spec}}, nil
	case "every":
		// every N (E) vs every time(...).
		if p.peek2().kind == tInt {
			p.next()
			n, err := p.parseCount()
			if err != nil {
				return nil, err
			}
			args, err := p.parseEventArgs(1, 1)
			if err != nil {
				return nil, err
			}
			return &Event{Op: EvEvery, N: n, Args: args}, nil
		}
		p.next()
		spec, err := p.parseTimeSpec()
		if err != nil {
			return nil, err
		}
		return &Event{Op: EvTime, Time: &TimeEvent{Mode: TimeEvery, Spec: spec}}, nil
	case "choose":
		p.next()
		n, err := p.parseCount()
		if err != nil {
			return nil, err
		}
		args, err := p.parseEventArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return &Event{Op: EvChoose, N: n, Args: args}, nil
	case "relative", "prior", "sequence":
		p.next()
		op := map[string]EvOp{"relative": EvRelative, "prior": EvPrior, "sequence": EvSequence}[t.text]
		n := 0
		if p.peek().kind == tInt {
			var err error
			n, err = p.parseCount()
			if err != nil {
				return nil, err
			}
		}
		min, max := 1, -1
		if n > 0 {
			max = 1 // counted form takes exactly one operand
		}
		args, err := p.parseEventArgs(min, max)
		if err != nil {
			return nil, err
		}
		return &Event{Op: op, N: n, Args: args}, nil
	case "relative+":
		p.next()
		args, err := p.parseEventArgs(1, 1)
		if err != nil {
			return nil, err
		}
		return &Event{Op: EvRelPlus, Args: args}, nil
	case "fa", "faAbs":
		p.next()
		op := EvFa
		if t.text == "faAbs" {
			op = EvFaAbs
		}
		args, err := p.parseEventArgs(3, 3)
		if err != nil {
			return nil, err
		}
		return &Event{Op: op, Args: args}, nil
	}

	if def, ok := p.defines[t.text]; ok {
		p.next()
		return def, nil
	}

	// Bare identifier: either the method shorthand f ≡ (before f |
	// after f) — recognizable only when the parser knows the class's
	// methods — or the start of a bare mask (object-state shorthand).
	if p.methods[t.text] && p.bareIdentIsMethodShorthand() {
		p.next()
		return &Event{Op: EvOr, Args: []*Event{
			{Op: EvBasic, Basic: &Basic{Phase: event.Before, Method: t.text}},
			{Op: EvBasic, Basic: &Basic{Phase: event.After, Method: t.text}},
		}}, nil
	}
	m, err := p.parseMask()
	if err != nil {
		return nil, err
	}
	return stateEvent(m), nil
}

// bareIdentIsMethodShorthand looks one token past the identifier: an
// event delimiter means the identifier stands alone as a method-name
// event; anything else starts a mask expression.
func (p *parser) bareIdentIsMethodShorthand() bool {
	nxt := p.peek2()
	if nxt.kind == tEOF {
		return true
	}
	if nxt.kind == tPunct {
		switch nxt.text {
		case ")", ",", ";", "|", "&", "&&":
			return true
		}
	}
	return false
}

func (p *parser) parseQualifiedBasic() (*Event, error) {
	phase := event.Before
	if p.next().text == "after" {
		phase = event.After
	}
	t := p.next()
	if t.kind != tIdent {
		return nil, p.errorf("expected event name after qualifier, found %q", t.text)
	}
	if t.text == "time" {
		// after time(...) — the delayed one-shot time event. Rewind so
		// parseTimeSpec sees the 'time' keyword.
		if phase == event.Before {
			return nil, p.errorf("before time(...) is not a valid event")
		}
		p.pos--
		spec, err := p.parseTimeSpec()
		if err != nil {
			return nil, err
		}
		return &Event{Op: EvTime, Time: &TimeEvent{Mode: TimeAfter, Spec: spec}}, nil
	}
	b := &Basic{Phase: phase}
	if basicKeywords[t.text] {
		b.Keyword = t.text
	} else {
		b.Method = t.text
		if p.accept("(") {
			if !p.accept(")") {
				for {
					name, err := p.parseFormal()
					if err != nil {
						return nil, err
					}
					b.Formals = append(b.Formals, name)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return &Event{Op: EvBasic, Basic: b}, nil
}

// parseFormal parses a formal parameter: NAME or TYPE NAME (the
// paper writes both "withdraw(i, q)" and "withdraw(Item i, int q)").
// The type, when present, is recorded nowhere — the schema is
// authoritative for kinds.
func (p *parser) parseFormal() (string, error) {
	first := p.next()
	if first.kind != tIdent {
		return "", p.errorf("expected parameter name, found %q", first.text)
	}
	if t := p.peek(); t.kind == tIdent {
		p.next()
		return t.text, nil
	}
	return first.text, nil
}

func (p *parser) parseCount() (int, error) {
	t := p.next()
	if t.kind != tInt {
		return 0, p.errorf("expected integer count, found %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 1 {
		return 0, p.errorf("count must be a positive integer, got %q", t.text)
	}
	return n, nil
}

func (p *parser) parseEventArgs(min, max int) ([]*Event, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []*Event
	for {
		e, err := p.parseEvent()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.accept(")") {
			break
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
	}
	if len(args) < min {
		return nil, p.errorf("operator needs at least %d operand(s), got %d", min, len(args))
	}
	if max >= 0 && len(args) > max {
		return nil, p.errorf("operator takes at most %d operand(s), got %d", max, len(args))
	}
	return args, nil
}

// parseTimeSpec parses time(FIELD=INT, ...) with fields YR MO DAY HR M
// SEC MS (paper §3.1).
func (p *parser) parseTimeSpec() (clock.TimeSpec, error) {
	spec := clock.EmptyTimeSpec()
	t := p.next()
	if t.kind != tIdent || t.text != "time" {
		return spec, p.errorf("expected time(...), found %q", t.text)
	}
	if err := p.expect("("); err != nil {
		return spec, err
	}
	if p.accept(")") {
		return spec, nil
	}
	for {
		name := p.next()
		if name.kind != tIdent {
			return spec, p.errorf("expected time field, found %q", name.text)
		}
		if err := p.expect("="); err != nil {
			return spec, err
		}
		vt := p.next()
		if vt.kind != tInt {
			return spec, p.errorf("expected integer for %s, found %q", name.text, vt.text)
		}
		v, _ := strconv.Atoi(vt.text)
		switch name.text {
		case "YR":
			spec.Year = v
		case "MO":
			spec.Month = v
		case "DAY":
			spec.Day = v
		case "HR":
			spec.Hour = v
		case "M":
			spec.Min = v
		case "SEC":
			spec.Sec = v
		case "MS":
			spec.Ms = v
		default:
			return spec, p.errorf("unknown time field %q", name.text)
		}
		if p.accept(")") {
			return spec, nil
		}
		if err := p.expect(","); err != nil {
			return spec, err
		}
	}
}
