package evlang

import (
	"fmt"
	"sort"
	"strings"

	"ode/internal/algebra"
	"ode/internal/clock"
	"ode/internal/event"
	"ode/internal/mask"
	"ode/internal/schema"
)

// MaskRef is one registered logical-event mask: the predicate plus the
// renaming from declared formals to the schema's parameter names
// (paper §3.1: "formal parameter declarations ... can also be used for
// defining predicates").
type MaskRef struct {
	Expr   *mask.Expr
	Rename map[string]string // formal → schema parameter name; nil = identity
	key    string
}

// Key identifies the mask for deduplication.
func (m *MaskRef) Key() string { return m.key }

func maskKey(e *mask.Expr, rename map[string]string) string {
	if len(rename) == 0 {
		return e.String()
	}
	pairs := make([]string, 0, len(rename))
	for k, v := range rename {
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return e.String() + "|" + strings.Join(pairs, ",")
}

// KindInfo is one kind block of the alphabet: the §5 rewrite gives the
// kind 2^len(Masks) symbols, one per Boolean combination of its masks.
type KindInfo struct {
	Kind  event.Kind
	Masks []MaskRef // bit i of a symbol's offset ↔ Masks[i]
	Base  int       // first symbol of this kind's block
}

// Block returns the number of symbols in the kind's block.
func (k *KindInfo) Block() int { return 1 << len(k.Masks) }

// Alphabet is the per-class symbol space: every possible happening at
// an object of the class maps to exactly one symbol, so the logical
// events of every trigger of the class are pairwise disjoint by
// construction (the requirement of §5).
type Alphabet struct {
	Kinds      []KindInfo
	NumSymbols int
	index      map[event.Kind]int
}

// KindIndex returns the index of k, or -1.
func (a *Alphabet) KindIndex(k event.Kind) int {
	ix, ok := a.index[k]
	if !ok {
		return -1
	}
	return ix
}

// Symbol returns the symbol for kind index kindIx with the given mask
// valuation bits.
func (a *Alphabet) Symbol(kindIx int, bits uint32) int {
	return a.Kinds[kindIx].Base + int(bits)
}

// SymbolName renders a symbol for diagnostics and DOT output.
func (a *Alphabet) SymbolName(sym int) string {
	for i := range a.Kinds {
		k := &a.Kinds[i]
		if sym >= k.Base && sym < k.Base+k.Block() {
			if len(k.Masks) == 0 {
				return k.Kind.String()
			}
			return fmt.Sprintf("%s/%0*b", k.Kind, len(k.Masks), sym-k.Base)
		}
	}
	return fmt.Sprintf("sym%d", sym)
}

// TimerReq is a time event a trigger needs armed when activated.
type TimerReq struct {
	Key  string
	Mode TimeMode
	Spec clock.TimeSpec
}

// TriggerResolution is one trigger's compiled event specification over
// the class alphabet.
type TriggerResolution struct {
	Name      string
	Params    []string
	Perpetual bool
	Action    string
	Expr      *algebra.Expr
	Timers    []TimerReq
	// UsedBits[kindIx] marks the mask bits this trigger's expression
	// depends on; foreign bits may be left unevaluated (zero) when
	// stepping this trigger's automaton.
	UsedBits map[int]uint32
}

// ClassResolution is the full §5 compilation context of a class: the
// shared alphabet plus each trigger's expression.
type ClassResolution struct {
	Class    *schema.Class
	Alphabet *Alphabet
	Triggers []*TriggerResolution
}

// Trigger returns the named resolution, or nil.
func (cr *ClassResolution) Trigger(name string) *TriggerResolution {
	for _, t := range cr.Triggers {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// maxMasksPerKind bounds the 2^k blow-up of the disjointness rewrite
// (§5: "could cause a combinatorial explosion; in practice we do not
// expect to see enough such overlap").
const maxMasksPerKind = 12

// ResolveClass parses and resolves every trigger declared by the class
// into expressions over one shared alphabet.
func ResolveClass(cls *schema.Class, ps *Parser) (*ClassResolution, error) {
	if err := cls.Validate(); err != nil {
		return nil, err
	}
	if ps == nil {
		ps = NewParser()
	}
	decls := make([]*TriggerDecl, 0, len(cls.Triggers))
	for i := range cls.Triggers {
		tr := &cls.Triggers[i]
		ev, err := ps.ParseEvent(tr.Event)
		if err != nil {
			return nil, fmt.Errorf("trigger %s: %w", tr.Name, err)
		}
		params := make([]string, len(tr.Params))
		for j, p := range tr.Params {
			params[j] = p.Name
		}
		decls = append(decls, &TriggerDecl{
			Name:      tr.Name,
			Params:    params,
			Perpetual: tr.Perpetual,
			Event:     ev,
		})
	}
	return ResolveDecls(cls, decls)
}

// ResolveDecls resolves pre-parsed trigger declarations against the
// class. It is the entry point used by the engine, which parses
// trigger sources itself so that #define-style abbreviations can be
// supplied.
func ResolveDecls(cls *schema.Class, decls []*TriggerDecl) (*ClassResolution, error) {
	for _, m := range cls.Methods {
		if basicKeywords[m.Name] || eventKeywords[m.Name] || m.Name == "time" {
			return nil, fmt.Errorf("evlang: class %s: method name %q collides with an event keyword",
				cls.Name, m.Name)
		}
	}
	r := &resolver{cls: cls, alpha: &Alphabet{index: map[event.Kind]int{}}}
	r.buildKindSpace(decls)

	// Pass 1: register masks (assign bits) and validate every atom.
	for _, d := range decls {
		if err := r.collect(d); err != nil {
			return nil, fmt.Errorf("trigger %s: %w", d.Name, err)
		}
	}
	// Assign symbol bases.
	base := 0
	for i := range r.alpha.Kinds {
		k := &r.alpha.Kinds[i]
		if len(k.Masks) > maxMasksPerKind {
			return nil, fmt.Errorf("evlang: kind %s carries %d masks; the disjointness rewrite would need %d symbols",
				k.Kind, len(k.Masks), 1<<len(k.Masks))
		}
		k.Base = base
		base += k.Block()
	}
	r.alpha.NumSymbols = base

	cr := &ClassResolution{Class: cls, Alphabet: r.alpha}
	// Pass 2: lower each trigger to an algebra expression.
	for _, d := range decls {
		tr := &TriggerResolution{
			Name:      d.Name,
			Params:    d.Params,
			Perpetual: d.Perpetual,
			Action:    d.Action,
			UsedBits:  map[int]uint32{},
		}
		r.cur = tr
		expr, err := r.lower(d.Event, d)
		if err != nil {
			return nil, fmt.Errorf("trigger %s: %w", d.Name, err)
		}
		tr.Expr = expr
		cr.Triggers = append(cr.Triggers, tr)
	}
	return cr, nil
}

type resolver struct {
	cls   *schema.Class
	alpha *Alphabet
	// globalMasks are composite-event masks (§3.3): evaluated against
	// current database state at every happening, so they contribute a
	// bit to every kind.
	globalMasks []MaskRef
	cur         *TriggerResolution
}

func (r *resolver) addKind(k event.Kind) int {
	if ix, ok := r.alpha.index[k]; ok {
		return ix
	}
	ix := len(r.alpha.Kinds)
	r.alpha.index[k] = ix
	r.alpha.Kinds = append(r.alpha.Kinds, KindInfo{Kind: k})
	return ix
}

// buildKindSpace enumerates every happening kind an object of the
// class can experience: the fixed lifecycle and transaction kinds, a
// before/after pair per method, and one timer kind per distinct time
// event across all triggers.
func (r *resolver) buildKindSpace(decls []*TriggerDecl) {
	r.addKind(event.Kind{Phase: event.After, Class: event.KCreate})
	r.addKind(event.Kind{Phase: event.Before, Class: event.KDelete})
	for _, m := range r.cls.Methods {
		r.addKind(event.MethodKind(event.Before, m.Name))
		r.addKind(event.MethodKind(event.After, m.Name))
	}
	r.addKind(event.Kind{Phase: event.After, Class: event.KTbegin})
	r.addKind(event.Kind{Phase: event.Before, Class: event.KTcomplete})
	r.addKind(event.Kind{Phase: event.After, Class: event.KTcommit})
	r.addKind(event.Kind{Phase: event.Before, Class: event.KTabort})
	r.addKind(event.Kind{Phase: event.After, Class: event.KTabort})
	for _, d := range decls {
		d.Event.Walk(func(e *Event) {
			if e.Op == EvTime {
				r.addKind(event.TimerKind(e.Time.Key()))
			}
		})
	}
}

// registerMask assigns (or finds) the bit of a mask on one kind.
func (r *resolver) registerMask(kindIx int, ref MaskRef) int {
	k := &r.alpha.Kinds[kindIx]
	for bit, m := range k.Masks {
		if m.key == ref.key {
			return bit
		}
	}
	k.Masks = append(k.Masks, ref)
	return len(k.Masks) - 1
}

// collect walks a trigger's event, validating atoms and registering
// masks so that bit positions are fixed before lowering.
func (r *resolver) collect(d *TriggerDecl) error {
	var walk func(e *Event) error
	walk = func(e *Event) error {
		switch e.Op {
		case EvBasic:
			kinds, rename, err := r.selectKinds(e.Basic)
			if err != nil {
				return err
			}
			if e.Mask != nil {
				if err := r.validateMaskVars(e.Mask, kinds, rename, d); err != nil {
					return err
				}
				ref := MaskRef{Expr: e.Mask, Rename: rename, key: maskKey(e.Mask, rename)}
				for _, kix := range kinds {
					r.registerMask(kix, ref)
				}
			}
		case EvTime:
			kix := r.alpha.KindIndex(event.TimerKind(e.Time.Key()))
			if e.Mask != nil {
				if err := r.validateMaskVars(e.Mask, nil, nil, d); err != nil {
					return err
				}
				ref := MaskRef{Expr: e.Mask, key: maskKey(e.Mask, nil)}
				r.registerMask(kix, ref)
			}
		case EvMask:
			// Composite mask: no event parameters are in scope (§3.3:
			// "a composite event has no parameters even if its
			// constituent basic events do").
			if err := r.validateMaskVars(e.Mask, nil, nil, d); err != nil {
				return err
			}
			key := "composite:" + maskKey(e.Mask, nil)
			found := false
			for _, g := range r.globalMasks {
				if g.key == key {
					found = true
					break
				}
			}
			if !found {
				ref := MaskRef{Expr: e.Mask, key: key}
				r.globalMasks = append(r.globalMasks, ref)
				for kix := range r.alpha.Kinds {
					r.registerMask(kix, ref)
				}
			}
		}
		for _, a := range e.Args {
			if err := walk(a); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(d.Event)
}

// selectKinds maps a basic-event pattern to the kind indices it
// matches, plus the formal→schema rename for mask binding.
func (r *resolver) selectKinds(b *Basic) ([]int, map[string]string, error) {
	need := func(ix int) []int { return []int{ix} }
	switch b.Keyword {
	case "create":
		if b.Phase != event.After {
			return nil, nil, fmt.Errorf("evlang: only 'after create' is a valid event (paper §3.1)")
		}
		return need(r.alpha.KindIndex(event.Kind{Phase: event.After, Class: event.KCreate})), nil, nil
	case "delete":
		if b.Phase != event.Before {
			return nil, nil, fmt.Errorf("evlang: only 'before delete' is a valid event (paper §3.1)")
		}
		return need(r.alpha.KindIndex(event.Kind{Phase: event.Before, Class: event.KDelete})), nil, nil
	case "tbegin":
		if b.Phase != event.After {
			return nil, nil, fmt.Errorf("evlang: only 'after tbegin' is a valid event (paper §3.1)")
		}
		return need(r.alpha.KindIndex(event.Kind{Phase: event.After, Class: event.KTbegin})), nil, nil
	case "tcomplete":
		if b.Phase != event.Before {
			return nil, nil, fmt.Errorf("evlang: only 'before tcomplete' is a valid event (paper §3.1)")
		}
		return need(r.alpha.KindIndex(event.Kind{Phase: event.Before, Class: event.KTcomplete})), nil, nil
	case "tcommit":
		if b.Phase != event.After {
			return nil, nil, fmt.Errorf("evlang: 'before tcommit' is not allowed — \"we cannot be sure that a transaction is going to commit until it actually does so\" (paper §3.1)")
		}
		return need(r.alpha.KindIndex(event.Kind{Phase: event.After, Class: event.KTcommit})), nil, nil
	case "tabort":
		return need(r.alpha.KindIndex(event.Kind{Phase: b.Phase, Class: event.KTabort})), nil, nil
	case "update", "read", "access":
		var out []int
		for _, m := range r.cls.Methods {
			if b.Keyword == "update" && m.Mode != schema.ModeUpdate {
				continue
			}
			if b.Keyword == "read" && m.Mode != schema.ModeRead {
				continue
			}
			out = append(out, r.alpha.KindIndex(event.MethodKind(b.Phase, m.Name)))
		}
		return out, nil, nil
	case "":
		m := r.cls.Method(b.Method)
		if m == nil {
			return nil, nil, fmt.Errorf("evlang: class %s has no method %q", r.cls.Name, b.Method)
		}
		var rename map[string]string
		if len(b.Formals) > 0 {
			if len(b.Formals) != len(m.Params) {
				return nil, nil, fmt.Errorf("evlang: %s declares %d parameter(s), method %s has %d",
					b.Method, len(b.Formals), b.Method, len(m.Params))
			}
			rename = make(map[string]string, len(b.Formals))
			for i, f := range b.Formals {
				rename[f] = m.Params[i].Name
			}
		}
		return need(r.alpha.KindIndex(event.MethodKind(b.Phase, b.Method))), rename, nil
	default:
		return nil, nil, fmt.Errorf("evlang: unknown basic event %q", b.Keyword)
	}
}

// validateMaskVars checks every free variable of a mask is statically
// resolvable: a declared formal, a parameter of each selected method
// kind, a trigger parameter, or a class field.
func (r *resolver) validateMaskVars(m *mask.Expr, kinds []int, rename map[string]string, d *TriggerDecl) error {
	trigParams := map[string]bool{}
	for _, p := range d.Params {
		trigParams[p] = true
	}
	for _, v := range m.Vars() {
		if rename != nil {
			if _, ok := rename[v]; ok {
				continue
			}
		}
		if trigParams[v] || r.cls.Field(v) != nil {
			continue
		}
		// A schema parameter name, valid only if every selected kind
		// is a method that declares it.
		ok := len(kinds) > 0
		for _, kix := range kinds {
			k := r.alpha.Kinds[kix].Kind
			if k.Class != event.KMethod {
				ok = false
				break
			}
			meth := r.cls.Method(k.Method)
			found := false
			for _, p := range meth.Params {
				if p.Name == v {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if !ok {
			return fmt.Errorf("evlang: mask variable %q is not a parameter, trigger parameter, or field", v)
		}
	}
	return nil
}

// lower translates a surface event into an algebra expression over the
// alphabet, recording the mask bits the trigger depends on.
func (r *resolver) lower(e *Event, d *TriggerDecl) (*algebra.Expr, error) {
	switch e.Op {
	case EvBasic:
		kinds, rename, err := r.selectKinds(e.Basic)
		if err != nil {
			return nil, err
		}
		return r.atomsFor(kinds, e.Mask, rename), nil

	case EvTime:
		kix := r.alpha.KindIndex(event.TimerKind(e.Time.Key()))
		r.noteTimer(e.Time)
		return r.atomsFor([]int{kix}, e.Mask, nil), nil

	case EvMask:
		inner, err := r.lower(e.Args[0], d)
		if err != nil {
			return nil, err
		}
		// Intersect with "the composite mask holds at this point":
		// every symbol whose global-mask bit is set.
		key := "composite:" + maskKey(e.Mask, nil)
		var arms []*algebra.Expr
		for kix := range r.alpha.Kinds {
			bit := r.bitOf(kix, key)
			arms = append(arms, r.symbolsWithBit(kix, bit))
			r.cur.UsedBits[kix] |= 1 << bit
		}
		return algebra.And(inner, algebra.OrList(arms...)), nil

	case EvOr, EvAnd:
		args, err := r.lowerAll(e.Args, d)
		if err != nil {
			return nil, err
		}
		if e.Op == EvOr {
			return algebra.OrList(args...), nil
		}
		return algebra.AndList(args...), nil

	case EvNot:
		a, err := r.lower(e.Args[0], d)
		if err != nil {
			return nil, err
		}
		return algebra.Not(a), nil

	case EvRelative, EvPrior, EvSequence:
		mkList := map[EvOp]func(...*algebra.Expr) *algebra.Expr{
			EvRelative: algebra.RelativeList, EvPrior: algebra.PriorList, EvSequence: algebra.SequenceList,
		}[e.Op]
		mkN := map[EvOp]func(*algebra.Expr, int) *algebra.Expr{
			EvRelative: algebra.RelativeN, EvPrior: algebra.PriorN, EvSequence: algebra.SequenceN,
		}[e.Op]
		args, err := r.lowerAll(e.Args, d)
		if err != nil {
			return nil, err
		}
		if e.N > 0 {
			return mkN(args[0], e.N), nil
		}
		return mkList(args...), nil

	case EvRelPlus:
		a, err := r.lower(e.Args[0], d)
		if err != nil {
			return nil, err
		}
		return algebra.Plus(a), nil

	case EvChoose, EvEvery:
		a, err := r.lower(e.Args[0], d)
		if err != nil {
			return nil, err
		}
		if e.Op == EvChoose {
			return algebra.Choose(a, e.N), nil
		}
		return algebra.Every(a, e.N), nil

	case EvFa, EvFaAbs:
		args, err := r.lowerAll(e.Args, d)
		if err != nil {
			return nil, err
		}
		if e.Op == EvFa {
			return algebra.Fa(args[0], args[1], args[2]), nil
		}
		return algebra.FaAbs(args[0], args[1], args[2]), nil

	default:
		return nil, fmt.Errorf("evlang: unknown event op %d", e.Op)
	}
}

func (r *resolver) lowerAll(es []*Event, d *TriggerDecl) ([]*algebra.Expr, error) {
	out := make([]*algebra.Expr, len(es))
	for i, e := range es {
		a, err := r.lower(e, d)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

func (r *resolver) noteTimer(te *TimeEvent) {
	key := te.Key()
	for _, t := range r.cur.Timers {
		if t.Key == key {
			return
		}
	}
	r.cur.Timers = append(r.cur.Timers, TimerReq{Key: key, Mode: te.Mode, Spec: te.Spec})
}

func (r *resolver) bitOf(kindIx int, key string) int {
	for bit, m := range r.alpha.Kinds[kindIx].Masks {
		if m.key == key {
			return bit
		}
	}
	panic(fmt.Sprintf("evlang: mask %q not registered on kind %s", key, r.alpha.Kinds[kindIx].Kind))
}

// symbolsWithBit returns the union of the kind's symbols whose given
// mask bit is set.
func (r *resolver) symbolsWithBit(kindIx, bit int) *algebra.Expr {
	k := &r.alpha.Kinds[kindIx]
	var atoms []*algebra.Expr
	for off := 0; off < k.Block(); off++ {
		if off&(1<<bit) != 0 {
			atoms = append(atoms, algebra.Atom(k.Base+off))
		}
	}
	return algebra.OrList(atoms...)
}

// atomsFor builds the union of symbols matched by a basic pattern over
// the selected kinds: all of each kind's block when unmasked, or the
// half with the mask's bit set.
func (r *resolver) atomsFor(kinds []int, m *mask.Expr, rename map[string]string) *algebra.Expr {
	if len(kinds) == 0 {
		return algebra.Empty()
	}
	var arms []*algebra.Expr
	for _, kix := range kinds {
		k := &r.alpha.Kinds[kix]
		if m == nil {
			var atoms []*algebra.Expr
			for off := 0; off < k.Block(); off++ {
				atoms = append(atoms, algebra.Atom(k.Base+off))
			}
			arms = append(arms, algebra.OrList(atoms...))
			continue
		}
		bit := r.bitOf(kix, maskKey(m, rename))
		arms = append(arms, r.symbolsWithBit(kix, bit))
		r.cur.UsedBits[kix] |= 1 << bit
	}
	return algebra.OrList(arms...)
}
