// Package evlang implements the O++ event-specification sub-language
// of the paper (§2–§3): parsing trigger declarations
//
//	T6(): perpetual after withdraw(i, q) && q > 100 ==> log()
//
// and event expressions
//
//	relative(dayBegin, prior(choose 5 (after tcommit), after tcommit)
//	         & !prior(dayBegin, after tcommit))
//
// into surface syntax trees, and resolving them against a class schema
// into algebra expressions over a per-class alphabet of disjoint
// logical events (the §5 mask-disjointness rewrite).
package evlang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tString
	tPunct
)

type tok struct {
	kind tokKind
	text string
	pos  int
}

// puncts, longest first. "==>" must precede "==" and "=".
var puncts = []string{
	"==>", "&&", "||", "==", "!=", "<=", ">=",
	"(", ")", ",", ";", ".", ":", "=", "!", "<", ">", "+", "-", "*", "/", "%", "|", "&",
}

func lexAll(src string) ([]tok, error) {
	var out []tok
	pos := 0
	for {
		for pos < len(src) && unicode.IsSpace(rune(src[pos])) {
			pos++
		}
		if pos >= len(src) {
			out = append(out, tok{kind: tEOF, pos: pos})
			return out, nil
		}
		c := src[pos]
		switch {
		case c == '_' || unicode.IsLetter(rune(c)):
			start := pos
			for pos < len(src) && (src[pos] == '_' || unicode.IsLetter(rune(src[pos])) || unicode.IsDigit(rune(src[pos]))) {
				pos++
			}
			text := src[start:pos]
			// relative+ lexes as one identifier token.
			if text == "relative" && pos < len(src) && src[pos] == '+' {
				pos++
				text = "relative+"
			}
			out = append(out, tok{kind: tIdent, text: text, pos: start})

		case c >= '0' && c <= '9':
			start := pos
			kind := tInt
			for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
				pos++
			}
			if pos+1 < len(src) && src[pos] == '.' && src[pos+1] >= '0' && src[pos+1] <= '9' {
				kind = tFloat
				pos++
				for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
					pos++
				}
			}
			out = append(out, tok{kind: kind, text: src[start:pos], pos: start})

		case c == '"' || c == '\'':
			start := pos
			quote := c
			pos++
			var b strings.Builder
			closed := false
			for pos < len(src) {
				if src[pos] == quote {
					pos++
					closed = true
					break
				}
				if src[pos] == '\\' && pos+1 < len(src) {
					pos++
					// The escape set mirrors what Go's %q renderer emits, so
					// any accepted literal's rendering re-parses (parse ∘
					// render is the identity; FuzzParseEvent pins this).
					switch src[pos] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case 'r':
						b.WriteByte('\r')
					case 'a':
						b.WriteByte('\a')
					case 'b':
						b.WriteByte('\b')
					case 'f':
						b.WriteByte('\f')
					case 'v':
						b.WriteByte('\v')
					case '\\', '"', '\'':
						b.WriteByte(src[pos])
					case 'x':
						n, np, err := hexEscape(src, pos, 2)
						if err != nil {
							return nil, err
						}
						b.WriteByte(byte(n))
						pos = np
					case 'u':
						n, np, err := hexEscape(src, pos, 4)
						if err != nil {
							return nil, err
						}
						b.WriteRune(rune(n))
						pos = np
					case 'U':
						n, np, err := hexEscape(src, pos, 8)
						if err != nil {
							return nil, err
						}
						if n > 0x10FFFF {
							return nil, fmt.Errorf("evlang: rune escape out of range at %d", pos)
						}
						b.WriteRune(rune(n))
						pos = np
					default:
						return nil, fmt.Errorf("evlang: bad escape \\%c at %d", src[pos], pos)
					}
					pos++
					continue
				}
				b.WriteByte(src[pos])
				pos++
			}
			if !closed {
				return nil, fmt.Errorf("evlang: unterminated string at %d", start)
			}
			out = append(out, tok{kind: tString, text: b.String(), pos: start})

		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[pos:], p) {
					out = append(out, tok{kind: tPunct, text: p, pos: pos})
					pos += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("evlang: unexpected character %q at %d", c, pos)
			}
		}
	}
}

// hexEscape decodes exactly width hex digits following the escape
// letter at pos, returning the value and the position of the last
// digit consumed (the caller's loop increment then steps past it).
func hexEscape(src string, pos, width int) (uint32, int, error) {
	if pos+width >= len(src) {
		return 0, 0, fmt.Errorf("evlang: truncated hex escape at %d", pos)
	}
	var n uint32
	for i := 1; i <= width; i++ {
		c := src[pos+i]
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, 0, fmt.Errorf("evlang: bad hex digit %q in escape at %d", c, pos+i)
		}
		n = n<<4 | d
	}
	return n, pos + width, nil
}
