// Package evlang implements the O++ event-specification sub-language
// of the paper (§2–§3): parsing trigger declarations
//
//	T6(): perpetual after withdraw(i, q) && q > 100 ==> log()
//
// and event expressions
//
//	relative(dayBegin, prior(choose 5 (after tcommit), after tcommit)
//	         & !prior(dayBegin, after tcommit))
//
// into surface syntax trees, and resolving them against a class schema
// into algebra expressions over a per-class alphabet of disjoint
// logical events (the §5 mask-disjointness rewrite).
package evlang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tString
	tPunct
)

type tok struct {
	kind tokKind
	text string
	pos  int
}

// puncts, longest first. "==>" must precede "==" and "=".
var puncts = []string{
	"==>", "&&", "||", "==", "!=", "<=", ">=",
	"(", ")", ",", ";", ".", ":", "=", "!", "<", ">", "+", "-", "*", "/", "%", "|", "&",
}

func lexAll(src string) ([]tok, error) {
	var out []tok
	pos := 0
	for {
		for pos < len(src) && unicode.IsSpace(rune(src[pos])) {
			pos++
		}
		if pos >= len(src) {
			out = append(out, tok{kind: tEOF, pos: pos})
			return out, nil
		}
		c := src[pos]
		switch {
		case c == '_' || unicode.IsLetter(rune(c)):
			start := pos
			for pos < len(src) && (src[pos] == '_' || unicode.IsLetter(rune(src[pos])) || unicode.IsDigit(rune(src[pos]))) {
				pos++
			}
			text := src[start:pos]
			// relative+ lexes as one identifier token.
			if text == "relative" && pos < len(src) && src[pos] == '+' {
				pos++
				text = "relative+"
			}
			out = append(out, tok{kind: tIdent, text: text, pos: start})

		case c >= '0' && c <= '9':
			start := pos
			kind := tInt
			for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
				pos++
			}
			if pos+1 < len(src) && src[pos] == '.' && src[pos+1] >= '0' && src[pos+1] <= '9' {
				kind = tFloat
				pos++
				for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
					pos++
				}
			}
			out = append(out, tok{kind: kind, text: src[start:pos], pos: start})

		case c == '"' || c == '\'':
			start := pos
			quote := c
			pos++
			var b strings.Builder
			closed := false
			for pos < len(src) {
				if src[pos] == quote {
					pos++
					closed = true
					break
				}
				if src[pos] == '\\' && pos+1 < len(src) {
					pos++
					switch src[pos] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\', '"', '\'':
						b.WriteByte(src[pos])
					default:
						return nil, fmt.Errorf("evlang: bad escape \\%c at %d", src[pos], pos)
					}
					pos++
					continue
				}
				b.WriteByte(src[pos])
				pos++
			}
			if !closed {
				return nil, fmt.Errorf("evlang: unterminated string at %d", start)
			}
			out = append(out, tok{kind: tString, text: b.String(), pos: start})

		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[pos:], p) {
					out = append(out, tok{kind: tPunct, text: p, pos: pos})
					pos += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("evlang: unexpected character %q at %d", c, pos)
			}
		}
	}
}
