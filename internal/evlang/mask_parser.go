package evlang

import (
	"strconv"

	"ode/internal/mask"
	"ode/internal/value"
)

// The mask sub-grammar, parsed over the evlang token stream. It is the
// same language as package mask's standalone parser (kept in sync by
// round-trip tests); embedding it here lets masks terminate exactly
// where event syntax resumes: the single '&' and '|' are event
// operators and never consumed by a mask, while '&&' and '||' are mask
// conjunction and disjunction.

func (p *parser) parseMask() (*mask.Expr, error) {
	e, err := p.parseMaskAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseMaskAnd()
		if err != nil {
			return nil, err
		}
		e = mask.Binary("||", e, r)
	}
	return e, nil
}

func (p *parser) parseMaskAnd() (*mask.Expr, error) {
	e, err := p.parseMaskCmp()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseMaskCmp()
		if err != nil {
			return nil, err
		}
		e = mask.Binary("&&", e, r)
	}
	return e, nil
}

func (p *parser) parseMaskCmp() (*mask.Expr, error) {
	e, err := p.parseMaskAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			r, err := p.parseMaskAdd()
			if err != nil {
				return nil, err
			}
			return mask.Binary(op, e, r), nil
		}
	}
	return e, nil
}

func (p *parser) parseMaskAdd() (*mask.Expr, error) {
	e, err := p.parseMaskMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("+"):
			op = "+"
		case p.accept("-"):
			op = "-"
		default:
			return e, nil
		}
		r, err := p.parseMaskMul()
		if err != nil {
			return nil, err
		}
		e = mask.Binary(op, e, r)
	}
}

func (p *parser) parseMaskMul() (*mask.Expr, error) {
	e, err := p.parseMaskUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		case p.accept("%"):
			op = "%"
		default:
			return e, nil
		}
		r, err := p.parseMaskUnary()
		if err != nil {
			return nil, err
		}
		e = mask.Binary(op, e, r)
	}
}

func (p *parser) parseMaskUnary() (*mask.Expr, error) {
	if p.accept("!") {
		e, err := p.parseMaskUnary()
		if err != nil {
			return nil, err
		}
		return mask.Unary("!", e), nil
	}
	if p.accept("-") {
		e, err := p.parseMaskUnary()
		if err != nil {
			return nil, err
		}
		return mask.Unary("-", e), nil
	}
	return p.parseMaskPostfix()
}

func (p *parser) parseMaskPostfix() (*mask.Expr, error) {
	e, err := p.parseMaskPrimary()
	if err != nil {
		return nil, err
	}
	for p.accept(".") {
		t := p.next()
		if t.kind != tIdent {
			return nil, p.errorf("expected field name after '.', found %q", t.text)
		}
		e = mask.Field(e, t.text)
	}
	return e, nil
}

func (p *parser) parseMaskPrimary() (*mask.Expr, error) {
	t := p.next()
	switch t.kind {
	case tInt:
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return mask.Lit(value.Int(i)), nil
	case tFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float %q", t.text)
		}
		return mask.Lit(value.Float(f)), nil
	case tString:
		return mask.Lit(value.Str(t.text)), nil
	case tIdent:
		switch t.text {
		case "true":
			return mask.Lit(value.Bool(true)), nil
		case "false":
			return mask.Lit(value.Bool(false)), nil
		case "null":
			return mask.Lit(value.Null()), nil
		}
		if p.accept("(") {
			var args []*mask.Expr
			if !p.accept(")") {
				for {
					a, err := p.parseMask()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return mask.Call(t.text, args...), nil
		}
		return mask.Var(t.text), nil
	case tPunct:
		if t.text == "(" {
			e, err := p.parseMask()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("expected mask expression, found %q", t.text)
}
