package evlang

import (
	"strings"
	"testing"

	"ode/internal/algebra"
	"ode/internal/compile"
	"ode/internal/event"
	"ode/internal/schema"
	"ode/internal/value"
)

// testClass is a cut-down stockRoom.
func testClass(triggers ...schema.Trigger) *schema.Class {
	return &schema.Class{
		Name: "stockRoom",
		Fields: []schema.Field{
			{Name: "n", Kind: value.KindInt, Default: value.Int(0)},
			{Name: "low_limit", Kind: value.KindFloat},
		},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "item", Kind: value.KindID}, {Name: "qty", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "item", Kind: value.KindID}, {Name: "qty", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "summary", Mode: schema.ModeRead},
		},
		Triggers: triggers,
	}
}

func resolveOne(t *testing.T, eventSrc string, params ...schema.Param) (*ClassResolution, *TriggerResolution) {
	t.Helper()
	cls := testClass(schema.Trigger{Name: "T", Event: eventSrc, Params: params})
	cr, err := ResolveClass(cls, ForClass(cls))
	if err != nil {
		t.Fatalf("resolve %q: %v", eventSrc, err)
	}
	return cr, cr.Triggers[0]
}

func TestAlphabetKindSpace(t *testing.T) {
	cr, _ := resolveOne(t, "after withdraw")
	// create + delete + 2×3 methods + 5 transaction kinds = 13 kinds,
	// no masks → 13 symbols.
	if len(cr.Alphabet.Kinds) != 13 {
		t.Fatalf("kinds = %d", len(cr.Alphabet.Kinds))
	}
	if cr.Alphabet.NumSymbols != 13 {
		t.Fatalf("symbols = %d", cr.Alphabet.NumSymbols)
	}
}

func TestMaskedKindGetsBlock(t *testing.T) {
	cr, tr := resolveOne(t, "after withdraw(i, q) && q > 100")
	// One mask on after-withdraw: its block has 2 symbols.
	kix := cr.Alphabet.KindIndex(event.MethodKind(event.After, "withdraw"))
	if kix < 0 {
		t.Fatal("missing kind")
	}
	if got := cr.Alphabet.Kinds[kix].Block(); got != 2 {
		t.Fatalf("block = %d", got)
	}
	if cr.Alphabet.NumSymbols != 14 {
		t.Fatalf("symbols = %d", cr.Alphabet.NumSymbols)
	}
	if tr.UsedBits[kix] != 1 {
		t.Fatalf("used bits = %b", tr.UsedBits[kix])
	}
	// The rename maps formals to schema names.
	ref := cr.Alphabet.Kinds[kix].Masks[0]
	if ref.Rename["i"] != "item" || ref.Rename["q"] != "qty" {
		t.Fatalf("rename = %v", ref.Rename)
	}
}

func TestSharedAlphabetDedupesMasks(t *testing.T) {
	cls := testClass(
		schema.Trigger{Name: "A", Event: "after withdraw(i, q) && q > 100"},
		schema.Trigger{Name: "B", Event: "choose 5 (after withdraw(i, q) && q > 100)"},
		schema.Trigger{Name: "C", Event: "after withdraw(x, y) && y > 100"},
	)
	cr, err := ResolveClass(cls, ForClass(cls))
	if err != nil {
		t.Fatal(err)
	}
	kix := cr.Alphabet.KindIndex(event.MethodKind(event.After, "withdraw"))
	// A and B share one mask; C's formals differ so its rename differs
	// → a second mask bit.
	if got := len(cr.Alphabet.Kinds[kix].Masks); got != 2 {
		t.Fatalf("masks on after-withdraw = %d, want 2", got)
	}
}

func TestUpdateReadAccessSelectors(t *testing.T) {
	cr, tr := resolveOne(t, "after update")
	// deposit and withdraw are updates; summary is a read.
	wantSyms := map[int]bool{}
	for _, m := range []string{"deposit", "withdraw"} {
		kix := cr.Alphabet.KindIndex(event.MethodKind(event.After, m))
		wantSyms[cr.Alphabet.Symbol(kix, 0)] = true
	}
	var atoms []int
	tr.Expr.Walk(func(e *algebra.Expr) {
		if e.Op == algebra.OpAtom {
			atoms = append(atoms, e.Sym)
		}
	})
	if len(atoms) != 2 {
		t.Fatalf("atoms = %v", atoms)
	}
	for _, a := range atoms {
		if !wantSyms[a] {
			t.Fatalf("unexpected atom %d", a)
		}
	}

	_, trRead := resolveOne(t, "before read")
	var readAtoms int
	trRead.Expr.Walk(func(e *algebra.Expr) {
		if e.Op == algebra.OpAtom {
			readAtoms++
		}
	})
	if readAtoms != 1 {
		t.Fatalf("read atoms = %d", readAtoms)
	}

	_, trAcc := resolveOne(t, "after access")
	var accAtoms int
	trAcc.Expr.Walk(func(e *algebra.Expr) {
		if e.Op == algebra.OpAtom {
			accAtoms++
		}
	})
	if accAtoms != 3 {
		t.Fatalf("access atoms = %d", accAtoms)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []string{
		"after nosuchmethod",
		"before create",
		"after delete",
		"before tbegin",
		"after tcomplete",
		"before tcommit",
		"after withdraw(a, b, c)",         // arity mismatch
		"after withdraw && nosuchvar > 1", // unresolvable mask var
		"after update && qty > 1",         // qty not on summary? (update = deposit+withdraw, both have qty → ok!)
	}
	for _, src := range cases[:8] {
		cls := testClass(schema.Trigger{Name: "T", Event: src})
		if _, err := ResolveClass(cls, ForClass(cls)); err == nil {
			t.Errorf("resolve %q succeeded", src)
		}
	}
	// qty is a parameter of every update method, so this resolves.
	cls := testClass(schema.Trigger{Name: "T", Event: "after update && qty > 1"})
	if _, err := ResolveClass(cls, ForClass(cls)); err != nil {
		t.Errorf("after update && qty > 1: %v", err)
	}
	// n is a field: always available.
	cls = testClass(schema.Trigger{Name: "T", Event: "after access && n > 0"})
	if _, err := ResolveClass(cls, ForClass(cls)); err != nil {
		t.Errorf("field mask: %v", err)
	}
	// Composite masks cannot use event parameters.
	cls = testClass(schema.Trigger{Name: "T", Event: "(after withdraw | after deposit) && qty > 1"})
	if _, err := ResolveClass(cls, ForClass(cls)); err == nil {
		t.Error("composite mask with event parameter resolved")
	}
	// before tcommit has the paper's dedicated error.
	cls = testClass(schema.Trigger{Name: "T", Event: "before tcommit"})
	_, err := ResolveClass(cls, ForClass(cls))
	if err == nil || !strings.Contains(err.Error(), "not allowed") {
		t.Errorf("before tcommit error: %v", err)
	}
}

func TestTriggerParamInMask(t *testing.T) {
	cr, tr := resolveOne(t, "after withdraw(i, q) && q > lvl", schema.Param{Name: "lvl", Kind: value.KindInt})
	if len(tr.Params) != 1 || tr.Params[0] != "lvl" {
		t.Fatalf("params %v", tr.Params)
	}
	_ = cr
}

func TestTimeEventResolution(t *testing.T) {
	cr, tr := resolveOne(t, "relative(at time(HR=9), every 5 (after tcommit))")
	if len(tr.Timers) != 1 || tr.Timers[0].Mode != TimeAt || tr.Timers[0].Spec.Hour != 9 {
		t.Fatalf("timers = %+v", tr.Timers)
	}
	kix := cr.Alphabet.KindIndex(event.TimerKind("at time(HR=9)"))
	if kix < 0 {
		t.Fatal("timer kind missing from alphabet")
	}
	// Another trigger's timer also lands in the shared alphabet.
	cls := testClass(
		schema.Trigger{Name: "A", Event: "at time(HR=9)"},
		schema.Trigger{Name: "B", Event: "at time(HR=17)"},
	)
	cr2, err := ResolveClass(cls, ForClass(cls))
	if err != nil {
		t.Fatal(err)
	}
	if cr2.Alphabet.KindIndex(event.TimerKind("at time(HR=9)")) < 0 ||
		cr2.Alphabet.KindIndex(event.TimerKind("at time(HR=17)")) < 0 {
		t.Fatal("shared alphabet missing a trigger's timer kind")
	}
}

func TestCompositeMaskBitsOnEveryKind(t *testing.T) {
	cr, tr := resolveOne(t, "(after deposit; after withdraw) && n > 0")
	for kix := range cr.Alphabet.Kinds {
		if len(cr.Alphabet.Kinds[kix].Masks) != 1 {
			t.Fatalf("kind %s: %d masks", cr.Alphabet.Kinds[kix].Kind, len(cr.Alphabet.Kinds[kix].Masks))
		}
		if tr.UsedBits[kix] != 1 {
			t.Fatalf("kind %s: used bits %b", cr.Alphabet.Kinds[kix].Kind, tr.UsedBits[kix])
		}
	}
	if cr.Alphabet.NumSymbols != 26 { // 13 kinds × 2
		t.Fatalf("symbols = %d", cr.Alphabet.NumSymbols)
	}
}

// TestResolvedExpressionsCompile runs the full §5 pipeline for the
// paper's stockRoom triggers T1–T8 and checks every one compiles to a
// reasonably small automaton (E3's size report).
func TestResolvedExpressionsCompile(t *testing.T) {
	cls := paperStockRoom()
	ps := ForClass(cls)
	if err := ps.Define("dayBegin", "at time(HR=9)"); err != nil {
		t.Fatal(err)
	}
	if err := ps.Define("dayEnd", "at time(HR=17)"); err != nil {
		t.Fatal(err)
	}
	if err := ps.Define("FifthLrgWdr", "choose 5 (after withdraw(i, q) && q > 100)"); err != nil {
		t.Fatal(err)
	}
	cr, err := ResolveClass(cls, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Triggers) != 8 {
		t.Fatalf("triggers = %d", len(cr.Triggers))
	}
	for _, tr := range cr.Triggers {
		d := compile.Compile(tr.Expr, cr.Alphabet.NumSymbols)
		if d.NumStates < 1 || d.NumStates > 200 {
			t.Fatalf("trigger %s: %d states", tr.Name, d.NumStates)
		}
	}
}

// paperStockRoom is the §3.5 stockRoom with its eight trigger events.
func paperStockRoom() *schema.Class {
	return &schema.Class{
		Name: "stockRoom",
		Fields: []schema.Field{
			{Name: "n", Kind: value.KindInt},
		},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "i", Kind: value.KindID}, {Name: "q", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "i", Kind: value.KindID}, {Name: "q", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "authorized", Params: []schema.Param{{Name: "u", Kind: value.KindString}}, Mode: schema.ModeRead},
			{Name: "log", Mode: schema.ModeUpdate},
			{Name: "order", Params: []schema.Param{{Name: "i", Kind: value.KindID}}, Mode: schema.ModeUpdate},
			{Name: "printLog", Mode: schema.ModeRead},
			{Name: "reorder", Params: []schema.Param{{Name: "i", Kind: value.KindID}}, Mode: schema.ModeRead},
			{Name: "report", Mode: schema.ModeRead},
			{Name: "summary", Mode: schema.ModeRead},
			{Name: "updateAverages", Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "T1", Perpetual: true, Event: "before withdraw && !authorized(user())"},
			{Name: "T2", Event: "after withdraw(i, q) && balance(i) < reorder(i)"},
			{Name: "T3", Perpetual: true, Event: "dayEnd"},
			{Name: "T4", Perpetual: true, Event: "relative(dayBegin, prior(choose 5 (after tcommit), after tcommit) & !prior(dayBegin, after tcommit))"},
			{Name: "T5", Perpetual: true, Event: "every 5 (after access)"},
			{Name: "T6", Perpetual: true, Event: "after withdraw(i, q) && q > 100"},
			{Name: "T7", Perpetual: true, Event: "fa(dayBegin, FifthLrgWdr, dayBegin)"},
			{Name: "T8", Perpetual: true, Event: "after deposit; before withdraw; after withdraw"},
		},
	}
}

func TestStockRoomAutomatonSizes(t *testing.T) {
	cls := paperStockRoom()
	ps := ForClass(cls)
	ps.Define("dayBegin", "at time(HR=9)")
	ps.Define("dayEnd", "at time(HR=17)")
	ps.Define("FifthLrgWdr", "choose 5 (after withdraw(i, q) && q > 100)")
	cr, err := ResolveClass(cls, ps)
	if err != nil {
		t.Fatal(err)
	}
	// T6 (a single masked logical event) must be the paper's trivial
	// 2-state automaton.
	d := compile.Compile(cr.Trigger("T6").Expr, cr.Alphabet.NumSymbols)
	if d.NumStates != 2 {
		t.Fatalf("T6 automaton has %d states, want 2", d.NumStates)
	}
	// T8 (3-step immediate sequence) needs 4 states.
	d8 := compile.Compile(cr.Trigger("T8").Expr, cr.Alphabet.NumSymbols)
	if d8.NumStates != 4 {
		t.Fatalf("T8 automaton has %d states, want 4", d8.NumStates)
	}
}

func TestSymbolName(t *testing.T) {
	cr, _ := resolveOne(t, "after withdraw(i, q) && q > 100")
	kix := cr.Alphabet.KindIndex(event.MethodKind(event.After, "withdraw"))
	base := cr.Alphabet.Kinds[kix].Base
	if got := cr.Alphabet.SymbolName(base + 1); got != "after withdraw/1" {
		t.Fatalf("SymbolName = %q", got)
	}
	if got := cr.Alphabet.SymbolName(9999); got != "sym9999" {
		t.Fatalf("SymbolName out of range = %q", got)
	}
}

func TestMaskExplosionGuard(t *testing.T) {
	// 13 distinct masks on one kind exceed maxMasksPerKind.
	var trigs []schema.Trigger
	for i := 0; i < 13; i++ {
		trigs = append(trigs, schema.Trigger{
			Name:  "T" + string(rune('A'+i)),
			Event: "after withdraw(i, q) && q > " + string(rune('0'+i%10)) + string(rune('0'+i/10)),
		})
	}
	cls := testClass(trigs...)
	_, err := ResolveClass(cls, ForClass(cls))
	if err == nil || !strings.Contains(err.Error(), "disjointness") {
		t.Fatalf("explosion guard: %v", err)
	}
}

func TestMethodNameKeywordCollisionRejected(t *testing.T) {
	for _, bad := range []string{"update", "tcommit", "relative", "time", "before"} {
		cls := &schema.Class{
			Name:    "c",
			Methods: []schema.Method{{Name: bad, Mode: schema.ModeUpdate}},
			Triggers: []schema.Trigger{
				{Name: "T", Event: "after tcommit"},
			},
		}
		if _, err := ResolveClass(cls, ForClass(cls)); err == nil {
			t.Errorf("method named %q accepted", bad)
		}
	}
}

func TestResolvedTriggerLookup(t *testing.T) {
	cr, _ := resolveOne(t, "after withdraw")
	if cr.Trigger("T") == nil || cr.Trigger("nosuch") != nil {
		t.Fatal("ClassResolution.Trigger lookup")
	}
}

func TestMaskRefKey(t *testing.T) {
	cr, _ := resolveOne(t, "after withdraw(i, q) && q > 100")
	kix := cr.Alphabet.KindIndex(event.MethodKind(event.After, "withdraw"))
	ref := cr.Alphabet.Kinds[kix].Masks[0]
	if ref.Key() == "" || !strings.Contains(ref.Key(), "q > 100") {
		t.Fatalf("mask key %q", ref.Key())
	}
}
