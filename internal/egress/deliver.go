package egress

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ode/internal/fault"
	"ode/internal/obs"
	"ode/internal/store"
)

// Sender delivers one firing record to the outside world. Send is
// invoked at least once per record; the idempotency key is stable
// across retries, crashes and resumes, so a receiver that dedupes on
// it observes the firing's effect exactly once.
type Sender interface {
	Send(rec store.FiringRecord, idemKey string) error
}

// SenderFunc adapts a function to the Sender interface.
type SenderFunc func(rec store.FiringRecord, idemKey string) error

// Send implements Sender.
func (f SenderFunc) Send(rec store.FiringRecord, idemKey string) error { return f(rec, idemKey) }

// errRingCap bounds retained delivery errors, mirroring the engine's
// timer-error ring: a persistently failing endpoint must not grow
// memory without bound. Overwritten errors count into ErrsDropped.
const errRingCap = 64

// DelivererOptions configures a Deliverer. The zero value is usable:
// resume from the cursor (or the feed start), 4 attempts per record,
// 10ms..2s exponential backoff, real sleeping.
type DelivererOptions struct {
	// Cursor optionally persists delivery progress; nil keeps the
	// cursor in memory only (a restart redelivers from From).
	Cursor *Cursor
	// From is the starting position when no cursor entry exists
	// (0 and 1 both mean the beginning of the feed).
	From uint64
	// MaxAttempts bounds delivery attempts per record per Pump pass
	// (default 4). When exhausted the deliverer records the error and
	// stalls at the record — it never skips, so no effect is lost; the
	// next Pump retries from the same position.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// attempts (defaults 10ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep replaces time.Sleep between retries — the simulation
	// harness injects a no-op to stay deterministic.
	Sleep func(time.Duration)
	// Batch bounds records fetched per poll (default 256).
	Batch int
	// Faults optionally installs the fault registry consulted at
	// fault.EgressDeliver before every send attempt.
	Faults *fault.Registry
}

// DelivererStats is a snapshot of delivery counters.
type DelivererStats struct {
	// Delivered counts records acknowledged by the sender.
	Delivered uint64
	// Attempts counts send attempts; Retries counts the subset that
	// were re-attempts after a failure.
	Attempts uint64
	Retries  uint64
	// GaveUp counts Pump passes that exhausted MaxAttempts on a record
	// and stalled (the record stays next in line; nothing is skipped).
	GaveUp uint64
	// CursorSaves counts successful durable cursor writes;
	// CursorErrs counts failed ones (delivery proceeds — a lost cursor
	// write only means redelivery after restart).
	CursorSaves uint64
	CursorErrs  uint64
	// ErrsDropped counts errors evicted from the bounded error ring.
	ErrsDropped uint64
	// Pos is the position consumed through; Lag is FiringHead - Pos.
	Pos uint64
	Lag uint64
}

// Deliverer pumps a Source's firing records through a Sender with
// bounded retries, exponential backoff and durable cursor tracking.
// Delivery is at-least-once — a crash between send and cursor save
// redelivers — and every delivery carries the record's idempotency
// key, so receivers dedupe to exactly-once effects.
type Deliverer struct {
	src  Source
	snd  Sender
	opts DelivererOptions

	mu        sync.Mutex
	pos       uint64 // positions consumed through
	delivered uint64
	attempts  uint64
	retries   uint64
	gaveUp    uint64
	curSaves  uint64
	curErrs   uint64

	errMu       sync.Mutex
	errs        []error
	errAt       int
	errsDropped uint64
}

// NewDeliverer builds a deliverer over src. If opts.Cursor holds a
// saved record, delivery resumes just past it; otherwise it starts at
// opts.From.
func NewDeliverer(src Source, snd Sender, opts DelivererOptions) *Deliverer {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 10 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.Batch <= 0 {
		opts.Batch = 256
	}
	d := &Deliverer{src: src, snd: snd, opts: opts}
	if opts.From > 0 {
		d.pos = opts.From - 1
	}
	if opts.Cursor != nil {
		if rec, ok := opts.Cursor.Last(); ok {
			if p := src.FiringPos(rec); p > d.pos {
				d.pos = p
			}
		}
	}
	return d
}

// Pos returns the position consumed through.
func (d *Deliverer) Pos() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pos
}

// Pump delivers up to max records (<= 0 means drain to the current
// feed head), returning how many were delivered. On a record whose
// delivery exhausts MaxAttempts, Pump records the error and returns
// it; the deliverer stays positioned at the failed record and the
// next Pump retries it.
func (d *Deliverer) Pump(max int) (int, error) {
	done := 0
	for max <= 0 || done < max {
		want := d.opts.Batch
		if max > 0 && max-done < want {
			want = max - done
		}
		d.mu.Lock()
		pos := d.pos
		d.mu.Unlock()
		recs, _ := d.src.FiringsAfter(pos, want)
		if len(recs) == 0 {
			return done, nil
		}
		for _, rec := range recs {
			if err := d.deliverOne(rec); err != nil {
				return done, err
			}
			done++
			if max > 0 && done >= max {
				break
			}
		}
	}
	return done, nil
}

// deliverOne sends rec with bounded retries, then advances the cursor.
func (d *Deliverer) deliverOne(rec store.FiringRecord) error {
	key := KeyFor(rec)
	var lastErr error
	for attempt := 0; attempt < d.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoff := d.opts.BaseBackoff << (attempt - 1)
			if backoff > d.opts.MaxBackoff {
				backoff = d.opts.MaxBackoff
			}
			d.opts.Sleep(backoff)
			d.mu.Lock()
			d.retries++
			d.mu.Unlock()
		}
		d.mu.Lock()
		d.attempts++
		d.mu.Unlock()
		lastErr = d.send(rec, key)
		if lastErr == nil {
			d.mu.Lock()
			d.delivered++
			d.pos = d.src.FiringPos(rec)
			d.mu.Unlock()
			if d.opts.Cursor != nil {
				if err := d.opts.Cursor.Save(rec); err != nil {
					// A failed cursor save is survivable: delivery
					// happened, and a restart redelivers from the last
					// durable entry — the receiver's dedupe absorbs it.
					d.mu.Lock()
					d.curErrs++
					d.mu.Unlock()
					d.recordErr(fmt.Errorf("egress: cursor save at seq %d: %w", rec.Seq, err))
				} else {
					d.mu.Lock()
					d.curSaves++
					d.mu.Unlock()
				}
			}
			return nil
		}
	}
	d.mu.Lock()
	d.gaveUp++
	d.mu.Unlock()
	err := fmt.Errorf("egress: delivery of seq %d gave up after %d attempts: %w",
		rec.Seq, d.opts.MaxAttempts, lastErr)
	d.recordErr(err)
	return err
}

func (d *Deliverer) send(rec store.FiringRecord, key string) error {
	if d.opts.Faults != nil {
		// EgressDeliver models the endpoint failing before the payload
		// is accepted: the record was not delivered and must be
		// retried.
		if err := d.opts.Faults.Check(fault.EgressDeliver); err != nil {
			return err
		}
	}
	return d.snd.Send(rec, key)
}

// Run pumps until stop closes, polling the feed every poll interval
// when caught up. Delivery errors are retained in the bounded ring
// (see Errors); Run keeps going — the deliverer re-attempts the
// stalled record on the next cycle.
func (d *Deliverer) Run(stop <-chan struct{}, poll time.Duration) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			d.Pump(0)
		}
	}
}

// recordErr retains err in the bounded ring, evicting the oldest entry
// once full.
func (d *Deliverer) recordErr(err error) {
	d.errMu.Lock()
	if len(d.errs) < errRingCap {
		d.errs = append(d.errs, err)
	} else {
		d.errs[d.errAt] = err
		d.errAt = (d.errAt + 1) % errRingCap
		d.errsDropped++
	}
	d.errMu.Unlock()
}

// Errors returns the retained delivery errors, oldest first.
func (d *Deliverer) Errors() []error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	out := make([]error, 0, len(d.errs))
	out = append(out, d.errs[d.errAt:]...)
	out = append(out, d.errs[:d.errAt]...)
	return out
}

// Stats returns a snapshot of the delivery counters.
func (d *Deliverer) Stats() DelivererStats {
	head := d.src.FiringHead()
	d.mu.Lock()
	s := DelivererStats{
		Delivered:   d.delivered,
		Attempts:    d.attempts,
		Retries:     d.retries,
		GaveUp:      d.gaveUp,
		CursorSaves: d.curSaves,
		CursorErrs:  d.curErrs,
		Pos:         d.pos,
	}
	d.mu.Unlock()
	d.errMu.Lock()
	s.ErrsDropped = d.errsDropped
	d.errMu.Unlock()
	if head > s.Pos {
		s.Lag = head - s.Pos
	}
	return s
}

// PromMetrics renders the deliverer's counters as OpenMetrics series
// in the ode_engine_egress_* family, alongside the engine's feed
// gauges.
func (d *Deliverer) PromMetrics() []obs.PromMetric {
	s := d.Stats()
	return []obs.PromMetric{
		{Name: "ode_engine_egress_delivered_total", Help: "Firing records acknowledged by the delivery sender.", Value: float64(s.Delivered)},
		{Name: "ode_engine_egress_delivery_attempts_total", Help: "Delivery send attempts.", Value: float64(s.Attempts)},
		{Name: "ode_engine_egress_delivery_retries_total", Help: "Delivery re-attempts after a failure.", Value: float64(s.Retries)},
		{Name: "ode_engine_egress_delivery_gave_up_total", Help: "Delivery passes that exhausted bounded retries and stalled.", Value: float64(s.GaveUp)},
		{Name: "ode_engine_egress_cursor_saves_total", Help: "Durable delivery-cursor writes.", Value: float64(s.CursorSaves)},
		{Name: "ode_engine_egress_deliver_errors_dropped_total", Help: "Delivery errors evicted from the bounded error ring.", Value: float64(s.ErrsDropped)},
		{Name: "ode_engine_egress_cursor", Help: "Delivery position consumed through.", Type: "gauge", Value: float64(s.Pos)},
		{Name: "ode_engine_egress_lag", Help: "Feed positions the deliverer trails the head by.", Type: "gauge", Value: float64(s.Lag)},
	}
}

// HTTPSender POSTs each firing record as JSON to a webhook URL with
// the idempotency key in the Idempotency-Key header. Any non-2xx
// response is an error (and will be retried by the deliverer).
type HTTPSender struct {
	URL    string
	Client *http.Client
}

// Send implements Sender.
func (h *HTTPSender) Send(rec store.FiringRecord, idemKey string) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("egress: encode webhook body: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, h.URL, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("egress: build webhook request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", idemKey)
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("egress: webhook post: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("egress: webhook status %s", resp.Status)
	}
	return nil
}
