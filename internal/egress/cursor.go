package egress

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"ode/internal/fault"
	"ode/internal/store"
)

// cursorCompactAt bounds the cursor file: once it holds this many
// entries, Save rewrites it to just the latest one (atomically, via
// temp file + rename).
const cursorCompactAt = 512

// Cursor is a durable delivery cursor: an append-only file of framed
// firing records, each marking "everything through this record has
// been delivered". Appending is cheap (one small write + sync);
// recovery takes the last intact entry and discards any torn tail —
// losing a cursor write is always safe, it only means redelivery,
// which the receiver's idempotency-key dedupe absorbs.
type Cursor struct {
	path    string
	f       *os.File
	faults  *fault.Registry // nil outside the simulation harness
	goodLen int64           // clean byte length; torn bytes past it are overwritten
	entries int
	last    store.FiringRecord
	have    bool
	saves   uint64
}

// OpenCursor opens (creating if absent) the cursor file at path. A
// torn or corrupt tail — the residue of a crash mid-save — is
// discarded and truncated away; the cursor resumes from the last
// intact entry.
func OpenCursor(path string, faults *fault.Registry) (*Cursor, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("egress: cursor dir: %w", err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("egress: read cursor: %w", err)
	}
	c := &Cursor{path: path, faults: faults}
	for len(data) > int(c.goodLen) {
		rec, n, derr := DecodeRecord(data[c.goodLen:])
		if derr != nil {
			// Torn tail (crash mid-save) or garbage left by a torn
			// write later overwritten partially: either way the clean
			// prefix is the cursor's truth and the tail is discarded.
			break
		}
		c.last, c.have = rec, true
		c.entries++
		c.goodLen += int64(n)
	}
	if int64(len(data)) > c.goodLen {
		if err := os.Truncate(path, c.goodLen); err != nil {
			return nil, fmt.Errorf("egress: repair cursor tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("egress: open cursor: %w", err)
	}
	c.f = f
	return c, nil
}

// Last returns the last durably saved record (ok false if none).
func (c *Cursor) Last() (store.FiringRecord, bool) { return c.last, c.have }

// Saves returns how many saves have succeeded since open.
func (c *Cursor) Saves() uint64 { return c.saves }

// Save durably records that everything through rec has been
// delivered. On failure — including an injected torn write — the
// cursor's in-memory state is unchanged and the next Save overwrites
// the torn bytes, so the file never accumulates garbage between
// entries.
func (c *Cursor) Save(rec store.FiringRecord) error {
	if c.entries >= cursorCompactAt {
		if err := c.compact(rec); err != nil {
			return err
		}
		c.last, c.have = rec, true
		c.saves++
		return nil
	}
	b := AppendRecord(nil, rec)
	if c.faults != nil {
		// EgressCursor: a plain plan fails before any byte is written;
		// an ArmTear plan persists a torn prefix the next open must
		// detect and discard.
		if n, err := c.faults.CheckTear(fault.EgressCursor, len(b)); err != nil {
			if n > 0 {
				if _, werr := c.f.WriteAt(b[:n], c.goodLen); werr != nil {
					return fmt.Errorf("egress: write cursor: %w", werr)
				}
				if serr := c.f.Sync(); serr != nil {
					return fmt.Errorf("egress: sync cursor: %w", serr)
				}
			}
			return fmt.Errorf("egress: write cursor: %w", err)
		}
	}
	if _, err := c.f.WriteAt(b, c.goodLen); err != nil {
		return fmt.Errorf("egress: write cursor: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("egress: sync cursor: %w", err)
	}
	c.goodLen += int64(len(b))
	c.entries++
	c.last, c.have = rec, true
	c.saves++
	return nil
}

// compact rewrites the cursor file to hold only rec, atomically.
func (c *Cursor) compact(rec store.FiringRecord) error {
	b := AppendRecord(nil, rec)
	tmp, err := os.CreateTemp(filepath.Dir(c.path), "cursor-*")
	if err != nil {
		return fmt.Errorf("egress: cursor temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("egress: write cursor temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("egress: sync cursor temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("egress: close cursor temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		return fmt.Errorf("egress: publish cursor: %w", err)
	}
	f, err := os.OpenFile(c.path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("egress: reopen cursor: %w", err)
	}
	c.f.Close()
	c.f = f
	c.goodLen = int64(len(b))
	c.entries = 1
	return nil
}

// Close releases the file handle.
func (c *Cursor) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
