// Package egress is the consumer side of the durable firing feed: a
// binary record codec, persistent resumable cursors, subscriptions
// that stream historical then live firings, and a webhook/callback
// deliverer whose at-least-once retries are made effectively-once by
// domain-separated idempotency keys.
//
// The feed itself is produced by the store (internal/store): firing
// records captured inside a posting transaction ride the transaction's
// own WAL batch, so a committed transaction and its firings are atomic
// and recover together. This package consumes that feed through the
// narrow Source interface, which both a single Engine and a
// partitioned DB implement.
package egress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"ode/internal/store"
)

// Codec errors. ErrTruncated means the input ends mid-frame — the
// residue of a torn write, recoverable by discarding the tail.
// ErrCorrupt means a complete frame failed validation (bad checksum,
// unknown version, malformed body) — data loss, not a clean tear.
var (
	ErrTruncated = errors.New("egress: truncated record")
	ErrCorrupt   = errors.New("egress: corrupt record")
)

// codecVersion is the first payload byte of every encoded record.
const codecVersion = 1

// frame layout: 4-byte little-endian payload length, payload,
// 4-byte little-endian CRC-32 (IEEE) of the payload.
const (
	frameHdrLen = 4
	frameCRCLen = 4
	// maxPayload bounds a single record (class/trigger/kind names are
	// short identifiers; 1 MiB is generous) so a corrupt length prefix
	// cannot drive a huge allocation.
	maxPayload = 1 << 20
)

// AppendRecord appends the framed encoding of rec to buf and returns
// the extended slice.
func AppendRecord(buf []byte, rec store.FiringRecord) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length prefix, patched below
	p := len(buf)
	buf = append(buf, codecVersion)
	buf = binary.AppendUvarint(buf, rec.Seq)
	buf = binary.AppendUvarint(buf, rec.TxID)
	buf = binary.AppendUvarint(buf, uint64(rec.OID))
	buf = binary.AppendUvarint(buf, uint64(rec.Part))
	buf = binary.AppendVarint(buf, rec.AtNs)
	buf = appendString(buf, rec.Class)
	buf = appendString(buf, rec.Trigger)
	buf = appendString(buf, rec.Kind)
	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	var crc [frameCRCLen]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(buf, crc[:]...)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeRecord decodes the first framed record in b, returning the
// record and the number of bytes consumed. An incomplete frame returns
// ErrTruncated; a complete but invalid one returns ErrCorrupt.
func DecodeRecord(b []byte) (store.FiringRecord, int, error) {
	var rec store.FiringRecord
	if len(b) < frameHdrLen {
		return rec, 0, fmt.Errorf("%w: %d-byte length-prefix fragment", ErrTruncated, len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > maxPayload {
		return rec, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, n)
	}
	total := frameHdrLen + int(n) + frameCRCLen
	if len(b) < total {
		return rec, 0, fmt.Errorf("%w: frame promises %d bytes, %d present", ErrTruncated, total, len(b))
	}
	payload := b[frameHdrLen : frameHdrLen+int(n)]
	want := binary.LittleEndian.Uint32(b[frameHdrLen+int(n):])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return rec, 0, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	if payload[0] != codecVersion {
		return rec, 0, fmt.Errorf("%w: unknown version %d", ErrCorrupt, payload[0])
	}
	p := payload[1:]
	var err error
	if rec.Seq, p, err = takeUvarint(p); err != nil {
		return rec, 0, err
	}
	if rec.TxID, p, err = takeUvarint(p); err != nil {
		return rec, 0, err
	}
	var u uint64
	if u, p, err = takeUvarint(p); err != nil {
		return rec, 0, err
	}
	rec.OID = store.OID(u)
	if u, p, err = takeUvarint(p); err != nil {
		return rec, 0, err
	}
	if u > math.MaxInt32 {
		return rec, 0, fmt.Errorf("%w: implausible partition %d", ErrCorrupt, u)
	}
	rec.Part = int(u)
	if rec.AtNs, p, err = takeVarint(p); err != nil {
		return rec, 0, err
	}
	if rec.Class, p, err = takeString(p); err != nil {
		return rec, 0, err
	}
	if rec.Trigger, p, err = takeString(p); err != nil {
		return rec, 0, err
	}
	if rec.Kind, p, err = takeString(p); err != nil {
		return rec, 0, err
	}
	if len(p) != 0 {
		return rec, 0, fmt.Errorf("%w: %d trailing payload byte(s)", ErrCorrupt, len(p))
	}
	return rec, total, nil
}

// DecodeAll decodes every complete record in b. A truncated final
// frame returns the intact prefix alongside ErrTruncated (with the
// clean byte length recoverable by re-encoding); any corrupt frame
// fails outright.
func DecodeAll(b []byte) ([]store.FiringRecord, error) {
	var out []store.FiringRecord
	for len(b) > 0 {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			return out, err
		}
		out = append(out, rec)
		b = b[n:]
	}
	return out, nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, b[n:], nil
}

func takeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return v, b[n:], nil
}

func takeString(b []byte) (string, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("%w: string promises %d bytes, %d present", ErrCorrupt, n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}
