package egress_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ode/internal/egress"
	"ode/internal/engine"
	"ode/internal/obs"
	"ode/internal/part"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

func rec(seq uint64, trigger string, oid store.OID) store.FiringRecord {
	return store.FiringRecord{
		Seq:     seq,
		TxID:    seq * 7,
		OID:     oid,
		Part:    int(seq % 3),
		AtNs:    int64(seq) * 1_000_000,
		Class:   "account",
		Trigger: trigger,
		Kind:    "after withdraw",
	}
}

// --- codec ---

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []store.FiringRecord{
		rec(1, "Big", 42),
		rec(2, "Audit", 7),
		{Seq: 1<<63 + 5, TxID: 1 << 40, OID: 1<<31 + 9, Part: 1 << 20, AtNs: -3, Class: "日本", Trigger: "", Kind: strings.Repeat("k", 300)},
	}
	var buf []byte
	for _, r := range recs {
		buf = egress.AppendRecord(buf, r)
	}
	got, err := egress.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}

	// DecodeRecord reports the exact frame length.
	one := egress.AppendRecord(nil, recs[0])
	r0, n, err := egress.DecodeRecord(one)
	if err != nil || n != len(one) || r0 != recs[0] {
		t.Fatalf("DecodeRecord: rec=%+v n=%d err=%v", r0, n, err)
	}
}

func TestRecordCodecTruncation(t *testing.T) {
	full := egress.AppendRecord(nil, rec(9, "Big", 13))
	// Every proper prefix is a torn write: ErrTruncated, never success,
	// never ErrCorrupt (the length prefix promises more bytes).
	for n := 0; n < len(full); n++ {
		_, _, err := egress.DecodeRecord(full[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", n, len(full))
		}
		if n >= 4 && !errors.Is(err, egress.ErrTruncated) {
			t.Fatalf("prefix of %d bytes: %v, want ErrTruncated", n, err)
		}
	}
	// DecodeAll surfaces the intact prefix alongside ErrTruncated.
	two := egress.AppendRecord(nil, rec(1, "A", 1))
	two = egress.AppendRecord(two, rec(2, "B", 2))
	got, err := egress.DecodeAll(two[:len(two)-3])
	if !errors.Is(err, egress.ErrTruncated) || len(got) != 1 {
		t.Fatalf("DecodeAll on torn tail: %d records, err %v", len(got), err)
	}
}

func TestRecordCodecCorruption(t *testing.T) {
	full := egress.AppendRecord(nil, rec(3, "Big", 99))
	// Flipping any payload or CRC byte must be caught by the checksum.
	for i := 4; i < len(full); i++ {
		bad := bytes.Clone(full)
		bad[i] ^= 0x40
		if _, _, err := egress.DecodeRecord(bad); !errors.Is(err, egress.ErrCorrupt) {
			t.Fatalf("flip at %d: %v, want ErrCorrupt", i, err)
		}
	}
	// A zero or absurd length prefix is corrupt, not a huge allocation.
	for _, hdr := range [][]byte{{0, 0, 0, 0, 1, 2, 3, 4}, {0xff, 0xff, 0xff, 0x7f, 1}} {
		if _, _, err := egress.DecodeRecord(hdr); !errors.Is(err, egress.ErrCorrupt) {
			t.Fatalf("header %v: %v, want ErrCorrupt", hdr[:4], err)
		}
	}
}

// --- idempotency keys ---

func TestIdempotencyKeyStability(t *testing.T) {
	base := egress.IdempotencyKey("Big", 42, 7)
	if len(base) != 64 { // hex SHA-256
		t.Fatalf("key %q has length %d", base, len(base))
	}
	if egress.IdempotencyKey("Big", 42, 7) != base {
		t.Fatal("key is not deterministic")
	}
	if egress.KeyFor(store.FiringRecord{Trigger: "Big", OID: 42, Seq: 7, Class: "x", Kind: "y", TxID: 999, Part: 3}) != base {
		t.Fatal("KeyFor must depend only on (trigger, oid, seq)")
	}
	for _, other := range []string{
		egress.IdempotencyKey("Big2", 42, 7),
		egress.IdempotencyKey("Big", 43, 7),
		egress.IdempotencyKey("Big", 42, 8),
	} {
		if other == base {
			t.Fatal("distinct (trigger, oid, seq) collided")
		}
	}
}

// --- cursor ---

func TestCursorSaveReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor")
	c, err := egress.OpenCursor(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Last(); ok {
		t.Fatal("fresh cursor has an entry")
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := c.Save(rec(seq, "Big", 42)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Saves() != 3 {
		t.Fatalf("Saves() = %d, want 3", c.Saves())
	}
	c.Close()

	// A crash mid-save leaves a torn frame at the tail; reopen discards
	// it and resumes from the last intact entry.
	torn := egress.AppendRecord(nil, rec(4, "Big", 42))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := egress.OpenCursor(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	last, ok := c2.Last()
	if !ok || last != rec(3, "Big", 42) {
		t.Fatalf("reopened cursor Last = %+v (ok=%v), want seq 3", last, ok)
	}
	// The next save overwrites the repaired tail and survives reopen.
	if err := c2.Save(rec(5, "Big", 42)); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3, err := egress.OpenCursor(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if last, ok := c3.Last(); !ok || last.Seq != 5 {
		t.Fatalf("after repair+save, Last = %+v (ok=%v)", last, ok)
	}
}

func TestCursorCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursor")
	c, err := egress.OpenCursor(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const saves = 600 // past the compaction threshold
	for seq := uint64(1); seq <= saves; seq++ {
		if err := c.Save(rec(seq, "Big", 42)); err != nil {
			t.Fatal(err)
		}
	}
	frame := len(egress.AppendRecord(nil, rec(saves, "Big", 42)))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(frame*saves/2) {
		t.Fatalf("cursor file is %d bytes after %d saves; compaction never ran", fi.Size(), saves)
	}
	c.Close()
	c2, err := egress.OpenCursor(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if last, ok := c2.Last(); !ok || last.Seq != saves {
		t.Fatalf("after compaction, Last = %+v (ok=%v)", last, ok)
	}
}

// --- deliverer over an in-memory feed ---

// memFeed is an in-memory egress.Source whose positions are the
// records' sequence numbers.
type memFeed struct {
	mu   sync.Mutex
	recs []store.FiringRecord
}

func (m *memFeed) push(n int) {
	m.mu.Lock()
	for i := 0; i < n; i++ {
		m.recs = append(m.recs, rec(uint64(len(m.recs)+1), "Big", 42))
	}
	m.mu.Unlock()
}

func (m *memFeed) FiringsAfter(after uint64, max int) ([]store.FiringRecord, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	head := uint64(len(m.recs))
	if after >= head {
		return nil, head
	}
	end := head
	if max > 0 && after+uint64(max) < end {
		end = after + uint64(max)
	}
	return append([]store.FiringRecord(nil), m.recs[after:end]...), head
}

func (m *memFeed) FiringHead() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return uint64(len(m.recs))
}

func (m *memFeed) FiringPos(r store.FiringRecord) uint64 { return r.Seq }

func TestDelivererRetriesThenDelivers(t *testing.T) {
	src := &memFeed{}
	src.push(3)
	fails := 2
	var got []uint64
	snd := egress.SenderFunc(func(r store.FiringRecord, key string) error {
		if r.Seq == 2 && fails > 0 {
			fails--
			return fmt.Errorf("endpoint flake")
		}
		got = append(got, r.Seq)
		return nil
	})
	d := egress.NewDeliverer(src, snd, egress.DelivererOptions{Sleep: func(time.Duration) {}})
	n, err := d.Pump(0)
	if err != nil || n != 3 {
		t.Fatalf("Pump = %d, %v", n, err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("delivery order %v", got)
	}
	s := d.Stats()
	if s.Retries != 2 || s.GaveUp != 0 || s.Delivered != 3 || s.Lag != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDelivererStallsNeverSkips(t *testing.T) {
	src := &memFeed{}
	src.push(2)
	broken := true
	var got []uint64
	snd := egress.SenderFunc(func(r store.FiringRecord, key string) error {
		if r.Seq == 1 && broken {
			return fmt.Errorf("endpoint down")
		}
		got = append(got, r.Seq)
		return nil
	})
	d := egress.NewDeliverer(src, snd, egress.DelivererOptions{
		MaxAttempts: 2,
		Sleep:       func(time.Duration) {},
	})
	n, err := d.Pump(0)
	if err == nil || n != 0 {
		t.Fatalf("Pump over a dead endpoint = %d, %v", n, err)
	}
	if s := d.Stats(); s.GaveUp != 1 || s.Pos != 0 || s.Lag != 2 {
		t.Fatalf("stats after stall: %+v", s)
	}
	if len(d.Errors()) == 0 {
		t.Fatal("stall retained no error")
	}
	// The endpoint recovers: the same record is retried, nothing was
	// skipped.
	broken = false
	if n, err := d.Pump(0); err != nil || n != 2 {
		t.Fatalf("Pump after recovery = %d, %v", n, err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("delivery order %v", got)
	}
}

func TestDelivererErrorRingBounded(t *testing.T) {
	src := &memFeed{}
	src.push(1)
	snd := egress.SenderFunc(func(store.FiringRecord, string) error {
		return fmt.Errorf("always down")
	})
	d := egress.NewDeliverer(src, snd, egress.DelivererOptions{
		MaxAttempts: 1,
		Sleep:       func(time.Duration) {},
	})
	const pumps = 100
	for i := 0; i < pumps; i++ {
		if _, err := d.Pump(0); err == nil {
			t.Fatal("dead endpoint delivered")
		}
	}
	s := d.Stats()
	if s.ErrsDropped == 0 {
		t.Fatalf("after %d failed pumps ErrsDropped = 0", pumps)
	}
	errs := d.Errors()
	if len(errs) == 0 || uint64(len(errs))+s.ErrsDropped != pumps {
		t.Fatalf("ring holds %d errors, %d dropped, want %d total", len(errs), s.ErrsDropped, pumps)
	}
}

func TestDelivererCursorResume(t *testing.T) {
	src := &memFeed{}
	src.push(5)
	path := filepath.Join(t.TempDir(), "cursor")
	cur, err := egress.OpenCursor(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	var first []uint64
	d := egress.NewDeliverer(src, egress.SenderFunc(func(r store.FiringRecord, _ string) error {
		first = append(first, r.Seq)
		return nil
	}), egress.DelivererOptions{Cursor: cur})
	if n, _ := d.Pump(3); n != 3 {
		t.Fatalf("first incarnation delivered %d", n)
	}
	cur.Close() // crash: in-memory position lost, durable cursor kept

	cur2, err := egress.OpenCursor(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	var second []uint64
	d2 := egress.NewDeliverer(src, egress.SenderFunc(func(r store.FiringRecord, _ string) error {
		second = append(second, r.Seq)
		return nil
	}), egress.DelivererOptions{Cursor: cur2})
	if n, err := d2.Pump(0); err != nil || n != 2 {
		t.Fatalf("resumed incarnation delivered %d, %v", n, err)
	}
	if fmt.Sprint(first) != "[1 2 3]" || fmt.Sprint(second) != "[4 5]" {
		t.Fatalf("first %v, second %v", first, second)
	}
	if s := d2.Stats(); s.Lag != 0 || s.CursorSaves != 2 {
		t.Fatalf("resumed stats %+v", s)
	}
}

func TestSubscriptionBackfillThenLive(t *testing.T) {
	src := &memFeed{}
	src.push(4)
	sub := egress.Subscribe(src, 0)
	if got := sub.Poll(2); len(got) != 2 || got[0].Seq != 1 {
		t.Fatalf("backfill poll = %+v", got)
	}
	if sub.Lag() != 2 {
		t.Fatalf("Lag = %d, want 2", sub.Lag())
	}
	if got := sub.Poll(0); len(got) != 2 || got[1].Seq != 4 {
		t.Fatalf("catch-up poll = %+v", got)
	}
	if got := sub.Poll(0); len(got) != 0 {
		t.Fatalf("caught-up poll returned %d records", len(got))
	}
	src.push(1) // live append
	if got := sub.Poll(0); len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("live poll = %+v", got)
	}
	if sub.Pos() != 5 || sub.Lag() != 0 {
		t.Fatalf("pos=%d lag=%d", sub.Pos(), sub.Lag())
	}

	// A mid-stream subscription starts at its from position.
	late := egress.Subscribe(src, 4)
	if got := late.Poll(0); len(got) != 2 || got[0].Seq != 4 {
		t.Fatalf("late subscription poll = %+v", got)
	}
}

// --- OpenMetrics ---

// TestDelivererPromMetrics renders the deliverer's counters through
// the OpenMetrics writer and parses the exposition back: every
// ode_engine_egress_* series must be present, typed, and carry the
// stats snapshot's values.
func TestDelivererPromMetrics(t *testing.T) {
	src := &memFeed{}
	src.push(3)
	flaky := 1
	snd := egress.SenderFunc(func(r store.FiringRecord, _ string) error {
		if r.Seq == 2 && flaky > 0 {
			flaky--
			return fmt.Errorf("flake")
		}
		return nil
	})
	d := egress.NewDeliverer(src, snd, egress.DelivererOptions{Sleep: func(time.Duration) {}})
	if _, err := d.Pump(2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	obs.WriteProm(&buf, obs.NewRegistry().Snapshot(), d.PromMetrics())
	text := buf.String()

	samples := map[string]float64{}
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d: no value in %q", ln+1, line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			t.Fatalf("line %d: bad value %q", ln+1, line[sp+1:])
		}
		if _, ok := typed[line[:sp]]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, line[:sp])
		}
		samples[line[:sp]] = v
	}

	s := d.Stats()
	want := map[string]struct {
		val float64
		typ string
	}{
		"ode_engine_egress_delivered_total":              {float64(s.Delivered), "counter"},
		"ode_engine_egress_delivery_attempts_total":      {float64(s.Attempts), "counter"},
		"ode_engine_egress_delivery_retries_total":       {float64(s.Retries), "counter"},
		"ode_engine_egress_delivery_gave_up_total":       {float64(s.GaveUp), "counter"},
		"ode_engine_egress_cursor_saves_total":           {float64(s.CursorSaves), "counter"},
		"ode_engine_egress_deliver_errors_dropped_total": {float64(s.ErrsDropped), "counter"},
		"ode_engine_egress_cursor":                       {float64(s.Pos), "gauge"},
		"ode_engine_egress_lag":                          {float64(s.Lag), "gauge"},
	}
	if s.Delivered != 2 || s.Lag != 1 {
		t.Fatalf("unexpected stats for the exposition check: %+v", s)
	}
	for name, w := range want {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("missing series %s in:\n%s", name, text)
		}
		if got != w.val {
			t.Fatalf("%s = %g, want %g", name, got, w.val)
		}
		if typed[name] != w.typ {
			t.Fatalf("%s typed %q, want %q", name, typed[name], w.typ)
		}
	}
}

// --- concurrent subscribers over a partitioned DB ---

// bankDB opens an n-partition DB with one activated account per
// partition whose Big trigger fires on every withdrawal over 10.
func bankDB(t *testing.T, n int) (*part.DB, []store.OID) {
	t.Helper()
	db, err := part.Open(part.Options{N: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cls := &schema.Class{
		Name:   "account",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(0)}},
		Methods: []schema.Method{
			{Name: "withdraw", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "Big", Perpetual: true, Event: "after withdraw(a) && a > 10"},
		},
	}
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"withdraw": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()-ctx.Arg("a").AsInt()))
			},
		},
		Actions: map[string]engine.ActionFunc{
			"Big": func(*engine.ActionCtx) error { return nil },
		},
	}
	if err := db.Register(func(_ int, e *engine.Engine) error {
		_, rerr := e.RegisterClass(cls, impl, nil)
		return rerr
	}); err != nil {
		t.Fatal(err)
	}
	oids := make([]store.OID, n)
	for p := 0; p < n; p++ {
		pp := p
		err := db.Transact(p, func(tx *engine.Tx) error {
			oid, err := tx.NewObject("account", nil)
			if err != nil {
				return err
			}
			oids[pp] = oid
			return tx.Activate(oid, "Big")
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, oids
}

// TestConcurrentSubscribersPartitioned is the -race stress test:
// producer goroutines fire triggers across all partitions while
// subscriber goroutines tail the merged feed live and a backfill
// subscriber replays from position 0 mid-stream. Every subscriber must
// observe the same prefix-consistent stream: positions strictly
// increasing, no gaps, no duplicates, and — once producers stop — the
// identical full feed.
func TestConcurrentSubscribersPartitioned(t *testing.T) {
	const (
		parts     = 4
		producers = 4
		perProd   = 50
		tails     = 3
	)
	db, oids := bankDB(t, parts)

	want := producers * perProd // every withdrawal fires Big once
	var wg sync.WaitGroup
	stop := make(chan struct{})

	type tailResult struct {
		recs []store.FiringRecord
		err  error
	}
	results := make([]tailResult, tails+1)

	// Live tails: subscribe at the current head and poll until told to
	// stop, checking stream consistency as records arrive.
	tailFrom := func(idx int, from uint64) {
		defer wg.Done()
		sub := egress.Subscribe(db, from)
		var seen []store.FiringRecord
		pos := sub.Pos()
		for {
			recs := sub.Poll(7)
			for _, r := range recs {
				p := db.FiringPos(r)
				if p <= pos {
					results[idx].err = fmt.Errorf("position went backwards: %d after %d", p, pos)
					return
				}
				pos = p
				seen = append(seen, r)
			}
			if len(recs) == 0 {
				select {
				case <-stop:
					// Final drain, then report.
					for {
						recs := sub.Poll(0)
						if len(recs) == 0 {
							results[idx].recs = seen
							return
						}
						seen = append(seen, recs...)
					}
				default:
				}
			}
		}
	}
	for i := 0; i < tails; i++ {
		wg.Add(1)
		go tailFrom(i, 0)
	}

	// Producers: concurrent withdrawals routed across every partition.
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProd; i++ {
				oid := oids[(p+i)%parts]
				if _, err := db.Call(oid, "withdraw", value.Int(int64(20+i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	pwg.Wait()

	// Backfill racing the live tail: started only after the feed has
	// grown, replaying from 0.
	wg.Add(1)
	go tailFrom(tails, 0)

	close(stop)
	wg.Wait()

	full, head := db.FiringsAfter(0, 0)
	if len(full) != want || head != uint64(want) {
		t.Fatalf("feed holds %d records (head %d), want %d", len(full), head, want)
	}
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("subscriber %d: %v", i, res.err)
		}
		if len(res.recs) != want {
			t.Fatalf("subscriber %d saw %d records, want %d", i, len(res.recs), want)
		}
		for j, r := range res.recs {
			if r != full[j] {
				t.Fatalf("subscriber %d diverged at %d: %+v != %+v", i, j, r, full[j])
			}
		}
	}
}
