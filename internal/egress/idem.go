package egress

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"ode/internal/store"
)

// idemDomain separates this key family from any other SHA-256 use a
// receiver might share a dedupe table with. Bump the version if the
// key derivation ever changes.
const idemDomain = "ode/egress/v1"

// IdempotencyKey derives the delivery dedupe key for one firing:
// hash(trigger, object, firing-seq), domain-separated. The sequence
// number is assigned before the WAL write and recovered verbatim, so
// the key is stable across crash, retry and resume — a receiver that
// stores seen keys observes each firing's effect exactly once no
// matter how many times delivery is attempted. OIDs are unique across
// partitions (residue-class allocation), so the partition id is not
// part of the key.
func IdempotencyKey(trigger string, oid store.OID, seq uint64) string {
	h := sha256.New()
	h.Write([]byte(idemDomain))
	h.Write([]byte{0})
	h.Write([]byte(trigger))
	h.Write([]byte{0})
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(oid))
	binary.LittleEndian.PutUint64(b[8:], seq)
	h.Write(b[:])
	return hex.EncodeToString(h.Sum(nil))
}

// KeyFor is IdempotencyKey applied to a record.
func KeyFor(rec store.FiringRecord) string {
	return IdempotencyKey(rec.Trigger, rec.OID, rec.Seq)
}
