package egress_test

import (
	"bytes"
	"errors"
	"testing"

	"ode/internal/egress"
	"ode/internal/store"
)

// FuzzRecordCodec fuzzes the egress record codec from both ends:
// structured inputs must encode/decode round-trip exactly (with every
// proper prefix of the frame rejected as a torn write), and arbitrary
// bytes must never panic, never allocate unboundedly, and — when they
// do decode — re-encode canonically to the consumed frame.
func FuzzRecordCodec(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint64(42), uint32(0), int64(12345), "account", "Big", "after withdraw", []byte{})
	f.Add(uint64(1)<<63, uint64(0), ^uint64(0), uint32(1<<20), int64(-9), "日本", "", "k", []byte{0, 0, 0, 0})
	f.Add(uint64(9), uint64(9), uint64(9), uint32(9), int64(9), "c", "t", "k",
		egress.AppendRecord(nil, store.FiringRecord{Seq: 3, Class: "x", Trigger: "y", Kind: "z"}))

	f.Fuzz(func(t *testing.T, seq, txid, oid uint64, part uint32, atns int64, class, trigger, kind string, raw []byte) {
		rec := store.FiringRecord{
			Seq:     seq,
			TxID:    txid,
			OID:     store.OID(oid),
			Part:    int(part & 0x7fffffff), // decoder rejects partitions past MaxInt32
			AtNs:    atns,
			Class:   class,
			Trigger: trigger,
			Kind:    kind,
		}
		buf := egress.AppendRecord(nil, rec)
		got, n, err := egress.DecodeRecord(buf)
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if got != rec {
			t.Fatalf("round trip: %+v != %+v", got, rec)
		}
		// A torn write is any proper prefix: it must be rejected, and
		// past the length header the error must be ErrTruncated so the
		// cursor/feed readers know to discard rather than fail.
		for cut := 0; cut < len(buf); cut++ {
			_, _, perr := egress.DecodeRecord(buf[:cut])
			if perr == nil {
				t.Fatalf("prefix of %d/%d bytes decoded", cut, len(buf))
			}
			if cut >= 4 && !errors.Is(perr, egress.ErrTruncated) {
				t.Fatalf("prefix of %d bytes: %v, want ErrTruncated", cut, perr)
			}
		}

		// Arbitrary bytes: must not panic; a successful decode must be
		// canonical (re-encoding reproduces the consumed frame exactly).
		if rec2, n2, err2 := egress.DecodeRecord(raw); err2 == nil {
			if n2 <= 0 || n2 > len(raw) {
				t.Fatalf("decode of raw input consumed %d of %d bytes", n2, len(raw))
			}
			if re := egress.AppendRecord(nil, rec2); !bytes.Equal(re, raw[:n2]) {
				t.Fatalf("non-canonical frame: decoded %+v, re-encodes to %x, input was %x", rec2, re, raw[:n2])
			}
		}
	})
}
