package egress

import (
	"ode/internal/store"
)

// Source is a readable firing feed. Two implementations exist:
// *engine.Engine (positions are the records' own sequence numbers) and
// *part.DB (positions index the deterministically merged total-order
// feed across partitions; each record keeps its per-partition Seq).
// Positions are 1-based and strictly increasing; FiringsAfter(0, ...)
// reads from the beginning.
type Source interface {
	// FiringsAfter returns up to max records at positions > after, in
	// position order, plus the feed head (the highest position a
	// reader may currently see). max <= 0 means no limit.
	FiringsAfter(after uint64, max int) ([]store.FiringRecord, uint64)
	// FiringHead returns the feed head.
	FiringHead() uint64
	// FiringPos returns the position of rec in this source's cursor
	// domain (0 if the record is not on the feed).
	FiringPos(rec store.FiringRecord) uint64
}

// Subscription is a pull consumer over a Source: it streams historical
// records from its starting position and keeps returning new ones as
// commits append to the feed — backfill and live tail through the same
// Poll loop.
type Subscription struct {
	src Source
	pos uint64 // positions consumed through
}

// Subscribe opens a subscription whose first Poll returns the record
// at position from (0 and 1 both mean the beginning of the feed).
func Subscribe(src Source, from uint64) *Subscription {
	s := &Subscription{src: src}
	if from > 0 {
		s.pos = from - 1
	}
	return s
}

// Poll returns the next batch of records (up to max; <= 0 means all
// currently visible) and advances the subscription past them. An empty
// result means the subscription has caught up with the feed head.
func (s *Subscription) Poll(max int) []store.FiringRecord {
	recs, _ := s.src.FiringsAfter(s.pos, max)
	if len(recs) > 0 {
		s.pos = s.src.FiringPos(recs[len(recs)-1])
	}
	return recs
}

// Pos returns the position consumed through.
func (s *Subscription) Pos() uint64 { return s.pos }

// Lag returns how many positions the subscription trails the feed
// head.
func (s *Subscription) Lag() uint64 {
	head := s.src.FiringHead()
	if head <= s.pos {
		return 0
	}
	return head - s.pos
}
