// Package history records per-object event histories (paper §3.4: "an
// event history is associated with every object; it is an ordered set
// of logical events that were posted to the object"). The engine's
// automaton runtime does not need histories — that is the point of §5
// — so recording is optional: it feeds debugging, the oracle-based
// detector used to cross-check the automata, and the E1 baseline
// measurements.
package history

import (
	"sync"
	"time"

	"ode/internal/event"
	"ode/internal/store"
)

// Entry is one recorded happening: one point of an object's history.
type Entry struct {
	Seq    uint64 // position in the object's history, from 1
	Kind   event.Kind
	Symbol int // class-alphabet symbol, -1 if unknown
	TxID   uint64
	At     time.Time
}

// Log is one object's history.
type Log struct {
	mu      sync.Mutex
	entries []Entry
	nextSeq uint64
	limit   int // 0 = unbounded
	dropped uint64
}

// Append records a happening and returns its sequence number.
func (l *Log) Append(e Entry) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	e.Seq = l.nextSeq
	l.entries = append(l.entries, e)
	if l.limit > 0 && len(l.entries) > l.limit {
		over := len(l.entries) - l.limit
		l.entries = append(l.entries[:0], l.entries[over:]...)
		l.dropped += uint64(over)
	}
	return e.Seq
}

// Len returns the number of retained entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Dropped returns how many entries were evicted by the retention
// limit.
func (l *Log) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Entries returns a copy of the retained entries in order.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Symbols returns the retained symbol sequence — the automaton input
// replayable through the oracle.
func (l *Log) Symbols() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int, len(l.entries))
	for i, e := range l.entries {
		out[i] = e.Symbol
	}
	return out
}

// Tail returns the last n retained entries.
func (l *Log) Tail(n int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.entries) {
		n = len(l.entries)
	}
	out := make([]Entry, n)
	copy(out, l.entries[len(l.entries)-n:])
	return out
}

// Book holds the histories of many objects.
type Book struct {
	mu    sync.Mutex
	logs  map[store.OID]*Log
	limit int
}

// NewBook returns a Book whose logs retain at most limit entries each
// (0 = unbounded).
func NewBook(limit int) *Book {
	return &Book{logs: map[store.OID]*Log{}, limit: limit}
}

// Log returns (creating if needed) the history of oid.
func (b *Book) Log(oid store.OID) *Log {
	b.mu.Lock()
	defer b.mu.Unlock()
	l, ok := b.logs[oid]
	if !ok {
		l = &Log{limit: b.limit}
		b.logs[oid] = l
	}
	return l
}

// Peek returns the history of oid, or nil if none was recorded.
func (b *Book) Peek(oid store.OID) *Log {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.logs[oid]
}

// Objects returns the OIDs with recorded history.
func (b *Book) Objects() []store.OID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]store.OID, 0, len(b.logs))
	for oid := range b.logs {
		out = append(out, oid)
	}
	return out
}
