package history

import (
	"testing"

	"ode/internal/event"
)

func TestAppendAndSeq(t *testing.T) {
	l := &Log{}
	s1 := l.Append(Entry{Kind: event.MethodKind(event.After, "deposit"), Symbol: 3})
	s2 := l.Append(Entry{Kind: event.MethodKind(event.After, "withdraw"), Symbol: 4})
	if s1 != 1 || s2 != 2 || l.Len() != 2 {
		t.Fatalf("seqs %d %d len %d", s1, s2, l.Len())
	}
	es := l.Entries()
	if es[0].Seq != 1 || es[1].Seq != 2 || es[1].Symbol != 4 {
		t.Fatalf("entries %+v", es)
	}
	if got := l.Symbols(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("symbols %v", got)
	}
}

func TestRetentionLimit(t *testing.T) {
	l := &Log{limit: 3}
	for i := 0; i < 5; i++ {
		l.Append(Entry{Symbol: i})
	}
	if l.Len() != 3 || l.Dropped() != 2 {
		t.Fatalf("len %d dropped %d", l.Len(), l.Dropped())
	}
	es := l.Entries()
	if es[0].Symbol != 2 || es[0].Seq != 3 || es[2].Seq != 5 {
		t.Fatalf("entries %+v", es)
	}
}

func TestTail(t *testing.T) {
	l := &Log{}
	for i := 0; i < 4; i++ {
		l.Append(Entry{Symbol: i})
	}
	tail := l.Tail(2)
	if len(tail) != 2 || tail[0].Symbol != 2 || tail[1].Symbol != 3 {
		t.Fatalf("tail %+v", tail)
	}
	if got := l.Tail(99); len(got) != 4 {
		t.Fatalf("oversized tail %d", len(got))
	}
}

func TestBook(t *testing.T) {
	b := NewBook(10)
	if b.Peek(1) != nil {
		t.Fatal("peek of unrecorded object")
	}
	b.Log(1).Append(Entry{Symbol: 0})
	b.Log(2).Append(Entry{Symbol: 1})
	if b.Log(1) != b.Peek(1) {
		t.Fatal("Log not stable")
	}
	if len(b.Objects()) != 2 {
		t.Fatalf("objects %v", b.Objects())
	}
}
