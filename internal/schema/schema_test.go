package schema

import (
	"strings"
	"testing"

	"ode/internal/value"
)

func stockRoom() *Class {
	return &Class{
		Name: "stockRoom",
		Fields: []Field{
			{Name: "n", Kind: value.KindInt, Default: value.Int(0)},
			{Name: "balance", Kind: value.KindInt},
		},
		Methods: []Method{
			{Name: "deposit", Params: []Param{{"i", value.KindID}, {"q", value.KindInt}}, Mode: ModeUpdate},
			{Name: "withdraw", Params: []Param{{"i", value.KindID}, {"q", value.KindInt}}, Mode: ModeUpdate},
			{Name: "summary", Mode: ModeRead},
		},
		Triggers: []Trigger{
			{Name: "T6", Perpetual: true, Event: "after withdraw && q > 100"},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := stockRoom().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Class)
		want   string
	}{
		{func(c *Class) { c.Name = "" }, "empty name"},
		{func(c *Class) { c.Fields[0].Name = "" }, "field with empty name"},
		{func(c *Class) { c.Fields[1].Name = "n" }, "duplicate field"},
		{func(c *Class) { c.Fields[0].Kind = value.KindNull }, "invalid kind"},
		{func(c *Class) { c.Fields[0].Default = value.Str("x") }, "default"},
		{func(c *Class) { c.Methods[0].Name = "" }, "method with empty name"},
		{func(c *Class) { c.Methods[1].Name = "deposit" }, "duplicate method"},
		{func(c *Class) { c.Methods[0].Params[1].Name = "i" }, "duplicate parameter"},
		{func(c *Class) { c.Methods[0].Params[0].Name = "" }, "parameter with empty name"},
		{func(c *Class) { c.Triggers[0].Name = "" }, "trigger with empty name"},
		{func(c *Class) { c.Triggers = append(c.Triggers, c.Triggers[0]) }, "duplicate trigger"},
		{func(c *Class) { c.Triggers[0].Event = "" }, "no event"},
	}
	for i, tc := range cases {
		c := stockRoom()
		tc.mutate(c)
		err := c.Validate()
		if err == nil {
			t.Fatalf("case %d: Validate succeeded, want error containing %q", i, tc.want)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestLookups(t *testing.T) {
	c := stockRoom()
	if m := c.Method("withdraw"); m == nil || m.Mode != ModeUpdate || len(m.Params) != 2 {
		t.Fatalf("Method(withdraw) = %+v", m)
	}
	if c.Method("nosuch") != nil {
		t.Fatal("found nonexistent method")
	}
	if f := c.Field("balance"); f == nil || f.Kind != value.KindInt {
		t.Fatalf("Field(balance) = %+v", f)
	}
	if c.Field("nosuch") != nil {
		t.Fatal("found nonexistent field")
	}
	if tr := c.Trigger("T6"); tr == nil || !tr.Perpetual {
		t.Fatalf("Trigger(T6) = %+v", tr)
	}
	if c.Trigger("nosuch") != nil {
		t.Fatal("found nonexistent trigger")
	}
}

func TestDefaultFields(t *testing.T) {
	m := stockRoom().DefaultFields()
	if len(m) != 2 {
		t.Fatalf("DefaultFields = %v", m)
	}
	if !m["n"].Equal(value.Int(0)) {
		t.Fatalf("n default = %v", m["n"])
	}
	if !m["balance"].IsNull() {
		t.Fatalf("balance default = %v", m["balance"])
	}
}

func TestModeAndViewStrings(t *testing.T) {
	if ModeRead.String() != "read" || ModeUpdate.String() != "update" {
		t.Fatal("AccessMode strings")
	}
	if CommittedView.String() != "committed" || WholeView.String() != "whole" {
		t.Fatal("HistoryView strings")
	}
}
