// Package schema defines class metadata for the Ode object model
// (paper §2): typed fields, member-function signatures with access
// modes, and trigger declarations. A schema is pure description — the
// engine binds method implementations and trigger actions to it at
// registration time.
package schema

import (
	"fmt"

	"ode/internal/value"
)

// AccessMode classifies what a member function does to the object
// state; it drives the derived object-state events (paper §3.1 item 1:
// update / read / access through a public member function).
type AccessMode int

const (
	// ModeRead marks a member function that only reads the object.
	ModeRead AccessMode = iota
	// ModeUpdate marks a member function that may modify the object.
	ModeUpdate
)

func (m AccessMode) String() string {
	if m == ModeRead {
		return "read"
	}
	return "update"
}

// Param describes one formal parameter of a member function or a
// trigger. Parameter names are usable in masks (paper §3.1: "these
// parameters can also be used for defining predicates").
type Param struct {
	Name string
	Kind value.Kind
}

// Field describes one typed field of a class.
type Field struct {
	Name    string
	Kind    value.Kind
	Default value.Value
}

// Method describes a public member function.
type Method struct {
	Name   string
	Params []Param
	Mode   AccessMode
}

// HistoryView selects which event history a trigger observes
// (paper §6): the whole history including aborted transactions'
// operations, or only committed operations. Committed-view trigger
// state is stored with the object and rolled back on abort.
type HistoryView int

const (
	// CommittedView sees only committed transactions' events.
	CommittedView HistoryView = iota
	// WholeView sees every event, aborted transactions included.
	WholeView
)

func (v HistoryView) String() string {
	if v == WholeView {
		return "whole"
	}
	return "committed"
}

// Trigger declares a trigger on a class (paper §2):
//
//	trigger-name(parameters): [perpetual] event ==> trigger-action
//
// Event holds the event-expression source in the O++ surface syntax of
// internal/evlang; the action is bound by the engine.
type Trigger struct {
	Name      string
	Params    []Param
	Perpetual bool
	Event     string
	View      HistoryView
}

// Class describes an object type.
type Class struct {
	Name     string
	Fields   []Field
	Methods  []Method
	Triggers []Trigger
}

// Validate checks structural well-formedness: non-empty unique names
// throughout, known field kinds, and defaults matching their field
// kinds.
func (c *Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("schema: class with empty name")
	}
	fieldNames := map[string]bool{}
	for _, f := range c.Fields {
		if f.Name == "" {
			return fmt.Errorf("schema: class %s: field with empty name", c.Name)
		}
		if fieldNames[f.Name] {
			return fmt.Errorf("schema: class %s: duplicate field %q", c.Name, f.Name)
		}
		fieldNames[f.Name] = true
		switch f.Kind {
		case value.KindInt, value.KindFloat, value.KindBool, value.KindString,
			value.KindTime, value.KindID:
		default:
			return fmt.Errorf("schema: class %s: field %q has invalid kind %s", c.Name, f.Name, f.Kind)
		}
		if !f.Default.IsNull() && f.Default.Kind != f.Kind {
			return fmt.Errorf("schema: class %s: field %q default is %s, want %s",
				c.Name, f.Name, f.Default.Kind, f.Kind)
		}
	}
	methodNames := map[string]bool{}
	for _, m := range c.Methods {
		if m.Name == "" {
			return fmt.Errorf("schema: class %s: method with empty name", c.Name)
		}
		if methodNames[m.Name] {
			// O++ allows overloading distinguished by signature; this
			// model keeps one signature per name for clarity.
			return fmt.Errorf("schema: class %s: duplicate method %q", c.Name, m.Name)
		}
		methodNames[m.Name] = true
		if err := validateParams(c.Name, m.Name, m.Params); err != nil {
			return err
		}
	}
	trigNames := map[string]bool{}
	for _, tr := range c.Triggers {
		if tr.Name == "" {
			return fmt.Errorf("schema: class %s: trigger with empty name", c.Name)
		}
		if trigNames[tr.Name] {
			return fmt.Errorf("schema: class %s: duplicate trigger %q", c.Name, tr.Name)
		}
		trigNames[tr.Name] = true
		if tr.Event == "" {
			return fmt.Errorf("schema: class %s: trigger %q has no event", c.Name, tr.Name)
		}
		if err := validateParams(c.Name, tr.Name, tr.Params); err != nil {
			return err
		}
	}
	return nil
}

func validateParams(class, owner string, params []Param) error {
	seen := map[string]bool{}
	for _, p := range params {
		if p.Name == "" {
			return fmt.Errorf("schema: class %s: %s: parameter with empty name", class, owner)
		}
		if seen[p.Name] {
			return fmt.Errorf("schema: class %s: %s: duplicate parameter %q", class, owner, p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// Method returns the named method, or nil.
func (c *Class) Method(name string) *Method {
	for i := range c.Methods {
		if c.Methods[i].Name == name {
			return &c.Methods[i]
		}
	}
	return nil
}

// Field returns the named field, or nil.
func (c *Class) Field(name string) *Field {
	for i := range c.Fields {
		if c.Fields[i].Name == name {
			return &c.Fields[i]
		}
	}
	return nil
}

// Trigger returns the named trigger, or nil.
func (c *Class) Trigger(name string) *Trigger {
	for i := range c.Triggers {
		if c.Triggers[i].Name == name {
			return &c.Triggers[i]
		}
	}
	return nil
}

// DefaultFields materializes a fresh field map with declared defaults
// (null when absent).
func (c *Class) DefaultFields() map[string]value.Value {
	m := make(map[string]value.Value, len(c.Fields))
	for _, f := range c.Fields {
		m[f.Name] = f.Default
	}
	return m
}
