package store

import (
	"sync"
	"sync/atomic"
)

// Epoch-based copy-on-write committed view.
//
// The live object heap (stripes) holds records that in-flight
// transactions mutate in place under object locks; reading it
// consistently requires going through the lock manager. The epoch view
// is a second, lock-free index over the same objects that holds only
// *committed* versions: immutable deep clones published by the
// transaction manager at commit time, while the committing transaction
// still holds its object locks. Readers — Snapshot-style queries,
// `/debug` introspection, Explain — load two atomic pointers and never
// touch a lock, so they cannot stall a writer and a writer cannot
// stall them.
//
// Structure: one epochStripe per heap stripe. Each stripe holds an
// atomic pointer to an immutable map[OID] → cell, where a cell is an
// atomic pointer to the object's latest committed Record clone.
// Updating an existing object swaps the cell's pointer (no map copy);
// creating or deleting an object copies the stripe's map — the slow
// path, paid once per object lifetime rather than once per commit.
// A per-stripe publish mutex serializes map rebuilds; readers never
// take it.
//
// Consistency contract: a published version is a complete committed
// state of its object (clones are taken under the committer's object
// locks, after the WAL append succeeded), and per object the view
// steps monotonically through the object's commit history — a reader
// can never observe version n after having observed version n+1, and
// never observes uncommitted or aborted writes (rollback restores the
// live heap but deliberately leaves the epoch view alone: the last
// committed version is still the right answer). Across objects the
// view is updated one object at a time, so a reader racing a
// multi-object commit may see some of its objects already updated and
// others not yet — the same read-committed granularity the lock-based
// Get path offers between two separate calls.
type epochStripe struct {
	pubMu sync.Mutex
	cells atomic.Pointer[map[OID]*atomic.Pointer[Record]]
}

// initEpochView installs empty committed maps; called at Open before
// the store is shared.
func (s *Store) initEpochView() {
	for i := range s.epochs {
		m := make(map[OID]*atomic.Pointer[Record])
		s.epochs[i].cells.Store(&m)
	}
}

// seedEpochView publishes every recovered record as its object's
// committed version. Runs single-threaded at Open, after recover():
// everything the heap holds at that point came from committed WAL
// frames or the checkpoint snapshot.
func (s *Store) seedEpochView() {
	for i := range s.stripes {
		st := &s.stripes[i]
		m := make(map[OID]*atomic.Pointer[Record], len(st.objects))
		for oid, r := range st.objects {
			cell := new(atomic.Pointer[Record])
			cell.Store(r.clone())
			m[oid] = cell
		}
		s.epochs[i].cells.Store(&m)
	}
}

// PublishCommitted makes the current live state of the dirty objects,
// and the absence of the deleted ones, visible to epoch readers, then
// advances the epoch counter. The caller (the transaction manager)
// must still hold the objects' transaction locks and must have already
// made the commit durable — this is the in-memory analogue of the WAL
// commit frame. Dirty objects no longer in the heap were deleted later
// in the same transaction and are skipped (the deleted list covers
// them).
func (s *Store) PublishCommitted(dirty, deleted []OID) {
	// Objects already in the view take the fast path: swap the cell's
	// pointer. Objects new to the view are deferred per epoch stripe
	// and inserted in one map rebuild per stripe below, so a transaction
	// creating k objects in a stripe pays one copy instead of k
	// (publishing a bulk load one object at a time is quadratic).
	type pendingPub struct {
		oid OID
		img *Record
	}
	var missing [numStripes][]pendingPub
	anyMissing := false
	for _, oid := range dirty {
		st := s.stripeOf(oid)
		st.mu.RLock()
		r, ok := st.objects[oid]
		st.mu.RUnlock()
		if !ok {
			continue
		}
		// The committer still holds the object's lock, so the clone is a
		// consistent post-commit image.
		img := r.clone()
		es := &s.epochs[uint64(oid)%numStripes]
		es.pubMu.Lock()
		cur := *es.cells.Load()
		if cell, ok := cur[oid]; ok {
			cell.Store(img)
			es.pubMu.Unlock()
			continue
		}
		es.pubMu.Unlock()
		i := int(uint64(oid) % numStripes)
		missing[i] = append(missing[i], pendingPub{oid, img})
		anyMissing = true
	}
	if anyMissing {
		for i := range missing {
			if len(missing[i]) == 0 {
				continue
			}
			es := &s.epochs[i]
			es.pubMu.Lock()
			cur := *es.cells.Load()
			next := make(map[OID]*atomic.Pointer[Record], len(cur)+len(missing[i]))
			for k, v := range cur {
				next[k] = v
			}
			for _, pp := range missing[i] {
				cell := new(atomic.Pointer[Record])
				cell.Store(pp.img)
				next[pp.oid] = cell
			}
			es.cells.Store(&next)
			es.pubMu.Unlock()
		}
	}
	for _, oid := range deleted {
		es := &s.epochs[uint64(oid)%numStripes]
		es.pubMu.Lock()
		cur := *es.cells.Load()
		if _, ok := cur[oid]; ok {
			next := make(map[OID]*atomic.Pointer[Record], len(cur))
			for k, v := range cur {
				if k != oid {
					next[k] = v
				}
			}
			es.cells.Store(&next)
		}
		es.pubMu.Unlock()
	}
	s.epoch.Add(1)
}

// PublishCommittedNarrow is PublishCommitted for objects whose commit
// changed only trigger-activation state (the transaction manager's
// narrow-access path, used by cohort timer delivery): each new image is
// built by cloneNarrow from the previous committed image, sharing the
// untouched Fields map instead of deep-copying the record. Objects
// with no committed image yet fall back to the general path. The same
// caller obligations apply: object locks held, commit already durable.
func (s *Store) PublishCommittedNarrow(dirty []OID) {
	for _, oid := range dirty {
		es := &s.epochs[uint64(oid)%numStripes]
		es.pubMu.Lock()
		cur := *es.cells.Load()
		cell, ok := cur[oid]
		var prev *Record
		if ok {
			prev = cell.Load()
		}
		if prev == nil {
			es.pubMu.Unlock()
			// Never published (or committed-deleted then recreated): the
			// general path handles the map rebuild.
			s.PublishCommitted([]OID{oid}, nil)
			continue
		}
		st := s.stripeOf(oid)
		st.mu.RLock()
		r, rok := st.objects[oid]
		st.mu.RUnlock()
		if rok {
			cell.Store(r.cloneNarrow(prev))
		}
		es.pubMu.Unlock()
	}
	s.epoch.Add(1)
}

// Epoch returns the number of commit publications so far. Two equal
// Epoch readings around a set of GetCommitted calls prove no commit
// was published in between.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// GetCommitted returns the latest committed version of oid without
// taking any lock: two atomic loads. The returned record is an
// immutable shared clone — callers must treat it as read-only. ok is
// false for objects that have never committed (including objects
// created by still-running transactions) and for committed-deleted
// objects.
func (s *Store) GetCommitted(oid OID) (*Record, bool) {
	cur := *s.epochs[uint64(oid)%numStripes].cells.Load()
	cell, ok := cur[oid]
	if !ok {
		return nil, false
	}
	r := cell.Load()
	if r == nil {
		return nil, false
	}
	return r, true
}

// CommittedOIDs returns the identities of every object with a
// committed version, unordered, without locking. Stripes are read at
// independent instants, like OIDs.
func (s *Store) CommittedOIDs() []OID {
	var out []OID
	for i := range s.epochs {
		cur := *s.epochs[i].cells.Load()
		for oid := range cur {
			out = append(out, oid)
		}
	}
	return out
}
