package store

import (
	"sort"
	"sync"
)

// FiringRecord is one trigger firing as captured at commit time and
// appended to the durable egress feed. Seq is the logical, per-store
// sequence number (1-based, no wall-clock — logical ordering only);
// it is assigned before the WAL write and persisted inside the
// opFirings frame, so a record keeps its sequence number across crash
// recovery and the idempotency key derived from (Trigger, OID, Seq)
// is stable for the lifetime of the feed.
type FiringRecord struct {
	Seq     uint64
	TxID    uint64
	OID     OID
	Part    int // owning partition; stamped by the partitioned layer, 0 single-engine
	Class   string
	Trigger string
	Kind    string // happening kind ("after deposit", "before tcomplete", ...)
	AtNs    int64  // virtual-clock timestamp of the happening (informational)
}

// egressLog is the in-memory image of the firing feed. Appends happen
// under LogCommit's walMu.RLock, so multiple committers interleave:
// sequence numbers are reserved before the WAL write and resolved
// after it, and a record becomes visible to readers only once every
// lower-numbered reservation has resolved — otherwise a reader could
// observe seq 7 and conclude (wrongly) that seq 6 will never exist.
type egressLog struct {
	mu        sync.Mutex
	recs      []FiringRecord // resolved records, sorted by Seq
	nextSeq   uint64         // next sequence number to hand out (last reserved + 1; 1-based)
	published uint64         // highest seq visible to readers
	pending   []pendRange    // reserved-but-unresolved ranges, ascending
	appended  uint64         // total records resolved OK (monotone counter)
	sink      func([]FiringRecord)
	sunk      int        // recs[:sunk] have been handed to the sink
	emitMu    sync.Mutex // serializes sink calls so batches arrive in seq order
}

// pendRange is one in-flight reservation [lo, hi].
type pendRange struct {
	lo, hi uint64
}

// reserve hands out n consecutive sequence numbers and registers the
// range as pending. The caller must resolve it exactly once.
func (l *egressLog) reserve(n int) (lo uint64) {
	l.mu.Lock()
	if l.nextSeq == 0 {
		l.nextSeq = 1
	}
	lo = l.nextSeq
	l.nextSeq += uint64(n)
	l.pending = append(l.pending, pendRange{lo: lo, hi: lo + uint64(n) - 1})
	l.mu.Unlock()
	return lo
}

// resolveOK marks the reservation starting at lo as durably written
// and inserts its records. Records whose every predecessor has also
// resolved become visible and are emitted to the sink in seq order.
func (l *egressLog) resolveOK(lo uint64, recs []FiringRecord) {
	l.mu.Lock()
	l.dropPending(lo)
	// Insert sorted by Seq. The common case — no concurrent committer
	// overtook us — is a pure append.
	if n := len(l.recs); n == 0 || l.recs[n-1].Seq < recs[0].Seq {
		l.recs = append(l.recs, recs...)
	} else {
		l.recs = append(l.recs, recs...)
		sort.Slice(l.recs, func(i, j int) bool { return l.recs[i].Seq < l.recs[j].Seq })
	}
	l.appended += uint64(len(recs))
	l.recomputePublished()
	l.mu.Unlock()
	l.emit()
}

// resolveFail abandons the reservation starting at lo. When reclaim
// is true the sequence numbers are handed back — legal only if the
// caller knows no byte of the frame reached the file AND the range is
// still the newest one reserved; otherwise the numbers are burned and
// the feed carries a permanent gap (consumers tolerate seq jumps; the
// idempotency key of every other firing is untouched).
func (l *egressLog) resolveFail(lo uint64, reclaim bool) {
	l.mu.Lock()
	hi := l.dropPending(lo)
	if reclaim && hi+1 == l.nextSeq && (len(l.pending) == 0 || l.pending[len(l.pending)-1].hi < lo) {
		l.nextSeq = lo
	}
	l.recomputePublished()
	l.mu.Unlock()
	l.emit()
}

// dropPending removes the pending range starting at lo, returning its
// hi bound.
func (l *egressLog) dropPending(lo uint64) (hi uint64) {
	for i, p := range l.pending {
		if p.lo == lo {
			hi = p.hi
			l.pending = append(l.pending[:i], l.pending[i+1:]...)
			return hi
		}
	}
	return 0
}

// recomputePublished advances the visibility frontier: everything
// below the oldest still-pending reservation is final.
func (l *egressLog) recomputePublished() {
	if len(l.pending) == 0 {
		if l.nextSeq > 0 {
			l.published = l.nextSeq - 1
		}
		return
	}
	min := l.pending[0].lo
	for _, p := range l.pending[1:] {
		if p.lo < min {
			min = p.lo
		}
	}
	l.published = min - 1
}

// emit hands newly-visible records to the sink in sequence order.
// emitMu serializes concurrent resolvers so a later batch can never
// overtake an earlier one; the records are copied so the sink never
// aliases the log's backing array.
func (l *egressLog) emit() {
	l.emitMu.Lock()
	defer l.emitMu.Unlock()
	l.mu.Lock()
	sink := l.sink
	if sink == nil {
		l.mu.Unlock()
		return
	}
	hi := l.sunk
	for hi < len(l.recs) && l.recs[hi].Seq <= l.published {
		hi++
	}
	if hi == l.sunk {
		l.mu.Unlock()
		return
	}
	batch := make([]FiringRecord, hi-l.sunk)
	copy(batch, l.recs[l.sunk:hi])
	l.sunk = hi
	l.mu.Unlock()
	sink(batch)
}

// load installs recovered records wholesale (recovery path, before any
// concurrent access). seq is the highest sequence number ever issued.
func (l *egressLog) load(recs []FiringRecord, seq uint64) {
	l.mu.Lock()
	l.recs = recs
	l.appended = uint64(len(recs))
	l.nextSeq = seq + 1
	l.published = seq
	l.pending = nil
	l.sunk = len(recs)
	l.mu.Unlock()
}

// from returns up to max visible records with Seq > after, plus the
// current visibility frontier. max <= 0 means no limit.
func (l *egressLog) from(after uint64, max int) ([]FiringRecord, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Binary search for the first visible record past `after`.
	i := sort.Search(len(l.recs), func(i int) bool { return l.recs[i].Seq > after })
	j := i
	for j < len(l.recs) && l.recs[j].Seq <= l.published && (max <= 0 || j-i < max) {
		j++
	}
	if i == j {
		return nil, l.published
	}
	out := make([]FiringRecord, j-i)
	copy(out, l.recs[i:j])
	return out, l.published
}

// head returns the visibility frontier (highest seq a reader may see).
func (l *egressLog) head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.published
}

// count returns the total records resolved OK since open.
func (l *egressLog) count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// snapshotState returns the visible records and the highest issued
// seq for checkpointing. The caller (Checkpoint) holds walMu
// exclusively, so no reservation can be pending.
func (l *egressLog) snapshotState() ([]FiringRecord, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]FiringRecord, len(l.recs))
	copy(out, l.recs)
	seq := uint64(0)
	if l.nextSeq > 0 {
		seq = l.nextSeq - 1
	}
	return out, seq
}

// setSink installs the live-feed callback. Records already resolved
// are not replayed; callers backfill via from() first, then rely on
// the sink for the tail.
func (l *egressLog) setSink(fn func([]FiringRecord)) {
	l.mu.Lock()
	l.sunk = len(l.recs)
	l.sink = fn
	l.mu.Unlock()
}

// FiringsFrom returns up to max firing records with Seq > after from
// the durable egress feed, plus the current feed head. Only records
// whose durability is settled are returned: a record written by a
// still-in-flight group commit stays invisible until every earlier
// sequence number has resolved.
func (s *Store) FiringsFrom(after uint64, max int) ([]FiringRecord, uint64) {
	return s.egress.from(after, max)
}

// FiringSeq returns the highest firing sequence number visible to
// readers.
func (s *Store) FiringSeq() uint64 { return s.egress.head() }

// FiringsAppended returns the total firing records appended (resolved
// durable) since the store opened, including recovered ones.
func (s *Store) FiringsAppended() uint64 { return s.egress.count() }

// SetFiringSink installs fn as the live-feed callback: it is invoked
// with each batch of newly-visible firing records, in sequence order,
// outside the store's internal locks. One sink only; installing
// replaces the previous.
func (s *Store) SetFiringSink(fn func([]FiringRecord)) { s.egress.setSink(fn) }
