// Package store implements the persistent object store substrate under
// the Ode engine (paper §2: "persistent objects are allocated in
// persistent memory and they continue to exist after the program
// creating them has terminated; each persistent object is identified
// by a unique identifier, called the object identity").
//
// The store keeps every object in memory as a Record and, when opened
// on a directory, makes committed changes durable with a snapshot file
// plus a framed write-ahead log. Transactions log a Begin frame, Put /
// Delete frames, then a Commit frame; recovery applies only frames of
// committed transactions, so a crash mid-commit never exposes a
// partial transaction.
//
// Concurrency control (object-level locking) and undo are the
// transaction manager's concern (internal/txn); the store itself only
// guards its maps with a mutex and trusts callers to hold object locks
// while mutating records.
package store

import (
	"fmt"
	"sync"

	"ode/internal/value"
)

// OID is an object identity: a stable unique identifier for a
// persistent object, usable as an object reference in field values.
type OID uint64

// TrigActivation is the per-object state of one trigger: whether it is
// active, its activation parameters, and — for committed-view triggers
// — the automaton state. Keeping this inside the record implements the
// paper's §6 option where "the automaton state is considered part of
// the object data structure and hence will be restored correctly upon
// abort"; activation and deactivation are transactional for the same
// reason.
type TrigActivation struct {
	Active bool
	State  int
	Params map[string]value.Value
	// Shadow is the instance's symbol history, kept only when the
	// engine's shadow-oracle mode is on; stored here so it is rolled
	// back on abort exactly like State.
	Shadow []int
}

func (a *TrigActivation) clone() *TrigActivation {
	c := &TrigActivation{Active: a.Active, State: a.State}
	if a.Params != nil {
		c.Params = make(map[string]value.Value, len(a.Params))
		for k, v := range a.Params {
			c.Params[k] = v
		}
	}
	if a.Shadow != nil {
		c.Shadow = append([]int(nil), a.Shadow...)
	}
	return c
}

// Record is the stored representation of one object.
type Record struct {
	OID      OID
	Class    string
	Fields   map[string]value.Value
	Triggers map[string]*TrigActivation
}

// Trigger returns the named activation, creating it if absent.
func (r *Record) Trigger(name string) *TrigActivation {
	a, ok := r.Triggers[name]
	if !ok {
		a = &TrigActivation{}
		r.Triggers[name] = a
	}
	return a
}

// clone deep-copies the record (before-image support).
func (r *Record) clone() *Record {
	c := &Record{OID: r.OID, Class: r.Class}
	c.Fields = make(map[string]value.Value, len(r.Fields))
	for k, v := range r.Fields {
		c.Fields[k] = v
	}
	c.Triggers = make(map[string]*TrigActivation, len(r.Triggers))
	for k, v := range r.Triggers {
		c.Triggers[k] = v.clone()
	}
	return c
}

// Store is an in-memory object heap with optional durability.
type Store struct {
	mu      sync.RWMutex
	next    OID
	objects map[OID]*Record
	dir     string // "" → volatile
	wal     *walFile
}

// Open returns a store rooted at dir. With dir == "" the store is
// purely in-memory ("volatile memory" in the paper's terms). Otherwise
// the snapshot and WAL in dir are loaded and replayed, and subsequent
// committed transactions are appended to the WAL.
func Open(dir string) (*Store, error) {
	s := &Store{next: 1, objects: make(map[OID]*Record), dir: dir}
	if dir == "" {
		return s, nil
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	w, err := openWAL(dir)
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// Close releases the WAL file handle. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		err := s.wal.close()
		s.wal = nil
		return err
	}
	return nil
}

// Create allocates a new object with the given class and fields and
// returns its identity. Durability happens when the creating
// transaction commits (LogCommit).
func (s *Store) Create(class string, fields map[string]value.Value) *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	oid := s.next
	s.next++
	if fields == nil {
		fields = map[string]value.Value{}
	}
	r := &Record{
		OID:      oid,
		Class:    class,
		Fields:   fields,
		Triggers: map[string]*TrigActivation{},
	}
	s.objects[oid] = r
	return r
}

// Get returns the live record for oid. Callers mutate the record only
// while holding the object's transaction lock.
func (s *Store) Get(oid OID) (*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.objects[oid]
	if !ok {
		return nil, fmt.Errorf("store: no object %d", oid)
	}
	return r, nil
}

// Exists reports whether oid names a live object.
func (s *Store) Exists(oid OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[oid]
	return ok
}

// Delete removes the object from the heap. The undo log keeps aborted
// deletes reversible via Restore.
func (s *Store) Delete(oid OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[oid]; !ok {
		return fmt.Errorf("store: no object %d", oid)
	}
	delete(s.objects, oid)
	return nil
}

// Snapshot returns a deep copy of the record (a before-image).
func (s *Store) Snapshot(oid OID) (*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.objects[oid]
	if !ok {
		return nil, fmt.Errorf("store: no object %d", oid)
	}
	return r.clone(), nil
}

// Restore reinstates a before-image, resurrecting the object if it was
// deleted in the meantime.
func (s *Store) Restore(img *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[img.OID] = img.clone()
}

// Remove unconditionally deletes oid if present; used to undo an
// aborted creation.
func (s *Store) Remove(oid OID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, oid)
}

// Count returns the number of live objects.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// OIDs returns the identities of all live objects, unordered.
func (s *Store) OIDs() []OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]OID, 0, len(s.objects))
	for oid := range s.objects {
		out = append(out, oid)
	}
	return out
}

// LogCommit durably records a committed transaction: a Begin frame,
// one Put frame per dirty surviving object, one Delete frame per
// deleted object, then a Commit frame. It is a no-op for volatile
// stores.
func (s *Store) LogCommit(txID uint64, dirty []OID, deleted []OID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal == nil {
		return nil
	}
	if err := s.wal.append(frame{Op: opBegin, TxID: txID}); err != nil {
		return err
	}
	for _, oid := range dirty {
		r, ok := s.objects[oid]
		if !ok {
			continue // deleted later in the same transaction
		}
		if err := s.wal.append(frame{Op: opPut, TxID: txID, Rec: r.clone()}); err != nil {
			return err
		}
	}
	for _, oid := range deleted {
		if err := s.wal.append(frame{Op: opDelete, TxID: txID, OID: oid}); err != nil {
			return err
		}
	}
	return s.wal.append(frame{Op: opCommit, TxID: txID})
}

// Checkpoint writes a full snapshot and truncates the WAL. It is a
// no-op for volatile stores.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	if err := writeSnapshot(s.dir, s.next, s.objects); err != nil {
		return err
	}
	return s.wal.reset()
}

// recover loads the snapshot and replays committed WAL frames.
func (s *Store) recover() error {
	next, objects, err := readSnapshot(s.dir)
	if err != nil {
		return err
	}
	if objects != nil {
		s.next = next
		s.objects = objects
	}
	frames, err := readWAL(s.dir)
	if err != nil {
		return err
	}
	committed := map[uint64]bool{}
	for _, f := range frames {
		if f.Op == opCommit {
			committed[f.TxID] = true
		}
	}
	for _, f := range frames {
		if !committed[f.TxID] {
			continue
		}
		switch f.Op {
		case opPut:
			s.objects[f.Rec.OID] = f.Rec
			if f.Rec.OID >= s.next {
				s.next = f.Rec.OID + 1
			}
		case opDelete:
			delete(s.objects, f.OID)
		}
	}
	return nil
}
