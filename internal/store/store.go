// Package store implements the persistent object store substrate under
// the Ode engine (paper §2: "persistent objects are allocated in
// persistent memory and they continue to exist after the program
// creating them has terminated; each persistent object is identified
// by a unique identifier, called the object identity").
//
// The store keeps every object in memory as a Record and, when opened
// on a directory, makes committed changes durable with a snapshot file
// plus a framed write-ahead log. Transactions log a Begin frame, Put /
// Delete frames, then a Commit frame; recovery applies only frames of
// committed transactions, so a crash mid-commit never exposes a
// partial transaction.
//
// The object heap is hash-striped: OIDs map to numStripes stripes,
// each guarded by its own RWMutex, so Get/Exists on different objects
// never contend, and OID allocation is a single atomic counter.
// Whole-store operations (OIDs, Count, Checkpoint, recovery) visit the
// stripes in index order. Concurrent committers share the WAL through
// group commit (see wal.go): concurrent LogCommit calls coalesce into
// one buffered write and one Sync.
//
// Concurrency control (object-level locking) and undo are the
// transaction manager's concern (internal/txn); the store itself only
// guards its maps with stripe mutexes and trusts callers to hold
// object locks while mutating records.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ode/internal/fault"
	"ode/internal/value"
)

// OID is an object identity: a stable unique identifier for a
// persistent object, usable as an object reference in field values.
type OID uint64

// TrigActivation is the per-object state of one trigger: whether it is
// active, its activation parameters, and — for committed-view triggers
// — the automaton state. Keeping this inside the record implements the
// paper's §6 option where "the automaton state is considered part of
// the object data structure and hence will be restored correctly upon
// abort"; activation and deactivation are transactional for the same
// reason.
type TrigActivation struct {
	Active bool
	State  int
	Params map[string]value.Value
	// Dense carries the activation parameters in the trigger's declared
	// order, for compiled mask programs that resolve names to indexes.
	// It aliases the same values as Params; the engine rebuilds it
	// lazily for records recovered from logs written before it existed.
	Dense []value.Value
	// Shadow is the instance's symbol history, kept only when the
	// engine's shadow-oracle mode is on; stored here so it is rolled
	// back on abort exactly like State.
	Shadow []int
}

func (a *TrigActivation) clone() *TrigActivation {
	c := &TrigActivation{Active: a.Active, State: a.State}
	if a.Params != nil {
		c.Params = make(map[string]value.Value, len(a.Params))
		for k, v := range a.Params {
			c.Params[k] = v
		}
	}
	if a.Dense != nil {
		c.Dense = append([]value.Value(nil), a.Dense...)
	}
	if a.Shadow != nil {
		c.Shadow = append([]int(nil), a.Shadow...)
	}
	return c
}

// Record is the stored representation of one object.
type Record struct {
	OID      OID
	Class    string
	Fields   map[string]value.Value
	Triggers map[string]*TrigActivation

	// slots is the dense per-class trigger index: slots[i] aliases the
	// activation the engine's trigger i would find in Triggers, so the
	// posting hot path addresses activations by index instead of a map
	// probe per trigger per happening. Unexported on purpose: gob skips
	// it, so persistence stays name-keyed and the engine rebuilds the
	// index lazily (and re-aliases it on clone).
	slots []trigSlot
}

type trigSlot struct {
	name string
	act  *TrigActivation // nil until the trigger is first activated
}

// Trigger returns the named activation, creating it if absent.
func (r *Record) Trigger(name string) *TrigActivation {
	a, ok := r.Triggers[name]
	if !ok {
		a = &TrigActivation{}
		r.Triggers[name] = a
	}
	return a
}

// SlotCount returns the size of the dense trigger index (0 until the
// engine binds it).
func (r *Record) SlotCount() int { return len(r.slots) }

// Slot returns the activation bound at dense index i (nil if the
// trigger has never been activated on this object).
func (r *Record) Slot(i int) *TrigActivation { return r.slots[i].act }

// ResetSlots sizes the dense trigger index to n empty slots. The
// caller must hold the object's transaction lock.
func (r *Record) ResetSlots(n int) { r.slots = make([]trigSlot, n) }

// BindSlot binds dense index i to the named activation (which must be
// the same pointer stored in Triggers, or nil if absent there).
func (r *Record) BindSlot(i int, name string, act *TrigActivation) {
	r.slots[i] = trigSlot{name: name, act: act}
}

// ActImage is a narrow before-image of one activation: exactly the
// scalars a committed-view automaton step mutates in place (paper §6 —
// the automaton state is part of the object data structure). Shadow is
// captured as a length because the oracle history only ever appends;
// restoring truncates.
type ActImage struct {
	Name      string
	Active    bool
	State     int
	ShadowLen int
}

// CaptureActs appends one ActImage per activation of r to buf and
// returns the extended slice. Callers own buf — the transaction
// manager uses a per-transaction arena so capturing allocates nothing
// per object after the arena warms.
func (r *Record) CaptureActs(buf []ActImage) []ActImage {
	for k, a := range r.Triggers {
		buf = append(buf, ActImage{Name: k, Active: a.Active, State: a.State, ShadowLen: len(a.Shadow)})
	}
	return buf
}

// RestoreActs applies narrow images onto r's activations by name.
// Activations absent from r are skipped (under the narrow-access
// contract none disappear between capture and restore; the lookup is
// defensive).
func (r *Record) RestoreActs(imgs []ActImage) {
	for i := range imgs {
		im := &imgs[i]
		a, ok := r.Triggers[im.Name]
		if !ok {
			continue
		}
		a.Active, a.State = im.Active, im.State
		if len(a.Shadow) > im.ShadowLen {
			a.Shadow = a.Shadow[:im.ShadowLen]
		}
	}
}

// clone deep-copies the record (before-image support).
func (r *Record) clone() *Record {
	c := &Record{OID: r.OID, Class: r.Class}
	c.Fields = make(map[string]value.Value, len(r.Fields))
	for k, v := range r.Fields {
		c.Fields[k] = v
	}
	c.Triggers = make(map[string]*TrigActivation, len(r.Triggers))
	for k, v := range r.Triggers {
		c.Triggers[k] = v.clone()
	}
	if r.slots != nil {
		// Re-alias the dense index into the cloned activations by name
		// so the clone's slots never point into the original record.
		c.slots = make([]trigSlot, len(r.slots))
		for i, s := range r.slots {
			c.slots[i] = trigSlot{name: s.name, act: c.Triggers[s.name]}
		}
	}
	return c
}

// cloneNarrow builds a committed image for an object whose commit
// changed only trigger-activation state, sharing everything else with
// prev, the object's previous committed image. The share is sound
// because prev is immutable by construction and the narrow contract
// guarantees Fields did not change this commit; within each
// activation, Params and Dense are replaced wholesale by Activate
// (never mutated in place) and Shadow only appends, so a
// length-bounded shared slice header stays immutable to readers. The
// image carries no dense slot index — only the engine's live records
// need one.
func (r *Record) cloneNarrow(prev *Record) *Record {
	c := &Record{OID: r.OID, Class: r.Class, Fields: prev.Fields}
	c.Triggers = make(map[string]*TrigActivation, len(r.Triggers))
	for k, a := range r.Triggers {
		c.Triggers[k] = &TrigActivation{
			Active: a.Active, State: a.State,
			Params: a.Params, Dense: a.Dense, Shadow: a.Shadow,
		}
	}
	return c
}

// numStripes is the number of object-heap stripes (power of two).
const numStripes = 64

// stripe is one slice of the object heap with its own lock.
type stripe struct {
	mu      sync.RWMutex
	objects map[OID]*Record
}

// Options tunes a store. The zero value is the production default.
type Options struct {
	// DisableGroupCommit makes every LogCommit perform its own write
	// and Sync instead of coalescing with concurrent committers —
	// useful for latency-sensitive single-writer deployments and for
	// isolating group-commit behavior in tests.
	DisableGroupCommit bool
	// Faults optionally installs a fault-injection registry the WAL
	// consults at its named points (see internal/fault). nil — the
	// production default — keeps every consult a single branch.
	Faults *fault.Registry
	// OIDBase and OIDStride restrict allocation to the arithmetic
	// progression base, base+stride, base+2·stride, … — partition p of N
	// opens its store with base p+1 and stride N so every partition
	// allocates from a disjoint residue class and an OID's owner can be
	// recomputed from the OID alone ((oid-1) mod N), stable across
	// restarts by construction. Zero values mean base 1, stride 1 (the
	// unpartitioned default: every OID).
	OIDBase   uint64
	OIDStride uint64
}

// RecoveryInfo describes what the last Open recovered from disk.
type RecoveryInfo struct {
	// SnapshotLoaded reports whether a checkpoint snapshot was found.
	SnapshotLoaded bool
	// WALFrames is the number of complete frames replayed from the log.
	WALFrames int
	// TxApplied is the number of committed transactions applied.
	TxApplied int
	// TornTail reports that the log ended in a torn or undecodable
	// trailing record (crash mid-append). The tail was discarded and
	// the file truncated to the clean prefix before reopening, so
	// later appends cannot hide committed frames behind garbage.
	TornTail bool
	// TornTailBytes is the size of the discarded tail.
	TornTailBytes int64
	// TornDetail is the human-readable tear diagnosis.
	TornDetail string
}

// Store is an in-memory object heap with optional durability.
type Store struct {
	nextOID  atomic.Uint64 // next OID to allocate
	oidStep  uint64        // allocation stride (Options.OIDStride, ≥1)
	stripes  [numStripes]stripe
	dir      string // "" → volatile
	opts     Options
	recovery RecoveryInfo // filled by recover() at Open

	// walMu orders WAL lifecycle against commits: LogCommit holds the
	// read side for its whole append, Close/Checkpoint take the write
	// side. Lock order is always walMu → stripe locks.
	walMu sync.RWMutex
	wal   *walFile

	// Epoch-based copy-on-write committed view (see epoch.go): one
	// epochStripe per heap stripe plus a publication counter, giving
	// lock-free read-committed access for queries and introspection.
	epochs [numStripes]epochStripe
	epoch  atomic.Uint64

	// egress is the durable firing feed (see egress.go): records are
	// reserved sequence numbers before the WAL write and resolved after
	// it, recovered alongside the object heap at Open.
	egress egressLog
}

func (s *Store) stripeOf(oid OID) *stripe {
	return &s.stripes[uint64(oid)%numStripes]
}

// Open returns a store rooted at dir. With dir == "" the store is
// purely in-memory ("volatile memory" in the paper's terms). Otherwise
// the snapshot and WAL in dir are loaded and replayed, and subsequent
// committed transactions are appended to the WAL.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith is Open with explicit Options.
func OpenWith(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts}
	s.oidStep = opts.OIDStride
	if s.oidStep == 0 {
		s.oidStep = 1
	}
	base := opts.OIDBase
	if base == 0 {
		base = 1
	}
	s.nextOID.Store(base)
	for i := range s.stripes {
		s.stripes[i].objects = make(map[OID]*Record)
	}
	if dir == "" {
		s.initEpochView()
		return s, nil
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.seedEpochView()
	w, err := openWAL(dir, opts.DisableGroupCommit, opts.Faults)
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// Recovery returns what the last Open recovered (zero for volatile
// stores and stores opened on an empty directory).
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// Close releases the WAL file handle. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal != nil {
		err := s.wal.close()
		s.wal = nil
		return err
	}
	return nil
}

// Create allocates a new object with the given class and fields and
// returns its identity. Durability happens when the creating
// transaction commits (LogCommit).
func (s *Store) Create(class string, fields map[string]value.Value) *Record {
	oid := OID(s.nextOID.Add(s.oidStep) - s.oidStep)
	if fields == nil {
		fields = map[string]value.Value{}
	}
	r := &Record{
		OID:      oid,
		Class:    class,
		Fields:   fields,
		Triggers: map[string]*TrigActivation{},
	}
	st := s.stripeOf(oid)
	st.mu.Lock()
	st.objects[oid] = r
	st.mu.Unlock()
	return r
}

// Get returns the live record for oid. Callers mutate the record only
// while holding the object's transaction lock.
func (s *Store) Get(oid OID) (*Record, error) {
	st := s.stripeOf(oid)
	st.mu.RLock()
	r, ok := st.objects[oid]
	st.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: no object %d", oid)
	}
	return r, nil
}

// Exists reports whether oid names a live object.
func (s *Store) Exists(oid OID) bool {
	st := s.stripeOf(oid)
	st.mu.RLock()
	_, ok := st.objects[oid]
	st.mu.RUnlock()
	return ok
}

// Delete removes the object from the heap. The undo log keeps aborted
// deletes reversible via Restore.
func (s *Store) Delete(oid OID) error {
	st := s.stripeOf(oid)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.objects[oid]; !ok {
		return fmt.Errorf("store: no object %d", oid)
	}
	delete(st.objects, oid)
	return nil
}

// Snapshot returns a deep copy of the record (a before-image).
func (s *Store) Snapshot(oid OID) (*Record, error) {
	st := s.stripeOf(oid)
	st.mu.RLock()
	r, ok := st.objects[oid]
	st.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: no object %d", oid)
	}
	return r.clone(), nil
}

// Restore reinstates a before-image, resurrecting the object if it was
// deleted in the meantime.
func (s *Store) Restore(img *Record) {
	st := s.stripeOf(img.OID)
	st.mu.Lock()
	st.objects[img.OID] = img.clone()
	st.mu.Unlock()
}

// Remove unconditionally deletes oid if present; used to undo an
// aborted creation.
func (s *Store) Remove(oid OID) {
	st := s.stripeOf(oid)
	st.mu.Lock()
	delete(st.objects, oid)
	st.mu.Unlock()
}

// Count returns the number of live objects.
func (s *Store) Count() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		n += len(st.objects)
		st.mu.RUnlock()
	}
	return n
}

// OIDs returns the identities of all live objects, unordered. Stripes
// are visited in index order, but each is snapshotted independently.
func (s *Store) OIDs() []OID {
	var out []OID
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for oid := range st.objects {
			out = append(out, oid)
		}
		st.mu.RUnlock()
	}
	return out
}

// LogCommit durably records a committed transaction: a Begin frame,
// the dirty surviving objects (one Put frame each, or a single PutN
// frame when the transaction dirtied more than one object — the batch
// posting path), one Delete frame per deleted object, then a Commit
// frame. The frames are encoded into one contiguous buffer and handed
// to the WAL's group committer, which coalesces concurrent commits
// into a single write and Sync. For volatile stores only the egress
// feed is updated (nothing is logged).
//
// firings, when non-empty, are the trigger firings the transaction
// captured: they are stamped with consecutive feed sequence numbers
// here — before the WAL write, so the numbers are inside the durable
// opFirings frame and survive recovery unchanged — and become visible
// on the feed only if the commit succeeds.
func (s *Store) LogCommit(txID uint64, dirty []OID, deleted []OID, firings []FiringRecord) error {
	s.walMu.RLock()
	defer s.walMu.RUnlock()
	var lo uint64
	if len(firings) > 0 {
		// Fault point before any egress state changes: an injected
		// failure here aborts the commit cleanly — no sequence numbers
		// reserved, no gap in the feed.
		if s.opts.Faults != nil {
			if err := s.opts.Faults.Check(fault.EgressAppend); err != nil {
				return fmt.Errorf("store: egress append: %w", err)
			}
		}
		lo = s.egress.reserve(len(firings))
		for i := range firings {
			firings[i].Seq = lo + uint64(i)
			firings[i].TxID = txID
		}
	}
	if s.wal == nil {
		if len(firings) > 0 {
			s.egress.resolveOK(lo, firings)
		}
		return nil
	}
	var buf bytes.Buffer
	if err := encodeFrame(&buf, frame{Op: opBegin, TxID: txID}); err != nil {
		return s.egressAbort(lo, firings, err)
	}
	var recs []*Record
	for _, oid := range dirty {
		st := s.stripeOf(oid)
		st.mu.RLock()
		r, ok := st.objects[oid]
		st.mu.RUnlock()
		if !ok {
			continue // deleted later in the same transaction
		}
		// The committing transaction still holds the object's lock, so
		// the clone cannot race with another writer.
		recs = append(recs, r.clone())
	}
	switch {
	case len(recs) == 1:
		if err := encodeFrame(&buf, frame{Op: opPut, TxID: txID, Rec: recs[0]}); err != nil {
			return s.egressAbort(lo, firings, err)
		}
	case len(recs) > 1:
		if err := encodeFrame(&buf, frame{Op: opPutN, TxID: txID, Recs: recs}); err != nil {
			return s.egressAbort(lo, firings, err)
		}
	}
	for _, oid := range deleted {
		if err := encodeFrame(&buf, frame{Op: opDelete, TxID: txID, OID: oid}); err != nil {
			return s.egressAbort(lo, firings, err)
		}
	}
	if len(firings) > 0 {
		if err := encodeFrame(&buf, frame{Op: opFirings, TxID: txID, Firings: firings}); err != nil {
			return s.egressAbort(lo, firings, err)
		}
	}
	if err := encodeFrame(&buf, frame{Op: opCommit, TxID: txID}); err != nil {
		return s.egressAbort(lo, firings, err)
	}
	err := s.wal.commit(buf.Bytes())
	if len(firings) > 0 {
		if err == nil {
			s.egress.resolveOK(lo, firings)
		} else {
			// Reclaim the sequence numbers only when no byte of the
			// batch can have reached the file (an injected WALWrite
			// fault with Tear < 0). Any other failure is indeterminate
			// — the frame may be durable and recovery may resurrect it
			// — so the numbers are burned and the feed keeps a gap
			// rather than ever reusing a seq for a different firing.
			var fe *fault.Error
			reclaim := errors.As(err, &fe) && fe.Point == fault.WALWrite && fe.Tear < 0
			s.egress.resolveFail(lo, reclaim)
		}
	}
	return err
}

// egressAbort abandons an egress reservation after a pre-write encode
// failure (nothing reached the file, so the numbers are reclaimed) and
// passes the error through.
func (s *Store) egressAbort(lo uint64, firings []FiringRecord, err error) error {
	if len(firings) > 0 {
		s.egress.resolveFail(lo, true)
	}
	return err
}

// Checkpoint writes a full snapshot and truncates the WAL. It is a
// no-op for volatile stores.
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return nil
	}
	// Exclude committers first (walMu), then freeze the heap (all
	// stripes, in index order) — the same walMu → stripe order
	// LogCommit uses.
	s.walMu.Lock()
	defer s.walMu.Unlock()
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	merged := make(map[OID]*Record)
	for i := range s.stripes {
		for oid, r := range s.stripes[i].objects {
			merged[oid] = r
		}
	}
	// walMu is held exclusively, so no commit is in flight and the
	// egress log has no pending reservation: the snapshot captures the
	// complete feed, and the WAL reset below may discard its frames.
	firings, firingSeq := s.egress.snapshotState()
	err := writeSnapshot(s.dir, OID(s.nextOID.Load()), merged, firings, firingSeq)
	for i := len(s.stripes) - 1; i >= 0; i-- {
		s.stripes[i].mu.Unlock()
	}
	if err != nil {
		return err
	}
	return s.wal.reset()
}

// recover loads the snapshot and replays committed WAL frames. It runs
// single-threaded at Open, before the store is shared. A torn trailing
// WAL record (ErrTornTail) is recorded in RecoveryInfo and repaired by
// truncating the file to its clean prefix — appending after a torn
// tail would leave garbage in the middle of the log, and the next
// recovery would then silently stop at the tear and drop every later
// committed transaction.
func (s *Store) recover() error {
	img, err := readSnapshot(s.dir)
	if err != nil {
		return err
	}
	if img.Objects != nil {
		s.recovery.SnapshotLoaded = true
		s.nextOID.Store(uint64(img.Next))
		for oid, r := range img.Objects {
			s.stripeOf(oid).objects[oid] = r
		}
	}
	frames, scan, err := readWAL(s.dir)
	if err != nil {
		if !errors.Is(err, ErrTornTail) {
			return err
		}
		s.recovery.TornTail = true
		s.recovery.TornTailBytes = scan.tornBytes
		s.recovery.TornDetail = err.Error()
		if terr := os.Truncate(filepath.Join(s.dir, walName), scan.cleanLen); terr != nil {
			return fmt.Errorf("store: repair torn wal tail: %w", terr)
		}
	}
	s.recovery.WALFrames = len(frames)
	committed := map[uint64]bool{}
	for _, f := range frames {
		if f.Op == opCommit {
			committed[f.TxID] = true
		}
	}
	s.recovery.TxApplied = len(committed)
	// Rebuild the egress feed: the snapshot's records plus committed
	// opFirings frames. A crash between writeSnapshot and the WAL reset
	// leaves frames the snapshot already absorbed, so frames at or
	// below the snapshot's FiringSeq are duplicates and dropped.
	firings := img.Firings
	firingSeq := img.FiringSeq
	for _, f := range frames {
		if !committed[f.TxID] {
			continue
		}
		switch f.Op {
		case opPut:
			s.applyPut(f.Rec)
		case opPutN:
			for _, r := range f.Recs {
				s.applyPut(r)
			}
		case opDelete:
			delete(s.stripeOf(f.OID).objects, f.OID)
		case opFirings:
			for _, fr := range f.Firings {
				if fr.Seq <= img.FiringSeq {
					continue
				}
				firings = append(firings, fr)
				if fr.Seq > firingSeq {
					firingSeq = fr.Seq
				}
			}
		}
	}
	// Group commit can interleave transactions in the log in an order
	// that differs from sequence order; the feed is strictly
	// seq-ordered.
	sort.Slice(firings, func(i, j int) bool { return firings[i].Seq < firings[j].Seq })
	s.egress.load(firings, firingSeq)
	return nil
}

// applyPut installs one recovered committed record and bumps the OID
// allocator past it (by the store's stride — recovered OIDs are always
// in this store's residue class). Runs single-threaded at Open.
func (s *Store) applyPut(r *Record) {
	s.stripeOf(r.OID).objects[r.OID] = r
	if uint64(r.OID) >= s.nextOID.Load() {
		s.nextOID.Store(uint64(r.OID) + s.oidStep)
	}
}
