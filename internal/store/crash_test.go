package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ode/internal/value"
)

// TestCrashRecoveryProperty simulates crashes at every possible torn
// point of the write-ahead log: after a sequence of committed
// transactions, the WAL is truncated at a random byte offset and the
// store reopened. Recovery must expose a state equal to some prefix of
// the committed transaction sequence — never a partial transaction,
// never data from a later transaction without the earlier ones.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}

		// Build a ledger object and apply numbered committed updates;
		// after transaction k the object's "v" is k and "sum" is
		// 1+2+...+k, giving a consistency invariant per prefix.
		rec := s.Create("ledger", map[string]value.Value{
			"v":   value.Int(0),
			"sum": value.Int(0),
		})
		if err := s.LogCommit(1, []OID{rec.OID}, nil); err != nil {
			t.Fatal(err)
		}
		const txs = 8
		for k := 1; k <= txs; k++ {
			rec.Fields["v"] = value.Int(int64(k))
			rec.Fields["sum"] = value.Int(rec.Fields["sum"].AsInt() + int64(k))
			if err := s.LogCommit(uint64(k+1), []OID{rec.OID}, nil); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		walPath := filepath.Join(dir, walName)
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Intn(len(data) + 1)
		if err := os.WriteFile(walPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("iter %d cut %d: recovery failed: %v", iter, cut, err)
		}
		if s2.Exists(rec.OID) {
			got, _ := s2.Get(rec.OID)
			v := got.Fields["v"].AsInt()
			sum := got.Fields["sum"].AsInt()
			if v < 0 || v > txs {
				t.Fatalf("iter %d cut %d: v=%d out of range", iter, cut, v)
			}
			if want := v * (v + 1) / 2; sum != want {
				t.Fatalf("iter %d cut %d: torn state v=%d sum=%d (want %d)", iter, cut, v, sum, want)
			}
		}
		s2.Close()
	}
}

// TestCrashAfterCheckpoint cuts the WAL after a checkpoint: the
// snapshot alone must already carry everything up to the checkpoint.
func TestCrashAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	rec := s.Create("x", map[string]value.Value{"v": value.Int(1)})
	s.LogCommit(1, []OID{rec.OID}, nil)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rec.Fields["v"] = value.Int(2)
	s.LogCommit(2, []OID{rec.OID}, nil)
	s.Close()

	// Destroy the whole post-checkpoint WAL.
	if err := os.WriteFile(filepath.Join(dir, walName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(rec.OID)
	if err != nil || !got.Fields["v"].Equal(value.Int(1)) {
		t.Fatalf("checkpoint state lost: %+v, %v", got, err)
	}
}
