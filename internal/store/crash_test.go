package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ode/internal/fault"
	"ode/internal/value"
)

// TestCrashRecoveryProperty simulates crashes at every possible torn
// point of the write-ahead log: after a sequence of committed
// transactions, the WAL is truncated at a random byte offset and the
// store reopened. Recovery must expose a state equal to some prefix of
// the committed transaction sequence — never a partial transaction,
// never data from a later transaction without the earlier ones.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}

		// Build a ledger object and apply numbered committed updates;
		// after transaction k the object's "v" is k and "sum" is
		// 1+2+...+k, giving a consistency invariant per prefix.
		rec := s.Create("ledger", map[string]value.Value{
			"v":   value.Int(0),
			"sum": value.Int(0),
		})
		if err := s.LogCommit(1, []OID{rec.OID}, nil, nil); err != nil {
			t.Fatal(err)
		}
		const txs = 8
		for k := 1; k <= txs; k++ {
			rec.Fields["v"] = value.Int(int64(k))
			rec.Fields["sum"] = value.Int(rec.Fields["sum"].AsInt() + int64(k))
			if err := s.LogCommit(uint64(k+1), []OID{rec.OID}, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		walPath := filepath.Join(dir, walName)
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Intn(len(data) + 1)
		if err := os.WriteFile(walPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("iter %d cut %d: recovery failed: %v", iter, cut, err)
		}
		if s2.Exists(rec.OID) {
			got, _ := s2.Get(rec.OID)
			v := got.Fields["v"].AsInt()
			sum := got.Fields["sum"].AsInt()
			if v < 0 || v > txs {
				t.Fatalf("iter %d cut %d: v=%d out of range", iter, cut, v)
			}
			if want := v * (v + 1) / 2; sum != want {
				t.Fatalf("iter %d cut %d: torn state v=%d sum=%d (want %d)", iter, cut, v, sum, want)
			}
		}
		s2.Close()
	}
}

// TestCrashAfterCheckpoint cuts the WAL after a checkpoint: the
// snapshot alone must already carry everything up to the checkpoint.
func TestCrashAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	rec := s.Create("x", map[string]value.Value{"v": value.Int(1)})
	s.LogCommit(1, []OID{rec.OID}, nil, nil)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rec.Fields["v"] = value.Int(2)
	s.LogCommit(2, []OID{rec.OID}, nil, nil)
	s.Close()

	// Destroy the whole post-checkpoint WAL.
	if err := os.WriteFile(filepath.Join(dir, walName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(rec.OID)
	if err != nil || !got.Fields["v"].Equal(value.Int(1)) {
		t.Fatalf("checkpoint state lost: %+v, %v", got, err)
	}
}

// TestCrashBetweenSyncAndAck simulates a crash in the window between
// the group-commit leader's Sync returning and the committer being
// notified: the commit is durable on disk, but the caller only ever
// sees an error. Recovery must replay the transaction — losing it
// would break the "acknowledged or durable" half of the contract from
// the other side: an unacknowledged commit may still be durable, and
// the store must converge on the on-disk truth.
func TestCrashBetweenSyncAndAck(t *testing.T) {
	dir := t.TempDir()
	reg := fault.New()
	s, err := OpenWith(dir, Options{Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	rec := s.Create("acct", map[string]value.Value{"bal": value.Int(7)})
	reg.ArmNext(fault.WALAfterSync)
	err = s.LogCommit(1, []OID{rec.OID}, nil, nil)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("LogCommit: got %v, want injected ack failure", err)
	}
	// The "crash": abandon the store without further writes (Close only
	// releases the file handle; the WAL already holds the synced batch).
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if got := s2.Recovery().TxApplied; got != 1 {
		t.Fatalf("recovered %d committed transactions, want 1", got)
	}
	got, err := s2.Get(rec.OID)
	if err != nil || !got.Fields["bal"].Equal(value.Int(7)) {
		t.Fatalf("unacknowledged commit lost after recovery: %+v, %v", got, err)
	}
}

// TestGroupCommitAckCrashFollowersDurable is the concurrent version:
// several committers race into the group-commit queue, the leader's
// shared Sync succeeds, and the crash lands before any follower is
// notified. Every committer — leader and followers alike — receives
// the failure, yet after reopening every one of their transactions
// must be present: a follower whose notification never arrived still
// finds its commit durable, because followers are only acked after
// the leader's Sync and the fault fires strictly after that Sync.
func TestGroupCommitAckCrashFollowersDurable(t *testing.T) {
	const committers = 6
	dir := t.TempDir()
	reg := fault.New()
	s, err := OpenWith(dir, Options{Faults: reg}) // group commit on (the default)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*Record, committers)
	for i := range recs {
		recs[i] = s.Create("acct", map[string]value.Value{"n": value.Int(int64(i))})
	}
	// However the concurrent commits coalesce — anywhere from one batch
	// of six to six batches of one — each batch performs exactly one
	// post-sync ack consult, so arming one plan per possible batch
	// guarantees every flush in the window fails after its Sync.
	base := reg.Consults(fault.WALAfterSync)
	for i := uint64(1); i <= committers; i++ {
		reg.ArmAt(fault.WALAfterSync, base+i)
	}
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.LogCommit(uint64(i+1), []OID{recs[i].OID}, nil, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("committer %d: got %v, want injected ack failure", i, err)
		}
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if got := s2.Recovery().TxApplied; got != committers {
		t.Fatalf("recovered %d committed transactions, want %d", got, committers)
	}
	for i, rec := range recs {
		got, err := s2.Get(rec.OID)
		if err != nil || !got.Fields["n"].Equal(value.Int(int64(i))) {
			t.Fatalf("committer %d: unacknowledged commit lost: %+v, %v", i, got, err)
		}
	}
}
