package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ode/internal/value"
)

// TestGroupCommitConcurrentDurability drives many concurrent LogCommit
// calls through the group committer and verifies every acknowledged
// commit is durable after reopen.
func TestGroupCommitConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const n = 32
	oids := make([]OID, n)
	for i := range oids {
		oids[i] = s.Create("x", map[string]value.Value{"v": value.Int(int64(i))}).OID
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.LogCommit(uint64(i+1), []OID{oids[i]}, nil, nil); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, oid := range oids {
		r, err := s2.Get(oid)
		if err != nil {
			t.Fatalf("object %d lost: %v", oid, err)
		}
		if !r.Fields["v"].Equal(value.Int(int64(i))) {
			t.Fatalf("object %d recovered %v, want %d", oid, r.Fields["v"], i)
		}
	}
}

// TestCrashMidBatchRecovery simulates a crash partway through writing a
// commit batch: every previously acknowledged commit must recover, the
// torn trailing transaction must be discarded, and recovery must not
// error on the torn tail.
func TestCrashMidBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	oids := make([]OID, n)
	for i := range oids {
		oids[i] = s.Create("x", map[string]value.Value{"v": value.Int(int64(i))}).OID
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.LogCommit(uint64(i+1), []OID{oids[i]}, nil, nil); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	// Append one more transaction whose Commit frame is torn mid-body —
	// the crash point of a batch that never finished its Write.
	rec := &Record{
		OID:      oids[0],
		Class:    "x",
		Fields:   map[string]value.Value{"v": value.Int(999)},
		Triggers: map[string]*TrigActivation{},
	}
	var buf bytes.Buffer
	for _, fr := range []frame{
		{Op: opBegin, TxID: 99},
		{Op: opPut, TxID: 99, Rec: rec},
		{Op: opCommit, TxID: 99},
	} {
		if err := encodeFrame(&buf, fr); err != nil {
			t.Fatal(err)
		}
	}
	torn := buf.Bytes()[:buf.Len()-3]
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, oid := range oids {
		r, err := s2.Get(oid)
		if err != nil {
			t.Fatalf("acked commit for object %d lost: %v", oid, err)
		}
		if !r.Fields["v"].Equal(value.Int(int64(i))) {
			t.Fatalf("object %d recovered %v, want %d", oid, r.Fields["v"], i)
		}
	}
	// The torn transaction's Put must not have been applied.
	r, _ := s2.Get(oids[0])
	if r.Fields["v"].Equal(value.Int(999)) {
		t.Fatal("torn transaction applied on recovery")
	}
}

// TestDisableGroupCommit verifies the Options knob: commits still reach
// the log durably with batching off, concurrently or not.
func TestDisableGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{DisableGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.wal.direct {
		t.Fatal("DisableGroupCommit did not put the WAL in direct mode")
	}

	const n = 8
	oids := make([]OID, n)
	for i := range oids {
		oids[i] = s.Create("x", map[string]value.Value{"v": value.Int(int64(i))}).OID
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.LogCommit(uint64(i+1), []OID{oids[i]}, nil, nil); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, oid := range oids {
		r, err := s2.Get(oid)
		if err != nil {
			t.Fatalf("object %d lost: %v", oid, err)
		}
		if !r.Fields["v"].Equal(value.Int(int64(i))) {
			t.Fatalf("object %d recovered %v, want %d", oid, r.Fields["v"], i)
		}
	}
}
