package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ode/internal/value"
)

func TestCreateGetDelete(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	r := s.Create("account", map[string]value.Value{"balance": value.Int(100)})
	if r.OID != 1 || r.Class != "account" {
		t.Fatalf("record %+v", r)
	}
	got, err := s.Get(r.OID)
	if err != nil || !got.Fields["balance"].Equal(value.Int(100)) {
		t.Fatalf("Get: %+v, %v", got, err)
	}
	if !s.Exists(r.OID) || s.Count() != 1 {
		t.Fatal("Exists/Count")
	}
	r2 := s.Create("account", nil)
	if r2.OID != 2 {
		t.Fatalf("second oid %d", r2.OID)
	}
	if err := s.Delete(r.OID); err != nil {
		t.Fatal(err)
	}
	if s.Exists(r.OID) {
		t.Fatal("deleted object still exists")
	}
	if _, err := s.Get(r.OID); err == nil {
		t.Fatal("Get of deleted object succeeded")
	}
	if err := s.Delete(r.OID); err == nil {
		t.Fatal("double delete succeeded")
	}
	if got := s.OIDs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("OIDs = %v", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s, _ := Open("")
	r := s.Create("account", map[string]value.Value{"balance": value.Int(100)})
	r.Trigger("t1").State = 3

	img, err := s.Snapshot(r.OID)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the live record; the snapshot must be unaffected.
	r.Fields["balance"] = value.Int(0)
	r.Trigger("t1").State = 9
	if !img.Fields["balance"].Equal(value.Int(100)) || img.Trigger("t1").State != 3 {
		t.Fatal("snapshot aliases live record")
	}

	s.Restore(img)
	back, _ := s.Get(r.OID)
	if !back.Fields["balance"].Equal(value.Int(100)) || back.Trigger("t1").State != 3 {
		t.Fatal("restore did not reinstate the before-image")
	}
	// Restoring also resurrects a deleted object.
	s.Delete(r.OID)
	s.Restore(img)
	if !s.Exists(r.OID) {
		t.Fatal("restore did not resurrect")
	}

	if _, err := s.Snapshot(999); err == nil {
		t.Fatal("snapshot of missing object succeeded")
	}
	s.Remove(r.OID)
	if s.Exists(r.OID) {
		t.Fatal("Remove left the object")
	}
	s.Remove(r.OID) // idempotent
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Create("account", map[string]value.Value{"balance": value.Int(7)})
	b := s.Create("account", map[string]value.Value{"balance": value.Int(8)})
	if err := s.LogCommit(1, []OID{a.OID, b.OID}, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Second transaction updates a and deletes b.
	a.Fields["balance"] = value.Int(70)
	s.Delete(b.OID)
	if err := s.LogCommit(2, []OID{a.OID}, []OID{b.OID}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 1 {
		t.Fatalf("recovered %d objects, want 1", s2.Count())
	}
	ra, err := s2.Get(a.OID)
	if err != nil || !ra.Fields["balance"].Equal(value.Int(70)) {
		t.Fatalf("recovered a: %+v, %v", ra, err)
	}
	if s2.Exists(b.OID) {
		t.Fatal("deleted object recovered")
	}
	// OID allocation resumes past recovered objects.
	c := s2.Create("account", nil)
	if c.OID <= a.OID {
		t.Fatalf("oid reuse: %d", c.OID)
	}
}

func TestUncommittedFramesIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	a := s.Create("x", map[string]value.Value{"v": value.Int(1)})
	s.LogCommit(1, []OID{a.OID}, nil, nil)
	// Simulate a crash mid-commit: Begin+Put without Commit.
	rec := a.clone()
	rec.Fields["v"] = value.Int(999)
	var buf bytes.Buffer
	if err := encodeFrame(&buf, frame{Op: opBegin, TxID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := encodeFrame(&buf, frame{Op: opPut, TxID: 2, Rec: rec}); err != nil {
		t.Fatal(err)
	}
	if err := s.wal.commit(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ra, _ := s2.Get(a.OID)
	if !ra.Fields["v"].Equal(value.Int(1)) {
		t.Fatalf("uncommitted frame applied: %v", ra.Fields["v"])
	}
}

func TestTornFrameIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	a := s.Create("x", map[string]value.Value{"v": value.Int(1)})
	s.LogCommit(1, []OID{a.OID}, nil, nil)
	s.Close()

	// Append garbage: a length prefix promising more bytes than exist.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0x01, 0x02})
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Exists(a.OID) {
		t.Fatal("intact prefix lost")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	a := s.Create("x", map[string]value.Value{"v": value.Int(5)})
	s.LogCommit(1, []OID{a.OID}, nil, nil)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, walName))
	if err != nil || st.Size() != 0 {
		t.Fatalf("wal after checkpoint: %v bytes, %v", st.Size(), err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ra, err := s2.Get(a.OID)
	if err != nil || !ra.Fields["v"].Equal(value.Int(5)) {
		t.Fatalf("snapshot recovery: %+v, %v", ra, err)
	}
	// A post-checkpoint commit lands in the fresh WAL and both layers
	// recover together.
	ra.Fields["v"] = value.Int(6)
	s2.LogCommit(2, []OID{a.OID}, nil, nil)
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	ra3, _ := s3.Get(a.OID)
	if !ra3.Fields["v"].Equal(value.Int(6)) {
		t.Fatal("post-checkpoint commit lost")
	}
}

func TestVolatileStoreNoFiles(t *testing.T) {
	s, _ := Open("")
	a := s.Create("x", nil)
	if err := s.LogCommit(1, []OID{a.OID}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTrigStatePersisted(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	a := s.Create("x", nil)
	act := a.Trigger("stockRoom.T6#1")
	act.Active = true
	act.State = 4
	act.Params = map[string]value.Value{"lvl": value.Int(7)}
	s.LogCommit(1, []OID{a.OID}, nil, nil)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ra, _ := s2.Get(a.OID)
	got := ra.Trigger("stockRoom.T6#1")
	if !got.Active || got.State != 4 || !got.Params["lvl"].Equal(value.Int(7)) {
		t.Fatalf("trigger activation lost: %+v", got)
	}
}
