package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WAL frame operations.
const (
	opBegin byte = iota + 1
	opPut
	opDelete
	opCommit
)

// frame is one WAL record. Frames are length-prefixed independent gob
// blobs, so a torn final frame is detected and discarded on recovery
// and appending after reopen needs no encoder state.
type frame struct {
	Op   byte
	TxID uint64
	OID  OID
	Rec  *Record
}

const (
	walName      = "wal.log"
	snapshotName = "snapshot.gob"
)

type walFile struct {
	f *os.File
}

func openWAL(dir string) (*walFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	return &walFile{f: f}, nil
}

func (w *walFile) append(fr frame) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&fr); err != nil {
		return fmt.Errorf("store: encode wal frame: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(body.Len()))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: write wal: %w", err)
	}
	if _, err := w.f.Write(body.Bytes()); err != nil {
		return fmt.Errorf("store: write wal: %w", err)
	}
	return w.f.Sync()
}

func (w *walFile) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewind wal: %w", err)
	}
	return w.f.Sync()
}

func (w *walFile) close() error { return w.f.Close() }

// readWAL parses all complete frames; a torn trailing frame (crash
// mid-append) is ignored.
func readWAL(dir string) ([]frame, error) {
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read wal: %w", err)
	}
	var frames []frame
	for len(data) >= 4 {
		n := binary.LittleEndian.Uint32(data[:4])
		if len(data) < int(4+n) {
			break // torn frame
		}
		var fr frame
		if err := gob.NewDecoder(bytes.NewReader(data[4 : 4+n])).Decode(&fr); err != nil {
			break // corrupt tail; everything before it is intact
		}
		frames = append(frames, fr)
		data = data[4+n:]
	}
	return frames, nil
}

// snapshotImage is the gob payload of a checkpoint.
type snapshotImage struct {
	Next    OID
	Objects map[OID]*Record
}

func writeSnapshot(dir string, next OID, objects map[OID]*Record) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: create dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "snapshot-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	img := snapshotImage{Next: next, Objects: objects}
	if err := gob.NewEncoder(tmp).Encode(&img); err != nil {
		tmp.Close()
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	// Atomic publish: a crash leaves either the old or the new snapshot.
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	return nil
}

func readSnapshot(dir string) (OID, map[OID]*Record, error) {
	f, err := os.Open(filepath.Join(dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	var img snapshotImage
	if err := gob.NewDecoder(f).Decode(&img); err != nil {
		return 0, nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	return img.Next, img.Objects, nil
}
