package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// WAL frame operations.
const (
	opBegin byte = iota + 1
	opPut
	opDelete
	opCommit
)

// frame is one WAL record. Frames are length-prefixed independent gob
// blobs, so a torn final frame is detected and discarded on recovery
// and appending after reopen needs no encoder state.
type frame struct {
	Op   byte
	TxID uint64
	OID  OID
	Rec  *Record
}

const (
	walName      = "wal.log"
	snapshotName = "snapshot.gob"
)

// walFile appends commit batches to the log with group commit: the
// first committer to arrive becomes the leader, drains the queue of
// every commit buffer submitted while the previous batch was syncing,
// and flushes them with one Write and one Sync. Followers block on a
// per-commit done channel and are acked only after the shared Sync
// returns, so an acknowledged commit is always durable. The batching
// window is the duration of the in-flight write+Sync — under load,
// batches grow to cover every concurrent committer; with a single
// committer the behavior degenerates to one Sync per commit, same as
// direct mode.
//
// Because each transaction's frames are encoded into one contiguous
// buffer before submission, frames of different transactions never
// interleave inside the log, and a crash can only tear the final
// frame of the final batch — which recovery already discards
// (readWAL), preserving the torn-frame guarantee.
type walFile struct {
	f      *os.File
	direct bool // disable batching: every commit writes and syncs itself

	mu      sync.Mutex // guards queue, dones, leading, and direct-mode writes
	queue   [][]byte
	dones   []chan error
	leading bool
}

func openWAL(dir string, direct bool) (*walFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	return &walFile{f: f, direct: direct}, nil
}

// commit appends one transaction's pre-encoded frames durably. In
// group-commit mode, concurrent callers are batched behind a leader
// that performs one Write and one Sync for the whole batch.
func (w *walFile) commit(buf []byte) error {
	if w.direct {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.writeSync(buf)
	}
	done := make(chan error, 1)
	w.mu.Lock()
	w.queue = append(w.queue, buf)
	w.dones = append(w.dones, done)
	if w.leading {
		// A leader is already flushing; it will pick this commit up in
		// its next round.
		w.mu.Unlock()
		return <-done
	}
	w.leading = true
	for {
		bufs, dones := w.queue, w.dones
		w.queue, w.dones = nil, nil
		w.mu.Unlock()

		var batch []byte
		if len(bufs) == 1 {
			batch = bufs[0]
		} else {
			total := 0
			for _, b := range bufs {
				total += len(b)
			}
			batch = make([]byte, 0, total)
			for _, b := range bufs {
				batch = append(batch, b...)
			}
		}
		err := w.writeSync(batch)
		for _, d := range dones {
			d <- err
		}

		w.mu.Lock()
		if len(w.queue) == 0 {
			w.leading = false
			w.mu.Unlock()
			return <-done
		}
		// More commits arrived during the flush: lead another round.
	}
}

func (w *walFile) writeSync(b []byte) error {
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("store: write wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync wal: %w", err)
	}
	return nil
}

func (w *walFile) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewind wal: %w", err)
	}
	return w.f.Sync()
}

func (w *walFile) close() error { return w.f.Close() }

// encodeFrame appends one length-prefixed gob-encoded frame to buf.
func encodeFrame(buf *bytes.Buffer, fr frame) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&fr); err != nil {
		return fmt.Errorf("store: encode wal frame: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(body.Len()))
	buf.Write(hdr[:])
	buf.Write(body.Bytes())
	return nil
}

// readWAL parses all complete frames; a torn trailing frame (crash
// mid-append) is ignored.
func readWAL(dir string) ([]frame, error) {
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read wal: %w", err)
	}
	var frames []frame
	for len(data) >= 4 {
		n := binary.LittleEndian.Uint32(data[:4])
		if len(data) < int(4+n) {
			break // torn frame
		}
		var fr frame
		if err := gob.NewDecoder(bytes.NewReader(data[4 : 4+n])).Decode(&fr); err != nil {
			break // corrupt tail; everything before it is intact
		}
		frames = append(frames, fr)
		data = data[4+n:]
	}
	return frames, nil
}

// snapshotImage is the gob payload of a checkpoint.
type snapshotImage struct {
	Next    OID
	Objects map[OID]*Record
}

func writeSnapshot(dir string, next OID, objects map[OID]*Record) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: create dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "snapshot-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	img := snapshotImage{Next: next, Objects: objects}
	if err := gob.NewEncoder(tmp).Encode(&img); err != nil {
		tmp.Close()
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	// Atomic publish: a crash leaves either the old or the new snapshot.
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	return nil
}

func readSnapshot(dir string) (OID, map[OID]*Record, error) {
	f, err := os.Open(filepath.Join(dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	var img snapshotImage
	if err := gob.NewDecoder(f).Decode(&img); err != nil {
		return 0, nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	return img.Next, img.Objects, nil
}
