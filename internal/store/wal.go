package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ode/internal/fault"
)

// WAL frame operations.
const (
	opBegin byte = iota + 1
	opPut
	opDelete
	opCommit
	// opPutN carries every dirty record of one transaction in a single
	// frame (frame.Recs). Batch commits use it so a transaction that
	// touched N objects appends one record frame instead of N — one gob
	// header, one length prefix — and a torn tail can only lose the
	// whole record set, never a prefix of it.
	opPutN
	// opFirings carries the trigger-firing records captured by one
	// transaction (frame.Firings), appended between the transaction's
	// record frames and its opCommit. Riding the same commit batch makes
	// the firings exactly as durable as the transaction itself: a crash
	// either preserves both or neither.
	opFirings
)

// frame is one WAL record. Frames are length-prefixed independent gob
// blobs, so a torn final frame is detected and discarded on recovery
// and appending after reopen needs no encoder state.
type frame struct {
	Op      byte
	TxID    uint64
	OID     OID
	Rec     *Record
	Recs    []*Record      // opPutN only; absent (nil) in all other frames
	Firings []FiringRecord // opFirings only; absent (nil) in all other frames
}

const (
	walName      = "wal.log"
	snapshotName = "snapshot.gob"
)

// walFile appends commit batches to the log with group commit: the
// first committer to arrive becomes the leader, drains the queue of
// every commit buffer submitted while the previous batch was syncing,
// and flushes them with one Write and one Sync. Followers block on a
// per-commit done channel and are acked only after the shared Sync
// returns, so an acknowledged commit is always durable. The batching
// window is the duration of the in-flight write+Sync — under load,
// batches grow to cover every concurrent committer; with a single
// committer the behavior degenerates to one Sync per commit, same as
// direct mode.
//
// Because each transaction's frames are encoded into one contiguous
// buffer before submission, frames of different transactions never
// interleave inside the log, and a crash can only tear the final
// frame of the final batch — which recovery already discards
// (readWAL), preserving the torn-frame guarantee.
type walFile struct {
	f      *os.File
	direct bool            // disable batching: every commit writes and syncs itself
	faults *fault.Registry // nil outside the simulation harness

	mu      sync.Mutex // guards queue, dones, leading, and direct-mode writes
	queue   [][]byte
	dones   []chan error
	leading bool
}

func openWAL(dir string, direct bool, faults *fault.Registry) (*walFile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	return &walFile{f: f, direct: direct, faults: faults}, nil
}

// commit appends one transaction's pre-encoded frames durably. In
// group-commit mode, concurrent callers are batched behind a leader
// that performs one Write and one Sync for the whole batch.
func (w *walFile) commit(buf []byte) error {
	if w.direct {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.writeSync(buf)
	}
	done := make(chan error, 1)
	w.mu.Lock()
	w.queue = append(w.queue, buf)
	w.dones = append(w.dones, done)
	if w.leading {
		// A leader is already flushing; it will pick this commit up in
		// its next round.
		w.mu.Unlock()
		return <-done
	}
	w.leading = true
	for {
		bufs, dones := w.queue, w.dones
		w.queue, w.dones = nil, nil
		w.mu.Unlock()

		var batch []byte
		if len(bufs) == 1 {
			batch = bufs[0]
		} else {
			total := 0
			for _, b := range bufs {
				total += len(b)
			}
			batch = make([]byte, 0, total)
			for _, b := range bufs {
				batch = append(batch, b...)
			}
		}
		err := w.writeSync(batch)
		for _, d := range dones {
			d <- err
		}

		w.mu.Lock()
		if len(w.queue) == 0 {
			w.leading = false
			w.mu.Unlock()
			return <-done
		}
		// More commits arrived during the flush: lead another round.
	}
}

func (w *walFile) writeSync(b []byte) error {
	if w.faults != nil {
		// Torn batch write: persist only the first n bytes (synced, so
		// a simulated crash+reopen deterministically finds the torn
		// prefix) and surface the failure to every committer in the
		// batch. n < 0 means nothing reached the file at all.
		if n, err := w.faults.CheckTear(fault.WALWrite, len(b)); err != nil {
			if n > 0 {
				if _, werr := w.f.Write(b[:n]); werr != nil {
					return fmt.Errorf("store: write wal: %w", werr)
				}
				if serr := w.f.Sync(); serr != nil {
					return fmt.Errorf("store: sync wal: %w", serr)
				}
			}
			return fmt.Errorf("store: write wal: %w", err)
		}
	}
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("store: write wal: %w", err)
	}
	if w.faults != nil {
		// Sync failure after a full write: the batch bytes are in the
		// file but were never acknowledged as durable — the classic
		// indeterminate commit a recovery must resolve atomically.
		if err := w.faults.Check(fault.WALSync); err != nil {
			return fmt.Errorf("store: sync wal: %w", err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync wal: %w", err)
	}
	if w.faults != nil {
		// Crash after durability but before acknowledgment: the commit
		// is on disk, yet the committer sees an error.
		if err := w.faults.Check(fault.WALAfterSync); err != nil {
			return fmt.Errorf("store: wal ack: %w", err)
		}
	}
	return nil
}

func (w *walFile) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewind wal: %w", err)
	}
	return w.f.Sync()
}

func (w *walFile) close() error { return w.f.Close() }

// encodeFrame appends one length-prefixed gob-encoded frame to buf.
func encodeFrame(buf *bytes.Buffer, fr frame) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&fr); err != nil {
		return fmt.Errorf("store: encode wal frame: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(body.Len()))
	buf.Write(hdr[:])
	buf.Write(body.Bytes())
	return nil
}

// ErrTornTail reports that the log ended in a torn or undecodable
// trailing record — the expected residue of a crash mid-append.
// readWAL still returns every intact frame before the tear; callers
// decide whether to repair (truncate to the clean prefix) or refuse.
var ErrTornTail = errors.New("store: torn wal tail")

// walScan summarizes one readWAL pass: the byte length of the clean
// frame prefix and how many trailing bytes fall after it.
type walScan struct {
	cleanLen  int64
	tornBytes int64
}

// readWAL parses all complete frames. A torn trailing frame (crash
// mid-append) or any undecodable tail is reported via an error
// wrapping ErrTornTail — alongside the intact frames, never silently
// dropped — so recovery can record and repair it.
func readWAL(dir string) ([]frame, walScan, error) {
	var sc walScan
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, sc, nil
	}
	if err != nil {
		return nil, sc, fmt.Errorf("store: read wal: %w", err)
	}
	total := int64(len(data))
	var frames []frame
	reason := ""
	for len(data) > 0 {
		if len(data) < 4 {
			reason = fmt.Sprintf("%d-byte length-prefix fragment", len(data))
			break
		}
		n := binary.LittleEndian.Uint32(data[:4])
		if len(data) < int(4+n) {
			reason = fmt.Sprintf("frame promises %d body bytes, only %d present", n, len(data)-4)
			break
		}
		var fr frame
		if err := gob.NewDecoder(bytes.NewReader(data[4 : 4+n])).Decode(&fr); err != nil {
			reason = fmt.Sprintf("undecodable frame body: %v", err)
			break
		}
		frames = append(frames, fr)
		data = data[4+n:]
		sc.cleanLen += int64(4 + n)
	}
	sc.tornBytes = total - sc.cleanLen
	if sc.tornBytes > 0 {
		return frames, sc, fmt.Errorf("store: wal has %d trailing byte(s) after %d clean frame(s) (%s): %w",
			sc.tornBytes, len(frames), reason, ErrTornTail)
	}
	return frames, sc, nil
}

// snapshotImage is the gob payload of a checkpoint. Firings and
// FiringSeq persist the egress feed across the WAL reset that follows
// a checkpoint: the feed's records live in the WAL only until the next
// checkpoint folds them into the snapshot.
type snapshotImage struct {
	Next      OID
	Objects   map[OID]*Record
	Firings   []FiringRecord
	FiringSeq uint64
}

func writeSnapshot(dir string, next OID, objects map[OID]*Record, firings []FiringRecord, firingSeq uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: create dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "snapshot-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	img := snapshotImage{Next: next, Objects: objects, Firings: firings, FiringSeq: firingSeq}
	if err := gob.NewEncoder(tmp).Encode(&img); err != nil {
		tmp.Close()
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	// Atomic publish: a crash leaves either the old or the new snapshot.
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	return nil
}

func readSnapshot(dir string) (snapshotImage, error) {
	var img snapshotImage
	f, err := os.Open(filepath.Join(dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return img, nil
	}
	if err != nil {
		return img, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(&img); err != nil {
		return img, fmt.Errorf("store: decode snapshot: %w", err)
	}
	return img, nil
}
