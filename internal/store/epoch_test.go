package store

import (
	"sync"
	"testing"

	"ode/internal/value"
)

// TestEpochViewSeededFromRecovery proves a reopened store serves every
// recovered object through the lock-free committed view — including
// objects logged through the batch opPutN frame a multi-object commit
// writes.
func TestEpochViewSeededFromRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var oids []OID
	for i := int64(0); i < 3; i++ {
		r := s.Create("acct", map[string]value.Value{"bal": value.Int(i * 100)})
		oids = append(oids, r.OID)
	}
	if err := s.LogCommit(1, oids, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, oid := range oids {
		rec, ok := s2.GetCommitted(oid)
		if !ok || rec.Fields["bal"].I != int64(i)*100 {
			t.Fatalf("recovered epoch view for %d: %+v ok=%v", oid, rec, ok)
		}
	}
	if n := len(s2.CommittedOIDs()); n != 3 {
		t.Fatalf("CommittedOIDs = %d, want 3", n)
	}
}

// TestEpochViewPublish exercises the single-threaded contract: only
// published state is visible, updates swap in place, deletes remove.
func TestEpochViewPublish(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	r := s.Create("acct", map[string]value.Value{"bal": value.Int(0)})
	if _, ok := s.GetCommitted(r.OID); ok {
		t.Fatal("uncommitted object visible in epoch view")
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", got)
	}

	r.Fields["bal"] = value.Int(10)
	s.PublishCommitted([]OID{r.OID}, nil)
	c, ok := s.GetCommitted(r.OID)
	if !ok || c.Fields["bal"].I != 10 {
		t.Fatalf("after publish: got %+v ok=%v, want bal=10", c, ok)
	}
	if c == r {
		t.Fatal("epoch view aliases the live record; must be a clone")
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}

	// Mutating the live record (an in-flight transaction) must not leak
	// into the already-published version.
	r.Fields["bal"] = value.Int(999)
	c2, _ := s.GetCommitted(r.OID)
	if c2.Fields["bal"].I != 10 {
		t.Fatalf("live mutation leaked into epoch view: bal=%d", c2.Fields["bal"].I)
	}

	s.PublishCommitted([]OID{r.OID}, nil)
	c3, _ := s.GetCommitted(r.OID)
	if c3.Fields["bal"].I != 999 {
		t.Fatalf("republish: bal=%d, want 999", c3.Fields["bal"].I)
	}

	s.PublishCommitted(nil, []OID{r.OID})
	if _, ok := s.GetCommitted(r.OID); ok {
		t.Fatal("committed-deleted object still visible")
	}
	if got, want := s.Epoch(), uint64(3); got != want {
		t.Fatalf("epoch = %d, want %d", got, want)
	}
	if n := len(s.CommittedOIDs()); n != 0 {
		t.Fatalf("CommittedOIDs = %d entries, want 0", n)
	}
}

// TestEpochViewRace hammers lock-free epoch readers against concurrent
// batch publishers under -race. Each writer owns a disjoint set of
// objects (standing in for transactions that hold their object locks)
// and maintains an invariant inside every object — fields a and b are
// always equal — plus a monotonically increasing version field. Every
// version a reader observes must satisfy the invariant (publishes are
// whole-record, never torn) and versions must never go backwards
// (per-object monotonicity of the committed history).
func TestEpochViewRace(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		perW    = 8
		rounds  = 300
		readers = 4
	)
	oids := make([][]OID, writers)
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			r := s.Create("acct", map[string]value.Value{
				"a": value.Int(0), "b": value.Int(0), "ver": value.Int(0),
			})
			oids[w] = append(oids[w], r.OID)
		}
		// Seed version 0 so readers always find the objects.
		s.PublishCommitted(oids[w], nil)
	}
	all := make([]OID, 0, writers*perW)
	for _, g := range oids {
		all = append(all, g...)
	}

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for round := 1; round <= rounds; round++ {
				// A "transaction" over the writer's whole object group:
				// mutate live records, then publish the batch.
				for _, oid := range oids[w] {
					r, err := s.Get(oid)
					if err != nil {
						t.Error(err)
						return
					}
					v := int64(round)
					r.Fields["a"] = value.Int(v * 7)
					r.Fields["b"] = value.Int(v * 7)
					r.Fields["ver"] = value.Int(v)
				}
				s.PublishCommitted(oids[w], nil)
			}
		}(w)
	}

	errs := make(chan string, readers)
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			last := map[OID]int64{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, oid := range all {
					rec, ok := s.GetCommitted(oid)
					if !ok {
						errs <- "published object vanished from epoch view"
						return
					}
					a, b, ver := rec.Fields["a"].I, rec.Fields["b"].I, rec.Fields["ver"].I
					if a != b {
						errs <- "torn committed version: a != b"
						return
					}
					if a != ver*7 {
						errs <- "committed version inconsistent with its own ver field"
						return
					}
					if ver < last[oid] {
						errs <- "committed history went backwards"
						return
					}
					last[oid] = ver
				}
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiescent check: every object's final committed version is the
	// last round.
	for _, oid := range all {
		rec, ok := s.GetCommitted(oid)
		if !ok || rec.Fields["ver"].I != rounds {
			t.Fatalf("final committed ver = %v (ok=%v), want %d", rec.Fields["ver"], ok, rounds)
		}
	}
}
