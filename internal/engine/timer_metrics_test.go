package engine

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ode/internal/schema"
	"ode/internal/value"
)

// TestTimerMetricsExposition: the timer gauges and the dropped-error
// counter reach /debug/metrics with correct values and TYPE lines.
func TestTimerMetricsExposition(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Tick", Perpetual: true, Event: "every time(M=10)"},
		schema.Trigger{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"},
		schema.Trigger{Name: "Once", Event: "after time(M=30)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	err := e.Transact(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			oid, err := tx.NewObject("account", map[string]value.Value{"balance": value.Int(1)})
			if err != nil {
				return err
			}
			for _, trig := range []string{"Tick", "Daily", "Once"} {
				if err := tx.Activate(oid, trig); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.DebugHandler())
	t.Cleanup(srv.Close)

	code, body, _ := debugGetBody(t, srv, "/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics => %d", code)
	}
	samples := promSamples(t, body)

	// Two cohorts (Tick, Daily) + ten 'after' one-shots pending.
	for name, want := range map[string]float64{
		"ode_engine_timers_pending":             12,
		"ode_engine_timer_cohorts":              2,
		"ode_engine_timer_errors_dropped_total": 0,
	} {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		if got != want {
			t.Fatalf("%s = %g, want %g", name, got, want)
		}
	}
	s := e.Stats()
	if s.TimersPending != 12 || s.TimerCohorts != 2 {
		t.Fatalf("Stats: pending=%d cohorts=%d", s.TimersPending, s.TimerCohorts)
	}
}

// TestTimerErrRingBounded: recordTimerErr retains at most
// timerErrRingCap errors, drops the oldest, and counts the evictions.
func TestTimerErrRingBounded(t *testing.T) {
	e := newEngine(t, Options{})
	for i := 0; i < timerErrRingCap+10; i++ {
		e.recordTimerErr(errNumbered(i))
	}
	errs := e.TimerErrors()
	if len(errs) != timerErrRingCap {
		t.Fatalf("retained %d errors, want %d", len(errs), timerErrRingCap)
	}
	// Oldest first, so the first retained error is number 10.
	if errs[0].Error() != errNumbered(10).Error() {
		t.Fatalf("oldest retained = %v", errs[0])
	}
	if errs[len(errs)-1].Error() != errNumbered(timerErrRingCap+9).Error() {
		t.Fatalf("newest retained = %v", errs[len(errs)-1])
	}
	if got := e.Stats().TimerErrsDropped; got != 10 {
		t.Fatalf("TimerErrsDropped = %d, want 10", got)
	}
}

type errNumbered int

func (e errNumbered) Error() string { return fmt.Sprintf("timer error #%d", int(e)) }
