package engine

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// TestShadowOracleRandomizedScenario drives a database with a diverse
// trigger set through hundreds of random transactions — method calls,
// commits, aborts, tabort-raising masks, timers — with the shadow
// oracle enabled: every single automaton transition of every trigger
// instance is cross-checked against the paper's §4 denotational
// semantics evaluated over the instance's full symbol history. Any
// divergence fails the posting, which surfaces as a transaction error.
//
// This is the E3 experiment's verification run at the system level:
// the DSL resolver, mask rewrite, compiler and runtime all have to
// agree with the formal model for this to stay silent.
func TestShadowOracleRandomizedScenario(t *testing.T) {
	e, err := New(Options{
		Start:        time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC),
		ShadowOracle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	cls := &schema.Class{
		Name: "acct",
		Fields: []schema.Field{
			{Name: "balance", Kind: value.KindInt, Default: value.Int(1000)},
		},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "audit", Mode: schema.ModeRead},
		},
		Triggers: []schema.Trigger{
			{Name: "Masked", Perpetual: true, Event: "after withdraw(n) && n > 50"},
			{Name: "Seq", Perpetual: true, Event: "after deposit; after withdraw"},
			{Name: "Rel", Perpetual: true, Event: "relative(after deposit, after withdraw(n) && n > 50)"},
			{Name: "Cnt", Perpetual: true, Event: "every 3 (after access)"},
			{Name: "Chz", Event: "choose 4 (after deposit)"},
			{Name: "Neg", Perpetual: true, Event: "!(after audit | after tbegin) & after access"},
			{Name: "FaW", Perpetual: true, Event: "fa(after tbegin, after withdraw, after audit)"},
			// NOTE: a perpetual trigger on a bare "before tcomplete"
			// event never lets the §6 commit fixpoint quiesce; the
			// deferred coupling must use fa(…) so only the FIRST
			// tcomplete after the event fires (§7).
			{Name: "Deep", Perpetual: true, Event: "fa(relative(after deposit, after deposit), before tcomplete, after tbegin)"},
			{Name: "Whole", Perpetual: true, Event: "relative(after tabort, after tbegin)", View: schema.WholeView},
			{Name: "Timer", Perpetual: true, Event: "relative(at time(HR=12), after withdraw)"},
		},
	}
	impl := ClassImpl{
		Methods: map[string]MethodImpl{
			"deposit": func(ctx *MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()+ctx.Arg("n").AsInt()))
			},
			"withdraw": func(ctx *MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()-ctx.Arg("n").AsInt()))
			},
			"audit": func(ctx *MethodCtx) (value.Value, error) { return ctx.Get("balance") },
		},
		Actions: map[string]ActionFunc{},
	}
	for _, tr := range cls.Triggers {
		impl.Actions[tr.Name] = func(*ActionCtx) error { return nil }
	}
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}

	const objects = 4
	oids := make([]store.OID, objects)
	err = e.Transact(func(tx *Tx) error {
		for i := range oids {
			oid, err := tx.NewObject("acct", nil)
			if err != nil {
				return err
			}
			oids[i] = oid
			for _, tr := range cls.Triggers {
				if err := tx.Activate(oid, tr.Name); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(20260704))
	for i := 0; i < 300; i++ {
		switch rng.Intn(10) {
		case 0:
			// Advance the clock; timers post under the oracle too.
			e.Clock().Advance(time.Duration(1+rng.Intn(10)) * time.Hour)
			if errs := e.TimerErrors(); len(errs) > 0 {
				t.Fatalf("iter %d: timer error (oracle divergence?): %v", i, errs[0])
			}
		case 1:
			// Abort a transaction after random work: committed-view
			// shadow logs must roll back with the automaton state.
			e.Transact(func(tx *Tx) error {
				tx.Call(oids[rng.Intn(objects)], "deposit", value.Int(int64(rng.Intn(200))))
				tx.Call(oids[rng.Intn(objects)], "withdraw", value.Int(int64(rng.Intn(200))))
				return errors.New("random abort")
			})
		case 2:
			// Re-activate a random trigger on a random object.
			err := e.Transact(func(tx *Tx) error {
				return tx.Activate(oids[rng.Intn(objects)], cls.Triggers[rng.Intn(len(cls.Triggers))].Name)
			})
			if err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
		default:
			err := e.Transact(func(tx *Tx) error {
				for c := 0; c < 1+rng.Intn(4); c++ {
					oid := oids[rng.Intn(objects)]
					var err error
					switch rng.Intn(3) {
					case 0:
						_, err = tx.Call(oid, "deposit", value.Int(int64(rng.Intn(200))))
					case 1:
						_, err = tx.Call(oid, "withdraw", value.Int(int64(rng.Intn(200))))
					default:
						_, err = tx.Call(oid, "audit")
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("iter %d: oracle divergence or engine error: %v", i, err)
			}
		}
	}
}

// TestActionEventParamsExtension checks the §9-future-work extension:
// the action sees the kind and parameters of the happening that
// completed the event.
func TestActionEventParamsExtension(t *testing.T) {
	e, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var gotKind string
	var gotAmount int64
	cls := &schema.Class{
		Name:   "acct",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt}},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "T", Perpetual: true, Event: "relative(after deposit, after withdraw)"},
		},
	}
	impl := ClassImpl{
		Methods: map[string]MethodImpl{
			"deposit":  func(*MethodCtx) (value.Value, error) { return value.Null(), nil },
			"withdraw": func(*MethodCtx) (value.Value, error) { return value.Null(), nil },
		},
		Actions: map[string]ActionFunc{
			"T": func(ctx *ActionCtx) error {
				gotKind = ctx.EventKind
				gotAmount = ctx.EventParams["n"].AsInt()
				return nil
			},
		},
	}
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	err = e.Transact(func(tx *Tx) error {
		oid, _ := tx.NewObject("acct", nil)
		tx.Activate(oid, "T")
		tx.Call(oid, "deposit", value.Int(10))
		_, err := tx.Call(oid, "withdraw", value.Int(77))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotKind != "after withdraw" || gotAmount != 77 {
		t.Fatalf("action saw %q / %d, want 'after withdraw' / 77", gotKind, gotAmount)
	}
}
