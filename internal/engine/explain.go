package engine

import (
	"fmt"
	"sync"

	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/store"
)

// Firing provenance: each trigger instance keeps a small ring of its
// state-changing (or accepting) automaton transitions, reset whenever
// the instance is (re-)activated. Non-accepting self-loops — the vast
// majority of steps under the masked non-firing workload — append
// nothing, so the ring's few dozen slots span a long happening history
// and the hot path pays one branch. Explain walks the retained steps
// backward along matching from/to states to reconstruct the exact
// happening sequence that drove the automaton from its start state to
// acceptance.

// provShards fixes the table's shard count; instances hash by object,
// the same unit the lock manager serializes on.
const provShards = 64

type provTable struct {
	shards [provShards]provShard
}

type provShard struct {
	mu sync.Mutex
	m  map[instanceKey]*obs.ProvRing
}

// provRing returns (creating if needed) the instance's ring; nil when
// provenance is disabled. Creation allocates once per instance — the
// first recorded step of a WAL-recovered activation lands here — and
// every later call is a shard-mutex map probe.
func (e *Engine) provRing(oid store.OID, trig string) *obs.ProvRing {
	if e.provDepth < 0 {
		return nil
	}
	s := &e.prov.shards[uint64(oid)%provShards]
	k := instanceKey{oid, trig}
	s.mu.Lock()
	r := s.m[k]
	if r == nil {
		r = obs.NewProvRing(e.provDepth)
		if s.m == nil {
			s.m = map[instanceKey]*obs.ProvRing{}
		}
		s.m[k] = r
	}
	s.mu.Unlock()
	return r
}

// provLookup returns the instance's ring without creating one.
func (e *Engine) provLookup(oid store.OID, trig string) *obs.ProvRing {
	s := &e.prov.shards[uint64(oid)%provShards]
	s.mu.Lock()
	r := s.m[instanceKey{oid, trig}]
	s.mu.Unlock()
	return r
}

// Explanation answers "why did (or didn't) trigger T fire on object
// O": the instance's current automaton state plus the retained
// provenance chain leading to it.
type Explanation struct {
	OID     store.OID `json:"oid"`
	Class   string    `json:"class"`
	Trigger string    `json:"trigger"`
	Active  bool      `json:"active"`
	// State is the instance's current automaton state, Start the
	// automaton's start state.
	State int `json:"state"`
	Start int `json:"start"`
	// Fired reports whether an accepting transition is retained; the
	// chain then ends at that firing.
	Fired bool `json:"fired"`
	// Complete reports whether the chain reaches back to the start
	// state — false when the ring has already evicted the oldest
	// contributing steps.
	Complete bool `json:"complete"`
	// Steps is the contributing happening sequence in order: each step
	// names the happening kind, the §5 mask valuation, the alphabet
	// symbol and the from→to state move.
	Steps []obs.ProvStep `json:"steps"`
	// TotalSteps counts every step the instance ever recorded,
	// including ones the ring has evicted.
	TotalSteps uint64 `json:"total_steps"`
}

// Explain reconstructs the provenance of trigger on oid. For a fired
// trigger the returned steps are the exact contributing happening
// sequence — the ordered transitions that moved the automaton from
// start to acceptance; for an unfired one they are the chain leading
// to the current state.
func (e *Engine) Explain(trigger string, oid store.OID) (*Explanation, error) {
	// Prefer the store's lock-free epoch view: Explain is typically
	// called from the /debug endpoint's goroutine, and the committed
	// version is a stable clone no in-flight transaction mutates. An
	// object that has never committed (created by a still-open
	// transaction) falls back to the live record.
	rec, ok := e.st.GetCommitted(oid)
	if !ok {
		var err error
		rec, err = e.st.Get(oid)
		if err != nil {
			return nil, err
		}
	}
	c, err := e.classOf(rec)
	if err != nil {
		return nil, err
	}
	t := c.Trigger(trigger)
	if t == nil {
		return nil, fmt.Errorf("engine: class %s has no trigger %q", rec.Class, trigger)
	}
	if c.monitor != nil {
		return nil, fmt.Errorf("engine: class %s uses combined monitoring; per-trigger provenance is not recorded", rec.Class)
	}
	if e.provDepth < 0 {
		return nil, fmt.Errorf("engine: provenance capture is disabled (Options.ProvenanceDepth < 0)")
	}

	ex := &Explanation{
		OID:     oid,
		Class:   rec.Class,
		Trigger: trigger,
		Start:   t.Auto.Start(),
		State:   t.Auto.Start(),
	}
	if act, ok := rec.Triggers[trigger]; ok {
		ex.Active = act.Active
		ex.State = act.State
	}
	if t.View == schema.WholeView {
		e.wholeMu.Lock()
		if s, ok := e.whole[instanceKey{oid, trigger}]; ok {
			ex.State = s
		}
		e.wholeMu.Unlock()
	}

	r := e.provLookup(oid, trigger)
	if r == nil {
		return ex, nil
	}
	steps := r.Steps()
	ex.TotalSteps = r.Total()
	for i := range steps {
		steps[i].Kind = e.names.Name(steps[i].KindID)
	}

	// Anchor the chain at the most recent accepting transition (the
	// firing being explained); an instance that never fired is explained
	// up to its latest step.
	anchor := len(steps) - 1
	for i := len(steps) - 1; i >= 0; i-- {
		if steps[i].Accepted {
			anchor = i
			ex.Fired = true
			break
		}
	}
	if anchor < 0 {
		return ex, nil
	}

	// Walk backward along matching states: a step belongs to the chain
	// when it produced the state the next chain step consumed. Steps
	// that roll back and diverge (an aborted transaction's residue)
	// break the link and are excluded.
	lo := anchor
	for steps[lo].From != ex.Start && lo > 0 && steps[lo-1].To == steps[lo].From {
		lo--
	}
	ex.Steps = steps[lo : anchor+1]
	ex.Complete = len(ex.Steps) > 0 && ex.Steps[0].From == ex.Start
	return ex, nil
}
