package engine

import (
	"fmt"

	"ode/internal/compile"
	"ode/internal/evlang"
	"ode/internal/schema"
	"ode/internal/store"
)

// QueryHistory evaluates an event expression over an object's recorded
// happening history and returns the sequence numbers of the points at
// which the event occurred — the paper's §9 "history expressions"
// direction ("explicit manipulation of event histories to specify
// events"), realized as offline replay of the same compilation
// pipeline.
//
// Requirements:
//   - history recording must be enabled (Options.RecordHistories) and
//     the object's log must be complete (no entries evicted by the
//     retention limit) — a truncated history would silently shift
//     every occurrence;
//   - the expression must be mask-free: masks are evaluated against
//     database state at the instant of their basic event, and that
//     state is gone. Time events that appear in the class's triggers
//     may be referenced (their firings are recorded points).
func (e *Engine) QueryHistory(oid store.OID, eventSrc string) ([]uint64, error) {
	log := e.History(oid)
	if log == nil {
		return nil, fmt.Errorf("engine: no recorded history for object %d (enable Options.RecordHistories)", oid)
	}
	if log.Dropped() > 0 {
		return nil, fmt.Errorf("engine: history of object %d lost %d early entries to the retention limit",
			oid, log.Dropped())
	}
	rec, err := e.st.Get(oid)
	if err != nil {
		return nil, err
	}
	c, err := e.classOf(rec)
	if err != nil {
		return nil, err
	}

	// Resolve the query alongside the class's real triggers so the
	// shared alphabet contains every kind the history can mention
	// (including other triggers' timer kinds).
	probe := *c.Schema
	probe.Triggers = append(append([]schema.Trigger{}, c.Schema.Triggers...),
		schema.Trigger{Name: "__query", Event: eventSrc})
	res, err := evlang.ResolveClass(&probe, c.parser)
	if err != nil {
		return nil, err
	}
	q := res.Trigger("__query")
	for _, bits := range q.UsedBits {
		if bits != 0 {
			return nil, fmt.Errorf("engine: history queries cannot use masks — state at past events is not reconstructible")
		}
	}

	dfa := compile.Compile(q.Expr, res.Alphabet.NumSymbols)
	det := compile.NewDetector(dfa)
	var out []uint64
	for _, entry := range log.Entries() {
		kindIx := res.Alphabet.KindIndex(entry.Kind)
		if kindIx < 0 {
			// A kind outside the resolved space (e.g. the timer of a
			// trigger added after this history was recorded) is still
			// a history point; it cannot advance the query toward
			// acceptance but must be visible to negation and
			// adjacency. There is no such symbol to feed, so refuse
			// rather than silently skew the result.
			return nil, fmt.Errorf("engine: history of object %d contains unknown kind %s", oid, entry.Kind)
		}
		if det.Post(res.Alphabet.Symbol(kindIx, 0)) {
			out = append(out, entry.Seq)
		}
	}
	return out, nil
}
