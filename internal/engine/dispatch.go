package engine

import (
	"fmt"

	"ode/internal/event"
	"ode/internal/mask"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// Registration-time compilation of the posting hot path (the paper's §5
// cost promise is one table lookup and one integer of state per posted
// event; everything here exists to keep step() at that price):
//
//   - dispatch tables: per kind index, the slice of triggers a
//     happening of that kind can affect at all, folding in the
//     kind-relevance bitmap and the committed-view/tabort rule so
//     step() never scans triggers that provably cannot react;
//   - compiled mask programs: each §5 disjointness mask is lowered once
//     per (trigger, kind) pair to a mask.Program with names resolved to
//     dense parameter slots, so evaluation allocates nothing and does
//     no string-keyed lookups (the AST interpreter in post.go remains
//     the oracle and the fallback);
//   - dense trigger slots: each trigger gets a stable index into the
//     record's slot table so the per-happening activation lookup is an
//     array index instead of a map probe.

// dispatchEntry is one trigger's precomputed reaction to one kind.
type dispatchEntry struct {
	t    *Trigger
	used uint32 // t.Res.UsedBits[kindIx], hoisted
	// progs[bit] is the compiled program for the kind's mask bit, nil
	// where the bit is unused by this trigger. A nil slice means the
	// kind has no used masks.
	progs []*mask.Program
}

// buildDispatch fills c.dispatch. Under the shadow oracle every trigger
// is dispatched for every kind (the oracle needs the complete symbol
// history); committed-view triggers are never dispatched tabort events
// (§6: the aborted history is not part of the committed history).
func (e *Engine) buildDispatch(c *Class) error {
	kinds := c.Res.Alphabet.Kinds
	c.dispatch = make([][]dispatchEntry, len(kinds))
	for kix := range kinds {
		for _, t := range c.Triggers {
			if !e.shadowOracle && !t.relevant[kix] {
				continue
			}
			if t.View == schema.CommittedView && kinds[kix].Kind.Class == event.KTabort {
				continue
			}
			used := t.Res.UsedBits[kix]
			progs, err := compileMaskProgs(c, kix, used, t.Res.Params)
			if err != nil {
				return fmt.Errorf("engine: class %s trigger %s: %w", c.Schema.Name, t.Res.Name, err)
			}
			c.dispatch[kix] = append(c.dispatch[kix], dispatchEntry{t: t, used: used, progs: progs})
		}
	}
	return nil
}

// compileMaskProgs compiles the used mask bits of kind kix for a
// trigger with the given parameter list (nil for the combined monitor,
// whose eligibility rules forbid trigger parameters).
func compileMaskProgs(c *Class, kix int, used uint32, trigParams []string) ([]*mask.Program, error) {
	if used == 0 {
		return nil, nil
	}
	ki := &c.Res.Alphabet.Kinds[kix]
	progs := make([]*mask.Program, len(ki.Masks))
	for bit := range ki.Masks {
		if used&(1<<bit) == 0 {
			continue
		}
		r := &maskSlotResolver{cls: c.Schema, kind: ki.Kind, rename: ki.Masks[bit].Rename, trig: trigParams}
		p, err := mask.CompileExpr(ki.Masks[bit].Expr, r)
		if err != nil {
			return nil, err
		}
		progs[bit] = p
	}
	return progs, nil
}

// compileCombinedProgs compiles the class-wide mask-bit unions the
// footnote-5 combined monitor evaluates.
func (e *Engine) compileCombinedProgs(c *Class) error {
	cm := c.monitor
	cm.progs = make(map[int][]*mask.Program, len(cm.used))
	for kix, used := range cm.used {
		progs, err := compileMaskProgs(c, kix, used, nil)
		if err != nil {
			return fmt.Errorf("engine: class %s combined monitor: %w", c.Schema.Name, err)
		}
		cm.progs[kix] = progs
	}
	return nil
}

// maskSlotResolver resolves mask variables to dense slots, mirroring
// maskEnv.Lookup's precedence exactly: a declared formal renames to the
// schema parameter (no fallthrough on a miss), then the happening's
// parameters by schema name, then the trigger's activation parameters,
// then the object's fields.
type maskSlotResolver struct {
	cls    *schema.Class
	kind   event.Kind
	rename map[string]string
	trig   []string
}

func (r *maskSlotResolver) ResolveVar(name string) (mask.Slot, bool) {
	if r.rename != nil {
		if schemaName, ok := r.rename[name]; ok {
			// Like maskEnv: a formal that renames to a name the kind
			// does not bind is absent, never something else.
			if ix := r.eventParamIx(schemaName); ix >= 0 {
				return mask.Slot{Kind: mask.SlotEventParam, Index: ix, Name: schemaName}, true
			}
			return mask.Slot{}, false
		}
	}
	if ix := r.eventParamIx(name); ix >= 0 {
		return mask.Slot{Kind: mask.SlotEventParam, Index: ix, Name: name}, true
	}
	for i, p := range r.trig {
		if p == name {
			return mask.Slot{Kind: mask.SlotTrigParam, Index: i, Name: name}, true
		}
	}
	for i := range r.cls.Fields {
		if r.cls.Fields[i].Name == name {
			return mask.Slot{Kind: mask.SlotField, Index: i, Name: name}, true
		}
	}
	return mask.Slot{}, false
}

// eventParamIx returns the dense index of a method parameter for the
// resolver's kind, or -1 (only method happenings carry parameters).
func (r *maskSlotResolver) eventParamIx(name string) int {
	if r.kind.Class != event.KMethod {
		return -1
	}
	m := r.cls.Method(r.kind.Method)
	if m == nil {
		return -1
	}
	for i := range m.Params {
		if m.Params[i].Name == name {
			return i
		}
	}
	return -1
}

// progHost serves the residual dynamic operations of compiled mask
// programs. One lives on the Tx and is reused by address so the
// Host interface conversion never allocates; evalBitsMask saves and
// restores it by value around each evaluation, which keeps nested
// evaluations (a mask calling a read method whose posting evaluates
// further masks) correct.
type progHost struct {
	tx   *Tx
	self store.OID
	rec  *store.Record
	cls  *Class
}

func (h *progHost) Field(ix int, name string) (value.Value, bool) {
	v, ok := h.rec.Fields[name]
	return v, ok
}

func (h *progHost) DotField(base value.Value, name string) (value.Value, error) {
	return h.tx.maskDotField(base, name)
}

func (h *progHost) Call(name string, args []value.Value) (value.Value, error) {
	return h.tx.maskCall(h.cls, h.self, name, args)
}

// ensureSlots (re)binds the record's dense trigger-slot table to this
// class's trigger order. Records arrive with no slots (fresh objects,
// snapshot/WAL recovery, before-image clones keep theirs) and are bound
// lazily on first posting; the caller must hold the object's
// transaction lock.
func (c *Class) ensureSlots(rec *store.Record) {
	if rec.SlotCount() == len(c.Triggers) {
		return
	}
	rec.ResetSlots(len(c.Triggers))
	for i, t := range c.Triggers {
		rec.BindSlot(i, t.Res.Name, rec.Triggers[t.Res.Name])
	}
}

// trigDense returns the activation's parameters in declared order,
// rebuilding the dense slice for records recovered from logs written
// before it was persisted.
func trigDense(t *Trigger, act *store.TrigActivation) []value.Value {
	n := len(t.Res.Params)
	if n == 0 {
		return nil
	}
	if len(act.Dense) == n {
		return act.Dense
	}
	d := make([]value.Value, n)
	for i, p := range t.Res.Params {
		d[i] = act.Params[p]
	}
	act.Dense = d
	return d
}
