package engine

import (
	"testing"
	"time"

	"ode/internal/event"
	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/value"
)

// TestTracePipelineOrder drives the §5 pipeline with tracing on and
// checks that the trace contains the stages in pipeline order for the
// firing posting: happening → mask → step → fire, inside a tx-begin /
// tx-commit bracket.
func TestTracePipelineOrder(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Large")

	ring := e.EnableTracing(1024)
	if !e.TracingEnabled() {
		t.Fatal("tracing not enabled")
	}
	if err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "withdraw", value.Int(500))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	evs := ring.Events(0)
	if len(evs) == 0 {
		t.Fatal("no trace events recorded")
	}
	// Walk the trace expecting the pipeline stages of the withdraw
	// posting in order: tx-begin, then the after-withdraw happening,
	// its mask evaluation, the automaton step, the firing, and finally
	// the commit fixpoint and commit.
	next := 0
	expect := func(want obs.Stage, match func(obs.Event) bool) obs.Event {
		t.Helper()
		for ; next < len(evs); next++ {
			ev := evs[next]
			if ev.Stage == want && (match == nil || match(ev)) {
				next++
				return ev
			}
		}
		t.Fatalf("stage %v not found in pipeline order (trace: %+v)", want, evs)
		return obs.Event{}
	}
	expect(obs.StageTxBegin, func(ev obs.Event) bool { return ev.Kind == "user" })
	expect(obs.StageHappening, func(ev obs.Event) bool { return ev.Kind == "after withdraw" })
	expect(obs.StageMask, func(ev obs.Event) bool { return ev.Trigger == "Large" })
	expect(obs.StageStep, func(ev obs.Event) bool { return ev.Trigger == "Large" && ev.OK })
	expect(obs.StageFire, nil)
	expect(obs.StageTcomplete, nil)
	expect(obs.StageTxCommit, nil)

	// The fire event names the trigger and carries a latency.
	var fire *obs.Event
	for i := range evs {
		if evs[i].Stage == obs.StageFire {
			fire = &evs[i]
			break
		}
	}
	if fire.Trigger != "Large" || fire.Class != "account" || !fire.OK {
		t.Fatalf("fire event = %+v", fire)
	}

	// The mask event records requested vs satisfied bits.
	for _, ev := range evs {
		if ev.Stage == obs.StageMask {
			if ev.From == 0 {
				t.Fatalf("mask event with empty requested bits: %+v", ev)
			}
			if !ev.OK || ev.To == 0 {
				t.Fatalf("a>100 mask should have passed: %+v", ev)
			}
		}
	}

	// Disabling stops recording.
	e.DisableTracing()
	before := ring.Total()
	if err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if ring.Total() != before {
		t.Fatal("tracer still receiving events after DisableTracing")
	}
	if e.TraceEvents(10) != nil {
		t.Fatal("TraceEvents should be nil when disabled")
	}
}

// TestTraceMaskRejection: a masked-out happening shows up as a mask
// event with OK=false — the "why didn't my trigger fire" story.
func TestTraceMaskRejection(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Large")
	ring := e.EnableTracing(256)

	if err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "withdraw", value.Int(5)) // masked out
		return err
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range ring.Events(0) {
		if ev.Stage == obs.StageMask && ev.Trigger == "Large" {
			found = true
			if ev.OK || ev.To != 0 {
				t.Fatalf("mask verdict should be false: %+v", ev)
			}
		}
		if ev.Stage == obs.StageFire {
			t.Fatalf("unexpected firing: %+v", ev)
		}
	}
	if !found {
		t.Fatal("no mask event for the rejected withdraw")
	}
}

// TestPerTriggerMetrics checks the per-trigger registry against the
// global Stats counters on a mixed workload.
func TestPerTriggerMetrics(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"},
		schema.Trigger{Name: "AnyDep", Perpetual: true, Event: "after deposit"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Large", "AnyDep")

	if err := e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(500)) // fires Large
		tx.Call(oid, "withdraw", value.Int(50))  // masked out
		tx.Call(oid, "deposit", value.Int(1))    // fires AnyDep
		tx.Call(oid, "deposit", value.Int(2))    // fires AnyDep
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The engine is fresh, so cumulative stats and cumulative trigger
	// metrics cover exactly the same history.
	d := e.Stats()

	snap := e.Metrics().Snapshot()
	var large, anyDep *obs.TriggerSnapshot
	for i := range snap.Triggers {
		switch snap.Triggers[i].Trigger {
		case "Large":
			large = &snap.Triggers[i]
		case "AnyDep":
			anyDep = &snap.Triggers[i]
		}
	}
	if large == nil || anyDep == nil {
		t.Fatalf("snapshot missing triggers: %+v", snap.Triggers)
	}
	if large.Firings != 1 || anyDep.Firings != 2 {
		t.Fatalf("firings: Large=%d AnyDep=%d", large.Firings, anyDep.Firings)
	}
	// Acceptance invariant: per-trigger firings sum to Stats().Firings.
	if large.Firings+anyDep.Firings != d.Firings {
		t.Fatalf("per-trigger firings %d+%d != stats %d", large.Firings, anyDep.Firings, d.Firings)
	}
	// Latency histograms account for every firing.
	if large.Latency.Count != large.Firings || anyDep.Latency.Count != anyDep.Firings {
		t.Fatal("latency histogram counts != firings")
	}
	// Mask metrics: Large evaluated its mask twice, once false.
	if large.MaskEvals != 2 || large.MaskFalse != 1 {
		t.Fatalf("Large mask evals=%d false=%d", large.MaskEvals, large.MaskFalse)
	}
	if anyDep.MaskEvals != 0 {
		t.Fatalf("AnyDep has no masks but evals=%d", anyDep.MaskEvals)
	}
	// Steps are split across the two triggers and sum to the global
	// counter.
	if large.Steps+anyDep.Steps != d.Steps {
		t.Fatalf("per-trigger steps %d+%d != stats %d", large.Steps, anyDep.Steps, d.Steps)
	}
	// Class rollup.
	if len(snap.Classes) != 1 || snap.Classes[0].Happenings != d.Happenings {
		t.Fatalf("class happenings %+v vs stats %d", snap.Classes, d.Happenings)
	}
	// Trigger handles expose the same counters.
	if e.Class("account").Trigger("Large").Metrics().Firings() != 1 {
		t.Fatal("Trigger.Metrics() disagrees with snapshot")
	}
}

// TestStatsTcompleteAndShadow covers the new Stats counters.
func TestStatsTcompleteAndShadow(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Any", Perpetual: true, Event: "after deposit"})
	e := newEngine(t, Options{ShadowOracle: true})
	oid := setup(t, e, cls, impl, "Any")

	base := e.Stats()
	if err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	d := e.Stats().Delta(base)
	if d.TcompleteRounds < 1 {
		t.Fatalf("TcompleteRounds Δ=%d", d.TcompleteRounds)
	}
	if d.ShadowChecks < 1 {
		t.Fatalf("ShadowChecks Δ=%d (shadow oracle on)", d.ShadowChecks)
	}
	if got := StatsDelta(e.Stats(), base); got != d && got.Happenings < d.Happenings {
		t.Fatal("StatsDelta disagrees with Delta")
	}
}

// TestTimerTraceAndOptions: timer deliveries appear as StageTimer, and
// the Options.TraceBuffer knob enables tracing at open.
func TestTimerTraceAndOptions(t *testing.T) {
	e := newEngine(t, Options{
		Start:       time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		TraceBuffer: 512,
	})
	if !e.TracingEnabled() {
		t.Fatal("Options.TraceBuffer did not enable tracing")
	}
	cls := &schema.Class{
		Name:    "mon",
		Fields:  []schema.Field{{Name: "x", Kind: value.KindInt, Default: value.Int(0)}},
		Methods: []schema.Method{{Name: "tick", Mode: schema.ModeUpdate}},
		Triggers: []schema.Trigger{
			{Name: "Min", Perpetual: true, Event: "every time(M=1)"},
		},
	}
	fired := 0
	impl := ClassImpl{
		Methods: map[string]MethodImpl{
			"tick": func(*MethodCtx) (value.Value, error) { return value.Null(), nil },
		},
		Actions: map[string]ActionFunc{
			"Min": func(*ActionCtx) error { fired++; return nil },
		},
	}
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	err := e.Transact(func(tx *Tx) error {
		oid, err := tx.NewObject("mon", nil)
		if err != nil {
			return err
		}
		return tx.Activate(oid, "Min")
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Clock().Advance(3 * time.Minute)
	if fired != 3 {
		t.Fatalf("fired %d times", fired)
	}
	timers := 0
	for _, ev := range e.TraceEvents(0) {
		if ev.Stage == obs.StageTimer {
			timers++
			if ev.Kind == "" {
				t.Fatalf("timer trace without kind: %+v", ev)
			}
		}
	}
	if timers != 3 {
		t.Fatalf("%d StageTimer events, want 3", timers)
	}
}

// TestPostHotPathDisabledTracerNoAllocs is the allocation guard for
// the disabled-tracer fast path: posting a happening that steps an
// active (non-firing, mask-free) trigger must not allocate at all —
// the observability layer's disabled cost is one atomic load per hook
// plus per-trigger atomic counter adds.
func TestPostHotPathDisabledTracerNoAllocs(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "RW", Perpetual: true, Event: "prior(after deposit, after withdraw)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "RW")

	tx := e.Begin()
	defer tx.Abort()
	record, err := tx.access(oid)
	if err != nil {
		t.Fatal(err)
	}
	// Posting after-withdraw first keeps the automaton cycling without
	// ever accepting (prior requires a deposit strictly earlier).
	h := event.Happening{
		Kind: event.MethodKind(event.After, "withdraw"),
		TxID: tx.tx.ID(),
		At:   tx.e.clk.Now(),
	}
	if allocs := testing.AllocsPerRun(500, func() {
		if _, err := tx.step(oid, record, h, ""); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("post hot path allocates %.1f per happening with tracing disabled", allocs)
	}

	// Sanity: the same posting with tracing enabled records events
	// (the fast path really was the disabled branch, not dead code).
	ring := e.EnableTracing(64)
	if _, err := tx.step(oid, record, h, ""); err != nil {
		t.Fatal(err)
	}
	if ring.Total() == 0 {
		t.Fatal("no events traced once enabled")
	}
}
