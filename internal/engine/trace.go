package engine

import (
	"time"

	"ode/internal/event"
	"ode/internal/obs"
	"ode/internal/store"
)

// Tracing is held behind one atomic pointer so it can be toggled at
// runtime (odesh's .trace on|off) without locking the posting hot
// path: when disabled, every emit helper below is one atomic load and
// a branch — no allocation, no lock, nothing formatted.
type tracerBox struct{ t obs.Tracer }

// EnableTracing installs a fresh ring tracer with the given capacity
// (<= 0 picks obs.DefaultRingCapacity) and returns it. Any previous
// tracer is discarded.
func (e *Engine) EnableTracing(capacity int) *obs.Ring {
	r := obs.NewRing(capacity)
	e.traceBox.Store(&tracerBox{t: r})
	return r
}

// SetTracer installs an arbitrary tracer; nil disables tracing.
func (e *Engine) SetTracer(t obs.Tracer) {
	if t == nil {
		e.traceBox.Store(nil)
		return
	}
	e.traceBox.Store(&tracerBox{t: t})
}

// DisableTracing turns tracing off.
func (e *Engine) DisableTracing() { e.traceBox.Store(nil) }

// TracingEnabled reports whether a tracer is installed.
func (e *Engine) TracingEnabled() bool { return e.tracer() != nil }

// TraceEvents returns the last trace events in chronological order
// (nil when tracing is disabled).
func (e *Engine) TraceEvents(last int) []obs.Event {
	if t := e.tracer(); t != nil {
		return t.Events(last)
	}
	return nil
}

// Metrics exposes the per-trigger / per-class metrics registry.
// Metrics are always on: updates are cached-pointer atomic adds, the
// same cost class as the global Stats counters.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

func (e *Engine) tracer() obs.Tracer {
	if b := e.traceBox.Load(); b != nil {
		return b.t
	}
	return nil
}

// traceHappening instruments the pipeline entry: one happening posted
// to one object (§5 "whenever a basic event ... is posted").
func (e *Engine) traceHappening(txid uint64, oid store.OID, class string, kind event.Kind) {
	t := e.tracer()
	if t == nil {
		return
	}
	t.Trace(obs.Event{
		At: e.clk.Now(), Stage: obs.StageHappening,
		TxID: txid, OID: uint64(oid), Class: class, Kind: kind.String(),
	})
}

// traceMask instruments one trigger's mask evaluation for a happening:
// used is the bit set the trigger's expression needs, got the bits
// that evaluated true.
func (e *Engine) traceMask(txid uint64, oid store.OID, class, trigger string, used, got uint32) {
	t := e.tracer()
	if t == nil {
		return
	}
	t.Trace(obs.Event{
		At: e.clk.Now(), Stage: obs.StageMask,
		TxID: txid, OID: uint64(oid), Class: class, Trigger: trigger,
		From: int(used), To: int(got), OK: got != 0,
	})
}

// traceStep instruments one automaton transition.
func (e *Engine) traceStep(txid uint64, oid store.OID, class, trigger string, from, to int, accepted bool) {
	t := e.tracer()
	if t == nil {
		return
	}
	t.Trace(obs.Event{
		At: e.clk.Now(), Stage: obs.StageStep,
		TxID: txid, OID: uint64(oid), Class: class, Trigger: trigger,
		From: from, To: to, OK: accepted,
	})
}

// traceFire instruments one trigger firing with its action latency.
func (e *Engine) traceFire(txid uint64, oid store.OID, class, trigger string, d time.Duration, err error) {
	t := e.tracer()
	if t == nil {
		return
	}
	ev := obs.Event{
		At: e.clk.Now(), Stage: obs.StageFire,
		TxID: txid, OID: uint64(oid), Class: class, Trigger: trigger,
		OK: err == nil, DurNs: d.Nanoseconds(),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	t.Trace(ev)
}

// traceTimer instruments one time-event delivery (before its happening
// enters the pipeline). The always-on flight recorder captures the
// delivery too, tracer or no tracer.
func (e *Engine) traceTimer(oid store.OID, key, onlyTrigger string) {
	e.flightTimer(oid, key, onlyTrigger)
	t := e.tracer()
	if t == nil {
		return
	}
	t.Trace(obs.Event{
		At: e.clk.Now(), Stage: obs.StageTimer,
		OID: uint64(oid), Trigger: onlyTrigger, Kind: key, OK: true,
	})
}

// traceTx instruments transaction lifecycle stages. The always-on
// flight recorder captures them too, tracer or no tracer.
func (e *Engine) traceTx(stage obs.Stage, txid uint64, system bool) {
	e.flightTx(stage, txid, system)
	t := e.tracer()
	if t == nil {
		return
	}
	kind := "user"
	if system {
		kind = "system"
	}
	t.Trace(obs.Event{At: e.clk.Now(), Stage: stage, TxID: txid, Kind: kind, OK: true})
}

// traceTcomplete instruments one round of the §6 commit fixpoint.
func (e *Engine) traceTcomplete(txid uint64, round int, fired bool) {
	t := e.tracer()
	if t == nil {
		return
	}
	t.Trace(obs.Event{
		At: e.clk.Now(), Stage: obs.StageTcomplete,
		TxID: txid, From: round, To: round + 1, OK: fired,
	})
}
