// Package engine is the active-database runtime: it wires the object
// store, the transaction manager, the virtual clock and the compiled
// trigger automata into the execution model of the paper's §5:
//
//	"Whenever a basic event (with any associated parameters) is posted
//	to an object, we check the active triggers to determine whether or
//	not any logical events have occurred. If so, for each active
//	trigger for which a logical event has occurred, we move the
//	automaton to the next state. We determine all the trigger events
//	that have occurred, and then we fire the triggers."
//
// Method calls, object lifecycle and transaction lifecycle post
// happenings to objects; each active trigger instance maps the
// happening to its class-alphabet symbol (evaluating the §5
// disjointness masks), advances one integer of automaton state, and
// fires when the automaton accepts. Trigger actions execute
// immediately, inside the posting transaction; "after tcommit" and
// "after tabort" happenings — whose transaction has already finished —
// are posted by a system transaction, exactly as §5 prescribes.
package engine

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/clock"
	"ode/internal/compile"
	"ode/internal/evlang"
	"ode/internal/fa"
	"ode/internal/fault"
	"ode/internal/history"
	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/txn"
	"ode/internal/value"
)

// Errors surfaced by the engine.
var (
	// ErrTabort is returned through the call chain when a trigger
	// action executes the tabort statement (paper §2); by the time the
	// caller sees it, the transaction has been rolled back.
	ErrTabort = errors.New("engine: transaction aborted by trigger (tabort)")
	// ErrTcompleteDiverged is returned when the before-tcomplete
	// fixpoint (§6) fails to quiesce.
	ErrTcompleteDiverged = errors.New("engine: before tcomplete loop did not quiesce")
)

// maxTcompleteRounds bounds the §6 commit fixpoint ("this process goes
// on until no triggers fire in response to a before tcomplete event").
const maxTcompleteRounds = 64

// MaskFunc is a side-effect-free function callable from masks.
type MaskFunc func(args []value.Value) (value.Value, error)

// MethodImpl implements a member function.
type MethodImpl func(ctx *MethodCtx) (value.Value, error)

// ActionFunc implements a trigger action.
type ActionFunc func(ctx *ActionCtx) error

// ClassImpl binds Go code to a class schema.
type ClassImpl struct {
	// Methods maps member-function names to implementations. Every
	// schema method must be implemented.
	Methods map[string]MethodImpl
	// Actions maps trigger names (or action strings) to actions.
	// Triggers whose declared action is "tabort" or a niladic member
	// call "f()" need no entry — the engine synthesizes those.
	Actions map[string]ActionFunc
	// Funcs are class-level mask functions (e.g. reorder economic
	// quantities); they are consulted before engine-global functions.
	Funcs map[string]MaskFunc
	// Views optionally overrides the history view per trigger name;
	// unset triggers use the schema's declared view (default
	// CommittedView, §6).
	Views map[string]schema.HistoryView
}

// Options configures an Engine.
type Options struct {
	// Dir is the persistence directory; empty means volatile.
	Dir string
	// Start is the initial virtual time (zero means 2000-01-01 UTC).
	Start time.Time
	// RecordHistories, when positive, keeps each object's last N
	// happenings for inspection; negative keeps everything.
	RecordHistories int
	// ShadowOracle cross-checks every automaton transition against the
	// §4 denotational semantics at runtime: each trigger instance also
	// records its symbol history and re-evaluates the event expression
	// on every posting. A divergence fails the posting (and aborts the
	// transaction). Expensive — meant for tests and debugging.
	ShadowOracle bool
	// CombinedAutomata enables footnote-5 monitoring for eligible
	// classes: one product automaton (and one word of per-object state
	// in total) tracks every trigger. See internal/engine/combined.go
	// for the eligibility rules and semantics. Ignored when
	// ShadowOracle is on (the oracle checks per-trigger histories).
	CombinedAutomata bool
	// TraceBuffer, when non-zero, enables pipeline tracing at open
	// with a ring buffer of that many events (< 0 picks the default
	// capacity). Tracing can also be toggled later with
	// Engine.EnableTracing / DisableTracing.
	TraceBuffer int
	// DebugAddr, when set, starts the /debug introspection endpoint
	// (stats, per-trigger metrics, trace, expvar, pprof) on that
	// address at open; "auto" binds a free localhost port. The
	// listener is shut down by Engine.Close.
	DebugAddr string
	// DisableGroupCommit makes every durable commit write and sync the
	// WAL itself instead of coalescing with concurrent committers (see
	// store.Options).
	DisableGroupCommit bool
	// InterpretedMasks makes mask evaluation use the AST interpreter
	// instead of the programs compiled at registration — the semantic
	// baseline the compiled path is measured and cross-checked against.
	// Meant for tests and benchmarks; production leaves it off.
	InterpretedMasks bool
	// PerObjectTimers restores the pre-cohort timer layout: one shared
	// clock timer per (object, spec) and one system transaction per
	// delivery, instead of one cohort per (class, spec, phase) delivered
	// through the columnar batch path. This is the semantic baseline the
	// cohort path is equivalence-tested and benchmarked against; meant
	// for tests and benchmarks, production leaves it off.
	PerObjectTimers bool
	// Faults optionally installs a fault-injection registry consulted
	// by the WAL and the lock manager (internal/fault). The simulation
	// harness (internal/sim) arms it; nil — the production default —
	// keeps every consult a single branch on the hot path.
	Faults *fault.Registry
	// FlightBuffer sizes the always-on flight recorder (rounded up to a
	// power of two; 0 picks obs.DefaultFlightCapacity). The recorder
	// cannot be disabled — its record path is a handful of atomic
	// stores, cheap enough to leave on permanently.
	FlightBuffer int
	// ProvenanceDepth sets the per-(object, trigger) firing-provenance
	// ring depth (0 picks obs.DefaultProvDepth; < 0 disables provenance
	// capture entirely).
	ProvenanceDepth int
	// OIDBase and OIDStride restrict this engine's OID allocation to an
	// arithmetic progression (see store.Options): partition p of N runs
	// with base p+1, stride N, so partitions allocate disjoint OID sets
	// and ownership is recomputable from the OID alone. Zero values mean
	// base 1, stride 1 — every OID, the unpartitioned default.
	OIDBase   uint64
	OIDStride uint64
	// SingleWriter promises that exactly one goroutine drives all
	// transactions over this engine — a partition's event loop — and
	// switches the transaction manager into lock-free mode (see
	// txn.Manager.SetSingleWriter). The hot path then never touches the
	// lock manager.
	SingleWriter bool
	// Partition is this engine's partition id, stamped onto flight-
	// recorder dumps and debug output. 0 for unpartitioned engines.
	Partition int
	// DisableEgress turns off commit-time capture of trigger firings
	// for the durable egress feed (see internal/egress). The default —
	// egress on — costs nothing on the masked non-firing hot path: the
	// capture happens only when a trigger actually fires.
	DisableEgress bool
}

// Engine is an active object database.
type Engine struct {
	st  *store.Store
	txm *txn.Manager
	clk *clock.Virtual

	mu      sync.RWMutex
	classes map[string]*Class
	funcs   map[string]MaskFunc

	// Automaton memory accounting (under mu): the distinct hash-consed
	// tables this engine's triggers reference, the resident bytes of
	// those tables plus any combined monitors, and the trigger count.
	autoTables   map[*compile.Table]struct{}
	autoBytes    uint64
	autoTriggers uint64

	// Whole-history trigger automaton state lives outside the objects,
	// so transaction rollback does not touch it (§6).
	wholeMu     sync.Mutex
	whole       map[instanceKey]int
	wholeShadow map[instanceKey][]int

	shadowOracle   bool
	combined       bool
	interpretMasks bool
	egressOff      bool            // Options.DisableEgress: skip firing capture
	partition      int             // partition id (0 for unpartitioned engines)
	faults         *fault.Registry // nil outside the simulation harness

	// firingSink is the optional live-feed callback (SetFiringSink):
	// invoked with each batch of newly durable firing records, in
	// sequence order, from the committing goroutine.
	firingSink atomic.Pointer[func([]store.FiringRecord)]

	timers *timerTable

	// book is written once at open and read per happening; an atomic
	// pointer keeps recordHappening from serializing parallel posters.
	book atomic.Pointer[history.Book]

	// timerErrs is a fixed-size ring (timerErrRingCap): a persistent
	// delivery failure must not grow memory without bound. timerErrAt is
	// the overwrite cursor once full; overwritten errors count into
	// stats.timerErrsDropped.
	timerErrMu sync.Mutex
	timerErrs  []error
	timerErrAt int

	stats statCounters

	// Observability: traceBox is nil when tracing is disabled (the
	// hot-path emit helpers in trace.go check it with one atomic
	// load); metrics, the flight recorder and firing provenance are
	// always on. names interns class/trigger/kind strings to the
	// uint16 IDs the flight recorder stores.
	traceBox  atomic.Pointer[tracerBox]
	metrics   *obs.Registry
	flight    *obs.Flight
	names     *obs.Interner
	txUserID  uint16 // interned "user" / "system" for tx flight records
	txSysID   uint16
	prov      provTable
	provDepth int // < 0 disables provenance capture

	debugMu    sync.Mutex
	debugSrvs  []*http.Server
	debugVar   sync.Once
	expvarName string
}

type instanceKey struct {
	oid  store.OID
	trig string
}

// Class is a registered class: schema, compiled trigger automata and
// bound implementations.
type Class struct {
	Schema   *schema.Class
	Res      *evlang.ClassResolution
	Impl     ClassImpl
	Triggers []*Trigger
	byName   map[string]*Trigger
	parser   *evlang.Parser    // retained for history queries (defines)
	monitor  *combinedMonitor  // non-nil → footnote-5 combined monitoring
	met      *obs.ClassMetrics // per-class counters, cached at registration
	// nameID and kindIDs are the interned flight-recorder IDs of the
	// class name and of each alphabet kind (indexed by kindIx), computed
	// at registration so hot-path records never touch a string.
	nameID  uint16
	kindIDs []uint16
	// dispatch[kindIx] lists the triggers a happening of that kind can
	// affect, with their compiled mask programs (see dispatch.go).
	dispatch [][]dispatchEntry
}

// Trigger is one compiled trigger of a class.
type Trigger struct {
	Res *evlang.TriggerResolution
	// Auto is the stepping automaton: a hash-consed compact transition
	// table shared process-wide between equivalent triggers, bound to
	// this class's alphabet by a symbol remap. The posting hot path
	// steps only this form.
	Auto *compile.Shared
	// DFA is the fat class-alphabet oracle automaton (identical state
	// numbering). It is materialized only under Options.ShadowOracle —
	// retaining it per trigger would forfeit the shared tables' memory
	// win — and is nil otherwise; use Oracle() for an on-demand copy.
	DFA    *fa.DFA
	View   schema.HistoryView
	Action ActionFunc
	met    *obs.TriggerMetrics // per-trigger counters, cached at registration
	nameID uint16              // interned flight-recorder ID of the trigger name
	// slot is the trigger's stable index within its class (its position
	// in Class.Triggers), addressing the record's dense activation
	// slots without a name-map probe.
	slot int
	// relevant[kindIx] reports whether a happening of that kind can
	// affect this trigger at all: either a disjointness mask must be
	// evaluated, or the kind's symbol can change the automaton's
	// behavior (see compile.InertSymbol). step() skips triggers whose
	// entry is false.
	relevant []bool
}

// RelevantKind reports whether happenings of the kind at kindIx can
// affect this trigger (introspection for tests and tooling).
func (t *Trigger) RelevantKind(kindIx int) bool { return t.relevant[kindIx] }

// Oracle returns the trigger's fat class-alphabet DFA with state
// numbering identical to the compact stepping form: the retained
// shadow copy under Options.ShadowOracle, otherwise a fresh expansion.
// Introspection and tests use it; the hot path never does.
func (t *Trigger) Oracle() *fa.DFA {
	if t.DFA != nil {
		return t.DFA
	}
	return t.Auto.Expand()
}

// Metrics exposes the trigger's live counters.
func (t *Trigger) Metrics() *obs.TriggerMetrics { return t.met }

// Trigger returns the named compiled trigger, or nil.
func (c *Class) Trigger(name string) *Trigger { return c.byName[name] }

// New opens an engine.
func New(opts Options) (*Engine, error) {
	st, err := store.OpenWith(opts.Dir, store.Options{
		DisableGroupCommit: opts.DisableGroupCommit,
		Faults:             opts.Faults,
		OIDBase:            opts.OIDBase,
		OIDStride:          opts.OIDStride,
	})
	if err != nil {
		return nil, err
	}
	start := opts.Start
	if start.IsZero() {
		start = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	e := &Engine{
		st:             st,
		txm:            txn.NewManagerWith(st, opts.Faults),
		clk:            clock.NewVirtual(start),
		classes:        map[string]*Class{},
		funcs:          map[string]MaskFunc{},
		autoTables:     map[*compile.Table]struct{}{},
		whole:          map[instanceKey]int{},
		wholeShadow:    map[instanceKey][]int{},
		shadowOracle:   opts.ShadowOracle,
		combined:       opts.CombinedAutomata && !opts.ShadowOracle,
		interpretMasks: opts.InterpretedMasks,
		egressOff:      opts.DisableEgress,
		faults:         opts.Faults,
		metrics:        obs.NewRegistry(),
		names:          obs.NewInterner(),
		provDepth:      opts.ProvenanceDepth,
		partition:      opts.Partition,
	}
	if opts.SingleWriter {
		e.txm.SetSingleWriter(true)
	}
	e.flight = obs.NewFlight(opts.FlightBuffer, e.names)
	e.txUserID = e.names.Intern("user")
	e.txSysID = e.names.Intern("system")
	if !e.egressOff {
		st.SetFiringSink(e.egressPublish)
	}
	e.timers = newTimerTable(e, opts.PerObjectTimers)
	switch {
	case opts.RecordHistories > 0:
		e.book.Store(history.NewBook(opts.RecordHistories))
	case opts.RecordHistories < 0:
		e.book.Store(history.NewBook(0))
	}
	if opts.TraceBuffer != 0 {
		e.EnableTracing(opts.TraceBuffer)
	}
	if opts.DebugAddr != "" {
		if _, err := e.ServeDebug(opts.DebugAddr); err != nil {
			st.Close()
			return nil, err
		}
	}
	return e, nil
}

// Close shuts down any debug endpoints and releases the underlying
// store.
func (e *Engine) Close() error {
	e.debugMu.Lock()
	srvs := e.debugSrvs
	e.debugSrvs = nil
	e.debugMu.Unlock()
	for _, s := range srvs {
		s.Close()
	}
	return e.st.Close()
}

// Clock returns the engine's virtual clock. Advance it outside of
// transactions: due timers post their time events from the advancing
// goroutine.
func (e *Engine) Clock() *clock.Virtual { return e.clk }

// Store exposes the object store (read-mostly; examples and tools use
// it for inspection).
func (e *Engine) Store() *store.Store { return e.st }

// Faults returns the engine's fault-injection registry (nil unless
// one was installed via Options.Faults).
func (e *Engine) Faults() *fault.Registry { return e.faults }

// Checkpoint snapshots the store and truncates the WAL.
func (e *Engine) Checkpoint() error { return e.st.Checkpoint() }

// RegisterFunc installs an engine-global mask function (the paper's
// user() is the canonical example).
func (e *Engine) RegisterFunc(name string, fn MaskFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.funcs[name] = fn
}

// RegisterClass validates, resolves and compiles a class: every
// trigger event becomes a minimized DFA over the class's §5 alphabet.
// The optional parser carries #define abbreviations used by trigger
// events.
func (e *Engine) RegisterClass(cls *schema.Class, impl ClassImpl, ps *evlang.Parser) (*Class, error) {
	if err := cls.Validate(); err != nil {
		return nil, err
	}
	for _, m := range cls.Methods {
		if impl.Methods[m.Name] == nil {
			return nil, fmt.Errorf("engine: class %s: method %s has no implementation", cls.Name, m.Name)
		}
	}
	if ps == nil {
		ps = evlang.ForClass(cls)
	} else {
		// The parser may be shared across classes (a common define
		// set); the method list is always this class's own, so work on
		// a clone — setting Methods on the caller's parser in place
		// races with a concurrent registration sharing it.
		ps = ps.Clone()
		ps.Methods = map[string]bool{}
		for _, m := range cls.Methods {
			ps.Methods[m.Name] = true
		}
	}
	res, err := evlang.ResolveClass(cls, ps)
	if err != nil {
		return nil, err
	}
	c := &Class{Schema: cls, Res: res, Impl: impl, byName: map[string]*Trigger{}, parser: ps,
		met: e.metrics.Class(cls.Name), nameID: e.names.Intern(cls.Name)}
	c.kindIDs = make([]uint16, len(res.Alphabet.Kinds))
	for kix := range res.Alphabet.Kinds {
		c.kindIDs[kix] = e.names.Intern(res.Alphabet.Kinds[kix].Kind.String())
	}
	for _, tr := range res.Triggers {
		view := schema.CommittedView
		if st := cls.Trigger(tr.Name); st != nil {
			view = st.View
		}
		if v, ok := impl.Views[tr.Name]; ok {
			view = v
		}
		action, err := e.bindAction(cls, impl, tr)
		if err != nil {
			return nil, err
		}
		t := &Trigger{
			Res:    tr,
			Auto:   compile.CompileShared(tr.Expr, res.Alphabet.NumSymbols),
			View:   view,
			Action: action,
			met:    e.metrics.Trigger(cls.Name, tr.Name),
			nameID: e.names.Intern(tr.Name),
			slot:   len(c.Triggers),
		}
		// The registration-time analyses below want the fat
		// class-alphabet form; expand it once here and drop it (except
		// under the shadow oracle, which keeps it as the §5 shadow).
		oracle := t.Auto.Expand()
		if e.shadowOracle {
			t.DFA = oracle
		}
		// Kind-relevance bitmap: a kind matters if the trigger's
		// expression evaluates a mask on it, or if its (mask-free)
		// symbol is not inert for the automaton. step() skips the
		// trigger for irrelevant kinds.
		t.relevant = make([]bool, len(res.Alphabet.Kinds))
		for kix := range res.Alphabet.Kinds {
			t.relevant[kix] = tr.UsedBits[kix] != 0 ||
				!compile.InertSymbol(oracle, res.Alphabet.Symbol(kix, 0), tr.Perpetual)
		}
		c.Triggers = append(c.Triggers, t)
		c.byName[tr.Name] = t
	}
	if e.combined {
		c.monitor = buildCombined(c)
		if c.monitor != nil {
			if err := e.compileCombinedProgs(c); err != nil {
				return nil, err
			}
		}
	}
	if err := e.buildDispatch(c); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.classes[cls.Name]; dup {
		return nil, fmt.Errorf("engine: class %s already registered", cls.Name)
	}
	e.classes[cls.Name] = c
	for _, t := range c.Triggers {
		e.autoTriggers++
		if _, seen := e.autoTables[t.Auto.Tab]; !seen {
			e.autoTables[t.Auto.Tab] = struct{}{}
			e.autoBytes += uint64(t.Auto.Tab.Compact.Bytes())
		}
	}
	if c.monitor != nil {
		e.autoBytes += uint64(c.monitor.comb.Bytes())
	}
	return c, nil
}

// bindAction resolves a trigger's action: an explicit binding by
// trigger name, a binding by raw action string, the built-in tabort
// statement, or a niladic self member call "f()".
func (e *Engine) bindAction(cls *schema.Class, impl ClassImpl, tr *evlang.TriggerResolution) (ActionFunc, error) {
	if a := impl.Actions[tr.Name]; a != nil {
		return a, nil
	}
	raw := tr.Action
	if raw == "" {
		if st := cls.Trigger(tr.Name); st != nil {
			// Schema-declared triggers carry no action text; they must
			// be bound by name.
			return nil, fmt.Errorf("engine: class %s: trigger %s has no bound action", cls.Name, tr.Name)
		}
	}
	if a := impl.Actions[raw]; a != nil {
		return a, nil
	}
	if raw == "tabort" {
		return func(*ActionCtx) error { return ErrTabort }, nil
	}
	// f() — a niladic member call on the triggering object.
	if n := len(raw); n > 2 && raw[n-2] == '(' && raw[n-1] == ')' {
		method := raw[:n-2]
		if cls.Method(method) != nil {
			return func(ctx *ActionCtx) error {
				_, err := ctx.Tx.Call(ctx.Self, method)
				return err
			}, nil
		}
	}
	return nil, fmt.Errorf("engine: class %s: trigger %s action %q is not bound", cls.Name, tr.Name, raw)
}

// Class returns a registered class, or nil.
func (e *Engine) Class(name string) *Class {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.classes[name]
}

// classOf resolves the class of a record.
func (e *Engine) classOf(rec *store.Record) (*Class, error) {
	c := e.Class(rec.Class)
	if c == nil {
		return nil, fmt.Errorf("engine: object %d has unregistered class %q", rec.OID, rec.Class)
	}
	return c, nil
}

// History returns the recorded happening log of oid, or nil when
// recording is disabled or nothing was recorded.
func (e *Engine) History(oid store.OID) *history.Log {
	book := e.book.Load()
	if book == nil {
		return nil
	}
	return book.Peek(oid)
}

// TriggerState reports a trigger instance's automaton state and
// whether it is active — test and tooling introspection.
func (e *Engine) TriggerState(oid store.OID, trigger string) (state int, active bool, err error) {
	rec, err := e.st.Get(oid)
	if err != nil {
		return 0, false, err
	}
	c, err := e.classOf(rec)
	if err != nil {
		return 0, false, err
	}
	t := c.Trigger(trigger)
	if t == nil {
		return 0, false, fmt.Errorf("engine: class %s has no trigger %q", rec.Class, trigger)
	}
	act, ok := rec.Triggers[trigger]
	if !ok {
		return t.Auto.Start(), false, nil
	}
	if c.monitor != nil {
		// Combined monitoring: the single shared state word stands in
		// for every trigger of the object.
		if slot, ok := rec.Triggers[combinedSlot]; ok && slot.Active {
			return slot.State, act.Active, nil
		}
		return c.monitor.comb.Start, act.Active, nil
	}
	if t.View == schema.WholeView {
		e.wholeMu.Lock()
		defer e.wholeMu.Unlock()
		if s, ok := e.whole[instanceKey{oid, trigger}]; ok {
			return s, act.Active, nil
		}
		return t.Auto.Start(), act.Active, nil
	}
	return act.State, act.Active, nil
}

// timerErrRingCap bounds the retained timer-delivery errors; older
// errors are dropped (and counted in Stats.TimerErrsDropped) once the
// ring is full.
const timerErrRingCap = 64

// TimerErrors returns the most recent errors raised while delivering
// time events, oldest first (empty in healthy runs). At most
// timerErrRingCap errors are retained; Stats().TimerErrsDropped counts
// the overwritten ones.
func (e *Engine) TimerErrors() []error {
	e.timerErrMu.Lock()
	defer e.timerErrMu.Unlock()
	out := make([]error, 0, len(e.timerErrs))
	out = append(out, e.timerErrs[e.timerErrAt:]...)
	out = append(out, e.timerErrs[:e.timerErrAt]...)
	return out
}

func (e *Engine) recordTimerErr(err error) {
	e.timerErrMu.Lock()
	if len(e.timerErrs) < timerErrRingCap {
		e.timerErrs = append(e.timerErrs, err)
	} else {
		e.timerErrs[e.timerErrAt] = err
		e.timerErrAt = (e.timerErrAt + 1) % timerErrRingCap
		e.stats.timerErrsDropped.Add(1)
	}
	e.timerErrMu.Unlock()
}

// RearmTimers re-creates the volatile timer schedule for every active
// trigger after reopening a persistent database: activations are
// durable but clock state is not. Every object must resolve: a failing
// lookup or an unregistered class aborts the rearm with an error
// (rearming a subset silently would leave some activations without
// their timers).
func (e *Engine) RearmTimers() error {
	for _, oid := range e.st.OIDs() {
		if err := e.rearmObject(oid); err != nil {
			return fmt.Errorf("engine: rearm timers: object %d: %w", oid, err)
		}
	}
	return nil
}

func (e *Engine) rearmObject(oid store.OID) error {
	rec, err := e.st.Get(oid)
	if err != nil {
		return err
	}
	c, err := e.classOf(rec)
	if err != nil {
		return err
	}
	for name, act := range rec.Triggers {
		if !act.Active {
			continue
		}
		if t := c.Trigger(name); t != nil {
			e.timers.arm(oid, c, t)
		}
	}
	return nil
}
