package engine

import (
	"errors"
	"testing"
	"time"

	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

func TestDeleteObjectDisarmsTimers(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Tick", Perpetual: true, Event: "every time(M=10)"},
		schema.Trigger{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"},
		schema.Trigger{Name: "Once", Event: "after time(M=30)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	oid := setup(t, e, cls, impl, "Tick", "Daily", "Once")

	if err := e.Transact(func(tx *Tx) error { return tx.DeleteObject(oid) }); err != nil {
		t.Fatal(err)
	}
	e.Clock().Advance(48 * time.Hour)
	if rec.count() != 0 {
		t.Fatalf("timers fired on a deleted object: %v", rec.list())
	}
	if errs := e.TimerErrors(); len(errs) != 0 {
		t.Fatalf("timer errors: %v", errs)
	}
}

func TestSharedTimerRefcounting(t *testing.T) {
	// Two triggers on the same 'at' spec share one armed timer; while
	// either is active the events flow, and both firing at the same
	// tick see the same history point.
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "A", Perpetual: true, Event: "at time(HR=17)"},
		schema.Trigger{Name: "B", Perpetual: true, Event: "at time(HR=17)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	oid := setup(t, e, cls, impl, "A", "B")

	e.Clock().Advance(10 * time.Hour)
	if rec.count() != 2 {
		t.Fatalf("fires = %v", rec.list())
	}
	// Deactivate one; the other keeps receiving the shared timer.
	e.Transact(func(tx *Tx) error { return tx.Deactivate(oid, "A") })
	e.Clock().Advance(24 * time.Hour)
	if rec.count() != 3 {
		t.Fatalf("fires after partial deactivation = %v", rec.list())
	}
	// Deactivate the last one: timer disappears.
	e.Transact(func(tx *Tx) error { return tx.Deactivate(oid, "B") })
	e.Clock().Advance(24 * time.Hour)
	if rec.count() != 3 {
		t.Fatalf("shared timer survived full deactivation: %v", rec.list())
	}
	if e.Clock().Pending() != 0 {
		t.Fatalf("%d timers still pending", e.Clock().Pending())
	}
}

func TestOrdinaryTimerTriggerDisarmsOnFire(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "D", Event: "at time(HR=17)"}) // ordinary
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	setup(t, e, cls, impl, "D")

	e.Clock().Advance(48 * time.Hour)
	if rec.count() != 1 {
		t.Fatalf("ordinary timed trigger fired %d times", rec.count())
	}
	if e.Clock().Pending() != 0 {
		t.Fatal("fired ordinary trigger left a pending timer")
	}
}

func TestMaskErrorAbortsTransaction(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Bad", Perpetual: true, Event: "after deposit && boom() == 1"})
	impl.Funcs = map[string]MaskFunc{
		"boom": func([]value.Value) (value.Value, error) {
			return value.Null(), errors.New("kaput")
		},
	}
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Bad")

	err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(5))
		return err
	})
	if err == nil {
		t.Fatal("mask error swallowed")
	}
	r, _ := e.Store().Get(oid)
	if !r.Fields["balance"].Equal(value.Int(1000)) {
		t.Fatalf("failed transaction left effects: %v", r.Fields["balance"])
	}
}

func TestMaskUpdateMethodRejected(t *testing.T) {
	// §7 requires side-effect-free conditions; calling an update method
	// from a mask is an error.
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Bad", Perpetual: true, Event: "after deposit && withdraw(1) == null"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Bad")

	err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(5))
		return err
	})
	if err == nil {
		t.Fatal("update-method mask call accepted")
	}
}

func TestMaskReadMethodAndGlobalFunc(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Rich", Perpetual: true,
			Event: "after deposit && getBalance() > threshold()"})
	e := newEngine(t, Options{})
	e.RegisterFunc("threshold", func([]value.Value) (value.Value, error) {
		return value.Int(1500), nil
	})
	oid := setup(t, e, cls, impl, "Rich")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(100)) // 1100: below
		tx.Call(oid, "deposit", value.Int(600)) // 1700: above
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("fires = %d", rec.count())
	}
}

func TestCheckpointAndReopenEngine(t *testing.T) {
	dir := t.TempDir()
	rec := &recorder{}
	cls, impl := accountClass(rec)
	e, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var oid store.OID
	e.Transact(func(tx *Tx) error {
		oid, _ = tx.NewObject("account", map[string]value.Value{"balance": value.Int(5)})
		return nil
	})
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	r, err := e2.Store().Get(oid)
	if err != nil || !r.Fields["balance"].Equal(value.Int(5)) {
		t.Fatalf("checkpointed object: %+v, %v", r, err)
	}
}

func TestBindActionForms(t *testing.T) {
	rec := &recorder{}
	e := newEngine(t, Options{})
	cls, impl := accountClass(rec)
	// A schema trigger with an evlang-declared action string routes
	// through the engine's bindAction: method-call form.
	called := 0
	impl.Methods["poke"] = func(*MethodCtx) (value.Value, error) { called++; return value.Null(), nil }
	cls.Methods = append(cls.Methods, schema.Method{Name: "poke", Mode: schema.ModeUpdate})
	cls.Triggers = append(cls.Triggers,
		schema.Trigger{Name: "ByName", Perpetual: true, Event: "after withdraw"})
	impl.Actions["ByName"] = func(*ActionCtx) error { rec.add("ByName"); return nil }
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var oid store.OID
	e.Transact(func(tx *Tx) error {
		oid, _ = tx.NewObject("account", nil)
		return tx.Activate(oid, "ByName")
	})
	e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "withdraw", value.Int(1))
		return err
	})
	if rec.count() != 1 {
		t.Fatal("named action binding failed")
	}
}

func TestMaskFieldAccessErrors(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Bad", Perpetual: true, Event: "after deposit(n) && n.field > 1"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Bad")
	// n is an int, not an object reference: field access must error and
	// abort the transaction.
	err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(5))
		return err
	})
	if err == nil {
		t.Fatal("field access on int accepted")
	}
}

func TestTxIDAndDependOn(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec)
	e := newEngine(t, Options{})
	setup(t, e, cls, impl)

	t1 := e.Begin()
	t2 := e.Begin()
	if t1.ID() == t2.ID() || t1.ID() == 0 {
		t.Fatal("transaction ids")
	}
	t2.DependOn(t1)
	done := make(chan error, 1)
	go func() { done <- t2.Commit() }()
	select {
	case <-done:
		t.Fatal("dependent committed before dependency")
	case <-time.After(20 * time.Millisecond):
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRearmTimersSkipsInactive(t *testing.T) {
	dir := t.TempDir()
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "T", Perpetual: true, Event: "at time(HR=17)"})
	e, _ := New(Options{Dir: dir, Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var a, b store.OID
	e.Transact(func(tx *Tx) error {
		a, _ = tx.NewObject("account", nil)
		b, _ = tx.NewObject("account", nil)
		tx.Activate(a, "T")
		tx.Activate(b, "T")
		return tx.Deactivate(b, "T")
	})
	e.Close()

	rec2 := &recorder{}
	cls2, impl2 := accountClass(rec2,
		schema.Trigger{Name: "T", Perpetual: true, Event: "at time(HR=17)"})
	e2, _ := New(Options{Dir: dir, Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	defer e2.Close()
	if _, err := e2.RegisterClass(cls2, impl2, nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.RearmTimers(); err != nil {
		t.Fatal(err)
	}
	e2.Clock().Advance(10 * time.Hour)
	if rec2.count() != 1 {
		t.Fatalf("rearm fired %d times, want 1 (only the active instance)", rec2.count())
	}
	_ = a
	_ = b
}

func TestAbortedActivationDisarmsTimers(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	oid := setup(t, e, cls, impl) // created, NOT activated

	// Activation inside an aborted transaction must leave no live
	// timer behind.
	e.Transact(func(tx *Tx) error {
		if err := tx.Activate(oid, "Daily"); err != nil {
			return err
		}
		return errors.New("abort")
	})
	e.Clock().Advance(48 * time.Hour)
	if rec.count() != 0 {
		t.Fatalf("timer of rolled-back activation fired %d times", rec.count())
	}
	if got := e.Clock().Pending(); got != 0 {
		t.Fatalf("%d stale timers pending", got)
	}
}

func TestAbortedDeactivationRearmsTimers(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	oid := setup(t, e, cls, impl, "Daily")

	// Deactivation inside an aborted transaction: the trigger stays
	// active, so its timer must survive (be re-armed).
	e.Transact(func(tx *Tx) error {
		if err := tx.Deactivate(oid, "Daily"); err != nil {
			return err
		}
		return errors.New("abort")
	})
	e.Clock().Advance(10 * time.Hour) // past 17:00
	if rec.count() != 1 {
		t.Fatalf("trigger fired %d times after rolled-back deactivation", rec.count())
	}
	if errs := e.TimerErrors(); len(errs) != 0 {
		t.Fatalf("timer errors: %v", errs)
	}
}

func TestAbortedCreationWithTimersLeavesNothingPending(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	e.Transact(func(tx *Tx) error {
		oid, err := tx.NewObject("account", nil)
		if err != nil {
			return err
		}
		if err := tx.Activate(oid, "Daily"); err != nil {
			return err
		}
		return errors.New("abort")
	})
	if got := e.Clock().Pending(); got != 0 {
		t.Fatalf("%d timers pending for a rolled-back creation", got)
	}
	e.Clock().Advance(48 * time.Hour)
	if rec.count() != 0 || len(e.TimerErrors()) != 0 {
		t.Fatalf("phantom fires %d, errs %v", rec.count(), e.TimerErrors())
	}
}
