package engine

import (
	"errors"
	"fmt"

	"ode/internal/event"
	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/txn"
	"ode/internal/value"
)

// Tx is a transaction handle (the paper's trans{...} block). A Tx must
// be used from a single goroutine. After Commit, Abort, or a tabort
// raised by a trigger action, the handle is finished and every
// operation fails with txn.ErrNotActive.
type Tx struct {
	e        *Engine
	tx       *txn.Tx
	aborting bool
	finished bool

	// Hot-path scratch, reused across postings so the volatile posting
	// path allocates nothing per masked, non-firing happening. fired
	// and evArena follow stack discipline (append from a base, truncate
	// on return), which keeps nested postings correct; penv and actCtx
	// are reused by address with save/restore by value around each use.
	fired   []firedTrigger // firing accumulation arena (post.go)
	evArena []value.Value  // dense event-parameter arena (Call)
	penv    progHost       // compiled-mask host (dispatch.go)
	actCtx  ActionCtx      // action context storage (fire)

	// narrowStep marks a cohort timer delivery transaction: stepBatch
	// registers objects with the txn layer lazily — a narrow
	// activation-scalar image at the first in-place mutation, promoted
	// to a full image before any trigger action runs. Off (the
	// default), batchAccess has already taken full images.
	narrowStep bool

	// Single-entry record cache, primed only by PostBatch (batchAccess).
	// A non-nil cachedRec certifies the transaction is active and has
	// already accessed cachedOID — so the lock is held, the before-image
	// exists, and after-tbegin was posted — which makes returning it
	// from access equivalent to a repeat Access. Every site that could
	// break the certificate (commit, abort, delete, trigger firing)
	// clears it.
	cachedOID store.OID
	cachedRec *store.Record
}

// Begin starts a transaction.
func (e *Engine) Begin() *Tx {
	e.stats.txBegun.Add(1)
	tx := &Tx{e: e, tx: e.txm.Begin()}
	e.traceTx(obs.StageTxBegin, tx.tx.ID(), false)
	return tx
}

// beginSystem starts a system transaction: it posts no transaction
// lifecycle events of its own (§5 uses it to deliver after-tcommit and
// after-tabort, which belong to an already-finished transaction).
func (e *Engine) beginSystem() *Tx {
	e.stats.systemTx.Add(1)
	tx := &Tx{e: e, tx: e.txm.BeginSystem()}
	e.traceTx(obs.StageTxBegin, tx.tx.ID(), true)
	return tx
}

// Transact runs fn in a fresh transaction, committing on nil and
// aborting on error. A tabort raised by a trigger inside fn surfaces
// as ErrTabort with the rollback already performed.
func (e *Engine) Transact(fn func(*Tx) error) error {
	tx := e.Begin()
	if err := fn(tx); err != nil {
		if !tx.finished {
			if aerr := tx.Abort(); aerr != nil {
				return errors.Join(err, aerr)
			}
		}
		return err
	}
	if tx.finished {
		// fn committed or aborted explicitly; respect it.
		return nil
	}
	return tx.Commit()
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.tx.ID() }

// Underlying exposes the txn-level handle (commit dependencies, lock
// introspection).
func (tx *Tx) Underlying() *txn.Tx { return tx.tx }

// DependOn makes this transaction commit-dependent on other (§7
// footnote 6).
func (tx *Tx) DependOn(other *Tx) { tx.tx.DependOn(other.tx) }

// access locks the object and posts "after tbegin" on the
// transaction's first access to it (§3.1: posted "only immediately
// before the object is first accessed by the transaction").
func (tx *Tx) access(oid store.OID) (*store.Record, error) {
	if tx.cachedRec != nil && oid == tx.cachedOID {
		return tx.cachedRec, nil
	}
	rec, first, err := tx.tx.Access(oid)
	if err != nil {
		return nil, err
	}
	if first && !tx.tx.System() && !tx.tx.Created(oid) {
		h := event.Happening{
			Kind: event.Kind{Phase: event.After, Class: event.KTbegin},
			TxID: tx.tx.ID(),
			At:   tx.e.clk.Now(),
		}
		if _, err := tx.step(oid, rec, h, ""); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// NewObject creates an object of the class with the given fields
// merged over the schema defaults, posting "after create".
func (tx *Tx) NewObject(class string, fields map[string]value.Value) (store.OID, error) {
	c := tx.e.Class(class)
	if c == nil {
		return 0, fmt.Errorf("engine: unregistered class %q", class)
	}
	init := c.Schema.DefaultFields()
	for k, v := range fields {
		f := c.Schema.Field(k)
		if f == nil {
			return 0, fmt.Errorf("engine: class %s has no field %q", class, k)
		}
		cv, err := coerce(v, f.Kind)
		if err != nil {
			return 0, fmt.Errorf("engine: field %s: %w", k, err)
		}
		init[k] = cv
	}
	rec, err := tx.tx.Create(class, init)
	if err != nil {
		return 0, err
	}
	h := event.Happening{
		Kind: event.Kind{Phase: event.After, Class: event.KCreate},
		TxID: tx.tx.ID(),
		At:   tx.e.clk.Now(),
	}
	if _, err := tx.step(rec.OID, rec, h, ""); err != nil {
		return 0, tx.propagate(err)
	}
	return rec.OID, nil
}

// DeleteObject posts "before delete" and removes the object.
func (tx *Tx) DeleteObject(oid store.OID) error {
	rec, err := tx.access(oid)
	if err != nil {
		return err
	}
	h := event.Happening{
		Kind: event.Kind{Phase: event.Before, Class: event.KDelete},
		TxID: tx.tx.ID(),
		At:   tx.e.clk.Now(),
	}
	if _, err := tx.step(oid, rec, h, ""); err != nil {
		return tx.propagate(err)
	}
	tx.e.timers.disarmObject(oid)
	tx.cachedRec = nil
	return tx.tx.Delete(oid)
}

// Call invokes a member function with positional arguments, posting
// the before- and after-method happenings around the execution
// (paper §3.1, item 2).
func (tx *Tx) Call(oid store.OID, method string, args ...value.Value) (value.Value, error) {
	rec, err := tx.access(oid)
	if err != nil {
		return value.Null(), err
	}
	c, err := tx.e.classOf(rec)
	if err != nil {
		return value.Null(), err
	}
	m := c.Schema.Method(method)
	if m == nil {
		return value.Null(), fmt.Errorf("engine: class %s has no method %q", rec.Class, method)
	}
	if len(args) != len(m.Params) {
		return value.Null(), fmt.Errorf("engine: %s.%s takes %d argument(s), got %d",
			rec.Class, method, len(m.Params), len(args))
	}
	// The name-keyed map serves the interpreter oracle, MethodCtx and
	// ActionCtx; the dense slice serves compiled masks. The slice lives
	// in the Tx's arena (stack discipline: nested Calls append above
	// us, the deferred truncation releases our region on return), so a
	// parameterless call allocates neither.
	var bound map[string]value.Value
	var dense []value.Value
	if len(args) > 0 {
		bound = make(map[string]value.Value, len(args))
		arenaBase := len(tx.evArena)
		defer func() { tx.evArena = tx.evArena[:arenaBase] }()
		for i, a := range args {
			cv, err := coerce(a, m.Params[i].Kind)
			if err != nil {
				return value.Null(), fmt.Errorf("engine: %s.%s parameter %s: %w", rec.Class, method, m.Params[i].Name, err)
			}
			bound[m.Params[i].Name] = cv
			tx.evArena = append(tx.evArena, cv)
		}
		dense = tx.evArena[arenaBase:len(tx.evArena):len(tx.evArena)]
	}

	before := event.Happening{
		Kind:   event.MethodKind(event.Before, method),
		Params: bound,
		Dense:  dense,
		TxID:   tx.tx.ID(),
		At:     tx.e.clk.Now(),
	}
	if _, err := tx.step(oid, rec, before, ""); err != nil {
		return value.Null(), tx.propagate(err)
	}

	out, err := c.Impl.Methods[method](&MethodCtx{Tx: tx, Self: oid, Args: bound})
	if err != nil {
		return value.Null(), tx.propagate(err)
	}

	after := event.Happening{
		Kind:   event.MethodKind(event.After, method),
		Params: bound,
		Dense:  dense,
		TxID:   tx.tx.ID(),
		At:     tx.e.clk.Now(),
	}
	if _, err := tx.step(oid, rec, after, ""); err != nil {
		return out, tx.propagate(err)
	}
	return out, nil
}

// Get reads a field without posting events (paper footnote 2: raw
// accesses are deliberately not events). The access is still
// transactional.
func (tx *Tx) Get(oid store.OID, field string) (value.Value, error) {
	rec, err := tx.access(oid)
	if err != nil {
		return value.Null(), err
	}
	v, ok := rec.Fields[field]
	if !ok {
		return value.Null(), fmt.Errorf("engine: class %s has no field %q", rec.Class, field)
	}
	return v, nil
}

// Set writes a field without posting events; the schema kind is
// enforced.
func (tx *Tx) Set(oid store.OID, field string, v value.Value) error {
	rec, err := tx.access(oid)
	if err != nil {
		return err
	}
	c, err := tx.e.classOf(rec)
	if err != nil {
		return err
	}
	f := c.Schema.Field(field)
	if f == nil {
		return fmt.Errorf("engine: class %s has no field %q", rec.Class, field)
	}
	cv, err := coerce(v, f.Kind)
	if err != nil {
		return fmt.Errorf("engine: field %s: %w", field, err)
	}
	rec.Fields[field] = cv
	return nil
}

// Activate arms a trigger on an object with the given activation
// parameters, as O++ does by invoking the trigger name (paper §2).
// Activation resets the instance to the beginning of its history and
// schedules its time events; re-activating an active trigger restarts
// it.
func (tx *Tx) Activate(oid store.OID, trigger string, params ...value.Value) error {
	rec, err := tx.access(oid)
	if err != nil {
		return err
	}
	c, err := tx.e.classOf(rec)
	if err != nil {
		return err
	}
	t := c.Trigger(trigger)
	if t == nil {
		return fmt.Errorf("engine: class %s has no trigger %q", rec.Class, trigger)
	}
	if len(params) != len(t.Res.Params) {
		return fmt.Errorf("engine: trigger %s takes %d parameter(s), got %d",
			trigger, len(t.Res.Params), len(params))
	}
	act := rec.Trigger(trigger)
	act.Active = true
	act.State = t.Auto.Start()
	act.Shadow = nil
	act.Params = make(map[string]value.Value, len(params))
	act.Dense = nil
	if len(params) > 0 {
		act.Dense = make([]value.Value, len(params))
	}
	for i, p := range params {
		act.Params[t.Res.Params[i]] = p
		act.Dense[i] = p
	}
	// Keep the record's dense slot table pointing at this (possibly
	// just created) activation.
	c.ensureSlots(rec)
	rec.BindSlot(t.slot, trigger, act)
	// Activation restarts the automaton, so the previous incarnation's
	// provenance no longer explains the instance: reset its ring
	// (creating it — every activation gets one).
	if c.monitor == nil {
		if r := tx.e.provRing(oid, trigger); r != nil {
			r.Reset()
		}
	}
	if t.View == schema.WholeView {
		tx.e.wholeMu.Lock()
		tx.e.whole[instanceKey{oid, trigger}] = t.Auto.Start()
		delete(tx.e.wholeShadow, instanceKey{oid, trigger})
		tx.e.wholeMu.Unlock()
	}
	tx.e.timers.arm(oid, c, t)
	return nil
}

// Deactivate disarms a trigger instance and cancels its timers.
func (tx *Tx) Deactivate(oid store.OID, trigger string) error {
	rec, err := tx.access(oid)
	if err != nil {
		return err
	}
	c, err := tx.e.classOf(rec)
	if err != nil {
		return err
	}
	t := c.Trigger(trigger)
	if t == nil {
		return fmt.Errorf("engine: class %s has no trigger %q", rec.Class, trigger)
	}
	if act, ok := rec.Triggers[trigger]; ok {
		act.Active = false
	}
	tx.e.timers.disarm(oid, t)
	return nil
}

// Commit runs the §6 before-tcomplete fixpoint, commits, and has a
// system transaction post "after tcommit" to every accessed object.
func (tx *Tx) Commit() error {
	if tx.finished {
		return txn.ErrNotActive
	}
	if !tx.tx.System() {
		fired := true
		for round := 0; fired; round++ {
			if round >= maxTcompleteRounds {
				tx.doAbort()
				return ErrTcompleteDiverged
			}
			fired = false
			for _, oid := range tx.tx.Accessed() {
				if !tx.e.st.Exists(oid) {
					continue // deleted within this transaction
				}
				rec, err := tx.access(oid)
				if err != nil {
					return tx.propagate(err)
				}
				h := event.Happening{
					Kind: event.Kind{Phase: event.Before, Class: event.KTcomplete},
					TxID: tx.tx.ID(),
					At:   tx.e.clk.Now(),
				}
				f, err := tx.step(oid, rec, h, "")
				if err != nil {
					return tx.propagate(err)
				}
				fired = fired || f
			}
			tx.e.stats.tcompleteRounds.Add(1)
			tx.e.traceTcomplete(tx.tx.ID(), round, fired)
		}
	}

	accessed := tx.tx.Accessed()
	tx.cachedRec = nil
	if err := tx.tx.Commit(); err != nil {
		tx.finished = true
		return err
	}
	tx.finished = true
	if !tx.tx.System() {
		tx.e.stats.txCommitted.Add(1)
	}
	tx.e.traceTx(obs.StageTxCommit, tx.tx.ID(), tx.tx.System())

	if !tx.tx.System() {
		if err := tx.e.postOutcome(accessed, event.KTcommit, event.After, tx.tx.ID()); err != nil {
			return fmt.Errorf("engine: after-tcommit delivery: %w", err)
		}
	}
	return nil
}

// Abort posts "before tabort" to the accessed objects, rolls back, and
// has a system transaction post "after tabort".
func (tx *Tx) Abort() error {
	if tx.finished {
		return txn.ErrNotActive
	}
	tx.doAbort()
	return nil
}

func (tx *Tx) doAbort() {
	if tx.finished {
		return
	}
	tx.cachedRec = nil
	accessed := tx.tx.Accessed()
	if !tx.tx.System() && !tx.aborting {
		tx.aborting = true
		// "Immediately before a transaction aborts" (§3.1 item 4d):
		// posted within the aborting transaction. Whatever it changes —
		// including trigger actions it fires — is undone by the
		// rollback, except whole-history automaton state (§6).
		for _, oid := range accessed {
			if !tx.e.st.Exists(oid) {
				continue
			}
			rec, _, err := tx.tx.Access(oid)
			if err != nil {
				continue
			}
			h := event.Happening{
				Kind: event.Kind{Phase: event.Before, Class: event.KTabort},
				TxID: tx.tx.ID(),
				At:   tx.e.clk.Now(),
			}
			// Errors during abort-path posting are swallowed: the
			// transaction is aborting regardless.
			_, _ = tx.step(oid, rec, h, "")
		}
	}
	tx.cachedRec = nil // abort-path postings may have re-primed it
	_ = tx.tx.Abort()
	tx.finished = true
	if !tx.tx.System() {
		tx.e.stats.txAborted.Add(1)
	}
	tx.e.traceTx(obs.StageTxAbort, tx.tx.ID(), tx.tx.System())

	// Rollback restored each record's activation flags, but Activate
	// and Deactivate adjusted the timer table eagerly: re-align it.
	for _, oid := range accessed {
		rec, err := tx.e.st.Get(oid)
		if err != nil {
			// The object no longer exists — it was created by this
			// transaction and removed by the rollback; drop whatever
			// the transaction armed on it.
			tx.e.timers.disarmObject(oid)
			continue
		}
		if c, err := tx.e.classOf(rec); err == nil {
			tx.e.timers.reconcile(oid, c, rec)
		}
	}

	if !tx.tx.System() {
		if err := tx.e.postOutcome(accessed, event.KTabort, event.After, tx.tx.ID()); err != nil {
			tx.e.recordTimerErr(err)
		}
	}
}

// propagate converts an action-raised tabort (or any posting error)
// into a completed abort, so callers never observe a half-dead
// transaction.
func (tx *Tx) propagate(err error) error {
	if err == nil {
		return nil
	}
	if !tx.finished {
		tx.doAbort()
	}
	return err
}

// postOutcome delivers after-tcommit / after-tabort happenings from a
// system transaction ("the events must be posted by a special 'system'
// transaction, and if a trigger fires, the action part is executed as
// part of this 'system' transaction", §5).
func (e *Engine) postOutcome(accessed []store.OID, class event.Class, phase event.Phase, ofTx uint64) error {
	if len(accessed) == 0 {
		return nil
	}
	sys := e.beginSystem()
	for _, oid := range accessed {
		if !e.st.Exists(oid) {
			continue // deleted by the finished transaction or later
		}
		rec, err := sys.access(oid)
		if err != nil {
			sys.doAbort()
			return err
		}
		h := event.Happening{
			Kind: event.Kind{Phase: phase, Class: class},
			TxID: ofTx,
			At:   e.clk.Now(),
		}
		if _, err := sys.step(oid, rec, h, ""); err != nil {
			sys.doAbort()
			return err
		}
	}
	return sys.Commit()
}

// coerce adapts v to the declared kind, promoting int to float.
func coerce(v value.Value, kind value.Kind) (value.Value, error) {
	if v.Kind == kind {
		return v, nil
	}
	if kind == value.KindFloat && v.Kind == value.KindInt {
		return value.Float(float64(v.I)), nil
	}
	if v.IsNull() {
		return v, nil
	}
	return value.Null(), fmt.Errorf("engine: cannot use %s as %s", v.Kind, kind)
}
