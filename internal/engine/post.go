package engine

import (
	"fmt"
	"time"

	"ode/internal/algebra"
	"ode/internal/event"
	"ode/internal/history"
	"ode/internal/mask"
	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// MethodCtx is passed to member-function implementations.
type MethodCtx struct {
	Tx   *Tx
	Self store.OID
	Args map[string]value.Value
}

// Arg returns a bound parameter (null if absent).
func (c *MethodCtx) Arg(name string) value.Value { return c.Args[name] }

// Get reads a field of the receiving object.
func (c *MethodCtx) Get(field string) (value.Value, error) { return c.Tx.Get(c.Self, field) }

// Set writes a field of the receiving object.
func (c *MethodCtx) Set(field string, v value.Value) error { return c.Tx.Set(c.Self, field, v) }

// ActionCtx is passed to trigger actions. Params are the trigger's
// activation parameters; composite events carry no event parameters
// (§3.3).
//
// EventKind and EventParams describe the happening that completed the
// composite event — its last logical event. This goes beyond the
// paper, which lists "the incorporation of arguments into composite
// event specification" as future work (§9); exposing the final
// happening's parameters is the cheap four-fifths of that feature
// (collecting values from *earlier* constituent events would require
// augmenting the automaton state and is deliberately not done).
//
// The context is valid only for the duration of the action call: the
// engine reuses its storage across firings, so actions must not retain
// the pointer (the Params and EventParams maps themselves are stable
// and may be kept).
type ActionCtx struct {
	Tx      *Tx
	Self    store.OID
	Trigger string
	Params  map[string]value.Value

	EventKind   string
	EventParams map[string]value.Value
}

// Tabort returns the tabort sentinel: returning it from an action
// aborts the posting transaction (the paper's tabort statement).
func (c *ActionCtx) Tabort() error { return ErrTabort }

type firedTrigger struct {
	t   *Trigger
	act *store.TrigActivation
}

// step posts one happening to one object: it maps the happening to
// each active trigger instance's alphabet symbol, advances the
// instance's single integer of state, collects every trigger whose
// automaton now accepts, and then fires them (deactivating ordinary
// triggers first — "an ordinary trigger is automatically deactivated
// the moment it fires", §2). Actions execute inside this transaction,
// immediately (§5); onlyTrigger restricts delivery (used by per-
// trigger 'after' timers).
//
// It reports whether any trigger fired — the commit fixpoint's
// quiescence signal.
func (tx *Tx) step(oid store.OID, rec *store.Record, h event.Happening, onlyTrigger string) (bool, error) {
	c, err := tx.e.classOf(rec)
	if err != nil {
		return false, err
	}
	kindIx := c.Res.Alphabet.KindIndex(h.Kind)
	if kindIx < 0 {
		return false, fmt.Errorf("engine: class %s cannot experience %s", rec.Class, h.Kind)
	}
	tx.e.recordHappening(oid, h)
	tx.e.stats.happenings.Add(1)
	c.met.Happening()
	tx.e.flightHappening(h.At.UnixNano(), tx.tx.ID(), oid, c.nameID, c.kindIDs[kindIx])
	tx.e.traceHappening(tx.tx.ID(), oid, rec.Class, h.Kind)

	// Dense trigger slots: bind the record's slot table lazily (fresh
	// objects and recovered records arrive unbound). We hold the
	// object's transaction lock here.
	c.ensureSlots(rec)

	if cm := c.monitor; cm != nil {
		// Footnote-5 combined monitoring: one transition for all
		// triggers (eligibility rules in combined.go guarantee
		// onlyTrigger never applies here).
		fired, err := tx.stepCombined(c, cm, kindIx, h, oid, rec)
		if err != nil {
			return false, err
		}
		if err := tx.fire(oid, c, h, fired); err != nil {
			return true, err
		}
		return len(fired) > 0, nil
	}

	// Fired triggers accumulate in the Tx's scratch arena with stack
	// discipline: this call appends from base and truncates back on
	// every return, so nested postings (from mask-called read methods
	// or fired actions) stack above us without allocating.
	base := len(tx.fired)
	for i := range c.dispatch[kindIx] {
		// The dispatch table has already folded in kind relevance
		// (irrelevant kinds cannot change the instance's behavior; see
		// compile.InertSymbol — disabled under the shadow oracle, which
		// needs complete symbol histories) and the committed-view rule
		// that aborted histories are invisible (§6).
		d := &c.dispatch[kindIx][i]
		t := d.t
		if onlyTrigger != "" && t.Res.Name != onlyTrigger {
			continue
		}
		act := rec.Slot(t.slot)
		if act == nil || !act.Active {
			continue
		}
		bits, err := tx.evalBits(c, d, kindIx, h, act, oid, rec)
		if err != nil {
			tx.fired = tx.fired[:base]
			return false, fmt.Errorf("engine: trigger %s mask: %w", t.Res.Name, err)
		}
		if d.used != 0 {
			tx.e.traceMask(tx.tx.ID(), oid, rec.Class, t.Res.Name, d.used, bits)
		}
		sym := c.Res.Alphabet.Symbol(kindIx, bits)

		// The step itself runs on the compact shared table: a row-index
		// load, a narrow cell load and a bitset probe, through the
		// trigger's class-symbol remap.
		var prev, next int
		if t.View == schema.WholeView {
			key := instanceKey{oid, t.Res.Name}
			tx.e.wholeMu.Lock()
			cur, ok := tx.e.whole[key]
			if !ok {
				cur = t.Auto.Start()
			}
			prev = cur
			next = t.Auto.Next(cur, sym)
			tx.e.whole[key] = next
			if tx.e.shadowOracle {
				tx.e.wholeShadow[key] = append(tx.e.wholeShadow[key], sym)
			}
			tx.e.wholeMu.Unlock()
		} else {
			prev = act.State
			next = t.Auto.Next(act.State, sym)
			act.State = next
			if tx.e.shadowOracle {
				act.Shadow = append(act.Shadow, sym)
			}
		}
		tx.e.stats.steps.Add(1)
		t.met.Step()
		accepted := t.Auto.Accept(next)
		// Firing provenance: non-accepting self-loops (the masked
		// non-firing common case) append nothing, so the per-instance
		// ring spans a long history and this costs one branch. Skipping
		// them preserves the chain walk — the state is unchanged across
		// the gap.
		if next != prev || accepted {
			if r := tx.e.provRing(oid, t.Res.Name); r != nil {
				r.Append(obs.ProvStep{
					TxID: tx.tx.ID(), AtNs: h.At.UnixNano(),
					KindID: c.kindIDs[kindIx], Bits: bits, Sym: sym,
					From: prev, To: next, Accepted: accepted,
				})
				tx.e.stats.provSteps.Add(1)
			}
		}
		tx.e.traceStep(tx.tx.ID(), oid, rec.Class, t.Res.Name, prev, next, accepted)
		if tx.e.shadowOracle {
			if err := tx.e.shadowCheck(oid, t, act, accepted); err != nil {
				tx.fired = tx.fired[:base]
				return false, err
			}
		}
		if accepted {
			tx.fired = append(tx.fired, firedTrigger{t, act})
		}
	}

	fired := tx.fired[base:]
	// "We determine all the trigger events that have occurred, and
	// then we fire the triggers" (§5): deactivations happen before any
	// action runs, so an action re-activating a trigger is preserved.
	for _, f := range fired {
		if !f.t.Res.Perpetual {
			f.act.Active = false
			tx.e.timers.disarm(oid, f.t)
		}
	}
	err = tx.fire(oid, c, h, fired)
	n := len(fired)
	tx.fired = tx.fired[:base]
	if err != nil {
		return true, err
	}
	return n > 0, nil
}

// fire executes the actions of the collected triggers, recording each
// action's wall-clock latency in the trigger's metrics (and trace,
// when enabled). The first action error stops the run — the engine's
// pre-existing semantics: a failing action aborts the posting.
func (tx *Tx) fire(oid store.OID, c *Class, h event.Happening, fired []firedTrigger) error {
	if len(fired) == 0 {
		return nil
	}
	kind := h.Kind.String()
	for _, f := range fired {
		// The ActionCtx lives on the Tx and is reused across firings;
		// save/restore by value keeps nested firings (an action whose
		// method call fires further triggers) correct. Actions must not
		// retain the pointer past their return (documented on the type).
		saved := tx.actCtx
		tx.actCtx = ActionCtx{
			Tx: tx, Self: oid, Trigger: f.t.Res.Name, Params: f.act.Params,
			EventKind: kind, EventParams: h.Params,
		}
		tx.e.stats.firings.Add(1)
		start := time.Now()
		err := f.t.Action(&tx.actCtx)
		d := time.Since(start)
		tx.actCtx = saved
		f.t.met.Fire(d, err)
		tx.e.flightFire(tx.tx.ID(), oid, c.nameID, f.t.nameID, err == nil, d.Nanoseconds())
		tx.e.traceFire(tx.tx.ID(), oid, c.Schema.Name, f.t.Res.Name, d, err)
		if err != nil {
			return err
		}
		// Capture the firing for the durable egress feed. Only
		// successful actions are captured — a failed action aborts the
		// posting transaction, and the feed carries committed firings
		// only. Seq and TxID are stamped by the store at commit.
		if !tx.e.egressOff {
			tx.tx.AddFiring(store.FiringRecord{
				OID:     oid,
				Part:    tx.e.partition,
				Class:   c.Schema.Name,
				Trigger: f.t.Res.Name,
				Kind:    kind,
				AtNs:    h.At.UnixNano(),
			})
		}
	}
	return nil
}

// evalBits evaluates the §5 disjointness masks this trigger's
// expression depends on for the happening's kind, producing the mask
// valuation bits of the symbol. Foreign triggers' bits are left zero —
// this trigger's automaton provably does not distinguish them.
func (tx *Tx) evalBits(c *Class, d *dispatchEntry, kindIx int, h event.Happening,
	act *store.TrigActivation, oid store.OID, rec *store.Record) (uint32, error) {
	if d.used == 0 {
		return 0, nil
	}
	return tx.evalBitsMask(c, d.progs, d.used, kindIx, h, act.Params, trigDense(d.t, act), oid, rec, d.t.met)
}

// evalBitsMask evaluates exactly the mask bits in used. The compiled
// programs run when available (progs[bit] resolved at registration) and
// the happening carries its dense parameter slice; otherwise — under
// Options.InterpretedMasks, or for hand-built happenings with map-only
// parameters — each bit falls back to the AST interpreter, the
// semantic oracle. trigParams/trigDense may be nil (combined monitoring
// forbids trigger parameters), as may met (combined monitoring
// evaluates the class-wide bit union, which belongs to no single
// trigger).
func (tx *Tx) evalBitsMask(c *Class, progs []*mask.Program, used uint32, kindIx int, h event.Happening,
	trigParams map[string]value.Value, trigDense []value.Value, oid store.OID, rec *store.Record,
	met *obs.TriggerMetrics) (uint32, error) {
	if used == 0 {
		return 0, nil
	}
	var bits uint32
	masks := c.Res.Alphabet.Kinds[kindIx].Masks
	compiled := progs != nil && !tx.e.interpretMasks && len(h.Dense) == len(h.Params)
	for bit := range masks {
		if used&(1<<bit) == 0 {
			continue
		}
		tx.e.stats.maskEvals.Add(1)
		var ok bool
		var err error
		if compiled && progs[bit] != nil {
			// The Tx's progHost is reused by address (the Host
			// interface conversion must not allocate); save/restore by
			// value keeps nested evaluations — a mask calling a read
			// method whose postings evaluate further masks — correct.
			saved := tx.penv
			tx.penv = progHost{tx: tx, self: oid, rec: rec, cls: c}
			ok, err = progs[bit].EvalBool(h.Dense, trigDense, &tx.penv)
			tx.penv = saved
		} else {
			env := &maskEnv{
				tx:     tx,
				self:   oid,
				rec:    rec,
				cls:    c,
				params: h.Params,
				rename: masks[bit].Rename,
				trig:   trigParams,
			}
			ok, err = masks[bit].Expr.EvalBool(env)
		}
		if err != nil {
			return 0, err
		}
		met.MaskEval(ok)
		if ok {
			bits |= 1 << bit
		}
	}
	return bits, nil
}

// shadowCheck re-evaluates the trigger's event expression over the
// instance's recorded symbol history with the §4 denotational
// semantics and compares the verdicts. It implements Options
// .ShadowOracle; a divergence is a bug in the automaton pipeline.
func (e *Engine) shadowCheck(oid store.OID, t *Trigger, act *store.TrigActivation, accepted bool) error {
	e.stats.shadowChecks.Add(1)
	var hist []int
	if t.View == schema.WholeView {
		e.wholeMu.Lock()
		hist = append([]int(nil), e.wholeShadow[instanceKey{oid, t.Res.Name}]...)
		e.wholeMu.Unlock()
	} else {
		hist = act.Shadow
	}
	want := algebra.Occurs(t.Res.Expr, hist)
	if want != accepted {
		return fmt.Errorf("engine: shadow oracle divergence: trigger %s at object %d: automaton=%v oracle=%v (history %v)",
			t.Res.Name, oid, accepted, want, hist)
	}
	return nil
}

func (e *Engine) recordHappening(oid store.OID, h event.Happening) {
	// Written once at open, read per happening: an atomic pointer, not
	// a mutex, so recording never serializes parallel posters.
	book := e.book.Load()
	if book == nil {
		return
	}
	book.Log(oid).Append(history.Entry{Kind: h.Kind, Symbol: -1, TxID: h.TxID, At: h.At})
}

// maskEnv resolves names during mask evaluation: declared formals
// (renamed to schema parameter names), the happening's parameters,
// the trigger's activation parameters, then the object's fields.
// Masks "may access the state of any object in the database" (§3.2)
// through object-reference field paths and calls; those reads are
// isolated (locked) but post no events.
type maskEnv struct {
	tx     *Tx
	self   store.OID
	rec    *store.Record
	cls    *Class
	params map[string]value.Value
	rename map[string]string
	trig   map[string]value.Value
}

func (m *maskEnv) Lookup(name string) (value.Value, bool) {
	if m.rename != nil {
		if schemaName, ok := m.rename[name]; ok {
			v, ok2 := m.params[schemaName]
			return v, ok2
		}
	}
	if v, ok := m.params[name]; ok {
		return v, true
	}
	if v, ok := m.trig[name]; ok {
		return v, true
	}
	if v, ok := m.rec.Fields[name]; ok {
		return v, true
	}
	return value.Null(), false
}

func (m *maskEnv) Field(base value.Value, name string) (value.Value, error) {
	return m.tx.maskDotField(base, name)
}

func (m *maskEnv) Call(name string, args []value.Value) (value.Value, error) {
	return m.tx.maskCall(m.cls, m.self, name, args)
}

// maskDotField resolves base.name during mask evaluation — shared by
// the interpreter env above and the compiled-program host (dispatch.go)
// so the two paths cannot drift.
func (tx *Tx) maskDotField(base value.Value, name string) (value.Value, error) {
	if base.Kind != value.KindID {
		return value.Null(), fmt.Errorf("engine: field access on %s (need an object reference)", base.Kind)
	}
	rec, err := tx.tx.Peek(store.OID(base.AsID()))
	if err != nil {
		return value.Null(), err
	}
	v, ok := rec.Fields[name]
	if !ok {
		return value.Null(), fmt.Errorf("engine: class %s has no field %q", rec.Class, name)
	}
	return v, nil
}

// maskCall invokes a mask function: class-level functions first, then
// the class's read methods, then engine-global functions. Shared by the
// interpreter env and the compiled-program host.
func (tx *Tx) maskCall(cls *Class, self store.OID, name string, args []value.Value) (value.Value, error) {
	if fn, ok := cls.Impl.Funcs[name]; ok {
		return fn(args)
	}
	if meth := cls.Schema.Method(name); meth != nil {
		if meth.Mode != schema.ModeRead {
			return value.Null(), fmt.Errorf("engine: mask calls update method %q; masks must be side-effect-free", name)
		}
		if len(args) != len(meth.Params) {
			return value.Null(), fmt.Errorf("engine: %s takes %d argument(s), got %d", name, len(meth.Params), len(args))
		}
		bound := make(map[string]value.Value, len(args))
		for i, a := range args {
			cv, err := coerce(a, meth.Params[i].Kind)
			if err != nil {
				return value.Null(), fmt.Errorf("engine: %s parameter %s: %w", name, meth.Params[i].Name, err)
			}
			bound[meth.Params[i].Name] = cv
		}
		// Invoked directly: a mask-time member call is a condition
		// evaluation, not an event-generating access (§7 requires
		// side-effect-free conditions).
		return cls.Impl.Methods[name](&MethodCtx{Tx: tx, Self: self, Args: bound})
	}
	tx.e.mu.RLock()
	fn, ok := tx.e.funcs[name]
	tx.e.mu.RUnlock()
	if ok {
		return fn(args)
	}
	return value.Null(), fmt.Errorf("engine: unknown mask function %q", name)
}
