package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// TestConcurrentTransactionsWithTriggers runs many goroutines posting
// events to a pool of objects with active composite triggers, under
// the race detector. Object-level locking serializes per-object
// histories, so per-object trigger counts must match per-object event
// counts exactly.
func TestConcurrentTransactionsWithTriggers(t *testing.T) {
	e := newEngine(t, Options{})
	var fires atomic.Int64
	cls := &schema.Class{
		Name:   "counter",
		Fields: []schema.Field{{Name: "n", Kind: value.KindInt, Default: value.Int(0)}},
		Methods: []schema.Method{
			{Name: "bump", Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			// Fires on every second committed bump.
			{Name: "Even", Perpetual: true, Event: "every 2 (after bump)"},
		},
	}
	impl := ClassImpl{
		Methods: map[string]MethodImpl{
			"bump": func(ctx *MethodCtx) (value.Value, error) {
				n, _ := ctx.Get("n")
				return value.Null(), ctx.Set("n", value.Int(n.AsInt()+1))
			},
		},
		Actions: map[string]ActionFunc{
			"Even": func(*ActionCtx) error { fires.Add(1); return nil },
		},
	}
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}

	const objects = 6
	oids := make([]store.OID, objects)
	err := e.Transact(func(tx *Tx) error {
		for i := range oids {
			oid, err := tx.NewObject("counter", nil)
			if err != nil {
				return err
			}
			oids[i] = oid
			if err := tx.Activate(oid, "Even"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// bumpsPerWorker is a multiple of the object count, so the
	// round-robin schedule gives every object the same (even) number
	// of bumps and "every 2" fires exactly half as many times.
	const workers = 8
	const bumpsPerWorker = 42
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < bumpsPerWorker; i++ {
				oid := oids[(w+i)%objects]
				for {
					err := e.Transact(func(tx *Tx) error {
						_, err := tx.Call(oid, "bump")
						return err
					})
					if err == nil {
						break
					}
					// Deadlock or contention: retry.
				}
			}
		}(w)
	}
	wg.Wait()

	totalBumps := int64(workers * bumpsPerWorker)
	var storedTotal int64
	for _, oid := range oids {
		rec, _ := e.Store().Get(oid)
		storedTotal += rec.Fields["n"].AsInt()
	}
	if storedTotal != totalBumps {
		t.Fatalf("lost updates: stored %d, want %d", storedTotal, totalBumps)
	}
	// Each object received totalBumps/objects (an even number of)
	// bumps, so each trigger fired exactly half that often.
	if got, want := fires.Load(), totalBumps/2; got != want {
		t.Fatalf("trigger fired %d times, want %d", got, want)
	}
}

// TestConcurrentSharedObjectSerializes hammers one object from many
// goroutines: the committed event history must be a serial interleave,
// so a relative(deposit, withdraw) trigger fires exactly once per
// withdraw that has any earlier committed deposit.
func TestConcurrentSharedObjectSerializes(t *testing.T) {
	e := newEngine(t, Options{})
	var fires atomic.Int64
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "RW", Perpetual: true, Event: "prior(after deposit, after withdraw)"})
	impl.Actions["RW"] = func(*ActionCtx) error { fires.Add(1); return nil }
	oid := setup(t, e, cls, impl, "RW")

	const workers = 6
	const opsPerWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				method := "deposit"
				if (w+i)%2 == 0 {
					method = "withdraw"
				}
				for {
					err := e.Transact(func(tx *Tx) error {
						_, err := tx.Call(oid, method, value.Int(1))
						return err
					})
					if err == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// All withdraws except any that happened before the very first
	// deposit fire the trigger. We can't know the interleaving, but
	// the count must be between 1 and total withdraws, and the final
	// automaton state must be consistent with a serial history (the
	// shadowless sanity: balance arithmetic survived).
	totalWithdraws := int64(0)
	for w := 0; w < workers; w++ {
		for i := 0; i < opsPerWorker; i++ {
			if (w+i)%2 == 0 {
				totalWithdraws++
			}
		}
	}
	got := fires.Load()
	if got < 1 || got > totalWithdraws {
		t.Fatalf("fires = %d, withdraws = %d", got, totalWithdraws)
	}
}

// TestConcurrentTracingAndMetrics posts from many goroutines with
// tracing enabled while other goroutines read trace events, snapshot
// metrics, and toggle tracing off and on — the full observability
// surface under the race detector. Afterwards the per-trigger firing
// counts must still sum to the engine's firing counter.
func TestConcurrentTracingAndMetrics(t *testing.T) {
	e := newEngine(t, Options{TraceBuffer: 512})
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "AnyDep", Perpetual: true, Event: "after deposit"},
		schema.Trigger{Name: "Pair", Perpetual: true, Event: "prior(after deposit, after withdraw)"})
	oid := setup(t, e, cls, impl, "AnyDep", "Pair")

	const workers = 6
	const opsPerWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				method := "deposit"
				if (w+i)%3 == 0 {
					method = "withdraw"
				}
				for {
					err := e.Transact(func(tx *Tx) error {
						_, err := tx.Call(oid, method, value.Int(1))
						return err
					})
					if err == nil {
						break
					}
				}
			}
		}(w)
	}
	// Observability readers and a toggler race with the posters.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.TraceEvents(32)
				e.Metrics().Snapshot()
				e.Stats()
			}
		}
	}()
	go func() {
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if i%2 == 0 {
					e.DisableTracing()
				} else {
					e.EnableTracing(128)
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	e.EnableTracing(128)

	stats := e.Stats()
	var firings, latCount uint64
	for _, ts := range e.Metrics().Snapshot().Triggers {
		firings += ts.Firings
		latCount += ts.Latency.Count
	}
	if firings != stats.Firings {
		t.Fatalf("per-trigger firings %d != stats %d", firings, stats.Firings)
	}
	if latCount != stats.Firings {
		t.Fatalf("latency counts %d != stats %d", latCount, stats.Firings)
	}
	// One more post lands in the freshly enabled ring.
	if err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if len(e.TraceEvents(0)) == 0 {
		t.Fatal("no trace events after re-enable")
	}
}
