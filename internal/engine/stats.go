package engine

import "sync/atomic"

// Stats are cumulative engine counters, readable at any time with
// Engine.Stats. They are monotone except for being zero at startup;
// cross-field arithmetic (e.g. commits+aborts vs begun) is only
// consistent when the engine is quiescent.
type Stats struct {
	// TxBegun counts user transactions started (system transactions
	// excluded).
	TxBegun uint64
	// TxCommitted and TxAborted count user transaction outcomes.
	TxCommitted uint64
	TxAborted   uint64
	// SystemTx counts system transactions (after-tcommit/tabort and
	// timer deliveries).
	SystemTx uint64
	// Happenings counts events posted to objects (every history point,
	// all objects).
	Happenings uint64
	// Steps counts individual trigger-automaton transitions.
	Steps uint64
	// MaskEvals counts logical-event mask evaluations.
	MaskEvals uint64
	// Firings counts trigger actions executed.
	Firings uint64
	// TimerPosts counts time-event deliveries.
	TimerPosts uint64
}

// statCounters is the engine-internal atomic mirror of Stats.
type statCounters struct {
	txBegun, txCommitted, txAborted, systemTx atomic.Uint64
	happenings, steps, maskEvals, firings     atomic.Uint64
	timerPosts                                atomic.Uint64
}

// Stats returns a snapshot of the cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		TxBegun:     e.stats.txBegun.Load(),
		TxCommitted: e.stats.txCommitted.Load(),
		TxAborted:   e.stats.txAborted.Load(),
		SystemTx:    e.stats.systemTx.Load(),
		Happenings:  e.stats.happenings.Load(),
		Steps:       e.stats.steps.Load(),
		MaskEvals:   e.stats.maskEvals.Load(),
		Firings:     e.stats.firings.Load(),
		TimerPosts:  e.stats.timerPosts.Load(),
	}
}
