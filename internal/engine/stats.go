package engine

import (
	"sync/atomic"

	"ode/internal/compile"
)

// Stats are cumulative engine counters, readable at any time with
// Engine.Stats. They are monotone except for being zero at startup;
// cross-field arithmetic (e.g. commits+aborts vs begun) is only
// consistent when the engine is quiescent.
type Stats struct {
	// TxBegun counts user transactions started (system transactions
	// excluded).
	TxBegun uint64
	// TxCommitted and TxAborted count user transaction outcomes.
	TxCommitted uint64
	TxAborted   uint64
	// SystemTx counts system transactions (after-tcommit/tabort and
	// timer deliveries).
	SystemTx uint64
	// Happenings counts events posted to objects (every history point,
	// all objects).
	Happenings uint64
	// Steps counts individual trigger-automaton transitions.
	Steps uint64
	// MaskEvals counts logical-event mask evaluations.
	MaskEvals uint64
	// Firings counts trigger actions executed.
	Firings uint64
	// TimerPosts counts time-event deliveries.
	TimerPosts uint64
	// TimerErrsDropped counts timer-delivery errors evicted from the
	// bounded TimerErrors ring.
	TimerErrsDropped uint64
	// TimersPending gauges the timers currently armed on the virtual
	// clock ('after' one-shots plus one per cohort or shared spec).
	// TimerCohorts gauges the live shared-schedule entries — cohorts, or
	// per-object shared timers under Options.PerObjectTimers. Like the
	// Automaton* fields below these describe current state, not
	// cumulative activity.
	TimersPending uint64
	TimerCohorts  uint64
	// TcompleteRounds counts rounds of the §6 before-tcomplete commit
	// fixpoint (every commit of a user transaction runs at least one;
	// triggers firing on tcomplete add more, up to the divergence
	// bound).
	TcompleteRounds uint64
	// ShadowChecks counts §4 shadow-oracle cross-checks performed
	// (zero unless Options.ShadowOracle is on).
	ShadowChecks uint64
	// FaultsInjected counts failures fired by the fault-injection
	// registry (zero unless Options.Faults is installed — i.e. under
	// the simulation harness).
	FaultsInjected uint64
	// FlightEvents counts events captured by the always-on flight
	// recorder (including ones its ring has overwritten).
	FlightEvents uint64
	// ProvenanceSteps counts transitions appended to firing-provenance
	// rings — state-changing or accepting steps only; non-accepting
	// self-loops are skipped by design.
	ProvenanceSteps uint64
	// EgressAppended counts firing records made durable on the egress
	// feed since open (including records recovered from disk).
	// EgressSeq gauges the feed head — the highest firing sequence
	// number visible to consumers.
	EgressAppended uint64
	EgressSeq      uint64

	// AutomatonTriggers counts registered triggers stepping a compact
	// table; AutomatonTables counts the distinct hash-consed tables they
	// share in this engine, and AutomatonTableBytes is the resident
	// footprint of those tables plus any combined monitors. Unlike the
	// counters above these describe current registrations, not
	// cumulative activity.
	AutomatonTriggers   uint64
	AutomatonTables     uint64
	AutomatonTableBytes uint64
	// CompileCacheHits and CompileCacheMisses snapshot the process-wide
	// hash-cons compile cache (shared by every engine in the process,
	// not just this one).
	CompileCacheHits   uint64
	CompileCacheMisses uint64
}

// statCounters is the engine-internal atomic mirror of Stats.
type statCounters struct {
	txBegun, txCommitted, txAborted, systemTx atomic.Uint64
	happenings, steps, maskEvals, firings     atomic.Uint64
	timerPosts, tcompleteRounds, shadowChecks atomic.Uint64
	provSteps, timerErrsDropped               atomic.Uint64
}

// Stats returns a snapshot of the cumulative counters.
//
// Snapshot guarantee: each field is read atomically, but the snapshot
// as a whole is not — fields are loaded one by one, so concurrent
// postings can make cross-field arithmetic (Firings vs Steps, commits
// vs begun) off by the operations in flight during the call. Each
// individual field is exact, and the whole snapshot is exact when the
// engine is quiescent. Benchmarks and monitors that want differences
// over an interval should snapshot twice and use Delta (or
// StatsDelta), which subtracts field-wise and therefore inherits the
// same per-field exactness.
func (e *Engine) Stats() Stats {
	cs := compile.AutomatonCacheStats()
	e.mu.RLock()
	autoTriggers := e.autoTriggers
	autoTables := uint64(len(e.autoTables))
	autoBytes := e.autoBytes
	e.mu.RUnlock()
	return Stats{
		AutomatonTriggers:   autoTriggers,
		AutomatonTables:     autoTables,
		AutomatonTableBytes: autoBytes,
		CompileCacheHits:    cs.Hits,
		CompileCacheMisses:  cs.Misses,
		TxBegun:             e.stats.txBegun.Load(),
		TxCommitted:         e.stats.txCommitted.Load(),
		TxAborted:           e.stats.txAborted.Load(),
		SystemTx:            e.stats.systemTx.Load(),
		Happenings:          e.stats.happenings.Load(),
		Steps:               e.stats.steps.Load(),
		MaskEvals:           e.stats.maskEvals.Load(),
		Firings:             e.stats.firings.Load(),
		TimerPosts:          e.stats.timerPosts.Load(),
		TimerErrsDropped:    e.stats.timerErrsDropped.Load(),
		TimersPending:       uint64(e.clk.Pending()),
		TimerCohorts:        uint64(e.timers.sharedCount()),
		TcompleteRounds:     e.stats.tcompleteRounds.Load(),
		ShadowChecks:        e.stats.shadowChecks.Load(),
		FaultsInjected:      e.faults.Injected(),
		FlightEvents:        e.flight.Total(),
		ProvenanceSteps:     e.stats.provSteps.Load(),
		EgressAppended:      e.st.FiringsAppended(),
		EgressSeq:           e.st.FiringSeq(),
	}
}

// Delta returns the field-wise difference s - prev. Use it to diff
// two snapshots taken around a measured interval; because counters
// are monotone, every field of the result is the exact number of
// operations counted between the two per-field load instants.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		TxBegun:          s.TxBegun - prev.TxBegun,
		TxCommitted:      s.TxCommitted - prev.TxCommitted,
		TxAborted:        s.TxAborted - prev.TxAborted,
		SystemTx:         s.SystemTx - prev.SystemTx,
		Happenings:       s.Happenings - prev.Happenings,
		Steps:            s.Steps - prev.Steps,
		MaskEvals:        s.MaskEvals - prev.MaskEvals,
		Firings:          s.Firings - prev.Firings,
		TimerPosts:       s.TimerPosts - prev.TimerPosts,
		TimerErrsDropped: s.TimerErrsDropped - prev.TimerErrsDropped,
		TimersPending:    s.TimersPending - prev.TimersPending,
		TimerCohorts:     s.TimerCohorts - prev.TimerCohorts,
		TcompleteRounds:  s.TcompleteRounds - prev.TcompleteRounds,
		ShadowChecks:     s.ShadowChecks - prev.ShadowChecks,
		FaultsInjected:   s.FaultsInjected - prev.FaultsInjected,
		FlightEvents:     s.FlightEvents - prev.FlightEvents,
		ProvenanceSteps:  s.ProvenanceSteps - prev.ProvenanceSteps,
		EgressAppended:   s.EgressAppended - prev.EgressAppended,
		EgressSeq:        s.EgressSeq - prev.EgressSeq,

		AutomatonTriggers:   s.AutomatonTriggers - prev.AutomatonTriggers,
		AutomatonTables:     s.AutomatonTables - prev.AutomatonTables,
		AutomatonTableBytes: s.AutomatonTableBytes - prev.AutomatonTableBytes,
		CompileCacheHits:    s.CompileCacheHits - prev.CompileCacheHits,
		CompileCacheMisses:  s.CompileCacheMisses - prev.CompileCacheMisses,
	}
}

// StatsDelta is Delta as a free function: cur - prev, field-wise.
func StatsDelta(cur, prev Stats) Stats { return cur.Delta(prev) }
