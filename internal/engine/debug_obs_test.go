package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/value"
)

// debugObsServer spins up a debug server over a worked engine: one
// account, a fired prior trigger and a perpetual one.
func debugObsServer(t *testing.T) (*Engine, *httptest.Server, uint64) {
	t.Helper()
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Audit", Event: "prior(after deposit, after withdraw)"},
		schema.Trigger{Name: "AnyDep", Perpetual: true, Event: "after deposit"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Audit", "AnyDep")
	if err := e.Transact(func(tx *Tx) error {
		if _, err := tx.Call(oid, "deposit", value.Int(50)); err != nil {
			return err
		}
		_, err := tx.Call(oid, "withdraw", value.Int(20))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.DebugHandler())
	t.Cleanup(srv.Close)
	return e, srv, uint64(oid)
}

func debugGetBody(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// TestDebugWhyEndpoint: /debug/why returns the firing provenance as
// JSON with the documented shape.
func TestDebugWhyEndpoint(t *testing.T) {
	_, srv, oid := debugObsServer(t)

	var ex Explanation
	debugGet(t, srv, "/debug/why?trigger=Audit&oid="+strconv.FormatUint(oid, 10), &ex)
	if !ex.Fired || !ex.Complete || ex.Class != "account" || ex.Trigger != "Audit" {
		t.Fatalf("explanation = %+v", ex)
	}
	if len(ex.Steps) != 2 || ex.Steps[0].Kind != "after deposit" || !ex.Steps[1].Accepted {
		t.Fatalf("steps = %+v", ex.Steps)
	}
	for _, s := range ex.Steps {
		if s.Seq == 0 || s.AtNs == 0 {
			t.Fatalf("step missing seq/timestamp: %+v", s)
		}
	}

	// Error shapes: missing params 400, unknown trigger 404.
	if code, _, _ := debugGetBody(t, srv, "/debug/why"); code != http.StatusBadRequest {
		t.Fatalf("missing params => %d", code)
	}
	if code, _, _ := debugGetBody(t, srv, "/debug/why?trigger=Audit&oid=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad oid => %d", code)
	}
	if code, _, _ := debugGetBody(t, srv, "/debug/why?trigger=NoSuch&oid="+strconv.FormatUint(oid, 10)); code != http.StatusNotFound {
		t.Fatalf("unknown trigger => %d", code)
	}
}

// promSamples extracts unlabelled and labelled samples from an
// exposition body, checking the minimal format contract: every
// non-comment line is `series value`, and every series' family was
// announced by a preceding # TYPE line.
func promSamples(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && typed[f] {
				family = f
			}
		}
		if !typed[family] {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		samples[line[:sp]] = v
	}
	return samples
}

// TestDebugMetricsEndpoint: /debug/metrics serves valid Prometheus
// text exposition covering the registry families and the engine-global
// counters.
func TestDebugMetricsEndpoint(t *testing.T) {
	e, srv, _ := debugObsServer(t)

	code, body, ct := debugGetBody(t, srv, "/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics => %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples := promSamples(t, body)

	s := e.Stats()
	for name, want := range map[string]uint64{
		"ode_engine_firings_total":          s.Firings,
		"ode_engine_happenings_total":       s.Happenings,
		"ode_engine_steps_total":            s.Steps,
		"ode_engine_tx_committed_total":     s.TxCommitted,
		"ode_engine_flight_events_total":    s.FlightEvents,
		"ode_engine_provenance_steps_total": s.ProvenanceSteps,
		"ode_engine_automaton_triggers":     s.AutomatonTriggers,
		"ode_engine_egress_appended_total":  s.EgressAppended,
		"ode_engine_egress_seq":             s.EgressSeq,
	} {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		if uint64(got) != want {
			t.Fatalf("%s = %g, want %d", name, got, want)
		}
	}
	for _, series := range []string{
		`ode_trigger_firings_total{class="account",trigger="Audit"}`,
		`ode_class_happenings_total{class="account"}`,
		`ode_trigger_action_latency_seconds_bucket{class="account",trigger="Audit",le="+Inf"}`,
	} {
		if _, ok := samples[series]; !ok {
			t.Fatalf("missing series %s", series)
		}
	}
}

// TestDebugFlightEndpoint: the flight-recorder dump lists recent
// pipeline events, newest last, honoring ?last=N.
func TestDebugFlightEndpoint(t *testing.T) {
	e, srv, oid := debugObsServer(t)

	var dump struct {
		Total  uint64            `json:"total"`
		Events []obs.FlightEvent `json:"events"`
	}
	debugGet(t, srv, "/debug/flight", &dump)
	if dump.Total == 0 || len(dump.Events) == 0 {
		t.Fatalf("flight dump empty: total=%d events=%d", dump.Total, len(dump.Events))
	}
	if dump.Total != e.Stats().FlightEvents {
		t.Fatalf("dump total %d != Stats().FlightEvents %d", dump.Total, e.Stats().FlightEvents)
	}
	var sawFire, sawHappening, sawCommit bool
	for i, ev := range dump.Events {
		if i > 0 && ev.Seq <= dump.Events[i-1].Seq {
			t.Fatalf("events out of order at %d: %+v", i, ev)
		}
		switch ev.Stage {
		case obs.StageFire:
			sawFire = true
			if ev.Class != "account" || ev.Trigger == "" || ev.OID != oid {
				t.Fatalf("fire event = %+v", ev)
			}
		case obs.StageHappening:
			sawHappening = true
			if ev.Kind == "" {
				t.Fatalf("happening without kind: %+v", ev)
			}
		case obs.StageTxCommit:
			sawCommit = true
		}
	}
	if !sawFire || !sawHappening || !sawCommit {
		t.Fatalf("dump missing stages: fire=%v happening=%v commit=%v", sawFire, sawHappening, sawCommit)
	}

	debugGet(t, srv, "/debug/flight?last=3", &dump)
	if len(dump.Events) != 3 {
		t.Fatalf("last=3 returned %d events", len(dump.Events))
	}
	if code, _, _ := debugGetBody(t, srv, "/debug/flight?last=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad last => %d", code)
	}
}

// TestExpvarMetricsConsistency: the engine's Stats published via
// expvar (/debug/vars) and the exposition at /debug/metrics are two
// views of the same counters and must agree while quiescent.
func TestExpvarMetricsConsistency(t *testing.T) {
	e, srv, _ := debugObsServer(t)

	_, promBody, _ := debugGetBody(t, srv, "/debug/metrics")
	samples := promSamples(t, promBody)

	var vars map[string]json.RawMessage
	debugGet(t, srv, "/debug/vars", &vars)
	raw, ok := vars[e.ExpvarName()]
	if !ok {
		t.Fatalf("expvar %q missing from /debug/vars (have %d vars)", e.ExpvarName(), len(vars))
	}
	var s Stats
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]uint64{
		"ode_engine_tx_begun_total":         s.TxBegun,
		"ode_engine_tx_committed_total":     s.TxCommitted,
		"ode_engine_happenings_total":       s.Happenings,
		"ode_engine_steps_total":            s.Steps,
		"ode_engine_mask_evals_total":       s.MaskEvals,
		"ode_engine_firings_total":          s.Firings,
		"ode_engine_flight_events_total":    s.FlightEvents,
		"ode_engine_provenance_steps_total": s.ProvenanceSteps,
		"ode_engine_automaton_triggers":     s.AutomatonTriggers,
		"ode_engine_automaton_tables":       s.AutomatonTables,
	} {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		if uint64(got) != want {
			t.Fatalf("%s: /debug/metrics says %g, /debug/vars says %d", name, got, want)
		}
	}
}
