package engine

import (
	"strings"
	"testing"
	"time"

	"ode/internal/schema"
)

// TestRearmTimersUnresolvedObjectErrors pins the consistent error
// contract of RearmTimers: any object that cannot be resolved — here,
// one whose class was never registered after reopen — aborts the rearm
// with an error naming the object, instead of some failures being
// silently skipped while others abort.
func TestRearmTimersUnresolvedObjectErrors(t *testing.T) {
	dir := t.TempDir()
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "T", Perpetual: true, Event: "at time(HR=17)"})
	e, err := New(Options{Dir: dir, Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	err = e.Transact(func(tx *Tx) error {
		oid, err := tx.NewObject("account", nil)
		if err != nil {
			return err
		}
		return tx.Activate(oid, "T")
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Reopen without registering the class: rearm must fail loudly.
	e2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	err = e2.RearmTimers()
	if err == nil {
		t.Fatal("RearmTimers succeeded with an unregistered class")
	}
	if !strings.Contains(err.Error(), "rearm timers") {
		t.Fatalf("error does not identify the rearm: %v", err)
	}
}
