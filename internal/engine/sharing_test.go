package engine

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ode/internal/schema"
	"ode/internal/value"
)

// twoClasses registers two distinct classes whose triggers use the
// same event expression ("after deposit") — the hash-consing scenario.
func twoClasses(t *testing.T, e *Engine) {
	t.Helper()
	rec := &recorder{}
	for _, name := range []string{"checking", "savings"} {
		cls := &schema.Class{
			Name: name,
			Fields: []schema.Field{
				{Name: "balance", Kind: value.KindInt, Default: value.Int(0)},
			},
			Methods: []schema.Method{
				{Name: "deposit", Params: []schema.Param{{Name: "amount", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			},
			Triggers: []schema.Trigger{{Name: "notify", Event: "after deposit"}},
		}
		impl := ClassImpl{
			Methods: map[string]MethodImpl{
				"deposit": func(ctx *MethodCtx) (value.Value, error) {
					return value.Null(), nil
				},
			},
			Actions: map[string]ActionFunc{
				"notify": func(ctx *ActionCtx) error { rec.add("notify"); return nil },
			},
		}
		if _, err := e.RegisterClass(cls, impl, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrossClassTableSharing pins the tentpole: equivalent triggers in
// different classes step one resident table.
func TestCrossClassTableSharing(t *testing.T) {
	e := newEngine(t, Options{})
	twoClasses(t, e)

	a := e.Class("checking").Triggers[0]
	b := e.Class("savings").Triggers[0]
	if a.Auto.Tab != b.Auto.Tab {
		t.Fatal("equivalent triggers across classes did not share a table")
	}
	st := e.Stats()
	if st.AutomatonTriggers != 2 {
		t.Fatalf("AutomatonTriggers = %d, want 2", st.AutomatonTriggers)
	}
	if st.AutomatonTables != 1 {
		t.Fatalf("AutomatonTables = %d, want 1 (shared)", st.AutomatonTables)
	}
	if st.AutomatonTableBytes == 0 {
		t.Fatal("AutomatonTableBytes not accounted")
	}
	if st.CompileCacheHits+st.CompileCacheMisses == 0 {
		t.Fatal("compile cache counters not wired into Stats")
	}
	// The expanded oracle must agree with the compact form shape-wise.
	oracle := a.Oracle()
	if oracle.NumStates != a.Auto.Tab.Compact.NumStates() {
		t.Fatal("oracle and compact state counts differ")
	}
	if a.DFA != nil {
		t.Fatal("fat DFA should not be resident without ShadowOracle")
	}
}

// TestShadowOracleKeepsFatDFA: under the shadow option the fat oracle
// stays materialized for cross-checking.
func TestShadowOracleKeepsFatDFA(t *testing.T) {
	e := newEngine(t, Options{ShadowOracle: true})
	twoClasses(t, e)
	if e.Class("checking").Triggers[0].DFA == nil {
		t.Fatal("ShadowOracle should materialize the fat DFA")
	}
}

// TestDebugAutomataEndpoint exercises /debug/automata end to end.
func TestDebugAutomataEndpoint(t *testing.T) {
	e := newEngine(t, Options{})
	twoClasses(t, e)

	srv := httptest.NewServer(e.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/automata")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Triggers   uint64 `json:"triggers"`
		Tables     uint64 `json:"distinct_tables"`
		TableBytes uint64 `json:"resident_table_bytes"`
		Automata   []struct {
			Class      string `json:"class"`
			Trigger    string `json:"trigger"`
			Hash       string `json:"table_hash"`
			TableBytes int    `json:"table_bytes"`
			FatBytes   int    `json:"fat_bytes"`
			SharedBy   int    `json:"shared_by"`
		} `json:"automata"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Triggers != 2 || got.Tables != 1 {
		t.Fatalf("summary = %d triggers / %d tables, want 2/1", got.Triggers, got.Tables)
	}
	if len(got.Automata) != 2 {
		t.Fatalf("listed %d automata, want 2", len(got.Automata))
	}
	if got.Automata[0].Hash != got.Automata[1].Hash {
		t.Fatal("shared triggers should report one table hash")
	}
	for _, a := range got.Automata {
		if a.SharedBy != 2 {
			t.Fatalf("%s/%s shared_by = %d, want 2", a.Class, a.Trigger, a.SharedBy)
		}
		if a.TableBytes <= 0 || a.FatBytes <= 0 {
			t.Fatalf("%s/%s reports empty footprints", a.Class, a.Trigger)
		}
	}
}
