package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// combinedFixture builds the same class and workload twice — once with
// per-trigger automata, once with footnote-5 combined monitoring — and
// returns both firing transcripts.
func combinedFixture(t *testing.T, seed int64) (perTrigger, combined []string) {
	t.Helper()
	run := func(useCombined bool) []string {
		var fires []string
		cls := &schema.Class{
			Name: "acct",
			Fields: []schema.Field{
				{Name: "balance", Kind: value.KindInt, Default: value.Int(1000)},
			},
			Methods: []schema.Method{
				{Name: "deposit", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
				{Name: "withdraw", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			},
			Triggers: []schema.Trigger{
				{Name: "Large", Perpetual: true, Event: "after withdraw(n) && n > 50"},
				{Name: "Seq", Perpetual: true, Event: "after deposit; after withdraw"},
				{Name: "Third", Perpetual: true, Event: "every 3 (after access)"},
				{Name: "Dep", Perpetual: true, Event: "fa(after withdraw, after tcommit, after tbegin)"},
			},
		}
		impl := ClassImpl{
			Methods: map[string]MethodImpl{
				"deposit":  func(*MethodCtx) (value.Value, error) { return value.Null(), nil },
				"withdraw": func(*MethodCtx) (value.Value, error) { return value.Null(), nil },
			},
			Actions: map[string]ActionFunc{},
		}
		for _, tr := range cls.Triggers {
			name := tr.Name
			impl.Actions[name] = func(ctx *ActionCtx) error {
				fires = append(fires, fmt.Sprintf("%s@%d", name, ctx.Self))
				return nil
			}
		}
		e := newEngine(t, Options{CombinedAutomata: useCombined})
		c, err := e.RegisterClass(cls, impl, nil)
		if err != nil {
			t.Fatal(err)
		}
		if useCombined && c.monitor == nil {
			t.Fatal("class should be eligible for combined monitoring")
		}
		if !useCombined && c.monitor != nil {
			t.Fatal("combined monitor built without the option")
		}

		const objects = 3
		oids := make([]store.OID, objects)
		e.Transact(func(tx *Tx) error {
			for i := range oids {
				oids[i], _ = tx.NewObject("acct", nil)
				for _, tr := range cls.Triggers {
					if err := tx.Activate(oids[i], tr.Name); err != nil {
						return err
					}
				}
			}
			return nil
		})

		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 120; i++ {
			oid := oids[rng.Intn(objects)]
			abort := rng.Intn(6) == 0
			e.Transact(func(tx *Tx) error {
				for c := 0; c < 1+rng.Intn(3); c++ {
					if rng.Intn(2) == 0 {
						tx.Call(oid, "deposit", value.Int(int64(rng.Intn(100))))
					} else {
						tx.Call(oid, "withdraw", value.Int(int64(rng.Intn(100))))
					}
				}
				if abort {
					return errors.New("abort")
				}
				return nil
			})
		}
		return fires
	}
	return run(false), run(true)
}

// TestCombinedMatchesPerTrigger drives an identical randomized
// workload through both monitoring modes: the firing transcripts must
// be identical, event for event.
func TestCombinedMatchesPerTrigger(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		per, comb := combinedFixture(t, seed)
		if len(per) != len(comb) {
			t.Fatalf("seed %d: %d vs %d firings", seed, len(per), len(comb))
		}
		for i := range per {
			if per[i] != comb[i] {
				t.Fatalf("seed %d: firing %d differs: %s vs %s", seed, i, per[i], comb[i])
			}
		}
		if len(per) == 0 {
			t.Fatalf("seed %d: empty transcript proves nothing", seed)
		}
	}
}

// TestCombinedEligibilityRules checks every disqualifier.
func TestCombinedEligibilityRules(t *testing.T) {
	base := func() (*schema.Class, ClassImpl) {
		rec := &recorder{}
		cls, impl := accountClass(rec,
			schema.Trigger{Name: "T", Perpetual: true, Event: "after deposit"})
		return cls, impl
	}
	cases := []struct {
		name   string
		mutate func(*schema.Class, *ClassImpl)
	}{
		{"ordinary trigger", func(c *schema.Class, _ *ClassImpl) { c.Triggers[0].Perpetual = false }},
		{"whole view", func(c *schema.Class, _ *ClassImpl) { c.Triggers[0].View = schema.WholeView }},
		{"trigger params", func(c *schema.Class, _ *ClassImpl) {
			c.Triggers[0].Params = []schema.Param{{Name: "x", Kind: value.KindInt}}
			c.Triggers[0].Event = "after deposit(n) && n > x"
		}},
		{"after-timer", func(c *schema.Class, _ *ClassImpl) {
			c.Triggers[0].Event = "after time(HR=1)"
		}},
	}
	for _, tc := range cases {
		cls, impl := base()
		cls.Name = "acct_" + tc.name
		tc.mutate(cls, &impl)
		e := newEngine(t, Options{CombinedAutomata: true})
		c, err := e.RegisterClass(cls, impl, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if c.monitor != nil {
			t.Errorf("%s: class should be ineligible", tc.name)
		}
	}
	// The unmutated class is eligible.
	cls, impl := base()
	e := newEngine(t, Options{CombinedAutomata: true})
	c, err := e.RegisterClass(cls, impl, nil)
	if err != nil || c.monitor == nil {
		t.Fatalf("baseline ineligible: %v", err)
	}
}

// TestCombinedSingleStateWord verifies the storage claim: one word per
// object in total, not per trigger.
func TestCombinedSingleStateWord(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "A", Perpetual: true, Event: "after deposit"},
		schema.Trigger{Name: "B", Perpetual: true, Event: "after withdraw"},
		schema.Trigger{Name: "C", Perpetual: true, Event: "every 2 (after access)"})
	e := newEngine(t, Options{CombinedAutomata: true})
	oid := setup(t, e, cls, impl, "A", "B", "C")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	r, _ := e.Store().Get(oid)
	// Per-trigger activation records exist (Active flags + params) but
	// only the __combined slot carries a moving state.
	slot, ok := r.Triggers[combinedSlot]
	if !ok || !slot.Active {
		t.Fatal("no combined state slot")
	}
	for _, name := range []string{"A", "B", "C"} {
		if r.Triggers[name].State != 0 {
			t.Fatalf("per-trigger state %s advanced in combined mode", name)
		}
	}
	// Abort rolls the shared word back with the record.
	before := slot.State
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(1))
		return errors.New("abort")
	})
	r2, _ := e.Store().Get(oid)
	if r2.Triggers[combinedSlot].State != before {
		t.Fatal("combined state not rolled back on abort")
	}
}

// TestCombinedDeactivationSuppressesFiring checks that deactivation
// under combined monitoring suppresses the action but keeps the shared
// history moving.
func TestCombinedDeactivationSuppressesFiring(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Seq", Perpetual: true, Event: "relative(after deposit, after withdraw)"},
		schema.Trigger{Name: "All", Perpetual: true, Event: "after access"})
	e := newEngine(t, Options{CombinedAutomata: true})
	oid := setup(t, e, cls, impl, "Seq", "All")

	e.Transact(func(tx *Tx) error { return tx.Deactivate(oid, "Seq") })
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1)) // Seq suppressed but history advances
		return nil
	})
	e.Transact(func(tx *Tx) error { return tx.Activate(oid, "Seq") })
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(1)) // completes the pair in shared history
		return nil
	})
	seqFired := 0
	for _, f := range rec.list() {
		if f == "Seq" {
			seqFired++
		}
	}
	// Shared-history semantics: the deposit observed while Seq was
	// deactivated still counts once it is re-activated (documented
	// deviation from per-trigger activation resets).
	if seqFired != 1 {
		t.Fatalf("Seq fired %d times, want 1 under shared-history semantics", seqFired)
	}
}
