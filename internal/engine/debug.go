package engine

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync/atomic"

	"ode/internal/compile"
	"ode/internal/fault"
	"ode/internal/obs"
	"ode/internal/store"
)

// debugEngineSeq disambiguates the expvar names of engines opened in
// one process (expvar.Publish panics on duplicates).
var debugEngineSeq atomic.Uint64

// DebugHandler returns the live introspection handler:
//
//	/debug/stats       cumulative Stats counters (JSON)
//	/debug/triggers    per-trigger and per-class metrics (JSON)
//	/debug/trace?last=N  last N pipeline trace events (JSON)
//	/debug/automata    resident automaton memory and table sharing (JSON)
//	/debug/metrics     Prometheus/OpenMetrics text exposition
//	/debug/why?trigger=T&oid=N  firing provenance of one instance (JSON)
//	/debug/flight?last=N  flight-recorder dump (JSON)
//	/debug/feed?after=N&max=M  durable firing-egress feed records (JSON)
//	/debug/vars        expvar (includes this engine's stats)
//	/debug/pprof/...   the standard runtime profiles
//
// The handler reads live state; it never blocks posting.
func (e *Engine) DebugHandler() http.Handler {
	e.publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/stats", e.handleDebugStats)
	mux.HandleFunc("/debug/triggers", e.handleDebugTriggers)
	mux.HandleFunc("/debug/trace", e.handleDebugTrace)
	mux.HandleFunc("/debug/automata", e.handleDebugAutomata)
	mux.HandleFunc("/debug/faults", e.handleDebugFaults)
	mux.HandleFunc("/debug/metrics", e.handleDebugMetrics)
	mux.HandleFunc("/debug/why", e.handleDebugWhy)
	mux.HandleFunc("/debug/flight", e.handleDebugFlight)
	mux.HandleFunc("/debug/feed", e.handleDebugFeed)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts an HTTP listener serving DebugHandler on addr
// ("auto" or ":0" forms bind a free port) and returns the bound
// address. The listener runs until Engine.Close.
func (e *Engine) ServeDebug(addr string) (string, error) {
	if addr == "auto" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("engine: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: e.DebugHandler()}
	e.debugMu.Lock()
	e.debugSrvs = append(e.debugSrvs, srv)
	e.debugMu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// publishExpvar publishes this engine's Stats under a process-unique
// expvar name (once).
func (e *Engine) publishExpvar() {
	e.debugVar.Do(func() {
		name := fmt.Sprintf("ode.engine.%d", debugEngineSeq.Add(1)-1)
		e.debugMu.Lock()
		e.expvarName = name
		e.debugMu.Unlock()
		expvar.Publish(name, expvar.Func(func() any { return e.Stats() }))
	})
}

// ExpvarName publishes (if needed) and returns the expvar key this
// engine's Stats appear under in /debug/vars — tests use it to check
// the expvar and /debug/metrics views agree.
func (e *Engine) ExpvarName() string {
	e.publishExpvar()
	e.debugMu.Lock()
	defer e.debugMu.Unlock()
	return e.expvarName
}

func (e *Engine) handleDebugStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, e.Stats())
}

// promExtras renders the engine-global Stats as exposition-format
// series alongside the registry's per-trigger families.
func (e *Engine) promExtras() []obs.PromMetric {
	return PromExtras(e.Stats())
}

// PromExtras renders a Stats snapshot as exposition-format series —
// shared by the engine's own /debug/metrics and the partitioned
// aggregate endpoint (internal/part), so both expose the same family
// names. Counters keep the _total suffix; the registration-state
// automaton fields are gauges.
func PromExtras(s Stats) []obs.PromMetric {
	return []obs.PromMetric{
		{Name: "ode_engine_tx_begun_total", Help: "User transactions started.", Value: float64(s.TxBegun)},
		{Name: "ode_engine_tx_committed_total", Help: "User transactions committed.", Value: float64(s.TxCommitted)},
		{Name: "ode_engine_tx_aborted_total", Help: "User transactions aborted.", Value: float64(s.TxAborted)},
		{Name: "ode_engine_system_tx_total", Help: "System transactions run.", Value: float64(s.SystemTx)},
		{Name: "ode_engine_happenings_total", Help: "Happenings posted to objects.", Value: float64(s.Happenings)},
		{Name: "ode_engine_steps_total", Help: "Trigger-automaton transitions taken.", Value: float64(s.Steps)},
		{Name: "ode_engine_mask_evals_total", Help: "Logical-event mask evaluations.", Value: float64(s.MaskEvals)},
		{Name: "ode_engine_firings_total", Help: "Trigger actions executed.", Value: float64(s.Firings)},
		{Name: "ode_engine_timer_posts_total", Help: "Time-event deliveries.", Value: float64(s.TimerPosts)},
		{Name: "ode_engine_timer_errors_dropped_total", Help: "Timer-delivery errors evicted from the bounded error ring.", Value: float64(s.TimerErrsDropped)},
		{Name: "ode_engine_timers_pending", Help: "Timers currently armed on the virtual clock.", Type: "gauge", Value: float64(s.TimersPending)},
		{Name: "ode_engine_timer_cohorts", Help: "Live shared timer schedules (cohorts).", Type: "gauge", Value: float64(s.TimerCohorts)},
		{Name: "ode_engine_tcomplete_rounds_total", Help: "Rounds of the before-tcomplete commit fixpoint.", Value: float64(s.TcompleteRounds)},
		{Name: "ode_engine_shadow_checks_total", Help: "Shadow-oracle cross-checks performed.", Value: float64(s.ShadowChecks)},
		{Name: "ode_engine_faults_injected_total", Help: "Failures fired by the fault-injection registry.", Value: float64(s.FaultsInjected)},
		{Name: "ode_engine_flight_events_total", Help: "Events captured by the flight recorder.", Value: float64(s.FlightEvents)},
		{Name: "ode_engine_provenance_steps_total", Help: "Transitions appended to firing-provenance rings.", Value: float64(s.ProvenanceSteps)},
		{Name: "ode_engine_automaton_triggers", Help: "Registered triggers stepping a compact table.", Type: "gauge", Value: float64(s.AutomatonTriggers)},
		{Name: "ode_engine_automaton_tables", Help: "Distinct hash-consed automaton tables resident.", Type: "gauge", Value: float64(s.AutomatonTables)},
		{Name: "ode_engine_automaton_table_bytes", Help: "Resident automaton table bytes.", Type: "gauge", Value: float64(s.AutomatonTableBytes)},
		{Name: "ode_engine_compile_cache_hits_total", Help: "Process-wide automaton compile-cache hits.", Value: float64(s.CompileCacheHits)},
		{Name: "ode_engine_compile_cache_misses_total", Help: "Process-wide automaton compile-cache misses.", Value: float64(s.CompileCacheMisses)},
		{Name: "ode_engine_egress_appended_total", Help: "Firing records made durable on the egress feed.", Value: float64(s.EgressAppended)},
		{Name: "ode_engine_egress_seq", Help: "Egress feed head (highest visible firing sequence number).", Type: "gauge", Value: float64(s.EgressSeq)},
	}
}

// handleDebugFeed serves the durable firing-egress feed:
// /debug/feed?after=N&max=M returns up to M records with Seq > N
// (after defaults to 0, max to 1000).
func (e *Engine) handleDebugFeed(w http.ResponseWriter, r *http.Request) {
	var after uint64
	if s := r.URL.Query().Get("after"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad after parameter", http.StatusBadRequest)
			return
		}
		after = n
	}
	max := 1000
	if s := r.URL.Query().Get("max"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad max parameter", http.StatusBadRequest)
			return
		}
		max = n
	}
	recs, head := e.Firings(after, max)
	if recs == nil {
		recs = []store.FiringRecord{}
	}
	writeJSON(w, struct {
		Head    uint64               `json:"head"`
		Records []store.FiringRecord `json:"records"`
	}{Head: head, Records: recs})
}

func (e *Engine) handleDebugMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, e.metrics.Snapshot(), e.promExtras())
}

func (e *Engine) handleDebugWhy(w http.ResponseWriter, r *http.Request) {
	trigger := r.URL.Query().Get("trigger")
	oidStr := r.URL.Query().Get("oid")
	if trigger == "" || oidStr == "" {
		http.Error(w, "need trigger and oid parameters", http.StatusBadRequest)
		return
	}
	oid, err := strconv.ParseUint(oidStr, 10, 64)
	if err != nil {
		http.Error(w, "bad oid parameter", http.StatusBadRequest)
		return
	}
	ex, err := e.Explain(trigger, store.OID(oid))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, ex)
}

func (e *Engine) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	last := 0
	if s := r.URL.Query().Get("last"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad last parameter", http.StatusBadRequest)
			return
		}
		last = n
	}
	events := e.FlightEvents(last)
	if events == nil {
		events = []obs.FlightEvent{}
	}
	writeJSON(w, struct {
		Total  uint64            `json:"total"`
		Events []obs.FlightEvent `json:"events"`
	}{Total: e.flight.Total(), Events: events})
}

func (e *Engine) handleDebugTriggers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, e.metrics.Snapshot())
}

func (e *Engine) handleDebugFaults(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Installed bool               `json:"installed"`
		Points    []fault.PointStats `json:"points,omitempty"`
		Recovery  store.RecoveryInfo `json:"recovery"`
	}{
		Installed: e.faults != nil,
		Points:    e.faults.Snapshot(),
		Recovery:  e.st.Recovery(),
	})
}

func (e *Engine) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	last := 100
	if s := r.URL.Query().Get("last"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad last parameter", http.StatusBadRequest)
			return
		}
		last = n
	}
	events := e.TraceEvents(last)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, struct {
		Enabled bool        `json:"enabled"`
		Events  []obs.Event `json:"events"`
	}{Enabled: e.TracingEnabled(), Events: events})
}

// debugAutomaton is one trigger's row in /debug/automata.
type debugAutomaton struct {
	Class   string `json:"class"`
	Trigger string `json:"trigger"`
	// Hash identifies the shared table (FNV-1a of the canonical
	// normalized expression); triggers with the same hash step the same
	// resident table.
	Hash       string `json:"table_hash"`
	States     int    `json:"states"`
	Symbols    int    `json:"symbols"`
	Rows       int    `json:"distinct_rows"`
	Wide       bool   `json:"wide_cells"`
	TableBytes int    `json:"table_bytes"`
	// FatBytes is what an unshared states×symbols×8 table over the full
	// class alphabet would cost — the §5 baseline this engine avoids.
	FatBytes int `json:"fat_bytes"`
	// SharedBy counts triggers in this engine stepping the same table.
	SharedBy int `json:"shared_by"`
}

func (e *Engine) handleDebugAutomata(w http.ResponseWriter, r *http.Request) {
	cs := compile.AutomatonCacheStats()
	e.mu.RLock()
	sharers := map[*compile.Table]int{}
	for _, c := range e.classes {
		for _, t := range c.Triggers {
			sharers[t.Auto.Tab]++
		}
	}
	var rows []debugAutomaton
	for _, c := range e.classes {
		for _, t := range c.Triggers {
			tab := t.Auto.Tab
			rows = append(rows, debugAutomaton{
				Class:      c.Schema.Name,
				Trigger:    t.Res.Name,
				Hash:       fmt.Sprintf("%016x", tab.Hash),
				States:     tab.Compact.NumStates(),
				Symbols:    tab.Compact.NumSymbols(),
				Rows:       tab.Compact.NumRows(),
				Wide:       tab.Compact.Wide(),
				TableBytes: tab.Compact.Bytes(),
				FatBytes:   tab.Compact.NumStates() * len(t.Auto.SymMap) * 8,
				SharedBy:   sharers[tab],
			})
		}
	}
	summary := struct {
		Triggers   uint64           `json:"triggers"`
		Tables     uint64           `json:"distinct_tables"`
		TableBytes uint64           `json:"resident_table_bytes"`
		CacheHits  uint64           `json:"compile_cache_hits"`
		CacheMiss  uint64           `json:"compile_cache_misses"`
		Automata   []debugAutomaton `json:"automata"`
	}{
		Triggers:   e.autoTriggers,
		Tables:     uint64(len(e.autoTables)),
		TableBytes: e.autoBytes,
		CacheHits:  cs.Hits,
		CacheMiss:  cs.Misses,
		Automata:   rows,
	}
	e.mu.RUnlock()
	sort.Slice(summary.Automata, func(i, j int) bool {
		a, b := summary.Automata[i], summary.Automata[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Trigger < b.Trigger
	})
	writeJSON(w, summary)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
