package engine

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"

	"ode/internal/obs"
)

// debugEngineSeq disambiguates the expvar names of engines opened in
// one process (expvar.Publish panics on duplicates).
var debugEngineSeq atomic.Uint64

// DebugHandler returns the live introspection handler:
//
//	/debug/stats       cumulative Stats counters (JSON)
//	/debug/triggers    per-trigger and per-class metrics (JSON)
//	/debug/trace?last=N  last N pipeline trace events (JSON)
//	/debug/vars        expvar (includes this engine's stats)
//	/debug/pprof/...   the standard runtime profiles
//
// The handler reads live state; it never blocks posting.
func (e *Engine) DebugHandler() http.Handler {
	e.debugVar.Do(func() {
		name := fmt.Sprintf("ode.engine.%d", debugEngineSeq.Add(1)-1)
		expvar.Publish(name, expvar.Func(func() any { return e.Stats() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/stats", e.handleDebugStats)
	mux.HandleFunc("/debug/triggers", e.handleDebugTriggers)
	mux.HandleFunc("/debug/trace", e.handleDebugTrace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts an HTTP listener serving DebugHandler on addr
// ("auto" or ":0" forms bind a free port) and returns the bound
// address. The listener runs until Engine.Close.
func (e *Engine) ServeDebug(addr string) (string, error) {
	if addr == "auto" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("engine: debug endpoint: %w", err)
	}
	srv := &http.Server{Handler: e.DebugHandler()}
	e.debugMu.Lock()
	e.debugSrvs = append(e.debugSrvs, srv)
	e.debugMu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

func (e *Engine) handleDebugStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, e.Stats())
}

func (e *Engine) handleDebugTriggers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, e.metrics.Snapshot())
}

func (e *Engine) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	last := 100
	if s := r.URL.Query().Get("last"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			http.Error(w, "bad last parameter", http.StatusBadRequest)
			return
		}
		last = n
	}
	events := e.TraceEvents(last)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, struct {
		Enabled bool        `json:"enabled"`
		Events  []obs.Event `json:"events"`
	}{Enabled: e.TracingEnabled(), Events: events})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
