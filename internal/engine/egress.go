package engine

import (
	"ode/internal/store"
)

// The durable firing egress feed, engine side. Firings are captured
// inside the posting transaction (fire(), post.go) and appended to the
// WAL atomically with the transaction's commit (store.LogCommit); the
// engine surfaces the feed for consumers (internal/egress) and relays
// newly durable batches to an optional live sink.

// EgressEnabled reports whether commit-time firing capture is on.
func (e *Engine) EgressEnabled() bool { return !e.egressOff }

// Firings returns up to max durable firing records with Seq > after,
// plus the feed head (the highest sequence number a reader may see).
// max <= 0 means no limit. Records belong to committed transactions
// only, in strict sequence order.
func (e *Engine) Firings(after uint64, max int) ([]store.FiringRecord, uint64) {
	return e.st.FiringsFrom(after, max)
}

// FiringsAfter implements egress.Source over the engine's feed: the
// cursor is the record sequence number itself.
func (e *Engine) FiringsAfter(after uint64, max int) ([]store.FiringRecord, uint64) {
	return e.st.FiringsFrom(after, max)
}

// FiringHead implements egress.Source: the feed's visibility frontier.
func (e *Engine) FiringHead() uint64 { return e.st.FiringSeq() }

// FiringPos implements egress.Source: on a single engine the cursor
// position of a record is its sequence number.
func (e *Engine) FiringPos(rec store.FiringRecord) uint64 { return rec.Seq }

// SetFiringSink installs fn as the live-feed callback: it is invoked
// with each batch of newly durable firing records, in sequence order,
// from the committing goroutine (keep it fast; hand off to a channel
// for slow consumers). Installing replaces the previous sink; nil
// uninstalls.
func (e *Engine) SetFiringSink(fn func([]store.FiringRecord)) {
	if fn == nil {
		e.firingSink.Store(nil)
		return
	}
	e.firingSink.Store(&fn)
}

// egressPublish is the store-level sink: every batch of newly durable
// firing records lands here, already in sequence order. It records a
// flight-recorder event per batch and relays to the user sink.
func (e *Engine) egressPublish(recs []store.FiringRecord) {
	if len(recs) > 0 {
		e.flightEgress(recs[0].Seq, recs[len(recs)-1].Seq, len(recs))
	}
	if fn := e.firingSink.Load(); fn != nil {
		(*fn)(recs)
	}
}
