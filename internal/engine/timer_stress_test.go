package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"ode/internal/evlang"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// TestTimerTableStress hammers the timer table from concurrent
// transactions — activation, deactivation, and aborts (reconcile) —
// while another goroutine advances the clock, delivering cohort ticks
// in parallel. Run under -race it guards the table's locking; the
// final check proves the schedule converged to exactly the active
// trigger instances.
func TestTimerTableStress(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Tick", Perpetual: true, Event: "every time(M=10)"},
		schema.Trigger{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"},
		schema.Trigger{Name: "Once", Event: "after time(M=30)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}

	const nObj = 32
	oids := make([]store.OID, nObj)
	err := e.Transact(func(tx *Tx) error {
		for i := range oids {
			oid, err := tx.NewObject("account", map[string]value.Value{"balance": value.Int(100)})
			if err != nil {
				return err
			}
			oids[i] = oid
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	triggers := []string{"Tick", "Daily", "Once"}
	abortErr := fmt.Errorf("stress abort")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < 200; it++ {
				oid := oids[rng.Intn(nObj)]
				trig := triggers[rng.Intn(len(triggers))]
				abort := rng.Intn(8) == 0
				err := e.Transact(func(tx *Tx) error {
					var err error
					if rng.Intn(3) == 0 {
						err = tx.Deactivate(oid, trig)
					} else {
						err = tx.Activate(oid, trig)
					}
					if err != nil {
						return err
					}
					if abort {
						return abortErr
					}
					return nil
				})
				if err != nil && err != abortErr {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			e.Clock().Advance(time.Minute)
		}
	}()
	wg.Wait()

	if errs := e.TimerErrors(); len(errs) != 0 {
		t.Fatalf("timer errors: %v", errs)
	}

	// Quiesced: the shared schedule must list exactly the active
	// trigger instances whose specs still have a next match ('after'
	// one-shots are excluded by contract).
	var want []string
	for _, oid := range oids {
		r, err := e.Store().Get(oid)
		if err != nil {
			t.Fatal(err)
		}
		c := e.Class("account")
		for name, act := range r.Triggers {
			if !act.Active {
				continue
			}
			for _, req := range c.Trigger(name).Res.Timers {
				if req.Mode == evlang.TimeAfter {
					continue
				}
				want = append(want, fmt.Sprintf("%d %s %s", oid, req.Key, name))
			}
		}
	}
	sort.Strings(want)
	got := e.TimerSchedule()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("schedule diverged from activations:\n got:  %v\n want: %v", got, want)
	}
}
