package engine

import (
	"errors"
	"testing"

	"ode/internal/schema"
	"ode/internal/value"
)

func TestStatsCounters(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Large")

	base := e.Stats()
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(500)) // fires
		tx.Call(oid, "withdraw", value.Int(50))  // masked out
		return nil
	})
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		return errors.New("abort")
	})
	s := e.Stats()

	if s.TxBegun-base.TxBegun != 2 {
		t.Fatalf("TxBegun Δ=%d", s.TxBegun-base.TxBegun)
	}
	if s.TxCommitted-base.TxCommitted != 1 || s.TxAborted-base.TxAborted != 1 {
		t.Fatalf("outcomes Δcommit=%d Δabort=%d", s.TxCommitted-base.TxCommitted, s.TxAborted-base.TxAborted)
	}
	if s.Firings-base.Firings != 1 {
		t.Fatalf("Firings Δ=%d", s.Firings-base.Firings)
	}
	// Two withdraw postings evaluated the mask (before events don't —
	// the trigger's expression only uses after-withdraw bits).
	if s.MaskEvals-base.MaskEvals != 2 {
		t.Fatalf("MaskEvals Δ=%d", s.MaskEvals-base.MaskEvals)
	}
	if s.Happenings <= base.Happenings || s.Steps <= base.Steps {
		t.Fatal("happenings/steps did not advance")
	}
	// The committed transaction's after-tcommit ran in a system tx.
	if s.SystemTx-base.SystemTx < 1 {
		t.Fatalf("SystemTx Δ=%d", s.SystemTx-base.SystemTx)
	}
}
