package engine

import (
	"fmt"

	"ode/internal/event"
	"ode/internal/mask"
	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// Batch posting: the one-at-a-time hot path (tx.Call → step) already
// avoids allocation, but it still pays per-happening costs that only
// exist because each call arrives alone — a map-backed argument bind,
// an atomic metric update per step and per mask evaluation, a
// per-call MethodCtx allocation, and repeated method/kind resolution.
// PostBatch amortizes all of them: a Batch is a columnar run of method
// calls against objects of one class, and posting it resolves each
// distinct method once into a cached plan (bound map, dense arena row,
// dispatch slices, kind ids), then streams the entries through a tight
// loop that accumulates metrics in plain integers and flushes them
// once per batch.
//
// Semantics are exactly those of calling tx.Call for each entry in
// order and discarding the results: identical happenings, firing
// order, provenance, traces, and error positions; execution stops at
// the first error. The equivalence is tested against randomized
// workloads run both ways under the §4 shadow oracle.

// Batch is a columnar buffer of method calls against objects of one
// class. Build it with NewBatch and Call, post it with Tx.PostBatch or
// Database.PostBatch, and Reset it to reuse the buffer (and its cached
// posting plan) for the next batch. A Batch is not safe for concurrent
// use, and must not be posted again from inside a method or trigger
// action that a posting of the same Batch is executing.
type Batch struct {
	class  string
	oids   []store.OID
	meth   []uint16 // index into methods, per entry
	argOff []uint32 // prefix offsets into args; len(oids)+1 entries
	args   []value.Value
	// methods interns each distinct method name once; meth references
	// it so the per-entry footprint stays fixed-width.
	methods []string

	// Cached posting plan, rebuilt lazily when the batch first meets an
	// engine/class or after new methods were interned. Reset keeps it.
	planE *Engine
	planC *Class
	planN int
	plan  []batchMethod
	arena mask.Arena
}

// NewBatch returns an empty batch for objects of the named class, with
// room for capacity entries before the first append grows it.
func NewBatch(class string, capacity int) *Batch {
	return &Batch{
		class:  class,
		oids:   make([]store.OID, 0, capacity),
		meth:   make([]uint16, 0, capacity),
		argOff: append(make([]uint32, 0, capacity+1), 0),
	}
}

// Call appends one method call to the batch.
func (b *Batch) Call(oid store.OID, method string, args ...value.Value) {
	mi := -1
	for i, m := range b.methods {
		if m == method {
			mi = i
			break
		}
	}
	if mi < 0 {
		mi = len(b.methods)
		b.methods = append(b.methods, method)
	}
	b.oids = append(b.oids, oid)
	b.meth = append(b.meth, uint16(mi))
	b.args = append(b.args, args...)
	b.argOff = append(b.argOff, uint32(len(b.args)))
}

// Len returns the number of entries in the batch.
func (b *Batch) Len() int { return len(b.oids) }

// Class returns the class the batch posts against.
func (b *Batch) Class() string { return b.class }

// Entry returns entry i: the target OID, the method name, and the
// argument run (aliasing the batch's pool — callers must not mutate
// or retain it past the batch's next Reset). The partition router uses
// it to re-post entries into per-partition batches.
func (b *Batch) Entry(i int) (store.OID, string, []value.Value) {
	return b.oids[i], b.methods[b.meth[i]], b.args[b.argOff[i]:b.argOff[i+1]]
}

// Reset empties the batch for reuse, keeping the interned method names
// and the cached posting plan — a steady-state fill/post/Reset cycle
// allocates nothing.
func (b *Batch) Reset() {
	b.oids = b.oids[:0]
	b.meth = b.meth[:0]
	b.args = b.args[:0]
	b.argOff = b.argOff[:1]
}

// batchPhase is the posting plan for one phase (before/after) of one
// method: the resolved kind, its dispatch slice, and per-dispatch-entry
// metric accumulators that flush once per batch.
type batchPhase struct {
	kind    event.Kind
	kindIx  int
	kindID  uint16
	entries []dispatchEntry // aliases the class dispatch table
	// count is the happenings of this kind the batch posted, flushed as
	// one StageBatch flight summary (per-event stamping would dominate
	// the loop; see obs.StageBatch).
	count uint64
	// Parallel to entries; flushed to each trigger's metrics and zeroed
	// by flushBatch.
	steps, evals, falses []uint64
}

// batchMethod is the cached posting plan for one interned method.
type batchMethod struct {
	name string
	m    *schema.Method
	impl MethodImpl
	// bound and dense are overwritten in place per entry (all entries
	// of a method bind the same parameter names); dense lives in the
	// batch arena.
	bound         map[string]value.Value
	dense         []value.Value
	mctx          MethodCtx
	before, after batchPhase
	// err records a plan-time failure (unknown method, kind outside the
	// alphabet), reported when the first entry using the method
	// executes — the position tx.Call would report it from. errStep
	// marks errors tx.Call surfaces through propagate (aborting).
	err     error
	errStep bool
}

// batchCounters accumulates the engine-wide statistics one PostBatch
// call generates, flushed with one atomic add per counter.
type batchCounters struct {
	happenings, steps, maskEvals, provSteps uint64
}

// buildPlan resolves every interned method against the engine/class
// pair. Plan errors are recorded per method, not returned: a batch may
// carry entries for a bad method that execution never reaches.
func (b *Batch) buildPlan(e *Engine, c *Class) {
	b.planE, b.planC, b.planN = e, c, len(b.methods)
	b.arena.Reset()
	b.plan = make([]batchMethod, len(b.methods))
	for i, name := range b.methods {
		bm := &b.plan[i]
		bm.name = name
		m := c.Schema.Method(name)
		if m == nil {
			bm.err = fmt.Errorf("engine: class %s has no method %q", c.Schema.Name, name)
			continue
		}
		bm.m = m
		bm.impl = c.Impl.Methods[name]
		if len(m.Params) > 0 {
			bm.bound = make(map[string]value.Value, len(m.Params))
			bm.dense = b.arena.Row(len(m.Params))
		}
		bm.before.kind = event.MethodKind(event.Before, name)
		bm.after.kind = event.MethodKind(event.After, name)
		for _, ph := range [...]*batchPhase{&bm.before, &bm.after} {
			kix := c.Res.Alphabet.KindIndex(ph.kind)
			if kix < 0 {
				// Unreachable for a schema method (the alphabet carries a
				// before/after pair per method), but keep step()'s report.
				bm.err = fmt.Errorf("engine: class %s cannot experience %s", c.Schema.Name, ph.kind)
				bm.errStep = true
				break
			}
			ph.kindIx = kix
			ph.kindID = c.kindIDs[kix]
			ph.entries = c.dispatch[kix]
			ph.steps = make([]uint64, len(ph.entries))
			ph.evals = make([]uint64, len(ph.entries))
			ph.falses = make([]uint64, len(ph.entries))
		}
	}
}

// PostBatch executes the batch's method calls in order within this
// transaction, exactly as tx.Call would, stopping at the first error.
// Return values of the methods are discarded. See Batch for the
// reuse/aliasing rules; like every Tx operation it must run on the
// transaction's goroutine.
func (tx *Tx) PostBatch(b *Batch) error {
	if b.Len() == 0 {
		return nil
	}
	c := tx.e.Class(b.class)
	if c == nil {
		return fmt.Errorf("engine: unregistered class %q", b.class)
	}
	if c.monitor != nil || tx.e.interpretMasks {
		// Combined monitoring and interpreted masks take paths the batch
		// plan does not compile; fall back to the definitionally
		// equivalent loop.
		return tx.postBatchSlow(b)
	}
	if b.planE != tx.e || b.planC != c || b.planN != len(b.methods) {
		b.buildPlan(tx.e, c)
	}

	// One timestamp per batch: the virtual clock only advances between
	// transactions, so every happening of this transaction already
	// shares it.
	now := tx.e.clk.Now()
	txid := tx.tx.ID()
	var bc batchCounters
	defer tx.flushBatch(c, b, &bc, now.UnixNano(), txid)

	for i := range b.oids {
		bm := &b.plan[b.meth[i]]
		if bm.err != nil {
			if bm.errStep {
				return tx.propagate(bm.err)
			}
			return bm.err
		}
		rec, err := tx.batchAccess(b.oids[i])
		if err != nil {
			return err
		}
		if rec.Class != b.class {
			return fmt.Errorf("engine: batch for class %s posted to object %d of class %s",
				b.class, b.oids[i], rec.Class)
		}
		args := b.args[b.argOff[i]:b.argOff[i+1]]
		if len(args) != len(bm.m.Params) {
			return fmt.Errorf("engine: %s.%s takes %d argument(s), got %d",
				rec.Class, bm.name, len(bm.m.Params), len(args))
		}
		for j := range args {
			cv, err := coerce(args[j], bm.m.Params[j].Kind)
			if err != nil {
				return fmt.Errorf("engine: %s.%s parameter %s: %w",
					rec.Class, bm.name, bm.m.Params[j].Name, err)
			}
			bm.bound[bm.m.Params[j].Name] = cv
			bm.dense[j] = cv
		}

		h := event.Happening{
			Kind:   bm.before.kind,
			Params: bm.bound,
			Dense:  bm.dense,
			TxID:   txid,
			At:     now,
		}
		// A phase no trigger listens on and no observer (history book,
		// tracer) can see reduces to its counters; skipping the full step
		// saves real time on before-kinds, which most triggers ignore.
		if len(bm.before.entries) == 0 && tx.e.book.Load() == nil && tx.e.traceBox.Load() == nil {
			bc.happenings++
			bm.before.count++
		} else if err := tx.stepBatch(c, &bm.before, b.oids[i], rec, &h, &bc); err != nil {
			return tx.propagate(err)
		}

		// The MethodCtx lives on the plan and is reused by address;
		// save/restore by value keeps re-entrant calls of the same
		// method (an action invoking it via tx.Call) correct. Like the
		// trigger ActionCtx, implementations must not retain the pointer
		// past their return.
		saved := bm.mctx
		bm.mctx = MethodCtx{Tx: tx, Self: b.oids[i], Args: bm.bound}
		_, err = bm.impl(&bm.mctx)
		bm.mctx = saved
		if err != nil {
			return tx.propagate(err)
		}

		h.Kind = bm.after.kind
		if len(bm.after.entries) == 0 && tx.e.book.Load() == nil && tx.e.traceBox.Load() == nil {
			bc.happenings++
			bm.after.count++
		} else if err := tx.stepBatch(c, &bm.after, b.oids[i], rec, &h, &bc); err != nil {
			return tx.propagate(err)
		}
	}
	return nil
}

// postBatchSlow executes the batch through the one-at-a-time path —
// the semantic definition of PostBatch.
func (tx *Tx) postBatchSlow(b *Batch) error {
	for i := range b.oids {
		args := b.args[b.argOff[i]:b.argOff[i+1]]
		if _, err := tx.Call(b.oids[i], b.methods[b.meth[i]], args...); err != nil {
			return err
		}
	}
	return nil
}

// batchAccess is tx.access with the transaction's single-entry record
// cache primed, so consecutive batch entries (and the field accesses
// of the method implementations they run) hitting the same object skip
// the lock-table and store lookups.
func (tx *Tx) batchAccess(oid store.OID) (*store.Record, error) {
	if tx.cachedRec != nil && oid == tx.cachedOID {
		return tx.cachedRec, nil
	}
	rec, err := tx.access(oid)
	if err != nil {
		return nil, err
	}
	tx.cachedOID, tx.cachedRec = oid, rec
	return rec, nil
}

// stepBatch is step() specialized to a prepared batchPhase: the kind is
// pre-resolved, the dispatch slice is hoisted, mask programs evaluate
// through mask.EvalBits, and metrics accumulate in the phase/counter
// scratch instead of paying atomic updates per happening. Combined
// monitoring and onlyTrigger delivery never reach here (PostBatch and
// cohort timer delivery route monitored classes through the per-call
// paths; 'after' one-shots post one-at-a-time via postTimer).
func (tx *Tx) stepBatch(c *Class, ph *batchPhase, oid store.OID, rec *store.Record,
	h *event.Happening, bc *batchCounters) error {
	tx.e.recordHappening(oid, *h)
	bc.happenings++
	ph.count++
	tx.e.traceHappening(h.TxID, oid, rec.Class, h.Kind)
	c.ensureSlots(rec)

	base := len(tx.fired)
	for i := range ph.entries {
		d := &ph.entries[i]
		t := d.t
		act := rec.Slot(t.slot)
		if act == nil || !act.Active {
			continue
		}
		var bits uint32
		if d.used != 0 {
			saved := tx.penv
			tx.penv = progHost{tx: tx, self: oid, rec: rec, cls: c}
			got, evals, falses, err := mask.EvalBits(d.progs, d.used, h.Dense, trigDense(t, act), &tx.penv)
			tx.penv = saved
			ph.evals[i] += uint64(evals)
			ph.falses[i] += uint64(falses)
			bc.maskEvals += uint64(evals)
			if err != nil {
				tx.fired = tx.fired[:base]
				return fmt.Errorf("engine: trigger %s mask: %w", t.Res.Name, err)
			}
			bits = got
			tx.e.traceMask(h.TxID, oid, rec.Class, t.Res.Name, d.used, bits)
		}
		sym := c.Res.Alphabet.Symbol(ph.kindIx, bits)

		var prev, next int
		if t.View == schema.WholeView {
			key := instanceKey{oid, t.Res.Name}
			tx.e.wholeMu.Lock()
			cur, ok := tx.e.whole[key]
			if !ok {
				cur = t.Auto.Start()
			}
			prev = cur
			next = t.Auto.Next(cur, sym)
			tx.e.whole[key] = next
			if tx.e.shadowOracle {
				tx.e.wholeShadow[key] = append(tx.e.wholeShadow[key], sym)
			}
			tx.e.wholeMu.Unlock()
		} else {
			prev = act.State
			next = t.Auto.Next(act.State, sym)
			if next != prev || tx.e.shadowOracle {
				// First in-place mutation of a narrow-stepped record:
				// register its narrow before-image (idempotent after the
				// first call). Self-looping instances skip this entirely —
				// the record is bit-identical after the step, so it needs
				// no undo, no WAL record, and no epoch republication.
				if tx.narrowStep {
					if _, _, err := tx.tx.AccessNarrow(oid); err != nil {
						tx.fired = tx.fired[:base]
						return err
					}
				}
				act.State = next
				if tx.e.shadowOracle {
					act.Shadow = append(act.Shadow, sym)
				}
			}
		}
		bc.steps++
		ph.steps[i]++
		accepted := t.Auto.Accept(next)
		if next != prev || accepted {
			if r := tx.e.provRing(oid, t.Res.Name); r != nil {
				r.Append(obs.ProvStep{
					TxID: h.TxID, AtNs: h.At.UnixNano(),
					KindID: ph.kindID, Bits: bits, Sym: sym,
					From: prev, To: next, Accepted: accepted,
				})
				bc.provSteps++
			}
		}
		tx.e.traceStep(h.TxID, oid, rec.Class, t.Res.Name, prev, next, accepted)
		if tx.e.shadowOracle {
			if err := tx.e.shadowCheck(oid, t, act, accepted); err != nil {
				tx.fired = tx.fired[:base]
				return err
			}
		}
		if accepted {
			tx.fired = append(tx.fired, firedTrigger{t, act})
		}
	}

	fired := tx.fired[base:]
	if len(fired) == 0 {
		tx.fired = tx.fired[:base]
		return nil
	}
	if tx.narrowStep {
		// The narrow image covers only activation scalars, but the
		// actions about to run may mutate anything: register the object
		// (it may be pristine — an accepting self-loop) and promote it
		// to a full before-image while its fields are still untouched.
		_, _, err := tx.tx.AccessNarrow(oid)
		if err == nil {
			err = tx.tx.Promote(oid)
		}
		if err != nil {
			tx.fired = tx.fired[:base]
			return err
		}
	}
	for _, f := range fired {
		if !f.t.Res.Perpetual {
			f.act.Active = false
			tx.e.timers.disarm(oid, f.t)
		}
	}
	// ActionCtx documents its EventParams map as retainable, but this
	// happening's Params is the plan's reused bound map: detach a copy
	// before any action sees it. The firing path is allowed to allocate
	// — the zero-allocation promise covers the non-firing common case.
	if h.Params != nil {
		params := make(map[string]value.Value, len(h.Params))
		for k, v := range h.Params {
			params[k] = v
		}
		h.Params = params
	}
	err := tx.fire(oid, c, *h, fired)
	tx.fired = tx.fired[:base]
	// Actions run arbitrary engine operations; drop the record cache
	// rather than reason about what they touched.
	tx.cachedRec = nil
	return err
}

// flushBatch publishes the batch's accumulated statistics — one atomic
// add per engine counter, one per (trigger, phase) metric stream — and
// the per-phase StageBatch flight summaries.
func (tx *Tx) flushBatch(c *Class, b *Batch, bc *batchCounters, atNs int64, txid uint64) {
	if bc.happenings != 0 {
		tx.e.stats.happenings.Add(bc.happenings)
		c.met.HappeningN(bc.happenings)
	}
	if bc.steps != 0 {
		tx.e.stats.steps.Add(bc.steps)
	}
	if bc.maskEvals != 0 {
		tx.e.stats.maskEvals.Add(bc.maskEvals)
	}
	if bc.provSteps != 0 {
		tx.e.stats.provSteps.Add(bc.provSteps)
	}
	for pi := range b.plan {
		bm := &b.plan[pi]
		for _, ph := range [...]*batchPhase{&bm.before, &bm.after} {
			if ph.count != 0 {
				tx.e.flightBatch(atNs, txid, c.nameID, ph.kindID, ph.count)
				ph.count = 0
			}
			for i := range ph.entries {
				if ph.steps[i] != 0 {
					ph.entries[i].t.met.StepN(ph.steps[i])
					ph.steps[i] = 0
				}
				if ph.evals[i] != 0 || ph.falses[i] != 0 {
					ph.entries[i].t.met.MaskEvalN(ph.evals[i], ph.falses[i])
					ph.evals[i], ph.falses[i] = 0, 0
				}
			}
		}
	}
}
