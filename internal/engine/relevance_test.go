package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"ode/internal/event"
	"ode/internal/schema"
	"ode/internal/value"
)

// TestKindRelevanceBitmap pins the relevance analysis at the engine
// level: "after deposit" ignores withdraw postings, while a
// sequence-style expression needs every kind (an intervening happening
// breaks adjacency).
func TestKindRelevanceBitmap(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Dep", Perpetual: true, Event: "after deposit"},
		schema.Trigger{Name: "Seq", Perpetual: true, Event: "after deposit; after withdraw"})
	e := newEngine(t, Options{})
	c, err := e.RegisterClass(cls, impl, nil)
	if err != nil {
		t.Fatal(err)
	}

	dep := c.Trigger("Dep")
	depIx := c.Res.Alphabet.KindIndex(kindOf(t, c, "deposit"))
	wdIx := c.Res.Alphabet.KindIndex(kindOf(t, c, "withdraw"))
	if !dep.RelevantKind(depIx) {
		t.Error("deposit must be relevant to 'after deposit'")
	}
	if dep.RelevantKind(wdIx) {
		t.Error("withdraw should be irrelevant to 'after deposit'")
	}
	seq := c.Trigger("Seq")
	if !seq.RelevantKind(depIx) || !seq.RelevantKind(wdIx) {
		t.Error("both kinds must be relevant to the sequence trigger")
	}
}

// TestRelevanceSkippingEquivalence runs the same randomized workload
// with the shadow oracle on (skipping disabled, every transition
// cross-checked against the §4 semantics) and off (skipping enabled)
// and requires identical firing sequences — the end-to-end safety net
// for kind-relevance skipping.
func TestRelevanceSkippingEquivalence(t *testing.T) {
	triggers := []schema.Trigger{
		{Name: "Dep", Perpetual: true, Event: "after deposit"},
		{Name: "Pair", Perpetual: true, Event: "relative(after deposit, after withdraw)"},
		{Name: "Once", Event: "after withdraw"},
		{Name: "Big", Perpetual: true, Event: "after deposit(a) && a > 100"},
	}
	run := func(oracle bool) []string {
		rec := &recorder{}
		cls, impl := accountClass(rec, triggers...)
		// Re-activate the ordinary trigger whenever it fires so the
		// workload keeps exercising it.
		inner := impl.Actions["Once"]
		impl.Actions["Once"] = func(ctx *ActionCtx) error {
			if err := inner(ctx); err != nil {
				return err
			}
			return ctx.Tx.Activate(ctx.Self, "Once")
		}
		e := newEngine(t, Options{ShadowOracle: oracle})
		oid := setup(t, e, cls, impl, "Dep", "Pair", "Once", "Big")

		rng := rand.New(rand.NewSource(99))
		for round := 0; round < 40; round++ {
			err := e.Transact(func(tx *Tx) error {
				for i := 0; i < 5; i++ {
					method := "deposit"
					if rng.Intn(2) == 0 {
						method = "withdraw"
					}
					amt := int64(rng.Intn(200))
					if _, err := tx.Call(oid, method, value.Int(amt)); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return rec.list()
	}

	withOracle := run(true)
	withSkipping := run(false)
	if !reflect.DeepEqual(withOracle, withSkipping) {
		t.Fatalf("firing sequences diverge:\noracle (no skipping): %v\nskipping:             %v",
			withOracle, withSkipping)
	}
	if len(withSkipping) == 0 {
		t.Fatal("workload produced no firings; equivalence vacuous")
	}
}

// kindOf finds the class's event kind for the named method's "after"
// posting.
func kindOf(t *testing.T, c *Class, method string) event.Kind {
	t.Helper()
	for i := range c.Res.Alphabet.Kinds {
		if c.Res.Alphabet.Kinds[i].Kind.String() == "after "+method {
			return c.Res.Alphabet.Kinds[i].Kind
		}
	}
	t.Fatalf("no kind for method %s", method)
	return event.Kind{}
}
