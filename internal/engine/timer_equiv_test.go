package engine

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// timerEquivRun drives one engine through the scripted timer workload
// and returns everything the cohort/per-object comparison pins:
// per-object firing sequences, final balances, provenance chains, and
// the aggregate counters.
type timerEquivRun struct {
	fires    map[store.OID][]string // per-object firing sequence, in order
	balances map[store.OID]int64
	prov     map[string][]string // "oid/trigger" → rendered steps
	stats    Stats
	errs     []error
}

// timerEquivScript runs the mixed timer workload against a fresh
// engine: periodic, calendar, and 'after' one-shot specs across many
// objects, interleaved with method calls, partial deactivation, object
// deletion, and an aborted activation (exercising reconcile).
func timerEquivScript(t *testing.T, perObject bool) *timerEquivRun {
	t.Helper()
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Tick", Perpetual: true, Event: "every time(M=10)"},
		schema.Trigger{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"},
		schema.Trigger{Name: "Combo", Perpetual: true, Event: "relative(every time(M=10), after withdraw)"},
		schema.Trigger{Name: "Late", Event: "after time(M=45)"})
	// Record firings per object: cross-object order at one instant is
	// not pinned (see timerbatch.go); per-object order is.
	for _, name := range []string{"Tick", "Daily", "Combo", "Late"} {
		name := name
		impl.Actions[name] = func(ctx *ActionCtx) error {
			rec.add(fmt.Sprintf("%d/%s", ctx.Self, name))
			return nil
		}
	}
	e := newEngine(t, Options{
		ShadowOracle:    true,
		PerObjectTimers: perObject,
		Start:           time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC),
	})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}

	const n = 24
	oids := make([]store.OID, n)
	err := e.Transact(func(tx *Tx) error {
		for i := range oids {
			oid, err := tx.NewObject("account", map[string]value.Value{"balance": value.Int(1000)})
			if err != nil {
				return err
			}
			oids[i] = oid
			if err := tx.Activate(oid, "Tick"); err != nil {
				return err
			}
			if i%2 == 0 {
				if err := tx.Activate(oid, "Daily"); err != nil {
					return err
				}
			}
			if i%3 == 0 {
				if err := tx.Activate(oid, "Combo"); err != nil {
					return err
				}
			}
			if i%4 == 0 {
				if err := tx.Activate(oid, "Late"); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	e.Clock().Advance(30 * time.Minute) // 3 Ticks; Late still pending

	err = e.Transact(func(tx *Tx) error {
		for i, oid := range oids {
			if i%3 == 0 {
				if _, err := tx.Call(oid, "withdraw", value.Int(int64(10+i))); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	e.Clock().Advance(20 * time.Minute) // Late fires at +45m; more Ticks

	// Partial deactivation and a deletion while cohorts are live.
	err = e.Transact(func(tx *Tx) error {
		for i, oid := range oids {
			if i%5 == 0 {
				if err := tx.Deactivate(oid, "Tick"); err != nil {
					return err
				}
			}
		}
		return tx.DeleteObject(oids[7])
	})
	if err != nil {
		t.Fatal(err)
	}

	// An aborted activation: reconcile must restore the pre-transaction
	// schedule (the activation's timers disappear with the rollback).
	boom := fmt.Errorf("boom")
	if err := e.Transact(func(tx *Tx) error {
		if err := tx.Activate(oids[1], "Daily"); err != nil {
			return err
		}
		if _, err := tx.Call(oids[1], "deposit", value.Int(5)); err != nil {
			return err
		}
		return boom
	}); err != boom {
		t.Fatalf("abort err = %v", err)
	}

	e.Clock().Advance(10 * time.Hour) // crosses 17:00 → Daily
	e.Clock().Advance(24 * time.Hour) // second Daily, many Ticks

	run := &timerEquivRun{
		fires:    map[store.OID][]string{},
		balances: map[store.OID]int64{},
		prov:     map[string][]string{},
		stats:    e.Stats(),
		errs:     e.TimerErrors(),
	}
	for _, f := range rec.list() {
		var oid store.OID
		var name string
		fmt.Sscanf(f, "%d/%s", &oid, &name)
		run.fires[oid] = append(run.fires[oid], name)
	}
	for _, oid := range oids {
		r, err := e.Store().Get(oid)
		if err != nil {
			continue // the deleted object
		}
		run.balances[oid] = r.Fields["balance"].AsInt()
		for _, trig := range []string{"Tick", "Daily", "Combo", "Late"} {
			ex, err := e.Explain(trig, oid)
			if err != nil {
				continue
			}
			key := fmt.Sprintf("%d/%s", oid, trig)
			for _, s := range ex.Steps {
				// TxID is excluded: transaction ids depend on how many
				// system transactions ran, which is exactly what cohort
				// delivery amortizes. Everything semantic is compared.
				run.prov[key] = append(run.prov[key],
					fmt.Sprintf("seq=%d at=%d kind=%s bits=%d sym=%d %d->%d acc=%v",
						s.Seq, s.AtNs, s.Kind, s.Bits, s.Sym, s.From, s.To, s.Accepted))
			}
		}
	}
	return run
}

// TestTimerCohortEquivalence proves cohort delivery is observationally
// equivalent to the per-object baseline (Options.PerObjectTimers):
// identical per-object firing sequences, balances, provenance chains,
// and aggregate counters, with the shadow oracle cross-checking every
// automaton step in both runs.
func TestTimerCohortEquivalence(t *testing.T) {
	cohort := timerEquivScript(t, false)
	legacy := timerEquivScript(t, true)

	if len(cohort.errs) != 0 || len(legacy.errs) != 0 {
		t.Fatalf("timer errors: cohort=%v legacy=%v", cohort.errs, legacy.errs)
	}
	if len(cohort.fires) != len(legacy.fires) {
		t.Fatalf("objects that fired: cohort=%d legacy=%d", len(cohort.fires), len(legacy.fires))
	}
	for oid, want := range legacy.fires {
		if got := cohort.fires[oid]; fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("object %d firing sequence:\n cohort: %v\n legacy: %v", oid, got, want)
		}
	}
	for oid, want := range legacy.balances {
		if got, ok := cohort.balances[oid]; !ok || got != want {
			t.Errorf("object %d balance: cohort=%d legacy=%d", oid, got, want)
		}
	}
	var keys []string
	for k := range legacy.prov {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if fmt.Sprint(cohort.prov[k]) != fmt.Sprint(legacy.prov[k]) {
			t.Errorf("provenance %s:\n cohort: %v\n legacy: %v", k, cohort.prov[k], legacy.prov[k])
		}
	}
	// The counters the paths must agree on. SystemTx is intentionally
	// different (that is the amortization); check the direction.
	cs, ls := cohort.stats, legacy.stats
	if cs.Happenings != ls.Happenings || cs.Steps != ls.Steps ||
		cs.Firings != ls.Firings || cs.TimerPosts != ls.TimerPosts ||
		cs.MaskEvals != ls.MaskEvals || cs.ProvenanceSteps != ls.ProvenanceSteps {
		t.Errorf("stats diverge:\n cohort: %+v\n legacy: %+v", cs, ls)
	}
	if cs.SystemTx >= ls.SystemTx {
		t.Errorf("cohort delivery should run fewer system transactions: cohort=%d legacy=%d",
			cs.SystemTx, ls.SystemTx)
	}
}

// TestTimerCohortSharing checks the §3.1 sharing structure directly:
// objects of one class on the same canonical spec occupy one cohort
// (one armed clock timer), and the TimerSchedule views agree between
// layouts.
func TestTimerCohortSharing(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Tick", Perpetual: true, Event: "every time(M=10)"},
		schema.Trigger{Name: "Tock", Perpetual: true, Event: "every time(M=10)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var oids []store.OID
	err := e.Transact(func(tx *Tx) error {
		for i := 0; i < 100; i++ {
			oid, err := tx.NewObject("account", nil)
			if err != nil {
				return err
			}
			oids = append(oids, oid)
			if err := tx.Activate(oid, "Tick"); err != nil {
				return err
			}
			if err := tx.Activate(oid, "Tock"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 objects × 2 triggers on one spec, armed in one instant: one
	// cohort, one pending clock timer.
	s := e.Stats()
	if s.TimerCohorts != 1 {
		t.Fatalf("TimerCohorts = %d, want 1", s.TimerCohorts)
	}
	if s.TimersPending != 1 {
		t.Fatalf("TimersPending = %d, want 1", s.TimersPending)
	}
	if sched := e.TimerSchedule(); len(sched) != 200 {
		t.Fatalf("TimerSchedule entries = %d, want 200", len(sched))
	}
	e.Clock().Advance(10 * time.Minute)
	if rec.count() != 200 {
		t.Fatalf("fires = %d, want 200", rec.count())
	}
	// Dropping every membership dissolves the cohort and its timer.
	err = e.Transact(func(tx *Tx) error {
		for _, oid := range oids {
			if err := tx.Deactivate(oid, "Tick"); err != nil {
				return err
			}
			if err := tx.Deactivate(oid, "Tock"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s = e.Stats()
	if s.TimerCohorts != 0 || s.TimersPending != 0 {
		t.Fatalf("after full deactivation: cohorts=%d pending=%d", s.TimerCohorts, s.TimersPending)
	}
}
