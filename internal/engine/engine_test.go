package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ode/internal/evlang"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// recorder collects trigger firings for assertions.
type recorder struct {
	mu    sync.Mutex
	fires []string
}

func (r *recorder) add(s string) {
	r.mu.Lock()
	r.fires = append(r.fires, s)
	r.mu.Unlock()
}

func (r *recorder) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.fires))
	copy(out, r.fires)
	return out
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fires)
}

// accountClass builds a bank-account class with the given triggers and
// a recorder-backed action for each.
func accountClass(rec *recorder, triggers ...schema.Trigger) (*schema.Class, ClassImpl) {
	cls := &schema.Class{
		Name: "account",
		Fields: []schema.Field{
			{Name: "balance", Kind: value.KindInt, Default: value.Int(0)},
			{Name: "owner", Kind: value.KindString},
		},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "amount", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "amount", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "getBalance", Mode: schema.ModeRead},
		},
		Triggers: triggers,
	}
	impl := ClassImpl{
		Methods: map[string]MethodImpl{
			"deposit": func(ctx *MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()+ctx.Arg("amount").AsInt()))
			},
			"withdraw": func(ctx *MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()-ctx.Arg("amount").AsInt()))
			},
			"getBalance": func(ctx *MethodCtx) (value.Value, error) {
				return ctx.Get("balance")
			},
		},
		Actions: map[string]ActionFunc{},
	}
	for _, tr := range triggers {
		name := tr.Name
		impl.Actions[name] = func(ctx *ActionCtx) error {
			rec.add(name)
			return nil
		}
	}
	return cls, impl
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// setup registers the class and creates one activated account.
func setup(t *testing.T, e *Engine, cls *schema.Class, impl ClassImpl, activate ...string) store.OID {
	t.Helper()
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var oid store.OID
	err := e.Transact(func(tx *Tx) error {
		var err error
		oid, err = tx.NewObject("account", map[string]value.Value{"balance": value.Int(1000)})
		if err != nil {
			return err
		}
		for _, trig := range activate {
			if err := tx.Activate(oid, trig); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestMaskedMethodTriggerFires(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Large")

	err := e.Transact(func(tx *Tx) error {
		if _, err := tx.Call(oid, "withdraw", value.Int(50)); err != nil {
			return err
		}
		if _, err := tx.Call(oid, "withdraw", value.Int(500)); err != nil {
			return err
		}
		_, err := tx.Call(oid, "deposit", value.Int(500))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.list(); len(got) != 1 || got[0] != "Large" {
		t.Fatalf("fires = %v", got)
	}
	// Balance reflects all three calls.
	var bal value.Value
	e.Transact(func(tx *Tx) error {
		var err error
		bal, err = tx.Call(oid, "getBalance")
		return err
	})
	if bal.AsInt() != 950 {
		t.Fatalf("balance = %v", bal)
	}
}

func TestOrdinaryTriggerDeactivatesOnFire(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Once", Event: "after deposit"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Once")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("ordinary trigger fired %d times", rec.count())
	}
	// Re-activation re-arms it.
	e.Transact(func(tx *Tx) error {
		if err := tx.Activate(oid, "Once"); err != nil {
			return err
		}
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	if rec.count() != 2 {
		t.Fatalf("after re-activation fired %d times", rec.count())
	}
}

func TestInactiveTriggerSeesNothing(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "T", Perpetual: true, Event: "after deposit"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl) // not activated

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	if rec.count() != 0 {
		t.Fatalf("inactive trigger fired %d times", rec.count())
	}
	// History starts at activation: a sequence needing deposit-then-
	// withdraw must not count a pre-activation deposit.
	cls2, impl2 := accountClass(&recorder{},
		schema.Trigger{Name: "Seq", Perpetual: true, Event: "relative(after deposit, after withdraw)"})
	cls2.Name = "account2"
	rec2 := &recorder{}
	impl2.Actions["Seq"] = func(*ActionCtx) error { rec2.add("Seq"); return nil }
	if _, err := e.RegisterClass(cls2, impl2, nil); err != nil {
		t.Fatal(err)
	}
	var oid2 store.OID
	e.Transact(func(tx *Tx) error {
		oid2, _ = tx.NewObject("account2", nil)
		tx.Call(oid2, "deposit", value.Int(1)) // before activation
		tx.Activate(oid2, "Seq")
		tx.Call(oid2, "withdraw", value.Int(1)) // no deposit since activation
		return nil
	})
	if rec2.count() != 0 {
		t.Fatal("trigger observed pre-activation events")
	}
	e.Transact(func(tx *Tx) error {
		tx.Call(oid2, "deposit", value.Int(1))
		tx.Call(oid2, "withdraw", value.Int(1))
		return nil
	})
	if rec2.count() != 1 {
		t.Fatalf("post-activation sequence fired %d times", rec2.count())
	}
}

func TestTabortActionAbortsTransaction(t *testing.T) {
	// The paper's T1: unauthorized withdrawals abort the transaction.
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "T1", Perpetual: true, Event: "before withdraw && !authorized(user())"})
	authorized := true
	impl.Funcs = map[string]MaskFunc{
		"authorized": func(args []value.Value) (value.Value, error) {
			return value.Bool(args[0].AsString() == "alice"), nil
		},
	}
	impl.Actions["T1"] = func(ctx *ActionCtx) error { return ctx.Tabort() }
	e := newEngine(t, Options{})
	currentUser := "alice"
	e.RegisterFunc("user", func([]value.Value) (value.Value, error) {
		return value.Str(currentUser), nil
	})
	oid := setup(t, e, cls, impl, "T1")

	// Authorized withdrawal goes through.
	if err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "withdraw", value.Int(100))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Unauthorized: tabort fires BEFORE the method body runs.
	currentUser = "mallory"
	err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "withdraw", value.Int(100))
		return err
	})
	if !errors.Is(err, ErrTabort) {
		t.Fatalf("err = %v, want ErrTabort", err)
	}
	r, _ := e.Store().Get(oid)
	if !r.Fields["balance"].Equal(value.Int(900)) {
		t.Fatalf("balance = %v, want 900 (only the authorized withdrawal)", r.Fields["balance"])
	}
	_ = authorized
}

func TestSequenceTriggerT8(t *testing.T) {
	// Print the log when a deposit is immediately followed by a
	// withdrawal (T8: after deposit; before withdraw; after withdraw).
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "T8", Perpetual: true, Event: "after deposit; before withdraw; after withdraw"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "T8")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		tx.Call(oid, "withdraw", value.Int(1)) // immediately follows → fires
		tx.Call(oid, "deposit", value.Int(1))
		tx.Call(oid, "getBalance") // interloper breaks adjacency
		tx.Call(oid, "withdraw", value.Int(1))
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("T8 fired %d times, want 1", rec.count())
	}
}

func TestAfterTbeginPostedOnFirstAccess(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "TB", Perpetual: true, Event: "after tbegin"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "TB")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "getBalance")
		tx.Call(oid, "getBalance") // same transaction: no second tbegin
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("TB fired %d times in one transaction", rec.count())
	}
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "getBalance")
		return nil
	})
	if rec.count() != 2 {
		t.Fatalf("TB fired %d times after two transactions", rec.count())
	}
}

func TestDeferredCouplingViaFa(t *testing.T) {
	// Immediate-Deferred (§7): fa(E, before tcomplete, after tbegin)
	// runs the action once, at commit time.
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Def", Perpetual: true,
			Event: "fa(after withdraw(a) && a > 100, before tcomplete, after tbegin)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Def")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(500))
		if rec.count() != 0 {
			t.Error("deferred action ran before commit")
		}
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("deferred action ran %d times", rec.count())
	}
	// A transaction without the event does not fire it.
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("deferred action ran %d times after unrelated tx", rec.count())
	}
}

func TestTcompleteFixpointDivergenceDetected(t *testing.T) {
	// A perpetual trigger on bare "before tcomplete" fires on every
	// fixpoint round: the paper's loop never quiesces.
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Loop", Perpetual: true, Event: "before tcomplete"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl)

	err := e.Transact(func(tx *Tx) error {
		if err := tx.Activate(oid, "Loop"); err != nil {
			return err
		}
		_, err := tx.Call(oid, "deposit", value.Int(1))
		return err
	})
	if !errors.Is(err, ErrTcompleteDiverged) {
		t.Fatalf("err = %v, want ErrTcompleteDiverged", err)
	}
	// The diverged transaction aborted: deposit rolled back.
	r, _ := e.Store().Get(oid)
	if !r.Fields["balance"].Equal(value.Int(1000)) {
		t.Fatalf("balance = %v", r.Fields["balance"])
	}
}

func TestAfterTcommitRunsInSystemTransaction(t *testing.T) {
	// Immediate-Dependent (§7): fa(E, after tcommit, after tbegin).
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Dep", Perpetual: true,
			Event: "fa(after withdraw, after tcommit, after tbegin)"})
	var sawSystem bool
	impl.Actions["Dep"] = func(ctx *ActionCtx) error {
		rec.add("Dep")
		sawSystem = ctx.Tx.Underlying().System()
		return nil
	}
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Dep")

	e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "withdraw", value.Int(10))
		return err
	})
	if rec.count() != 1 {
		t.Fatalf("Dep fired %d times", rec.count())
	}
	if !sawSystem {
		t.Fatal("after-tcommit action did not run in a system transaction")
	}
	// An aborted transaction must not fire it.
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(10))
		return errors.New("force abort")
	})
	if rec.count() != 1 {
		t.Fatalf("Dep fired %d times after aborted tx", rec.count())
	}
}

func TestCommittedViewRollsBackOnAbort(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Two", Perpetual: true, Event: "relative(after withdraw, after withdraw)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Two")

	// First withdraw inside an aborted transaction.
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(1))
		return errors.New("abort")
	})
	// Second withdraw in a committed transaction: for the committed
	// view this is the FIRST withdraw, so the trigger must not fire.
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(1))
		return nil
	})
	if rec.count() != 0 {
		t.Fatalf("committed-view trigger counted an aborted withdraw (%d fires)", rec.count())
	}
	// A second committed withdraw completes the pair.
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(1))
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("fires = %d", rec.count())
	}
}

func TestWholeViewSurvivesAbort(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Two", Perpetual: true, Event: "relative(after withdraw, after withdraw)", View: schema.WholeView})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Two")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(1))
		return errors.New("abort")
	})
	// Whole view keeps the aborted withdraw: this one is the second.
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(1))
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("whole-view trigger fired %d times, want 1", rec.count())
	}
}

func TestAfterTabortTrigger(t *testing.T) {
	// "If the ratio of aborts to commits exceeds..." (§6): whole-view
	// triggers can observe aborts.
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Ab", Perpetual: true, Event: "after tabort", View: schema.WholeView})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Ab")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		return errors.New("boom")
	})
	if rec.count() != 1 {
		t.Fatalf("Ab fired %d times", rec.count())
	}
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("Ab fired on commit (%d)", rec.count())
	}
}

func TestChooseCountsAcrossTransactions(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Fifth", Perpetual: true, Event: "choose 5 (after tcommit)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Fifth")

	for i := 0; i < 8; i++ {
		e.Transact(func(tx *Tx) error {
			tx.Call(oid, "deposit", value.Int(1))
			return nil
		})
	}
	if rec.count() != 1 {
		t.Fatalf("choose 5 fired %d times over 8 commits", rec.count())
	}
}

func TestEveryOperator(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "T5", Perpetual: true, Event: "every 3 (after access)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "T5")

	e.Transact(func(tx *Tx) error {
		for i := 0; i < 7; i++ {
			tx.Call(oid, "getBalance")
		}
		return nil
	})
	// 7 accesses → fires at the 3rd and 6th.
	if rec.count() != 2 {
		t.Fatalf("every 3 fired %d times over 7 accesses", rec.count())
	}
}

func TestStateShorthandTrigger(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Low", Perpetual: true, Event: "balance < 500"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Low")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(300)) // 700: no fire
		return nil
	})
	if rec.count() != 0 {
		t.Fatal("fired above threshold")
	}
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(300)) // 400: fire
		tx.Call(oid, "withdraw", value.Int(100)) // 300: fire again (perpetual)
		return nil
	})
	if rec.count() != 2 {
		t.Fatalf("fires = %d, want 2", rec.count())
	}
}

func TestTriggerParamsInMask(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Big", Perpetual: true,
			Params: []schema.Param{{Name: "lvl", Kind: value.KindInt}},
			Event:  "after withdraw(a) && a > lvl"})
	e := newEngine(t, Options{})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var a, b store.OID
	e.Transact(func(tx *Tx) error {
		a, _ = tx.NewObject("account", map[string]value.Value{"balance": value.Int(1000)})
		b, _ = tx.NewObject("account", map[string]value.Value{"balance": value.Int(1000)})
		tx.Activate(a, "Big", value.Int(100))
		tx.Activate(b, "Big", value.Int(500))
		return nil
	})
	e.Transact(func(tx *Tx) error {
		tx.Call(a, "withdraw", value.Int(200)) // > 100 → fires
		tx.Call(b, "withdraw", value.Int(200)) // ≤ 500 → no fire
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("fires = %d: per-activation parameters leaked", rec.count())
	}
}

func TestCrossObjectMaskFieldAccess(t *testing.T) {
	// T2-style: the mask reads another object's state via a reference
	// parameter (i.balance < threshold).
	rec := &recorder{}
	cls := &schema.Class{
		Name: "stockRoom",
		Fields: []schema.Field{
			{Name: "name", Kind: value.KindString},
		},
		Methods: []schema.Method{
			{Name: "withdraw", Params: []schema.Param{
				{Name: "item", Kind: value.KindID}, {Name: "qty", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "T2", Perpetual: true, Event: "after withdraw(i, q) && i.stock < 10"},
		},
	}
	itemCls := &schema.Class{
		Name: "item",
		Fields: []schema.Field{
			{Name: "stock", Kind: value.KindInt},
		},
		Methods: []schema.Method{
			{Name: "take", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
	}
	e := newEngine(t, Options{})
	if _, err := e.RegisterClass(itemCls, ClassImpl{Methods: map[string]MethodImpl{
		"take": func(ctx *MethodCtx) (value.Value, error) {
			s, _ := ctx.Get("stock")
			return value.Null(), ctx.Set("stock", value.Int(s.AsInt()-ctx.Arg("n").AsInt()))
		},
	}}, nil); err != nil {
		t.Fatal(err)
	}
	impl := ClassImpl{
		Methods: map[string]MethodImpl{
			"withdraw": func(ctx *MethodCtx) (value.Value, error) {
				_, err := ctx.Tx.Call(store.OID(ctx.Arg("item").AsID()), "take", ctx.Arg("qty"))
				return value.Null(), err
			},
		},
		Actions: map[string]ActionFunc{
			"T2": func(ctx *ActionCtx) error { rec.add("T2"); return nil },
		},
	}
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var room, item store.OID
	e.Transact(func(tx *Tx) error {
		item, _ = tx.NewObject("item", map[string]value.Value{"stock": value.Int(20)})
		room, _ = tx.NewObject("stockRoom", nil)
		return tx.Activate(room, "T2")
	})
	e.Transact(func(tx *Tx) error {
		tx.Call(room, "withdraw", value.ID(uint64(item)), value.Int(5)) // stock 15: no fire
		return nil
	})
	if rec.count() != 0 {
		t.Fatal("fired with stock above threshold")
	}
	e.Transact(func(tx *Tx) error {
		tx.Call(room, "withdraw", value.ID(uint64(item)), value.Int(8)) // stock 7: fire
		return nil
	})
	if rec.count() != 1 {
		t.Fatalf("fires = %d", rec.count())
	}
}

func TestTimeEventAt(t *testing.T) {
	// T3: at the end of the day, print a summary.
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "T3", Perpetual: true, Event: "at time(HR=17)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	oid := setup(t, e, cls, impl, "T3")

	e.Clock().Advance(8 * time.Hour) // 16:00
	if rec.count() != 0 {
		t.Fatal("fired early")
	}
	e.Clock().Advance(2 * time.Hour) // 18:00 — 17:00 passed
	if rec.count() != 1 {
		t.Fatalf("fires = %d", rec.count())
	}
	e.Clock().Advance(24 * time.Hour) // next day's 17:00
	if rec.count() != 2 {
		t.Fatalf("daily recurrence: fires = %d", rec.count())
	}
	// Deactivation stops it.
	e.Transact(func(tx *Tx) error { return tx.Deactivate(oid, "T3") })
	e.Clock().Advance(24 * time.Hour)
	if rec.count() != 2 {
		t.Fatalf("fired after deactivation: %d", rec.count())
	}
	if errs := e.TimerErrors(); len(errs) != 0 {
		t.Fatalf("timer errors: %v", errs)
	}
}

func TestTimeEventEveryAndAfter(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Periodic", Perpetual: true, Event: "every time(M=10)"},
		schema.Trigger{Name: "Delayed", Event: "after time(HR=2, M=30)"})
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	oid := setup(t, e, cls, impl, "Periodic", "Delayed")
	_ = oid

	e.Clock().Advance(35 * time.Minute)
	periodic := 0
	for _, f := range rec.list() {
		if f == "Periodic" {
			periodic++
		}
	}
	if periodic != 3 {
		t.Fatalf("periodic fires = %d, want 3", periodic)
	}
	e.Clock().Advance(3 * time.Hour) // passes the 2h30m delay
	delayed := 0
	for _, f := range rec.list() {
		if f == "Delayed" {
			delayed++
		}
	}
	if delayed != 1 {
		t.Fatalf("delayed fires = %d", delayed)
	}
	e.Clock().Advance(5 * time.Hour) // one-shot: no refire
	delayed = 0
	for _, f := range rec.list() {
		if f == "Delayed" {
			delayed++
		}
	}
	if delayed != 1 {
		t.Fatalf("delayed refired: %d", delayed)
	}
}

func TestTimedTriggerViaCompositeEvent(t *testing.T) {
	// Footnote 1: "timed triggers can be simulated using composite
	// events" — a summary after the first large withdrawal of each day
	// (T7-like: fa(dayBegin, large, dayBegin)).
	rec := &recorder{}
	ps := evlang.NewParser()
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "T7", Perpetual: true, Event: "fa(dayBegin, after withdraw(a) && a > 100, dayBegin)"})
	if err := ps.Define("dayBegin", "at time(HR=9)"); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if _, err := e.RegisterClass(cls, impl, ps); err != nil {
		t.Fatal(err)
	}
	var oid store.OID
	e.Transact(func(tx *Tx) error {
		oid, _ = tx.NewObject("account", map[string]value.Value{"balance": value.Int(10000)})
		return tx.Activate(oid, "T7")
	})

	withdraw := func(n int64) {
		e.Transact(func(tx *Tx) error {
			_, err := tx.Call(oid, "withdraw", value.Int(n))
			return err
		})
	}
	withdraw(500) // before 9:00 — outside any day window
	if rec.count() != 0 {
		t.Fatal("fired before dayBegin")
	}
	e.Clock().Advance(2 * time.Hour) // 10:00, day window open
	withdraw(50)                     // small: no fire
	withdraw(500)                    // first large withdrawal today → fire
	withdraw(800)                    // not the first → no fire
	if rec.count() != 1 {
		t.Fatalf("fires = %d, want 1", rec.count())
	}
	e.Clock().Advance(24 * time.Hour) // next day's 9:00 passed
	withdraw(500)                     // first large of the new day → fire
	if rec.count() != 2 {
		t.Fatalf("fires = %d, want 2", rec.count())
	}
}

func TestPersistenceAndRearm(t *testing.T) {
	dir := t.TempDir()
	rec := &recorder{}
	build := func() (*Engine, *schema.Class, ClassImpl) {
		cls, impl := accountClass(rec,
			schema.Trigger{Name: "Low", Perpetual: true, Event: "balance < 500"},
			schema.Trigger{Name: "T3", Perpetual: true, Event: "at time(HR=17)"})
		return nil, cls, impl
	}
	_, cls, impl := build()
	e, err := New(Options{Dir: dir, Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var oid store.OID
	e.Transact(func(tx *Tx) error {
		oid, _ = tx.NewObject("account", map[string]value.Value{"balance": value.Int(600)})
		tx.Activate(oid, "Low")
		tx.Activate(oid, "T3")
		return nil
	})
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(50)) // 550: no fire, but advances nothing
		return nil
	})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: activations (and automaton states) are durable.
	_, cls2, impl2 := build()
	e2, err := New(Options{Dir: dir, Start: time.Date(2026, 7, 5, 8, 0, 0, 0, time.UTC)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, err := e2.RegisterClass(cls2, impl2, nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.RearmTimers(); err != nil {
		t.Fatal(err)
	}
	e2.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(100)) // 450 → Low fires
		return nil
	})
	found := false
	for _, f := range rec.list() {
		if f == "Low" {
			found = true
		}
	}
	if !found {
		t.Fatal("Low did not fire after reopen")
	}
	e2.Clock().Advance(12 * time.Hour) // 20:00 — rearmed T3 fires
	foundT3 := false
	for _, f := range rec.list() {
		if f == "T3" {
			foundT3 = true
		}
	}
	if !foundT3 {
		t.Fatal("T3 timer not rearmed after reopen")
	}
}

func TestValidationErrors(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec)
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl)

	err := e.Transact(func(tx *Tx) error {
		_, err := tx.NewObject("nosuch", nil)
		return err
	})
	if err == nil {
		t.Fatal("NewObject of unknown class succeeded")
	}
	cases := []func(tx *Tx) error{
		func(tx *Tx) error {
			_, e := tx.NewObject("account", map[string]value.Value{"x": value.Int(1)})
			return e
		},
		func(tx *Tx) error {
			_, e := tx.NewObject("account", map[string]value.Value{"balance": value.Str("x")})
			return e
		},
		func(tx *Tx) error { _, e := tx.Call(oid, "nosuch"); return e },
		func(tx *Tx) error { _, e := tx.Call(oid, "deposit"); return e },
		func(tx *Tx) error { _, e := tx.Call(oid, "deposit", value.Str("x")); return e },
		func(tx *Tx) error { _, e := tx.Get(oid, "nosuch"); return e },
		func(tx *Tx) error { return tx.Set(oid, "nosuch", value.Int(1)) },
		func(tx *Tx) error { return tx.Set(oid, "balance", value.Str("x")) },
		func(tx *Tx) error { return tx.Activate(oid, "nosuch") },
		func(tx *Tx) error { return tx.Deactivate(oid, "nosuch") },
	}
	for i, fn := range cases {
		if err := e.Transact(fn); err == nil {
			t.Errorf("case %d succeeded, want error", i)
		}
	}
}

func TestRegisterClassErrors(t *testing.T) {
	rec := &recorder{}
	e := newEngine(t, Options{})
	// Missing method implementation.
	cls, impl := accountClass(rec)
	impl.Methods = map[string]MethodImpl{}
	if _, err := e.RegisterClass(cls, impl, nil); err == nil {
		t.Fatal("missing method impl accepted")
	}
	// Unbound trigger action.
	cls2, impl2 := accountClass(rec, schema.Trigger{Name: "T", Event: "after deposit"})
	delete(impl2.Actions, "T")
	if _, err := e.RegisterClass(cls2, impl2, nil); err == nil {
		t.Fatal("unbound action accepted")
	}
	// Duplicate registration.
	cls3, impl3 := accountClass(rec)
	if _, err := e.RegisterClass(cls3, impl3, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterClass(cls3, impl3, nil); err == nil {
		t.Fatal("duplicate class accepted")
	}
}

func TestDeleteObjectPostsBeforeDelete(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Del", Perpetual: true, Event: "before delete"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Del")

	e.Transact(func(tx *Tx) error { return tx.DeleteObject(oid) })
	if rec.count() != 1 {
		t.Fatalf("Del fired %d times", rec.count())
	}
	if e.Store().Exists(oid) {
		t.Fatal("object survived delete")
	}
}

func TestAbortRestoresDeletedObjectAndTriggerState(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Two", Perpetual: true, Event: "relative(after deposit, after deposit)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Two")

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		tx.DeleteObject(oid)
		return errors.New("abort")
	})
	if !e.Store().Exists(oid) {
		t.Fatal("aborted delete not undone")
	}
	// The aborted deposit must not count.
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	if rec.count() != 0 {
		t.Fatal("aborted deposit counted by committed-view trigger")
	}
}

func TestTriggerStateIntrospection(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Seq", Perpetual: true, Event: "relative(after deposit, after withdraw)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Seq")

	_, active, err := e.TriggerState(oid, "Seq")
	if err != nil || !active {
		t.Fatalf("state: active=%v err=%v", active, err)
	}
	if _, _, err := e.TriggerState(oid, "nosuch"); err == nil {
		t.Fatal("unknown trigger introspection succeeded")
	}
	if _, _, err := e.TriggerState(999, "Seq"); err == nil {
		t.Fatal("unknown object introspection succeeded")
	}
}

func TestHistoryRecording(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec)
	e := newEngine(t, Options{RecordHistories: -1})
	oid := setup(t, e, cls, impl)

	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		return nil
	})
	log := e.History(oid)
	if log == nil {
		t.Fatal("no history recorded")
	}
	// create + (tbegin, before deposit, after deposit, tcomplete ×1,
	// tcommit ×2 transactions) — at least 6 entries.
	if log.Len() < 6 {
		t.Fatalf("history has %d entries", log.Len())
	}
}

func TestTransactExplicitFinish(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec)
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl)

	// Explicit commit inside Transact is respected.
	if err := e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(5))
		return tx.Commit()
	}); err != nil {
		t.Fatal(err)
	}
	// Explicit abort then nil error: Transact returns nil, effects gone.
	if err := e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(7))
		return tx.Abort()
	}); err != nil {
		t.Fatal(err)
	}
	r, _ := e.Store().Get(oid)
	if !r.Fields["balance"].Equal(value.Int(1005)) {
		t.Fatalf("balance = %v", r.Fields["balance"])
	}
	// Double commit errors.
	tx := e.Begin()
	tx.Commit()
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit succeeded")
	}
}
