package engine

import (
	"fmt"

	"ode/internal/event"
	"ode/internal/store"
)

// Cohort delivery: when a cohort comes due, every member observes the
// same time event at the same instant (§3.1 — 'at'/'every' denote
// shared history points). Delivering member-by-member through postTimer
// would pay a system transaction, a lock acquire, and atomic metric
// updates per object; deliverCohort instead materializes the due
// members as a columnar run and streams them through stepBatch in ONE
// system transaction per (class, tick), amortizing those costs exactly
// as PostBatch does for method calls.
//
// Semantics relative to the per-object path (Options.PerObjectTimers),
// pinned by the equivalence test in timer_equiv_test.go:
//   - each member still observes one happening of the timer kind at the
//     cohort instant, delivered to every active trigger of the object in
//     dispatch order — identical automaton steps, firings, provenance
//     symbols, and action effects;
//   - members are visited in ascending OID order. The per-object path
//     orders same-instant deliveries by timer-registration order, which
//     for a fleet armed in creation order is the same thing; programs
//     must not rely on cross-OBJECT delivery order either way (the paper
//     orders events within an object's history, not across objects);
//   - the members share the system transaction, so an action may read
//     co-members' same-tick updates before commit. System transactions
//     post no transaction lifecycle events, so happening streams are
//     unchanged;
//   - on any member error the shared transaction aborts (rolling back
//     every member) and the whole tick is re-delivered through the
//     per-object path, giving each member its own transaction and any
//     per-object failure its own recorded error.

// plan returns the cohort's cached delivery plan for its class,
// rebuilding it when the class was re-registered. Only the clock-
// advancing goroutine touches it. A nil plan means the timer kind is
// outside the class alphabet (unreachable for an armed spec — arming
// resolved the trigger against the same alphabet).
func (co *cohort) plan(c *Class) *batchPhase {
	if co.ph != nil && co.phC == c {
		return co.ph
	}
	kind := event.TimerKind(co.ck.key)
	kix := c.Res.Alphabet.KindIndex(kind)
	if kix < 0 {
		return nil
	}
	ph := &batchPhase{
		kind:    kind,
		kindIx:  kix,
		kindID:  c.kindIDs[kix],
		entries: c.dispatch[kix],
	}
	ph.steps = make([]uint64, len(ph.entries))
	ph.evals = make([]uint64, len(ph.entries))
	ph.falses = make([]uint64, len(ph.entries))
	co.ph, co.phC = ph, c
	return ph
}

// deliverCohort posts one due tick of a cohort to the given members
// (sorted ascending) in one system transaction.
func (e *Engine) deliverCohort(co *cohort, oids []store.OID) {
	c := e.Class(co.ck.class)
	if c == nil {
		e.recordTimerErr(fmt.Errorf("engine: timer %q: class %q not registered", co.ck.key, co.ck.class))
		return
	}
	ph := co.plan(c)
	if c.monitor != nil || e.interpretMasks || ph == nil {
		// Combined monitoring and interpreted masks take paths the batch
		// plan does not compile; the per-object path is the definition.
		for _, oid := range oids {
			e.postTimer(oid, co.ck.key, "")
		}
		return
	}

	now := e.clk.Now()
	sys := e.beginSystem()
	// Narrow stepping: members are peeked, not accessed — stepBatch
	// registers a member as dirty (with a narrow activation-scalar
	// before-image) only when its automaton actually changes state, and
	// promotes it to a full image only when a trigger fires. A member
	// whose instances all self-loop on the tick — the steady state of a
	// monitoring-shaped `every` fleet — costs no clone, no WAL record,
	// and no epoch publication, which is what lets a 100k-object storm
	// sweep at memory speed.
	sys.narrowStep = true
	var bc batchCounters
	var delivered uint64
	err := func() error {
		for _, oid := range oids {
			if !e.st.Exists(oid) {
				continue
			}
			rec, err := sys.tx.Peek(oid)
			if err != nil {
				return fmt.Errorf("engine: timer %q on object %d: %w", co.ck.key, oid, err)
			}
			e.traceTimer(oid, co.ck.key, "")
			// TxID stays zero: time events belong to no user transaction,
			// and the per-object path stamps none either (provenance
			// equality depends on it).
			h := event.Happening{Kind: ph.kind, At: now}
			if err := sys.stepBatch(c, ph, oid, rec, &h, &bc); err != nil {
				return fmt.Errorf("engine: timer %q on object %d: %w", co.ck.key, oid, err)
			}
			delivered++
		}
		return nil
	}()
	if err != nil {
		sys.doAbort()
		e.recordTimerErr(err)
		// The abort rolled back every member's step; re-deliver the tick
		// one object at a time so unaffected members still observe it.
		ph.count = 0
		for i := range ph.entries {
			ph.steps[i], ph.evals[i], ph.falses[i] = 0, 0, 0
		}
		for _, oid := range oids {
			e.postTimer(oid, co.ck.key, "")
		}
		return
	}
	e.stats.timerPosts.Add(delivered)
	sys.flushTimerPhase(c, ph, &bc, now.UnixNano())
	if err := sys.Commit(); err != nil {
		e.recordTimerErr(fmt.Errorf("engine: timer %q cohort commit: %w", co.ck.key, err))
	}
}

// flushTimerPhase is flushBatch for a cohort's single phase: one atomic
// add per engine counter, one per-trigger metric flush, and the
// StageBatch flight summary for the tick.
func (tx *Tx) flushTimerPhase(c *Class, ph *batchPhase, bc *batchCounters, atNs int64) {
	if bc.happenings != 0 {
		tx.e.stats.happenings.Add(bc.happenings)
		c.met.HappeningN(bc.happenings)
	}
	if bc.steps != 0 {
		tx.e.stats.steps.Add(bc.steps)
	}
	if bc.maskEvals != 0 {
		tx.e.stats.maskEvals.Add(bc.maskEvals)
	}
	if bc.provSteps != 0 {
		tx.e.stats.provSteps.Add(bc.provSteps)
	}
	if ph.count != 0 {
		tx.e.flightBatch(atNs, tx.tx.ID(), c.nameID, ph.kindID, ph.count)
		ph.count = 0
	}
	for i := range ph.entries {
		if ph.steps[i] != 0 {
			ph.entries[i].t.met.StepN(ph.steps[i])
			ph.steps[i] = 0
		}
		if ph.evals[i] != 0 || ph.falses[i] != 0 {
			ph.entries[i].t.met.MaskEvalN(ph.evals[i], ph.falses[i])
			ph.evals[i], ph.falses[i] = 0, 0
		}
	}
}
