package engine

import (
	"errors"
	"fmt"
	"sort"

	"ode/internal/algebra"
	"ode/internal/schema"
	"ode/internal/store"
)

// ErrOracleDivergence wraps every mismatch VerifyOracle reports.
var ErrOracleDivergence = errors.New("engine: oracle divergence")

// VerifyOracle replays every trigger instance's recorded symbol
// history through the instance's compact automaton and through the §4
// denotational semantics (algebra.FiringPoints), asserting that
//
//   - the automaton accepts at exactly the history points the
//     denotational semantics labels — the trigger-firing sequence of
//     the instance's current activation epoch, and
//   - the replayed automaton ends in exactly the state stored on the
//     object (for committed-view triggers, the state that gob
//     persistence carried across any crash and recovery).
//
// It requires Options.ShadowOracle (which records the histories) and
// a quiescent engine. Because TrigActivation.Shadow is part of the
// record, it is rolled back on abort and persisted on commit exactly
// like State — so after a crash and reopen, VerifyOracle checks that
// recovery reconstructed automaton states consistent with the §4
// semantics of the surviving history. Whole-view instances are
// checked against the engine's volatile whole-history tables instead
// (those survive aborts but not restarts, matching §6).
func (e *Engine) VerifyOracle() error {
	if !e.shadowOracle {
		return errors.New("engine: VerifyOracle requires Options.ShadowOracle")
	}
	oids := e.st.OIDs()
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		rec, err := e.st.Get(oid)
		if err != nil {
			return err
		}
		c, err := e.classOf(rec)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(rec.Triggers))
		for name := range rec.Triggers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t := c.Trigger(name)
			if t == nil {
				continue // e.g. the combined-monitor slot
			}
			act := rec.Triggers[name]
			hist := act.Shadow
			state := act.State
			if t.View == schema.WholeView {
				e.wholeMu.Lock()
				hist = append([]int(nil), e.wholeShadow[instanceKey{oid, name}]...)
				st, ok := e.whole[instanceKey{oid, name}]
				if !ok {
					st = t.Auto.Start()
				}
				state = st
				e.wholeMu.Unlock()
			}
			if err := e.verifyInstance(oid, t, hist, state); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyInstance replays one instance's history.
func (e *Engine) verifyInstance(oid store.OID, t *Trigger, hist []int, state int) error {
	labels := algebra.FiringPoints(t.Res.Expr, hist)
	cur := t.Auto.Start()
	for p, sym := range hist {
		cur = t.Auto.Next(cur, sym)
		if got, want := t.Auto.Accept(cur), labels[p]; got != want {
			return fmt.Errorf("%w: trigger %s at object %d, history point %d/%d (symbol %d): automaton accept=%v, §4 oracle=%v (history %v)",
				ErrOracleDivergence, t.Res.Name, oid, p, len(hist), sym, got, want, hist)
		}
	}
	if cur != state {
		return fmt.Errorf("%w: trigger %s at object %d: replayed automaton state %d, stored state %d (history %v)",
			ErrOracleDivergence, t.Res.Name, oid, cur, state, hist)
	}
	return nil
}
