package engine

import (
	"ode/internal/obs"
	"ode/internal/store"
)

// The always-on flight recorder. Unlike the optional tracer
// (trace.go), these record points run unconditionally: each is a
// handful of atomic stores with interned uint16 name IDs, no
// allocation and no lock, so the masked non-firing posting hot path
// keeps its zero-alloc budget. The recorder captures pipeline-level
// events only — happenings, firings, timer deliveries and transaction
// lifecycle — one record per happening regardless of how many triggers
// it touches; per-trigger transition detail lives in the provenance
// rings (explain.go).

// Flight exposes the engine's flight recorder.
func (e *Engine) Flight() *obs.Flight { return e.flight }

// Partition returns the engine's partition id (0 for unpartitioned
// engines; see Options.Partition).
func (e *Engine) Partition() int { return e.partition }

// FlightEvents dumps the last recorder entries in chronological order
// (last <= 0 means the full retained window), stamped with the
// engine's partition id — each partition owns its own recorder, so the
// stamp happens here at dump time, never on the record path.
func (e *Engine) FlightEvents(last int) []obs.FlightEvent {
	evs := e.flight.Events(last)
	if e.partition != 0 {
		for i := range evs {
			evs[i].Part = e.partition
		}
	}
	return evs
}

// flightHappening records the pipeline entry of one happening.
func (e *Engine) flightHappening(atNs int64, txid uint64, oid store.OID, classID, kindID uint16) {
	e.flight.Record(obs.StageHappening, atNs, txid, uint64(oid), classID, 0, kindID, 0, 0, true, 0)
}

// flightBatch records one PostBatch happening run: count happenings of
// one kind, summarized as a single StageBatch event (count rides in the
// from slot).
func (e *Engine) flightBatch(atNs int64, txid uint64, classID, kindID uint16, count uint64) {
	e.flight.Record(obs.StageBatch, atNs, txid, 0, classID, 0, kindID, int(count), 0, true, 0)
}

// flightFire records one trigger firing with its action latency.
func (e *Engine) flightFire(txid uint64, oid store.OID, classID, trigID uint16, ok bool, durNs int64) {
	e.flight.Record(obs.StageFire, e.clk.Now().UnixNano(), txid, uint64(oid), classID, trigID, 0, 0, 0, ok, durNs)
}

// flightTimer records one time-event delivery; the timer key is
// interned (a mutexed map probe — timer posts are off the zero-alloc
// path).
func (e *Engine) flightTimer(oid store.OID, key, onlyTrigger string) {
	var trigID uint16
	if onlyTrigger != "" {
		trigID = e.names.Intern(onlyTrigger)
	}
	e.flight.Record(obs.StageTimer, e.clk.Now().UnixNano(), 0, uint64(oid),
		0, trigID, e.names.Intern(key), 0, 0, true, 0)
}

// flightEgress records one batch of firing records becoming visible on
// the durable egress feed: from/to carry the batch's first and last
// sequence numbers, the oid slot its size.
func (e *Engine) flightEgress(first, last uint64, n int) {
	e.flight.Record(obs.StageEgress, e.clk.Now().UnixNano(), 0, uint64(n),
		0, 0, 0, int(first), int(last), true, 0)
}

// flightTx records a transaction lifecycle stage; the kind slot
// carries the interned "user" / "system" marker.
func (e *Engine) flightTx(stage obs.Stage, txid uint64, system bool) {
	kind := e.txUserID
	if system {
		kind = e.txSysID
	}
	e.flight.Record(stage, e.clk.Now().UnixNano(), txid, 0, 0, 0, kind, 0, 0, true, 0)
}
