package engine

import (
	"fmt"
	"sort"
	"testing"

	"ode/internal/algebra"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// TestFeedProvenanceEquivalence is the feed-vs-provenance cross-check:
// the durable firing feed replayed from seq 0 must describe exactly the
// firings the provenance layer explains. Concretely:
//
//   - the multiset of (trigger, object) firings on the feed equals the
//     multiset the actions observed;
//   - every instance that appears on the feed has an Explain chain
//     ending at an accepting transition, and replaying that chain
//     through the §4 oracle DFA accepts — with the chain's final
//     happening kind matching the instance's latest feed record;
//   - an instance with no feed records must not explain as fired;
//   - the feed survives a restart bit-identically (replaying from seq 0
//     is reproducible), with the head and EgressSeq gauge agreeing.
func TestFeedProvenanceEquivalence(t *testing.T) {
	dir := t.TempDir()
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Audit", Event: "prior(after deposit, after withdraw)"},
		schema.Trigger{Name: "Big", Perpetual: true, Event: "after withdraw(amount) && amount > 10"})
	// Re-key the recorder entries by trigger/object so they compare
	// against feed records.
	for name := range impl.Actions {
		n := name
		impl.Actions[n] = func(ctx *ActionCtx) error {
			rec.add(fmt.Sprintf("%s/%d", n, ctx.Self))
			return nil
		}
	}
	e, err := New(Options{Dir: dir, ShadowOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	a := setup(t, e, cls, impl, "Audit", "Big")
	var b store.OID
	err = e.Transact(func(tx *Tx) error {
		var err error
		b, err = tx.NewObject("account", nil)
		if err != nil {
			return err
		}
		return tx.Activate(b, "Big")
	})
	if err != nil {
		t.Fatal(err)
	}

	// Workload: Audit fires once on a (then deactivates); Big fires on
	// both objects, masked out for the small withdrawal on b.
	steps := []func(tx *Tx) error{
		func(tx *Tx) error {
			if _, err := tx.Call(a, "deposit", value.Int(50)); err != nil {
				return err
			}
			_, err := tx.Call(a, "withdraw", value.Int(20))
			return err
		},
		func(tx *Tx) error {
			if _, err := tx.Call(b, "withdraw", value.Int(5)); err != nil { // masked: no firing
				return err
			}
			_, err := tx.Call(b, "withdraw", value.Int(30))
			return err
		},
		func(tx *Tx) error {
			_, err := tx.Call(a, "withdraw", value.Int(99))
			return err
		},
	}
	for i, step := range steps {
		if err := e.Transact(step); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}

	feed, head := e.Firings(0, 0)
	if len(feed) == 0 {
		t.Fatal("workload produced an empty feed")
	}

	// Feed sequencing: strictly increasing, head at the last record,
	// stats gauges in agreement.
	for i := 1; i < len(feed); i++ {
		if feed[i].Seq <= feed[i-1].Seq {
			t.Fatalf("feed seq not strictly increasing at %d: %d then %d", i, feed[i-1].Seq, feed[i].Seq)
		}
	}
	if head != feed[len(feed)-1].Seq {
		t.Fatalf("head %d != last record seq %d", head, feed[len(feed)-1].Seq)
	}
	if s := e.Stats(); s.EgressSeq != head || s.EgressAppended != uint64(len(feed)) {
		t.Fatalf("stats EgressSeq=%d EgressAppended=%d, feed has head=%d len=%d",
			s.EgressSeq, s.EgressAppended, head, len(feed))
	}

	// (1) The feed is exactly the firings the actions observed.
	var fromFeed []string
	for _, r := range feed {
		fromFeed = append(fromFeed, fmt.Sprintf("%s/%d", r.Trigger, r.OID))
	}
	fromActions := rec.list()
	sort.Strings(fromFeed)
	sort.Strings(fromActions)
	if fmt.Sprint(fromFeed) != fmt.Sprint(fromActions) {
		t.Fatalf("feed firings %v != action firings %v", fromFeed, fromActions)
	}

	// (2) Every instance on the feed explains as fired, the chain
	// replays through the oracle DFA to acceptance, the §4 semantics
	// agree it is an occurrence, and the chain's accepting step names
	// the same happening kind as the instance's latest feed record.
	latest := map[string]store.FiringRecord{}
	for _, r := range feed {
		latest[fmt.Sprintf("%s/%d", r.Trigger, r.OID)] = r
	}
	for key, last := range latest {
		ex, err := e.Explain(last.Trigger, last.OID)
		if err != nil {
			t.Fatalf("Explain(%s): %v", key, err)
		}
		if !ex.Fired || !ex.Complete {
			t.Fatalf("%s is on the feed but Explain gives fired=%v complete=%v", key, ex.Fired, ex.Complete)
		}
		fin := ex.Steps[len(ex.Steps)-1]
		if !fin.Accepted {
			t.Fatalf("%s: chain does not end at an accepting transition: %+v", key, fin)
		}
		if fin.Kind != last.Kind {
			t.Fatalf("%s: chain fires on %q, latest feed record says %q", key, fin.Kind, last.Kind)
		}
		tr := e.Class(last.Class).Trigger(last.Trigger)
		final := replayChain(t, tr, ex)
		if !tr.Oracle().Accept[final] {
			t.Fatalf("%s: replayed chain ends in non-accepting state %d", key, final)
		}
		syms := make([]int, len(ex.Steps))
		for i, s := range ex.Steps {
			syms[i] = s.Sym
		}
		if !algebra.Occurs(tr.Res.Expr, syms) {
			t.Fatalf("%s: §4 oracle rejects chain %v as an occurrence of %s", key, syms, tr.Res.Name)
		}
	}

	// (3) The converse: b's Audit never fired (never activated there),
	// so it must be absent from the feed and not explain as fired.
	if _, ok := latest[fmt.Sprintf("Audit/%d", b)]; ok {
		t.Fatalf("Audit/%d on the feed but was never activated", b)
	}
	if ex, err := e.Explain("Audit", b); err != nil {
		t.Fatal(err)
	} else if ex.Fired {
		t.Fatalf("Audit/%d explains as fired but has no feed records", b)
	}

	// (4) Replay from seq 0 after a restart: the recovered feed is
	// bit-identical and the head gauge agrees.
	e.Close()
	e2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	feed2, head2 := e2.Firings(0, 0)
	if head2 != head || len(feed2) != len(feed) {
		t.Fatalf("recovered feed head=%d len=%d, want head=%d len=%d", head2, len(feed2), head, len(feed))
	}
	for i := range feed {
		if feed2[i] != feed[i] {
			t.Fatalf("recovered feed diverged at %d: %+v != %+v", i, feed2[i], feed[i])
		}
	}
}
