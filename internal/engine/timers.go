package engine

import (
	"fmt"
	"sync"
	"time"

	"ode/internal/clock"
	"ode/internal/event"
	"ode/internal/evlang"
	"ode/internal/store"
)

// timerTable schedules the time events of active trigger instances
// (§3.1 item 3). 'at' and 'every' specifications denote absolute
// instants, so one armed timer per (object, specification) is shared
// by every trigger that mentions it — all of them observe the same
// history point. 'after' is relative to the arming of the trigger
// (§3.1: "scheduled to occur after a specified period ... when the
// trigger is armed"), so it is per (object, trigger) and its happening
// is delivered only to that trigger.
type timerTable struct {
	e  *Engine
	mu sync.Mutex

	shared map[sharedKey]*sharedTimer
	// oneShots holds the pending 'after' timers per trigger instance.
	oneShots map[instanceKey][]clock.TimerID
	// sharedRefs counts trigger instances per shared timer.
	sharedRefs map[sharedKey]map[string]bool
}

type sharedKey struct {
	oid store.OID
	key string // canonical time-event key, e.g. "at time(HR=17)"
}

type sharedTimer struct {
	id       clock.TimerID
	canceled bool
}

func newTimerTable(e *Engine) *timerTable {
	return &timerTable{
		e:          e,
		shared:     map[sharedKey]*sharedTimer{},
		oneShots:   map[instanceKey][]clock.TimerID{},
		sharedRefs: map[sharedKey]map[string]bool{},
	}
}

// arm schedules every time event of a freshly activated trigger.
func (tt *timerTable) arm(oid store.OID, t *Trigger) {
	for _, req := range t.Res.Timers {
		switch req.Mode {
		case evlang.TimeAfter:
			tt.armAfter(oid, t.Res.Name, req)
		default:
			tt.armShared(oid, t.Res.Name, req)
		}
	}
}

func (tt *timerTable) armAfter(oid store.OID, trig string, req evlang.TimerReq) {
	key := instanceKey{oid, trig}
	id := tt.e.clk.After(req.Spec.Period(), func(time.Time) {
		tt.e.postTimer(oid, req.Key, trig)
	})
	tt.mu.Lock()
	tt.oneShots[key] = append(tt.oneShots[key], id)
	tt.mu.Unlock()
}

func (tt *timerTable) armShared(oid store.OID, trig string, req evlang.TimerReq) {
	sk := sharedKey{oid, req.Key}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	refs := tt.sharedRefs[sk]
	if refs == nil {
		refs = map[string]bool{}
		tt.sharedRefs[sk] = refs
	}
	refs[trig] = true
	if _, running := tt.shared[sk]; running {
		return
	}
	st := &sharedTimer{}
	tt.shared[sk] = st
	switch req.Mode {
	case evlang.TimeEvery:
		st.id = tt.e.clk.Every(req.Spec.Period(), func(time.Time) {
			tt.mu.Lock()
			dead := st.canceled
			tt.mu.Unlock()
			if !dead {
				tt.e.postTimer(oid, req.Key, "")
			}
		})
	case evlang.TimeAt:
		tt.scheduleAtLocked(sk, st, req)
	}
}

// scheduleAtLocked arms the next calendar match of an 'at' spec; the
// callback re-arms after posting, which is how 'at' specifications
// with omitted high-order fields recur. Called with tt.mu held.
func (tt *timerTable) scheduleAtLocked(sk sharedKey, st *sharedTimer, req evlang.TimerReq) {
	next, ok := req.Spec.NextMatch(tt.e.clk.Now())
	if !ok {
		// A fully-dated spec in the past never fires again.
		delete(tt.shared, sk)
		delete(tt.sharedRefs, sk)
		return
	}
	st.id = tt.e.clk.At(next, func(time.Time) {
		tt.mu.Lock()
		dead := st.canceled
		tt.mu.Unlock()
		if dead {
			return
		}
		tt.e.postTimer(sk.oid, req.Key, "")
		tt.mu.Lock()
		if !st.canceled {
			tt.scheduleAtLocked(sk, st, req)
		}
		tt.mu.Unlock()
	})
}

// disarm removes a trigger instance's interest in its timers,
// cancelling any timer no instance needs anymore.
func (tt *timerTable) disarm(oid store.OID, t *Trigger) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	ik := instanceKey{oid, t.Res.Name}
	for _, id := range tt.oneShots[ik] {
		tt.e.clk.Cancel(id)
	}
	delete(tt.oneShots, ik)
	for _, req := range t.Res.Timers {
		if req.Mode == evlang.TimeAfter {
			continue
		}
		sk := sharedKey{oid, req.Key}
		refs := tt.sharedRefs[sk]
		delete(refs, t.Res.Name)
		if len(refs) == 0 {
			if st, ok := tt.shared[sk]; ok {
				st.canceled = true
				tt.e.clk.Cancel(st.id)
				delete(tt.shared, sk)
			}
			delete(tt.sharedRefs, sk)
		}
	}
}

// disarmObject cancels every timer attached to a deleted object.
func (tt *timerTable) disarmObject(oid store.OID) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for ik, ids := range tt.oneShots {
		if ik.oid != oid {
			continue
		}
		for _, id := range ids {
			tt.e.clk.Cancel(id)
		}
		delete(tt.oneShots, ik)
	}
	for sk, st := range tt.shared {
		if sk.oid != oid {
			continue
		}
		st.canceled = true
		tt.e.clk.Cancel(st.id)
		delete(tt.shared, sk)
		delete(tt.sharedRefs, sk)
	}
}

// postTimer delivers a time event to the relevant object from a system
// transaction (time events belong to no user transaction). An empty
// onlyTrigger delivers to every active trigger of the object.
func (e *Engine) postTimer(oid store.OID, key string, onlyTrigger string) {
	if !e.st.Exists(oid) {
		return
	}
	e.stats.timerPosts.Add(1)
	e.traceTimer(oid, key, onlyTrigger)
	sys := e.beginSystem()
	rec, err := sys.access(oid)
	if err != nil {
		sys.doAbort()
		e.recordTimerErr(fmt.Errorf("engine: timer %q on object %d: %w", key, oid, err))
		return
	}
	h := event.Happening{Kind: event.TimerKind(key), At: e.clk.Now()}
	if _, err := sys.step(oid, rec, h, onlyTrigger); err != nil {
		sys.doAbort()
		e.recordTimerErr(fmt.Errorf("engine: timer %q on object %d: %w", key, oid, err))
		return
	}
	if err := sys.Commit(); err != nil {
		e.recordTimerErr(fmt.Errorf("engine: timer %q on object %d commit: %w", key, oid, err))
	}
}

// hasOneShots reports whether an 'after' timer is already pending for
// the instance (reconciliation must not double-arm: the delay is
// relative to the original arming).
func (tt *timerTable) hasOneShots(ik instanceKey) bool {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return len(tt.oneShots[ik]) > 0
}

// reconcile re-aligns the timer table with an object's (possibly just
// rolled back) activation record: triggers now inactive lose their
// timers, triggers now active regain their shared ones. Activation and
// deactivation arm and disarm eagerly inside the transaction, so an
// abort leaves the table out of step until this runs.
func (tt *timerTable) reconcile(oid store.OID, c *Class, rec *store.Record) {
	for _, t := range c.Triggers {
		if len(t.Res.Timers) == 0 {
			continue
		}
		act, ok := rec.Triggers[t.Res.Name]
		if !ok || !act.Active {
			tt.disarm(oid, t)
			continue
		}
		// Re-arm shared timers (idempotent). 'after' one-shots cannot
		// be faithfully re-created — their delay was anchored at the
		// aborted activation — so only restore them if none pending.
		for _, req := range t.Res.Timers {
			if req.Mode == evlang.TimeAfter {
				if !tt.hasOneShots(instanceKey{oid, t.Res.Name}) {
					tt.armAfter(oid, t.Res.Name, req)
				}
			} else {
				tt.armShared(oid, t.Res.Name, req)
			}
		}
	}
}
