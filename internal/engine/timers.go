package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ode/internal/clock"
	"ode/internal/event"
	"ode/internal/evlang"
	"ode/internal/store"
)

// timerTable schedules the time events of active trigger instances
// (§3.1 item 3). 'at' and 'every' specifications denote absolute
// instants, so every trigger that mentions one observes the same
// history point — and, because the instants are calendar-shared, every
// OBJECT of a class on the same canonical specification comes due at
// the same tick. The table exploits that with cohorts: one clock timer
// per (class, spec, phase) holding the member OID set, instead of one
// timer + closure per object. A due cohort delivers its tick through
// the columnar stepBatch path in one system transaction per (class,
// tick) — see timerbatch.go. 'after' is relative to the arming of the
// trigger (§3.1: "scheduled to occur after a specified period ... when
// the trigger is armed"), so it stays per (object, trigger) and its
// happening is delivered only to that trigger.
//
// Options.PerObjectTimers restores the pre-cohort layout — one shared
// timer per (object, spec) delivering one system transaction per
// object — as the semantic baseline the cohort path is equivalence-
// tested (and benchmarked) against.
type timerTable struct {
	e  *Engine
	mu sync.Mutex

	// cohorts maps (class, canonical spec key, phase) to the single
	// wheel entry shared by all member objects. byObj indexes each
	// object's memberships by spec key, so disarming touches only the
	// object's own cohorts. An object has at most one cohort per key
	// (re-arms are idempotent and keep the original schedule).
	cohorts map[cohortKey]*cohort
	byObj   map[store.OID]map[string]*cohort

	// oneShots holds the pending 'after' timers, indexed per object and
	// then per trigger so disarming an object (or instance) never scans
	// other objects' entries.
	oneShots map[store.OID]map[string][]clock.TimerID

	// Legacy per-object layout (Options.PerObjectTimers).
	perObject  bool
	shared     map[sharedKey]*sharedTimer
	sharedRefs map[sharedKey]map[string]bool
}

type sharedKey struct {
	oid store.OID
	key string // canonical time-event key, e.g. "at time(HR=17)"
}

type sharedTimer struct {
	id       clock.TimerID
	canceled bool
}

// cohortKey identifies one shared schedule. For 'every' specs the
// phase is the arm instant modulo the period (in nanoseconds): two
// objects share a cohort only when their periodic instants coincide
// exactly, which keeps per-object firing times identical to the
// per-object layout. 'at' specs denote absolute calendar instants and
// are phase-free.
type cohortKey struct {
	class string
	key   string
	phase int64
}

// cohort is one shared wheel entry: the member set, the armed clock
// timer, and the cached columnar delivery plan (timerbatch.go).
type cohort struct {
	ck       cohortKey
	mode     evlang.TimeMode
	spec     clock.TimeSpec
	id       clock.TimerID
	canceled bool
	// members maps each member OID to the trigger names holding a
	// reference to the spec (all of them observe the same instant).
	members map[store.OID]map[string]bool
	// scratch is the due-snapshot buffer, reused tick to tick; ph/phC
	// cache the delivery plan. Both are touched only by the clock-
	// advancing goroutine.
	scratch []store.OID
	ph      *batchPhase
	phC     *Class
}

func newTimerTable(e *Engine, perObject bool) *timerTable {
	return &timerTable{
		e:          e,
		cohorts:    map[cohortKey]*cohort{},
		byObj:      map[store.OID]map[string]*cohort{},
		oneShots:   map[store.OID]map[string][]clock.TimerID{},
		perObject:  perObject,
		shared:     map[sharedKey]*sharedTimer{},
		sharedRefs: map[sharedKey]map[string]bool{},
	}
}

// arm schedules every time event of a freshly activated trigger.
func (tt *timerTable) arm(oid store.OID, c *Class, t *Trigger) {
	for _, req := range t.Res.Timers {
		switch req.Mode {
		case evlang.TimeAfter:
			tt.armAfter(oid, t.Res.Name, req)
		default:
			tt.armShared(oid, c, t.Res.Name, req)
		}
	}
}

func (tt *timerTable) armAfter(oid store.OID, trig string, req evlang.TimerReq) {
	id := tt.e.clk.After(req.Spec.Period(), func(time.Time) {
		tt.e.postTimer(oid, req.Key, trig)
	})
	tt.mu.Lock()
	shots := tt.oneShots[oid]
	if shots == nil {
		shots = map[string][]clock.TimerID{}
		tt.oneShots[oid] = shots
	}
	shots[trig] = append(shots[trig], id)
	tt.mu.Unlock()
}

func (tt *timerTable) armShared(oid store.OID, c *Class, trig string, req evlang.TimerReq) {
	if tt.perObject {
		tt.armSharedLegacy(oid, trig, req)
		return
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if obj := tt.byObj[oid]; obj != nil {
		if co := obj[req.Key]; co != nil {
			// Already a member via another trigger or an earlier arm:
			// keep the original schedule (idempotent re-arm, exactly as
			// the per-object shared timer behaved).
			co.members[oid][trig] = true
			return
		}
	}
	ck := cohortKey{class: c.Schema.Name, key: req.Key}
	var period time.Duration
	if req.Mode == evlang.TimeEvery {
		period = req.Spec.Period()
		if period > 0 {
			ck.phase = tt.e.clk.Now().UnixNano() % int64(period)
		}
	}
	co := tt.cohorts[ck]
	if co == nil {
		co = &cohort{ck: ck, mode: req.Mode, spec: req.Spec, members: map[store.OID]map[string]bool{}}
		switch req.Mode {
		case evlang.TimeEvery:
			co.id = tt.e.clk.Every(period, func(time.Time) { tt.fireCohort(co) })
		case evlang.TimeAt:
			if !tt.scheduleCohortAtLocked(co) {
				// A fully-dated spec in the past never fires again.
				return
			}
		}
		tt.cohorts[ck] = co
	}
	mem := co.members[oid]
	if mem == nil {
		mem = map[string]bool{}
		co.members[oid] = mem
	}
	mem[trig] = true
	obj := tt.byObj[oid]
	if obj == nil {
		obj = map[string]*cohort{}
		tt.byObj[oid] = obj
	}
	obj[req.Key] = co
}

// scheduleCohortAtLocked arms the next calendar match of an 'at'
// cohort; the callback re-arms after delivering, which is how 'at'
// specifications with omitted high-order fields recur. Called with
// tt.mu held; reports false when the spec never matches again.
func (tt *timerTable) scheduleCohortAtLocked(co *cohort) bool {
	next, ok := co.spec.NextMatch(tt.e.clk.Now())
	if !ok {
		return false
	}
	co.id = tt.e.clk.At(next, func(time.Time) {
		tt.fireCohort(co)
		tt.mu.Lock()
		if !co.canceled && !tt.scheduleCohortAtLocked(co) {
			tt.removeCohortLocked(co)
		}
		tt.mu.Unlock()
	})
	return true
}

// removeCohortLocked drops a cohort and every membership reference to
// it. Called with tt.mu held.
func (tt *timerTable) removeCohortLocked(co *cohort) {
	co.canceled = true
	for oid := range co.members {
		if obj := tt.byObj[oid]; obj != nil {
			delete(obj, co.ck.key)
			if len(obj) == 0 {
				delete(tt.byObj, oid)
			}
		}
	}
	delete(tt.cohorts, co.ck)
}

// fireCohort snapshots the due members and delivers the tick through
// the columnar batch path (timerbatch.go). Members are delivered in
// ascending OID order — the deterministic order the cohort-vs-
// per-object equivalence proof pins.
func (tt *timerTable) fireCohort(co *cohort) {
	tt.mu.Lock()
	if co.canceled || len(co.members) == 0 {
		tt.mu.Unlock()
		return
	}
	co.scratch = co.scratch[:0]
	for oid := range co.members {
		co.scratch = append(co.scratch, oid)
	}
	oids := co.scratch
	tt.mu.Unlock()
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	tt.e.deliverCohort(co, oids)
}

// armSharedLegacy is the pre-cohort layout: one shared timer per
// (object, spec), one system transaction per delivery.
func (tt *timerTable) armSharedLegacy(oid store.OID, trig string, req evlang.TimerReq) {
	sk := sharedKey{oid, req.Key}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	refs := tt.sharedRefs[sk]
	if refs == nil {
		refs = map[string]bool{}
		tt.sharedRefs[sk] = refs
	}
	refs[trig] = true
	if _, running := tt.shared[sk]; running {
		return
	}
	st := &sharedTimer{}
	tt.shared[sk] = st
	switch req.Mode {
	case evlang.TimeEvery:
		st.id = tt.e.clk.Every(req.Spec.Period(), func(time.Time) {
			tt.mu.Lock()
			dead := st.canceled
			tt.mu.Unlock()
			if !dead {
				tt.e.postTimer(oid, req.Key, "")
			}
		})
	case evlang.TimeAt:
		tt.scheduleAtLocked(sk, st, req)
	}
}

// scheduleAtLocked arms the next calendar match of a legacy per-object
// 'at' spec. Called with tt.mu held.
func (tt *timerTable) scheduleAtLocked(sk sharedKey, st *sharedTimer, req evlang.TimerReq) {
	next, ok := req.Spec.NextMatch(tt.e.clk.Now())
	if !ok {
		// A fully-dated spec in the past never fires again.
		delete(tt.shared, sk)
		delete(tt.sharedRefs, sk)
		return
	}
	st.id = tt.e.clk.At(next, func(time.Time) {
		tt.mu.Lock()
		dead := st.canceled
		tt.mu.Unlock()
		if dead {
			return
		}
		tt.e.postTimer(sk.oid, req.Key, "")
		tt.mu.Lock()
		if !st.canceled {
			tt.scheduleAtLocked(sk, st, req)
		}
		tt.mu.Unlock()
	})
}

// disarm removes a trigger instance's interest in its timers,
// cancelling any timer no instance needs anymore.
func (tt *timerTable) disarm(oid store.OID, t *Trigger) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	tt.cancelOneShotsLocked(oid, t.Res.Name)
	for _, req := range t.Res.Timers {
		if req.Mode == evlang.TimeAfter {
			continue
		}
		if tt.perObject {
			tt.releaseSharedLocked(oid, t.Res.Name, req.Key)
			continue
		}
		tt.leaveCohortLocked(oid, t.Res.Name, req.Key)
	}
}

func (tt *timerTable) cancelOneShotsLocked(oid store.OID, trig string) {
	shots := tt.oneShots[oid]
	if shots == nil {
		return
	}
	for _, id := range shots[trig] {
		tt.e.clk.Cancel(id)
	}
	delete(shots, trig)
	if len(shots) == 0 {
		delete(tt.oneShots, oid)
	}
}

func (tt *timerTable) leaveCohortLocked(oid store.OID, trig, key string) {
	obj := tt.byObj[oid]
	co := obj[key]
	if co == nil {
		return
	}
	mem := co.members[oid]
	delete(mem, trig)
	if len(mem) > 0 {
		return
	}
	delete(co.members, oid)
	delete(obj, key)
	if len(obj) == 0 {
		delete(tt.byObj, oid)
	}
	if len(co.members) == 0 {
		co.canceled = true
		tt.e.clk.Cancel(co.id)
		delete(tt.cohorts, co.ck)
	}
}

func (tt *timerTable) releaseSharedLocked(oid store.OID, trig, key string) {
	sk := sharedKey{oid, key}
	refs := tt.sharedRefs[sk]
	delete(refs, trig)
	if len(refs) == 0 {
		if st, ok := tt.shared[sk]; ok {
			st.canceled = true
			tt.e.clk.Cancel(st.id)
			delete(tt.shared, sk)
		}
		delete(tt.sharedRefs, sk)
	}
}

// disarmObject cancels every timer attached to a deleted object. The
// per-OID indexes make this O(the object's own timers).
func (tt *timerTable) disarmObject(oid store.OID) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for _, ids := range tt.oneShots[oid] {
		for _, id := range ids {
			tt.e.clk.Cancel(id)
		}
	}
	delete(tt.oneShots, oid)
	for key, co := range tt.byObj[oid] {
		delete(co.members, oid)
		if len(co.members) == 0 {
			co.canceled = true
			tt.e.clk.Cancel(co.id)
			delete(tt.cohorts, co.ck)
		}
		_ = key
	}
	delete(tt.byObj, oid)
	if tt.perObject {
		for sk, st := range tt.shared {
			if sk.oid != oid {
				continue
			}
			st.canceled = true
			tt.e.clk.Cancel(st.id)
			delete(tt.shared, sk)
			delete(tt.sharedRefs, sk)
		}
	}
}

// postTimer delivers a time event to one object from a system
// transaction (time events belong to no user transaction). An empty
// onlyTrigger delivers to every active trigger of the object. This is
// the per-object path: 'after' one-shots, the PerObjectTimers
// baseline, classes outside the batch plan's reach, and the error-
// recovery fallback of cohort delivery all come through here.
func (e *Engine) postTimer(oid store.OID, key string, onlyTrigger string) {
	if !e.st.Exists(oid) {
		return
	}
	e.stats.timerPosts.Add(1)
	e.traceTimer(oid, key, onlyTrigger)
	sys := e.beginSystem()
	rec, err := sys.access(oid)
	if err != nil {
		sys.doAbort()
		e.recordTimerErr(fmt.Errorf("engine: timer %q on object %d: %w", key, oid, err))
		return
	}
	h := event.Happening{Kind: event.TimerKind(key), At: e.clk.Now()}
	if _, err := sys.step(oid, rec, h, onlyTrigger); err != nil {
		sys.doAbort()
		e.recordTimerErr(fmt.Errorf("engine: timer %q on object %d: %w", key, oid, err))
		return
	}
	if err := sys.Commit(); err != nil {
		e.recordTimerErr(fmt.Errorf("engine: timer %q on object %d commit: %w", key, oid, err))
	}
}

// hasOneShots reports whether an 'after' timer is already pending for
// the instance (reconciliation must not double-arm: the delay is
// relative to the original arming).
func (tt *timerTable) hasOneShots(ik instanceKey) bool {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return len(tt.oneShots[ik.oid][ik.trig]) > 0
}

// reconcile re-aligns the timer table with an object's (possibly just
// rolled back) activation record: triggers now inactive lose their
// timers, triggers now active regain their shared ones. Activation and
// deactivation arm and disarm eagerly inside the transaction, so an
// abort leaves the table out of step until this runs.
func (tt *timerTable) reconcile(oid store.OID, c *Class, rec *store.Record) {
	for _, t := range c.Triggers {
		if len(t.Res.Timers) == 0 {
			continue
		}
		act, ok := rec.Triggers[t.Res.Name]
		if !ok || !act.Active {
			tt.disarm(oid, t)
			continue
		}
		// Re-arm shared timers (idempotent). 'after' one-shots cannot
		// be faithfully re-created — their delay was anchored at the
		// aborted activation — so only restore them if none pending.
		for _, req := range t.Res.Timers {
			if req.Mode == evlang.TimeAfter {
				if !tt.hasOneShots(instanceKey{oid, t.Res.Name}) {
					tt.armAfter(oid, t.Res.Name, req)
				}
			} else {
				tt.armShared(oid, c, t.Res.Name, req)
			}
		}
	}
}

// sharedCount returns the number of live shared-schedule entries —
// cohorts, or per-object shared timers under PerObjectTimers.
func (tt *timerTable) sharedCount() int {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return len(tt.cohorts) + len(tt.shared)
}

// TimerSchedule returns the shared ('at'/'every') timer schedule as
// sorted "oid key trigger" tuples — one per membership reference,
// identical in cohort and per-object layouts. The simulation harness
// compares it against the durable activation records after a crash/
// recovery/RearmTimers cycle, and equivalence tests compare the two
// layouts directly. 'after' one-shots are excluded: they are anchored
// at their original arming and are deliberately re-anchored by rearm.
func (e *Engine) TimerSchedule() []string {
	tt := e.timers
	tt.mu.Lock()
	defer tt.mu.Unlock()
	var out []string
	for _, co := range tt.cohorts {
		for oid, mem := range co.members {
			for trig := range mem {
				out = append(out, fmt.Sprintf("%d %s %s", oid, co.ck.key, trig))
			}
		}
	}
	for sk, refs := range tt.sharedRefs {
		for trig := range refs {
			out = append(out, fmt.Sprintf("%d %s %s", sk.oid, sk.key, trig))
		}
	}
	sort.Strings(out)
	return out
}
