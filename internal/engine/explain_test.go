package engine

import (
	"strings"
	"testing"

	"ode/internal/algebra"
	"ode/internal/event"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// replayChain drives the trigger's fat oracle DFA through the
// explanation's steps, asserting every recorded from→to transition
// matches the automaton, and returns the final state.
func replayChain(t *testing.T, tr *Trigger, ex *Explanation) int {
	t.Helper()
	d := tr.Oracle()
	state := d.Start
	for i, s := range ex.Steps {
		if s.From != state {
			t.Fatalf("step %d: chain From=%d, replay is at %d (%+v)", i, s.From, state, s)
		}
		next := d.Next(state, s.Sym)
		if next != s.To {
			t.Fatalf("step %d: chain To=%d, oracle DFA moves %d --%d--> %d", i, s.To, state, s.Sym, next)
		}
		if got := d.Accept[next]; got != s.Accepted {
			t.Fatalf("step %d: chain Accepted=%v, oracle accept[%d]=%v", i, s.Accepted, next, got)
		}
		state = next
	}
	return state
}

// TestExplainPriorAgainstOracle is the acceptance check: for a fired
// prior trigger, Explain returns the exact contributing happening
// sequence — verified by replaying the chain through the shadow
// oracle's DFA and the §4 denotational semantics.
func TestExplainPriorAgainstOracle(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Audit", Event: "prior(after deposit, after withdraw)"})
	e := newEngine(t, Options{ShadowOracle: true})
	oid := setup(t, e, cls, impl, "Audit")

	err := e.Transact(func(tx *Tx) error {
		if _, err := tx.Call(oid, "deposit", value.Int(50)); err != nil {
			return err
		}
		if _, err := tx.Call(oid, "getBalance"); err != nil { // inert noise
			return err
		}
		_, err := tx.Call(oid, "withdraw", value.Int(20))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 {
		t.Fatalf("Audit should have fired once, got %v", rec.list())
	}

	ex, err := e.Explain("Audit", oid)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Fired || !ex.Complete {
		t.Fatalf("explanation not a complete firing chain: %+v", ex)
	}
	if ex.Active {
		t.Fatal("ordinary trigger should be deactivated after firing")
	}
	if len(ex.Steps) != 2 {
		t.Fatalf("prior(dep, wd) firing chain should be 2 steps, got %d: %+v", len(ex.Steps), ex.Steps)
	}
	if ex.Steps[0].Kind != "after deposit" || ex.Steps[1].Kind != "after withdraw" {
		t.Fatalf("chain kinds = %q, %q; want after deposit, after withdraw",
			ex.Steps[0].Kind, ex.Steps[1].Kind)
	}
	if !ex.Steps[len(ex.Steps)-1].Accepted {
		t.Fatal("chain must end at the accepting transition")
	}

	tr := e.Class("account").Trigger("Audit")
	final := replayChain(t, tr, ex)
	if !tr.Oracle().Accept[final] {
		t.Fatalf("replayed chain ends in non-accepting state %d", final)
	}
	// The §4 denotational semantics agree the chain's symbol history is
	// an occurrence of the trigger's event expression.
	syms := make([]int, len(ex.Steps))
	for i, s := range ex.Steps {
		syms[i] = s.Sym
	}
	if !algebra.Occurs(tr.Res.Expr, syms) {
		t.Fatalf("oracle says chain %v is not an occurrence of %s", syms, tr.Res.Name)
	}
}

// TestExplainSequenceAgainstOracle does the same for a sequence
// (immediate-succession) trigger, posting hand-built happenings so no
// method-lifecycle noise sits between the constituents.
func TestExplainSequenceAgainstOracle(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Pair", Event: "sequence(after deposit, after withdraw)"})
	e := newEngine(t, Options{ShadowOracle: true})
	oid := setup(t, e, cls, impl, "Pair")

	tx := e.Begin()
	r, err := tx.access(oid)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []event.Kind{
		event.MethodKind(event.After, "deposit"),
		event.MethodKind(event.After, "withdraw"),
	} {
		h := event.Happening{Kind: kind, TxID: tx.ID(), At: e.clk.Now()}
		if _, err := tx.step(oid, r, h, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 {
		t.Fatalf("Pair should have fired once, got %v", rec.list())
	}

	ex, err := e.Explain("Pair", oid)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Fired || !ex.Complete {
		t.Fatalf("explanation not a complete firing chain: %+v", ex)
	}
	if len(ex.Steps) != 2 ||
		ex.Steps[0].Kind != "after deposit" || ex.Steps[1].Kind != "after withdraw" {
		t.Fatalf("chain = %+v; want the dep, wd pair", ex.Steps)
	}
	tr := e.Class("account").Trigger("Pair")
	final := replayChain(t, tr, ex)
	if !tr.Oracle().Accept[final] {
		t.Fatalf("replayed chain ends in non-accepting state %d", final)
	}
	syms := make([]int, len(ex.Steps))
	for i, s := range ex.Steps {
		syms[i] = s.Sym
	}
	if !algebra.Occurs(tr.Res.Expr, syms) {
		t.Fatalf("oracle says chain %v is not an occurrence", syms)
	}
}

// TestExplainUnfiredAndReset: an unfired instance is explained up to
// its current state, and re-activation resets its provenance.
func TestExplainUnfiredAndReset(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Audit", Event: "prior(after deposit, after withdraw)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Audit")

	err := e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(5))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.Explain("Audit", oid)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Fired {
		t.Fatal("nothing fired yet")
	}
	if !ex.Active || len(ex.Steps) != 1 || ex.Steps[0].Kind != "after deposit" {
		t.Fatalf("partial chain = %+v", ex)
	}
	if !ex.Complete {
		t.Fatal("partial chain still reaches the start state")
	}

	// Re-activation restarts the automaton and discards provenance.
	if err := e.Transact(func(tx *Tx) error { return tx.Activate(oid, "Audit") }); err != nil {
		t.Fatal(err)
	}
	ex, err = e.Explain("Audit", oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Steps) != 0 || ex.TotalSteps != 0 || ex.Fired {
		t.Fatalf("provenance should be reset on re-activation: %+v", ex)
	}
}

// TestExplainErrors covers the refusal paths.
func TestExplainErrors(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Audit", Event: "prior(after deposit, after withdraw)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Audit")

	if _, err := e.Explain("NoSuch", oid); err == nil || !strings.Contains(err.Error(), "no trigger") {
		t.Fatalf("unknown trigger: %v", err)
	}
	if _, err := e.Explain("Audit", store.OID(999999)); err == nil {
		t.Fatal("unknown object should fail")
	}

	// Disabled provenance refuses with a pointed message.
	e2 := newEngine(t, Options{ProvenanceDepth: -1})
	oid2 := setup(t, e2, cls, impl, "Audit")
	if _, err := e2.Explain("Audit", oid2); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("disabled provenance: %v", err)
	}
}
