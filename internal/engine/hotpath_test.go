package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ode/internal/event"
	"ode/internal/evlang"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// TestHotPathAllocBudget pins the PR's allocation contract: posting a
// masked happening that does not fire allocates zero heap objects on
// the volatile path (compiled mask program, dense trigger slot, no
// maskEnv, no firing scratch).
func TestHotPathAllocBudget(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 100"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Big")

	tx := e.Begin()
	defer tx.Abort()
	r, err := tx.access(oid)
	if err != nil {
		t.Fatal(err)
	}
	h := event.Happening{
		Kind:   event.MethodKind(event.After, "deposit"),
		Params: map[string]value.Value{"amount": value.Int(1)},
		Dense:  []value.Value{value.Int(1)},
		TxID:   tx.ID(),
		At:     e.clk.Now(),
	}
	avg := testing.AllocsPerRun(500, func() {
		fired, err := tx.step(oid, r, h, "")
		if err != nil {
			t.Fatal(err)
		}
		if fired {
			t.Fatal("mask n > 100 must not pass for n = 1")
		}
	})
	if avg != 0 {
		t.Fatalf("masked non-firing happening allocates %.2f objects/op; want 0", avg)
	}
	if rec.count() != 0 {
		t.Fatalf("no trigger should have fired, got %v", rec.list())
	}
	// The flight recorder is always on: the loop above recorded one
	// event per happening without breaking the budget.
	if e.flight.Total() == 0 {
		t.Fatal("flight recorder captured nothing")
	}
}

// TestHotPathAllocBudgetProvenance extends the contract to
// state-changing non-firing steps: with firing provenance on (the
// default), a composite trigger bouncing between states appends to its
// provenance ring on every transition and must still allocate nothing.
func TestHotPathAllocBudgetProvenance(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		// sequence(E, F): a deposit moves to the "just saw E" state; a
		// withdraw failing its mask is neither E nor F and resets. Every
		// happening below is a state change → a provenance append.
		schema.Trigger{Name: "Chain", Perpetual: true,
			Event: "sequence(after deposit, after withdraw(a) && a > 100)"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Chain")

	tx := e.Begin()
	defer tx.Abort()
	r, err := tx.access(oid)
	if err != nil {
		t.Fatal(err)
	}
	dep := event.Happening{
		Kind:   event.MethodKind(event.After, "deposit"),
		Params: map[string]value.Value{"amount": value.Int(1)},
		Dense:  []value.Value{value.Int(1)},
		TxID:   tx.ID(),
		At:     e.clk.Now(),
	}
	wd := dep
	wd.Kind = event.MethodKind(event.After, "withdraw")
	avg := testing.AllocsPerRun(500, func() {
		for _, h := range [2]event.Happening{dep, wd} {
			fired, err := tx.step(oid, r, h, "")
			if err != nil {
				t.Fatal(err)
			}
			if fired {
				t.Fatal("withdraw(1) must not complete the sequence")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("state-changing non-firing steps allocate %.2f objects/op; want 0", avg)
	}
	ring := e.provLookup(oid, "Chain")
	if ring == nil || ring.Total() < 1000 {
		t.Fatalf("provenance did not record the state churn (ring=%v)", ring)
	}
	if rec.count() != 0 {
		t.Fatalf("no trigger should have fired, got %v", rec.list())
	}
}

// errInject aborts a workload transaction on purpose.
var errInject = errors.New("injected abort")

// runMaskWorkload drives a deterministic randomized mix of deposits,
// withdrawals, re-activations and aborts against three accounts and
// returns the firing log and final balances.
func runMaskWorkload(t *testing.T, interpreted bool) ([]string, []int64) {
	t.Helper()
	rec := &recorder{}
	triggers := []schema.Trigger{
		// Event param against an activation param.
		{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > lim",
			Params: []schema.Param{{Name: "lim", Kind: value.KindInt}}},
		// Schema parameter name directly, plus an object field.
		{Name: "Poor", Perpetual: true, Event: "after withdraw(amount) && balance < 500"},
		// Composite with a mask on one constituent; ordinary, so it
		// deactivates on firing and gets re-activated by the workload.
		{Name: "Seq", Event: "relative(after deposit(n) && n > 200, after withdraw)"},
		// A mask that calls a class-level function.
		{Name: "Dbl", Perpetual: true, Event: "after deposit(n) && twice(n) > 300"},
	}
	cls, impl := accountClass(rec, triggers...)
	impl.Funcs = map[string]MaskFunc{
		"twice": func(args []value.Value) (value.Value, error) {
			if len(args) != 1 || args[0].Kind != value.KindInt {
				return value.Null(), fmt.Errorf("twice wants one int")
			}
			return value.Int(2 * args[0].AsInt()), nil
		},
	}
	for _, tr := range triggers {
		name := tr.Name
		impl.Actions[name] = func(ctx *ActionCtx) error {
			rec.add(fmt.Sprintf("%s@%d %s", ctx.Trigger, ctx.Self, ctx.EventKind))
			return nil
		}
	}

	e := newEngine(t, Options{InterpretedMasks: interpreted})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var accts []store.OID
	err := e.Transact(func(tx *Tx) error {
		for i := 0; i < 3; i++ {
			oid, err := tx.NewObject("account", map[string]value.Value{"balance": value.Int(600)})
			if err != nil {
				return err
			}
			if err := tx.Activate(oid, "Big", value.Int(int64(100+100*i))); err != nil {
				return err
			}
			for _, name := range []string{"Poor", "Seq", "Dbl"} {
				if err := tx.Activate(oid, name); err != nil {
					return err
				}
			}
			accts = append(accts, oid)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(92))
	for i := 0; i < 300; i++ {
		err := e.Transact(func(tx *Tx) error {
			oid := accts[rng.Intn(len(accts))]
			switch rng.Intn(8) {
			case 0, 1, 2:
				_, err := tx.Call(oid, "deposit", value.Int(int64(rng.Intn(400))))
				return err
			case 3, 4:
				_, err := tx.Call(oid, "withdraw", value.Int(int64(rng.Intn(300))))
				return err
			case 5:
				// Restart the composite (it deactivates on firing) and
				// re-parameterize Big.
				if err := tx.Activate(oid, "Seq"); err != nil {
					return err
				}
				return tx.Activate(oid, "Big", value.Int(int64(50+rng.Intn(300))))
			case 6:
				_, err := tx.Call(oid, "deposit", value.Int(int64(rng.Intn(400))))
				if err != nil {
					return err
				}
				return errInject // exercise the abort path mid-history
			default:
				_, err := tx.Call(oid, "getBalance")
				return err
			}
		})
		if err != nil && !errors.Is(err, errInject) {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	var balances []int64
	err = e.Transact(func(tx *Tx) error {
		for _, oid := range accts {
			b, err := tx.Get(oid, "balance")
			if err != nil {
				return err
			}
			balances = append(balances, b.AsInt())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.list(), balances
}

// TestCompiledMasksMatchInterpreter is the acceptance check that the
// compiled hot path (mask programs + dispatch tables + dense slots)
// produces firing sequences identical to the AST-interpreter baseline
// over a randomized workload.
func TestCompiledMasksMatchInterpreter(t *testing.T) {
	logC, balC := runMaskWorkload(t, false)
	logI, balI := runMaskWorkload(t, true)
	if !reflect.DeepEqual(logC, logI) {
		t.Fatalf("firing sequences diverge:\ncompiled:    %d firings %v\ninterpreted: %d firings %v",
			len(logC), logC, len(logI), logI)
	}
	if !reflect.DeepEqual(balC, balI) {
		t.Fatalf("final balances diverge: compiled %v, interpreted %v", balC, balI)
	}
	if len(logC) == 0 {
		t.Fatal("workload fired nothing; equivalence untested")
	}
	t.Logf("identical firing sequences (%d firings)", len(logC))
}

// TestRegisterClassSharedParserConcurrent: registering two classes that
// share one define-set parser must not mutate the shared parser (the
// old in-place Methods assignment was a data race under -race).
func TestRegisterClassSharedParserConcurrent(t *testing.T) {
	ps := evlang.NewParser()
	if err := ps.Define("dep", "after deposit"); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{})
	recA, recB := &recorder{}, &recorder{}
	clsA, implA := accountClass(recA, schema.Trigger{Name: "A", Perpetual: true, Event: "dep"})
	clsB, implB := accountClass(recB, schema.Trigger{Name: "B", Perpetual: true, Event: "dep"})
	clsB.Name = "account2"

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = e.RegisterClass(clsA, implA, ps)
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = e.RegisterClass(clsB, implB, ps)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("registration %d: %v", i, err)
		}
	}
	if ps.Methods != nil {
		t.Fatalf("shared parser's Methods mutated in place: %v", ps.Methods)
	}
}
