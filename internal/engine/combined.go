package engine

import (
	"ode/internal/compile"
	"ode/internal/event"
	"ode/internal/evlang"
	"ode/internal/fa"
	"ode/internal/mask"
	"ode/internal/schema"
	"ode/internal/store"
)

// Footnote 5 of the paper: "In many cases such automata may be
// combined into one, resulting in a more efficient monitoring."
// When Options.CombinedAutomata is set, eligible classes monitor all
// triggers with a single product automaton: one transition (and one
// word of per-object state *total*) per posted event, instead of one
// per trigger.
//
// Eligibility is semantic, not just mechanical. The combined state is
// shared, so per-trigger history starts cannot be represented:
//   - every trigger must be perpetual (ordinary triggers deactivate on
//     firing and would later re-activate with a fresh history);
//   - every trigger must use the committed view (the single state word
//     lives in the record and rolls back with it);
//   - no trigger may take activation parameters (mask evaluation must
//     not depend on the instance).
//
// Activation semantics under combination: the object's shared history
// begins at the first activation of any trigger; activating further
// triggers later joins them to the shared history mid-stream, and
// deactivation merely suppresses firing. This matches the paper's §3.5
// pattern of activating everything in the constructor.
const combinedSlot = "__combined"

// combinedMonitor is the per-class combined automaton.
type combinedMonitor struct {
	comb  *compile.Combined
	order []string       // trigger name per fire-bit (Class.Triggers order)
	used  map[int]uint32 // kindIx → union of mask bits any trigger needs
	// progs[kindIx] holds the compiled programs for the used bits
	// (compiled with no trigger parameters — eligibility forbids them).
	progs map[int][]*mask.Program
}

// buildCombined returns nil when the class is ineligible.
func buildCombined(c *Class) *combinedMonitor {
	if len(c.Triggers) == 0 || len(c.Triggers) > 64 {
		return nil
	}
	dfas := make([]*fa.DFA, len(c.Triggers))
	order := make([]string, len(c.Triggers))
	used := map[int]uint32{}
	for i, t := range c.Triggers {
		if !t.Res.Perpetual || t.View != schema.CommittedView || len(t.Res.Params) > 0 {
			return nil
		}
		// 'after'-mode timers deliver to a single trigger; a shared
		// automaton cannot advance selectively.
		for _, tr := range t.Res.Timers {
			if tr.Mode == evlang.TimeAfter {
				return nil
			}
		}
		dfas[i] = t.Oracle()
		order[i] = t.Res.Name
		for kix, bits := range t.Res.UsedBits {
			used[kix] |= bits
		}
	}
	return &combinedMonitor{
		comb:  compile.Combine(dfas),
		order: order,
		used:  used,
	}
}

// stepCombined advances the object's single combined state and returns
// the triggers to fire. Called from step() in place of the per-trigger
// loop.
func (tx *Tx) stepCombined(c *Class, cm *combinedMonitor, kindIx int,
	h event.Happening, oid store.OID, rec *store.Record) ([]firedTrigger, error) {
	// The shared history exists only once some trigger is active. The
	// caller (step) has already bound the record's dense slots; order
	// follows Class.Triggers, so slot j belongs to order[j].
	anyActive := false
	for j := range cm.order {
		if act := rec.Slot(j); act != nil && act.Active {
			anyActive = true
			break
		}
	}
	if !anyActive {
		return nil, nil
	}
	// Committed view only: abort events are invisible (§6).
	if h.Kind.Class == event.KTabort {
		return nil, nil
	}
	bits, err := tx.evalBitsMask(c, cm.progs[kindIx], cm.used[kindIx], kindIx, h, nil, nil, oid, rec, nil)
	if err != nil {
		return nil, err
	}
	if used := cm.used[kindIx]; used != 0 {
		tx.e.traceMask(tx.tx.ID(), oid, c.Schema.Name, combinedSlot, used, bits)
	}
	sym := c.Res.Alphabet.Symbol(kindIx, bits)

	slot := rec.Trigger(combinedSlot)
	if !slot.Active {
		slot.Active = true
		slot.State = cm.comb.Start
	}
	prev := slot.State
	next, fireMask := cm.comb.Post(prev, sym)
	slot.State = next
	tx.e.stats.steps.Add(1)
	tx.e.traceStep(tx.tx.ID(), oid, c.Schema.Name, combinedSlot, prev, next, fireMask != 0)

	var fired []firedTrigger
	for j := range cm.order {
		if fireMask&(1<<uint(j)) == 0 {
			continue
		}
		act := rec.Slot(j)
		if act == nil || !act.Active {
			continue // suppressed: deactivated triggers do not fire
		}
		fired = append(fired, firedTrigger{c.Triggers[j], act})
	}
	return fired, nil
}
