package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/value"
)

func debugGet(t *testing.T, srv *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); out != nil && !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: %v in %s", path, err, body)
		}
	}
}

// TestDebugEndpoint drives a workload and checks every /debug route:
// stats, per-trigger metrics (whose firing counts and latency
// histograms must sum to Stats().Firings), trace, expvar and pprof.
func TestDebugEndpoint(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"},
		schema.Trigger{Name: "AnyDep", Perpetual: true, Event: "after deposit"})
	e := newEngine(t, Options{TraceBuffer: 256})
	oid := setup(t, e, cls, impl, "Large", "AnyDep")

	if err := e.Transact(func(tx *Tx) error {
		tx.Call(oid, "withdraw", value.Int(500))
		tx.Call(oid, "deposit", value.Int(5))
		tx.Call(oid, "deposit", value.Int(7))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(e.DebugHandler())
	defer srv.Close()

	var stats Stats
	debugGet(t, srv, "/debug/stats", &stats)
	if stats.Firings != 3 || stats.TxCommitted < 2 {
		t.Fatalf("stats = %+v", stats)
	}

	var snap obs.Snapshot
	debugGet(t, srv, "/debug/triggers", &snap)
	var firings, latCount uint64
	for _, ts := range snap.Triggers {
		firings += ts.Firings
		latCount += ts.Latency.Count
	}
	if firings != stats.Firings {
		t.Fatalf("per-trigger firings %d != Stats().Firings %d", firings, stats.Firings)
	}
	if latCount != stats.Firings {
		t.Fatalf("latency histogram counts %d != Stats().Firings %d", latCount, stats.Firings)
	}

	var trace struct {
		Enabled bool        `json:"enabled"`
		Events  []obs.Event `json:"events"`
	}
	debugGet(t, srv, "/debug/trace?last=5", &trace)
	if !trace.Enabled || len(trace.Events) != 5 {
		t.Fatalf("trace = enabled=%v %d events", trace.Enabled, len(trace.Events))
	}
	debugGet(t, srv, "/debug/trace", &trace)
	if len(trace.Events) == 0 {
		t.Fatal("default trace empty")
	}

	// Bad query parameter is a 400, not a panic.
	resp, err := http.Get(srv.URL + "/debug/trace?last=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad last => %d", resp.StatusCode)
	}

	// expvar and pprof are mounted.
	var vars map[string]any
	debugGet(t, srv, "/debug/vars", &vars)
	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline => %d", resp.StatusCode)
	}

	// With tracing disabled /debug/trace reports enabled=false.
	e.DisableTracing()
	debugGet(t, srv, "/debug/trace", &trace)
	if trace.Enabled {
		t.Fatal("trace endpoint claims enabled after DisableTracing")
	}
}

// TestServeDebug exercises the real listener path and Close shutdown.
func TestServeDebug(t *testing.T) {
	e := newEngine(t, Options{})
	addr, err := e.ServeDebug("auto")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/debug/stats"); err == nil {
		t.Fatal("debug endpoint still serving after Close")
	}
}

// TestOptionsDebugAddr starts the endpoint from Options.
func TestOptionsDebugAddr(t *testing.T) {
	e, err := New(Options{DebugAddr: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.debugMu.Lock()
	n := len(e.debugSrvs)
	e.debugMu.Unlock()
	if n != 1 {
		t.Fatalf("%d debug servers", n)
	}
}
