package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// batchScriptOp is one operation of the randomized equivalence script.
type batchScriptOp struct {
	kind  int // 0 = transaction of calls, 1 = activation tx, 2 = aborted tx of calls
	oid   int // account index (activation)
	lim   int64
	calls []batchScriptCall
}

type batchScriptCall struct {
	oid    int
	method string
	amount int64 // ignored for getBalance
}

// genBatchScript generates a deterministic workload mixing batched
// method runs, trigger re-activations and aborted transactions.
func genBatchScript(seed int64, nOps int) []batchScriptOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []batchScriptOp
	for i := 0; i < nOps; i++ {
		switch rng.Intn(10) {
		case 0:
			ops = append(ops, batchScriptOp{kind: 1, oid: rng.Intn(3), lim: int64(50 + rng.Intn(300))})
		default:
			op := batchScriptOp{kind: 0}
			if rng.Intn(8) == 0 {
				op.kind = 2 // abort after the calls
			}
			n := 1 + rng.Intn(8)
			for j := 0; j < n; j++ {
				c := batchScriptCall{oid: rng.Intn(3)}
				switch rng.Intn(5) {
				case 0, 1:
					c.method, c.amount = "deposit", int64(rng.Intn(400))
				case 2, 3:
					c.method, c.amount = "withdraw", int64(rng.Intn(300))
				default:
					c.method = "getBalance"
				}
				op.calls = append(op.calls, c)
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// provStepCmp is a provenance step stripped of its timestamp and
// transaction id for cross-run comparison (both are equal across the
// runs in practice, but the equivalence claim is about the chain).
type provStepCmp struct {
	Kind     string
	Bits     uint32
	Sym      int
	From, To int
	Accepted bool
}

// batchWorkloadResult captures everything observable about a run.
type batchWorkloadResult struct {
	fires    []string
	balances []int64
	states   map[string]string // "trigger@acct" -> "state/active"
	prov     map[string][]provStepCmp
}

// runBatchWorkload executes the script on a fresh engine. mode selects
// how transaction-of-calls ops are applied: "single" issues one
// tx.Call per entry, "batch" builds a Batch and posts it with
// tx.PostBatch. The shadow oracle cross-checks every automaton step
// against the §4 denotational semantics in both modes.
func runBatchWorkload(t *testing.T, ops []batchScriptOp, mode string, interpreted bool) batchWorkloadResult {
	t.Helper()
	rec := &recorder{}
	triggers := []schema.Trigger{
		{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > lim",
			Params: []schema.Param{{Name: "lim", Kind: value.KindInt}}},
		{Name: "Poor", Perpetual: true, Event: "after withdraw(amount) && balance < 500"},
		{Name: "Seq", Event: "relative(after deposit(n) && n > 200, after withdraw)"},
		{Name: "Bal", Perpetual: true, Event: "after getBalance && balance > 1400"},
	}
	cls, impl := accountClass(rec, triggers...)
	for _, tr := range triggers {
		name := tr.Name
		impl.Actions[name] = func(ctx *ActionCtx) error {
			rec.add(fmt.Sprintf("%s@%d %s", ctx.Trigger, ctx.Self, ctx.EventKind))
			return nil
		}
	}
	e := newEngine(t, Options{ShadowOracle: true, InterpretedMasks: interpreted})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}
	var accts []store.OID
	err := e.Transact(func(tx *Tx) error {
		for i := 0; i < 3; i++ {
			oid, err := tx.NewObject("account", map[string]value.Value{"balance": value.Int(600)})
			if err != nil {
				return err
			}
			if err := tx.Activate(oid, "Big", value.Int(int64(100+100*i))); err != nil {
				return err
			}
			for _, name := range []string{"Poor", "Seq", "Bal"} {
				if err := tx.Activate(oid, name); err != nil {
					return err
				}
			}
			accts = append(accts, oid)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	b := NewBatch("account", 8)
	for i, op := range ops {
		switch op.kind {
		case 1:
			err := e.Transact(func(tx *Tx) error {
				if err := tx.Activate(accts[op.oid], "Seq"); err != nil {
					return err
				}
				return tx.Activate(accts[op.oid], "Big", value.Int(op.lim))
			})
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		default:
			err := e.Transact(func(tx *Tx) error {
				if mode == "batch" {
					b.Reset()
					for _, c := range op.calls {
						if c.method == "getBalance" {
							b.Call(accts[c.oid], c.method)
						} else {
							b.Call(accts[c.oid], c.method, value.Int(c.amount))
						}
					}
					if err := tx.PostBatch(b); err != nil {
						return err
					}
				} else {
					for _, c := range op.calls {
						var err error
						if c.method == "getBalance" {
							_, err = tx.Call(accts[c.oid], c.method)
						} else {
							_, err = tx.Call(accts[c.oid], c.method, value.Int(c.amount))
						}
						if err != nil {
							return err
						}
					}
				}
				if op.kind == 2 {
					return errInject
				}
				return nil
			})
			if err != nil && !errors.Is(err, errInject) {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}

	res := batchWorkloadResult{
		fires:  rec.list(),
		states: map[string]string{},
		prov:   map[string][]provStepCmp{},
	}
	err = e.Transact(func(tx *Tx) error {
		for _, oid := range accts {
			v, err := tx.Get(oid, "balance")
			if err != nil {
				return err
			}
			res.balances = append(res.balances, v.AsInt())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for ai, oid := range accts {
		for _, tr := range triggers {
			state, active, err := e.TriggerState(oid, tr.Name)
			if err != nil {
				t.Fatal(err)
			}
			key := fmt.Sprintf("%s@%d", tr.Name, ai)
			res.states[key] = fmt.Sprintf("%d/%v", state, active)
			ex, err := e.Explain(tr.Name, oid)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range ex.Steps {
				res.prov[key] = append(res.prov[key], provStepCmp{
					Kind: s.Kind, Bits: s.Bits, Sym: s.Sym,
					From: s.From, To: s.To, Accepted: s.Accepted,
				})
			}
		}
	}
	return res
}

// TestPostBatchEquivalence is the acceptance check for the batch hot
// path: over a randomized script of batched method runs, activations
// and aborts, posting each transaction as one Batch is observably
// identical to issuing its calls one at a time — same firing sequence,
// final object states, trigger automaton states and provenance chains
// — with the §4 shadow oracle validating every automaton transition in
// both runs. A third run posts the batches through the interpreted-
// mask slow path, pinning the fast path to the semantic baseline.
func TestPostBatchEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 92, 4711} {
		ops := genBatchScript(seed, 120)
		single := runBatchWorkload(t, ops, "single", false)
		batch := runBatchWorkload(t, ops, "batch", false)
		slow := runBatchWorkload(t, ops, "batch", true)

		if !reflect.DeepEqual(single.fires, batch.fires) {
			t.Fatalf("seed %d: firing sequences diverge:\nsingle: %v\nbatch:  %v", seed, single.fires, batch.fires)
		}
		if !reflect.DeepEqual(single.balances, batch.balances) {
			t.Fatalf("seed %d: balances diverge: single %v batch %v", seed, single.balances, batch.balances)
		}
		if !reflect.DeepEqual(single.states, batch.states) {
			t.Fatalf("seed %d: trigger states diverge:\nsingle: %v\nbatch:  %v", seed, single.states, batch.states)
		}
		if !reflect.DeepEqual(single.prov, batch.prov) {
			t.Fatalf("seed %d: provenance chains diverge:\nsingle: %v\nbatch:  %v", seed, single.prov, batch.prov)
		}
		if !reflect.DeepEqual(single.fires, slow.fires) || !reflect.DeepEqual(single.balances, slow.balances) {
			t.Fatalf("seed %d: interpreted batch path diverges from singles", seed)
		}
		if len(batch.fires) == 0 {
			t.Fatalf("seed %d: workload fired nothing; equivalence untested", seed)
		}
	}
}

// TestPostBatchErrors pins the error behavior: unknown class, unknown
// method (reported at the entry's position, with earlier entries
// already applied and the transaction still usable for singles-path
// comparison), and mixed-class batches.
func TestPostBatchErrors(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 100"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Big")

	// Unknown class.
	err := e.Transact(func(tx *Tx) error {
		b := NewBatch("nosuch", 1)
		b.Call(oid, "deposit", value.Int(1))
		return tx.PostBatch(b)
	})
	if err == nil || err.Error() != `engine: unregistered class "nosuch"` {
		t.Fatalf("unknown class: %v", err)
	}

	// Unknown method, reported when its entry executes.
	err = e.Transact(func(tx *Tx) error {
		b := NewBatch("account", 2)
		b.Call(oid, "deposit", value.Int(10))
		b.Call(oid, "frobnicate")
		if err := tx.PostBatch(b); err == nil {
			return fmt.Errorf("unknown method not reported")
		}
		// The first entry applied; the transaction is still active.
		v, err := tx.Get(oid, "balance")
		if err != nil {
			return err
		}
		if v.AsInt() != 1010 {
			return fmt.Errorf("balance = %d, want 1010", v.AsInt())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wrong argument count, same text as tx.Call.
	err = e.Transact(func(tx *Tx) error {
		b := NewBatch("account", 1)
		b.Call(oid, "deposit")
		return tx.PostBatch(b)
	})
	want := "engine: account.deposit takes 1 argument(s), got 0"
	if err == nil || err.Error() != want {
		t.Fatalf("arg count: got %v, want %q", err, want)
	}

	// Empty batch is a no-op.
	if err := e.Transact(func(tx *Tx) error { return tx.PostBatch(NewBatch("account", 0)) }); err != nil {
		t.Fatal(err)
	}
}

// TestHotPathAllocBudgetPostBatch extends the allocation contract to
// the batch path: posting a batch of masked, non-firing method calls —
// with provenance capture and the flight recorder live — allocates
// nothing, including the method implementations' own field accesses
// (served by the transaction's primed record cache).
func TestHotPathAllocBudgetPostBatch(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 100"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Big")

	const entries = 64
	b := NewBatch("account", entries)
	for i := 0; i < entries; i++ {
		b.Call(oid, "deposit", value.Int(1))
	}

	tx := e.Begin()
	defer tx.Abort()
	// Warm up once: first access posts after-tbegin, the first PostBatch
	// builds the plan.
	if err := tx.PostBatch(b); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := tx.PostBatch(b); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("batched masked non-firing posting allocates %.2f objects/batch (%d entries); want 0",
			avg, entries)
	}
	if rec.count() != 0 {
		t.Fatalf("no trigger should have fired, got %v", rec.list())
	}
	if e.flight.Total() == 0 {
		t.Fatal("flight recorder captured nothing")
	}
	st := e.Stats()
	if st.Happenings == 0 || st.MaskEvals == 0 {
		t.Fatalf("batch metrics did not flush: %+v", st)
	}
}

// TestPostBatchEpochRace hammers the store's lock-free committed view
// from reader goroutines while writers commit batches, under -race.
// Each writer owns one account and commits batches whose net effect is
// a fixed +20 per transaction; every committed version a reader
// observes must therefore have balance ≡ 0 (mod 20) — intermediate
// in-transaction states are never published — and balances must never
// go backwards.
func TestPostBatchEpochRace(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 1000000"})
	e := newEngine(t, Options{})
	if _, err := e.RegisterClass(cls, impl, nil); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const rounds = 150
	var oids [writers]store.OID
	err := e.Transact(func(tx *Tx) error {
		for i := range oids {
			var err error
			oids[i], err = tx.NewObject("account", map[string]value.Value{"balance": value.Int(1000)})
			if err != nil {
				return err
			}
			if err := tx.Activate(oids[i], "Big"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			b := NewBatch("account", 4)
			for r := 0; r < rounds; r++ {
				err := e.Transact(func(tx *Tx) error {
					b.Reset()
					for k := 0; k < 4; k++ {
						b.Call(oids[w], "deposit", value.Int(5))
					}
					return tx.PostBatch(b)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	errs := make(chan string, 4)
	for rd := 0; rd < 4; rd++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			last := map[store.OID]int64{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, oid := range oids {
					recd, ok := e.Store().GetCommitted(oid)
					if !ok {
						continue // not yet published
					}
					bal := recd.Fields["balance"].I
					if bal%20 != 0 {
						errs <- fmt.Sprintf("reader saw un-committed intermediate balance %d", bal)
						return
					}
					if bal < last[oid] {
						errs <- fmt.Sprintf("committed balance went backwards: %d -> %d", last[oid], bal)
						return
					}
					last[oid] = bal
				}
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	for _, oid := range oids {
		recd, ok := e.Store().GetCommitted(oid)
		if !ok || recd.Fields["balance"].I != 1000+20*rounds {
			t.Fatalf("final committed balance = %+v (ok=%v), want %d", recd, ok, 1000+20*rounds)
		}
	}
}

// TestPostBatchAccessCacheInvalidation proves the transaction's record
// cache cannot serve stale records across the operations that break it:
// a delete inside the batch makes later entries for the object fail
// exactly as singles would, and a finished transaction rejects further
// operations instead of answering from cache.
func TestPostBatchAccessCacheInvalidation(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 100"})
	e := newEngine(t, Options{})
	oid := setup(t, e, cls, impl, "Big")

	// Delete between two batch posts of the same object.
	err := e.Transact(func(tx *Tx) error {
		b := NewBatch("account", 1)
		b.Call(oid, "deposit", value.Int(1))
		if err := tx.PostBatch(b); err != nil {
			return err
		}
		if err := tx.DeleteObject(oid); err != nil {
			return err
		}
		if err := tx.PostBatch(b); err == nil {
			return fmt.Errorf("posting to a deleted object succeeded")
		}
		return errInject // roll everything back
	})
	if !errors.Is(err, errInject) {
		t.Fatal(err)
	}

	// A committed transaction must not answer from its cache.
	tx := e.Begin()
	b := NewBatch("account", 1)
	b.Call(oid, "deposit", value.Int(1))
	if err := tx.PostBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get(oid, "balance"); err == nil {
		t.Fatal("finished transaction served a read from its record cache")
	}
}
