package engine

import (
	"strings"
	"testing"
	"time"

	"ode/internal/schema"
	"ode/internal/value"
)

func TestQueryHistoryFindsOccurrences(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec)
	e := newEngine(t, Options{RecordHistories: -1})
	oid := setup(t, e, cls, impl)

	// Three transactions: deposit; withdraw; deposit+withdraw.
	e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(10))
		return err
	})
	e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "withdraw", value.Int(5))
		return err
	})
	e.Transact(func(tx *Tx) error {
		tx.Call(oid, "deposit", value.Int(1))
		_, err := tx.Call(oid, "withdraw", value.Int(1))
		return err
	})

	// Where did a withdraw follow a deposit (any gap)?
	points, err := e.QueryHistory(oid, "relative(after deposit, after withdraw)")
	if err != nil {
		t.Fatal(err)
	}
	// Both withdraws qualify (the first deposit precedes both).
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	// Strict adjacency only matches the same-transaction pair.
	seq, err := e.QueryHistory(oid, "after deposit; before withdraw; after withdraw")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 {
		t.Fatalf("sequence points = %v", seq)
	}
	// The occurrence point is a real history position: look it up.
	var kinds []string
	for _, e := range e.History(oid).Entries() {
		kinds = append(kinds, e.Kind.String())
	}
	if got := kinds[seq[0]-1]; got != "after withdraw" {
		t.Fatalf("occurrence at %d = %s", seq[0], got)
	}
	// Count transaction commits after the fact.
	commits, err := e.QueryHistory(oid, "after tcommit")
	if err != nil || len(commits) != 4 { // setup + three transactions
		t.Fatalf("commits = %v, %v", commits, err)
	}
	// choose works offline too.
	third, err := e.QueryHistory(oid, "choose 3 (after tcommit)")
	if err != nil || len(third) != 1 || third[0] != commits[2] {
		t.Fatalf("choose 3 = %v, %v (commits %v)", third, err, commits)
	}
}

func TestQueryHistoryRejectsMasksAndMissingHistory(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec)

	// No recording configured.
	e0 := newEngine(t, Options{})
	oid0 := setup(t, e0, cls, impl)
	if _, err := e0.QueryHistory(oid0, "after deposit"); err == nil {
		t.Fatal("query without recording succeeded")
	}

	cls2, impl2 := accountClass(&recorder{})
	e := newEngine(t, Options{RecordHistories: -1})
	oid := setup(t, e, cls2, impl2)
	_, err := e.QueryHistory(oid, "after withdraw(a) && a > 5")
	if err == nil || !strings.Contains(err.Error(), "mask") {
		t.Fatalf("masked query: %v", err)
	}
	// Unparseable expression.
	if _, err := e.QueryHistory(oid, "relative(after"); err == nil {
		t.Fatal("bad query parsed")
	}
	// Unknown object.
	if _, err := e.QueryHistory(9999, "after deposit"); err == nil {
		t.Fatal("query on missing object succeeded")
	}
}

func TestQueryHistoryRejectsTruncatedLog(t *testing.T) {
	rec := &recorder{}
	cls, impl := accountClass(rec)
	e := newEngine(t, Options{RecordHistories: 4}) // tiny retention
	oid := setup(t, e, cls, impl)
	for i := 0; i < 5; i++ {
		e.Transact(func(tx *Tx) error {
			_, err := tx.Call(oid, "deposit", value.Int(1))
			return err
		})
	}
	_, err := e.QueryHistory(oid, "after deposit")
	if err == nil || !strings.Contains(err.Error(), "retention") {
		t.Fatalf("truncated-log query: %v", err)
	}
}

func TestQueryHistorySeesTriggerTimerKinds(t *testing.T) {
	// A history containing timer firings of the class's own triggers
	// remains queryable: the probe resolution re-includes those kinds,
	// both as query targets and as inert points for other queries.
	rec := &recorder{}
	cls, impl := accountClass(rec,
		schema.Trigger{Name: "Daily", Perpetual: true, Event: "at time(HR=17)"})
	e := newEngine(t, Options{
		Start:           time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC),
		RecordHistories: -1,
	})
	oid := setup(t, e, cls, impl, "Daily")

	e.Clock().Advance(48 * time.Hour) // two daily firings recorded
	e.Transact(func(tx *Tx) error {
		_, err := tx.Call(oid, "deposit", value.Int(1))
		return err
	})

	timers, err := e.QueryHistory(oid, "at time(HR=17)")
	if err != nil || len(timers) != 2 {
		t.Fatalf("timer query = %v, %v", timers, err)
	}
	// A deposit after the second day-end tick.
	after, err := e.QueryHistory(oid, "relative(choose 2 (at time(HR=17)), after deposit)")
	if err != nil || len(after) != 1 {
		t.Fatalf("relative-to-timer query = %v, %v", after, err)
	}
}
