package value

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
	"time"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() || Null().Kind != KindNull {
		t.Fatal("Null not null")
	}
	if Int(7).AsInt() != 7 {
		t.Fatal("Int roundtrip")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Fatal("Float roundtrip")
	}
	if Int(2).AsFloat() != 2.0 {
		t.Fatal("Int promotes to float")
	}
	if !Bool(true).AsBool() {
		t.Fatal("Bool roundtrip")
	}
	if Str("x").AsString() != "x" {
		t.Fatal("Str roundtrip")
	}
	if ID(42).AsID() != 42 {
		t.Fatal("ID roundtrip")
	}
	now := time.Unix(1000, 0)
	if !Time(now).AsTime().Equal(now) {
		t.Fatal("Time roundtrip")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := map[string]func(){
		"AsInt on string":  func() { Str("x").AsInt() },
		"AsBool on int":    func() { Int(1).AsBool() },
		"AsFloat on bool":  func() { Bool(true).AsFloat() },
		"AsString on int":  func() { Int(1).AsString() },
		"AsID on float":    func() { Float(1).AsID() },
		"AsTime on string": func() { Str("t").AsTime() },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEqual(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Fatal("numeric cross-kind equality")
	}
	if Int(2).Equal(Str("2")) {
		t.Fatal("int equals string")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Fatal("string equality")
	}
	if !Null().Equal(Null()) {
		t.Fatal("null equality")
	}
	if !ID(3).Equal(ID(3)) || ID(3).Equal(ID(4)) {
		t.Fatal("id equality")
	}
	if ID(3).Equal(Int(3)) {
		t.Fatal("id must not equal int")
	}
}

func TestCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
	} {
		got, err := Compare(tc.a, tc.b)
		if err != nil || got != tc.want {
			t.Fatalf("Compare(%v,%v) = %d, %v; want %d", tc.a, tc.b, got, err, tc.want)
		}
	}
	if _, err := Compare(Int(1), Str("a")); err == nil {
		t.Fatal("cross-kind compare should error")
	}
	if _, err := Compare(Bool(true), Bool(false)); err == nil {
		t.Fatal("bool compare should error")
	}
}

func TestArith(t *testing.T) {
	check := func(op byte, a, b, want Value) {
		t.Helper()
		got, err := Arith(op, a, b)
		if err != nil || !got.Equal(want) || got.Kind != want.Kind {
			t.Fatalf("Arith(%c,%v,%v) = %v, %v; want %v", op, a, b, got, err, want)
		}
	}
	check('+', Int(2), Int(3), Int(5))
	check('-', Int(2), Int(3), Int(-1))
	check('*', Int(4), Int(3), Int(12))
	check('/', Int(7), Int(2), Int(3))
	check('%', Int(7), Int(2), Int(1))
	check('+', Int(2), Float(0.5), Float(2.5))
	check('/', Float(1), Float(2), Float(0.5))
	check('+', Str("ab"), Str("cd"), Str("abcd"))

	for _, bad := range []struct {
		op   byte
		a, b Value
	}{
		{'/', Int(1), Int(0)},
		{'%', Int(1), Int(0)},
		{'%', Float(1), Float(2)},
		{'+', Int(1), Str("x")},
		{'-', Bool(true), Int(1)},
		{'?', Int(1), Int(1)},
	} {
		if _, err := Arith(bad.op, bad.a, bad.b); err == nil {
			t.Fatalf("Arith(%c,%v,%v) should error", bad.op, bad.a, bad.b)
		}
	}
}

func TestNeg(t *testing.T) {
	if v, err := Neg(Int(3)); err != nil || v.AsInt() != -3 {
		t.Fatal("neg int")
	}
	if v, err := Neg(Float(2.5)); err != nil || v.AsFloat() != -2.5 {
		t.Fatal("neg float")
	}
	if _, err := Neg(Str("x")); err == nil {
		t.Fatal("neg string should error")
	}
}

func TestStringRendering(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Int(3), "3"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{Str("hi"), `"hi"`},
		{ID(9), "@9"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Fatalf("String(%v) = %q want %q", tc.v.Kind, got, tc.want)
		}
	}
}

func TestGobRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Int(-5), Float(3.25), Bool(true), Str("hello"),
		ID(77), Time(time.Unix(12345, 678).UTC()),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(vals); err != nil {
		t.Fatal(err)
	}
	var back []Value
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(vals) {
		t.Fatalf("len %d want %d", len(back), len(vals))
	}
	for i := range vals {
		if !vals[i].Equal(back[i]) {
			t.Fatalf("index %d: %v != %v", i, vals[i], back[i])
		}
	}
}

// TestArithProperties checks ring-ish laws on int arithmetic through
// testing/quick.
func TestArithProperties(t *testing.T) {
	commutative := func(a, b int32) bool {
		x, _ := Arith('+', Int(int64(a)), Int(int64(b)))
		y, _ := Arith('+', Int(int64(b)), Int(int64(a)))
		return x.Equal(y)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error(err)
	}
	compareAntisym := func(a, b int32) bool {
		x, _ := Compare(Int(int64(a)), Int(int64(b)))
		y, _ := Compare(Int(int64(b)), Int(int64(a)))
		return x == -y
	}
	if err := quick.Check(compareAntisym, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRenderingTimeAndUnknownKinds(t *testing.T) {
	ts := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	if got := Time(ts).String(); got != "2026-07-04T12:00:00Z" {
		t.Fatalf("time string %q", got)
	}
	weird := Value{Kind: Kind(42)}
	if got := weird.String(); got != "value(kind=42)" {
		t.Fatalf("unknown kind string %q", got)
	}
	if got := Kind(42).String(); got != "kind(42)" {
		t.Fatalf("unknown kind name %q", got)
	}
}

func TestEqualUnknownKindsNeverEqual(t *testing.T) {
	a := Value{Kind: Kind(42)}
	b := Value{Kind: Kind(42)}
	if a.Equal(b) {
		t.Fatal("values of unknown kinds must not compare equal")
	}
}
