// Package value implements the dynamic typed values stored in object
// fields and passed as event parameters: the data substrate under the
// O++ object model. Values are small immutable tagged unions with the
// comparison and arithmetic semantics the mask expression language
// (internal/mask) evaluates over.
package value

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind discriminates the union.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindBool
	KindString
	KindTime
	KindID // object identity: a reference to a persistent object
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	case KindID:
		return "id"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed database value. The zero Value is null.
// Fields are exported for encoding/gob; treat values as immutable.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	B    bool
	S    string
	T    time.Time
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// String returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Time returns a time value.
func Time(t time.Time) Value { return Value{Kind: KindTime, T: t} }

// ID returns an object-identity value.
func ID(oid uint64) Value { return Value{Kind: KindID, I: int64(oid)} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsInt returns the integer payload; it panics unless Kind is KindInt.
func (v Value) AsInt() int64 {
	if v.Kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.Kind))
	}
	return v.I
}

// AsFloat returns the numeric payload as float64, promoting integers.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindFloat:
		return v.F
	case KindInt:
		return float64(v.I)
	}
	panic(fmt.Sprintf("value: AsFloat on %s", v.Kind))
}

// AsBool returns the boolean payload; it panics unless Kind is KindBool.
func (v Value) AsBool() bool {
	if v.Kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.Kind))
	}
	return v.B
}

// AsString returns the string payload; it panics unless Kind is
// KindString.
func (v Value) AsString() string {
	if v.Kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s", v.Kind))
	}
	return v.S
}

// AsID returns the object identity payload; it panics unless Kind is
// KindID.
func (v Value) AsID() uint64 {
	if v.Kind != KindID {
		panic(fmt.Sprintf("value: AsID on %s", v.Kind))
	}
	return uint64(v.I)
}

// AsTime returns the time payload; it panics unless Kind is KindTime.
func (v Value) AsTime() time.Time {
	if v.Kind != KindTime {
		panic(fmt.Sprintf("value: AsTime on %s", v.Kind))
	}
	return v.T
}

// IsNumeric reports whether v is an int or a float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		// Decimal, never scientific (%g emits 1e+06): expression
		// renderings must re-lex, and the evlang/mask lexers accept
		// only digits '.' digits. Integral values keep a trailing ".0"
		// so they re-lex as floats; NaN/±Inf (unreachable from parsed
		// literals) pass through untouched.
		s := strconv.FormatFloat(v.F, 'f', -1, 64)
		if !strings.Contains(s, ".") && !strings.ContainsAny(s, "NI") {
			s += ".0"
		}
		return s
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	case KindString:
		return fmt.Sprintf("%q", v.S)
	case KindTime:
		return v.T.Format(time.RFC3339)
	case KindID:
		return fmt.Sprintf("@%d", uint64(v.I))
	default:
		return fmt.Sprintf("value(kind=%d)", int(v.Kind))
	}
}

// Equal reports deep equality. Int and float compare numerically
// (Int(2) equals Float(2.0)); otherwise kinds must match.
func (v Value) Equal(w Value) bool {
	if v.IsNumeric() && w.IsNumeric() {
		return v.AsFloat() == w.AsFloat()
	}
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindBool:
		return v.B == w.B
	case KindString:
		return v.S == w.S
	case KindTime:
		return v.T.Equal(w.T)
	case KindID:
		return v.I == w.I
	default:
		return false
	}
}

// Compare orders two values, returning -1, 0, or +1. Numeric values
// compare numerically with promotion; strings lexicographically; times
// chronologically. Other combinations return an error.
func Compare(v, w Value) (int, error) {
	switch {
	case v.IsNumeric() && w.IsNumeric():
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	case v.Kind == KindString && w.Kind == KindString:
		switch {
		case v.S < w.S:
			return -1, nil
		case v.S > w.S:
			return 1, nil
		default:
			return 0, nil
		}
	case v.Kind == KindTime && w.Kind == KindTime:
		switch {
		case v.T.Before(w.T):
			return -1, nil
		case v.T.After(w.T):
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("value: cannot compare %s with %s", v.Kind, w.Kind)
	}
}

// Arith applies a binary arithmetic operator (+, -, *, /, %) with the
// usual numeric promotion; + concatenates strings. Division by an
// integer zero and modulo on non-integers are errors.
func Arith(op byte, v, w Value) (Value, error) {
	if op == '+' && v.Kind == KindString && w.Kind == KindString {
		return Str(v.S + w.S), nil
	}
	if !v.IsNumeric() || !w.IsNumeric() {
		return Null(), fmt.Errorf("value: %c needs numeric operands, got %s and %s", op, v.Kind, w.Kind)
	}
	if v.Kind == KindInt && w.Kind == KindInt {
		a, b := v.I, w.I
		switch op {
		case '+':
			return Int(a + b), nil
		case '-':
			return Int(a - b), nil
		case '*':
			return Int(a * b), nil
		case '/':
			if b == 0 {
				return Null(), fmt.Errorf("value: integer division by zero")
			}
			return Int(a / b), nil
		case '%':
			if b == 0 {
				return Null(), fmt.Errorf("value: integer modulo by zero")
			}
			return Int(a % b), nil
		}
	}
	a, b := v.AsFloat(), w.AsFloat()
	switch op {
	case '+':
		return Float(a + b), nil
	case '-':
		return Float(a - b), nil
	case '*':
		return Float(a * b), nil
	case '/':
		return Float(a / b), nil
	case '%':
		return Null(), fmt.Errorf("value: modulo requires integers")
	}
	return Null(), fmt.Errorf("value: unknown operator %c", op)
}

// Neg negates a numeric value.
func Neg(v Value) (Value, error) {
	switch v.Kind {
	case KindInt:
		return Int(-v.I), nil
	case KindFloat:
		return Float(-v.F), nil
	default:
		return Null(), fmt.Errorf("value: cannot negate %s", v.Kind)
	}
}
