package workload

import (
	"fmt"
	"runtime"
	"time"

	"ode/internal/engine"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// E12Row is one hot-path measurement: the same posting workload run
// with compiled mask programs (the default) and with the AST
// interpreter baseline (engine.Options.InterpretedMasks).
type E12Row struct {
	Scenario    string  `json:"scenario"`
	Mode        string  `json:"mode"` // "compiled" or "interpreted"
	Calls       int     `json:"calls"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Firings     uint64  `json:"firings"`
}

// e12Scenario shapes one hot-path micro-benchmark: which triggers are
// active and which method the timed loop calls.
type e12Scenario struct {
	name     string
	triggers []schema.Trigger
	method   string
	arg      int64
}

func e12Scenarios() []e12Scenario {
	// Eight withdraw-only triggers that the dispatch table must skip
	// when a deposit is posted.
	sparse := []schema.Trigger{
		{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 1000000"},
	}
	for i := 0; i < 8; i++ {
		sparse = append(sparse, schema.Trigger{
			Name:      fmt.Sprintf("W%d", i),
			Perpetual: true,
			Event:     fmt.Sprintf("after withdraw(a) && a > %d", i*100),
		})
	}
	return []e12Scenario{
		{
			// The PR's target: a masked happening that never fires.
			name: "masked non-firing",
			triggers: []schema.Trigger{
				{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 1000000"},
			},
			method: "deposit", arg: 1,
		},
		{
			// Same posting, but 8 extra triggers are relevant only to
			// withdraw kinds; per-kind dispatch should keep the cost
			// near the single-trigger scenario.
			name:     "sparse relevance (8 idle triggers)",
			triggers: sparse,
			method:   "deposit", arg: 1,
		},
		{
			// Every call fires: mask pass, DFA accept, action, firing
			// bookkeeping.
			name: "firing",
			triggers: []schema.Trigger{
				{Name: "Any", Perpetual: true, Event: "after deposit(n) && n >= 0"},
			},
			method: "deposit", arg: 1,
		},
	}
}

// RunE12 measures the posting hot path for each scenario under the
// compiled and interpreted mask paths. Measurements are hand-rolled
// (time + runtime.MemStats mallocs) so the workload package does not
// import testing; BenchmarkEngineHotPath covers the same ground under
// `go test -bench`.
func RunE12(calls int) ([]E12Row, error) {
	rows := make([]E12Row, 0, 2*len(e12Scenarios()))
	for _, sc := range e12Scenarios() {
		for _, interpreted := range []bool{false, true} {
			r, err := e12Measure(sc, interpreted, calls)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

func e12Measure(sc e12Scenario, interpreted bool, calls int) (E12Row, error) {
	eng, err := engine.New(engine.Options{InterpretedMasks: interpreted})
	if err != nil {
		return E12Row{}, err
	}
	defer eng.Close()

	cls := &schema.Class{
		Name:   "account",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(1000)}},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: sc.triggers,
	}
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"deposit": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()+ctx.Arg("n").AsInt()))
			},
			"withdraw": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()-ctx.Arg("a").AsInt()))
			},
		},
		Actions: map[string]engine.ActionFunc{},
	}
	for _, tr := range sc.triggers {
		impl.Actions[tr.Name] = func(*engine.ActionCtx) error { return nil }
	}
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return E12Row{}, err
	}

	var oid store.OID
	err = eng.Transact(func(tx *engine.Tx) error {
		var err error
		if oid, err = tx.NewObject("account", nil); err != nil {
			return err
		}
		for _, tr := range sc.triggers {
			if err := tx.Activate(oid, tr.Name); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return E12Row{}, err
	}

	tx := eng.Begin()
	defer tx.Abort()
	arg := value.Int(sc.arg)
	// Warm up: slot binding, arena growth, copy-on-write record clone.
	for i := 0; i < 128; i++ {
		if _, err := tx.Call(oid, sc.method, arg); err != nil {
			return E12Row{}, err
		}
	}

	// Best of three timed repetitions: the first repetition after
	// process start absorbs one-time costs (page faults, lazy engine
	// allocations) that would otherwise skew whichever scenario runs
	// first.
	bestNs := 0.0
	bestAllocs := 0.0
	var before, after runtime.MemStats
	for rep := 0; rep < 3; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < calls; i++ {
			if _, err := tx.Call(oid, sc.method, arg); err != nil {
				return E12Row{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(calls)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(calls)
		if rep == 0 || ns < bestNs {
			bestNs = ns
		}
		if rep == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}

	mode := "compiled"
	if interpreted {
		mode = "interpreted"
	}
	return E12Row{
		Scenario:    sc.name,
		Mode:        mode,
		Calls:       calls,
		NsPerOp:     bestNs,
		AllocsPerOp: bestAllocs,
		Firings:     eng.Stats().Firings,
	}, nil
}
