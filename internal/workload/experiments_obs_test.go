package workload

import (
	"encoding/json"
	"testing"
)

func TestRunE10MetricsSumToStats(t *testing.T) {
	r, err := RunE10(50, 4, 1)
	if err != nil {
		t.Fatal(err) // RunE10 itself enforces firings == sum of per-trigger firings
	}
	if r.Stats.Firings == 0 || r.Stats.Happenings == 0 {
		t.Fatalf("workload did nothing: %+v", r.Stats)
	}
	if len(r.Metrics.Triggers) != 3 {
		t.Fatalf("trigger snapshots = %d, want 3", len(r.Metrics.Triggers))
	}
	if r.TraceRetained == 0 || r.TraceTotal < uint64(r.TraceRetained) {
		t.Fatalf("trace retained %d of %d", r.TraceRetained, r.TraceTotal)
	}
	// The result is the odebench JSON block; it must marshal.
	if _, err := json.MarshalIndent(r, "", "  "); err != nil {
		t.Fatal(err)
	}
	// Determinism: same seed, same workload counters.
	r2, err := RunE10(50, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Happenings != r.Stats.Happenings || r2.Stats.Firings != r.Stats.Firings {
		t.Fatalf("seeded run not deterministic: %+v vs %+v", r2.Stats, r.Stats)
	}
}
