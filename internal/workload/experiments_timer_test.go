package workload

import "testing"

// TestE18Small runs the storm at test scale: both layouts and a
// partitioned cell must pass the delivery ledger (posts == objects ×
// ticks) and the metric reconciliation built into every cell.
func TestE18Small(t *testing.T) {
	rows, err := RunE18([]int{256}, 4, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Posts != uint64(r.Objects*r.Ticks) {
			t.Fatalf("row %+v: posts != objects×ticks", r)
		}
		if r.Firings == 0 {
			t.Fatalf("row %+v: vacuous cell, no firings", r)
		}
		if r.PostsPerSec <= 0 || r.Speedup <= 0 {
			t.Fatalf("row %+v: bad rates", r)
		}
	}
	if rows[0].Layout != "per-object" || rows[1].Layout != "cohort" || rows[2].Partitions != 2 {
		t.Fatalf("unexpected sweep order: %+v", rows)
	}
}

// TestE18Sharing pins the §3.1 structure the storm exploits: a fleet
// armed in one instant occupies exactly one cohort — Heartbeat and
// Cron carry the same canonical periodic spec and the same arm-phase,
// so even the Cron subset joins the existing cohort — and the whole
// fleet holds a single pending timing-wheel entry.
func TestE18Sharing(t *testing.T) {
	cohorts, pending, err := TimersArmedCheck(512)
	if err != nil {
		t.Fatal(err)
	}
	if cohorts != 1 || pending != 1 {
		t.Fatalf("fleet of 512: cohorts=%d pending=%d, want 1/1", cohorts, pending)
	}
}
