package workload

import (
	"fmt"
	"time"

	"ode/internal/engine"
	"ode/internal/part"
	"ode/internal/schema"
	"ode/internal/value"
)

// E18 measures timer-storm delivery: an IoT-fleet-shaped class where
// every object arms the same canonical periodic heartbeat, and the
// virtual clock then sweeps whole periods at once. The cohort layout
// (the default) tracks all members of one (class, spec, phase) in a
// single timing-wheel entry and delivers a due cohort through the
// columnar stepBatch path in one system transaction per (class, tick);
// the per-object baseline (Options.PerObjectTimers) arms one clock
// timer and runs one system transaction per object per tick. The
// heartbeat spec is monitoring-shaped: `relative(every time(M=10),
// after report)` steps the automaton on every tick but fires only
// when a report follows, so the sweep measures detection (the masked
// non-firing path cohorts amortize), not the firing pipeline; a Cron
// trigger on every 64th object fires each tick to keep the firing and
// metrics planes non-vacuous.

// e18Period is the heartbeat period; every timed tick advances the
// clock by exactly one period, delivering each armed heartbeat once.
const e18Period = 10 * time.Minute

// e18CronEvery is the fraction of objects that also arm the
// always-firing Cron trigger (1 in e18CronEvery).
const e18CronEvery = 64

// E18Row is one timer-storm measurement.
type E18Row struct {
	Layout     string `json:"layout"` // "per-object" | "cohort"
	Partitions int    `json:"partitions"`
	// Objects is the number of armed `every` heartbeats (one per object).
	Objects int    `json:"objects"`
	Ticks   int    `json:"ticks"`
	Posts   uint64 `json:"timer_posts"`
	Firings uint64 `json:"firings"`
	// PostsPerSec is aggregate timer-delivery throughput: timer
	// happenings delivered per wall-clock second during the sweep.
	PostsPerSec float64 `json:"posts_per_sec"`
	// Speedup is relative to the per-object row with the same object
	// count (the P=1 per-object baseline anchors each group).
	Speedup float64 `json:"speedup_vs_per_object"`
}

// RunE18 sweeps the storm over object counts: for each N it measures
// the per-object baseline, cohort delivery on one engine, and cohort
// delivery on each partition count in parts (objects split evenly,
// clocks advanced concurrently). Each cell is the best of two
// repetitions, as in E12/E16/E17. Every cell checks the delivery
// ledger — posts must equal objects × ticks exactly — and reconciles
// the per-trigger metrics against the aggregate counters.
func RunE18(objects []int, ticks int, parts []int) ([]E18Row, error) {
	var rows []E18Row
	for _, n := range objects {
		var base float64
		type cell struct {
			layout string
			p      int
		}
		sweep := []cell{{"per-object", 1}, {"cohort", 1}}
		for _, p := range parts {
			sweep = append(sweep, cell{"cohort", p})
		}
		for _, c := range sweep {
			var row E18Row
			for rep := 0; rep < 2; rep++ {
				var (
					r   E18Row
					err error
				)
				if c.p == 1 {
					r, err = runE18Single(n, ticks, c.layout == "per-object")
				} else {
					r, err = runE18Part(n, ticks, c.p)
				}
				if err != nil {
					return nil, fmt.Errorf("workload: E18 %s P=%d N=%d: %w", c.layout, c.p, n, err)
				}
				if rep == 0 || r.PostsPerSec > row.PostsPerSec {
					row = r
				}
			}
			if c.layout == "per-object" {
				base = row.PostsPerSec
			}
			row.Speedup = row.PostsPerSec / base
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// sensorClass is the E18 fleet class.
func sensorClass() (*schema.Class, engine.ClassImpl) {
	cls := &schema.Class{
		Name:   "sensor",
		Fields: []schema.Field{{Name: "v", Kind: value.KindInt, Default: value.Int(0)}},
		Methods: []schema.Method{
			{Name: "report", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "Heartbeat", Perpetual: true, Event: "relative(every time(M=10), after report)"},
			{Name: "Cron", Perpetual: true, Event: "every time(M=10)"},
		},
	}
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"report": func(ctx *engine.MethodCtx) (value.Value, error) {
				return value.Null(), ctx.Set("v", ctx.Arg("n"))
			},
		},
		Actions: map[string]engine.ActionFunc{
			"Heartbeat": func(*engine.ActionCtx) error { return nil },
			"Cron":      func(*engine.ActionCtx) error { return nil },
		},
	}
	return cls, impl
}

// e18Arm creates n sensors in tx and arms Heartbeat on each, Cron on
// every 64th.
func e18Arm(tx *engine.Tx, n int) error {
	for i := 0; i < n; i++ {
		oid, err := tx.NewObject("sensor", nil)
		if err != nil {
			return err
		}
		if err := tx.Activate(oid, "Heartbeat"); err != nil {
			return err
		}
		if i%e18CronEvery == 0 {
			if err := tx.Activate(oid, "Cron"); err != nil {
				return err
			}
		}
	}
	return nil
}

// e18Check verifies the delivery ledger for one cell: exactly
// objects × ticks timer posts during the sweep, no timer errors, and
// the per-trigger metrics reconciled against the aggregate firings.
func e18Check(posts uint64, n, ticks int, timerErrs []error) error {
	if len(timerErrs) != 0 {
		return fmt.Errorf("timer errors: %v", timerErrs)
	}
	if want := uint64(n) * uint64(ticks); posts != want {
		return fmt.Errorf("delivery ledger broken: %d timer posts, want %d (objects %d × ticks %d)",
			posts, want, n, ticks)
	}
	return nil
}

// runE18Single measures one engine: the cohort layout or the
// per-object baseline, selected by Options.PerObjectTimers.
func runE18Single(n, ticks int, perObject bool) (E18Row, error) {
	eng, err := engine.New(engine.Options{
		Start:           time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		PerObjectTimers: perObject,
	})
	if err != nil {
		return E18Row{}, err
	}
	defer eng.Close()
	cls, impl := sensorClass()
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return E18Row{}, err
	}
	if err := eng.Transact(func(tx *engine.Tx) error { return e18Arm(tx, n) }); err != nil {
		return E18Row{}, err
	}
	// Warm one untimed tick: first-delivery allocations (cohort scratch,
	// batch phases, metric series) land here, as in E11/E17 warmups.
	eng.Clock().Advance(e18Period)
	before := eng.Stats()

	start := time.Now()
	for t := 0; t < ticks; t++ {
		eng.Clock().Advance(e18Period)
	}
	elapsed := time.Since(start)

	stats := eng.Stats()
	posts := stats.TimerPosts - before.TimerPosts
	if err := e18Check(posts, n, ticks, eng.TimerErrors()); err != nil {
		return E18Row{}, err
	}
	if err := e17Reconcile(eng.Metrics().Snapshot().Triggers, stats.Firings); err != nil {
		return E18Row{}, err
	}
	layout := "cohort"
	if perObject {
		layout = "per-object"
	}
	return E18Row{
		Layout: layout, Partitions: 1, Objects: n, Ticks: ticks,
		Posts: posts, Firings: stats.Firings - before.Firings,
		PostsPerSec: float64(posts) / elapsed.Seconds(),
	}, nil
}

// runE18Part measures cohort delivery on a partitioned DB: objects
// split evenly across p single-writer partitions, clocks advanced
// concurrently so due cohorts deliver in parallel.
func runE18Part(n, ticks, p int) (E18Row, error) {
	db, err := part.Open(part.Options{
		N:      p,
		Engine: engine.Options{Start: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)},
	})
	if err != nil {
		return E18Row{}, err
	}
	defer db.Close()
	cls, impl := sensorClass()
	err = db.Register(func(_ int, e *engine.Engine) error {
		_, rerr := e.RegisterClass(cls, impl, nil)
		return rerr
	})
	if err != nil {
		return E18Row{}, err
	}
	per := n / p
	for q := 0; q < p; q++ {
		m := per
		if q == p-1 {
			m = n - per*(p-1)
		}
		if err := db.Transact(q, func(tx *engine.Tx) error { return e18Arm(tx, m) }); err != nil {
			return E18Row{}, err
		}
	}
	if err := db.AdvanceConcurrent(e18Period); err != nil { // warm tick
		return E18Row{}, err
	}
	before := db.Stats()

	start := time.Now()
	for t := 0; t < ticks; t++ {
		if err := db.AdvanceConcurrent(e18Period); err != nil {
			return E18Row{}, err
		}
	}
	elapsed := time.Since(start)

	stats := db.Stats()
	var timerErrs []error
	for q := 0; q < p; q++ {
		timerErrs = append(timerErrs, db.Partition(q).Engine().TimerErrors()...)
	}
	posts := stats.TimerPosts - before.TimerPosts
	if err := e18Check(posts, n, ticks, timerErrs); err != nil {
		return E18Row{}, err
	}
	if err := e17Reconcile(db.Metrics().Triggers, stats.Firings); err != nil {
		return E18Row{}, err
	}
	return E18Row{
		Layout: "cohort", Partitions: p, Objects: n, Ticks: ticks,
		Posts: posts, Firings: stats.Firings - before.Firings,
		PostsPerSec: float64(posts) / elapsed.Seconds(),
	}, nil
}

// TimersArmedCheck returns the aggregate armed-cohort view for a
// fleet of n sensors on one engine — used by the E18 test to pin the
// §3.1 sharing structure the storm relies on (all heartbeats in one
// cohort, one pending wheel entry per distinct phase).
func TimersArmedCheck(n int) (cohorts, pending uint64, err error) {
	eng, err := engine.New(engine.Options{Start: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)})
	if err != nil {
		return 0, 0, err
	}
	defer eng.Close()
	cls, impl := sensorClass()
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return 0, 0, err
	}
	if err := eng.Transact(func(tx *engine.Tx) error { return e18Arm(tx, n) }); err != nil {
		return 0, 0, err
	}
	s := eng.Stats()
	return s.TimerCohorts, s.TimersPending, nil
}
